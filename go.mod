module gem5rtl

go 1.22
