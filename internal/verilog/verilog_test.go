package verilog

import (
	"strings"
	"testing"
	"testing/quick"
)

func compile(t testing.TB, src, top string) interface {
	SetInput(string, uint64)
	Tick()
	Eval()
	Peek(string) uint64
	Reset()
} {
	m, err := Compile(src, top, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const counterSrc = `
// An 8-bit counter with enable and synchronous reset.
module counter (
    input  wire clk,
    input  wire rst,
    input  wire en,
    output reg [7:0] q
);
  always @(posedge clk) begin
    if (rst)
      q <= 8'd0;
    else if (en)
      q <= q + 8'd1;
  end
endmodule
`

func TestCounter(t *testing.T) {
	m := compile(t, counterSrc, "counter")
	m.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		m.Tick()
	}
	if got := m.Peek("q"); got != 5 {
		t.Fatalf("q = %d, want 5", got)
	}
	m.SetInput("rst", 1)
	m.Tick()
	if got := m.Peek("q"); got != 0 {
		t.Fatalf("after rst q = %d, want 0", got)
	}
	m.SetInput("rst", 0)
	m.SetInput("en", 0)
	m.Tick()
	if got := m.Peek("q"); got != 0 {
		t.Fatalf("disabled counter moved: q = %d", got)
	}
}

func TestContinuousAssignAndOperators(t *testing.T) {
	src := `
module alu (
    input wire [15:0] a,
    input wire [15:0] b,
    input wire [2:0] op,
    output wire [15:0] y,
    output wire zero
);
  wire [15:0] sum = a + b;
  wire [15:0] dif = a - b;
  reg [15:0] sel;
  always @(*) begin
    case (op)
      3'd0: sel = sum;
      3'd1: sel = dif;
      3'd2: sel = a & b;
      3'd3: sel = a | b;
      3'd4: sel = a ^ b;
      3'd5: sel = a << b[3:0];
      3'd6: sel = a >> b[3:0];
      default: sel = 16'hFFFF;
    endcase
  end
  assign y = sel;
  assign zero = (sel == 16'd0);
endmodule
`
	m := compile(t, src, "alu")
	ref := func(a, b uint16, op uint8) uint16 {
		switch op {
		case 0:
			return a + b
		case 1:
			return a - b
		case 2:
			return a & b
		case 3:
			return a | b
		case 4:
			return a ^ b
		case 5:
			return a << (b & 0xF)
		case 6:
			return a >> (b & 0xF)
		default:
			return 0xFFFF
		}
	}
	f := func(a, b uint16, op uint8) bool {
		op %= 8
		m.SetInput("a", uint64(a))
		m.SetInput("b", uint64(b))
		m.SetInput("op", uint64(op))
		m.Eval()
		want := ref(a, b, op)
		wantZero := uint64(0)
		if want == 0 {
			wantZero = 1
		}
		return m.Peek("y") == uint64(want) && m.Peek("zero") == wantZero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestIfElseChainPriority(t *testing.T) {
	src := `
module prio (input wire [3:0] r, output reg [1:0] g);
  always @(*) begin
    g = 2'd0;
    if (r[0]) g = 2'd0;
    else if (r[1]) g = 2'd1;
    else if (r[2]) g = 2'd2;
    else if (r[3]) g = 2'd3;
  end
endmodule
`
	m := compile(t, src, "prio")
	cases := map[uint64]uint64{0b0001: 0, 0b0010: 1, 0b0100: 2, 0b1000: 3, 0b1010: 1, 0b0000: 0, 0b1111: 0}
	for in, want := range cases {
		m.SetInput("r", in)
		m.Eval()
		if got := m.Peek("g"); got != want {
			t.Fatalf("r=%04b: g = %d, want %d", in, got, want)
		}
	}
}

func TestLastAssignmentWins(t *testing.T) {
	src := `
module law (input wire a, output reg [3:0] y);
  always @(*) begin
    y = 4'd1;
    y = 4'd2;
    if (a) y = 4'd7;
  end
endmodule
`
	m := compile(t, src, "law")
	m.SetInput("a", 0)
	m.Eval()
	if m.Peek("y") != 2 {
		t.Fatalf("y = %d, want 2", m.Peek("y"))
	}
	m.SetInput("a", 1)
	m.Eval()
	if m.Peek("y") != 7 {
		t.Fatalf("y = %d, want 7", m.Peek("y"))
	}
}

func TestBlockingReadsSeeUpdates(t *testing.T) {
	src := `
module blk (input wire [7:0] a, output reg [7:0] y);
  reg [7:0] t;
  always @(*) begin
    t = a + 8'd1;
    y = t * 8'd2;
  end
endmodule
`
	m := compile(t, src, "blk")
	m.SetInput("a", 10)
	m.Eval()
	if m.Peek("y") != 22 {
		t.Fatalf("y = %d, want 22", m.Peek("y"))
	}
}

func TestNonBlockingSwap(t *testing.T) {
	src := `
module swap (input wire clk, output reg [3:0] x, output reg [3:0] y);
  reg [3:0] a = 4'd3;
  reg [3:0] b = 4'd9;
  always @(posedge clk) begin
    a <= b;
    b <= a;
    x <= a;
    y <= b;
  end
endmodule
`
	m := compile(t, src, "swap")
	m.Tick()
	m.Tick()
	// After two ticks a/b are back to initial; x/y show the pre-tick values.
	if m.Peek("a") != 3 || m.Peek("b") != 9 {
		t.Fatalf("swap failed: a=%d b=%d", m.Peek("a"), m.Peek("b"))
	}
}

func TestLatchDetection(t *testing.T) {
	src := `
module latch (input wire en, input wire [3:0] d, output reg [3:0] q);
  always @(*) begin
    if (en) q = d;
  end
endmodule
`
	if _, err := Compile(src, "latch", nil); err == nil ||
		!strings.Contains(err.Error(), "latch") {
		t.Fatalf("latch not detected: %v", err)
	}
}

func TestParameters(t *testing.T) {
	src := `
module count #(parameter W = 4, parameter STEP = 1) (
    input wire clk, output reg [W-1:0] q
);
  always @(posedge clk) q <= q + STEP;
endmodule
`
	m, err := Compile(src, "count", map[string]int64{"W": 8, "STEP": 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if m.Peek("q") != 12 {
		t.Fatalf("q = %d, want 12", m.Peek("q"))
	}
	// Default params: width 4 wraps at 16.
	m2, err := Compile(src, "count", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		m2.Tick()
	}
	if m2.Peek("q") != 1 {
		t.Fatalf("default q = %d, want 1", m2.Peek("q"))
	}
}

func TestHierarchy(t *testing.T) {
	src := `
module halfadd (input wire a, input wire b, output wire s, output wire c);
  assign s = a ^ b;
  assign c = a & b;
endmodule

module fulladd (input wire a, input wire b, input wire cin,
                output wire s, output wire cout);
  wire s1, c1, c2;
  halfadd h0 (.a(a), .b(b), .s(s1), .c(c1));
  halfadd h1 (.a(s1), .b(cin), .s(s), .c(c2));
  assign cout = c1 | c2;
endmodule
`
	m := compile(t, src, "fulladd")
	for in := 0; in < 8; in++ {
		a, b, cin := uint64(in&1), uint64(in>>1&1), uint64(in>>2&1)
		m.SetInput("a", a)
		m.SetInput("b", b)
		m.SetInput("cin", cin)
		m.Eval()
		sum := a + b + cin
		if m.Peek("s") != sum&1 || m.Peek("cout") != sum>>1 {
			t.Fatalf("a=%d b=%d cin=%d: s=%d cout=%d", a, b, cin, m.Peek("s"), m.Peek("cout"))
		}
	}
}

func TestHierarchyWithParamsAndRegs(t *testing.T) {
	src := `
module stage #(parameter INC = 1) (input wire clk, input wire [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d + INC;
endmodule

module pipe (input wire clk, input wire [7:0] d, output wire [7:0] q);
  wire [7:0] mid;
  stage #(.INC(2)) s0 (.clk(clk), .d(d), .q(mid));
  stage #(.INC(5)) s1 (.clk(clk), .d(mid), .q(q));
endmodule
`
	m := compile(t, src, "pipe")
	m.SetInput("d", 10)
	m.Tick() // mid <= 12
	m.Tick() // q <= 17
	if m.Peek("q") != 17 {
		t.Fatalf("q = %d, want 17", m.Peek("q"))
	}
}

func TestMemoryInference(t *testing.T) {
	src := `
module regfile (
    input wire clk,
    input wire we,
    input wire [3:0] waddr,
    input wire [31:0] wdata,
    input wire [3:0] raddr,
    output wire [31:0] rdata
);
  reg [31:0] rf [15:0];
  always @(posedge clk) begin
    if (we) rf[waddr] <= wdata;
  end
  assign rdata = rf[raddr];
endmodule
`
	m := compile(t, src, "regfile")
	m.SetInput("we", 1)
	m.SetInput("waddr", 3)
	m.SetInput("wdata", 0xDEAD)
	m.Tick()
	m.SetInput("we", 0)
	m.SetInput("raddr", 3)
	m.Eval()
	if m.Peek("rdata") != 0xDEAD {
		t.Fatalf("rdata = %#x", m.Peek("rdata"))
	}
}

func TestConcatRepeatSelect(t *testing.T) {
	src := `
module bits (input wire [7:0] a, output wire [15:0] y, output wire [7:0] rev);
  assign y = {a[3:0], {3{a[7]}}, 1'b1, a[7:4], a[0]};
  assign rev = {a[0],a[1],a[2],a[3],a[4],a[5],a[6],a[7]};
endmodule
`
	m := compile(t, src, "bits")
	f := func(av uint8) bool {
		m.SetInput("a", uint64(av))
		m.Eval()
		a := uint64(av)
		msb := a >> 7 & 1
		// The concat is 13 bits wide: a[3:0] | {3{a[7]}} | 1 | a[7:4] | a[0],
		// zero-extended into the 16-bit y.
		ref := (a & 0xF) << 9
		ref |= msb << 8
		ref |= msb << 7
		ref |= msb << 6
		ref |= 1 << 5
		ref |= (a >> 4 & 0xF) << 1
		ref |= a & 1
		var rev uint64
		for i := 0; i < 8; i++ {
			rev |= (a >> i & 1) << (7 - i)
		}
		return m.Peek("y") == ref && m.Peek("rev") == rev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTernaryAndDynamicIndex(t *testing.T) {
	src := `
module dyn (input wire [7:0] a, input wire [2:0] i, output wire b, output wire [7:0] m);
  assign b = a[i];
  assign m = (a > 8'd100) ? 8'd100 : a;
endmodule
`
	m := compile(t, src, "dyn")
	f := func(av, iv uint8) bool {
		m.SetInput("a", uint64(av))
		m.SetInput("i", uint64(iv%8))
		m.Eval()
		wantB := uint64(av>>(iv%8)) & 1
		wantM := uint64(av)
		if av > 100 {
			wantM = 100
		}
		return m.Peek("b") == wantB && m.Peek("m") == wantM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitAndPartSelectLValue(t *testing.T) {
	src := `
module sel (input wire clk, input wire [7:0] d, output reg [7:0] q);
  always @(posedge clk) begin
    q[3:0] <= d[7:4];
    q[7] <= d[0];
  end
endmodule
`
	m := compile(t, src, "sel")
	m.SetInput("d", 0xA5)
	m.Tick()
	// q[3:0] = 0xA, q[7] = 1, q[6:4] unchanged (0).
	if got := m.Peek("q"); got != 0x8A {
		t.Fatalf("q = %#x, want 0x8A", got)
	}
}

func TestAsyncResetStyleAccepted(t *testing.T) {
	src := `
module ar (input wire clk, input wire rst_n, input wire [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= d;
  end
endmodule
`
	m := compile(t, src, "ar")
	m.SetInput("rst_n", 1)
	m.SetInput("d", 9)
	m.Tick()
	if m.Peek("q") != 9 {
		t.Fatalf("q = %d", m.Peek("q"))
	}
	m.SetInput("rst_n", 0)
	m.Tick()
	if m.Peek("q") != 0 {
		t.Fatalf("reset q = %d", m.Peek("q"))
	}
}

func TestUnsupportedConstructsRejected(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"initial", `module m (input wire clk); initial begin end endmodule`, "not supported"},
		{"forloop", `module m (input wire clk, output reg q);
		   always @(posedge clk) begin for (i=0;i<4;i=i+1) q <= 1; end endmodule`, "not supported"},
		{"inout", `module m (inout wire x); endmodule`, "not supported"},
		{"wide", `module m (input wire [127:0] x, output wire y); assign y = x[0]; endmodule`, "width"},
		{"unknownmod", `module m (input wire a); foo u0 (.x(a)); endmodule`, "unknown module"},
		{"badport", `module s (input wire a, output wire b); assign b = a; endmodule
		  module m (input wire a, output wire b); s u0 (.a(a), .b(b), .zz(a)); endmodule`, "no port"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "m", nil)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestNumberFormats(t *testing.T) {
	src := `
module n (output wire [63:0] a, output wire [15:0] b, output wire [7:0] c,
          output wire [11:0] d, output wire [31:0] e);
  assign a = 64'hDEAD_BEEF_CAFE_F00D;
  assign b = 16'd12345;
  assign c = 8'b1010_0101;
  assign d = 12'o7654;
  assign e = 100;
endmodule
`
	m := compile(t, src, "n")
	m.Eval()
	if m.Peek("a") != 0xDEADBEEFCAFEF00D {
		t.Fatalf("a = %#x", m.Peek("a"))
	}
	if m.Peek("b") != 12345 || m.Peek("c") != 0xA5 || m.Peek("d") != 0o7654 || m.Peek("e") != 100 {
		t.Fatal("literal decoding wrong")
	}
}

func TestSignedComparisonViaSra(t *testing.T) {
	src := `
module s (input wire [7:0] a, output wire [7:0] sra2);
  assign sra2 = a >>> 2;
endmodule
`
	m := compile(t, src, "s")
	m.SetInput("a", 0x80) // -128 signed
	m.Eval()
	if m.Peek("sra2") != 0xE0 {
		t.Fatalf("sra2 = %#x, want 0xE0", m.Peek("sra2"))
	}
}

func TestMultipleModulesTopSelection(t *testing.T) {
	src := `
module a (input wire x, output wire y); assign y = ~x; endmodule
module b (input wire x, output wire y); assign y = x; endmodule
`
	ma, err := Compile(src, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Compile(src, "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	ma.SetInput("x", 1)
	ma.Eval()
	mb.SetInput("x", 1)
	mb.Eval()
	if ma.Peek("y") != 0 || mb.Peek("y") != 1 {
		t.Fatal("wrong top module elaborated")
	}
}

func TestParseErrorsHavePosition(t *testing.T) {
	_, err := Parse("module m (input wire a);\n  assign = 1;\nendmodule")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestCaseWithMultipleMatches(t *testing.T) {
	src := `
module c (input wire [2:0] s, output reg [1:0] y);
  always @(*) begin
    case (s)
      3'd0, 3'd1: y = 2'd0;
      3'd2, 3'd3: y = 2'd1;
      default: y = 2'd3;
    endcase
  end
endmodule
`
	m := compile(t, src, "c")
	want := map[uint64]uint64{0: 0, 1: 0, 2: 1, 3: 1, 4: 3, 7: 3}
	for in, w := range want {
		m.SetInput("s", in)
		m.Eval()
		if m.Peek("y") != w {
			t.Fatalf("s=%d: y=%d want %d", in, m.Peek("y"), w)
		}
	}
}

func BenchmarkCompileCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(counterSrc, "counter", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLocalparamAndBodyParameter(t *testing.T) {
	src := `
module lp (input wire clk, output reg [7:0] q);
  localparam STEP = 3;
  parameter BIAS = 1;
  always @(posedge clk) q <= q + STEP + BIAS;
endmodule
`
	m := compile(t, src, "lp")
	m.Tick()
	m.Tick()
	if m.Peek("q") != 8 {
		t.Fatalf("q = %d, want 8", m.Peek("q"))
	}
	// localparam must not be overridable; parameter must be.
	m2, err := Compile(src, "lp", map[string]int64{"BIAS": 5})
	if err != nil {
		t.Fatal(err)
	}
	m2.Tick()
	if m2.Peek("q") != 8 {
		t.Fatalf("override q = %d, want 8 (STEP 3 + BIAS 5)", m2.Peek("q"))
	}
}

func TestWireInitializer(t *testing.T) {
	src := `
module wi (input wire [3:0] a, output wire [3:0] y);
  wire [3:0] two = 4'd2;
  assign y = a + two;
endmodule
`
	m := compile(t, src, "wi")
	m.SetInput("a", 5)
	m.Eval()
	if m.Peek("y") != 7 {
		t.Fatalf("y = %d", m.Peek("y"))
	}
}

func TestAlwaysCombAndAlwaysFF(t *testing.T) {
	src := `
module sv (input wire clk, input wire [3:0] a, output reg [3:0] doubled, output reg [3:0] held);
  always_comb doubled = a + a;
  always_ff @(posedge clk) held <= a;
endmodule
`
	m := compile(t, src, "sv")
	m.SetInput("a", 3)
	m.Eval()
	if m.Peek("doubled") != 6 {
		t.Fatalf("always_comb: %d", m.Peek("doubled"))
	}
	if m.Peek("held") != 0 {
		t.Fatal("always_ff updated without a clock edge")
	}
	m.Tick()
	if m.Peek("held") != 3 {
		t.Fatalf("always_ff: %d", m.Peek("held"))
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
module prec (input wire [7:0] a, input wire [7:0] b, output wire [7:0] y, output wire z);
  assign y = a + b * 8'd2;         // * binds tighter than +
  assign z = a == 8'd1 || b == 8'd2 && a == 8'd9; // && over ||
endmodule
`
	m := compile(t, src, "prec")
	m.SetInput("a", 1)
	m.SetInput("b", 3)
	m.Eval()
	if m.Peek("y") != 7 {
		t.Fatalf("y = %d, want 7 (1 + 3*2)", m.Peek("y"))
	}
	if m.Peek("z") != 1 {
		t.Fatal("precedence of || / && wrong")
	}
	m.SetInput("a", 9)
	m.SetInput("b", 2)
	m.Eval()
	if m.Peek("z") != 1 {
		t.Fatal("b==2 && a==9 arm failed")
	}
}

func TestCommentsAndPreprocessorSkipped(t *testing.T) {
	src := "`timescale 1ns/1ps\n" + `
// line comment
module c (/* inline */ input wire a, output wire y);
  /* block
     comment */
  assign y = ~a; // trailing
endmodule
`
	m := compile(t, src, "c")
	m.SetInput("a", 0)
	m.Eval()
	if m.Peek("y") != 1 {
		t.Fatal("comment handling broke elaboration")
	}
}
