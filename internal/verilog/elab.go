package verilog

import (
	"fmt"
	"sort"
	"strings"

	"gem5rtl/internal/rtl"
)

// Elaborate flattens the named top module of a parsed source file into an
// rtl.Circuit, resolving parameters, synthesising procedural always blocks
// into mux trees (last assignment wins, first case match wins), and
// recursively inlining module instances with dotted name prefixes.
// overrides replaces top-level parameter defaults.
func Elaborate(file *SourceFile, top string, overrides map[string]int64) (*rtl.Circuit, error) {
	mod := file.ModuleByName(top)
	if mod == nil {
		return nil, fmt.Errorf("verilog: no module %q in source", top)
	}
	e := &elab{file: file, b: rtl.NewBuilder(top)}
	sc, err := e.declareModule(mod, "", overrides, true)
	if err != nil {
		return nil, err
	}
	if err := e.elabItems(sc); err != nil {
		return nil, err
	}
	c, err := e.b.Build()
	if err != nil {
		return nil, fmt.Errorf("verilog: %s: %w", top, err)
	}
	return c, nil
}

// Compile parses, elaborates and compiles source in one call — the
// equivalent of invoking Verilator on a file with a given top module. It
// uses the closure reference engine; use CompileEngine to select another.
func Compile(src, top string, overrides map[string]int64) (*rtl.Model, error) {
	return CompileEngine(src, top, overrides, rtl.EngineClosure)
}

// CompileEngine is Compile with an explicit simulation engine (see
// rtl.Engines). Engine choice never changes results, only execution
// strategy.
func CompileEngine(src, top string, overrides map[string]int64, engine rtl.Engine) (*rtl.Model, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := Elaborate(f, top, overrides)
	if err != nil {
		return nil, err
	}
	m, err := rtl.CompileEngine(c, engine)
	if err != nil {
		// A comb always block with a path that never assigns a target shows
		// up as a self-dependency; translate the engine's message.
		if strings.Contains(err.Error(), "combinational loop") {
			return nil, fmt.Errorf("verilog: %w (a combinational always block may leave a target unassigned on some path — inferred latch)", err)
		}
		return nil, err
	}
	return m, nil
}

type elab struct {
	file *SourceFile
	b    *rtl.Builder
}

type sigInfo struct {
	id    rtl.SigID
	width int
}

type memInfo struct {
	id    rtl.MemID
	width int
	depth int
}

// scope is one elaborated module instance.
type scope struct {
	mod    *ModuleDecl
	prefix string
	params map[string]int64
	sigs   map[string]sigInfo
	mems   map[string]memInfo
}

// declareModule creates all signals and memories of a module instance.
// For non-top instances, ports are plain nets to be wired by the parent.
func (e *elab) declareModule(mod *ModuleDecl, prefix string, paramOverrides map[string]int64, isTop bool) (*scope, error) {
	sc := &scope{mod: mod, prefix: prefix,
		params: map[string]int64{}, sigs: map[string]sigInfo{}, mems: map[string]memInfo{}}
	// Header parameters, with overrides.
	for _, p := range mod.Params {
		v, err := e.evalConst(p.Value, sc)
		if err != nil {
			return nil, err
		}
		sc.params[p.Name] = v
	}
	for name, v := range paramOverrides {
		if _, ok := sc.params[name]; !ok && !isTop {
			return nil, fmt.Errorf("verilog: module %s has no parameter %q", mod.Name, name)
		}
		sc.params[name] = v
	}
	// Body parameters/localparams (may reference header params).
	for _, it := range mod.Items {
		if p, ok := it.(*ParamDecl); ok {
			if _, overridden := sc.params[p.Name]; overridden && !p.Local {
				continue
			}
			v, err := e.evalConst(p.Value, sc)
			if err != nil {
				return nil, err
			}
			sc.params[p.Name] = v
		}
	}
	// Classify sequential targets so net kinds reflect real drivers.
	seqDriven := map[string]bool{}
	for _, it := range mod.Items {
		if a, ok := it.(*AlwaysItem); ok && a.Kind == AlwaysSeq {
			collectTargets(a.Body, seqDriven)
		}
	}
	// Ports.
	for _, p := range mod.Ports {
		w, err := e.rangeWidth(p.MSB, p.LSB, sc)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: port %s: %w", p.Line, p.Name, err)
		}
		full := prefix + p.Name
		var id rtl.SigID
		switch {
		case p.Dir == DirInput && isTop:
			id = e.b.Input(full, w)
		case p.Dir == DirInput:
			id = e.b.Wire(full, w)
		case isTop: // output of top: exported, comb- or seq-driven
			id = e.b.Output(full, w)
		case seqDriven[p.Name]:
			id = e.b.Reg(full, w, 0)
		default:
			id = e.b.Wire(full, w)
		}
		sc.sigs[p.Name] = sigInfo{id, w}
	}
	// Nets and memories.
	for _, it := range mod.Items {
		d, ok := it.(*NetDecl)
		if !ok {
			continue
		}
		w, err := e.rangeWidth(d.MSB, d.LSB, sc)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: %w", d.Line, err)
		}
		for _, nn := range d.Names {
			if _, dup := sc.sigs[nn.Name]; dup {
				// Verilog allows re-declaring a port as reg/wire in the body;
				// accept silently if widths agree.
				if sc.sigs[nn.Name].width != w {
					return nil, fmt.Errorf("verilog: line %d: %s redeclared with different width", d.Line, nn.Name)
				}
				continue
			}
			full := prefix + nn.Name
			if nn.ArrayMSB != nil {
				hi, err := e.evalConst(nn.ArrayMSB, sc)
				if err != nil {
					return nil, err
				}
				lo, err := e.evalConst(nn.ArrayLSB, sc)
				if err != nil {
					return nil, err
				}
				if lo > hi {
					hi, lo = lo, hi
				}
				depth := int(hi-lo) + 1
				id := e.b.Mem(full, w, depth)
				sc.mems[nn.Name] = memInfo{id, w, depth}
				continue
			}
			var id rtl.SigID
			if seqDriven[nn.Name] {
				init := uint64(0)
				if nn.Init != nil {
					v, err := e.evalConst(nn.Init, sc)
					if err != nil {
						return nil, fmt.Errorf("verilog: line %d: reg initialiser must be constant: %w", d.Line, err)
					}
					init = uint64(v)
				}
				id = e.b.Reg(full, w, init)
			} else {
				id = e.b.Wire(full, w)
			}
			sc.sigs[nn.Name] = sigInfo{id, w}
		}
	}
	return sc, nil
}

// collectTargets records every lvalue name assigned under stmts.
func collectTargets(stmts []Stmt, out map[string]bool) {
	for _, s := range stmts {
		switch v := s.(type) {
		case *AssignStmt:
			if v.LHS.Index == nil || true { // memories filtered later by decl
				out[v.LHS.Name] = true
			}
		case *IfStmt:
			collectTargets(v.Then, out)
			collectTargets(v.Else, out)
		case *CaseStmt:
			for _, it := range v.Items {
				collectTargets(it.Body, out)
			}
		}
	}
}

// elabItems walks a module's items, generating logic and instantiating
// children.
func (e *elab) elabItems(sc *scope) error {
	// Wire-with-initialiser becomes a continuous assign.
	for _, it := range sc.mod.Items {
		if d, ok := it.(*NetDecl); ok && !d.IsReg {
			for _, nn := range d.Names {
				if nn.Init != nil {
					si := sc.sigs[nn.Name]
					rhs, err := e.elabExpr(nn.Init, sc, nil)
					if err != nil {
						return err
					}
					e.b.Assign(si.id, rtl.Resize(rhs, si.width))
				}
			}
		}
	}
	for _, it := range sc.mod.Items {
		switch v := it.(type) {
		case *NetDecl, *ParamDecl:
			// handled in declareModule
		case *AssignItem:
			if err := e.elabContAssign(v, sc); err != nil {
				return err
			}
		case *AlwaysItem:
			if err := e.elabAlways(v, sc); err != nil {
				return err
			}
		case *InstanceItem:
			if err := e.elabInstance(v, sc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("verilog: unsupported item %T", it)
		}
	}
	return nil
}

func (e *elab) elabContAssign(a *AssignItem, sc *scope) error {
	si, ok := sc.sigs[a.LHS.Name]
	if !ok {
		return fmt.Errorf("verilog: line %d: assign to undeclared %q", a.Line, a.LHS.Name)
	}
	if a.LHS.Index != nil || a.LHS.MSB != nil {
		return fmt.Errorf("verilog: line %d: continuous assign to a bit/part select of %q is not supported (assign the whole net)", a.Line, a.LHS.Name)
	}
	rhs, err := e.elabExpr(a.RHS, sc, nil)
	if err != nil {
		return err
	}
	e.b.Assign(si.id, rtl.Resize(rhs, si.width))
	return nil
}

// memWriteRec is a pending clocked memory write gathered during a walk.
type memWriteRec struct {
	mem  memInfo
	addr rtl.Expr
	data rtl.Expr
	en   rtl.Expr
}

func (e *elab) elabAlways(a *AlwaysItem, sc *scope) error {
	env := map[string]rtl.Expr{}
	var memws []memWriteRec
	seq := a.Kind == AlwaysSeq
	if err := e.walkStmts(a.Body, sc, env, nil, seq, &memws); err != nil {
		return err
	}
	// Emit in sorted target order: env is a map, and the emission order fixes
	// the circuit's Seqs/Combs layout, which fault injection, checkpoints and
	// VCD dumps all index. Map order would make two compiles of the same
	// source disagree on which state bit a given injection pick lands on.
	targets := make([]string, 0, len(env))
	for name := range env {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		si := sc.sigs[name]
		if seq {
			e.b.Seq(si.id, rtl.Resize(env[name], si.width))
		} else {
			e.b.Assign(si.id, rtl.Resize(env[name], si.width))
		}
	}
	if !seq && len(memws) > 0 {
		return fmt.Errorf("verilog: memory writes are only supported in clocked always blocks")
	}
	for _, w := range memws {
		e.b.MemWr(w.mem.id, w.addr, rtl.Resize(w.data, w.mem.width), w.en)
	}
	return nil
}

// walkStmts synthesises procedural statements into per-target expressions.
// env maps target names to their current expression. Branching statements
// walk each arm on a copy of env and merge with muxes, so a target assigned
// on every path never references its own previous value (which would
// otherwise read as an inferred latch in combinational blocks). memCond is
// the accumulated path condition used to gate memory writes.
func (e *elab) walkStmts(stmts []Stmt, sc *scope, env map[string]rtl.Expr,
	memCond rtl.Expr, seq bool, memws *[]memWriteRec) error {
	for _, s := range stmts {
		switch v := s.(type) {
		case *NullStmt:
		case *AssignStmt:
			if err := e.walkAssign(v, sc, env, memCond, seq, memws); err != nil {
				return err
			}
		case *IfStmt:
			c, err := e.elabExpr(v.Cond, sc, readEnv(env, seq))
			if err != nil {
				return err
			}
			cb := boolE(c)
			envT := cloneEnv(env)
			envE := cloneEnv(env)
			if err := e.walkStmts(v.Then, sc, envT, andCond(memCond, cb), seq, memws); err != nil {
				return err
			}
			if len(v.Else) > 0 {
				if err := e.walkStmts(v.Else, sc, envE, andCond(memCond, rtl.LNot(cb)), seq, memws); err != nil {
					return err
				}
			}
			e.mergeEnv(env, cb, envT, envE, sc)
		case *CaseStmt:
			if err := e.walkStmts(desugarCase(v), sc, env, memCond, seq, memws); err != nil {
				return err
			}
		default:
			return fmt.Errorf("verilog: unsupported statement %T", s)
		}
	}
	return nil
}

// desugarCase converts a case statement into a priority if/else chain
// (first matching arm wins, default as final else).
func desugarCase(cs *CaseStmt) []Stmt {
	var els []Stmt
	for _, item := range cs.Items {
		if len(item.Matches) == 0 {
			els = item.Body
		}
	}
	for i := len(cs.Items) - 1; i >= 0; i-- {
		item := cs.Items[i]
		if len(item.Matches) == 0 {
			continue
		}
		var cond Expr
		for _, m := range item.Matches {
			eq := &BinaryExpr{Op: "==", X: cs.Subject, Y: m, Line: cs.Line}
			if cond == nil {
				cond = eq
			} else {
				cond = &BinaryExpr{Op: "||", X: cond, Y: eq, Line: cs.Line}
			}
		}
		els = []Stmt{&IfStmt{Cond: cond, Then: item.Body, Else: els, Line: cs.Line}}
	}
	return els
}

func cloneEnv(env map[string]rtl.Expr) map[string]rtl.Expr {
	out := make(map[string]rtl.Expr, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// mergeEnv folds two branch environments back into env with muxes on cond.
// Targets untouched by a branch fall back to the pre-branch value, or to the
// signal's own register value if never assigned (hold/latch semantics).
func (e *elab) mergeEnv(env map[string]rtl.Expr, cond rtl.Expr, envT, envE map[string]rtl.Expr, sc *scope) {
	keys := map[string]bool{}
	for k := range envT {
		keys[k] = true
	}
	for k := range envE {
		keys[k] = true
	}
	for k := range keys {
		base, ok := env[k]
		if !ok {
			si := sc.sigs[k]
			base = e.b.Ref(si.id)
		}
		tv, tok := envT[k]
		if !tok {
			tv = base
		}
		ev, eok := envE[k]
		if !eok {
			ev = base
		}
		if tv == ev {
			env[k] = tv
			continue
		}
		w := tv.Width()
		if ev.Width() > w {
			w = ev.Width()
		}
		env[k] = rtl.MuxE(cond, rtl.Resize(tv, w), rtl.Resize(ev, w))
	}
}

// readEnv returns the environment procedural reads should consult: for
// combinational blocks blocking reads see earlier assignments; clocked
// blocks use non-blocking semantics (reads see pre-edge values).
func readEnv(env map[string]rtl.Expr, seq bool) map[string]rtl.Expr {
	if seq {
		return nil
	}
	return env
}

// andCond conjoins path conditions, treating nil as true.
func andCond(a, b rtl.Expr) rtl.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return rtl.LAnd(a, b)
}

// boolE reduces an arbitrary-width expression to one bit of truthiness.
func boolE(x rtl.Expr) rtl.Expr {
	if x.Width() == 1 {
		return x
	}
	return rtl.RedOr(x)
}

func exprW(x rtl.Expr) int { return x.Width() }

func (e *elab) walkAssign(v *AssignStmt, sc *scope, env map[string]rtl.Expr,
	memCond rtl.Expr, seq bool, memws *[]memWriteRec) error {
	rhs, err := e.elabExpr(v.RHS, sc, readEnv(env, seq))
	if err != nil {
		return err
	}
	// Memory word write?
	if mi, isMem := sc.mems[v.LHS.Name]; isMem {
		if v.LHS.Index == nil {
			return fmt.Errorf("verilog: line %d: assignment to whole memory %q", v.Line, v.LHS.Name)
		}
		addr, err := e.elabExpr(v.LHS.Index, sc, readEnv(env, seq))
		if err != nil {
			return err
		}
		en := memCond
		if en == nil {
			en = rtl.C(1, 1)
		}
		*memws = append(*memws, memWriteRec{mem: mi, addr: addr, data: rhs, en: en})
		return nil
	}
	si, ok := sc.sigs[v.LHS.Name]
	if !ok {
		return fmt.Errorf("verilog: line %d: assignment to undeclared %q", v.Line, v.LHS.Name)
	}
	cur, have := env[v.LHS.Name]
	if !have {
		cur = e.b.Ref(si.id)
	}
	var newVal rtl.Expr
	switch {
	case v.LHS.Index == nil && v.LHS.MSB == nil:
		newVal = rtl.Resize(rhs, si.width)
	case v.LHS.MSB != nil:
		hi64, err := e.evalConst(v.LHS.MSB, sc)
		if err != nil {
			return fmt.Errorf("verilog: line %d: part-select bounds must be constant: %w", v.Line, err)
		}
		lo64, err := e.evalConst(v.LHS.LSB, sc)
		if err != nil {
			return fmt.Errorf("verilog: line %d: part-select bounds must be constant: %w", v.Line, err)
		}
		hi, lo := int(hi64), int(lo64)
		if lo > hi || hi >= si.width {
			return fmt.Errorf("verilog: line %d: part-select [%d:%d] out of range for %q", v.Line, hi, lo, v.LHS.Name)
		}
		newVal = spliceBits(cur, rtl.Resize(rhs, hi-lo+1), hi, lo, si.width)
	default:
		// Bit select, possibly dynamic.
		if c, isConst := constOf(v.LHS.Index, sc, e); isConst {
			bit := int(c)
			if bit >= si.width {
				return fmt.Errorf("verilog: line %d: bit %d out of range for %q", v.Line, bit, v.LHS.Name)
			}
			newVal = spliceBits(cur, rtl.Resize(rhs, 1), bit, bit, si.width)
		} else {
			idx, err := e.elabExpr(v.LHS.Index, sc, readEnv(env, seq))
			if err != nil {
				return err
			}
			one := rtl.Shl(rtl.C(1, si.width), rtl.Resize(idx, si.width))
			bitv := rtl.Shl(rtl.Resize(rhs, si.width), rtl.Resize(idx, si.width))
			newVal = rtl.OrE(rtl.AndE(cur, rtl.Not(one)), rtl.AndE(bitv, one))
		}
	}
	env[v.LHS.Name] = newVal
	return nil
}

// spliceBits replaces bits [hi:lo] of cur (width w) with repl.
func spliceBits(cur, repl rtl.Expr, hi, lo, w int) rtl.Expr {
	parts := make([]rtl.Expr, 0, 3)
	if hi < w-1 {
		parts = append(parts, rtl.SliceE(cur, w-1, hi+1))
	}
	parts = append(parts, repl)
	if lo > 0 {
		parts = append(parts, rtl.SliceE(cur, lo-1, 0))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return rtl.Cat(parts...)
}

// constOf attempts constant evaluation, returning ok=false on any
// non-constant subexpression.
func constOf(x Expr, sc *scope, e *elab) (int64, bool) {
	v, err := e.evalConst(x, sc)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (e *elab) elabInstance(inst *InstanceItem, sc *scope) error {
	child := e.file.ModuleByName(inst.ModName)
	if child == nil {
		return fmt.Errorf("verilog: line %d: unknown module %q", inst.Line, inst.ModName)
	}
	overrides := map[string]int64{}
	for name, expr := range inst.Params {
		v, err := e.evalConst(expr, sc)
		if err != nil {
			return fmt.Errorf("verilog: line %d: parameter override %q must be constant: %w", inst.Line, name, err)
		}
		overrides[name] = v
	}
	childScope, err := e.declareModule(child, sc.prefix+inst.InstName+".", overrides, false)
	if err != nil {
		return err
	}
	if err := e.elabItems(childScope); err != nil {
		return err
	}
	// Wire the ports.
	for _, p := range child.Ports {
		conn, given := inst.Conns[p.Name]
		csi := childScope.sigs[p.Name]
		if p.Dir == DirInput {
			if !given || conn == nil {
				e.b.Assign(csi.id, rtl.C(0, csi.width))
				continue
			}
			pe, err := e.elabExpr(conn, sc, nil)
			if err != nil {
				return err
			}
			e.b.Assign(csi.id, rtl.Resize(pe, csi.width))
		} else {
			if !given || conn == nil {
				continue // dangling output
			}
			id, ok := conn.(*IdentExpr)
			if !ok {
				return fmt.Errorf("verilog: line %d: output port %s.%s must connect to a simple net", inst.Line, inst.InstName, p.Name)
			}
			psi, ok := sc.sigs[id.Name]
			if !ok {
				return fmt.Errorf("verilog: line %d: connection to undeclared net %q", inst.Line, id.Name)
			}
			e.b.Assign(psi.id, rtl.Resize(e.b.Ref(csi.id), psi.width))
		}
	}
	// Check for connections to nonexistent ports.
	for name := range inst.Conns {
		found := false
		for _, p := range child.Ports {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("verilog: line %d: module %s has no port %q", inst.Line, inst.ModName, name)
		}
	}
	return nil
}

// rangeWidth computes a vector width from an optional [msb:lsb] range.
func (e *elab) rangeWidth(msb, lsb Expr, sc *scope) (int, error) {
	if msb == nil {
		return 1, nil
	}
	hi, err := e.evalConst(msb, sc)
	if err != nil {
		return 0, err
	}
	lo, err := e.evalConst(lsb, sc)
	if err != nil {
		return 0, err
	}
	if lo != 0 {
		return 0, fmt.Errorf("only [N:0] ranges are supported (got [%d:%d])", hi, lo)
	}
	w := int(hi) + 1
	if w < 1 || w > 64 {
		return 0, fmt.Errorf("width %d out of supported range [1,64]", w)
	}
	return w, nil
}

// evalConst evaluates a constant expression (literals, parameters,
// arithmetic) for parameter values, ranges and replication counts.
func (e *elab) evalConst(x Expr, sc *scope) (int64, error) {
	switch v := x.(type) {
	case *NumExpr:
		return int64(v.Val), nil
	case *IdentExpr:
		if p, ok := sc.params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("line %d: %q is not a constant/parameter", v.Line, v.Name)
	case *UnaryExpr:
		xv, err := e.evalConst(v.X, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -xv, nil
		case "~":
			return ^xv, nil
		case "!":
			if xv == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("line %d: unary %q not allowed in constant expression", v.Line, v.Op)
	case *BinaryExpr:
		a, err := e.evalConst(v.X, sc)
		if err != nil {
			return 0, err
		}
		b, err := e.evalConst(v.Y, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant division by zero", v.Line)
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant modulo by zero", v.Line)
			}
			return a % b, nil
		case "<<":
			return a << uint(b), nil
		case ">>":
			return a >> uint(b), nil
		case "**":
			r := int64(1)
			for i := int64(0); i < b; i++ {
				r *= a
			}
			return r, nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		}
		return 0, fmt.Errorf("line %d: operator %q not allowed in constant expression", v.Line, v.Op)
	case *CondExpr:
		c, err := e.evalConst(v.Cond, sc)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.evalConst(v.T, sc)
		}
		return e.evalConst(v.F, sc)
	}
	return 0, fmt.Errorf("non-constant expression %T", x)
}

// elabExpr converts an AST expression to an rtl expression. env, when
// non-nil, provides blocking-assignment values for identifier reads inside
// combinational always blocks.
func (e *elab) elabExpr(x Expr, sc *scope, env map[string]rtl.Expr) (rtl.Expr, error) {
	switch v := x.(type) {
	case *NumExpr:
		w := v.Width
		if w == 0 {
			w = 32
			// Shrink unsized literals that wouldn't fit default 32 bits.
			if v.Val > 0xFFFFFFFF {
				w = 64
			}
		}
		return rtl.C(v.Val, w), nil
	case *IdentExpr:
		if p, ok := sc.params[v.Name]; ok {
			return rtl.C(uint64(p), 32), nil
		}
		if env != nil {
			if cur, ok := env[v.Name]; ok {
				return cur, nil
			}
		}
		if si, ok := sc.sigs[v.Name]; ok {
			return e.b.Ref(si.id), nil
		}
		if _, ok := sc.mems[v.Name]; ok {
			return nil, fmt.Errorf("line %d: memory %q used without an index", v.Line, v.Name)
		}
		return nil, fmt.Errorf("line %d: undeclared identifier %q", v.Line, v.Name)
	case *SelectExpr:
		// Memory read?
		if id, ok := v.Base.(*IdentExpr); ok {
			if mi, isMem := sc.mems[id.Name]; isMem {
				if v.Index == nil {
					return nil, fmt.Errorf("line %d: part-select of memory %q", v.Line, id.Name)
				}
				addr, err := e.elabExpr(v.Index, sc, env)
				if err != nil {
					return nil, err
				}
				return rtl.MemRd(mi.id, addr, mi.width), nil
			}
		}
		base, err := e.elabExpr(v.Base, sc, env)
		if err != nil {
			return nil, err
		}
		if v.MSB != nil {
			hi, err := e.evalConst(v.MSB, sc)
			if err != nil {
				return nil, fmt.Errorf("line %d: part-select bounds must be constant: %w", v.Line, err)
			}
			lo, err := e.evalConst(v.LSB, sc)
			if err != nil {
				return nil, fmt.Errorf("line %d: part-select bounds must be constant: %w", v.Line, err)
			}
			if lo > hi || int(hi) >= base.Width() {
				return nil, fmt.Errorf("line %d: part-select [%d:%d] out of range (width %d)", v.Line, hi, lo, base.Width())
			}
			return rtl.SliceE(base, int(hi), int(lo)), nil
		}
		if c, ok := constOf(v.Index, sc, e); ok {
			if int(c) >= base.Width() {
				return nil, fmt.Errorf("line %d: bit %d out of range (width %d)", v.Line, c, base.Width())
			}
			return rtl.Bit(base, int(c)), nil
		}
		idx, err := e.elabExpr(v.Index, sc, env)
		if err != nil {
			return nil, err
		}
		return rtl.IndexE(base, idx), nil
	case *UnaryExpr:
		xe, err := e.elabExpr(v.X, sc, env)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "~":
			return rtl.Not(xe), nil
		case "-":
			return rtl.Neg(xe), nil
		case "!":
			return rtl.LNot(xe), nil
		case "&":
			return rtl.RedAnd(xe), nil
		case "|":
			return rtl.RedOr(xe), nil
		case "^":
			return rtl.RedXor(xe), nil
		case "~|":
			return rtl.LNot(rtl.RedOr(xe)), nil
		case "~&":
			return rtl.LNot(rtl.RedAnd(xe)), nil
		case "~^":
			return rtl.LNot(rtl.RedXor(xe)), nil
		}
		return nil, fmt.Errorf("line %d: unsupported unary %q", v.Line, v.Op)
	case *BinaryExpr:
		xe, err := e.elabExpr(v.X, sc, env)
		if err != nil {
			return nil, err
		}
		ye, err := e.elabExpr(v.Y, sc, env)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "+":
			return rtl.Add(xe, ye), nil
		case "-":
			return rtl.Sub(xe, ye), nil
		case "*":
			return rtl.MulE(xe, ye), nil
		case "/":
			return rtl.DivE(xe, ye), nil
		case "%":
			return rtl.ModE(xe, ye), nil
		case "&":
			return rtl.AndE(xe, ye), nil
		case "|":
			return rtl.OrE(xe, ye), nil
		case "^":
			return rtl.XorE(xe, ye), nil
		case "<<", "<<<":
			return rtl.Shl(xe, ye), nil
		case ">>":
			return rtl.Shr(xe, ye), nil
		case ">>>":
			return rtl.Sra(xe, ye), nil
		case "==", "===":
			return rtl.Eq(xe, ye), nil
		case "!=", "!==":
			return rtl.Ne(xe, ye), nil
		case "<":
			return rtl.Lt(xe, ye), nil
		case "<=":
			return rtl.Le(xe, ye), nil
		case ">":
			return rtl.Gt(xe, ye), nil
		case ">=":
			return rtl.Ge(xe, ye), nil
		case "&&":
			return rtl.LAnd(xe, ye), nil
		case "||":
			return rtl.LOr(xe, ye), nil
		}
		return nil, fmt.Errorf("line %d: unsupported binary %q", v.Line, v.Op)
	case *CondExpr:
		c, err := e.elabExpr(v.Cond, sc, env)
		if err != nil {
			return nil, err
		}
		t, err := e.elabExpr(v.T, sc, env)
		if err != nil {
			return nil, err
		}
		f, err := e.elabExpr(v.F, sc, env)
		if err != nil {
			return nil, err
		}
		w := t.Width()
		if f.Width() > w {
			w = f.Width()
		}
		return rtl.MuxE(c, rtl.Resize(t, w), rtl.Resize(f, w)), nil
	case *ConcatExpr:
		parts := make([]rtl.Expr, 0, len(v.Parts))
		for _, p := range v.Parts {
			pe, err := e.elabExpr(p, sc, env)
			if err != nil {
				return nil, err
			}
			parts = append(parts, pe)
		}
		return rtl.Cat(parts...), nil
	case *RepeatExpr:
		n, err := e.evalConst(v.Count, sc)
		if err != nil {
			return nil, fmt.Errorf("line %d: replication count must be constant: %w", v.Line, err)
		}
		inner, err := e.elabExpr(v.X, sc, env)
		if err != nil {
			return nil, err
		}
		if n < 1 || int(n)*inner.Width() > 64 {
			return nil, fmt.Errorf("line %d: replication {%d{...}} exceeds 64 bits", v.Line, n)
		}
		parts := make([]rtl.Expr, n)
		for i := range parts {
			parts[i] = inner
		}
		return rtl.Cat(parts...), nil
	}
	return nil, fmt.Errorf("unsupported expression %T", x)
}
