package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse scans and parses Verilog source into a SourceFile AST.
func Parse(src string) (*SourceFile, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &SourceFile{}
	for !p.atEOF() {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	if len(file.Modules) == 0 {
		return nil, fmt.Errorf("verilog: no modules in source")
	}
	return file, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("verilog: line %d:%d: %s (at %q)", t.line, t.col,
		fmt.Sprintf(format, args...), t.text)
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKw(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(s string) bool {
	if p.isKw(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) expectKw(s string) error {
	if !p.acceptKw(s) {
		return p.errf("expected keyword %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

// parseModule parses: module name [#(params)] (ports); items endmodule
func (p *parser) parseModule() (*ModuleDecl, error) {
	line := p.cur().line
	if err := p.expectKw("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &ModuleDecl{Name: name, Line: line}
	if p.acceptPunct("#") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			p.acceptKw("parameter") // optional repeated keyword
			// optional type/range, e.g. parameter integer N or [7:0]
			p.acceptKw("integer")
			if p.isPunct("[") {
				if _, _, err := p.parseRange(); err != nil {
					return nil, err
				}
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &ParamDecl{Name: pname, Value: val, Line: line})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		// ANSI port declarations.
		var dir Dir
		var isReg bool
		var msb, lsb Expr
		haveDir := false
		for {
			for {
				if p.acceptKw("input") {
					dir, isReg, msb, lsb, haveDir = DirInput, false, nil, nil, true
				} else if p.acceptKw("output") {
					dir, isReg, msb, lsb, haveDir = DirOutput, false, nil, nil, true
				} else if p.acceptKw("inout") {
					return nil, p.errf("inout ports are not supported")
				} else {
					break
				}
				if p.acceptKw("reg") || p.acceptKw("logic") || p.acceptKw("wire") {
					if dir == DirOutput && (p.toks[p.pos-1].text == "reg" || p.toks[p.pos-1].text == "logic") {
						isReg = true
					}
				}
				if p.isPunct("[") {
					var err error
					msb, lsb, err = p.parseRange()
					if err != nil {
						return nil, err
					}
				}
			}
			if !haveDir {
				return nil, p.errf("expected port direction")
			}
			pline := p.cur().line
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.Ports = append(m.Ports, &PortDecl{Name: pname, Dir: dir, IsReg: isReg, MSB: msb, LSB: lsb, Line: pline})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	for !p.acceptKw("endmodule") {
		if p.atEOF() {
			return nil, p.errf("unexpected EOF inside module %q", name)
		}
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		if item != nil {
			m.Items = append(m.Items, item)
		}
	}
	return m, nil
}

// parseRange parses [msb:lsb].
func (p *parser) parseRange() (msb, lsb Expr, err error) {
	if err = p.expectPunct("["); err != nil {
		return
	}
	msb, err = p.parseExpr()
	if err != nil {
		return
	}
	if err = p.expectPunct(":"); err != nil {
		return
	}
	lsb, err = p.parseExpr()
	if err != nil {
		return
	}
	err = p.expectPunct("]")
	return
}

func (p *parser) parseItem() (Item, error) {
	line := p.cur().line
	switch {
	case p.isKw("wire") || p.isKw("reg") || p.isKw("logic") || p.isKw("integer"):
		return p.parseNetDecl()
	case p.isKw("assign"):
		p.pos++
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignItem{LHS: lhs, RHS: rhs, Line: line}, nil
	case p.isKw("always") || p.isKw("always_ff") || p.isKw("always_comb"):
		return p.parseAlways()
	case p.isKw("parameter") || p.isKw("localparam"):
		local := p.cur().text == "localparam"
		p.pos++
		p.acceptKw("integer")
		if p.isPunct("[") {
			if _, _, err := p.parseRange(); err != nil {
				return nil, err
			}
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ParamDecl{Name: name, Value: val, Local: local, Line: line}, nil
	case p.isKw("initial") || p.isKw("genvar") || p.isKw("generate"):
		return nil, p.errf("%q blocks are not supported by the gem5rtl subset", p.cur().text)
	case p.cur().kind == tokIdent:
		return p.parseInstance()
	case p.acceptPunct(";"):
		return nil, nil
	}
	return nil, p.errf("unexpected token at module level")
}

func (p *parser) parseNetDecl() (Item, error) {
	line := p.cur().line
	kw := p.next().text
	isReg := kw == "reg" || kw == "logic" || kw == "integer"
	var msb, lsb Expr
	if kw == "integer" {
		msb, lsb = &NumExpr{Val: 31, Width: 0, Line: line}, &NumExpr{Val: 0, Width: 0, Line: line}
	}
	if p.isPunct("[") {
		var err error
		msb, lsb, err = p.parseRange()
		if err != nil {
			return nil, err
		}
	}
	d := &NetDecl{IsReg: isReg, MSB: msb, LSB: lsb, Line: line}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		nn := NetName{Name: name}
		if p.isPunct("[") {
			nn.ArrayMSB, nn.ArrayLSB, err = p.parseRange()
			if err != nil {
				return nil, err
			}
		}
		if p.acceptPunct("=") {
			nn.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		d.Names = append(d.Names, nn)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseAlways() (Item, error) {
	line := p.cur().line
	kw := p.next().text
	kind := AlwaysComb
	if kw == "always" || kw == "always_ff" {
		if p.acceptPunct("@") {
			if p.acceptPunct("*") {
				kind = AlwaysComb
			} else if p.acceptPunct("(") {
				if p.acceptPunct("*") {
					kind = AlwaysComb
				} else {
					// Sensitivity list: posedge/negedge terms make it
					// sequential; plain signals make it combinational.
					for {
						if p.acceptKw("posedge") {
							kind = AlwaysSeq
							if _, err := p.expectIdent(); err != nil {
								return nil, err
							}
						} else if p.acceptKw("negedge") {
							kind = AlwaysSeq
							if _, err := p.expectIdent(); err != nil {
								return nil, err
							}
						} else {
							if _, err := p.expectIdent(); err != nil {
								return nil, err
							}
						}
						if !p.acceptKw("or") && !p.acceptPunct(",") {
							break
						}
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			} else {
				return nil, p.errf("expected sensitivity list after @")
			}
		} else if kw == "always" {
			return nil, p.errf("always without sensitivity list is not supported")
		} else {
			// always_ff requires @(...); tolerate missing for robustness.
			kind = AlwaysSeq
		}
		if kw == "always_ff" {
			kind = AlwaysSeq
		}
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &AlwaysItem{Kind: kind, Body: body, Line: line}, nil
}

// parseStmtOrBlock parses either a begin..end block or a single statement.
func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.acceptKw("begin") {
		// optional block label
		if p.acceptPunct(":") {
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
		}
		var stmts []Stmt
		for !p.acceptKw("end") {
			if p.atEOF() {
				return nil, p.errf("unexpected EOF in begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
		}
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.acceptPunct(";"):
		return &NullStmt{}, nil
	case p.isKw("if"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.acceptKw("else") {
			els, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil
	case p.isKw("case") || p.isKw("casez") || p.isKw("casex"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		cs := &CaseStmt{Subject: subj, Line: line}
		for !p.acceptKw("endcase") {
			if p.atEOF() {
				return nil, p.errf("unexpected EOF in case")
			}
			var item CaseItem
			if p.acceptKw("default") {
				p.acceptPunct(":")
			} else {
				for {
					m, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Matches = append(item.Matches, m)
					if !p.acceptPunct(",") {
						break
					}
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
			}
			item.Body, err = p.parseStmtOrBlock()
			if err != nil {
				return nil, err
			}
			cs.Items = append(cs.Items, item)
		}
		return cs, nil
	case p.cur().kind == tokSysIdent:
		// $display and friends: parse and discard.
		p.pos++
		if p.acceptPunct("(") {
			depth := 1
			for depth > 0 {
				if p.atEOF() {
					return nil, p.errf("unexpected EOF in system task")
				}
				t := p.next()
				if t.kind == tokPunct && t.text == "(" {
					depth++
				}
				if t.kind == tokPunct && t.text == ")" {
					depth--
				}
			}
		}
		p.acceptPunct(";")
		return &NullStmt{}, nil
	case p.isKw("for") || p.isKw("while") || p.isKw("repeat") || p.isKw("forever"):
		return nil, p.errf("procedural %q loops are not supported by the gem5rtl subset", p.cur().text)
	default:
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		blocking := true
		if p.acceptPunct("<=") {
			blocking = false
		} else if !p.acceptPunct("=") {
			return nil, p.errf("expected assignment operator")
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Blocking: blocking, Line: line}, nil
	}
}

func (p *parser) parseLValue() (*LValue, error) {
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: name, Line: line}
	if p.acceptPunct("[") {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptPunct(":") {
			lv.MSB = first
			lv.LSB, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		} else {
			lv.Index = first
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	return lv, nil
}

func (p *parser) parseInstance() (Item, error) {
	line := p.cur().line
	modName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst := &InstanceItem{ModName: modName, Line: line,
		Params: map[string]Expr{}, Conns: map[string]Expr{}}
	if p.acceptPunct("#") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if err := p.expectPunct("."); err != nil {
				return nil, err
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			inst.Params[pname] = val
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	inst.InstName, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		for {
			if err := p.expectPunct("."); err != nil {
				return nil, p.errf("only named port connections are supported")
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if p.isPunct(")") {
				inst.Conns[pname] = nil
			} else {
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				inst.Conns[pname] = val
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return inst, nil
}

// Expression parsing: precedence climbing. Verilog precedence, high to low:
// unary; ** ; * / %; + -; << >> >>>; < <= > >=; == !=; &; ^; |; &&; ||; ?:
var binPrec = map[string]int{
	"**": 11,
	"*":  10, "/": 10, "%": 10,
	"+": 9, "-": 9,
	"<<": 8, ">>": 8, ">>>": 8, "<<<": 8,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"&":  5,
	"^":  4,
	"|":  3,
	"&&": 2,
	"||": 1,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	line := p.cur().line
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("?") {
		t, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		f, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: cond, T: t, F: f, Line: line}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := t.text
		line := t.line
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, X: lhs, Y: rhs, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "~", "!", "-", "+", "&", "|", "^":
			p.pos++
			// handle ~| ~& ~^ reductions
			op := t.text
			if op == "~" && p.cur().kind == tokPunct {
				switch p.cur().text {
				case "|", "&", "^":
					op = "~" + p.cur().text
					p.pos++
				}
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if op == "+" {
				return x, nil
			}
			return &UnaryExpr{Op: op, X: x, Line: t.line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("[") {
		line := p.cur().line
		p.pos++
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel := &SelectExpr{Base: base, Line: line}
		if p.acceptPunct(":") {
			sel.MSB = first
			sel.LSB, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		} else {
			sel.Index = first
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		base = sel
	}
	return base, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return decodeNumber(t)
	case t.kind == tokIdent:
		p.pos++
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	case p.acceptPunct("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isPunct("{"):
		line := t.line
		p.pos++
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// {n{expr}} replication?
		if p.isPunct("{") {
			p.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return &RepeatExpr{Count: first, X: inner, Line: line}, nil
		}
		cat := &ConcatExpr{Parts: []Expr{first}, Line: line}
		for p.acceptPunct(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, e)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return cat, nil
	}
	return nil, p.errf("expected expression")
}

// decodeNumber parses Verilog literal text into value and width.
func decodeNumber(t token) (Expr, error) {
	s := strings.ReplaceAll(t.text, "_", "")
	q := strings.IndexByte(s, '\'')
	if q < 0 {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad number %q", t.line, t.text)
		}
		return &NumExpr{Val: v, Width: 0, Line: t.line}, nil
	}
	width := 0
	if q > 0 {
		w, err := strconv.Atoi(s[:q])
		if err != nil || w < 1 || w > 64 {
			return nil, fmt.Errorf("verilog: line %d: bad literal size in %q (1..64 supported)", t.line, t.text)
		}
		width = w
	}
	rest := s[q+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return nil, fmt.Errorf("verilog: line %d: truncated literal %q", t.line, t.text)
	}
	base := 10
	switch rest[0] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	}
	digits := rest[1:]
	if strings.ContainsAny(digits, "xXzZ") {
		// x/z bits are not supported in the two-state engine; treat as 0,
		// matching Verilator's default two-state conversion.
		digits = strings.Map(func(r rune) rune {
			if r == 'x' || r == 'X' || r == 'z' || r == 'Z' {
				return '0'
			}
			return r
		}, digits)
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("verilog: line %d: bad literal %q", t.line, t.text)
	}
	return &NumExpr{Val: v, Width: width, Line: t.line}, nil
}
