package verilog

// AST node definitions for the supported Verilog subset. Positions are
// line numbers for error reporting during elaboration.

// SourceFile is a parsed compilation unit: one or more modules.
type SourceFile struct {
	Modules []*ModuleDecl
}

// ModuleByName returns the named module, or nil.
func (s *SourceFile) ModuleByName(name string) *ModuleDecl {
	for _, m := range s.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ModuleDecl is one module ... endmodule.
type ModuleDecl struct {
	Name   string
	Params []*ParamDecl // header #(...) parameters
	Ports  []*PortDecl  // ANSI port list
	Items  []Item
	Line   int
}

// ParamDecl is a parameter or localparam.
type ParamDecl struct {
	Name  string
	Value Expr
	Local bool
	Line  int
}

// Dir is a port direction.
type Dir int

// Port directions.
const (
	DirInput Dir = iota
	DirOutput
)

// PortDecl is one ANSI-style port declaration.
type PortDecl struct {
	Name  string
	Dir   Dir
	IsReg bool // output reg / output logic
	MSB   Expr // nil for scalar
	LSB   Expr
	Line  int
}

// Item is a module-level item.
type Item interface{ item() }

// NetDecl declares wires, regs, or memories.
type NetDecl struct {
	IsReg bool
	Names []NetName
	MSB   Expr // vector range, nil for scalar
	LSB   Expr
	Line  int
}

// NetName is one declarator within a NetDecl; ArrayMSB/LSB non-nil makes it
// a memory. An optional initialiser (wire x = expr) becomes an assign.
type NetName struct {
	Name     string
	ArrayMSB Expr
	ArrayLSB Expr
	Init     Expr
}

// AssignItem is a continuous assignment.
type AssignItem struct {
	LHS  *LValue
	RHS  Expr
	Line int
}

// AlwaysKind distinguishes clocked from combinational always blocks.
type AlwaysKind int

// Always block kinds.
const (
	AlwaysSeq  AlwaysKind = iota // @(posedge clk [or ...])
	AlwaysComb                   // @* / @(...) level-sensitive / always_comb
)

// AlwaysItem is an always block.
type AlwaysItem struct {
	Kind AlwaysKind
	Body []Stmt
	Line int
}

// InstanceItem is a module instantiation with named connections.
type InstanceItem struct {
	ModName  string
	InstName string
	Params   map[string]Expr // #(.N(8)) overrides
	Conns    map[string]Expr // .port(expr); nil Expr means unconnected
	Line     int
}

func (*NetDecl) item()      {}
func (*AssignItem) item()   {}
func (*AlwaysItem) item()   {}
func (*InstanceItem) item() {}
func (*ParamDecl) item()    {}

// Stmt is a procedural statement.
type Stmt interface{ stmt() }

// AssignStmt is a blocking (=) or non-blocking (<=) assignment.
type AssignStmt struct {
	LHS      *LValue
	RHS      Expr
	Blocking bool
	Line     int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	Matches []Expr // empty means default
	Body    []Stmt
}

// CaseStmt is case ... endcase.
type CaseStmt struct {
	Subject Expr
	Items   []CaseItem
	Line    int
}

// NullStmt is a lone semicolon or an ignored system task call.
type NullStmt struct{}

func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*CaseStmt) stmt()   {}
func (*NullStmt) stmt()   {}

// LValue is an assignment target: name, name[idx] (bit select or memory
// element), or name[msb:lsb] (part select).
type LValue struct {
	Name     string
	Index    Expr // single index (bit or memory word)
	MSB, LSB Expr // part select
	Line     int
}

// Expr is an expression node.
type Expr interface{ expr() }

// NumExpr is a literal with optional explicit size.
type NumExpr struct {
	Val   uint64
	Width int // 0 means unsized (defaults to 32)
	Line  int
}

// IdentExpr references a signal or parameter.
type IdentExpr struct {
	Name string
	Line int
}

// SelectExpr is base[idx] or base[msb:lsb] within an expression.
type SelectExpr struct {
	Base     Expr
	Index    Expr
	MSB, LSB Expr
	Line     int
}

// UnaryExpr applies a unary operator: ~ ! - & | ^ + ~| ~&.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Cond, T, F Expr
	Line       int
}

// ConcatExpr is {a, b, ...}.
type ConcatExpr struct {
	Parts []Expr
	Line  int
}

// RepeatExpr is {n{x}}.
type RepeatExpr struct {
	Count Expr
	X     Expr
	Line  int
}

func (*NumExpr) expr()    {}
func (*IdentExpr) expr()  {}
func (*SelectExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CondExpr) expr()   {}
func (*ConcatExpr) expr() {}
func (*RepeatExpr) expr() {}
