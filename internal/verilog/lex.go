// Package verilog implements gem5rtl's Verilog toolflow: a lexer, parser and
// elaborator for a synthesisable subset of Verilog-2001 (with a few
// SystemVerilog conveniences such as always_ff/always_comb and logic). It
// plays the role Verilator plays in the paper — converting RTL source into a
// compiled, tickable model — by elaborating source text into the
// internal/rtl intermediate representation.
//
// Supported subset: ANSI-style module headers, parameters/localparams,
// wire/reg/logic declarations with vector ranges, memory arrays, continuous
// assigns, always blocks (posedge-clocked with optional async-reset
// sensitivity terms, and combinational @* / always_comb), if/else, case with
// default, blocking and non-blocking assignments, bit/part-select lvalues,
// module instantiation with named connections and parameter overrides, and
// the usual expression operators including concatenation, replication, and
// the conditional operator. Signals are limited to 64 bits.
package verilog

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // raw literal text, decoded by the parser
	tokSysIdent
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexError reports a scan failure with position info.
type lexError struct {
	msg  string
	line int
	col  int
}

func (e *lexError) Error() string {
	return fmt.Sprintf("verilog: line %d:%d: %s", e.line, e.col, e.msg)
}

// multi-character punctuation, longest first so maximal munch works.
var punct3 = []string{"<<<", ">>>", "===", "!=="}
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "**",
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex scans src into tokens, stripping comments.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '\n':
			l.pos++
			l.line++
			l.col = 1
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, &lexError{"unterminated block comment", l.line, l.col}
			}
			for i := 0; i < end+4; i++ {
				if l.src[l.pos] == '\n' {
					l.pos++
					l.line++
					l.col = 1
				} else {
					l.advance(1)
				}
			}
		case c == '"':
			if err := l.scanString(); err != nil {
				return nil, err
			}
		case c == '`':
			// Preprocessor directives: skip the rest of the line (we accept
			// sources with `timescale etc. but don't implement macros).
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case isIdentStart(c):
			l.scanIdent()
		case c == '$':
			l.scanSysIdent()
		case c >= '0' && c <= '9' || c == '\'':
			if err := l.scanNumber(); err != nil {
				return nil, err
			}
		default:
			l.scanPunct()
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line, col: l.col})
	return l.toks, nil
}

func (l *lexer) advance(n int) { l.pos += n; l.col += n }

func (l *lexer) emit(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}

func (l *lexer) scanIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.advance(1)
	}
	l.emit(tokIdent, l.src[start:l.pos], line, col)
}

func (l *lexer) scanSysIdent() {
	line, col := l.line, l.col
	start := l.pos
	l.advance(1)
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.advance(1)
	}
	l.emit(tokSysIdent, l.src[start:l.pos], line, col)
}

func (l *lexer) scanString() error {
	line, col := l.line, l.col
	start := l.pos
	l.advance(1)
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		if l.src[l.pos] == '\n' {
			return &lexError{"unterminated string", line, col}
		}
		l.advance(1)
	}
	if l.pos >= len(l.src) {
		return &lexError{"unterminated string", line, col}
	}
	l.advance(1)
	l.emit(tokString, l.src[start:l.pos], line, col)
	return nil
}

// scanNumber handles plain decimals, based literals (8'hFF, 'b1010, 4'd9),
// and underscores within digits.
func (l *lexer) scanNumber() error {
	line, col := l.line, l.col
	start := l.pos
	// Leading size digits (optional).
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '_') {
		l.advance(1)
	}
	if l.pos < len(l.src) && l.src[l.pos] == '\'' {
		l.advance(1)
		if l.pos < len(l.src) && (l.src[l.pos] == 's' || l.src[l.pos] == 'S') {
			l.advance(1)
		}
		if l.pos >= len(l.src) {
			return &lexError{"truncated based literal", line, col}
		}
		base := l.src[l.pos]
		switch base {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.advance(1)
		default:
			return &lexError{fmt.Sprintf("bad numeric base %q", string(base)), line, col}
		}
		for l.pos < len(l.src) && (isHexDigit(l.src[l.pos]) || l.src[l.pos] == '_' ||
			l.src[l.pos] == 'x' || l.src[l.pos] == 'X' || l.src[l.pos] == 'z' || l.src[l.pos] == 'Z') {
			l.advance(1)
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], line, col)
	return nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) scanPunct() {
	line, col := l.line, l.col
	rest := l.src[l.pos:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			l.advance(3)
			l.emit(tokPunct, p, line, col)
			return
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			l.advance(2)
			l.emit(tokPunct, p, line, col)
			return
		}
	}
	l.advance(1)
	l.emit(tokPunct, rest[:1], line, col)
}
