package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Samples: []Sample{
			{Component: "nvdla0", Kind: "tick", Events: 1000, HostNS: 8_000_000},
			{Component: "DDR4-4ch", Kind: "issue", Events: 500, HostNS: 1_500_000},
			{Component: "mem_xbar", Kind: "front-drain", Events: 300, HostNS: 500_000},
		},
		WallNS: 10_000_000,
	}
}

func TestMergeSumsByOwner(t *testing.T) {
	var agg Report
	agg.Merge(sampleReport())
	agg.Merge(sampleReport())
	agg.Merge(nil) // nil is a no-op
	if agg.TotalEvents() != 2*1800 {
		t.Fatalf("merged events = %d, want %d", agg.TotalEvents(), 2*1800)
	}
	if len(agg.Samples) != 3 {
		t.Fatalf("merge duplicated owners: %d samples, want 3", len(agg.Samples))
	}
	if agg.WallNS != 20_000_000 {
		t.Fatalf("merged wall = %d", agg.WallNS)
	}
	for _, s := range agg.Samples {
		if s.Component == "nvdla0" && s.Events != 2000 {
			t.Fatalf("nvdla0 events = %d, want 2000", s.Events)
		}
	}
}

func TestCloneIsDeepAndNilSafe(t *testing.T) {
	var nilRep *Report
	if nilRep.Clone() != nil {
		t.Fatal("nil Clone should stay nil")
	}
	orig := sampleReport()
	c := orig.Clone()
	c.Samples[0].Events = 1
	if orig.Samples[0].Events == 1 {
		t.Fatal("Clone shares sample storage with the original")
	}
}

func TestTableSharesSumToOne(t *testing.T) {
	r := sampleReport()
	for _, k := range []int{0, 1, 2, 3, 100} {
		rows := r.Table(k)
		var sum float64
		for _, row := range rows {
			sum += row.Share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Table(%d) shares sum to %v, want 1", k, sum)
		}
	}
	// Top-1 truncation must absorb the rest into an "(other)" row.
	rows := r.Table(1)
	if len(rows) != 2 || rows[1].Component != "(other)" {
		t.Fatalf("Table(1) = %+v, want one row plus (other)", rows)
	}
	if rows[0].Component != "nvdla0" {
		t.Fatalf("Table(1) top row = %s, want nvdla0 (largest host time)", rows[0].Component)
	}
	if rows[1].Events != 800 {
		t.Fatalf("(other) events = %d, want 800", rows[1].Events)
	}
}

func TestTableFallsBackToEventShares(t *testing.T) {
	// No sampled time at all (a very short run): shares come from counts.
	r := &Report{Samples: []Sample{
		{Component: "a", Kind: "x", Events: 3},
		{Component: "b", Kind: "y", Events: 1},
	}}
	rows := r.Table(0)
	if math.Abs(rows[0].Share-0.75) > 1e-9 {
		t.Fatalf("event-share fallback: top share %v, want 0.75", rows[0].Share)
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("folded output has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	// Sorted by host time: nvdla0 first, microsecond values.
	if lines[0] != "nvdla0;tick 8000" {
		t.Fatalf("folded line = %q, want %q", lines[0], "nvdla0;tick 8000")
	}
	for _, l := range lines {
		if len(strings.Fields(l)) != 2 {
			t.Fatalf("folded line %q is not 'stack value'", l)
		}
	}
}

func TestWritePprofIsGzippedProto(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile payload")
	}
	// The string table must carry every frame name.
	for _, want := range []string{"nvdla0", "tick", "DDR4-4ch", "mem_xbar"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile missing string %q", want)
		}
	}
}

func TestExportSelectsFormatByExtension(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport()

	var table bytes.Buffer
	if err := r.Export("", &table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "nvdla0/tick") {
		t.Fatalf("empty path did not render a table:\n%s", table.String())
	}

	folded := filepath.Join(dir, "out.folded")
	if err := r.Export(folded, nil); err != nil {
		t.Fatal(err)
	}
	fb, _ := os.ReadFile(folded)
	if !strings.HasPrefix(string(fb), "nvdla0;tick ") {
		t.Fatalf("folded export content: %q", fb)
	}

	pb := filepath.Join(dir, "out.pb.gz")
	if err := r.Export(pb, nil); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(pb)
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("pb.gz export is not gzip (magic %x)", raw[:2])
	}
}

func TestPromNameSanitises(t *testing.T) {
	cases := map[string]string{
		"sweepd.points.pending": "sweepd_points_pending",
		"host.ckpt.hit":         "host_ckpt_hit",
		"obs.lat.l2-llc.p99":    "obs_lat_l2_llc_p99",
		"9lives":                "_9lives",
		"ok_name:x":             "ok_name:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromEscapesLabels(t *testing.T) {
	r := &Report{Samples: []Sample{
		{Component: `c"omp\one`, Kind: "k\nind", Events: 1, HostNS: 1},
	}}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf, "gem5rtl_"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `component="c\"omp\\one"`) {
		t.Errorf("quote/backslash not escaped exactly once:\n%s", out)
	}
	if !strings.Contains(out, `kind="k\nind"`) {
		t.Errorf("newline not escaped:\n%s", out)
	}
	if strings.Contains(out, "\n\n\n") || strings.Count(out, "# TYPE gem5rtl_selfprof_events_total counter") != 1 {
		t.Errorf("family framing broken:\n%s", out)
	}
}
