package prof

import (
	"compress/gzip"
	"io"
)

// WritePprof writes the report as a gzipped pprof profile (the profile.proto
// wire format `go tool pprof` and the pprof web UI consume). Each sample is a
// two-frame stack — component as the root frame, kind as the leaf — with two
// values: the exact event/phase count and the sampled host nanoseconds.
//
// The encoder below hand-writes the protobuf wire format; the profile schema
// is tiny and stable, and the repository deliberately takes no external
// dependencies for it.
func (r *Report) WritePprof(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(r.marshalPprof()); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// marshalPprof encodes the profile.proto message.
func (r *Report) marshalPprof() []byte {
	var b protoBuf

	// String table. Index 0 must be the empty string.
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	// sample_type: (events, count), (time, nanoseconds).
	evType := intern("events")
	evUnit := intern("count")
	tmType := intern("time")
	tmUnit := intern("nanoseconds")

	// Functions and locations: one of each per unique frame string. Function
	// and location IDs must be nonzero.
	type frame struct{ fnID, locID uint64 }
	frames := map[string]frame{}
	var frameOrder []string
	frameFor := func(name string) frame {
		if f, ok := frames[name]; ok {
			return f
		}
		id := uint64(len(frames) + 1)
		f := frame{fnID: id, locID: id}
		frames[name] = f
		frameOrder = append(frameOrder, name)
		intern(name)
		return f
	}

	// Samples: leaf-first location order (kind, then component).
	type sampleRec struct {
		locs   []uint64
		values [2]int64
	}
	var recs []sampleRec
	for _, s := range r.Sorted() {
		var locs []uint64
		if s.Kind != "" {
			locs = append(locs, frameFor(s.Kind).locID)
		}
		comp := s.Component
		if comp == "" {
			comp = "(unattributed)"
		}
		locs = append(locs, frameFor(comp).locID)
		recs = append(recs, sampleRec{locs: locs, values: [2]int64{int64(s.Events), s.HostNS}})
	}

	// Field 1: sample_type (ValueType{type=1, unit=2}).
	var vt protoBuf
	vt.varintField(1, uint64(evType))
	vt.varintField(2, uint64(evUnit))
	b.bytesField(1, vt.buf)
	vt.buf = vt.buf[:0]
	vt.varintField(1, uint64(tmType))
	vt.varintField(2, uint64(tmUnit))
	b.bytesField(1, vt.buf)

	// Field 2: samples (Sample{location_id=1 packed, value=2 packed}).
	for _, rec := range recs {
		var sb, pk protoBuf
		for _, l := range rec.locs {
			pk.varint(l)
		}
		sb.bytesField(1, pk.buf)
		pk.buf = pk.buf[:0]
		pk.varint(uint64(rec.values[0]))
		pk.varint(uint64(rec.values[1]))
		sb.bytesField(2, pk.buf)
		b.bytesField(2, sb.buf)
	}

	// Field 4: locations (Location{id=1, line=4 -> Line{function_id=1}}).
	for _, name := range frameOrder {
		f := frames[name]
		var lb, ln protoBuf
		lb.varintField(1, f.locID)
		ln.varintField(1, f.fnID)
		lb.bytesField(4, ln.buf)
		b.bytesField(4, lb.buf)
	}

	// Field 5: functions (Function{id=1, name=2, system_name=3}).
	for _, name := range frameOrder {
		f := frames[name]
		nameIdx := uint64(strIdx[name])
		var fb protoBuf
		fb.varintField(1, f.fnID)
		fb.varintField(2, nameIdx)
		fb.varintField(3, nameIdx)
		b.bytesField(5, fb.buf)
	}

	// Field 6: string table.
	for _, s := range strs {
		b.bytesField(6, []byte(s))
	}

	// Field 10: duration_nanos.
	if r.WallNS > 0 {
		b.varintField(10, uint64(r.WallNS))
	}
	return b.buf
}

// protoBuf is a minimal protobuf wire-format writer: varints and
// length-delimited fields are all the profile schema needs.
type protoBuf struct{ buf []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

// varintField writes a varint-typed (wire type 0) field.
func (b *protoBuf) varintField(field int, v uint64) {
	b.varint(uint64(field)<<3 | 0)
	b.varint(v)
}

// bytesField writes a length-delimited (wire type 2) field.
func (b *protoBuf) bytesField(field int, p []byte) {
	b.varint(uint64(field)<<3 | 2)
	b.varint(uint64(len(p)))
	b.buf = append(b.buf, p...)
}
