package prof

import (
	"fmt"
	"io"
	"strings"

	"gem5rtl/internal/stats"
)

// PromName sanitises an internal dotted statistic name into a legal
// Prometheus metric name: every character outside [a-zA-Z0-9_:] becomes an
// underscore, and a leading digit is prefixed with one.
func PromName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text per the Prometheus text exposition
// format (backslash and newline).
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value (backslash, quote, newline).
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeMetric emits one HELP/TYPE/value family with no labels.
func writeMetric(w io.Writer, name, help, typ string, value float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
		name, promEscapeHelp(help), name, typ, name, value)
	return err
}

// WritePromRegistry renders every statistic of a registry as a gauge family
// in the Prometheus text exposition format, in deterministic sorted order.
// prefix namespaces the metric names (e.g. "gem5rtl_"); the dotted internal
// names are sanitised with PromName.
func WritePromRegistry(w io.Writer, prefix string, reg *stats.Registry) error {
	for _, v := range reg.SortedValues() {
		if err := writeMetric(w, prefix+PromName(v.Name), v.Desc, "gauge", v.Get()); err != nil {
			return err
		}
	}
	return nil
}

// WriteProm renders the attribution report as two labelled counter families,
//
//	<prefix>selfprof_events_total{component="...",kind="..."}
//	<prefix>selfprof_seconds_total{component="...",kind="..."}
//
// in deterministic sorted order, for the sweep service's /v1/metrics plane.
func (r *Report) WriteProm(w io.Writer, prefix string) error {
	sorted := r.Sorted()
	evName := prefix + "selfprof_events_total"
	tmName := prefix + "selfprof_seconds_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Exact simulator events and engine phases dispatched per component owner.\n# TYPE %s counter\n", evName, evName); err != nil {
		return err
	}
	for _, s := range sorted {
		if _, err := fmt.Fprintf(w, "%s{component=\"%s\",kind=\"%s\"} %d\n",
			evName, promEscapeLabel(s.Component), promEscapeLabel(s.Kind), s.Events); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP %s Sampled host time charged per component owner.\n# TYPE %s counter\n", tmName, tmName); err != nil {
		return err
	}
	for _, s := range sorted {
		if _, err := fmt.Fprintf(w, "%s{component=\"%s\",kind=\"%s\"} %g\n",
			tmName, promEscapeLabel(s.Component), promEscapeLabel(s.Kind), float64(s.HostNS)/1e9); err != nil {
			return err
		}
	}
	return nil
}
