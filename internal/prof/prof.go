// Package prof turns the event-kernel self-profiler's raw attribution
// (sim.Profiler) into the forms users consume: sorted attribution tables
// with host-time shares, folded-stack flame-graph exports, pprof-compatible
// profiles, and Prometheus text-exposition metric families for the sweep
// service's fleet metrics plane.
//
// The split of responsibilities mirrors the rest of the observability stack:
// the sim package owns the zero-cost-when-off hot path and the exact,
// deterministic per-owner event counts; this package owns everything that
// formats, aggregates or serialises those counts, none of which may ever
// touch the dispatch loop.
package prof

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gem5rtl/internal/sim"
)

// Sample is one attribution row: a (component, kind) owner with its exact
// event/phase count and sampled host nanoseconds. Event counts are
// machine-independent and deterministic; HostNS is sampled wall time and is
// excluded from every determinism or baseline comparison (the BENCH gating
// policy).
type Sample struct {
	Component string `json:"component"`
	Kind      string `json:"kind"`
	Events    uint64 `json:"events"`
	HostNS    int64  `json:"host_ns,omitempty"`
}

// Report is a set of attribution samples, optionally carrying the host wall
// time of the run(s) it covers. Reports merge across runs (sweep points) by
// (component, kind).
type Report struct {
	Samples []Sample `json:"samples"`
	WallNS  int64    `json:"wall_ns,omitempty"`
}

// FromQueue builds a Report from the profiler attached to q, or nil when
// profiling is off.
func FromQueue(q *sim.EventQueue) *Report {
	p := q.SelfProfiler()
	if p == nil {
		return nil
	}
	stats := p.Stats()
	r := &Report{Samples: make([]Sample, len(stats)), WallNS: p.WallNS()}
	for i, s := range stats {
		r.Samples[i] = Sample{Component: s.Component, Kind: s.Kind, Events: s.Events, HostNS: s.HostNS}
	}
	return r
}

// FromQueues builds one merged Report across shard queues (soc
// System.ShardQueues), or nil when profiling is off everywhere. Event
// counts sum across shards; the wall time is the maximum per-shard wall
// time, since shards run concurrently and summing would overcount the run.
func FromQueues(qs ...*sim.EventQueue) *Report {
	var out *Report
	var wall int64
	for _, q := range qs {
		r := FromQueue(q)
		if r == nil {
			continue
		}
		if r.WallNS > wall {
			wall = r.WallNS
		}
		if out == nil {
			out = r
		} else {
			out.Merge(r)
		}
	}
	if out != nil {
		out.WallNS = wall
	}
	return out
}

// Merge folds other's samples into r by (component, kind), summing counts,
// times and wall time. A nil other is a no-op.
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	idx := make(map[[2]string]int, len(r.Samples))
	for i, s := range r.Samples {
		idx[[2]string{s.Component, s.Kind}] = i
	}
	for _, s := range other.Samples {
		k := [2]string{s.Component, s.Kind}
		if i, ok := idx[k]; ok {
			r.Samples[i].Events += s.Events
			r.Samples[i].HostNS += s.HostNS
		} else {
			idx[k] = len(r.Samples)
			r.Samples = append(r.Samples, s)
		}
	}
	r.WallNS += other.WallNS
}

// Clone returns a deep copy of the report.
func (r *Report) Clone() *Report {
	if r == nil {
		return nil
	}
	c := &Report{Samples: make([]Sample, len(r.Samples)), WallNS: r.WallNS}
	copy(c.Samples, r.Samples)
	return c
}

// TotalNS returns the summed sampled host time across all samples.
func (r *Report) TotalNS() int64 {
	var t int64
	for _, s := range r.Samples {
		t += s.HostNS
	}
	return t
}

// TotalEvents returns the summed event/phase count across all samples.
func (r *Report) TotalEvents() uint64 {
	var t uint64
	for _, s := range r.Samples {
		t += s.Events
	}
	return t
}

// Sorted returns the samples ordered by descending host time, breaking ties
// by descending event count and then by name, so tables and exports are
// stable for a given measurement.
func (r *Report) Sorted() []Sample {
	out := make([]Sample, len(r.Samples))
	copy(out, r.Samples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.HostNS != b.HostNS {
			return a.HostNS > b.HostNS
		}
		if a.Events != b.Events {
			return a.Events > b.Events
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Kind < b.Kind
	})
	return out
}

// Row is one rendered attribution-table row. Share is the row's fraction of
// the report's total sampled host time (falling back to event counts when no
// time was sampled, e.g. on very short runs); shares across a Table sum to 1.
type Row struct {
	Component string  `json:"component"`
	Kind      string  `json:"kind"`
	Events    uint64  `json:"events"`
	HostNS    int64   `json:"host_ns,omitempty"`
	Share     float64 `json:"share"`
}

// Table returns the top-k attribution rows by host-time share plus, when
// rows were cut, a final "(other)" row absorbing the remainder, so the
// shares of the returned rows always sum to 1 (given any activity at all).
// k <= 0 returns every row.
func (r *Report) Table(k int) []Row {
	sorted := r.Sorted()
	totalNS := r.TotalNS()
	totalEv := r.TotalEvents()
	share := func(s Sample) float64 {
		if totalNS > 0 {
			return float64(s.HostNS) / float64(totalNS)
		}
		if totalEv > 0 {
			return float64(s.Events) / float64(totalEv)
		}
		return 0
	}
	if k <= 0 || k >= len(sorted) {
		rows := make([]Row, len(sorted))
		for i, s := range sorted {
			rows[i] = Row{s.Component, s.Kind, s.Events, s.HostNS, share(s)}
		}
		return rows
	}
	rows := make([]Row, 0, k+1)
	for _, s := range sorted[:k] {
		rows = append(rows, Row{s.Component, s.Kind, s.Events, s.HostNS, share(s)})
	}
	var rest Row
	rest.Component, rest.Kind = "(other)", ""
	for _, s := range sorted[k:] {
		rest.Events += s.Events
		rest.HostNS += s.HostNS
		rest.Share += share(s)
	}
	return append(rows, rest)
}

// WriteTable renders a human-readable attribution table (top-k rows; k <= 0
// for all) to w, one row per line:
//
//	73.2%  812.4ms  1204883  nvdla0/rtl-comb
func (r *Report) WriteTable(w io.Writer, k int) error {
	for _, row := range r.Table(k) {
		name := row.Component
		if row.Kind != "" {
			name += "/" + row.Kind
		}
		_, err := fmt.Fprintf(w, "%6.1f%%  %9.1fms  %12d  %s\n",
			row.Share*100, float64(row.HostNS)/1e6, row.Events, name)
		if err != nil {
			return err
		}
	}
	return nil
}

// Export writes the report to path, choosing the format by extension: a
// ".pb.gz" suffix selects the gzipped pprof protobuf profile (go tool pprof),
// anything else the folded-stacks text (flamegraph.pl, speedscope). An empty
// path renders the top-15 attribution table to table instead — the
// -self-profile-out flag default across the binaries.
func (r *Report) Export(path string, table io.Writer) error {
	if path == "" {
		return r.WriteTable(table, 15)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := r.WriteFolded
	if strings.HasSuffix(path, ".pb.gz") {
		write = r.WritePprof
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteFolded writes the report as Brendan Gregg folded stacks — one
// "component;kind value" line per sample — directly consumable by
// flamegraph.pl or speedscope. The value is sampled host microseconds when
// any time was collected, otherwise the exact event count.
func (r *Report) WriteFolded(w io.Writer) error {
	useNS := r.TotalNS() > 0
	for _, s := range r.Sorted() {
		frames := s.Component
		if s.Kind != "" {
			frames += ";" + s.Kind
		}
		v := s.Events
		if useNS {
			v = uint64(s.HostNS / 1000)
			if v == 0 && s.HostNS > 0 {
				v = 1
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", frames, v); err != nil {
			return err
		}
	}
	return nil
}
