package soc_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/workload"
)

func TestAttachTracerRejectsUnknownFlag(t *testing.T) {
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	s := soc.MustBuild(cfg)
	if _, err := s.AttachTracer(obs.Config{Flags: "Cache,Typo"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// pmuTraceSystem reproduces the gem5rtl -cores 1 -pmu -program sort setup.
func pmuTraceSystem(t testing.TB) *soc.System {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "DDR4-1ch"
	cfg.WithPMU = true
	s := soc.MustBuild(cfg)
	return s
}

func startPMUSort(t testing.TB, s *soc.System) {
	t.Helper()
	s.PMU.Start()
	host := experiments.NewAXIHost(s.Queue)
	port.Bind(host.Port(), s.PMU.CPUPort(0))
	host.Write(pmu.RegEnable, 0x3F)
	src := workload.SortBenchmark(workload.SortParams{N: 40, SleepUs: 100})
	if err := s.LoadProgram(0, src); err != nil {
		t.Fatal(err)
	}
	s.StartCores(0)
}

// TestTraceGoldenPMUFirst1000Ticks pins the exact trace a -debug-flags=all
// PMU run emits in its first 1000 ticks against a committed golden file.
// The simulation is deterministic, so any drift here is a real behaviour or
// format change. Regenerate with OBS_GOLDEN_UPDATE=1.
func TestTraceGoldenPMUFirst1000Ticks(t *testing.T) {
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	// Packet IDs appear in Port-flag trace lines; rewind the process-global
	// allocator so the trace matches what a fresh process emits.
	port.SetPacketIDForTest(0)

	s := pmuTraceSystem(t)
	var buf bytes.Buffer
	if _, err := s.AttachTracer(obs.Config{Flags: "all", Out: &buf, End: 1000}); err != nil {
		t.Fatal(err)
	}
	startPMUSort(t, s)
	s.Queue.RunUntil(5000) // well past the window; End clips at tick 1000

	golden := filepath.Join("testdata", "trace_pmu_first1000.golden")
	if os.Getenv("OBS_GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with OBS_GOLDEN_UPDATE=1 to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestTracingIsTransparent: an all-flags tracer (with port taps interposed)
// must not perturb the simulation — final tick, event count, state hash and
// every statistic match an untraced run exactly.
func TestTracingIsTransparent(t *testing.T) {
	base := port.PacketIDMark()

	plain := pmuTraceSystem(t)
	startPMUSort(t, plain)
	plain.Queue.RunUntil(100 * sim.Microsecond)
	plainDigest := runDigest(t, plain)

	port.SetPacketIDForTest(base)
	traced := pmuTraceSystem(t)
	var sinkBuf bytes.Buffer
	if _, err := traced.AttachTracer(obs.Config{Flags: "all", Out: &sinkBuf}); err != nil {
		t.Fatal(err)
	}
	startPMUSort(t, traced)
	traced.Queue.RunUntil(100 * sim.Microsecond)
	if got := runDigest(t, traced); got != plainDigest {
		t.Errorf("tracing perturbed the run:\n--- plain ---\n%s--- traced ---\n%s", plainDigest, got)
	}
	if sinkBuf.Len() == 0 {
		t.Fatal("all-flags trace emitted nothing")
	}
}

// TestLatencyProfileCheckpointEquivalence extends the headline
// restore-equivalence property to runs with a latency profile attached:
// histograms and in-flight packet stamps travel in the checkpoint, the split
// run's digest (whose state hash covers the obs.latency section) matches the
// uninterrupted run bit-for-bit, and packets straddling the checkpoint
// produce sane (non-wrapped) latencies.
func TestLatencyProfileCheckpointEquivalence(t *testing.T) {
	const limit = 8 * sim.Second
	ctx := context.Background()
	base := port.PacketIDMark()

	cold := nvdlaSystem(t, "DDR4-1ch", "sanity3")
	cold.AttachLatencyProfile(nil)
	coldDone, err := cold.RunUntilNVDLAsDone(limit)
	if err != nil {
		t.Fatal(err)
	}
	coldDigest := runDigest(t, cold)

	port.SetPacketIDForTest(base)
	split := nvdlaSystem(t, "DDR4-1ch", "sanity3")
	split.AttachLatencyProfile(nil)
	if _, _, err := split.RunNVDLAPhase(ctx, coldDone/2); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := split.Save(&snap); err != nil {
		t.Fatal(err)
	}

	warm := soc.MustBuild(split.Cfg)
	warm.AttachLatencyProfile(nil)
	if _, err := warm.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	warmDone, remaining, err := warm.RunNVDLAPhase(ctx, limit)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 || warmDone != coldDone {
		t.Fatalf("restored run diverged: done=%d remaining=%d, want done=%d", warmDone, remaining, coldDone)
	}
	if got := runDigest(t, warm); got != coldDigest {
		t.Errorf("digest diverges with latency profile attached:\n--- cold ---\n%s--- warm ---\n%s", coldDigest, got)
	}
	sampled := false
	for _, tap := range warm.Latency.Taps() {
		h := tap.Hist()
		if h.Count() > 0 {
			sampled = true
		}
		// A packet straddling the checkpoint whose stamp were lost or
		// re-zeroed would register a wrapped/absurd latency.
		if h.Max() > uint64(coldDone) {
			t.Errorf("tap %s max latency %d exceeds run length %d", tap.Name(), h.Max(), coldDone)
		}
	}
	if !sampled {
		t.Fatal("no tap recorded any latency sample")
	}
}

// TestLatencyProfileMissingOnRestore: a checkpoint written with a profile
// refuses to restore into a system without one (the stream has the
// obs.latency section where soc.end is expected).
func TestLatencyProfileMissingOnRestore(t *testing.T) {
	s := nvdlaSystem(t, "ideal", "sanity3")
	s.AttachLatencyProfile(nil)
	if _, _, err := s.RunNVDLAPhase(context.Background(), 10*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	bare := soc.MustBuild(s.Cfg)
	if _, err := bare.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("profile-bearing checkpoint restored into a bare system")
	}
}

// dropResponses swallows memory responses to wedge the accelerator.
type dropResponses struct{}

func (dropResponses) TapReq(*port.Packet) port.TapAction  { return port.TapPass }
func (dropResponses) TapResp(*port.Packet) port.TapAction { return port.TapDrop }

// TestWatchdogDiagnosticIncludesTraceTail: with a tracer attached, a hang
// diagnostic carries the tripped components' recent trace lines.
func TestWatchdogDiagnosticIncludesTraceTail(t *testing.T) {
	s := nvdlaSystem(t, "ideal", "sanity3")
	if _, err := s.AttachTracer(obs.Config{Flags: "NVDLA,RTL"}); err != nil {
		t.Fatal(err)
	}
	s.AttachWatchdog(guard.Config{})
	port.Interpose(s.NVDLAs[0].MemPort(0), dropResponses{})
	_, _, err := s.RunNVDLAPhase(context.Background(), sim.Second)
	if err == nil {
		t.Fatal("lost responses did not trip the watchdog")
	}
	if !guard.IsHang(err) {
		t.Fatalf("err is %T (%v), want a HangError", err, err)
	}
	if !strings.Contains(err.Error(), "\n    | ") {
		t.Fatalf("diagnostic has no trace tail:\n%s", err.Error())
	}
}
