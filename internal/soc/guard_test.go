package soc

import (
	"context"
	"strings"
	"testing"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

func buildGuardTestSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "ideal"
	cfg.NVDLAs = 1
	cfg.NVDLAMaxInflight = 64
	s := MustBuild(cfg)
	s.NVDLAs[0].Start()
	s.PlayTrace(0, smallTrace(0x1000_0000))
	return s
}

// The watchdog observes but never perturbs: a clean run with it attached
// completes at the exact tick of an unwatched run, with a nil Err.
func TestWatchdogTransparentOnCleanRun(t *testing.T) {
	plain := buildGuardTestSystem(t)
	wantDone, err := plain.RunUntilNVDLAsDone(100 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	s := buildGuardTestSystem(t)
	wd := s.AttachWatchdog(guard.Config{})
	done, err := s.RunUntilNVDLAsDone(100 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Err() != nil {
		t.Fatalf("clean run tripped the watchdog: %v", wd.Err())
	}
	if done != wantDone {
		t.Fatalf("watched run finished at %d, unwatched at %d", done, wantDone)
	}
}

// dropAllResponses swallows every memory response: the accelerator's
// transaction table can never drain, the canonical lost-transfer hang.
type dropAllResponses struct{}

func (dropAllResponses) TapReq(*port.Packet) port.TapAction  { return port.TapPass }
func (dropAllResponses) TapResp(*port.Packet) port.TapAction { return port.TapDrop }

// A wedged run is converted into a structured HangError by RunNVDLAPhase
// instead of idling to the time limit.
func TestWatchdogReapsLostResponses(t *testing.T) {
	s := buildGuardTestSystem(t)
	s.AttachWatchdog(guard.Config{})
	port.Interpose(s.NVDLAs[0].MemPort(0), dropAllResponses{})

	_, _, err := s.RunNVDLAPhase(context.Background(), sim.Second)
	if err == nil {
		t.Fatal("lost responses did not trip the watchdog")
	}
	if !guard.IsHang(err) {
		t.Fatalf("err is %T (%v), want a HangError", err, err)
	}
	msg := err.Error()
	for _, want := range []string{"watchdog tripped", "in-flight work", "pending events"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	// The hang was detected long before the 1 s limit.
	if s.Queue.Now() >= sim.Second {
		t.Fatalf("watchdog did not fire early: now = %d", s.Queue.Now())
	}
}

// AttachWatchdog wires every major component; a trip's diagnostic therefore
// names the stuck accelerator's transaction table.
func TestWatchdogDiagnosticNamesComponents(t *testing.T) {
	s := buildGuardTestSystem(t)
	wd := s.AttachWatchdog(guard.Config{})
	port.Interpose(s.NVDLAs[0].MemPort(0), dropAllResponses{})
	_, _, err := s.RunNVDLAPhase(context.Background(), sim.Second)
	if err == nil {
		t.Fatal("expected a hang")
	}
	if !guard.IsHang(err) {
		t.Fatalf("err is %T", err)
	}
	name := s.NVDLAs[0].Name()
	if !strings.Contains(err.Error(), name) {
		t.Fatalf("diagnostic does not name %q:\n%s", name, err.Error())
	}
	if wd.Err() == nil {
		t.Fatal("watchdog Err not latched")
	}
}
