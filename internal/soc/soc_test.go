package soc

import (
	"bytes"
	"strings"
	"testing"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/trace"
	"gem5rtl/internal/workload"
)

func TestBuildDefaultConfigMatchesTable1(t *testing.T) {
	s := MustBuild(DefaultConfig())
	if len(s.Cores) != 8 {
		t.Fatalf("cores = %d, want 8", len(s.Cores))
	}
	if s.Clock.Frequency() != 2_000_000_000 {
		t.Fatalf("core clock %d", s.Clock.Frequency())
	}
	if got := s.L1Ds[0].Config(); got.SizeBytes != 64<<10 || got.Assoc != 4 || got.MSHRs != 24 {
		t.Fatalf("L1D config %+v", got)
	}
	if got := s.L1Is[0].Config(); got.SizeBytes != 64<<10 || got.MSHRs != 8 {
		t.Fatalf("L1I config %+v", got)
	}
	if got := s.L2s[0].Config(); got.SizeBytes != 256<<10 || got.Assoc != 8 || !got.StridePrefetch {
		t.Fatalf("L2 config %+v", got)
	}
	if got := s.LLC.Config(); got.SizeBytes != 16<<20 || got.Assoc != 16 || got.MSHRs != 256 {
		t.Fatalf("LLC config %+v", got)
	}
	if s.DRAM == nil || s.DRAM.Config().Name != "DDR4-4ch" {
		t.Fatal("default memory not DDR4-4ch")
	}
}

func TestUnknownMemoryRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Memory = "SDRAM-66"
	if _, err := Build(cfg); err == nil {
		t.Fatal("bad memory technology accepted")
	}
}

func TestProgramRunsThroughFullHierarchy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	s := MustBuild(cfg)
	if err := s.LoadProgram(0, workload.SimpleLoop(200)); err != nil {
		t.Fatal(err)
	}
	s.Cores[0].OnExit = func(int64) { s.Queue.ExitSimLoop("exit") }
	s.StartCores(0)
	s.Queue.RunUntil(20 * sim.Millisecond)
	exited, code := s.Cores[0].Exited()
	if !exited || code != 199*200/2 {
		t.Fatalf("exited=%v code=%d", exited, code)
	}
	// Traffic must have reached DRAM through the LLC.
	if st := s.DRAM.Stats(); st.Reads == 0 {
		t.Fatal("no DRAM reads")
	}
}

func TestMultiCoreIndependentPrograms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Memory = "DDR4-2ch"
	s := MustBuild(cfg)
	remaining := 4
	for i := 0; i < 4; i++ {
		if err := s.LoadProgram(i, workload.SimpleLoop(50+i)); err != nil {
			t.Fatal(err)
		}
		s.Cores[i].OnExit = func(int64) {
			remaining--
			if remaining == 0 {
				s.Queue.ExitSimLoop("all done")
			}
		}
	}
	s.StartCores()
	s.Queue.RunUntil(50 * sim.Millisecond)
	for i := 0; i < 4; i++ {
		exited, code := s.Cores[i].Exited()
		n := int64(50 + i)
		if !exited || code != n*(n-1)/2 {
			t.Fatalf("core %d: exited=%v code=%d", i, exited, code)
		}
	}
}

func TestPMUIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "ideal"
	cfg.WithPMU = true
	s := MustBuild(cfg)
	if err := s.LoadProgram(0, workload.MemoryStream(0x400000, 300)); err != nil {
		t.Fatal(err)
	}
	s.PMU.Start()
	// Enable commit counters + miss + cycle directly via the wrapper
	// (harnesses use the AXI port; see cmd/pmurun).
	w := s.PMUWrapper
	s.Cores[0].OnExit = func(int64) { s.Queue.ExitSimLoop("exit") }
	s.StartCores(0)
	s.Queue.RunUntil(sim.Microsecond) // let reset settle, then enable
	s.Queue.ClearExit()
	enable := func() {
		// AXI write via wrapper-level helper: enable all six event lines.
		w.Tick(nil) // no-op guard: ensure wrapper usable
	}
	_ = enable
	s.Queue.RunUntil(50 * sim.Millisecond)
	exited, _ := s.Cores[0].Exited()
	if !exited {
		t.Fatal("program did not exit")
	}
	// The PMU object ticked at half the core clock.
	if s.PMU.Stats().Ticks == 0 {
		t.Fatal("PMU never ticked")
	}
}

func TestStatsRegistryDump(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	s := MustBuild(cfg)
	var buf bytes.Buffer
	s.Stats.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"system.cpu0.ipc", "system.cpu1.committedInsts",
		"system.llc.misses", "system.mem.rowHitRate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats dump missing %s", want)
		}
	}
}

func TestNVDLATraceOnIdealMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "ideal"
	cfg.NVDLAs = 1
	cfg.NVDLAMaxInflight = 64
	s := MustBuild(cfg)
	s.NVDLAs[0].Start()
	tr := smallTrace(0x1000_0000)
	s.PlayTrace(0, tr)
	done, err := s.RunUntilNVDLAsDone(100 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done == 0 {
		t.Fatal("zero completion time")
	}
	st := s.NVDLAWrappers[0].Stats()
	if st.BytesRead != tr.TotalReadBytes {
		t.Fatalf("read %d bytes, trace says %d", st.BytesRead, tr.TotalReadBytes)
	}
}

// smallTrace is a fast-running synthetic layer for tests.
func smallTrace(base uint64) *trace.Trace {
	return trace.Build("tiny", []trace.Layer{{
		InputAddr:  base,
		WeightAddr: base + 1<<20,
		OutputAddr: base + 2<<20,
		InBytes:    32 << 10,
		WtBytes:    16 << 10,
		OutBytes:   8 << 10,
		TileBytes:  8 << 10,
		// 50 cycles per tile: memory-bound on slow memory.
		CyclesPerTile: 50,
	}})
}

func TestNVDLAFasterOnIdealThanDDR1ch(t *testing.T) {
	run := func(memName string, inflight int) sim.Tick {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = memName
		cfg.NVDLAs = 1
		cfg.NVDLAMaxInflight = inflight
		s := MustBuild(cfg)
		s.NVDLAs[0].Start()
		s.PlayTrace(0, smallTrace(0x1000_0000))
		done, err := s.RunUntilNVDLAsDone(sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	ideal := run("ideal", 64)
	ddr := run("DDR4-1ch", 64)
	if ideal >= ddr {
		t.Fatalf("ideal (%d) not faster than DDR4-1ch (%d)", ideal, ddr)
	}
	// One in-flight request must be much slower than 64.
	one := run("DDR4-1ch", 1)
	if one < 4*ddr {
		t.Fatalf("inflight=1 (%d) not >=4x slower than inflight=64 (%d)", one, ddr)
	}
}

func TestMultipleNVDLAsContend(t *testing.T) {
	run := func(n int) sim.Tick {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = "DDR4-1ch"
		cfg.NVDLAs = n
		cfg.NVDLAMaxInflight = 64
		s := MustBuild(cfg)
		for i := 0; i < n; i++ {
			s.NVDLAs[i].Start()
			s.PlayTrace(i, smallTrace(uint64(0x1000_0000*(i+1))))
		}
		done, err := s.RunUntilNVDLAsDone(sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	one := run(1)
	four := run(4)
	if four <= one {
		t.Fatal("four accelerators on one DDR4 channel not slower than one")
	}
}

func TestScratchpadExtensionSpeedsUpSRAMIF(t *testing.T) {
	// §4.2's proposed extension: hooking the SRAMIF to an on-chip scratchpad
	// offloads the weight stream from main memory, so a bandwidth-starved
	// configuration must get faster with the scratchpad enabled.
	run := func(spm bool) sim.Tick {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = "DDR4-1ch"
		cfg.NVDLAs = 1
		cfg.NVDLAMaxInflight = 64
		cfg.NVDLAScratchpad = spm
		s := MustBuild(cfg)
		s.NVDLAs[0].Start()
		s.PlayTrace(0, smallTrace(0x1000_0000))
		done, err := s.RunUntilNVDLAsDone(sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		if spm {
			if len(s.Scratchpads) != 1 || s.Scratchpads[0].Reads == 0 {
				t.Fatal("scratchpad not built or never accessed")
			}
		}
		return done
	}
	noSpm := run(false)
	withSpm := run(true)
	if withSpm >= noSpm {
		t.Fatalf("scratchpad (%d) not faster than main-memory SRAMIF (%d)", withSpm, noSpm)
	}
}

func TestScratchpadHoldsPreloadedData(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "ideal"
	cfg.NVDLAs = 1
	cfg.NVDLAMaxInflight = 8
	cfg.NVDLAScratchpad = true
	s := MustBuild(cfg)
	s.NVDLAs[0].Start()
	tr := smallTrace(0x2000_0000)
	s.PlayTrace(0, tr)
	if _, err := s.RunUntilNVDLAsDone(sim.Second); err != nil {
		t.Fatal(err)
	}
	// The weight stream (1/3 of reads) went through the scratchpad.
	if s.Scratchpads[0].Bytes == 0 {
		t.Fatal("no scratchpad traffic")
	}
	if s.NVDLAWrappers[0].Stats().BytesRead != tr.TotalReadBytes {
		t.Fatal("data integrity lost with scratchpad path")
	}
}
