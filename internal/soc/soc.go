// Package soc assembles the full simulated system-on-chip of Table 1: eight
// 2 GHz out-of-order cores with private L1I/L1D/L2, a shared 16 MiB LLC
// behind a coherent crossbar, a main memory (ideal, DDR4 x1/2/4, GDDR5 or
// HBM), and optional RTL devices — the PMU attached to core 0's commit and
// L1D-miss events (Figure 2b) and up to four NVDLA accelerators with direct
// memory-side connections (Figure 2c).
package soc

import (
	"context"
	"fmt"
	"io"

	"gem5rtl/internal/cache"
	"gem5rtl/internal/cpu"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/isa"
	"gem5rtl/internal/mem"
	"gem5rtl/internal/noc"
	"gem5rtl/internal/nvdla"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/psim"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
	"gem5rtl/internal/trace"
)

// Config selects the system to build.
type Config struct {
	// Cores is the number of CPU cores (Table 1: 8).
	Cores int
	// CoreFreqHz is the core clock (Table 1: 2 GHz).
	CoreFreqHz uint64
	// Memory names the main-memory technology: "ideal", "DDR4-1ch",
	// "DDR4-2ch", "DDR4-4ch", "GDDR5", or "HBM".
	Memory string
	// WithPMU attaches the PMU RTL model to core 0.
	WithPMU bool
	// RTLEngine selects the simulation engine for RTL models ("closure" or
	// "bytecode"; see rtl.Engines). Empty means the production default,
	// the optimizing bytecode engine. Engine choice never changes
	// simulation results, only execution speed.
	RTLEngine rtl.Engine
	// PMUWaveform enables VCD tracing of the PMU model into PMUWaveOut.
	PMUWaveform bool
	PMUWaveOut  io.Writer
	// NVDLAs is the number of accelerator instances (0, 1, 2 or 4).
	NVDLAs int
	// NVDLAMaxInflight is the per-accelerator in-flight request cap
	// (the DSE sweep parameter; 0 = unlimited).
	NVDLAMaxInflight int
	// NVDLAScratchpad hooks each accelerator's SRAMIF to a private on-chip
	// scratchpad instead of main memory — the extension §4.2 of the paper
	// proposes. The paper's evaluated configuration leaves this false (both
	// interfaces to main memory).
	NVDLAScratchpad bool
	// Shards splits the simulation across parallel event queues (DESIGN.md
	// §9): shard 0 owns the memory side (cores, caches, crossbars, DRAM,
	// PMU) and each further shard owns one or more NVDLA clusters, advancing
	// in bulk-synchronous epochs bounded by the memory crossbar's latency.
	// 0 or 1 selects the serial engine. Results are shard-count-independent:
	// statistics, state hashes and checkpoints are bit-identical to a serial
	// run. Shard counts above 1+NVDLAs are clamped (an extra shard with
	// nothing on it buys nothing).
	Shards int
}

// DefaultConfig returns the Table 1 system with DDR4-4ch memory.
func DefaultConfig() Config {
	return Config{Cores: 8, CoreFreqHz: 2_000_000_000, Memory: "DDR4-4ch"}
}

// System is a built SoC.
type System struct {
	Cfg   Config
	Queue *sim.EventQueue
	Clock *sim.ClockDomain
	Cores []*cpu.Core
	L1Is  []*cache.Cache
	L1Ds  []*cache.Cache
	L2s   []*cache.Cache
	// L2Muxes are the private 2:1 L1->L2 crossbars, one per core, kept so
	// checkpointing can reach their queued packets.
	L2Muxes []*noc.Xbar
	LLC     *cache.Cache
	// CPUXbar joins the L2s to the LLC; MemXbar joins the LLC and the
	// accelerators to the memory controller.
	CPUXbar *noc.Xbar
	MemXbar *noc.Xbar
	Store   *mem.Storage
	DRAM    *mem.DRAMCtrl    // nil when Memory == "ideal"
	Ideal   *mem.IdealMemory // nil otherwise

	PMU        *rtlobject.RTLObject
	PMUWrapper *pmu.Wrapper

	NVDLAs        []*rtlobject.RTLObject
	NVDLAWrappers []*nvdla.Wrapper
	Scratchpads   []*mem.Scratchpad // per-NVDLA, when NVDLAScratchpad is set

	// Watchdog is the liveness monitor installed by AttachWatchdog (nil
	// otherwise). Its Err is surfaced by RunNVDLAPhase.
	Watchdog *guard.Watchdog

	// Tracer is the debug-flag trace sink installed by AttachTracer (nil
	// otherwise); Latency the packet-lifetime profile installed by
	// AttachLatencyProfile (nil otherwise).
	Tracer  *obs.Tracer
	Latency *obs.LatencyProfile

	Stats *stats.Registry

	// ShardQueues lists every shard's event queue; ShardQueues[0] == Queue,
	// and a serial build has length 1. Engine is the bulk-synchronous engine
	// driving a sharded build (nil when serial).
	ShardQueues []*sim.EventQueue
	Engine      *psim.Engine
	// nvdlaShard[i] is the shard owning accelerator i (0 when serial).
	nvdlaShard []int
	// epochLen is the conservative lookahead — the memory crossbar's
	// latency, the minimum simulated delay of any cross-shard interaction.
	// Serial completion is epoch-aligned against it too, so serial and
	// sharded runs end in identical states.
	epochLen sim.Tick
}

// Table 1 cache latencies at 2 GHz (2/9/20 cycles).
const (
	l1Latency  = 1 * sim.Nanosecond
	l2Latency  = 4500 * sim.Picosecond
	llcLatency = 10 * sim.Nanosecond
)

// memXbarMaxOutstanding is the memory-side crossbar's outstanding-request
// cap. It must not clip the DSE's 240-in-flight sweep point, and it bounds
// the NVDLAMaxInflight a sharded build accepts: a shard-boundary lane must
// never be refused (DESIGN.md §9), which holds as long as each device's cap
// keeps its lanes under this limit.
const memXbarMaxOutstanding = 512

// Build wires a system from the configuration.
func Build(cfg Config) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.CoreFreqHz == 0 {
		cfg.CoreFreqHz = 2_000_000_000
	}
	// Production default is the optimizing bytecode engine; results are
	// engine-independent so the choice is pure execution strategy.
	if cfg.RTLEngine == "" {
		cfg.RTLEngine = rtl.EngineBytecode
	} else if _, err := rtl.ParseEngine(string(cfg.RTLEngine)); err != nil {
		return nil, fmt.Errorf("soc: %w", err)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("soc: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards > 1 {
		// The sharded engine's no-refusal invariant: a request crossing a
		// shard boundary must always be accepted, because the retry handshake
		// cannot span shards within an epoch. Each accelerator's in-flight cap
		// must therefore be finite and within the crossbar's outstanding
		// budget, and every shardable device must sit on the crossbar (a
		// scratchpad-backed SRAMIF would need its own partition rules).
		switch {
		case cfg.NVDLAs == 0:
			return nil, fmt.Errorf("soc: Shards=%d needs NVDLA accelerators to place on the extra shards", cfg.Shards)
		case cfg.NVDLAScratchpad:
			return nil, fmt.Errorf("soc: sharded simulation does not support NVDLAScratchpad")
		case cfg.NVDLAMaxInflight <= 0:
			return nil, fmt.Errorf("soc: sharded simulation requires a finite NVDLAMaxInflight")
		case cfg.NVDLAMaxInflight > memXbarMaxOutstanding:
			return nil, fmt.Errorf("soc: NVDLAMaxInflight %d exceeds the memory crossbar budget %d; a sharded run could see shard-boundary back-pressure",
				cfg.NVDLAMaxInflight, memXbarMaxOutstanding)
		}
		if cfg.Shards > 1+cfg.NVDLAs {
			cfg.Shards = 1 + cfg.NVDLAs
		}
	}
	s := &System{Cfg: cfg, Queue: sim.NewEventQueue(), Stats: stats.NewRegistry()}
	s.Clock = sim.NewClockDomain("cpu_clk", s.Queue, cfg.CoreFreqHz)
	s.Store = mem.NewStorage()
	s.ShardQueues = []*sim.EventQueue{s.Queue}
	shardClks := []*sim.ClockDomain{s.Clock}
	for k := 1; k < cfg.Shards; k++ {
		q := sim.NewEventQueue()
		s.ShardQueues = append(s.ShardQueues, q)
		shardClks = append(shardClks, sim.NewClockDomain(fmt.Sprintf("shard%d_clk", k), q, cfg.CoreFreqHz))
	}

	// Main memory.
	var memPort *port.ResponsePort
	switch cfg.Memory {
	case "", "ideal":
		s.Ideal = mem.NewIdealMemory("ideal_mem", s.Queue, s.Store, s.Clock.Period())
		memPort = s.Ideal.Port()
	default:
		dcfg, ok := mem.ConfigByName(cfg.Memory)
		if !ok {
			return nil, fmt.Errorf("soc: unknown memory technology %q", cfg.Memory)
		}
		s.DRAM = mem.NewDRAMCtrl(dcfg, s.Queue, s.Store)
		memPort = s.DRAM.Port()
	}

	// Crossbars (Table 1: coherent crossbar, 128-bit wide, 2 cycles).
	xcfg := noc.Config{
		Latency:        s.Clock.Cycles(2),
		WidthBytes:     16,
		ClockTick:      s.Clock.Period(),
		MaxOutstanding: 64,
	}
	cx := xcfg
	cx.Name = "cpu_xbar"
	s.CPUXbar = noc.New(cx, s.Queue, cfg.Cores, 1)
	mx := xcfg
	mx.Name = "mem_xbar"
	// The memory-side crossbar must not clip the DSE's 240-in-flight sweep
	// point: give it headroom beyond the largest per-device cap.
	mx.MaxOutstanding = memXbarMaxOutstanding
	s.MemXbar = noc.New(mx, s.Queue, 1+2*cfg.NVDLAs, 1)
	// The crossbar's latency is the minimum simulated delay of any
	// cross-shard interaction — the sharded engine's conservative lookahead
	// and the epoch length serial completion aligns to.
	s.epochLen = mx.Latency
	if len(s.ShardQueues) > 1 {
		s.Engine = psim.New(s.ShardQueues, s.epochLen)
	}

	// Shared LLC (16 MiB, 16-way, 8 banks x 32 MSHRs, 20-cycle data).
	s.LLC = cache.New(cache.Config{
		Name: "llc", SizeBytes: 16 << 20, Assoc: 16,
		Latency: llcLatency, MSHRs: 8 * 32,
	}, s.Queue)
	port.Bind(s.CPUXbar.DownPort(0), s.LLC.CPUPort())
	port.Bind(s.LLC.MemPort(), s.MemXbar.FrontPort(0))
	port.Bind(s.MemXbar.DownPort(0), memPort)

	// Cores and private hierarchies.
	for i := 0; i < cfg.Cores; i++ {
		core := cpu.New(cpu.DefaultConfig(i), s.Clock)
		l1i := cache.New(cache.Config{
			Name: fmt.Sprintf("cpu%d.l1i", i), SizeBytes: 64 << 10, Assoc: 4,
			Latency: l1Latency, MSHRs: 8, StridePrefetch: true,
		}, s.Queue)
		l1d := cache.New(cache.Config{
			Name: fmt.Sprintf("cpu%d.l1d", i), SizeBytes: 64 << 10, Assoc: 4,
			Latency: l1Latency, MSHRs: 24,
		}, s.Queue)
		l2 := cache.New(cache.Config{
			Name: fmt.Sprintf("cpu%d.l2", i), SizeBytes: 256 << 10, Assoc: 8,
			Latency: l2Latency, MSHRs: 24, StridePrefetch: true,
		}, s.Queue)
		// L1I/L1D share the L2 through a private 2:1 mux crossbar.
		mux := noc.New(noc.Config{
			Name: fmt.Sprintf("cpu%d.l2mux", i), Latency: 0, MaxOutstanding: 64,
		}, s.Queue, 2, 1)
		port.Bind(core.IPort(), l1i.CPUPort())
		port.Bind(core.DPort(), l1d.CPUPort())
		port.Bind(l1i.MemPort(), mux.FrontPort(0))
		port.Bind(l1d.MemPort(), mux.FrontPort(1))
		port.Bind(mux.DownPort(0), l2.CPUPort())
		port.Bind(l2.MemPort(), s.CPUXbar.FrontPort(i))
		s.Cores = append(s.Cores, core)
		s.L1Is = append(s.L1Is, l1i)
		s.L1Ds = append(s.L1Ds, l1d)
		s.L2s = append(s.L2s, l2)
		s.L2Muxes = append(s.L2Muxes, mux)
	}

	// PMU (Figure 2b): events from core 0's commit tap and L1D misses,
	// clocked at 1 GHz (divider 2 from the 2 GHz cores).
	if cfg.WithPMU {
		w, err := pmu.NewWrapperEngine(pmu.NumCounters, cfg.RTLEngine)
		if err != nil {
			return nil, err
		}
		s.PMUWrapper = w
		if cfg.PMUWaveform {
			if cfg.PMUWaveOut == nil {
				return nil, fmt.Errorf("soc: PMUWaveform requires PMUWaveOut")
			}
			w.Model().AttachVCD(cfg.PMUWaveOut, 1)
		}
		s.PMU = rtlobject.New(rtlobject.Config{
			Name: "pmu", ClockDivider: 2,
		}, s.Clock, w)
		// RTL devices mint packet IDs from per-device namespaces so ID
		// streams stay identical whether a device shares the global counter's
		// shard or runs on its own (space 0 is the global pool).
		s.PMU.SetPacketIDSpace(1)
		s.Cores[0].OnCommit = w.AddCommits
		s.L1Ds[0].OnMiss = w.AddMiss
	}

	// NVDLAs (Figure 2c): CSB on a CPU-side port, DBBIF/SRAMIF on the
	// memory-side crossbar, 1 GHz, in-flight cap from the DSE parameter.
	// Sharded builds place accelerator i on shard 1+(i mod (Shards-1)),
	// round-robin, and route its crossbar lanes through the engine's
	// barrier-exchanged links.
	for i := 0; i < cfg.NVDLAs; i++ {
		shard := 0
		if s.Engine != nil {
			shard = 1 + i%(len(s.ShardQueues)-1)
		}
		w := nvdla.New(nvdla.DefaultConfig(fmt.Sprintf("nvdla%d", i)))
		obj := rtlobject.New(rtlobject.Config{
			Name:         fmt.Sprintf("nvdla%d", i),
			ClockDivider: 2,
			MaxInflight:  cfg.NVDLAMaxInflight,
			TLB:          rtlobject.IdentityTLB{}, // paper bypasses the IOMMU
		}, shardClks[shard], w)
		obj.SetPacketIDSpace(uint64(2 + i))
		if shard != 0 {
			k := shard
			for _, lane := range []int{1 + 2*i, 2 + 2*i} {
				s.MemXbar.SetFrontShard(lane, s.ShardQueues[k],
					func(m noc.IngressMsg) {
						s.Engine.Send(k, 0, func() { s.MemXbar.ApplyIngress(m) })
					},
					func(m noc.EgressMsg) {
						s.Engine.Send(0, k, func() { s.MemXbar.ApplyEgress(m) })
					})
			}
		}
		port.Bind(obj.MemPort(nvdla.PortDBBIF), s.MemXbar.FrontPort(1+2*i))
		if cfg.NVDLAScratchpad {
			spm := mem.NewScratchpad(mem.DefaultScratchpadConfig(
				fmt.Sprintf("nvdla%d.spm", i)), s.Queue, s.Store)
			port.Bind(obj.MemPort(nvdla.PortSRAMIF), spm.Port())
			s.Scratchpads = append(s.Scratchpads, spm)
		} else {
			port.Bind(obj.MemPort(nvdla.PortSRAMIF), s.MemXbar.FrontPort(2+2*i))
		}
		s.NVDLAs = append(s.NVDLAs, obj)
		s.NVDLAWrappers = append(s.NVDLAWrappers, w)
		s.nvdlaShard = append(s.nvdlaShard, shard)
	}

	s.registerStats()
	return s, nil
}

// MustBuild panics on configuration errors.
func MustBuild(cfg Config) *System {
	s, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) registerStats() {
	for i, c := range s.Cores {
		c := c
		p := fmt.Sprintf("system.cpu%d.", i)
		s.Stats.Register(p+"numCycles", "core cycles", func() float64 {
			st := c.Stats()
			return float64(st.Cycles)
		})
		s.Stats.Register(p+"committedInsts", "committed instructions", func() float64 {
			st := c.Stats()
			return float64(st.Committed)
		})
		s.Stats.Register(p+"ipc", "instructions per active cycle", func() float64 {
			st := c.Stats()
			return st.IPC()
		})
	}
	for i, d := range s.L1Ds {
		d := d
		p := fmt.Sprintf("system.cpu%d.dcache.", i)
		s.Stats.Register(p+"misses", "L1D demand misses", func() float64 {
			st := d.Stats()
			return float64(st.Misses)
		})
		s.Stats.Register(p+"hits", "L1D hits", func() float64 {
			st := d.Stats()
			return float64(st.Hits)
		})
	}
	llc := s.LLC
	s.Stats.Register("system.llc.misses", "LLC misses", func() float64 {
		st := llc.Stats()
		return float64(st.Misses)
	})
	if s.DRAM != nil {
		d := s.DRAM
		s.Stats.Register("system.mem.bytesRead", "DRAM bytes read", func() float64 {
			st := d.Stats()
			return float64(st.BytesRead)
		})
		s.Stats.Register("system.mem.rowHitRate", "DRAM row-buffer hit rate", func() float64 {
			st := d.Stats()
			return st.RowHitRate()
		})
		s.Stats.Register("system.mem.avgReadLatency", "DRAM mean read latency (ticks)", func() float64 {
			st := d.Stats()
			return st.AvgReadLatency()
		})
	}
	for i, o := range s.NVDLAs {
		o := o
		p := fmt.Sprintf("system.nvdla%d.", i)
		s.Stats.Register(p+"memReads", "accelerator memory reads", func() float64 {
			return float64(o.Stats().MemReads)
		})
		s.Stats.Register(p+"avgMemLatency", "accelerator mean memory latency (ticks)", func() float64 {
			st := o.Stats()
			return st.AvgMemLatency()
		})
	}
}

// LoadProgram assembles and loads a guest program into core i.
func (s *System) LoadProgram(core int, asmSrc string) error {
	img, err := isa.Assemble(asmSrc)
	if err != nil {
		return err
	}
	s.Cores[core].LoadProgram(img)
	return nil
}

// PreloadMem writes data directly into backing store (trace/image loading).
func (s *System) PreloadMem(addr uint64, data []byte) {
	s.Store.Write(addr, data)
}

// StartCores begins execution on every core that has a program loaded.
func (s *System) StartCores(cores ...int) {
	if len(cores) == 0 {
		for _, c := range s.Cores {
			c.Start()
		}
		return
	}
	for _, i := range cores {
		s.Cores[i].Start()
	}
}

// PlayTrace applies an NVDLA trace to accelerator instance idx: memory
// preloads go straight to backing store (the paper's host application phase
// that loads the trace into main memory) and register writes are applied via
// the accelerator's CSB. The final WaitIRQ is the caller's job (run the
// event queue until the accelerator interrupt).
func (s *System) PlayTrace(idx int, t *trace.Trace) {
	w := s.NVDLAWrappers[idx]
	for _, op := range t.Ops {
		switch op.Kind {
		case trace.OpLoadMem:
			s.PreloadMem(op.Addr, op.Data)
		case trace.OpWriteReg:
			w.WriteReg(op.Addr, op.Val)
		case trace.OpStart:
			w.WriteReg(nvdla.RegCtrl, 1)
		case trace.OpWaitIRQ:
			// handled by the caller via OnInterrupt / Done polling
		}
	}
}

// RunUntilNVDLAsDone starts the accelerators and simulates until every
// instance raises its completion interrupt (or the limit passes). It
// returns the completion time.
func (s *System) RunUntilNVDLAsDone(limit sim.Tick) (sim.Tick, error) {
	return s.RunUntilNVDLAsDoneCtx(context.Background(), limit)
}

// RunUntilNVDLAsDoneCtx is RunUntilNVDLAsDone with host-side cancellation:
// a periodic check event (see sim.WatchContext) ends the simulation loop
// and returns ctx.Err() once ctx is cancelled or its deadline passes. The
// watcher only observes the context, so an uncancelled run completes at
// tick-identical times to RunUntilNVDLAsDone.
func (s *System) RunUntilNVDLAsDoneCtx(ctx context.Context, limit sim.Tick) (sim.Tick, error) {
	done, remaining, err := s.RunNVDLAPhase(ctx, limit)
	if err != nil {
		return 0, err
	}
	if remaining > 0 {
		return 0, fmt.Errorf("soc: %d accelerators still running at tick %d", remaining, s.Queue.Now())
	}
	return done, nil
}

// RunNVDLAPhase simulates until every accelerator has raised its completion
// interrupt or the simulated-time limit passes, whichever comes first, and
// returns the reached tick plus how many accelerators are still running.
// Unlike RunUntilNVDLAsDoneCtx, hitting the limit is not an error — this is
// the split primitive checkpointing runs on: a prefix run to a checkpoint
// tick and the resumed remainder chain through RunNVDLAPhase and dispatch
// exactly the events an uninterrupted run would, so restored statistics and
// event counts stay bit-identical. Accelerators that finish before the limit
// behave the same in both halves: the phase ends early at the true
// completion tick with remaining == 0.
func (s *System) RunNVDLAPhase(ctx context.Context, limit sim.Tick) (sim.Tick, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	remaining := 0
	for _, w := range s.NVDLAWrappers {
		if !w.Done() {
			remaining++
		}
	}
	if remaining == 0 {
		return s.Queue.Now(), 0, nil
	}
	if s.Engine != nil {
		return s.runNVDLAPhaseSharded(ctx, limit)
	}
	// The last completion interrupt at tick T arms a stop at the end of T's
	// epoch rather than exiting on the spot: a sharded run can only observe
	// completion at epoch barriers, so the serial engine runs out the same
	// epoch to end in the identical state. The reached tick reported is
	// still T, the true completion time.
	var doneAt sim.Tick
	for _, o := range s.NVDLAs {
		o.OnInterrupt(func(level bool) {
			if level {
				remaining--
				if remaining == 0 {
					doneAt = s.Queue.Now()
					s.Queue.SetStopAfter(psim.EpochEnd(doneAt, s.epochLen))
				}
			}
		})
	}
	stop := s.Queue.WatchContext(ctx, 0)
	defer stop()
	s.Queue.RunUntil(limit)
	s.Queue.ClearStopAfter()
	if err := ctx.Err(); err != nil {
		return 0, remaining, err
	}
	if s.Watchdog != nil {
		if err := s.Watchdog.Err(); err != nil {
			return s.Queue.Now(), remaining, err
		}
	}
	if remaining > 0 {
		return s.Queue.Now(), remaining, nil
	}
	return doneAt, 0, nil
}

// runNVDLAPhaseSharded drives the bulk-synchronous engine. Completion is
// tracked per shard — each counter and last-interrupt tick is written only
// by its shard's goroutine during the run phase and read by the coordinator
// at epoch barriers, which order the accesses — so global completion is
// observed without locks, at the barrier ending the epoch of the last
// interrupt: exactly the tick the serial engine's epoch-aligned stop
// reaches.
func (s *System) runNVDLAPhaseSharded(ctx context.Context, limit sim.Tick) (sim.Tick, int, error) {
	remainingSh := make([]int, len(s.ShardQueues))
	lastIRQ := make([]sim.Tick, len(s.ShardQueues))
	for i, w := range s.NVDLAWrappers {
		if !w.Done() {
			remainingSh[s.nvdlaShard[i]]++
		}
	}
	for i, o := range s.NVDLAs {
		k := s.nvdlaShard[i]
		qk := s.ShardQueues[k]
		o.OnInterrupt(func(level bool) {
			if level {
				remainingSh[k]--
				lastIRQ[k] = qk.Now()
			}
		})
	}
	stop := s.Queue.WatchContext(ctx, 0)
	defer stop()
	var doneAt sim.Tick
	s.Engine.RunEpochs(limit, func(now sim.Tick) bool {
		if s.Watchdog != nil && s.Watchdog.CheckHosted(now) {
			return true
		}
		total := 0
		for _, r := range remainingSh {
			total += r
		}
		if total > 0 {
			return false
		}
		for _, t := range lastIRQ {
			if t > doneAt {
				doneAt = t
			}
		}
		return true
	})
	total := 0
	for _, r := range remainingSh {
		total += r
	}
	if err := ctx.Err(); err != nil {
		return 0, total, err
	}
	if s.Watchdog != nil {
		if err := s.Watchdog.Err(); err != nil {
			return s.Queue.Now(), total, err
		}
	}
	if total > 0 {
		return s.Queue.Now(), total, nil
	}
	return doneAt, 0, nil
}

// Dispatched returns the dispatched-event total across all shard queues —
// the number a serial run's single queue reports, regardless of shard
// count.
func (s *System) Dispatched() uint64 {
	var n uint64
	for _, q := range s.ShardQueues {
		n += q.Dispatched()
	}
	return n
}
