package soc

import (
	"fmt"

	"gem5rtl/internal/guard"
)

// AttachWatchdog installs a started liveness watchdog over every component
// of the system: caches, crossbars, memory controllers, cores and RTL
// objects register as occupancy probes, and retirement/commit counters feed
// the forward-progress check. The watchdog's events observe but never touch
// simulated state, so an untripped run dispatches the exact same component
// events at the exact same ticks as an unwatched one.
//
// A trip ends the simulation loop and surfaces a *guard.HangError from
// RunNVDLAPhase / RunUntilNVDLAsDoneCtx (or via Watchdog.Err for manual
// RunUntil loops). Call Watchdog.Stop before Save: the check event is
// host-side and not serialisable.
func (s *System) AttachWatchdog(cfg guard.Config) *guard.Watchdog {
	wd := guard.NewWatchdog(s.Queue, cfg)
	for i, c := range s.Cores {
		c := c
		wd.Watch(c)
		wd.AddProgress(fmt.Sprintf("cpu%d.committed", i), func() uint64 {
			return c.Stats().Committed
		})
	}
	for _, c := range s.L1Is {
		wd.Watch(c)
	}
	for _, c := range s.L1Ds {
		wd.Watch(c)
	}
	for _, c := range s.L2s {
		wd.Watch(c)
	}
	if s.LLC != nil {
		wd.Watch(s.LLC)
	}
	for _, x := range s.L2Muxes {
		wd.Watch(x)
	}
	if s.CPUXbar != nil {
		wd.Watch(s.CPUXbar)
	}
	if s.MemXbar != nil {
		wd.Watch(s.MemXbar)
	}
	if s.DRAM != nil {
		wd.Watch(s.DRAM)
		wd.AddProgress("mem.retired", s.DRAM.Retired)
	}
	if s.Ideal != nil {
		wd.Watch(s.Ideal)
		wd.AddProgress("mem.retired", s.Ideal.Retired)
	}
	for i, spm := range s.Scratchpads {
		wd.Watch(spm)
		wd.AddProgress(fmt.Sprintf("spm%d.retired", i), spm.Retired)
	}
	if s.PMU != nil {
		wd.Watch(s.PMU)
		wd.AddProgress("pmu.progress", s.PMU.Progress)
	}
	for i, o := range s.NVDLAs {
		o := o
		wd.Watch(o)
		wd.AddProgress(fmt.Sprintf("nvdla%d.progress", i), o.Progress)
	}
	for i, w := range s.NVDLAWrappers {
		w := w
		wd.Watch(w)
		wd.AddProgress(fmt.Sprintf("nvdla%d.tiles", i), func() uint64 {
			return w.Stats().TilesDone
		})
	}
	if s.Tracer != nil {
		wd.SetTraceTail(s.Tracer.Tail)
	}
	if s.Engine != nil {
		// Sharded builds host the check from the engine's epoch-barrier hook
		// (guard.Watchdog.CheckHosted, called by runNVDLAPhaseSharded) rather
		// than a queue event: probes span shards, so sampling them is only
		// safe at barriers where every shard is quiescent. Registering the
		// extra shard queues makes the liveness logic and the hang report's
		// pending-event dump cover all of them, naming the stalled shard.
		for k, q := range s.ShardQueues[1:] {
			wd.WatchQueue(fmt.Sprintf("shard%d", k+1), q)
		}
	} else {
		wd.Start()
	}
	s.Watchdog = wd
	return wd
}
