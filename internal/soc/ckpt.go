// Full-system checkpoint/restore. A checkpoint captures the entire simulated
// machine — event queue, cores, cache hierarchies, interconnect, memory
// controller and backing store, and every RTL device including the compiled
// model state — so a run can be suspended at tick T and resumed in a fresh
// process with bit-identical statistics and final state.
//
// The stream begins with the ckpt framework header whose fingerprint hashes
// the behaviour-affecting Config fields: a checkpoint refuses to load into a
// differently-shaped system. Components follow in a fixed build order, each
// framed by a named section marker so corruption or version skew surfaces as
// a precise error instead of silently misaligned state.
//
// Restore must target a freshly Built system: the event queue insists on
// being pristine, and callers must not re-run setup that a live run already
// performed (LoadProgram/StartCores, accelerator Start/PlayTrace, PMU Start
// and register programming) — all of that state comes from the checkpoint.
package soc

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// fingerprint hashes the Config fields that determine simulated behaviour.
// PMUWaveform/PMUWaveOut are host-side observability and deliberately
// excluded: a run may be checkpointed without waveforms and restored with
// them (the VCD writer is re-synced on restore; see rtl.VCDWriter.Resync).
// RTLEngine is excluded too: engines are dispatch-identical and share the
// model state layout, so checkpoints are engine-portable — a run saved
// under one engine restores under any other.
func (cfg Config) fingerprint() uint64 {
	memName := cfg.Memory
	if memName == "" {
		memName = "ideal"
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "soc|%d|%d|%s|%t|%d|%d|%t",
		cfg.Cores, cfg.CoreFreqHz, memName, cfg.WithPMU,
		cfg.NVDLAs, cfg.NVDLAMaxInflight, cfg.NVDLAScratchpad)
	return h.Sum64()
}

// queueSaver serialises the shard event queues as one canonical section:
// sim.SaveQueues emits a byte-identical stream for any sharding of the same
// pending events, which is what makes checkpoints interchangeable between
// serial and sharded runs (and across shard counts).
type queueSaver struct {
	qs []*sim.EventQueue
}

func (q queueSaver) SaveState(w *ckpt.Writer) error    { return sim.SaveQueues(w, q.qs) }
func (q queueSaver) RestoreState(r *ckpt.Reader) error { return sim.RestoreQueues(r, q.qs) }

// components returns every Checkpointable in the system in its fixed
// serialisation order.
func (s *System) components() []ckpt.Checkpointable {
	cs := []ckpt.Checkpointable{queueSaver{s.ShardQueues}}
	for i := range s.Cores {
		cs = append(cs, s.Cores[i], s.L1Is[i], s.L1Ds[i], s.L2s[i], s.L2Muxes[i])
	}
	cs = append(cs, s.LLC, s.CPUXbar, s.MemXbar)
	if s.DRAM != nil {
		cs = append(cs, s.DRAM)
	} else {
		cs = append(cs, s.Ideal)
	}
	cs = append(cs, s.Store)
	if s.PMU != nil {
		cs = append(cs, s.PMU)
	}
	for _, o := range s.NVDLAs {
		cs = append(cs, o)
	}
	for _, sp := range s.Scratchpads {
		cs = append(cs, sp)
	}
	return cs
}

// Save writes a checkpoint of the whole system to out.
func (s *System) Save(out io.Writer) error {
	if s.Engine != nil {
		// Saving is only defined at epoch barriers, where every shard sits
		// on the same tick; RunNVDLAPhase always stops at one.
		s.Engine.CheckAligned()
	}
	w := ckpt.NewWriter(out)
	w.Header(s.Cfg.fingerprint(), uint64(s.Queue.Now()))
	// The global packet-ID high-water mark: restore fast-forwards the
	// counter past it so IDs allocated after resume never collide with
	// checkpointed in-flight packets.
	w.U64(port.PacketIDMark())
	for _, c := range s.components() {
		if err := c.SaveState(w); err != nil {
			return err
		}
	}
	// Observability state travels only when a latency profile is attached;
	// plain runs keep the seed stream layout byte-for-byte. A checkpoint
	// written with a profile must be restored into a system with the same
	// profile topology attached (AttachLatencyProfile before Restore).
	if s.Latency != nil {
		if err := s.Latency.SaveState(w); err != nil {
			return err
		}
	}
	w.Section("soc.end")
	if err := w.Err(); err != nil {
		return err
	}
	return w.Flush()
}

// Restore loads a checkpoint into a freshly built system of identical
// configuration and returns the checkpointed tick.
func (s *System) Restore(in io.Reader) (uint64, error) {
	r := ckpt.NewReader(in)
	tick := r.Header(s.Cfg.fingerprint())
	if err := r.Err(); err != nil {
		return 0, err
	}
	port.FastForwardPacketID(r.U64())
	for _, c := range s.components() {
		if err := c.RestoreState(r); err != nil {
			return 0, err
		}
	}
	if s.Latency != nil {
		if err := s.Latency.RestoreState(r); err != nil {
			return 0, err
		}
	}
	r.Section("soc.end")
	return tick, r.Err()
}

// SaveFile checkpoints the system to a file.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RestoreFile loads a checkpoint file into a freshly built system.
func (s *System) RestoreFile(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.Restore(f)
}

// StateHash digests the full serialised system state — the
// restore-equivalence tests' "bit-identical" witness.
func (s *System) StateHash() (uint64, error) {
	h := fnv.New64a()
	if err := s.Save(h); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
