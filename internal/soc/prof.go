package soc

import "gem5rtl/internal/sim"

// AttachSelfProfiler attaches the event-kernel self-profiler to every shard
// queue of the system (reading the host clock every "every" dispatches;
// <= 0 selects sim.DefaultProfileEvery) and wires per-phase attribution
// into the RTL models the system hosts: the PMU wrapper's model
// sub-attributes its comb settle, sequential update and memory write-port
// phases under the PMU RTLObject's component name. Component-level
// attribution needs no wiring — every event in the system is owner-tagged
// at construction, so in a sharded build each accelerator's events are
// attributed on its own shard's profiler; merge the per-shard reports with
// prof.FromQueues over System.ShardQueues.
//
// Profiling is observational: an unprofiled run dispatches the same events
// at the same ticks and produces byte-identical stats, state hashes and
// VCD output. Attach before the run starts. The returned profiler is shard
// 0's.
func (s *System) AttachSelfProfiler(every int) *sim.Profiler {
	p := s.Queue.AttachProfiler(every)
	for _, q := range s.ShardQueues[1:] {
		q.AttachProfiler(every)
	}
	if s.PMU != nil {
		name := s.PMU.Name()
		s.PMUWrapper.Model().AttachProfiler(p,
			s.Queue.Owner(name, "rtl-comb"),
			s.Queue.Owner(name, "rtl-seq"),
			s.Queue.Owner(name, "rtl-memw"))
	}
	return p
}
