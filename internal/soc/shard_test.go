package soc

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/sim"
)

// runShardedTrace builds a system with the given shard count, starts n
// accelerators on distinct small traces, runs to completion and returns the
// system plus the completion tick.
func runShardedTrace(t *testing.T, memName string, nvdlas, inflight, shards int) (*System, sim.Tick) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = memName
	cfg.NVDLAs = nvdlas
	cfg.NVDLAMaxInflight = inflight
	cfg.Shards = shards
	s := MustBuild(cfg)
	for i := 0; i < nvdlas; i++ {
		s.NVDLAs[i].Start()
		s.PlayTrace(i, smallTrace(uint64(0x1000_0000*(i+1))))
	}
	done, err := s.RunUntilNVDLAsDone(sim.Second)
	if err != nil {
		t.Fatalf("%s nvdlas=%d shards=%d: %v", memName, nvdlas, shards, err)
	}
	return s, done
}

func stateHash(t *testing.T, s *System) uint64 {
	t.Helper()
	h, err := s.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func statsDump(s *System) string {
	var b bytes.Buffer
	s.Stats.Dump(&b)
	return b.String()
}

// TestShardedMatchesSerial is the differential determinism witness: a
// sharded run must finish at the same tick as a serial run with
// byte-identical statistics and a bit-identical full-system state hash.
func TestShardedMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		mem            string
		nvdlas, shards int
	}{
		{"ideal", 1, 2},
		{"ideal", 2, 2},
		{"DDR4-1ch", 2, 3},
		{"DDR4-2ch", 4, 2},
		{"DDR4-2ch", 4, 5},
	} {
		t.Run(fmt.Sprintf("%s/n%d/s%d", c.mem, c.nvdlas, c.shards), func(t *testing.T) {
			ser, doneSer := runShardedTrace(t, c.mem, c.nvdlas, 64, 1)
			par, donePar := runShardedTrace(t, c.mem, c.nvdlas, 64, c.shards)
			if doneSer != donePar {
				t.Fatalf("completion tick: serial %d, sharded %d", doneSer, donePar)
			}
			if ser.Queue.Now() != par.Queue.Now() {
				t.Fatalf("final tick: serial %d, sharded %d", ser.Queue.Now(), par.Queue.Now())
			}
			if got, want := statsDump(par), statsDump(ser); got != want {
				t.Fatalf("stats diverged:\nserial:\n%s\nsharded:\n%s", want, got)
			}
			if got, want := stateHash(t, par), stateHash(t, ser); got != want {
				t.Fatalf("state hash: serial %#x, sharded %#x", want, got)
			}
			if got := ser.Dispatched(); got != par.Dispatched() {
				t.Fatalf("dispatched: serial %d, sharded %d", got, par.Dispatched())
			}
		})
	}
}

// TestShardedDeterministic runs the same sharded configuration twice; host
// scheduling must not leak into results.
func TestShardedDeterministic(t *testing.T) {
	a, doneA := runShardedTrace(t, "DDR4-1ch", 2, 64, 3)
	b, doneB := runShardedTrace(t, "DDR4-1ch", 2, 64, 3)
	if doneA != doneB {
		t.Fatalf("completion ticks diverged: %d vs %d", doneA, doneB)
	}
	if stateHash(t, a) != stateHash(t, b) {
		t.Fatal("two identical sharded runs produced different state hashes")
	}
}

// TestShardedCheckpointInterchange proves the serialised state is
// engine-portable: a checkpoint saved mid-run by one engine restores into
// the other and finishes bit-identically to an uninterrupted serial run.
func TestShardedCheckpointInterchange(t *testing.T) {
	const mem, nvdlas, inflight = "ideal", 2, 64
	build := func(shards int) *System {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = mem
		cfg.NVDLAs = nvdlas
		cfg.NVDLAMaxInflight = inflight
		cfg.Shards = shards
		s := MustBuild(cfg)
		return s
	}
	start := func(s *System) {
		for i := 0; i < nvdlas; i++ {
			s.NVDLAs[i].Start()
			s.PlayTrace(i, smallTrace(uint64(0x1000_0000*(i+1))))
		}
	}
	// The uninterrupted serial reference.
	ref := build(1)
	start(ref)
	refDone, err := ref.RunUntilNVDLAsDone(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	refHash := stateHash(t, ref)
	mid := refDone / 2

	for _, dir := range []struct {
		name         string
		save, resume int // shard counts
	}{
		{"serial-save/sharded-restore", 1, 3},
		{"sharded-save/serial-restore", 3, 1},
		{"sharded-save/sharded-restore", 3, 3},
	} {
		t.Run(dir.name, func(t *testing.T) {
			first := build(dir.save)
			start(first)
			if _, _, err := first.RunNVDLAPhase(context.Background(), mid); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := first.Save(&buf); err != nil {
				t.Fatal(err)
			}
			second := build(dir.resume)
			if _, err := second.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			done, err := second.RunUntilNVDLAsDone(sim.Second)
			if err != nil {
				t.Fatal(err)
			}
			if done != refDone {
				t.Fatalf("completion tick %d, want %d", done, refDone)
			}
			if got := stateHash(t, second); got != refHash {
				t.Fatalf("state hash %#x, want %#x", got, refHash)
			}
		})
	}
}

// TestShardedConfigValidation covers the no-refusal invariant's build-time
// rules and shard-count clamping.
func TestShardedConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = "ideal"
		cfg.NVDLAs = 2
		cfg.NVDLAMaxInflight = 64
		cfg.Shards = 2
		return cfg
	}
	if _, err := Build(base()); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}
	bad := base()
	bad.NVDLAs = 0
	if _, err := Build(bad); err == nil {
		t.Fatal("sharded build with no accelerators accepted")
	}
	bad = base()
	bad.NVDLAScratchpad = true
	if _, err := Build(bad); err == nil {
		t.Fatal("sharded build with scratchpad accepted")
	}
	bad = base()
	bad.NVDLAMaxInflight = 0
	if _, err := Build(bad); err == nil {
		t.Fatal("sharded build with unlimited in-flight accepted")
	}
	bad = base()
	bad.NVDLAMaxInflight = memXbarMaxOutstanding + 1
	if _, err := Build(bad); err == nil {
		t.Fatal("sharded build exceeding the crossbar budget accepted")
	}
	bad = base()
	bad.Shards = -1
	if _, err := Build(bad); err == nil {
		t.Fatal("negative shard count accepted")
	}
	clamped := base()
	clamped.Shards = 16
	s := MustBuild(clamped)
	if got := len(s.ShardQueues); got != 1+clamped.NVDLAs {
		t.Fatalf("shard count not clamped: %d queues, want %d", got, 1+clamped.NVDLAs)
	}
	serial := base()
	serial.Shards = 1
	if s := MustBuild(serial); s.Engine != nil || len(s.ShardQueues) != 1 {
		t.Fatal("Shards=1 did not build serially")
	}
}

// TestShardedObservabilityRejected: tracing and latency profiling are
// serial-run features.
func TestShardedObservabilityRejected(t *testing.T) {
	s, _ := func() (*System, sim.Tick) {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Memory = "ideal"
		cfg.NVDLAs = 1
		cfg.NVDLAMaxInflight = 8
		cfg.Shards = 2
		return MustBuild(cfg), 0
	}()
	if _, err := s.AttachTracer(obs.Config{Flags: "all"}); err == nil {
		t.Fatal("tracer attached to a sharded build")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("latency profile attached to a sharded build")
		}
	}()
	s.AttachLatencyProfile(nil)
}
