package soc

import (
	"fmt"

	"gem5rtl/internal/nvdla"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
)

// AttachTracer builds a Tracer from cfg and wires it through every component
// of the system: each component receives its debug-flag logger (a nil
// pointer when that flag is off), and — when the Port flag is selected —
// trace taps are interposed on the principal links. Attach before the run
// starts; with no flags selected every hot-path guard stays a nil check.
//
// If a watchdog is already attached (or attached later), its hang
// diagnostics pick up the tracer's per-component tail automatically.
func (s *System) AttachTracer(cfg obs.Config) (*obs.Tracer, error) {
	if s.Engine != nil {
		// Trace sinks are single-writer: component loggers on different
		// shards would interleave into one buffer mid-epoch. Sharded runs
		// are for throughput, serial runs for debugging.
		return nil, fmt.Errorf("soc: tracing is not supported on a sharded build (Shards=%d); trace serially", s.Cfg.Shards)
	}
	t, err := obs.NewTracer(s.Queue, cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Cores {
		c.AttachTracer(t)
	}
	for _, c := range s.L1Is {
		c.AttachTracer(t)
	}
	for _, c := range s.L1Ds {
		c.AttachTracer(t)
	}
	for _, c := range s.L2s {
		c.AttachTracer(t)
	}
	if s.LLC != nil {
		s.LLC.AttachTracer(t)
	}
	for _, x := range s.L2Muxes {
		x.AttachTracer(t)
	}
	if s.CPUXbar != nil {
		s.CPUXbar.AttachTracer(t)
	}
	if s.MemXbar != nil {
		s.MemXbar.AttachTracer(t)
	}
	if s.DRAM != nil {
		s.DRAM.AttachTracer(t)
	}
	if s.Ideal != nil {
		s.Ideal.AttachTracer(t)
	}
	for _, spm := range s.Scratchpads {
		spm.AttachTracer(t)
	}
	if s.PMU != nil {
		s.PMU.AttachTracer(t)
		s.PMUWrapper.AttachTracer(t)
	}
	for i, o := range s.NVDLAs {
		o.AttachTracer(t)
		s.NVDLAWrappers[i].AttachTracer(t)
	}
	if t.Enabled("Port") {
		s.interposePortTaps(t)
	}
	if s.Watchdog != nil {
		s.Watchdog.SetTraceTail(t.Tail)
	}
	s.Tracer = t
	return t, nil
}

// interposePortTaps wraps the principal links with Port-flag trace taps:
// each core's instruction and data edges, the LLC's memory side, and each
// accelerator's DBBIF/SRAMIF. Links are identified by their request port
// names, matching the watchdog's component naming.
func (s *System) interposePortTaps(t *obs.Tracer) {
	for _, c := range s.Cores {
		port.Interpose(c.IPort(), t.PortTap(c.IPort().Name()))
		port.Interpose(c.DPort(), t.PortTap(c.DPort().Name()))
	}
	if s.LLC != nil {
		port.Interpose(s.LLC.MemPort(), t.PortTap(s.LLC.MemPort().Name()))
	}
	for _, o := range s.NVDLAs {
		dbb := o.MemPort(nvdla.PortDBBIF)
		port.Interpose(dbb, t.PortTap(dbb.Name()))
		sram := o.MemPort(nvdla.PortSRAMIF)
		port.Interpose(sram, t.PortTap(sram.Name()))
	}
}

// AttachLatencyProfile interposes packet-lifetime latency taps on the
// system's principal links and registers their histograms with the stats
// registry: per-core end-to-end data latency (cpuN.dside), LLC ingress
// (llc.in), memory ingress (mem.in) and per-accelerator DBBIF/SRAMIF. Pass
// a ChromeTrace to additionally collect one span per completed packet for
// trace-event export (nil disables span collection).
//
// Attach before the run starts. A system checkpointed with a profile
// attached must be restored with one attached (same topology): the
// histogram and in-flight stamps travel in the checkpoint stream, so
// packets straddling the checkpoint keep their original inject ticks.
func (s *System) AttachLatencyProfile(chrome *obs.ChromeTrace) *obs.LatencyProfile {
	if s.Engine != nil {
		// Latency taps funnel every shard's packets into shared histograms;
		// like tracing, that is a serial-run observability feature.
		panic(fmt.Sprintf("soc: latency profiling is not supported on a sharded build (Shards=%d); profile serially", s.Cfg.Shards))
	}
	p := obs.NewLatencyProfile(s.Queue)
	p.Chrome = chrome
	for i, c := range s.Cores {
		port.Interpose(c.DPort(), p.Tap(fmt.Sprintf("cpu%d.dside", i)))
	}
	if s.CPUXbar != nil {
		port.Interpose(s.CPUXbar.DownPort(0), p.Tap("llc.in"))
	}
	if s.MemXbar != nil {
		port.Interpose(s.MemXbar.DownPort(0), p.Tap("mem.in"))
	}
	for i, o := range s.NVDLAs {
		port.Interpose(o.MemPort(nvdla.PortDBBIF), p.Tap(fmt.Sprintf("nvdla%d.dbbif", i)))
		port.Interpose(o.MemPort(nvdla.PortSRAMIF), p.Tap(fmt.Sprintf("nvdla%d.sramif", i)))
	}
	p.Register(s.Stats)
	s.Latency = p
	return p
}
