package soc_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/trace"
	"gem5rtl/internal/workload"
)

// ckptScale shrinks the DSE traces so every (memory, workload) cell runs in
// test time while still exercising tiling, both AXI interfaces and the
// in-flight cap.
const ckptScale = 64

// nvdlaSystem builds and fully sets up one accelerator run.
func nvdlaSystem(t testing.TB, memory, wl string) *soc.System {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = memory
	cfg.NVDLAs = 1
	cfg.NVDLAMaxInflight = 64
	s := soc.MustBuild(cfg)
	s.NVDLAs[0].Start()
	tr, err := trace.Scaled(wl, 1<<32, ckptScale)
	if err != nil {
		t.Fatal(err)
	}
	s.PlayTrace(0, tr)
	return s
}

// fingerprint digests everything a run reports: final tick, event count and
// the full gem5-style stats dump.
func runDigest(t testing.TB, s *soc.System) string {
	t.Helper()
	var stats bytes.Buffer
	s.Stats.Dump(&stats)
	hash, err := s.StateHash()
	if err != nil {
		t.Fatalf("state hash: %v", err)
	}
	return fmt.Sprintf("tick=%d events=%d state=%#x\n%s",
		s.Queue.Now(), s.Queue.Dispatched(), hash, stats.String())
}

// TestCheckpointRestoreEquivalenceNVDLA is the subsystem's headline
// property, checked for every Table 1 memory technology and both evaluation
// workloads: checkpointing at tick T and restoring into a fresh process
// (here: a fresh Build) yields bit-identical final state and statistics to
// the uninterrupted run.
func TestCheckpointRestoreEquivalenceNVDLA(t *testing.T) {
	memories := []string{"ideal", "DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"}
	workloads := []string{"sanity3", "googlenet"}
	if testing.Short() {
		memories = []string{"ideal", "DDR4-1ch"}
		workloads = []string{"sanity3"}
	}
	const limit = 8 * sim.Second
	ctx := context.Background()
	for _, wl := range workloads {
		for _, memory := range memories {
			t.Run(wl+"/"+memory, func(t *testing.T) {
				// Packet IDs come from a process-global counter; pin it so
				// the reference and split runs see the ID sequence a fresh
				// process would (the test is sequential, so rewinding is
				// safe).
				base := port.PacketIDMark()

				// Uninterrupted reference run.
				cold := nvdlaSystem(t, memory, wl)
				coldDone, err := cold.RunUntilNVDLAsDone(limit)
				if err != nil {
					t.Fatal(err)
				}
				coldDigest := runDigest(t, cold)

				// Same run split at the halfway tick.
				port.SetPacketIDForTest(base)
				split := nvdlaSystem(t, memory, wl)
				mid := sim.Tick(coldDone / 2)
				if _, _, err := split.RunNVDLAPhase(ctx, mid); err != nil {
					t.Fatal(err)
				}
				var snap bytes.Buffer
				if err := split.Save(&snap); err != nil {
					t.Fatal(err)
				}

				// Fresh build, restore, no setup calls.
				warm := soc.MustBuild(split.Cfg)
				tick, err := warm.Restore(bytes.NewReader(snap.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if sim.Tick(tick) != warm.Queue.Now() {
					t.Fatalf("restored tick %d != queue now %d", tick, warm.Queue.Now())
				}
				warmDone, remaining, err := warm.RunNVDLAPhase(ctx, limit)
				if err != nil {
					t.Fatal(err)
				}
				if remaining != 0 {
					t.Fatalf("%d accelerators still running after restore", remaining)
				}
				if warmDone != coldDone {
					t.Errorf("completion tick diverges: cold=%d warm=%d", coldDone, warmDone)
				}
				if got := runDigest(t, warm); got != coldDigest {
					t.Errorf("restored run digest diverges:\n--- cold ---\n%s--- warm ---\n%s", coldDigest, got)
				}
			})
		}
	}
}

// cpuSystem builds the gem5rtl-style CPU+PMU system (sort workload on core
// 0, PMU on core 0's commit/miss taps).
func cpuSystem(t testing.TB) (*soc.System, *experiments.AXIHost) {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "DDR4-1ch"
	cfg.WithPMU = true
	s := soc.MustBuild(cfg)
	host := experiments.NewAXIHost(s.Queue)
	port.Bind(host.Port(), s.PMU.CPUPort(0))
	return s, host
}

// TestCheckpointRestoreEquivalenceCPU covers the CPU + RTL-PMU use case:
// checkpoint mid-program (threshold programming done, counters live, core
// running), restore into a fresh build, and require identical program exit
// and statistics. The restore path performs none of the live-run setup —
// no Start, no LoadProgram, no PMU register writes.
func TestCheckpointRestoreEquivalenceCPU(t *testing.T) {
	src := workload.SortBenchmark(workload.SortParams{N: 60, SleepUs: 20})
	const limit = 100 * sim.Millisecond
	setup := func(s *soc.System, host *experiments.AXIHost) {
		s.PMU.Start()
		host.Write(pmu.RegEnable, 0x3F)
		if err := s.LoadProgram(0, src); err != nil {
			t.Fatal(err)
		}
		s.Cores[0].OnExit = func(int64) { s.Queue.ExitSimLoop("program exit") }
		s.StartCores(0)
	}

	base := port.PacketIDMark() // see TestCheckpointRestoreEquivalenceNVDLA
	cold, coldHost := cpuSystem(t)
	setup(cold, coldHost)
	cold.Queue.RunUntil(limit)
	if exited, _ := cold.Cores[0].Exited(); !exited {
		t.Fatal("reference program did not finish")
	}
	coldDigest := runDigest(t, cold)

	port.SetPacketIDForTest(base)
	split, splitHost := cpuSystem(t)
	setup(split, splitHost)
	split.Queue.RunUntil(cold.Queue.Now() / 2)
	var snap bytes.Buffer
	if err := split.Save(&snap); err != nil {
		t.Fatal(err)
	}

	warm, _ := cpuSystem(t)
	// Exit handlers are host-side closures, re-registered after restore.
	warm.Cores[0].OnExit = func(int64) { warm.Queue.ExitSimLoop("program exit") }
	// Building the warm system may itself allocate packet IDs; rewind so the
	// restore's fast-forward lands exactly on the checkpoint mark.
	port.SetPacketIDForTest(base)
	if _, err := warm.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	warm.Queue.RunUntil(limit)
	if exited, _ := warm.Cores[0].Exited(); !exited {
		t.Fatal("restored program did not finish")
	}
	if got := runDigest(t, warm); got != coldDigest {
		t.Errorf("restored run digest diverges:\n--- cold ---\n%s--- warm ---\n%s", coldDigest, got)
	}
	// The PMU counters themselves must agree (read through the RTL model).
	for i := 0; i < pmu.NumCounters; i++ {
		if a, b := cold.PMUWrapper.Counter(i), warm.PMUWrapper.Counter(i); a != b {
			t.Errorf("PMU counter %d diverges: cold=%d warm=%d", i, a, b)
		}
	}
}

// cpuSystemEngine is cpuSystem with an explicit RTL engine.
func cpuSystemEngine(t testing.TB, engine rtl.Engine) (*soc.System, *experiments.AXIHost) {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "DDR4-1ch"
	cfg.WithPMU = true
	cfg.RTLEngine = engine
	s := soc.MustBuild(cfg)
	host := experiments.NewAXIHost(s.Queue)
	port.Bind(host.Port(), s.PMU.CPUPort(0))
	return s, host
}

// TestCheckpointCrossEngine checks that checkpoints are engine-portable: a
// run saved under one RTL engine restores under the other and finishes with
// the digest (final tick, event count, StateHash, full stats dump) of an
// uninterrupted run — in both directions. This is what lets a sweep warm a
// checkpoint prefix once and serve it to points running either engine.
func TestCheckpointCrossEngine(t *testing.T) {
	src := workload.SortBenchmark(workload.SortParams{N: 60, SleepUs: 20})
	const limit = 100 * sim.Millisecond
	setup := func(s *soc.System, host *experiments.AXIHost) {
		s.PMU.Start()
		host.Write(pmu.RegEnable, 0x3F)
		if err := s.LoadProgram(0, src); err != nil {
			t.Fatal(err)
		}
		s.Cores[0].OnExit = func(int64) { s.Queue.ExitSimLoop("program exit") }
		s.StartCores(0)
	}
	for _, dir := range []struct {
		name       string
		save, load rtl.Engine
	}{
		{"closure-to-bytecode", rtl.EngineClosure, rtl.EngineBytecode},
		{"bytecode-to-closure", rtl.EngineBytecode, rtl.EngineClosure},
	} {
		t.Run(dir.name, func(t *testing.T) {
			base := port.PacketIDMark() // see TestCheckpointRestoreEquivalenceNVDLA
			cold, coldHost := cpuSystemEngine(t, dir.save)
			setup(cold, coldHost)
			cold.Queue.RunUntil(limit)
			if exited, _ := cold.Cores[0].Exited(); !exited {
				t.Fatal("reference program did not finish")
			}
			coldDigest := runDigest(t, cold)

			port.SetPacketIDForTest(base)
			split, splitHost := cpuSystemEngine(t, dir.save)
			setup(split, splitHost)
			split.Queue.RunUntil(cold.Queue.Now() / 2)
			var snap bytes.Buffer
			if err := split.Save(&snap); err != nil {
				t.Fatal(err)
			}

			warm, _ := cpuSystemEngine(t, dir.load)
			warm.Cores[0].OnExit = func(int64) { warm.Queue.ExitSimLoop("program exit") }
			port.SetPacketIDForTest(base)
			if _, err := warm.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("cross-engine restore: %v", err)
			}
			warm.Queue.RunUntil(limit)
			if exited, _ := warm.Cores[0].Exited(); !exited {
				t.Fatal("restored program did not finish")
			}
			if got := runDigest(t, warm); got != coldDigest {
				t.Errorf("cross-engine digest diverges:\n--- %s cold ---\n%s--- %s warm ---\n%s",
					dir.save, coldDigest, dir.load, got)
			}
			for i := 0; i < pmu.NumCounters; i++ {
				if a, b := cold.PMUWrapper.Counter(i), warm.PMUWrapper.Counter(i); a != b {
					t.Errorf("PMU counter %d diverges: %s=%d %s=%d", i, dir.save, a, dir.load, b)
				}
			}
		})
	}
}

// TestCheckpointFingerprintMismatch ensures a checkpoint refuses to restore
// into a behaviourally different system configuration.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = "ideal"
	s := soc.MustBuild(cfg)
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Memory = "DDR4-1ch"
	if _, err := soc.MustBuild(other).Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("cross-configuration restore not refused")
	}

	// Same config restores fine (into a pristine build).
	if _, err := soc.MustBuild(cfg).Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("same-config restore failed: %v", err)
	}

	// A used queue must refuse to restore.
	used := soc.MustBuild(cfg)
	used.Queue.RunUntil(1000)
	used.Queue.ScheduleFunc("x", used.Queue.Now()+1, func() {})
	used.Queue.RunUntil(2000)
	if _, err := used.Restore(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("restore into a live run not refused")
	}
}
