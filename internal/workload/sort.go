// Package workload provides the guest programs run on gem5rtl cores. The
// centrepiece is the paper's PMU benchmark (§5.2.1): QuickSort,
// SelectionSort and BubbleSort executed back to back with sleep calls in
// between so the phases are separable in the PMU's interval counters.
// QuickSort sorts 10x more elements than the other two, exactly as in the
// paper ("taking a fraction of the time to sort 10x more elements").
package workload

import "fmt"

// Array base addresses used by the sort benchmark.
const (
	QuickBase  = 0x400000
	SelectBase = 0x500000
	BubbleBase = 0x600000
)

// SortParams sizes the sort benchmark. The paper uses 3k/30k/60k-element
// arrays on gem5; gem5rtl's default experiments scale these down (see
// EXPERIMENTS.md) so full runs complete in seconds of host time while
// preserving the phase structure.
type SortParams struct {
	// N is the SelectionSort/BubbleSort element count; QuickSort gets 10*N.
	N int
	// SleepUs is the inter-phase sleep (paper: 1000 us).
	SleepUs int
}

// SortBenchmark returns the assembly source of the three-phase benchmark.
func SortBenchmark(p SortParams) string {
	return fmt.Sprintf(`
; Three sorting kernels separated by sleeps (gem5+rtl PMU benchmark).
main:
    ; --- Phase 1: QuickSort over 10*N elements ---
    li   a0, %[1]d
    li   a1, %[3]d
    li   a2, 12345
    call init_array
    li   a0, %[1]d
    li   a1, 0
    li   a2, %[4]d
    call quicksort
    li   a7, 1000
    li   a0, %[6]d
    ecall

    ; --- Phase 2: SelectionSort over N elements ---
    li   a0, %[2]d
    li   a1, %[5]d
    li   a2, 999
    call init_array
    li   a0, %[2]d
    li   a1, %[5]d
    call selectsort
    li   a7, 1000
    li   a0, %[6]d
    ecall

    ; --- Phase 3: BubbleSort over N elements ---
    li   a0, %[7]d
    li   a1, %[5]d
    li   a2, 777
    call init_array
    li   a0, %[7]d
    li   a1, %[5]d
    call bubblesort
    li   a7, 1000
    li   a0, %[6]d
    ecall

    li   a7, 93
    li   a0, 0
    ecall
`+sortLib,
		QuickBase, SelectBase, 10*p.N, 10*p.N-1, p.N, p.SleepUs, BubbleBase)
}

// sortLib holds init_array and the three sort routines. Registers t0-t6 are
// caller-clobbered; quicksort keeps live values in its stack frame.
const sortLib = `
; init_array(a0=base, a1=count, a2=seed): LCG-filled 64-bit elements.
init_array:
    mv   t0, a0
    mv   t1, a1
    mv   t2, a2
    li   t3, 1103515245
    li   t4, 0x7fffffff
ia_loop:
    beqz t1, ia_done
    mul  t2, t2, t3
    addi t2, t2, 12345
    and  t5, t2, t4
    sd   t5, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    j    ia_loop
ia_done:
    ret

; bubblesort(a0=base, a1=n)
bubblesort:
    addi t0, a1, -1        ; i = n-1
bub_outer:
    ble  t0, zero, bub_done
    li   t1, 0             ; j
    mv   t2, a0            ; ptr
bub_inner:
    bge  t1, t0, bub_nexti
    ld   t3, 0(t2)
    ld   t4, 8(t2)
    ble  t3, t4, bub_noswap
    sd   t4, 0(t2)
    sd   t3, 8(t2)
bub_noswap:
    addi t1, t1, 1
    addi t2, t2, 8
    j    bub_inner
bub_nexti:
    addi t0, t0, -1
    j    bub_outer
bub_done:
    ret

; selectsort(a0=base, a1=n)
selectsort:
    li   t0, 0             ; i
sel_outer:
    addi t5, a1, -1
    bge  t0, t5, sel_done
    mv   t1, t0            ; minidx
    addi t2, t0, 1         ; j
sel_inner:
    bge  t2, a1, sel_swap
    slli t3, t2, 3
    add  t3, a0, t3
    ld   t3, 0(t3)
    slli t4, t1, 3
    add  t4, a0, t4
    ld   t4, 0(t4)
    bge  t3, t4, sel_noupd
    mv   t1, t2
sel_noupd:
    addi t2, t2, 1
    j    sel_inner
sel_swap:
    slli t3, t0, 3
    add  t3, a0, t3
    slli t4, t1, 3
    add  t4, a0, t4
    ld   t5, 0(t3)
    ld   t6, 0(t4)
    sd   t6, 0(t3)
    sd   t5, 0(t4)
    addi t0, t0, 1
    j    sel_outer
sel_done:
    ret

; quicksort(a0=base, a1=lo, a2=hi) — recursive, Lomuto partition.
quicksort:
    bge  a1, a2, qs_ret
    addi sp, sp, -32
    sd   ra, 0(sp)
    sd   a1, 8(sp)
    sd   a2, 16(sp)
    ; pivot = a[hi]
    slli t0, a2, 3
    add  t0, a0, t0
    ld   t1, 0(t0)
    mv   t2, a1            ; i
    mv   t3, a1            ; j
qs_part:
    bge  t3, a2, qs_partdone
    slli t4, t3, 3
    add  t4, a0, t4
    ld   t5, 0(t4)
    bge  t5, t1, qs_noswp
    slli t6, t2, 3
    add  t6, a0, t6
    ld   s1, 0(t6)
    sd   t5, 0(t6)
    sd   s1, 0(t4)
    addi t2, t2, 1
qs_noswp:
    addi t3, t3, 1
    j    qs_part
qs_partdone:
    ; swap a[i] <-> a[hi]
    slli t4, t2, 3
    add  t4, a0, t4
    ld   t5, 0(t4)
    sd   t1, 0(t4)
    sd   t5, 0(t0)
    sd   t2, 24(sp)
    ; quicksort(base, lo, p-1)
    ld   a1, 8(sp)
    addi a2, t2, -1
    call quicksort
    ; quicksort(base, p+1, hi)
    ld   t2, 24(sp)
    addi a1, t2, 1
    ld   a2, 16(sp)
    call quicksort
    ld   ra, 0(sp)
    addi sp, sp, 32
qs_ret:
    ret
`

// SimpleLoop returns a tiny ALU-only program: sum 0..n-1 into a0, then exit
// with the sum as the code. Used by CPU unit tests.
func SimpleLoop(n int) string {
	return fmt.Sprintf(`
main:
    li   t0, 0       ; i
    li   t1, %d      ; n
    li   a0, 0       ; sum
loop:
    bge  t0, t1, done
    add  a0, a0, t0
    addi t0, t0, 1
    j    loop
done:
    li   a7, 93
    ecall
`, n)
}

// MemoryStream returns a program that writes then reads back n 64-bit
// elements at base, exiting with the checksum. Exercises the D-cache path.
func MemoryStream(base uint64, n int) string {
	return fmt.Sprintf(`
main:
    li   t0, %d      ; base
    li   t1, %d      ; n
    li   t2, 0       ; i
wr:
    bge  t2, t1, rd_setup
    slli t3, t2, 3
    add  t3, t0, t3
    sd   t2, 0(t3)
    addi t2, t2, 1
    j    wr
rd_setup:
    li   t2, 0
    li   a0, 0
rd:
    bge  t2, t1, done
    slli t3, t2, 3
    add  t3, t0, t3
    ld   t4, 0(t3)
    add  a0, a0, t4
    addi t2, t2, 1
    j    rd
done:
    li   a7, 93
    ecall
`, base, n)
}
