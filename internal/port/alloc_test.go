package port

import (
	"testing"

	"gem5rtl/internal/sim"
)

// allocSink accepts every response and recycles the packet, modelling a
// well-behaved pooled requestor.
type allocSink struct {
	got int
}

func (s *allocSink) RecvTimingResp(pkt *Packet) bool {
	s.got++
	pkt.Release()
	return true
}

func (s *allocSink) RecvReqRetry() {}

// TestPacketPoolSteadyStateAllocs pins the packet fast path: once the pool
// is warm, a Get / AllocateData / Release cycle must not allocate at all.
// This is the allocation-regression guard for the packet path.
func TestPacketPoolSteadyStateAllocs(t *testing.T) {
	var pool PacketPool
	// Warm the pool so capacity exists before measuring.
	warm := pool.GetRead(0x1000, 64)
	warm.MakeResponse()
	warm.AllocateData()
	warm.Release()

	allocs := testing.AllocsPerRun(1000, func() {
		pkt := pool.GetRead(0x1000, 64)
		pkt.MakeResponse()
		pkt.AllocateData()
		pkt.Release()
	})
	if allocs != 0 {
		t.Fatalf("packet pool steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRespQueueSteadyStateAllocs drives a full response delivery — pooled
// packet scheduled on a RespQueue, drained through a bound port pair by the
// event queue — and requires the steady state to be allocation-free. This
// covers the send/receive machinery end to end: pool recycling, the
// head-indexed RespQueue ring, and event-kernel dispatch.
func TestRespQueueSteadyStateAllocs(t *testing.T) {
	q := sim.NewEventQueue()
	sink := &allocSink{}
	reqP := NewRequestPort("drv", sink)
	respP := NewResponsePort("dev", nil)
	Bind(reqP, respP)
	rq := NewRespQueue("dev", q, respP)

	var pool PacketPool
	deliver := func() {
		pkt := pool.GetRead(0x2000, 64)
		pkt.MakeResponse()
		pkt.AllocateData()
		rq.Schedule(pkt, q.Now()+5*sim.Nanosecond)
		q.Run()
	}
	deliver() // warm pool, queue ring and event-kernel structures

	allocs := testing.AllocsPerRun(1000, deliver)
	if allocs != 0 {
		t.Fatalf("response delivery steady state allocates %.1f objects/op, want 0", allocs)
	}
	if sink.got == 0 {
		t.Fatal("no responses delivered")
	}
}
