package port

import (
	"bytes"
	"reflect"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/sim"
)

func TestPacketRoundTrip(t *testing.T) {
	p := NewReadPacket(0x1000, 64)
	p.ReqTick = 12345
	p.RequestorID = 3
	p.PushSenderState(uint64(42))
	p.MakeResponse()
	p.Data = []byte{9, 8, 7}

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	SavePacket(w, p)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := ckpt.NewReader(&buf)
	got := LoadPacket(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("packet round trip:\n got %#v\nwant %#v", got, p)
	}
	if s := got.PopSenderState(); s != uint64(42) {
		t.Errorf("sender state = %v", s)
	}

	// A nil-data request must come back with nil data.
	q := NewReadPacket(0x2000, 64)
	buf.Reset()
	w = ckpt.NewWriter(&buf)
	SavePacket(w, q)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got = LoadPacket(ckpt.NewReader(&buf))
	if got.Data != nil {
		t.Errorf("nil data became %v", got.Data)
	}
}

func TestPacketUnknownSenderStateFails(t *testing.T) {
	p := NewReadPacket(0, 64)
	p.PushSenderState(struct{ x int }{1})
	w := ckpt.NewWriter(&bytes.Buffer{})
	SavePacket(w, p)
	if w.Err() == nil {
		t.Fatal("expected save failure for unregistered sender state")
	}
}

func TestFastForwardPacketID(t *testing.T) {
	mark := PacketIDMark() + 1000
	FastForwardPacketID(mark)
	if got := PacketIDMark(); got < mark {
		t.Fatalf("counter = %d, want >= %d", got, mark)
	}
	// Fast-forwarding backwards is a no-op.
	FastForwardPacketID(1)
	if got := PacketIDMark(); got < mark {
		t.Fatalf("counter moved backwards to %d", got)
	}
	if p := NewPacket(ReadReq, 0, 4); p.ID <= mark {
		t.Fatalf("new packet ID %d not past mark %d", p.ID, mark)
	}
}

// sink accepts everything; used to bind queues for restore tests.
type sink struct{}

func (sink) RecvTimingReq(*Packet) bool  { return true }
func (sink) RecvRespRetry()              {}
func (sink) RecvTimingResp(*Packet) bool { return true }
func (sink) RecvReqRetry()               {}

func TestQueuesRoundTrip(t *testing.T) {
	build := func(q *sim.EventQueue) (*RespQueue, *ReqQueue, *ResponsePort) {
		resp := NewResponsePort("resp", sink{})
		req := NewRequestPort("req", sink{})
		Bind(req, resp)
		rq := NewRespQueue("rq", q, resp)
		tq := NewReqQueue("tq", q, req)
		return rq, tq, resp
	}

	q := sim.NewEventQueue()
	rq, tq, resp := build(q)
	pr := NewReadPacket(0x40, 64)
	pr.MakeResponse()
	pr.AllocateData()
	rq.Schedule(pr, 500)
	tq.Schedule(NewWritePacket(0x80, []byte{1, 2}), 700)
	resp.needReqRetry = true

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := rq.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := tq.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := resp.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	q2 := sim.NewEventQueue()
	rq2, tq2, resp2 := build(q2)
	r := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err := rq2.RestoreState(r); err != nil {
		t.Fatal(err)
	}
	if err := tq2.RestoreState(r); err != nil {
		t.Fatal(err)
	}
	if err := resp2.RestoreState(r); err != nil {
		t.Fatal(err)
	}
	if rq2.Len() != 1 || tq2.Len() != 1 {
		t.Fatalf("restored lens = %d/%d", rq2.Len(), tq2.Len())
	}
	if !resp2.WaitingForReqRetry() {
		t.Error("retry flag lost")
	}
	if q2.Pending() != 2 {
		t.Fatalf("restored pending events = %d, want 2 (both drains)", q2.Pending())
	}
	// The restored drains must deliver at the original ticks.
	q2.RunUntil(1_000)
	if !rq2.Empty() || !tq2.Empty() {
		t.Error("restored queues did not drain")
	}
	if q2.Now() != 1_000 {
		t.Errorf("now = %d", q2.Now())
	}
}
