package port

import (
	"gem5rtl/internal/sim"
)

// RespQueue schedules response packets for future delivery through a
// ResponsePort, transparently handling refusals and retries. It reproduces
// gem5's queued-port behaviour: components decide *when* a response is ready
// (e.g. after a memory access latency) and the queue deals with the timing
// protocol. Deliveries preserve readiness order.
type RespQueue struct {
	q    *sim.EventQueue
	port *ResponsePort
	ev   *sim.Event

	// pending[head:] holds the live queue. Delivered entries advance head
	// instead of re-slicing, so the backing array is reused indefinitely;
	// it resets to the front whenever the queue drains.
	pending []queuedPkt
	head    int
	blocked bool
}

// queuedPkt is one scheduled delivery. stamp is the dispatch stamp of the
// event that inserted it (sim.EventQueue.CurrentStamp at Schedule time, or an
// explicit sender stamp via ScheduleStamped): entries are kept sorted by
// (when, stamp), which for a serial run is exactly the historical
// insertion-order-stable sort (stamps are monotone in dispatch order) and for
// a sharded run makes the queue order independent of *when in host time* a
// cross-shard insertion was applied — the sender's dispatch identity, not the
// apply order, decides arrival-tick ties.
type queuedPkt struct {
	pkt   *Packet
	when  sim.Tick
	stamp sim.Stamp
}

// insertPos returns the sorted insertion index for (when, stamp) in
// pending[lo:], stable for equal keys (insert after existing equals).
func insertPos(pending []queuedPkt, lo int, when sim.Tick, stamp sim.Stamp) int {
	i := len(pending)
	for i > lo {
		p := &pending[i-1]
		if p.when < when || (p.when == when && !stamp.Less(p.stamp)) {
			break
		}
		i--
	}
	return i
}

// NewRespQueue creates a queue draining through port on event queue q. The
// drain event is attributed to owner (name, "drain") by default; owners that
// prefer a cleaner attribution label can override it with SetOwner.
func NewRespQueue(name string, q *sim.EventQueue, port *ResponsePort) *RespQueue {
	rq := &RespQueue{q: q, port: port}
	rq.ev = sim.NewEvent(name+".drain", rq.drain).SetOwner(q.Owner(name, "drain"))
	return rq
}

// SetOwner re-tags the drain event's self-profiler attribution owner.
func (rq *RespQueue) SetOwner(id sim.OwnerID) { rq.ev.SetOwner(id) }

// Schedule queues pkt (which must already be a response) for delivery at the
// given absolute tick, stamped with the current dispatch context.
func (rq *RespQueue) Schedule(pkt *Packet, when sim.Tick) {
	rq.ScheduleStamped(pkt, when, rq.q.CurrentStamp())
}

// ScheduleStamped is Schedule with an explicit sender stamp — the sharded
// engine's barrier-apply path uses it to insert cross-shard responses under
// the *sender's* dispatch identity, and checkpoint restore uses it to
// reinstate saved stamps.
func (rq *RespQueue) ScheduleStamped(pkt *Packet, when sim.Tick, stamp sim.Stamp) {
	if !pkt.IsResponse() {
		panic("port: RespQueue.Schedule with non-response packet")
	}
	if when < rq.q.Now() {
		when = rq.q.Now()
	}
	if rq.head > 0 && len(rq.pending) == cap(rq.pending) {
		// Reclaim the delivered prefix before the append would grow the array.
		n := copy(rq.pending, rq.pending[rq.head:])
		for j := n; j < len(rq.pending); j++ {
			rq.pending[j] = queuedPkt{}
		}
		rq.pending = rq.pending[:n]
		rq.head = 0
	}
	// Insert keeping the queue sorted by (readiness time, sender stamp),
	// stable for equal keys — identical to issue order in a serial run.
	i := insertPos(rq.pending, rq.head, when, stamp)
	rq.pending = append(rq.pending, queuedPkt{})
	copy(rq.pending[i+1:], rq.pending[i:])
	rq.pending[i] = queuedPkt{pkt, when, stamp}
	rq.arm()
}

// Empty reports whether no responses are queued.
func (rq *RespQueue) Empty() bool { return len(rq.pending) == rq.head }

// Len returns the number of queued responses.
func (rq *RespQueue) Len() int { return len(rq.pending) - rq.head }

func (rq *RespQueue) arm() {
	if rq.blocked || rq.Empty() {
		return
	}
	when := rq.pending[rq.head].when
	if rq.ev.Scheduled() {
		if rq.ev.When() <= when {
			return
		}
		rq.q.Deschedule(rq.ev)
	}
	rq.q.Schedule(rq.ev, when)
}

func (rq *RespQueue) drain() {
	for rq.head < len(rq.pending) && rq.pending[rq.head].when <= rq.q.Now() {
		pkt := rq.pending[rq.head].pkt
		if !rq.port.SendTimingResp(pkt) {
			// Peer refused: hold everything until RecvRespRetry.
			rq.blocked = true
			return
		}
		rq.pending[rq.head] = queuedPkt{}
		rq.head++
	}
	if rq.head == len(rq.pending) {
		rq.pending = rq.pending[:0]
		rq.head = 0
	}
	rq.arm()
}

// RecvRespRetry must be called by the owning responder's RecvRespRetry.
func (rq *RespQueue) RecvRespRetry() {
	rq.blocked = false
	rq.drain()
}

// ReqQueue is the symmetric helper for requestors: it schedules request
// packets for future transmission through a RequestPort, handling refusals.
type ReqQueue struct {
	q    *sim.EventQueue
	port *RequestPort
	ev   *sim.Event

	pending []queuedPkt
	blocked bool
}

// NewReqQueue creates a queue transmitting through port. The drain event is
// attributed to owner (name, "drain") by default; see RespQueue.SetOwner.
func NewReqQueue(name string, q *sim.EventQueue, port *RequestPort) *ReqQueue {
	rq := &ReqQueue{q: q, port: port}
	rq.ev = sim.NewEvent(name+".drain", rq.drain).SetOwner(q.Owner(name, "drain"))
	return rq
}

// SetOwner re-tags the drain event's self-profiler attribution owner.
func (rq *ReqQueue) SetOwner(id sim.OwnerID) { rq.ev.SetOwner(id) }

// Schedule queues a request for transmission at the given absolute tick,
// stamped with the current dispatch context.
func (rq *ReqQueue) Schedule(pkt *Packet, when sim.Tick) {
	rq.ScheduleStamped(pkt, when, rq.q.CurrentStamp())
}

// ScheduleStamped is Schedule with an explicit sender stamp; see
// RespQueue.ScheduleStamped.
func (rq *ReqQueue) ScheduleStamped(pkt *Packet, when sim.Tick, stamp sim.Stamp) {
	if pkt.IsResponse() {
		panic("port: ReqQueue.Schedule with response packet")
	}
	if when < rq.q.Now() {
		when = rq.q.Now()
	}
	i := insertPos(rq.pending, 0, when, stamp)
	rq.pending = append(rq.pending, queuedPkt{})
	copy(rq.pending[i+1:], rq.pending[i:])
	rq.pending[i] = queuedPkt{pkt, when, stamp}
	rq.arm()
}

// Empty reports whether no requests are queued.
func (rq *ReqQueue) Empty() bool { return len(rq.pending) == 0 }

// Len returns the number of queued requests.
func (rq *ReqQueue) Len() int { return len(rq.pending) }

func (rq *ReqQueue) arm() {
	if rq.blocked || len(rq.pending) == 0 {
		return
	}
	when := rq.pending[0].when
	if rq.ev.Scheduled() {
		if rq.ev.When() <= when {
			return
		}
		rq.q.Deschedule(rq.ev)
	}
	rq.q.Schedule(rq.ev, when)
}

// drain transmits every ready packet it can. A refusal does not block
// later ready packets: a multi-channel memory controller may refuse a
// request for one full channel while accepting traffic for others, and
// head-of-line blocking here would serialise independent streams. Refused
// packets keep their queue position and are retried on RecvReqRetry.
func (rq *ReqQueue) drain() {
	now := rq.q.Now()
	anyRefused := false
	i := 0
	for i < len(rq.pending) && rq.pending[i].when <= now {
		pkt := rq.pending[i].pkt
		if rq.port.SendTimingReq(pkt) {
			rq.pending = append(rq.pending[:i], rq.pending[i+1:]...)
			continue
		}
		anyRefused = true
		i++
	}
	if anyRefused {
		rq.blocked = true
		return
	}
	rq.arm()
}

// RecvReqRetry must be called by the owning requestor's RecvReqRetry.
func (rq *ReqQueue) RecvReqRetry() {
	rq.blocked = false
	rq.drain()
}
