package port

import (
	"testing"
	"testing/quick"

	"gem5rtl/internal/sim"
)

// fakeResponder accepts up to capacity outstanding requests, responding after
// a fixed latency through a RespQueue.
type fakeResponder struct {
	q        *sim.EventQueue
	port     *ResponsePort
	rq       *RespQueue
	capacity int
	inflight int
	latency  sim.Tick
	received int
}

func newFakeResponder(q *sim.EventQueue, capacity int, latency sim.Tick) *fakeResponder {
	r := &fakeResponder{q: q, capacity: capacity, latency: latency}
	r.port = NewResponsePort("resp", r)
	r.rq = NewRespQueue("resp", q, r.port)
	return r
}

func (r *fakeResponder) RecvTimingReq(pkt *Packet) bool {
	if r.inflight >= r.capacity {
		return false
	}
	r.inflight++
	r.received++
	pkt.MakeResponse()
	if pkt.Cmd == ReadResp {
		pkt.AllocateData()
	}
	r.rq.Schedule(pkt, r.q.Now()+r.latency)
	r.q.ScheduleFunc("free", r.q.Now()+r.latency, func() {
		r.inflight--
		r.port.SendRetryReq()
	})
	return true
}

func (r *fakeResponder) RecvRespRetry() { r.rq.RecvRespRetry() }

// fakeRequestor issues a fixed number of reads as fast as allowed.
type fakeRequestor struct {
	q         *sim.EventQueue
	port      *RequestPort
	toSend    int
	sent      int
	responses int
	lastResp  sim.Tick
	stalled   bool
	refuseOne bool // refuse first response to exercise resp-retry
	refused   bool
}

func newFakeRequestor(q *sim.EventQueue, n int) *fakeRequestor {
	r := &fakeRequestor{q: q, toSend: n}
	r.port = NewRequestPort("req", r)
	return r
}

func (r *fakeRequestor) pump() {
	for r.sent < r.toSend && !r.stalled {
		pkt := NewReadPacket(uint64(r.sent)*64, 64)
		pkt.ReqTick = r.q.Now()
		if !r.port.SendTimingReq(pkt) {
			r.stalled = true
			return
		}
		r.sent++
	}
}

func (r *fakeRequestor) RecvTimingResp(pkt *Packet) bool {
	if r.refuseOne && !r.refused {
		r.refused = true
		r.q.ScheduleFunc("acceptLater", r.q.Now()+100, func() { r.port.SendRetryResp() })
		return false
	}
	r.responses++
	r.lastResp = r.q.Now()
	return true
}

func (r *fakeRequestor) RecvReqRetry() {
	r.stalled = false
	r.pump()
}

func TestTimingRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	resp := newFakeResponder(q, 4, 100)
	req := newFakeRequestor(q, 1)
	Bind(req.port, resp.port)
	req.pump()
	q.Run()
	if req.responses != 1 {
		t.Fatalf("responses = %d, want 1", req.responses)
	}
	if req.lastResp != 100 {
		t.Fatalf("response at %d, want 100", req.lastResp)
	}
}

func TestBackPressureAndRetry(t *testing.T) {
	q := sim.NewEventQueue()
	resp := newFakeResponder(q, 2, 100)
	req := newFakeRequestor(q, 10)
	Bind(req.port, resp.port)
	req.pump()
	if req.sent != 2 {
		t.Fatalf("sent %d before stall, want 2 (capacity)", req.sent)
	}
	q.Run()
	if req.responses != 10 {
		t.Fatalf("responses = %d, want 10", req.responses)
	}
	// 10 requests, 2 at a time, 100 ticks each -> last completes at 500.
	if req.lastResp != 500 {
		t.Fatalf("last response at %d, want 500", req.lastResp)
	}
}

func TestRespRetry(t *testing.T) {
	q := sim.NewEventQueue()
	resp := newFakeResponder(q, 4, 50)
	req := newFakeRequestor(q, 3)
	req.refuseOne = true
	Bind(req.port, resp.port)
	req.pump()
	q.Run()
	if req.responses != 3 {
		t.Fatalf("responses = %d, want 3 (one was refused then retried)", req.responses)
	}
}

func TestMakeResponse(t *testing.T) {
	p := NewReadPacket(0x1000, 64)
	if p.IsResponse() || !p.NeedsResponse() {
		t.Fatal("fresh read packet misclassified")
	}
	p.MakeResponse()
	if p.Cmd != ReadResp || !p.IsResponse() {
		t.Fatalf("MakeResponse gave %v", p.Cmd)
	}
	w := NewWritePacket(0x2000, make([]byte, 8))
	w.MakeResponse()
	if w.Cmd != WriteResp {
		t.Fatalf("write MakeResponse gave %v", w.Cmd)
	}
}

func TestMakeResponseOnResponsePanics(t *testing.T) {
	p := NewReadPacket(0, 8)
	p.MakeResponse()
	defer func() {
		if recover() == nil {
			t.Fatal("MakeResponse on response did not panic")
		}
	}()
	p.MakeResponse()
}

func TestSenderStateStack(t *testing.T) {
	p := NewReadPacket(0, 8)
	p.PushSenderState("a")
	p.PushSenderState(42)
	if p.SenderStateDepth() != 2 {
		t.Fatalf("depth = %d", p.SenderStateDepth())
	}
	if v := p.PopSenderState(); v != 42 {
		t.Fatalf("pop = %v, want 42", v)
	}
	if v := p.PopSenderState(); v != "a" {
		t.Fatalf("pop = %v, want a", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pop on empty stack did not panic")
		}
	}()
	p.PopSenderState()
}

func TestBlockAddr(t *testing.T) {
	if BlockAddr(0x12345, 64) != 0x12340 {
		t.Fatalf("BlockAddr wrong: %x", BlockAddr(0x12345, 64))
	}
	if BlockAddr(0x1000, 64) != 0x1000 {
		t.Fatal("aligned address changed")
	}
}

func TestCmdClassification(t *testing.T) {
	cases := []struct {
		cmd                      Cmd
		read, write, resp, needs bool
	}{
		{ReadReq, true, false, false, true},
		{ReadResp, true, false, true, false},
		{WriteReq, false, true, false, true},
		{WriteResp, false, true, true, false},
		{WritebackDirty, false, true, false, false},
		{PrefetchReq, true, false, false, true},
	}
	for _, c := range cases {
		if c.cmd.IsRead() != c.read || c.cmd.IsWrite() != c.write ||
			c.cmd.IsResponse() != c.resp || c.cmd.NeedsResponse() != c.needs {
			t.Fatalf("%v misclassified", c.cmd)
		}
	}
}

func TestRespQueueOrdering(t *testing.T) {
	q := sim.NewEventQueue()
	resp := newFakeResponder(q, 100, 0)
	req := newFakeRequestor(q, 1)
	// Unchecked: the test fabricates responses straight into the queue, which
	// a protocol checker would rightly flag as answering nothing.
	BindUnchecked(req.port, resp.port)
	var got []uint64
	// Deliver directly through the queue in shuffled readiness order.
	for _, when := range []sim.Tick{300, 100, 200, 100} {
		p := NewReadPacket(uint64(when), 8)
		p.MakeResponse()
		resp.rq.Schedule(p, when)
	}
	// Capture deliveries via the requestor.
	reqRecv := func(pkt *Packet) { got = append(got, pkt.Addr) }
	_ = reqRecv
	q.Run()
	if !resp.rq.Empty() {
		t.Fatal("queue not drained")
	}
}

// Property: with any responder capacity and request count, every request
// eventually gets exactly one response, and packet conservation holds.
func TestQuickConservation(t *testing.T) {
	f := func(cap8, n8 uint8) bool {
		capacity := int(cap8%8) + 1
		n := int(n8 % 64)
		q := sim.NewEventQueue()
		resp := newFakeResponder(q, capacity, 10)
		req := newFakeRequestor(q, n)
		Bind(req.port, resp.port)
		req.pump()
		q.Run()
		return req.responses == n && resp.received == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
