package port

// TapAction is a LinkTap's verdict on one packet delivery.
type TapAction int

// Tap verdicts.
const (
	// TapPass delivers the packet normally (possibly after the tap mutated
	// its payload in place).
	TapPass TapAction = iota
	// TapDrop swallows the packet: the sender sees a successful delivery but
	// the receiver never does. This models a lost transfer.
	TapDrop
	// TapDup delivers the packet twice, modelling a replayed transfer.
	TapDup
)

// LinkTap observes (and may corrupt) traffic on a bound link. Taps are the
// injection point of the fault campaign engine: payload flips mutate the
// packet and return TapPass; loss and replay faults return TapDrop/TapDup.
type LinkTap interface {
	// TapReq sees every request delivered toward the responder.
	TapReq(pkt *Packet) TapAction
	// TapResp sees every response delivered toward the requestor.
	TapResp(pkt *Packet) TapAction
}

// Injector re-delivers held packets to the endpoints beneath a tap, for
// delayed-delivery faults: the tap returns TapDrop and later re-injects the
// packet through the Injector.
type Injector struct {
	reqInner  Requestor
	respInner Responder
}

// DeliverResp hands a response to the requestor beneath the tap, bypassing
// the tap itself. The requestor's acceptance is returned; a late redelivery
// into a refusing requestor is dropped (the fault made it so).
func (inj *Injector) DeliverResp(pkt *Packet) bool {
	return inj.reqInner.RecvTimingResp(pkt)
}

// DeliverReq hands a request to the responder beneath the tap.
func (inj *Injector) DeliverReq(pkt *Packet) bool {
	return inj.respInner.RecvTimingReq(pkt)
}

// Interpose wraps both owners of an already-bound link with tap adapters, so
// every timing delivery flows through the tap. Retries pass through
// unobserved. The returned Injector reaches the wrapped endpoints for
// delayed re-delivery. Multiple interpositions nest (outermost sees traffic
// first); a tap over a checked link observes traffic before the checker
// validates it, so injected faults exercise the checker too.
func Interpose(req *RequestPort, tap LinkTap) *Injector {
	if req.peer == nil {
		panic("port: Interpose on unbound port " + req.name)
	}
	resp := req.peer
	inj := &Injector{reqInner: req.owner, respInner: resp.owner}
	req.owner = &tappedRequestor{tap: tap, inner: req.owner}
	resp.owner = &tappedResponder{tap: tap, inner: resp.owner, port: resp}
	return inj
}

type tappedRequestor struct {
	tap   LinkTap
	inner Requestor
}

func (t *tappedRequestor) RecvTimingResp(pkt *Packet) bool {
	switch t.tap.TapResp(pkt) {
	case TapDrop:
		// Swallowed: report success so the responder retires it.
		return true
	case TapDup:
		if ok := t.inner.RecvTimingResp(pkt); !ok {
			return false
		}
		t.inner.RecvTimingResp(pkt)
		return true
	}
	return t.inner.RecvTimingResp(pkt)
}

func (t *tappedRequestor) RecvReqRetry() { t.inner.RecvReqRetry() }

type tappedResponder struct {
	tap   LinkTap
	inner Responder
	port  *ResponsePort
}

func (t *tappedResponder) RecvTimingReq(pkt *Packet) bool {
	switch t.tap.TapReq(pkt) {
	case TapDrop:
		return true
	case TapDup:
		if ok := t.inner.RecvTimingReq(pkt); !ok {
			return false
		}
		t.inner.RecvTimingReq(pkt)
		return true
	}
	return t.inner.RecvTimingReq(pkt)
}

func (t *tappedResponder) RecvRespRetry() { t.inner.RecvRespRetry() }

// FunctionalAccess forwards functional traffic beneath the tap (faults apply
// to timing traffic only), preserving the unwrapped link's panic for
// responders without functional support.
func (t *tappedResponder) FunctionalAccess(pkt *Packet) {
	f, ok := t.inner.(Functional)
	if !ok {
		panic("port: peer of " + t.port.peer.name + " does not support functional access")
	}
	f.FunctionalAccess(pkt)
}
