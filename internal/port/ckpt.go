package port

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/sim"
)

// SavePacket serialises one packet, including its sender-state stack. Each
// stack entry is either a bare uint64 (request IDs pushed by the RTLObject
// bridge, tagged ckpt.RawU64SenderState) or a registered ckpt.SenderState
// implementation; anything else fails the save — extending the closed set of
// sender-state types requires teaching it to checkpoint itself.
func SavePacket(w *ckpt.Writer, p *Packet) {
	w.U64(p.ID)
	w.I64(int64(p.Cmd))
	w.U64(p.Addr)
	w.Int(p.Size)
	w.Bytes(p.Data)
	w.U64(uint64(p.ReqTick))
	w.Int(p.RequestorID)
	w.Int(len(p.senderState))
	for _, s := range p.senderState {
		switch v := s.(type) {
		case uint64:
			w.U8(ckpt.RawU64SenderState)
			w.U64(v)
		case ckpt.SenderState:
			w.U8(v.SenderStateKind())
			v.EncodeSenderState(w)
		default:
			w.Fail(fmt.Errorf("port: packet %d carries non-checkpointable sender state %T", p.ID, s))
			return
		}
	}
}

// LoadPacket reconstructs a packet written by SavePacket. Restored packets
// are distinct host objects with the original IDs; no component compares
// packet pointers across the save boundary, so identity is carried entirely
// by the ID and the sender-state stack.
func LoadPacket(r *ckpt.Reader) *Packet {
	p := &Packet{}
	p.ID = r.U64()
	// A restored packet is pre-checkpoint traffic by definition: move the
	// checker grandfather line so its remaining handshakes (a response to a
	// request the fresh checker never saw) are adopted, not flagged.
	noteRestoredID(p.ID)
	p.Cmd = Cmd(r.I64())
	p.Addr = r.U64()
	p.Size = r.Int()
	p.Data = r.Bytes()
	p.ReqTick = sim.Tick(r.U64())
	p.RequestorID = r.Int()
	n := r.Len()
	for i := 0; i < n; i++ {
		kind := r.U8()
		if r.Err() != nil {
			return p
		}
		if kind == ckpt.RawU64SenderState {
			p.senderState = append(p.senderState, r.U64())
			continue
		}
		p.senderState = append(p.senderState, ckpt.DecodeSenderState(kind, r))
	}
	return p
}

// SaveState captures a response port's retry bookkeeping. The flags live on
// the link's response side for both directions, so responders save their
// ports as part of their own state.
func (p *ResponsePort) SaveState(w *ckpt.Writer) error {
	w.Section("port.resp")
	w.Bool(p.needReqRetry)
	w.Bool(p.needRespRetry)
	return w.Err()
}

// RestoreState reinstates the retry flags.
func (p *ResponsePort) RestoreState(r *ckpt.Reader) error {
	r.Section("port.resp")
	p.needReqRetry = r.Bool()
	p.needRespRetry = r.Bool()
	return r.Err()
}

// canonicalStampSeqs maps each entry's stamp Seq — a raw per-queue dispatch
// sequence number whose absolute value depends on the engine (one serial
// counter vs per-shard counters) — to a canonical ordinal among the entries
// that share its (When, Prio, Rank) dispatch identity, ordered by raw Seq
// (stable by position for full ties). The relative Seq order of same-name
// dispatches is engine-independent, so serial and sharded saves emit the
// same ordinals; and ordinals stay far below sim.CanonicalSeqBase, so fresh
// post-restore dispatch stamps always order behind restored ones with the
// same (When, Prio, Rank).
func canonicalStampSeqs(entries []queuedPkt) []uint64 {
	type key struct {
		when sim.Tick
		prio int32
		rank uint64
	}
	groups := make(map[key][]int, len(entries))
	for i := range entries {
		s := entries[i].stamp
		k := key{s.When, s.Prio, s.Rank}
		groups[k] = append(groups[k], i)
	}
	ord := make([]uint64, len(entries))
	for _, idxs := range groups {
		sort.SliceStable(idxs, func(a, b int) bool {
			return entries[idxs[a]].stamp.Seq < entries[idxs[b]].stamp.Seq
		})
		for o, i := range idxs {
			ord[i] = uint64(o)
		}
	}
	return ord
}

// saveQueuedPkts serialises a pending slice: packets, arrival ticks and
// sender stamps (with canonicalised stamp ordinals).
func saveQueuedPkts(w *ckpt.Writer, entries []queuedPkt) {
	w.Int(len(entries))
	ord := canonicalStampSeqs(entries)
	for i := range entries {
		qp := &entries[i]
		SavePacket(w, qp.pkt)
		w.U64(uint64(qp.when))
		w.U64(uint64(qp.stamp.When))
		w.I64(int64(qp.stamp.Prio))
		w.U64(qp.stamp.Rank)
		w.U64(ord[i])
	}
}

// loadQueuedPkts reads a pending slice written by saveQueuedPkts, appending
// onto dst.
func loadQueuedPkts(r *ckpt.Reader, dst []queuedPkt) []queuedPkt {
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		pkt := LoadPacket(r)
		when := sim.Tick(r.U64())
		stamp := sim.Stamp{
			When: sim.Tick(r.U64()),
			Prio: int32(r.I64()),
			Rank: r.U64(),
			Seq:  r.U64(),
		}
		dst = append(dst, queuedPkt{pkt, when, stamp})
	}
	return dst
}

// SaveState captures the queued responses, the blocked flag and the drain
// event of a RespQueue.
func (rq *RespQueue) SaveState(w *ckpt.Writer) error {
	w.Section("port.respq")
	w.Bool(rq.blocked)
	sim.SaveEvent(w, rq.ev)
	saveQueuedPkts(w, rq.pending[rq.head:])
	return w.Err()
}

// RestoreState reinstates the queue contents and re-materialises the drain
// event.
func (rq *RespQueue) RestoreState(r *ckpt.Reader) error {
	r.Section("port.respq")
	rq.blocked = r.Bool()
	rq.q.RestoreEvent(r, rq.ev)
	rq.pending = loadQueuedPkts(r, rq.pending[:0])
	rq.head = 0
	return r.Err()
}

// SaveState captures the queued requests, the blocked flag and the drain
// event of a ReqQueue.
func (rq *ReqQueue) SaveState(w *ckpt.Writer) error {
	w.Section("port.reqq")
	w.Bool(rq.blocked)
	sim.SaveEvent(w, rq.ev)
	saveQueuedPkts(w, rq.pending)
	return w.Err()
}

// RestoreState reinstates the queue contents and re-materialises the drain
// event.
func (rq *ReqQueue) RestoreState(r *ckpt.Reader) error {
	r.Section("port.reqq")
	rq.blocked = r.Bool()
	rq.q.RestoreEvent(r, rq.ev)
	rq.pending = loadQueuedPkts(r, rq.pending[:0])
	return r.Err()
}

// PacketIDMark returns the current value of the process-global packet-ID
// counter: the high-water mark a checkpoint must record.
func PacketIDMark() uint64 { return packetID.Load() }

// FastForwardPacketID advances the global packet-ID counter to at least mark.
// Restore paths call this with the checkpoint's recorded mark so a resumed
// run never mints an ID that collides with a packet already in flight inside
// the restored state. Lock-free and monotonic: concurrent restores and
// running simulations only ever move the counter forward.
func FastForwardPacketID(mark uint64) {
	for {
		cur := packetID.Load()
		if cur >= mark {
			break
		}
		if packetID.CompareAndSwap(cur, mark) {
			break
		}
	}
	// A restore also moves the checker grandfather line: packets at or below
	// the mark were minted before the checkpoint, so a fresh process's
	// checkers (attached at Bind time, before RestoreState repopulates the
	// queues) must adopt rather than reject their traffic.
	noteRestoredID(mark)
}

// noteRestoredID raises the checker grandfather line of id's ID space to at
// least id's local counter value (see restoreMarks).
func noteRestoredID(id uint64) {
	if id == 0 {
		return
	}
	space, local := id>>IDSpaceShift, id&IDSpaceLocalMask
	restoreMu.Lock()
	if restoreMarks[space] < local {
		restoreMarks[space] = local
	}
	restoreMu.Unlock()
	everRestored.Store(true)
}

// SetPacketIDForTest sets the counter to an absolute value, including
// backwards. Restore-equivalence tests use it to replay the ID sequence a
// fresh process would see when comparing in-process runs. Rewinding is only
// safe while no other simulation is allocating packets — production restore
// paths must use FastForwardPacketID.
func SetPacketIDForTest(v uint64) { packetID.Store(v) }
