package port

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// restoreMarks holds, per packet-ID space (see PacketPool.SetIDSpace; space 0
// is the process-global counter), the highest local counter value handed to
// noteRestoredID by a checkpoint restore in this process. Checkers are
// attached at Bind time, before RestoreState repopulates queues and
// transaction tables, so handshakes belonging to pre-checkpoint packets (ID
// at or below the mark *of its own space*) are adopted rather than flagged:
// the refusal or request they answer happened in the checkpointed process.
// Post-restore traffic mints IDs above its space's mark and stays fully
// checked. Marks are per-space so a restored namespaced packet (whose raw ID
// is numerically huge) does not grandfather the entire global ID sequence.
var (
	restoreMu    sync.Mutex
	restoreMarks = map[uint64]uint64{}
	everRestored atomic.Bool
)

// adoptable reports whether an unknown handshake for id belongs to
// pre-checkpoint traffic restored in this process.
func adoptable(id uint64) bool {
	if !everRestored.Load() {
		return false
	}
	space, local := id>>IDSpaceShift, id&IDSpaceLocalMask
	restoreMu.Lock()
	mark := restoreMarks[space]
	restoreMu.Unlock()
	return local <= mark
}

// Checking, when true, makes every Bind attach a protocol Checker to the
// link, turning the whole test suite (and any run with -check-ports) into a
// timing-port conformance test. It is initialised from the GEM5RTL_CHECK_PORTS
// environment variable and may be set programmatically before any Bind; it
// must not be toggled while simulations are running.
var Checking = os.Getenv("GEM5RTL_CHECK_PORTS") != ""

// Checker enforces the gem5 timing-port contract on one bound link:
//
//   - a refused request must not be resent before RecvReqRetry;
//   - a refused response blocks all responses until RecvRespRetry (responders
//     deliver through a strictly ordered RespQueue);
//   - retries must not fire with nobody waiting;
//   - every response must answer an outstanding request, exactly once, with
//     no duplicate packet IDs in flight.
//
// Violations panic with the recent handshake history, turning a protocol bug
// into an immediate, located failure instead of a silent hang. Note the
// request-side rule is per packet, not per link: ReqQueue deliberately keeps
// trying later ready packets after a refusal (no head-of-line blocking), so
// only resending the *same* refused packet before its retry is an error.
type Checker struct {
	link string

	// outstanding tracks accepted requests awaiting a response: ID -> the
	// request command (responses must match read/write kind).
	outstanding map[uint64]Cmd
	// refused tracks request packet IDs refused and not yet retried.
	refused map[uint64]bool
	// respBlocked is set while a refused response awaits RecvRespRetry.
	respBlocked bool

	seq  uint64
	hist []string
}

const checkerHistLen = 32

// BindChecked binds req to resp with a protocol Checker interposed, and
// returns the checker for quiescence assertions in tests. Exactly one
// checker is attached regardless of the package Checking flag.
func BindChecked(req *RequestPort, resp *ResponsePort) *Checker {
	bindRaw(req, resp)
	return attachChecker(req, resp)
}

// BindUnchecked binds req to resp with no checker even when the package
// Checking flag is set. It exists for white-box test rigs that inject traffic
// around the port API (calling RecvTimingReq on a component directly, or
// scheduling fabricated responses into a queue): a checker would flag their
// responses as unanswered requests. Simulation wiring should use Bind.
func BindUnchecked(req *RequestPort, resp *ResponsePort) {
	bindRaw(req, resp)
}

// attachChecker interposes validating owner wrappers on an already-bound
// link. Owners are only consulted for delivery, so swapping them after Bind
// is transparent to the components on either side.
func attachChecker(req *RequestPort, resp *ResponsePort) *Checker {
	c := &Checker{
		link:        req.name + "<->" + resp.name,
		outstanding: map[uint64]Cmd{},
		refused:     map[uint64]bool{},
	}
	req.owner = &checkedRequestor{c: c, inner: req.owner}
	resp.owner = &checkedResponder{c: c, inner: resp.owner, port: resp}
	return c
}

// Outstanding returns the number of accepted requests still awaiting their
// response.
func (c *Checker) Outstanding() int { return len(c.outstanding) }

// CheckQuiescent returns an error if the link still has unanswered requests —
// the "every request eventually answered" invariant, asserted by tests once
// a simulation has drained.
func (c *Checker) CheckQuiescent() error {
	if len(c.outstanding) == 0 {
		return nil
	}
	ids := make([]string, 0, len(c.outstanding))
	for id, cmd := range c.outstanding {
		ids = append(ids, fmt.Sprintf("%d(%s)", id, cmd))
	}
	return fmt.Errorf("port: link %s has %d unanswered requests: %s",
		c.link, len(c.outstanding), strings.Join(ids, " "))
}

func (c *Checker) record(format string, args ...any) {
	c.seq++
	line := fmt.Sprintf("#%d %s", c.seq, fmt.Sprintf(format, args...))
	if len(c.hist) == checkerHistLen {
		copy(c.hist, c.hist[1:])
		c.hist[len(c.hist)-1] = line
	} else {
		c.hist = append(c.hist, line)
	}
}

func (c *Checker) violate(format string, args ...any) {
	panic(fmt.Sprintf("port: protocol violation on link %s: %s\nhandshake history (most recent last):\n  %s",
		c.link, fmt.Sprintf(format, args...), strings.Join(c.hist, "\n  ")))
}

// checkedResponder validates inbound requests and response retries.
type checkedResponder struct {
	c     *Checker
	inner Responder
	port  *ResponsePort
}

func (r *checkedResponder) RecvTimingReq(pkt *Packet) bool {
	c := r.c
	// Capture identity before delegating: a responder with posted writes
	// (the DRAM controller) mutates the packet into its response inside
	// RecvTimingReq, and the terminus of a no-response command may Release
	// a pooled packet before returning.
	id, cmd, needsResp := pkt.ID, pkt.Cmd, pkt.NeedsResponse()
	addr, size := pkt.Addr, pkt.Size
	if c.refused[id] {
		c.record("req  id=%d %s addr=%#x RESENT-WHILE-REFUSED", id, cmd, pkt.Addr)
		c.violate("request id=%d (%s) resent before RecvReqRetry", id, cmd)
	}
	if _, dup := c.outstanding[id]; dup && needsResp {
		c.record("req  id=%d %s addr=%#x DUPLICATE", id, cmd, pkt.Addr)
		c.violate("duplicate in-flight request id=%d (%s)", id, cmd)
	}
	ok := r.inner.RecvTimingReq(pkt)
	c.record("req  id=%d %s addr=%#x size=%d -> %s", id, cmd, addr, size, accepted(ok))
	if ok {
		if needsResp {
			c.outstanding[id] = cmd
		}
	} else {
		c.refused[id] = true
	}
	return ok
}

func (r *checkedResponder) RecvRespRetry() {
	c := r.c
	if !c.respBlocked {
		if everRestored.Load() {
			c.record("resp-retry pre-checkpoint (adopted)")
			r.inner.RecvRespRetry()
			return
		}
		c.record("resp-retry NO-WAITER")
		c.violate("RecvRespRetry with no refused response waiting")
	}
	c.respBlocked = false
	c.record("resp-retry")
	r.inner.RecvRespRetry()
}

// FunctionalAccess forwards functional traffic, preserving the unwrapped
// link's panic for responders that do not support it.
func (r *checkedResponder) FunctionalAccess(pkt *Packet) {
	f, ok := r.inner.(Functional)
	if !ok {
		panic("port: peer of " + r.port.peer.name + " does not support functional access")
	}
	f.FunctionalAccess(pkt)
}

// checkedRequestor validates inbound responses and request retries.
type checkedRequestor struct {
	c     *Checker
	inner Requestor
}

func (r *checkedRequestor) RecvTimingResp(pkt *Packet) bool {
	c := r.c
	// Capture identity before delegating: the requestor owns the response and
	// may Release the pooled packet as soon as it has consumed it.
	id, cmd, addr := pkt.ID, pkt.Cmd, pkt.Addr
	if c.respBlocked {
		c.record("resp id=%d %s SENT-WHILE-BLOCKED", id, cmd)
		c.violate("response id=%d (%s) delivered before RecvRespRetry", id, cmd)
	}
	req, known := c.outstanding[id]
	if !known {
		if adoptable(id) {
			// The request was accepted before the checkpoint; adopt its
			// response and skip the kind cross-check (the request command was
			// never observed on this side of the restore).
			c.record("resp id=%d %s pre-checkpoint (adopted)", id, cmd)
			ok := r.inner.RecvTimingResp(pkt)
			c.record("resp id=%d %s addr=%#x -> %s", id, cmd, addr, accepted(ok))
			if !ok {
				c.respBlocked = true
			}
			return ok
		}
		c.record("resp id=%d %s UNKNOWN", id, cmd)
		c.violate("response id=%d (%s) matches no outstanding request", id, cmd)
	}
	if req.IsRead() != cmd.IsRead() {
		c.record("resp id=%d %s MISMATCH req=%s", id, cmd, req)
		c.violate("response id=%d is %s for a %s request", id, cmd, req)
	}
	ok := r.inner.RecvTimingResp(pkt)
	c.record("resp id=%d %s addr=%#x -> %s", id, cmd, addr, accepted(ok))
	if ok {
		delete(c.outstanding, id)
	} else {
		c.respBlocked = true
	}
	return ok
}

func (r *checkedRequestor) RecvReqRetry() {
	c := r.c
	if len(c.refused) == 0 {
		if everRestored.Load() {
			// A refusal checkpointed as a restored needReqRetry flag fires its
			// retry in this process; the refusal itself predates the checker.
			c.record("req-retry pre-checkpoint (adopted)")
			r.inner.RecvReqRetry()
			return
		}
		c.record("req-retry NO-WAITER")
		c.violate("RecvReqRetry with no refused request waiting")
	}
	// One retry wakes the requestor, which may resend any (or all) of its
	// refused packets; clear the whole refused set.
	c.refused = map[uint64]bool{}
	c.record("req-retry")
	r.inner.RecvReqRetry()
}

func accepted(ok bool) string {
	if ok {
		return "accepted"
	}
	return "refused"
}
