package port

import "fmt"

// Requestor is implemented by components that own a RequestPort (gem5's
// "master" side): they receive responses and retry notifications.
type Requestor interface {
	// RecvTimingResp delivers a response. Returning false asks the responder
	// to hold the response and wait for SendRetryResp.
	RecvTimingResp(pkt *Packet) bool
	// RecvReqRetry tells the requestor that a previously refused request may
	// now be resent.
	RecvReqRetry()
}

// Responder is implemented by components that own a ResponsePort (gem5's
// "slave" side): they receive requests and response-retry notifications.
type Responder interface {
	// RecvTimingReq delivers a request. Returning false refuses it; the
	// responder must later call SendRetryReq on its port.
	RecvTimingReq(pkt *Packet) bool
	// RecvRespRetry tells the responder a previously refused response may now
	// be resent.
	RecvRespRetry()
}

// Functional is implemented by responders that support debug/functional
// accesses which complete immediately with no timing (used for loading
// program images and traces).
type Functional interface {
	FunctionalAccess(pkt *Packet)
}

// RequestPort is the requestor's endpoint of a point-to-point link.
type RequestPort struct {
	name  string
	owner Requestor
	peer  *ResponsePort
}

// ResponsePort is the responder's endpoint of a point-to-point link.
type ResponsePort struct {
	name  string
	owner Responder
	peer  *RequestPort

	// needReqRetry is set when a request was refused, so the responder knows
	// someone is waiting. Mirrors gem5's internal retry bookkeeping.
	needReqRetry bool
	// needRespRetry is the symmetric flag on the requestor side.
	needRespRetry bool
}

// NewRequestPort creates an unbound request port owned by r.
func NewRequestPort(name string, r Requestor) *RequestPort {
	return &RequestPort{name: name, owner: r}
}

// NewResponsePort creates an unbound response port owned by r.
func NewResponsePort(name string, r Responder) *ResponsePort {
	return &ResponsePort{name: name, owner: r}
}

// Bind connects a request port to a response port. Both must be unbound.
// When the package-level Checking flag is set, a protocol Checker is
// interposed on the link (see BindChecked).
func Bind(req *RequestPort, resp *ResponsePort) {
	bindRaw(req, resp)
	if Checking {
		attachChecker(req, resp)
	}
}

// bindRaw links the ports without any checker interposition.
func bindRaw(req *RequestPort, resp *ResponsePort) {
	if req.peer != nil || resp.peer != nil {
		panic(fmt.Sprintf("port: rebinding %s <-> %s", req.name, resp.name))
	}
	req.peer = resp
	resp.peer = req
}

// Name returns the port name.
func (p *RequestPort) Name() string { return p.name }

// Bound reports whether the port has a peer.
func (p *RequestPort) Bound() bool { return p.peer != nil }

// Peer returns the connected response port (nil if unbound).
func (p *RequestPort) Peer() *ResponsePort { return p.peer }

// SendTimingReq attempts to deliver a request to the peer responder. If it
// returns false the requestor must not resend until RecvReqRetry fires.
func (p *RequestPort) SendTimingReq(pkt *Packet) bool {
	if p.peer == nil {
		panic("port: SendTimingReq on unbound port " + p.name)
	}
	if pkt.IsResponse() {
		panic("port: SendTimingReq with response packet " + pkt.Cmd.String())
	}
	ok := p.peer.owner.RecvTimingReq(pkt)
	if !ok {
		p.peer.needReqRetry = true
	}
	return ok
}

// SendRetryResp tells the peer responder that the requestor can now accept
// the response it previously refused.
func (p *RequestPort) SendRetryResp() {
	if p.peer == nil {
		panic("port: SendRetryResp on unbound port " + p.name)
	}
	if p.peer.needRespRetry {
		p.peer.needRespRetry = false
		p.peer.owner.RecvRespRetry()
	}
}

// SendFunctional performs an immediate, untimed access through the link.
func (p *RequestPort) SendFunctional(pkt *Packet) {
	if p.peer == nil {
		panic("port: SendFunctional on unbound port " + p.name)
	}
	f, ok := p.peer.owner.(Functional)
	if !ok {
		panic("port: peer of " + p.name + " does not support functional access")
	}
	f.FunctionalAccess(pkt)
}

// Name returns the port name.
func (p *ResponsePort) Name() string { return p.name }

// Bound reports whether the port has a peer.
func (p *ResponsePort) Bound() bool { return p.peer != nil }

// Peer returns the connected request port (nil if unbound).
func (p *ResponsePort) Peer() *RequestPort { return p.peer }

// SendTimingResp attempts to deliver a response to the peer requestor. If it
// returns false the responder must not resend until RecvRespRetry fires.
func (p *ResponsePort) SendTimingResp(pkt *Packet) bool {
	if p.peer == nil {
		panic("port: SendTimingResp on unbound port " + p.name)
	}
	if !pkt.IsResponse() {
		panic("port: SendTimingResp with request packet " + pkt.Cmd.String())
	}
	ok := p.peer.owner.RecvTimingResp(pkt)
	if !ok {
		p.needRespRetry = true
	}
	return ok
}

// SendRetryReq tells the peer requestor that it may resend the request the
// responder previously refused. It is a no-op unless a refusal is pending,
// so responders can call it unconditionally when resources free up.
func (p *ResponsePort) SendRetryReq() {
	if p.peer == nil {
		panic("port: SendRetryReq on unbound port " + p.name)
	}
	if p.needReqRetry {
		p.needReqRetry = false
		p.peer.owner.RecvReqRetry()
	}
}

// WaitingForReqRetry reports whether a refused requestor awaits a retry.
func (p *ResponsePort) WaitingForReqRetry() bool { return p.needReqRetry }
