// Package port implements gem5-style timing ports and packets: the transport
// layer every gem5rtl component (CPUs, caches, crossbars, memory controllers,
// and the RTLObject bridge) uses to exchange memory traffic. It reproduces
// the essential gem5 semantics the paper's framework relies on:
//
//   - Packets carry a command, address, size and payload, plus a sender-state
//     stack so intermediate components can route responses back.
//   - Timing accesses may be refused (SendTimingReq returns false); the
//     refused sender must wait for a retry callback before resending. This
//     back-pressure is what propagates MSHR and memory-queue occupancy limits
//     through the system and makes the max-in-flight DSE meaningful.
//   - Functional accesses move data immediately with no timing, used to load
//     program images and NVDLA traces into memory.
package port

import (
	"sync/atomic"

	"gem5rtl/internal/sim"
)

// Cmd enumerates packet commands, a condensed version of gem5's MemCmd.
type Cmd int

// Packet commands.
const (
	ReadReq Cmd = iota
	ReadResp
	WriteReq
	WriteResp
	// WritebackDirty is a cache writeback; it expects no response.
	WritebackDirty
	// PrefetchReq is a read issued by a prefetcher; responses carry data.
	PrefetchReq
)

// String names the command for traces and error messages.
func (c Cmd) String() string {
	switch c {
	case ReadReq:
		return "ReadReq"
	case ReadResp:
		return "ReadResp"
	case WriteReq:
		return "WriteReq"
	case WriteResp:
		return "WriteResp"
	case WritebackDirty:
		return "WritebackDirty"
	case PrefetchReq:
		return "PrefetchReq"
	}
	return "UnknownCmd"
}

// IsRead reports whether the command moves data toward the requestor.
func (c Cmd) IsRead() bool { return c == ReadReq || c == ReadResp || c == PrefetchReq }

// IsWrite reports whether the command moves data toward memory.
func (c Cmd) IsWrite() bool { return c == WriteReq || c == WriteResp || c == WritebackDirty }

// IsResponse reports whether the command is a response.
func (c Cmd) IsResponse() bool { return c == ReadResp || c == WriteResp }

// NeedsResponse reports whether a request command expects a response packet.
func (c Cmd) NeedsResponse() bool { return c == ReadReq || c == WriteReq || c == PrefetchReq }

// Packet is the unit of communication between ports. A request packet is
// turned into its response in place by MakeResponse, preserving identity so
// senders can match responses to outstanding requests by pointer or ID.
//
// Ownership contract (see PERFORMANCE.md for the full model): a packet is
// owned by whoever created it until it is delivered; delivery of a response
// (or acceptance of a no-response request such as WritebackDirty) transfers
// ownership to the receiver, who must copy out any payload it wants to keep
// before returning. Packets obtained from a PacketPool are returned to their
// pool with Release by the final owner — the creating requestor once it has
// consumed the response, or the memory-side terminus for no-response
// commands. Release on a non-pooled packet is a no-op, so termini may
// release unconditionally.
type Packet struct {
	// ID is a unique (per PacketAllocator) identifier, handy for tracing.
	ID uint64
	// Cmd is the current command; flips to the response command in MakeResponse.
	Cmd Cmd
	// Addr is the (physical) byte address of the access.
	Addr uint64
	// Size is the access size in bytes.
	Size int
	// Data is the payload; len(Data) == Size for reads once responded.
	Data []byte
	// ReqTick records when the original request entered the system.
	ReqTick sim.Tick
	// RequestorID identifies the originating device (CPU n, NVDLA n, ...).
	RequestorID int

	senderState []any

	// pool, when non-nil, is the freelist this packet returns to on Release.
	pool   *PacketPool
	inPool bool
}

// PacketPool is a freelist of Packets for a single simulation's hot path.
// Unlike sync.Pool it is deterministic (no GC-driven eviction), single-
// threaded like the event queue that drives it, and checkpoint-safe: Get
// mints a fresh ID from the same global counter as NewPacket (or from the
// pool's own counter when SetIDSpace namespaced it), so the ID sequence of a
// pooled run is bit-identical to an unpooled one, and restored packets
// (LoadPacket) are simply unpooled.
//
// Pooled packets own their Data buffer: the capacity survives recycling, and
// AllocateData zero-fills reused capacity so observable contents match a
// fresh allocation. Callers must therefore never hand a pooled packet's Data
// slice to a component that retains it past the packet's release — copy out
// instead, which is what every delivery path in this codebase already does.
type PacketPool struct {
	free []*Packet

	// space, when non-zero, namespaces the pool's IDs: minted IDs are
	// space<<IDSpaceShift | ctr with a pool-local counter instead of draws
	// from the process-global counter. A namespaced allocator's ID sequence
	// depends only on its own allocation order — not on what any other
	// component (or shard goroutine) allocates in between — which is what
	// keeps packet IDs, and therefore checkpoint bytes, identical between the
	// serial and sharded engines. The counter is component state: owners
	// persist it via SaveCounter/RestoreCounter in their own checkpoints.
	space uint64
	ctr   uint64
}

// IDSpaceShift positions a PacketPool ID-space tag in the top bits of a
// packet ID; the low bits hold the pool-local counter.
const IDSpaceShift = 48

// IDSpaceLocalMask masks the pool-local counter out of a namespaced ID.
const IDSpaceLocalMask = (uint64(1) << IDSpaceShift) - 1

// SetIDSpace namespaces the pool's packet IDs under the given non-zero space
// tag (see PacketPool). Must be set before the first Get and never changed.
func (pl *PacketPool) SetIDSpace(space uint64) {
	if space == 0 || space > ^uint64(0)>>IDSpaceShift {
		panic("port: PacketPool ID space out of range")
	}
	if pl.ctr != 0 {
		panic("port: SetIDSpace after packets were minted")
	}
	pl.space = space
}

// mintID draws the next packet ID: pool-local when namespaced, process-global
// otherwise.
func (pl *PacketPool) mintID() uint64 {
	if pl.space == 0 {
		return packetID.Add(1)
	}
	pl.ctr++
	return pl.space<<IDSpaceShift | pl.ctr
}

// SaveCounter saves the namespaced-ID counter into an owner's checkpoint
// section.
func (pl *PacketPool) SaveCounter() uint64 { return pl.ctr }

// RestoreCounter reinstates a counter saved by SaveCounter.
func (pl *PacketPool) RestoreCounter(v uint64) { pl.ctr = v }

// Get returns a packet with a fresh ID, either recycled or newly allocated.
// The packet's Data is empty (length 0); use AllocateData or append to fill
// it. The caller owns the packet until delivery transfers it (see Packet).
func (pl *PacketPool) Get(cmd Cmd, addr uint64, size int) *Packet {
	n := len(pl.free)
	if n == 0 {
		return &Packet{ID: pl.mintID(), Cmd: cmd, Addr: addr, Size: size, pool: pl}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	p.inPool = false
	p.ID = pl.mintID()
	p.Cmd = cmd
	p.Addr = addr
	p.Size = size
	p.Data = p.Data[:0]
	p.ReqTick = 0
	p.RequestorID = 0
	return p
}

// NewWrite allocates an unpooled write packet (the slice is not copied) with
// an ID minted from the pool's namespace. It exists so a namespaced
// component's writes draw from the same deterministic per-component ID
// sequence as its pooled reads instead of the process-global counter.
func (pl *PacketPool) NewWrite(addr uint64, data []byte) *Packet {
	return &Packet{ID: pl.mintID(), Cmd: WriteReq, Addr: addr, Size: len(data), Data: data}
}

// GetRead is shorthand for Get(ReadReq, addr, size).
func (pl *PacketPool) GetRead(addr uint64, size int) *Packet {
	return pl.Get(ReadReq, addr, size)
}

// Release returns a pooled packet to its freelist; it is a no-op for packets
// not obtained from a PacketPool (NewPacket, LoadPacket), so termini can call
// it unconditionally. Only the current owner may release, and the packet must
// not be referenced afterwards: its ID, command and payload are reused by a
// future Get. Releasing twice panics — that always indicates an ownership
// bug. A packet whose pointer was captured by a checkpoint writer has already
// been serialised by value, so releasing it afterwards is safe.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	if p.inPool {
		panic("port: double Release of pooled packet")
	}
	for i := range p.senderState {
		p.senderState[i] = nil
	}
	p.senderState = p.senderState[:0]
	p.inPool = true
	p.pool.free = append(p.pool.free, p)
}

// packetID is process-global and atomic: concurrent simulations (the
// parallel sweep runner drives one event queue per goroutine) allocate from
// the same counter without racing. IDs are used only for identity — matching
// responses to requests and tracing — never for ordering or timing
// decisions, so the interleaving-dependent values cannot perturb simulated
// behaviour.
var packetID atomic.Uint64

// NewPacket allocates a packet with a fresh ID.
func NewPacket(cmd Cmd, addr uint64, size int) *Packet {
	return &Packet{ID: packetID.Add(1), Cmd: cmd, Addr: addr, Size: size}
}

// NewWritePacket allocates a write carrying data (the slice is not copied).
func NewWritePacket(addr uint64, data []byte) *Packet {
	p := NewPacket(WriteReq, addr, len(data))
	p.Data = data
	return p
}

// NewReadPacket allocates a read of size bytes.
func NewReadPacket(addr uint64, size int) *Packet {
	return NewPacket(ReadReq, addr, size)
}

// NewFunctionalRead builds a read that does NOT consume a global packet ID
// (ID 0). Functional accesses complete synchronously inside a single call
// and never enter checkpointed state; minting IDs for them would make the
// ID sequence depend on host-side memoisation (for example the core's
// decode cache, which a restored run rebuilds lazily) and break bit-exact
// checkpoint/restore equivalence.
func NewFunctionalRead(addr uint64, size int) *Packet {
	return &Packet{Cmd: ReadReq, Addr: addr, Size: size}
}

// NewFunctionalWrite builds a write that does NOT consume a global packet
// ID (ID 0); see NewFunctionalRead. The data slice is not copied.
func NewFunctionalWrite(addr uint64, data []byte) *Packet {
	return &Packet{Cmd: WriteReq, Addr: addr, Size: len(data), Data: data}
}

// PushSenderState saves routing state before forwarding a packet downstream;
// the matching PopSenderState retrieves it when the response comes back.
// This mirrors gem5's Packet::pushSenderState.
func (p *Packet) PushSenderState(s any) { p.senderState = append(p.senderState, s) }

// PopSenderState removes and returns the most recently pushed sender state.
// It panics if the stack is empty, which indicates a routing bug.
func (p *Packet) PopSenderState() any {
	n := len(p.senderState)
	if n == 0 {
		panic("port: PopSenderState on empty stack")
	}
	s := p.senderState[n-1]
	p.senderState[n-1] = nil
	p.senderState = p.senderState[:n-1]
	return s
}

// SenderStateDepth returns the current depth of the sender-state stack.
func (p *Packet) SenderStateDepth() int { return len(p.senderState) }

// MakeResponse converts a request packet into its response in place.
func (p *Packet) MakeResponse() {
	switch p.Cmd {
	case ReadReq, PrefetchReq:
		p.Cmd = ReadResp
	case WriteReq:
		p.Cmd = WriteResp
	default:
		panic("port: MakeResponse on non-request " + p.Cmd.String())
	}
}

// IsResponse reports whether the packet currently holds a response.
func (p *Packet) IsResponse() bool { return p.Cmd.IsResponse() }

// NeedsResponse reports whether this packet must be answered.
func (p *Packet) NeedsResponse() bool { return p.Cmd.NeedsResponse() }

// AllocateData ensures p.Data has Size bytes of zeroed-or-filled storage
// (for reads being filled). Pooled packets reuse their recycled capacity,
// zeroing it so contents are indistinguishable from a fresh allocation;
// non-pooled packets keep the historical make() behaviour because their Data
// may alias a caller's buffer that must not be scribbled on.
func (p *Packet) AllocateData() {
	if len(p.Data) == p.Size {
		return
	}
	if p.pool != nil && cap(p.Data) >= p.Size {
		p.Data = p.Data[:p.Size]
		for i := range p.Data {
			p.Data[i] = 0
		}
		return
	}
	p.Data = make([]byte, p.Size)
}

// BlockAddr returns the address rounded down to a blkSize boundary.
func BlockAddr(addr uint64, blkSize int) uint64 {
	return addr &^ (uint64(blkSize) - 1)
}
