package port

import (
	"strings"
	"testing"
)

// testRequestor is a scriptable requestor endpoint.
type testRequestor struct {
	acceptResp bool
	resps      []*Packet
	retries    int
}

func (r *testRequestor) RecvTimingResp(pkt *Packet) bool {
	if !r.acceptResp {
		return false
	}
	r.resps = append(r.resps, pkt)
	return true
}

func (r *testRequestor) RecvReqRetry() { r.retries++ }

// testResponder is a scriptable responder endpoint.
type testResponder struct {
	accept      bool
	reqs        []*Packet
	respRetries int
}

func (r *testResponder) RecvTimingReq(pkt *Packet) bool {
	if !r.accept {
		return false
	}
	r.reqs = append(r.reqs, pkt)
	return true
}

func (r *testResponder) RecvRespRetry() { r.respRetries++ }

func checkedLink(reqOwner Requestor, respOwner Responder) (*RequestPort, *ResponsePort, *Checker) {
	req := NewRequestPort("test.req", reqOwner)
	resp := NewResponsePort("test.resp", respOwner)
	c := BindChecked(req, resp)
	return req, resp, c
}

// pinNoRestore clears the process-global restore marks for tests asserting
// no-waiter violations, which a prior restore (e.g. the ckpt tests' packet-ID
// fast-forward) would legitimately relax.
func pinNoRestore(t *testing.T) {
	t.Helper()
	snapshotRestoreMarks(t)
	restoreMu.Lock()
	restoreMarks = map[uint64]uint64{}
	restoreMu.Unlock()
	everRestored.Store(false)
}

// snapshotRestoreMarks restores the process-global restore-mark state when
// the test finishes.
func snapshotRestoreMarks(t *testing.T) {
	t.Helper()
	restoreMu.Lock()
	old := make(map[uint64]uint64, len(restoreMarks))
	for k, v := range restoreMarks {
		old[k] = v
	}
	restoreMu.Unlock()
	oldEver := everRestored.Load()
	t.Cleanup(func() {
		restoreMu.Lock()
		restoreMarks = old
		restoreMu.Unlock()
		everRestored.Store(oldEver)
	})
}

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		p := recover()
		if p == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := p.(string)
		if !ok {
			t.Fatalf("panic value %v is %T, want string", p, p)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
		if !strings.Contains(msg, "handshake history") {
			t.Fatalf("panic %q carries no handshake history", msg)
		}
	}()
	fn()
}

func TestCheckedCleanRequestResponse(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: true}
	req, resp, c := checkedLink(rq, rs)

	pkt := NewReadPacket(0x1000, 64)
	if !req.SendTimingReq(pkt) {
		t.Fatal("request refused")
	}
	if c.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", c.Outstanding())
	}
	pkt.MakeResponse()
	if !resp.SendTimingResp(pkt) {
		t.Fatal("response refused")
	}
	if err := c.CheckQuiescent(); err != nil {
		t.Fatalf("quiescent link reports: %v", err)
	}
	if len(rq.resps) != 1 || len(rs.reqs) != 1 {
		t.Fatal("packets did not reach the endpoints")
	}
}

func TestCheckedQuiescentReportsUnanswered(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: true}
	req, _, c := checkedLink(rq, rs)
	req.SendTimingReq(NewReadPacket(0x40, 64))
	err := c.CheckQuiescent()
	if err == nil || !strings.Contains(err.Error(), "unanswered") {
		t.Fatalf("err = %v, want unanswered-request error", err)
	}
}

// Resending the same refused packet before RecvReqRetry is the core request
// protocol violation.
func TestCheckedResendBeforeRetryPanics(t *testing.T) {
	rq := &testRequestor{}
	rs := &testResponder{accept: false}
	req, _, _ := checkedLink(rq, rs)
	pkt := NewReadPacket(0x80, 64)
	if req.SendTimingReq(pkt) {
		t.Fatal("refusing responder accepted")
	}
	mustPanic(t, "resent before RecvReqRetry", func() {
		req.SendTimingReq(pkt)
	})
}

// Two different packets may both be refused before the retry (ReqQueue keeps
// trying later ready packets: no head-of-line blocking), and one retry wakes
// them all — a full legal double-refusal round trip.
func TestCheckedDoubleRefusalThenRetry(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: false}
	req, resp, c := checkedLink(rq, rs)

	a, b := NewReadPacket(0x100, 64), NewReadPacket(0x140, 64)
	if req.SendTimingReq(a) || req.SendTimingReq(b) {
		t.Fatal("refusing responder accepted")
	}
	rs.accept = true
	resp.SendRetryReq()
	if rq.retries != 1 {
		t.Fatalf("retries = %d, want 1", rq.retries)
	}
	if !req.SendTimingReq(a) || !req.SendTimingReq(b) {
		t.Fatal("resend after retry refused")
	}
	for _, pkt := range []*Packet{a, b} {
		pkt.MakeResponse()
		if !resp.SendTimingResp(pkt) {
			t.Fatal("response refused")
		}
	}
	if err := c.CheckQuiescent(); err != nil {
		t.Fatalf("after full round trip: %v", err)
	}
}

// A retry fired with nobody waiting is a responder bug: the port-level gate
// (needReqRetry) normally prevents it, so the test drives the owner directly,
// modelling a responder that bypasses its own bookkeeping.
func TestCheckedRetryWithNoWaiterPanics(t *testing.T) {
	pinNoRestore(t)
	rq := &testRequestor{}
	rs := &testResponder{accept: true}
	req, _, _ := checkedLink(rq, rs)
	mustPanic(t, "RecvReqRetry with no refused request waiting", func() {
		req.owner.RecvReqRetry()
	})
}

func TestCheckedRespRetryWithNoWaiterPanics(t *testing.T) {
	pinNoRestore(t)
	rq := &testRequestor{}
	rs := &testResponder{accept: true}
	_, resp, _ := checkedLink(rq, rs)
	mustPanic(t, "RecvRespRetry with no refused response waiting", func() {
		resp.owner.RecvRespRetry()
	})
}

// A refused response followed by SendRetryResp and a resend is the legal
// response-side slow path.
func TestCheckedResponseRefusedThenRetried(t *testing.T) {
	rq := &testRequestor{acceptResp: false}
	rs := &testResponder{accept: true}
	req, resp, c := checkedLink(rq, rs)

	pkt := NewReadPacket(0x200, 64)
	if !req.SendTimingReq(pkt) {
		t.Fatal("request refused")
	}
	pkt.MakeResponse()
	if resp.SendTimingResp(pkt) {
		t.Fatal("refusing requestor accepted")
	}
	rq.acceptResp = true
	req.SendRetryResp()
	if rs.respRetries != 1 {
		t.Fatalf("respRetries = %d, want 1", rs.respRetries)
	}
	if !resp.SendTimingResp(pkt) {
		t.Fatal("resend after retry refused")
	}
	if err := c.CheckQuiescent(); err != nil {
		t.Fatalf("after retried response: %v", err)
	}
}

// Responses are strictly ordered (RespQueue head-of-line blocks): delivering
// any response while one is refused violates the contract.
func TestCheckedResponseWhileBlockedPanics(t *testing.T) {
	rq := &testRequestor{acceptResp: false}
	rs := &testResponder{accept: true}
	req, resp, _ := checkedLink(rq, rs)

	a, b := NewReadPacket(0x240, 64), NewReadPacket(0x280, 64)
	req.SendTimingReq(a)
	req.SendTimingReq(b)
	a.MakeResponse()
	if resp.SendTimingResp(a) {
		t.Fatal("refusing requestor accepted")
	}
	b.MakeResponse()
	mustPanic(t, "delivered before RecvRespRetry", func() {
		resp.SendTimingResp(b)
	})
}

func TestCheckedUnknownResponsePanics(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: true}
	_, resp, _ := checkedLink(rq, rs)
	ghost := NewReadPacket(0x300, 64)
	ghost.MakeResponse()
	mustPanic(t, "matches no outstanding request", func() {
		resp.SendTimingResp(ghost)
	})
}

func TestCheckedDuplicateRequestIDPanics(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: true}
	req, _, _ := checkedLink(rq, rs)
	pkt := NewReadPacket(0x340, 64)
	if !req.SendTimingReq(pkt) {
		t.Fatal("request refused")
	}
	mustPanic(t, "duplicate in-flight request", func() {
		req.SendTimingReq(pkt)
	})
}

// After a checkpoint restore, traffic belonging to pre-checkpoint packets is
// adopted: the fresh checker never saw the request (or the refusal behind a
// restored retry flag), so rejecting it would be a false positive. New
// packets mint IDs above the mark and stay fully checked.
func TestCheckedRestoreAdoptsPreCheckpointTraffic(t *testing.T) {
	rq := &testRequestor{acceptResp: true}
	rs := &testResponder{accept: true}
	req, resp, c := checkedLink(rq, rs)

	// A packet "from the checkpointed process": minted before the restore's
	// fast-forward, so its ID sits at the mark.
	old := NewReadPacket(0x400, 64)
	snapshotRestoreMarks(t)
	FastForwardPacketID(old.ID)

	old.MakeResponse()
	if !resp.SendTimingResp(old) {
		t.Fatal("adopted response refused")
	}
	if len(rq.resps) != 1 {
		t.Fatal("adopted response not delivered")
	}
	// Restored retry flags fire with no recorded waiter: tolerated.
	req.owner.RecvReqRetry()
	resp.owner.RecvRespRetry()
	if rq.retries != 1 || rs.respRetries != 1 {
		t.Fatal("adopted retries not delivered")
	}
	// Post-restore packets are fully checked: an unknown response with a
	// fresh ID still violates.
	ghost := NewReadPacket(0x440, 64)
	ghost.MakeResponse()
	mustPanic(t, "matches no outstanding request", func() {
		resp.SendTimingResp(ghost)
	})
	if err := c.CheckQuiescent(); err != nil {
		t.Fatalf("adopted traffic left bookkeeping dirty: %v", err)
	}
}

// Bind attaches a checker when the package Checking flag is set, and exactly
// one checker even when BindChecked is used with the flag on.
func TestCheckingFlagAttachesChecker(t *testing.T) {
	old := Checking
	defer func() { Checking = old }()

	Checking = true
	req := NewRequestPort("flag.req", &testRequestor{})
	resp := NewResponsePort("flag.resp", &testResponder{accept: true})
	Bind(req, resp)
	if _, ok := req.owner.(*checkedRequestor); !ok {
		t.Fatal("Checking=true Bind did not attach a checker")
	}

	req2 := NewRequestPort("flag2.req", &testRequestor{})
	resp2 := NewResponsePort("flag2.resp", &testResponder{accept: true})
	BindChecked(req2, resp2)
	cr, ok := req2.owner.(*checkedRequestor)
	if !ok {
		t.Fatal("BindChecked did not attach a checker")
	}
	if _, double := cr.inner.(*checkedRequestor); double {
		t.Fatal("BindChecked under Checking=true attached two checkers")
	}

	Checking = false
	req3 := NewRequestPort("flag3.req", &testRequestor{})
	resp3 := NewResponsePort("flag3.resp", &testResponder{accept: true})
	Bind(req3, resp3)
	if _, ok := req3.owner.(*checkedRequestor); ok {
		t.Fatal("Checking=false Bind attached a checker")
	}
}
