package axi

import "testing"

func TestReadReqTotalBytes(t *testing.T) {
	// AXI encodes Len as beats-1.
	r := ReadReq{Len: 3, Size: 64}
	if r.TotalBytes() != 256 {
		t.Fatalf("TotalBytes = %d", r.TotalBytes())
	}
	single := ReadReq{Len: 0, Size: 64}
	if single.TotalBytes() != 64 {
		t.Fatalf("single-beat TotalBytes = %d", single.TotalBytes())
	}
}

func TestRespCodes(t *testing.T) {
	if RespOK != 0 {
		t.Fatal("RespOK must be the zero value (default-OK responses)")
	}
	if RespOK == RespSlvErr || RespSlvErr == RespDecErr {
		t.Fatal("response codes not distinct")
	}
}

func TestLiteStructsZeroValue(t *testing.T) {
	// Zero-value channel beats must be usable (idle bus).
	var w LiteWrite
	var r LiteReadResp
	if w.Strb != 0 || r.Resp != RespOK {
		t.Fatal("zero values wrong")
	}
}
