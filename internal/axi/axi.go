// Package axi defines the AMBA AXI-style channel structures the gem5rtl
// wrappers use to talk to RTL models: the PMU is programmed over an
// AXI-Lite-style port (Figure 3 of the paper) and the NVDLA's DBBIF/SRAMIF
// are AXI4-style burst interfaces (Figure 4). Only the architectural payload
// of each channel is modelled — valid/ready handshakes collapse into the
// per-tick exchange of these structs, exactly as the paper's wrapper does.
package axi

// BurstType selects the AXI address-increment mode.
type BurstType int

// Burst types (WRAP is not used by the modelled devices).
const (
	BurstFixed BurstType = iota
	BurstIncr
)

// Resp is an AXI response code.
type Resp int

// Response codes.
const (
	RespOK Resp = iota
	RespSlvErr
	RespDecErr
)

// LiteWrite is one AXI-Lite write: address + 32-bit data + strobe.
type LiteWrite struct {
	Addr uint32
	Data uint32
	Strb uint8 // byte-lane strobe, 0xF = all lanes
}

// LiteRead is one AXI-Lite read request.
type LiteRead struct {
	Addr uint32
}

// LiteReadResp carries read data back.
type LiteReadResp struct {
	Data uint32
	Resp Resp
}

// LiteWriteResp acknowledges a write.
type LiteWriteResp struct {
	Resp Resp
}

// ReadReq is an AXI4 read-address-channel beat (AR).
type ReadReq struct {
	ID    uint64
	Addr  uint64
	Len   int // beats - 1, per AXI encoding
	Size  int // bytes per beat
	Burst BurstType
}

// TotalBytes returns the byte length of the whole burst.
func (r ReadReq) TotalBytes() int { return (r.Len + 1) * r.Size }

// ReadData is an AXI4 read-data-channel beat (R).
type ReadData struct {
	ID   uint64
	Data []byte
	Last bool
	Resp Resp
}

// WriteReq is an AXI4 write-address beat (AW) with its data beats folded in
// (W), as the wrappers exchange whole transactions per tick.
type WriteReq struct {
	ID    uint64
	Addr  uint64
	Size  int
	Burst BurstType
	Data  []byte
}

// WriteResp is an AXI4 write-response beat (B).
type WriteResp struct {
	ID   uint64
	Resp Resp
}
