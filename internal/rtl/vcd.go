package rtl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// VCDWriter emits IEEE 1364 value-change-dump waveforms for a Model, the
// debugging feature the paper highlights (and whose cost dominates Table 2's
// gem5+PMU+waveform rows). Tracing can be enabled and disabled dynamically
// during simulation, mirroring Verilator's runtime trace control.
type VCDWriter struct {
	w        *bufio.Writer
	enabled  bool
	ids      []string // signal index -> VCD identifier
	last     []uint64
	period   uint64 // timestamp units per cycle
	headerOK bool
	changes  uint64
}

// AttachVCD connects a VCD writer to the model. period is the number of VCD
// time units (1 ns each) per clock cycle. Tracing starts enabled.
func (m *Model) AttachVCD(w io.Writer, period uint64) *VCDWriter {
	if period == 0 {
		period = 1
	}
	v := &VCDWriter{
		w:       bufio.NewWriter(w),
		enabled: true,
		ids:     make([]string, len(m.c.Signals)),
		last:    make([]uint64, len(m.c.Signals)),
		period:  period,
	}
	for i := range m.c.Signals {
		v.ids[i] = vcdID(i)
	}
	m.vcd = v
	v.writeHeader(m)
	return v
}

// SetEnabled toggles waveform dumping at runtime.
func (v *VCDWriter) SetEnabled(on bool) { v.enabled = on }

// Enabled reports whether dumping is active.
func (v *VCDWriter) Enabled() bool { return v.enabled }

// Changes returns the number of value changes written (for tests/stats).
func (v *VCDWriter) Changes() uint64 { return v.changes }

// Flush flushes buffered output; call at end of simulation.
func (v *VCDWriter) Flush() error { return v.w.Flush() }

// Resync realigns the writer with the model after an out-of-band state change
// (checkpoint restore). The writer's change-detection snapshot would otherwise
// still describe the pre-restore values, so the first post-restore dump would
// emit a wrong delta. Resync dumps every signal's current value at the
// restored cycle's timestamp and refreshes the snapshot. Note the waveform
// FILE is not part of a checkpoint: a restored run's trace begins at the
// restore point rather than replaying history.
func (v *VCDWriter) Resync(m *Model) {
	fmt.Fprintf(v.w, "#%d\n", m.cycle*v.period)
	for i := range m.c.Signals {
		v.writeValue(m.c.Signals[i].Width, m.vals[i], v.ids[i])
		v.last[i] = m.vals[i]
	}
}

// vcdID generates the printable short identifiers VCD uses ("!", "\"", ...).
func vcdID(i int) string {
	const base = 94 // printable ASCII 33..126
	s := ""
	for {
		s += string(rune(33 + i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	return s
}

func (v *VCDWriter) writeHeader(m *Model) {
	fmt.Fprintf(v.w, "$date gem5rtl $end\n$version gem5rtl rtl engine $end\n$timescale 1ns $end\n")
	fmt.Fprintf(v.w, "$scope module %s $end\n", m.c.Name)
	for i, s := range m.c.Signals {
		kind := "wire"
		if s.Kind == SigReg {
			kind = "reg"
		}
		if s.Width == 1 {
			fmt.Fprintf(v.w, "$var %s 1 %s %s $end\n", kind, v.ids[i], s.Name)
		} else {
			fmt.Fprintf(v.w, "$var %s %d %s %s [%d:0] $end\n", kind, s.Width, v.ids[i], s.Name, s.Width-1)
		}
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n$dumpvars\n")
	for i := range m.c.Signals {
		v.writeValue(m.c.Signals[i].Width, m.vals[i], v.ids[i])
		v.last[i] = m.vals[i]
	}
	fmt.Fprintf(v.w, "$end\n#0\n")
	v.headerOK = true
}

func (v *VCDWriter) writeValue(width int, val uint64, id string) {
	if width == 1 {
		v.w.WriteString(strconv.FormatUint(val&1, 10))
		v.w.WriteString(id)
		v.w.WriteByte('\n')
		return
	}
	v.w.WriteByte('b')
	v.w.WriteString(strconv.FormatUint(val, 2))
	v.w.WriteByte(' ')
	v.w.WriteString(id)
	v.w.WriteByte('\n')
	v.changes++
}

// dump writes changed signals at the current cycle's timestamp.
func (v *VCDWriter) dump(m *Model) {
	wroteTime := false
	for i := range m.c.Signals {
		if m.vals[i] == v.last[i] {
			continue
		}
		if !wroteTime {
			fmt.Fprintf(v.w, "#%d\n", m.cycle*v.period)
			wroteTime = true
		}
		v.writeValue(m.c.Signals[i].Width, m.vals[i], v.ids[i])
		v.last[i] = m.vals[i]
		v.changes++
	}
}
