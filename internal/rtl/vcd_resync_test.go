package rtl

import (
	"bytes"
	"strings"
	"testing"
)

// TestVCDResyncAfterRestore checks that restoring a checkpoint into a model
// with an attached VCD writer realigns the writer: the post-restore waveform
// must contain the same change records as the uninterrupted run's.
func TestVCDResyncAfterRestore(t *testing.T) {
	a := buildCounter(t)
	var aOut bytes.Buffer
	av := a.AttachVCD(&aOut, 1)
	a.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		a.Tick()
	}
	var snap bytes.Buffer
	if err := a.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	if err := av.Flush(); err != nil {
		t.Fatal(err)
	}
	aMark := aOut.Len()

	b := buildCounter(t)
	var bOut bytes.Buffer
	bv := b.AttachVCD(&bOut, 1)
	if err := b.RestoreCheckpoint(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := bv.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bOut.String(), "#5\n") {
		t.Fatal("restore did not emit a resync dump at the restored cycle")
	}
	bMark := bOut.Len()

	// Continue both runs; the per-cycle deltas must be identical text.
	b.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		a.Tick()
		b.Tick()
	}
	if err := av.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bv.Flush(); err != nil {
		t.Fatal(err)
	}
	aTail := aOut.String()[aMark:]
	bTail := bOut.String()[bMark:]
	if aTail != bTail {
		t.Errorf("post-restore waveform diverges:\n got %q\nwant %q", bTail, aTail)
	}
}
