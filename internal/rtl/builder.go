package rtl

import "fmt"

// Builder constructs Circuits programmatically. The HDL frontends drive it
// during elaboration; tests and hand-written models use it directly.
type Builder struct {
	c      *Circuit
	byName map[string]SigID
	err    error
}

// NewBuilder returns a builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Circuit{Name: name}, byName: map[string]SigID{}}
}

func (b *Builder) addSignal(name string, w int, kind SigKind, init uint64) SigID {
	if _, dup := b.byName[name]; dup {
		b.fail("duplicate signal %q", name)
	}
	id := SigID(len(b.c.Signals))
	b.c.Signals = append(b.c.Signals, Signal{Name: name, Width: w, Kind: kind, Init: init})
	b.byName[name] = id
	return id
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("rtl builder: "+format, args...)
	}
}

// Input declares an externally driven signal.
func (b *Builder) Input(name string, w int) SigID { return b.addSignal(name, w, SigInput, 0) }

// Output declares an exported wire; drive it with Assign.
func (b *Builder) Output(name string, w int) SigID { return b.addSignal(name, w, SigOutput, 0) }

// Wire declares an internal combinational signal.
func (b *Builder) Wire(name string, w int) SigID { return b.addSignal(name, w, SigWire, 0) }

// Reg declares a flip-flop with a reset/initial value.
func (b *Builder) Reg(name string, w int, init uint64) SigID {
	return b.addSignal(name, w, SigReg, init)
}

// Mem declares a memory array.
func (b *Builder) Mem(name string, width, depth int) MemID {
	id := MemID(len(b.c.Mems))
	b.c.Mems = append(b.c.Mems, Mem{Name: name, Width: width, Depth: depth})
	return id
}

// MemInit sets initial contents for a memory.
func (b *Builder) MemInit(id MemID, words []uint64) {
	b.c.Mems[id].Init = append([]uint64(nil), words...)
}

// Assign adds a combinational assignment dst = src.
func (b *Builder) Assign(dst SigID, src Expr) {
	if got, want := src.Width(), b.c.Signals[dst].Width; got != want {
		b.fail("assign to %q: width %d != %d", b.c.Signals[dst].Name, got, want)
	}
	b.c.Combs = append(b.c.Combs, Assign{Dst: dst, Src: src})
}

// Seq adds a clocked assignment dst <= next.
func (b *Builder) Seq(dst SigID, next Expr) {
	if got, want := next.Width(), b.c.Signals[dst].Width; got != want {
		b.fail("seq to %q: width %d != %d", b.c.Signals[dst].Name, got, want)
	}
	b.c.Seqs = append(b.c.Seqs, SeqAssign{Dst: dst, Next: next})
}

// MemWr adds a clocked memory write.
func (b *Builder) MemWr(mem MemID, addr, data, en Expr) {
	if data.Width() != b.c.Mems[mem].Width {
		b.fail("memwrite to %q: data width %d != %d", b.c.Mems[mem].Name, data.Width(), b.c.Mems[mem].Width)
	}
	b.c.MemWrites = append(b.c.MemWrites, MemWrite{Mem: mem, Addr: addr, Data: data, En: en})
}

// Ref returns an expression reading a declared signal.
func (b *Builder) Ref(id SigID) Expr { return &Ref{Sig: id, W: b.c.Signals[id].Width} }

// Sig returns the ID of a previously declared signal by name.
func (b *Builder) Sig(name string) (SigID, bool) {
	id, ok := b.byName[name]
	return id, ok
}

// Build validates and returns the circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	return b.c, nil
}

// Expression constructors. Width rules follow synthesis conventions:
// arithmetic/bitwise results take max(operand widths); comparisons and
// logical ops are 1 bit; shifts take the left operand's width.

// C builds a constant of the given width.
func C(val uint64, w int) Expr { return &Const{Val: val & Mask(w), W: w} }

func maxw(x, y Expr) int {
	if x.Width() > y.Width() {
		return x.Width()
	}
	return y.Width()
}

func bin(op Op, x, y Expr, w int) Expr { return &Binary{Op: op, X: x, Y: y, W: w} }

// Add builds x + y.
func Add(x, y Expr) Expr { return bin(OpAdd, x, y, maxw(x, y)) }

// Sub builds x - y.
func Sub(x, y Expr) Expr { return bin(OpSub, x, y, maxw(x, y)) }

// MulE builds x * y.
func MulE(x, y Expr) Expr { return bin(OpMul, x, y, maxw(x, y)) }

// DivE builds x / y (unsigned).
func DivE(x, y Expr) Expr { return bin(OpDiv, x, y, maxw(x, y)) }

// ModE builds x % y (unsigned).
func ModE(x, y Expr) Expr { return bin(OpMod, x, y, maxw(x, y)) }

// AndE builds x & y.
func AndE(x, y Expr) Expr { return bin(OpAnd, x, y, maxw(x, y)) }

// OrE builds x | y.
func OrE(x, y Expr) Expr { return bin(OpOr, x, y, maxw(x, y)) }

// XorE builds x ^ y.
func XorE(x, y Expr) Expr { return bin(OpXor, x, y, maxw(x, y)) }

// Shl builds x << y.
func Shl(x, y Expr) Expr { return bin(OpShl, x, y, x.Width()) }

// Shr builds x >> y (logical).
func Shr(x, y Expr) Expr { return bin(OpShr, x, y, x.Width()) }

// Sra builds x >>> y (arithmetic).
func Sra(x, y Expr) Expr { return bin(OpSra, x, y, x.Width()) }

// Eq builds x == y (1 bit).
func Eq(x, y Expr) Expr { return bin(OpEq, x, y, 1) }

// Ne builds x != y (1 bit).
func Ne(x, y Expr) Expr { return bin(OpNe, x, y, 1) }

// Lt builds unsigned x < y (1 bit).
func Lt(x, y Expr) Expr { return bin(OpLt, x, y, 1) }

// Le builds unsigned x <= y (1 bit).
func Le(x, y Expr) Expr { return bin(OpLe, x, y, 1) }

// Gt builds unsigned x > y (1 bit).
func Gt(x, y Expr) Expr { return bin(OpGt, x, y, 1) }

// Ge builds unsigned x >= y (1 bit).
func Ge(x, y Expr) Expr { return bin(OpGe, x, y, 1) }

// SLt builds signed x < y (1 bit).
func SLt(x, y Expr) Expr { return bin(OpSLt, x, y, 1) }

// LAnd builds x && y (1 bit).
func LAnd(x, y Expr) Expr { return bin(OpLAnd, x, y, 1) }

// LOr builds x || y (1 bit).
func LOr(x, y Expr) Expr { return bin(OpLOr, x, y, 1) }

// Not builds bitwise ~x.
func Not(x Expr) Expr { return &Unary{Op: UnNot, X: x, W: x.Width()} }

// Neg builds two's-complement -x.
func Neg(x Expr) Expr { return &Unary{Op: UnNeg, X: x, W: x.Width()} }

// LNot builds logical !x (1 bit).
func LNot(x Expr) Expr { return &Unary{Op: UnLNot, X: x, W: 1} }

// RedOr builds reduction |x (1 bit).
func RedOr(x Expr) Expr { return &Unary{Op: UnRedOr, X: x, W: 1} }

// RedAnd builds reduction &x (1 bit).
func RedAnd(x Expr) Expr { return &Unary{Op: UnRedAnd, X: x, W: 1} }

// RedXor builds reduction ^x (1 bit).
func RedXor(x Expr) Expr { return &Unary{Op: UnRedXor, X: x, W: 1} }

// MuxE builds cond ? t : f. t and f must have equal widths.
func MuxE(cond, t, f Expr) Expr {
	w := t.Width()
	if f.Width() > w {
		w = f.Width()
	}
	return &Mux{Cond: cond, T: t, F: f, W: w}
}

// SliceE builds x[hi:lo].
func SliceE(x Expr, hi, lo int) Expr { return &Slice{X: x, Hi: hi, Lo: lo} }

// Bit builds the single-bit select x[i] with a constant index.
func Bit(x Expr, i int) Expr { return &Slice{X: x, Hi: i, Lo: i} }

// IndexE builds the dynamic single-bit select x[bit].
func IndexE(x, bitExpr Expr) Expr { return &Index{X: x, Bit: bitExpr} }

// Cat concatenates parts with Parts[0] as the most significant.
func Cat(parts ...Expr) Expr {
	w := 0
	for _, p := range parts {
		w += p.Width()
	}
	return &Concat{Parts: parts, W: w}
}

// ZExt zero-extends x to width w (no-op if already wide enough).
func ZExt(x Expr, w int) Expr {
	if x.Width() >= w {
		return x
	}
	return Cat(C(0, w-x.Width()), x)
}

// Trunc truncates x to its low w bits (no-op if already narrow enough).
func Trunc(x Expr, w int) Expr {
	if x.Width() <= w {
		return x
	}
	return SliceE(x, w-1, 0)
}

// Resize zero-extends or truncates x to exactly width w.
func Resize(x Expr, w int) Expr {
	if x.Width() == w {
		return x
	}
	if x.Width() < w {
		return ZExt(x, w)
	}
	return Trunc(x, w)
}

// MemRd builds a combinational memory read expression. The caller supplies
// the memory's word width (builders know it; frontends track it).
func MemRd(mem MemID, addr Expr, width int) Expr {
	return &MemRead{Mem: mem, Addr: addr, W: width}
}
