// Package rtl implements gem5rtl's register-transfer-level model engine: the
// role Verilator and GHDL play in the paper. HDL frontends (internal/verilog,
// internal/vhdl) elaborate source text into this package's intermediate
// representation (a Circuit of signals, combinational assignments, registers
// and memories); the engine then levelises the combinational logic and
// evaluates the model cycle by cycle, exactly like a Verilated C++ model's
// eval loop. The engine also provides the usability features the paper calls
// out: VCD waveform tracing that can be enabled/disabled at runtime, and
// checkpoint save/restore.
//
// Values are limited to 64 bits per signal; wider datapaths are expressed as
// multiple signals or memories (the same restriction early Verilator versions
// imposed per output word).
package rtl

import "fmt"

// SigID identifies a signal within a Circuit.
type SigID int

// MemID identifies a memory array within a Circuit.
type MemID int

// SigKind classifies a signal's driver.
type SigKind int

// Signal kinds.
const (
	SigWire   SigKind = iota // driven by a combinational assignment
	SigInput                 // driven from outside the circuit
	SigOutput                // a wire exported as a port
	SigReg                   // driven by a sequential assignment (flip-flop)
)

func (k SigKind) String() string {
	switch k {
	case SigWire:
		return "wire"
	case SigInput:
		return "input"
	case SigOutput:
		return "output"
	case SigReg:
		return "reg"
	}
	return "?"
}

// Signal describes one named net of 1..64 bits.
type Signal struct {
	Name  string
	Width int
	Kind  SigKind
	Init  uint64 // reset/initial value (registers only)
}

// Mem describes a memory array (e.g. reg [31:0] m [0:1023]).
type Mem struct {
	Name  string
	Width int
	Depth int
	Init  []uint64 // optional initial contents (len <= Depth)
}

// Op enumerates binary operators.
type Op int

// Binary operators. Comparison and logical operators produce 1-bit results;
// arithmetic/bitwise operators produce results at the node's width.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // division by zero yields all-ones, matching Verilog's x -> engine convention
	OpMod // modulo by zero yields the dividend
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSra // arithmetic (sign of X's width)
	OpEq
	OpNe
	OpLt // unsigned
	OpLe
	OpGt
	OpGe
	OpSLt // signed
	OpSLe
	OpSGt
	OpSGe
	OpLAnd
	OpLOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>", OpSra: ">>>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpSLt: "s<", OpSLe: "s<=", OpSGt: "s>", OpSGe: "s>=", OpLAnd: "&&", OpLOr: "||",
}

func (o Op) String() string { return opNames[o] }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	UnNot    UnOp = iota // bitwise complement
	UnNeg                // two's complement negate
	UnLNot               // logical not (1-bit)
	UnRedAnd             // reduction AND (1-bit)
	UnRedOr              // reduction OR (1-bit)
	UnRedXor             // reduction XOR (1-bit)
)

// Expr is a combinational expression tree node. Every node has a fixed
// result width; evaluation zero-extends operands to 64 bits, computes, and
// masks the result to the node width.
type Expr interface {
	// Width returns the bit width of the expression's result.
	Width() int
}

// Const is a literal value.
type Const struct {
	Val uint64
	W   int
}

// Width returns the literal's width.
func (c *Const) Width() int { return c.W }

// Ref reads a signal's current value.
type Ref struct {
	Sig SigID
	W   int
}

// Width returns the referenced signal's width.
func (r *Ref) Width() int { return r.W }

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
	W  int
}

// Width returns the result width.
func (u *Unary) Width() int { return u.W }

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	X, Y Expr
	W    int
}

// Width returns the result width.
func (b *Binary) Width() int { return b.W }

// Mux selects T when Cond is non-zero, else F.
type Mux struct {
	Cond, T, F Expr
	W          int
}

// Width returns the result width.
func (m *Mux) Width() int { return m.W }

// Slice extracts bits [Hi:Lo] (inclusive, Verilog order) of X.
type Slice struct {
	X      Expr
	Lo, Hi int
}

// Width returns Hi-Lo+1.
func (s *Slice) Width() int { return s.Hi - s.Lo + 1 }

// Index extracts the single bit X[Bit] with a dynamic index; out-of-range
// indices read as zero.
type Index struct {
	X, Bit Expr
}

// Width returns 1.
func (i *Index) Width() int { return 1 }

// Concat concatenates parts; Parts[0] holds the most significant bits,
// matching Verilog's {a, b} ordering.
type Concat struct {
	Parts []Expr
	W     int
}

// Width returns the total width.
func (c *Concat) Width() int { return c.W }

// MemRead reads word Addr of a memory combinationally (asynchronous read
// port). Out-of-range addresses read as zero.
type MemRead struct {
	Mem  MemID
	Addr Expr
	W    int
}

// Width returns the memory word width.
func (m *MemRead) Width() int { return m.W }

// Assign is a combinational assignment Dst = Src evaluated every delta.
type Assign struct {
	Dst SigID
	Src Expr
}

// SeqAssign is a non-blocking register update Dst <= Next applied at every
// clock tick (posedge of the circuit's single implicit clock).
type SeqAssign struct {
	Dst  SigID
	Next Expr
}

// MemWrite is a clocked memory write: if En evaluates non-zero at a tick,
// Mem[Addr] <= Data.
type MemWrite struct {
	Mem            MemID
	Addr, Data, En Expr
}

// Circuit is a flattened, single-clock RTL design ready for simulation.
type Circuit struct {
	Name      string
	Signals   []Signal
	Mems      []Mem
	Combs     []Assign
	Seqs      []SeqAssign
	MemWrites []MemWrite
}

// SignalByName returns the ID of the named signal, or -1.
func (c *Circuit) SignalByName(name string) SigID {
	for i := range c.Signals {
		if c.Signals[i].Name == name {
			return SigID(i)
		}
	}
	return -1
}

// MemByName returns the ID of the named memory, or -1.
func (c *Circuit) MemByName(name string) MemID {
	for i := range c.Mems {
		if c.Mems[i].Name == name {
			return MemID(i)
		}
	}
	return -1
}

// Mask returns the bit mask for a width (1..64).
func Mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// SignExtend interprets v (of width w) as signed and extends it to 64 bits.
func SignExtend(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	shift := uint(64 - w)
	return int64(v<<shift) >> shift
}

// Validate checks structural well-formedness: widths in range, single
// drivers, kinds consistent with drivers, and expression references in range.
func (c *Circuit) Validate() error {
	for i, s := range c.Signals {
		if s.Width < 1 || s.Width > 64 {
			return fmt.Errorf("rtl: signal %q width %d out of range [1,64]", s.Name, s.Width)
		}
		_ = i
	}
	for _, m := range c.Mems {
		if m.Width < 1 || m.Width > 64 || m.Depth < 1 {
			return fmt.Errorf("rtl: mem %q has bad shape %dx%d", m.Name, m.Depth, m.Width)
		}
		if len(m.Init) > m.Depth {
			return fmt.Errorf("rtl: mem %q init longer than depth", m.Name)
		}
	}
	drivers := make([]int, len(c.Signals))
	for _, a := range c.Combs {
		if int(a.Dst) >= len(c.Signals) {
			return fmt.Errorf("rtl: comb assign to out-of-range signal %d", a.Dst)
		}
		drivers[a.Dst]++
		// Wires and outputs may be combinationally driven; an output may
		// alternatively be a register (Verilog "output reg"), in which case
		// it is seq-driven instead.
		if k := c.Signals[a.Dst].Kind; k == SigInput || k == SigReg {
			return fmt.Errorf("rtl: comb assign to %s %q", k, c.Signals[a.Dst].Name)
		}
		if err := c.checkExpr(a.Src); err != nil {
			return err
		}
	}
	for _, a := range c.Seqs {
		if int(a.Dst) >= len(c.Signals) {
			return fmt.Errorf("rtl: seq assign to out-of-range signal %d", a.Dst)
		}
		drivers[a.Dst]++
		if k := c.Signals[a.Dst].Kind; k != SigReg && k != SigOutput {
			return fmt.Errorf("rtl: seq assign to non-reg %q (%s)", c.Signals[a.Dst].Name, k)
		}
		if err := c.checkExpr(a.Next); err != nil {
			return err
		}
	}
	for i, d := range drivers {
		if d > 1 {
			return fmt.Errorf("rtl: signal %q has %d drivers", c.Signals[i].Name, d)
		}
	}
	for _, w := range c.MemWrites {
		if int(w.Mem) >= len(c.Mems) {
			return fmt.Errorf("rtl: mem write to out-of-range mem %d", w.Mem)
		}
		for _, e := range []Expr{w.Addr, w.Data, w.En} {
			if err := c.checkExpr(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Circuit) checkExpr(e Expr) error {
	switch v := e.(type) {
	case *Const:
		if v.W < 1 || v.W > 64 {
			return fmt.Errorf("rtl: const width %d out of range", v.W)
		}
	case *Ref:
		if int(v.Sig) < 0 || int(v.Sig) >= len(c.Signals) {
			return fmt.Errorf("rtl: ref to out-of-range signal %d", v.Sig)
		}
		if v.W != c.Signals[v.Sig].Width {
			return fmt.Errorf("rtl: ref to %q has width %d, signal is %d",
				c.Signals[v.Sig].Name, v.W, c.Signals[v.Sig].Width)
		}
	case *Unary:
		return c.checkExpr(v.X)
	case *Binary:
		if err := c.checkExpr(v.X); err != nil {
			return err
		}
		return c.checkExpr(v.Y)
	case *Mux:
		for _, x := range []Expr{v.Cond, v.T, v.F} {
			if err := c.checkExpr(x); err != nil {
				return err
			}
		}
	case *Slice:
		if v.Lo < 0 || v.Hi < v.Lo || v.Hi >= v.X.Width() {
			return fmt.Errorf("rtl: slice [%d:%d] out of range for width %d", v.Hi, v.Lo, v.X.Width())
		}
		return c.checkExpr(v.X)
	case *Index:
		if err := c.checkExpr(v.X); err != nil {
			return err
		}
		return c.checkExpr(v.Bit)
	case *Concat:
		total := 0
		for _, p := range v.Parts {
			if err := c.checkExpr(p); err != nil {
				return err
			}
			total += p.Width()
		}
		if total != v.W {
			return fmt.Errorf("rtl: concat width %d != sum of parts %d", v.W, total)
		}
		if total > 64 {
			return fmt.Errorf("rtl: concat wider than 64 bits (%d)", total)
		}
	case *MemRead:
		if int(v.Mem) < 0 || int(v.Mem) >= len(c.Mems) {
			return fmt.Errorf("rtl: memread of out-of-range mem %d", v.Mem)
		}
		return c.checkExpr(v.Addr)
	default:
		return fmt.Errorf("rtl: unknown expression node %T", e)
	}
	return nil
}
