package rtl

import (
	"fmt"
	"sort"

	"gem5rtl/internal/sim"
)

// Model is a compiled, simulatable instance of a Circuit — the analogue of a
// Verilated model object. Construction levelises the combinational logic
// once (topological order over assignment dependencies), so each cycle is a
// single linear pass rather than a fixed-point iteration; a combinational
// loop is rejected at compile time. Model is not safe for concurrent use.
type Model struct {
	c      *Circuit
	engine Engine
	vals   []uint64
	masks  []uint64
	mems   [][]uint64
	order  []int // indices into c.Combs in evaluation order
	cycle  uint64

	// backend, when non-nil, replaces the closure-compiled hot path below
	// for Eval/Tick (see Backend). vals then aliases backend.Vals(), so the
	// architectural surface (Peek, SetInput, VCD, checkpoints, fault
	// injection) is engine-independent by construction.
	backend Backend

	// nextBuf is scratch space reused across Ticks to avoid per-cycle
	// allocation of the register next-state vector.
	nextBuf []uint64
	// memwBuf is scratch space reused across Ticks for captured memory
	// writes (pre-edge values), sized once to the write-port count.
	memwBuf []pendingMemWrite

	// Closure-compiled hot path (see compile.go).
	combFns []func()
	seqFns  []evalFn
	memwFns []compiledMemWrite

	inputs  map[string]SigID
	outputs map[string]SigID

	vcd *VCDWriter

	// Self-profiler phase attribution (AttachProfiler): when prof is
	// non-nil, closureTick sub-attributes each cycle to the comb-settle,
	// sequential-update and memory-write-port phases. Nil when profiling
	// is off (the default) or when the backend sub-attributes itself.
	prof    *sim.Profiler
	ownComb sim.OwnerID
	ownSeq  sim.OwnerID
	ownMemw sim.OwnerID
}

// PhaseProfiled is implemented by engine backends that sub-attribute their
// tick phases (comb settle, sequential update, memory write ports) to the
// self-profiler themselves. Model.AttachProfiler forwards to it when present;
// otherwise only the closure reference engine's phases are attributed.
type PhaseProfiled interface {
	AttachProfiler(p *sim.Profiler, comb, seq, memw sim.OwnerID)
}

// AttachProfiler enables per-phase self-profiling of this model's ticks:
// host time inside Tick is sub-attributed to the given comb/seq/memw owners
// so an RTL-heavy simulation point reads "nvdla0/rtl-comb" rather than just
// "slow". Phase counts reflect the work the active engine really did (an
// activity-gated backend enters fewer phases), while results stay bit-exact.
func (m *Model) AttachProfiler(p *sim.Profiler, comb, seq, memw sim.OwnerID) {
	if b, ok := m.backend.(PhaseProfiled); ok {
		b.AttachProfiler(p, comb, seq, memw)
		return
	}
	m.prof, m.ownComb, m.ownSeq, m.ownMemw = p, comb, seq, memw
}

// enterPhase switches self-profiler attribution to owner o (nil-safe).
func (m *Model) enterPhase(o sim.OwnerID) sim.OwnerID {
	if m.prof == nil {
		return 0
	}
	return m.prof.Enter(o)
}

// exitPhase restores the owner saved by enterPhase (nil-safe).
func (m *Model) exitPhase(prev sim.OwnerID) {
	if m.prof != nil {
		m.prof.Exit(prev)
	}
}

// pendingMemWrite is a memory write captured with pre-edge values, applied
// at commit time (non-blocking semantics).
type pendingMemWrite struct {
	mem  MemID
	addr int
	data uint64
}

// Compile validates, levelises, and instantiates a circuit on the closure
// reference engine. Use CompileEngine to select another engine.
func Compile(c *Circuit) (*Model, error) { return CompileEngine(c, EngineClosure) }

// CompileEngine validates, levelises, and instantiates a circuit on the
// named engine. The empty string selects the closure reference engine; other
// names must have been made available via RegisterEngine (for bytecode,
// linking internal/rtlc into the binary suffices). Whatever the engine, the
// resulting Model is bit-exact: same values, VCD, checkpoints, state hashes.
func CompileEngine(c *Circuit, engine Engine) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := levelize(c)
	if err != nil {
		return nil, err
	}
	if engine == "" {
		engine = EngineClosure
	}
	m := &Model{
		c:       c,
		engine:  engine,
		masks:   make([]uint64, len(c.Signals)),
		mems:    make([][]uint64, len(c.Mems)),
		order:   order,
		inputs:  map[string]SigID{},
		outputs: map[string]SigID{},
	}
	for i, s := range c.Signals {
		m.masks[i] = Mask(s.Width)
		switch s.Kind {
		case SigInput:
			m.inputs[s.Name] = SigID(i)
		case SigOutput:
			m.outputs[s.Name] = SigID(i)
		}
	}
	for i, mem := range c.Mems {
		m.mems[i] = make([]uint64, mem.Depth)
	}
	if engine == EngineClosure {
		m.vals = make([]uint64, len(c.Signals))
		m.buildFns()
	} else {
		build, ok := engineBuilders[engine]
		if !ok {
			return nil, fmt.Errorf("rtl: unknown engine %q (registered: %v); is the engine's package linked in?",
				engine, Engines())
		}
		be, err := build(c, m.mems)
		if err != nil {
			return nil, fmt.Errorf("rtl: engine %q: %w", engine, err)
		}
		if got := len(be.Vals()); got != len(c.Signals) {
			return nil, fmt.Errorf("rtl: engine %q returned %d value slots for %d signals",
				engine, got, len(c.Signals))
		}
		m.vals = be.Vals()
		m.backend = be
	}
	m.Reset()
	return m, nil
}

// MustCompile is Compile panicking on error; for tests and embedded designs.
func MustCompile(c *Circuit) *Model {
	m, err := Compile(c)
	if err != nil {
		panic(err)
	}
	return m
}

// Engine reports which evaluation engine this model was compiled for.
func (m *Model) Engine() Engine { return m.engine }

// SeqSkips reports how many sequential next-state evaluations the engine has
// elided through activity gating since compile (always 0 for the closure
// reference engine). Skips are a pure performance effect; they never change
// simulation results.
func (m *Model) SeqSkips() uint64 {
	if m.backend != nil {
		return m.backend.Skipped()
	}
	return 0
}

// invalidate tells the active backend that state was mutated behind its back
// (reset, checkpoint restore, fault injection, memory poke).
func (m *Model) invalidate() {
	if m.backend != nil {
		m.backend.Invalidate()
	}
}

// levelize orders combinational assignments so every assignment runs after
// the assignments producing the signals it reads. Registers and inputs are
// sources and impose no ordering. Returns an error naming a signal on any
// combinational cycle.
func levelize(c *Circuit) ([]int, error) {
	producer := make(map[SigID]int, len(c.Combs)) // signal -> comb index
	for i, a := range c.Combs {
		producer[a.Dst] = i
	}
	adj := make([][]int, len(c.Combs)) // edges: dependency -> dependent
	indeg := make([]int, len(c.Combs))
	var deps []SigID
	for i, a := range c.Combs {
		deps = deps[:0]
		deps = collectRefs(a.Src, deps)
		seen := map[int]bool{}
		for _, d := range deps {
			if p, ok := producer[d]; ok && !seen[p] {
				seen[p] = true
				adj[p] = append(adj[p], i)
				indeg[i]++
			}
		}
	}
	// Kahn's algorithm with deterministic ordering.
	ready := make([]int, 0, len(c.Combs))
	for i := range c.Combs {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, len(c.Combs))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, d := range adj[n] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != len(c.Combs) {
		for i := range c.Combs {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("rtl: combinational loop through signal %q",
					c.Signals[c.Combs[i].Dst].Name)
			}
		}
	}
	return order, nil
}

// collectRefs appends the IDs of all signals read by e.
func collectRefs(e Expr, out []SigID) []SigID {
	switch v := e.(type) {
	case *Const:
	case *Ref:
		out = append(out, v.Sig)
	case *Unary:
		out = collectRefs(v.X, out)
	case *Binary:
		out = collectRefs(v.X, out)
		out = collectRefs(v.Y, out)
	case *Mux:
		out = collectRefs(v.Cond, out)
		out = collectRefs(v.T, out)
		out = collectRefs(v.F, out)
	case *Slice:
		out = collectRefs(v.X, out)
	case *Index:
		out = collectRefs(v.X, out)
		out = collectRefs(v.Bit, out)
	case *Concat:
		for _, p := range v.Parts {
			out = collectRefs(p, out)
		}
	case *MemRead:
		out = collectRefs(v.Addr, out)
	}
	return out
}

// Circuit returns the underlying circuit.
func (m *Model) Circuit() *Circuit { return m.c }

// Cycle returns the number of Tick calls since the last Reset.
func (m *Model) Cycle() uint64 { return m.cycle }

// Reset restores every register to its Init value, re-initialises memories,
// zeroes inputs, and settles the combinational logic — the `reset` entry
// point the paper requires every shared-library wrapper to provide.
func (m *Model) Reset() {
	// Every signal starts at its Init value (zero for wires and inputs;
	// seq-driven outputs carry a register init like any other flop). The
	// Eval below overwrites comb-driven signals.
	for i, s := range m.c.Signals {
		m.vals[i] = s.Init & m.masks[i]
	}
	for i, mem := range m.c.Mems {
		words := m.mems[i]
		for j := range words {
			words[j] = 0
		}
		copy(words, mem.Init)
	}
	m.cycle = 0
	m.invalidate()
	m.Eval()
}

// SetInput drives an input port; panics on unknown name or non-input.
func (m *Model) SetInput(name string, val uint64) {
	id, ok := m.inputs[name]
	if !ok {
		panic(fmt.Sprintf("rtl: %q is not an input of %q", name, m.c.Name))
	}
	m.vals[id] = val & m.masks[id]
}

// SetInputID drives an input by ID (fast path for wrappers).
func (m *Model) SetInputID(id SigID, val uint64) { m.vals[id] = val & m.masks[id] }

// InputID resolves an input port name to its SigID.
func (m *Model) InputID(name string) SigID {
	id, ok := m.inputs[name]
	if !ok {
		panic(fmt.Sprintf("rtl: %q is not an input of %q", name, m.c.Name))
	}
	return id
}

// OutputID resolves an output port name to its SigID.
func (m *Model) OutputID(name string) SigID {
	id, ok := m.outputs[name]
	if !ok {
		panic(fmt.Sprintf("rtl: %q is not an output of %q", name, m.c.Name))
	}
	return id
}

// Peek reads any signal's current value by name; panics on unknown name.
func (m *Model) Peek(name string) uint64 {
	id := m.c.SignalByName(name)
	if id < 0 {
		panic(fmt.Sprintf("rtl: no signal %q in %q", name, m.c.Name))
	}
	return m.vals[id]
}

// PeekID reads any signal's current value by ID.
func (m *Model) PeekID(id SigID) uint64 { return m.vals[id] }

// PeekMem reads a memory word (for testbenches); out of range reads zero.
func (m *Model) PeekMem(id MemID, addr int) uint64 {
	w := m.mems[id]
	if addr < 0 || addr >= len(w) {
		return 0
	}
	return w[addr]
}

// PokeMem writes a memory word directly (testbench backdoor).
func (m *Model) PokeMem(id MemID, addr int, val uint64) {
	w := m.mems[id]
	if addr >= 0 && addr < len(w) {
		w[addr] = val & Mask(m.c.Mems[id].Width)
		m.invalidate()
	}
}

// Eval settles the combinational logic against current inputs and register
// state: one linear pass of compiled assignments in levelised order (closure
// calls on the reference engine, bytecode on a registered backend).
func (m *Model) Eval() {
	if m.backend != nil {
		m.backend.Eval()
		return
	}
	for _, fn := range m.combFns {
		fn()
	}
}

// EvalIterative is the naive fixed-point evaluation strategy kept for the
// ablation benchmark in DESIGN.md (§5.1): it re-evaluates all combinational
// assignments in declaration order until no value changes.
func (m *Model) EvalIterative() int {
	passes := 0
	for {
		passes++
		changed := false
		for i := range m.c.Combs {
			a := &m.c.Combs[i]
			nv := m.eval(a.Src) & m.masks[a.Dst]
			if nv != m.vals[a.Dst] {
				m.vals[a.Dst] = nv
				changed = true
			}
		}
		if !changed || passes > len(m.c.Combs)+2 {
			return passes
		}
	}
}

// Tick advances the model one clock cycle: settle combinational logic,
// capture every register's next value and memory write using pre-edge
// state, commit, and settle again so outputs reflect the new state. This is
// the `tick` entry point of the paper's shared-library interface.
func (m *Model) Tick() {
	if m.backend != nil {
		m.backend.Tick()
	} else {
		m.closureTick()
	}
	m.cycle++
	if m.vcd != nil && m.vcd.enabled {
		m.vcd.dump(m)
	}
}

// closureTick is one clock cycle on the closure reference engine: eval,
// capture with pre-edge values, commit, eval.
func (m *Model) closureTick() {
	prev := m.enterPhase(m.ownComb)
	m.Eval()
	m.exitPhase(prev)
	// Capture next-state with pre-edge values (non-blocking semantics).
	// memwBuf is reused across ticks so the hot path stays allocation-free.
	prev = m.enterPhase(m.ownMemw)
	m.memwBuf = m.memwBuf[:0]
	for i := range m.memwFns {
		w := &m.memwFns[i]
		if w.en() != 0 {
			addr := int(w.addr())
			if addr >= 0 && addr < m.c.Mems[w.mem].Depth {
				m.memwBuf = append(m.memwBuf, pendingMemWrite{w.mem, addr, w.data() & w.mask})
			}
		}
	}
	m.exitPhase(prev)
	prev = m.enterPhase(m.ownSeq)
	if m.nextBuf == nil || len(m.nextBuf) < len(m.seqFns) {
		m.nextBuf = make([]uint64, len(m.seqFns))
	}
	for i, fn := range m.seqFns {
		m.nextBuf[i] = fn()
	}
	// Commit.
	for i := range m.c.Seqs {
		m.vals[m.c.Seqs[i].Dst] = m.nextBuf[i]
	}
	for _, w := range m.memwBuf {
		m.mems[w.mem][w.addr] = w.data
	}
	m.exitPhase(prev)
	prev = m.enterPhase(m.ownComb)
	m.Eval()
	m.exitPhase(prev)
}

// eval evaluates an expression against current signal values.
func (m *Model) eval(e Expr) uint64 {
	switch v := e.(type) {
	case *Const:
		return v.Val
	case *Ref:
		return m.vals[v.Sig]
	case *Unary:
		x := m.eval(v.X)
		switch v.Op {
		case UnNot:
			return ^x & Mask(v.W)
		case UnNeg:
			return (-x) & Mask(v.W)
		case UnLNot:
			if x == 0 {
				return 1
			}
			return 0
		case UnRedAnd:
			if x == Mask(v.X.Width()) {
				return 1
			}
			return 0
		case UnRedOr:
			if x != 0 {
				return 1
			}
			return 0
		case UnRedXor:
			var p uint64
			for t := x; t != 0; t &= t - 1 {
				p ^= 1
			}
			return p
		}
	case *Binary:
		x := m.eval(v.X)
		y := m.eval(v.Y)
		mask := Mask(v.W)
		switch v.Op {
		case OpAdd:
			return (x + y) & mask
		case OpSub:
			return (x - y) & mask
		case OpMul:
			return (x * y) & mask
		case OpDiv:
			if y == 0 {
				return mask
			}
			return (x / y) & mask
		case OpMod:
			if y == 0 {
				return x & mask
			}
			return (x % y) & mask
		case OpAnd:
			return x & y & mask
		case OpOr:
			return (x | y) & mask
		case OpXor:
			return (x ^ y) & mask
		case OpShl:
			if y >= 64 {
				return 0
			}
			return (x << y) & mask
		case OpShr:
			if y >= 64 {
				return 0
			}
			return (x >> y) & mask
		case OpSra:
			sx := SignExtend(x, v.X.Width())
			if y >= 64 {
				y = 63
			}
			return uint64(sx>>y) & mask
		case OpEq:
			return b2u(x == y)
		case OpNe:
			return b2u(x != y)
		case OpLt:
			return b2u(x < y)
		case OpLe:
			return b2u(x <= y)
		case OpGt:
			return b2u(x > y)
		case OpGe:
			return b2u(x >= y)
		case OpSLt:
			return b2u(SignExtend(x, v.X.Width()) < SignExtend(y, v.Y.Width()))
		case OpSLe:
			return b2u(SignExtend(x, v.X.Width()) <= SignExtend(y, v.Y.Width()))
		case OpSGt:
			return b2u(SignExtend(x, v.X.Width()) > SignExtend(y, v.Y.Width()))
		case OpSGe:
			return b2u(SignExtend(x, v.X.Width()) >= SignExtend(y, v.Y.Width()))
		case OpLAnd:
			return b2u(x != 0 && y != 0)
		case OpLOr:
			return b2u(x != 0 || y != 0)
		}
	case *Mux:
		if m.eval(v.Cond) != 0 {
			return m.eval(v.T) & Mask(v.W)
		}
		return m.eval(v.F) & Mask(v.W)
	case *Slice:
		return (m.eval(v.X) >> uint(v.Lo)) & Mask(v.Hi-v.Lo+1)
	case *Index:
		bitPos := m.eval(v.Bit)
		if bitPos >= uint64(v.X.Width()) {
			return 0
		}
		return (m.eval(v.X) >> bitPos) & 1
	case *Concat:
		var acc uint64
		for _, p := range v.Parts {
			acc = acc<<uint(p.Width()) | m.eval(p)
		}
		return acc
	case *MemRead:
		addr := m.eval(v.Addr)
		words := m.mems[v.Mem]
		if addr >= uint64(len(words)) {
			return 0
		}
		return words[addr]
	}
	panic(fmt.Sprintf("rtl: eval of unknown node %T", e))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
