package rtl

// Closure compilation: at Compile time every expression tree is lowered to
// a tree of Go closures, eliminating the per-node type switch from the
// per-cycle hot path — the same trick that makes Verilator fast relative to
// interpreting simulators. The tree-walking evaluator (engine.go eval) is
// retained for EvalIterative and the DESIGN.md §5.1 ablation benchmark.

type evalFn func() uint64

// buildFns lowers all assignments once. Called at the end of Compile.
func (m *Model) buildFns() {
	m.combFns = make([]func(), len(m.order))
	for i, idx := range m.order {
		a := &m.c.Combs[idx]
		dst := a.Dst
		mask := m.masks[dst]
		src := m.compileExpr(a.Src)
		vals := m.vals
		m.combFns[i] = func() { vals[dst] = src() & mask }
	}
	m.seqFns = make([]evalFn, len(m.c.Seqs))
	for i := range m.c.Seqs {
		s := &m.c.Seqs[i]
		mask := m.masks[s.Dst]
		next := m.compileExpr(s.Next)
		m.seqFns[i] = func() uint64 { return next() & mask }
	}
	m.memwFns = make([]compiledMemWrite, len(m.c.MemWrites))
	for i := range m.c.MemWrites {
		w := &m.c.MemWrites[i]
		m.memwFns[i] = compiledMemWrite{
			mem:  w.Mem,
			addr: m.compileExpr(w.Addr),
			data: m.compileExpr(w.Data),
			en:   m.compileExpr(w.En),
			mask: Mask(m.c.Mems[w.Mem].Width),
		}
	}
}

type compiledMemWrite struct {
	mem        MemID
	addr, data evalFn
	en         evalFn
	mask       uint64
}

// compileExpr lowers one expression tree to a closure reading m.vals/m.mems.
func (m *Model) compileExpr(e Expr) evalFn {
	switch v := e.(type) {
	case *Const:
		c := v.Val
		return func() uint64 { return c }
	case *Ref:
		vals := m.vals
		i := v.Sig
		return func() uint64 { return vals[i] }
	case *Unary:
		x := m.compileExpr(v.X)
		switch v.Op {
		case UnNot:
			mask := Mask(v.W)
			return func() uint64 { return ^x() & mask }
		case UnNeg:
			mask := Mask(v.W)
			return func() uint64 { return (-x()) & mask }
		case UnLNot:
			return func() uint64 { return b2u(x() == 0) }
		case UnRedAnd:
			full := Mask(v.X.Width())
			return func() uint64 { return b2u(x() == full) }
		case UnRedOr:
			return func() uint64 { return b2u(x() != 0) }
		case UnRedXor:
			return func() uint64 {
				var p uint64
				for t := x(); t != 0; t &= t - 1 {
					p ^= 1
				}
				return p
			}
		}
	case *Binary:
		x := m.compileExpr(v.X)
		y := m.compileExpr(v.Y)
		mask := Mask(v.W)
		switch v.Op {
		case OpAdd:
			return func() uint64 { return (x() + y()) & mask }
		case OpSub:
			return func() uint64 { return (x() - y()) & mask }
		case OpMul:
			return func() uint64 { return (x() * y()) & mask }
		case OpDiv:
			return func() uint64 {
				d := y()
				if d == 0 {
					return mask
				}
				return (x() / d) & mask
			}
		case OpMod:
			return func() uint64 {
				d := y()
				if d == 0 {
					return x() & mask
				}
				return (x() % d) & mask
			}
		case OpAnd:
			return func() uint64 { return x() & y() & mask }
		case OpOr:
			return func() uint64 { return (x() | y()) & mask }
		case OpXor:
			return func() uint64 { return (x() ^ y()) & mask }
		case OpShl:
			return func() uint64 {
				s := y()
				if s >= 64 {
					return 0
				}
				return (x() << s) & mask
			}
		case OpShr:
			return func() uint64 {
				s := y()
				if s >= 64 {
					return 0
				}
				return (x() >> s) & mask
			}
		case OpSra:
			xw := v.X.Width()
			return func() uint64 {
				s := y()
				if s >= 64 {
					s = 63
				}
				return uint64(SignExtend(x(), xw)>>s) & mask
			}
		case OpEq:
			return func() uint64 { return b2u(x() == y()) }
		case OpNe:
			return func() uint64 { return b2u(x() != y()) }
		case OpLt:
			return func() uint64 { return b2u(x() < y()) }
		case OpLe:
			return func() uint64 { return b2u(x() <= y()) }
		case OpGt:
			return func() uint64 { return b2u(x() > y()) }
		case OpGe:
			return func() uint64 { return b2u(x() >= y()) }
		case OpSLt:
			xw, yw := v.X.Width(), v.Y.Width()
			return func() uint64 { return b2u(SignExtend(x(), xw) < SignExtend(y(), yw)) }
		case OpSLe:
			xw, yw := v.X.Width(), v.Y.Width()
			return func() uint64 { return b2u(SignExtend(x(), xw) <= SignExtend(y(), yw)) }
		case OpSGt:
			xw, yw := v.X.Width(), v.Y.Width()
			return func() uint64 { return b2u(SignExtend(x(), xw) > SignExtend(y(), yw)) }
		case OpSGe:
			xw, yw := v.X.Width(), v.Y.Width()
			return func() uint64 { return b2u(SignExtend(x(), xw) >= SignExtend(y(), yw)) }
		case OpLAnd:
			return func() uint64 { return b2u(x() != 0 && y() != 0) }
		case OpLOr:
			return func() uint64 { return b2u(x() != 0 || y() != 0) }
		}
	case *Mux:
		c := m.compileExpr(v.Cond)
		t := m.compileExpr(v.T)
		f := m.compileExpr(v.F)
		mask := Mask(v.W)
		return func() uint64 {
			if c() != 0 {
				return t() & mask
			}
			return f() & mask
		}
	case *Slice:
		x := m.compileExpr(v.X)
		lo := uint(v.Lo)
		mask := Mask(v.Hi - v.Lo + 1)
		return func() uint64 { return (x() >> lo) & mask }
	case *Index:
		x := m.compileExpr(v.X)
		bit := m.compileExpr(v.Bit)
		w := uint64(v.X.Width())
		return func() uint64 {
			b := bit()
			if b >= w {
				return 0
			}
			return (x() >> b) & 1
		}
	case *Concat:
		parts := make([]evalFn, len(v.Parts))
		widths := make([]uint, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = m.compileExpr(p)
			widths[i] = uint(p.Width())
		}
		if len(parts) == 2 {
			a, b := parts[0], parts[1]
			bw := widths[1]
			return func() uint64 { return a()<<bw | b() }
		}
		return func() uint64 {
			var acc uint64
			for i, p := range parts {
				acc = acc<<widths[i] | p()
			}
			return acc
		}
	case *MemRead:
		addr := m.compileExpr(v.Addr)
		words := m.mems[v.Mem]
		n := uint64(len(words))
		return func() uint64 {
			a := addr()
			if a >= n {
				return 0
			}
			return words[a]
		}
	}
	panic("rtl: compileExpr: unknown node")
}
