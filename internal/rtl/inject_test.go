package rtl

import (
	"strings"
	"testing"
)

func TestStateBitsCountsRegsAndMems(t *testing.T) {
	m := buildCounter(t) // one 8-bit register, no memories
	if got := m.StateBits(); got != 8 {
		t.Fatalf("StateBits = %d, want 8", got)
	}
}

func TestInjectStateFlipRegister(t *testing.T) {
	m := buildCounter(t)
	m.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		m.Tick()
	}
	before := m.Peek("q")
	desc := m.InjectStateFlip(3) // bit 3 of the count register
	if !strings.Contains(desc, "reg count bit 3") {
		t.Fatalf("desc = %q", desc)
	}
	after := m.Peek("q")
	if after != before^(1<<3) {
		t.Fatalf("q = %d after flipping bit 3 of %d", after, before)
	}
	// A second identical flip restores the state (XOR involution), proving
	// the injection touches exactly one bit.
	m.InjectStateFlip(3)
	if got := m.Peek("q"); got != before {
		t.Fatalf("double flip did not restore: q = %d, want %d", got, before)
	}
}

func TestInjectStateFlipDeterministicAndModular(t *testing.T) {
	a, b := buildCounter(t), buildCounter(t)
	if da, db := a.InjectStateFlip(123), b.InjectStateFlip(123); da != db {
		t.Fatalf("same pick, different sites: %q vs %q", da, db)
	}
	// pick is reduced modulo StateBits: 8+3 lands on bit 3.
	c := buildCounter(t)
	if desc := c.InjectStateFlip(11); !strings.Contains(desc, "bit 3") {
		t.Fatalf("modular pick desc = %q", desc)
	}
}

func TestInjectStateFlipMemory(t *testing.T) {
	b := NewBuilder("memmod")
	clk := b.Reg("cnt", 4, 0)
	b.Seq(clk, Add(b.Ref(clk), C(1, 4)))
	mem := b.Mem("table", 8, 4)
	addr := b.Input("addr", 2)
	o := b.Output("o", 8)
	b.Assign(o, MemRd(mem, b.Ref(addr), 8))
	m := MustCompile(mustBuild(t, b))
	// 4 register bits + 8*4 memory bits.
	if got := m.StateBits(); got != 4+32 {
		t.Fatalf("StateBits = %d, want 36", got)
	}
	// Picks past the register land in the memory: pick 4 is table[0] bit 0.
	desc := m.InjectStateFlip(4)
	if !strings.Contains(desc, "mem table[0] bit 0") {
		t.Fatalf("desc = %q", desc)
	}
	m.SetInput("addr", 0)
	m.Eval()
	if got := m.Peek("o"); got != 1 {
		t.Fatalf("table[0] = %d after bit-0 flip, want 1", got)
	}
}
