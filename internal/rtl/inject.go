package rtl

import "fmt"

// StateBits returns the total number of architectural state bits of the
// model: every sequential register bit plus every memory-array bit. This is
// the fault-injection address space of InjectStateFlip.
func (m *Model) StateBits() uint64 {
	var n uint64
	for _, sq := range m.c.Seqs {
		n += uint64(m.c.Signals[sq.Dst].Width)
	}
	for _, mem := range m.c.Mems {
		n += uint64(mem.Width) * uint64(mem.Depth)
	}
	return n
}

// InjectStateFlip flips one architectural state bit — registers first (in
// sequential-assignment order), then memory arrays — selected by pick modulo
// StateBits, then re-settles combinational logic so the fault propagates the
// way a real single-event upset would. It returns a description of the
// flipped site for fault-campaign reports, or "" if the model holds no state.
func (m *Model) InjectStateFlip(pick uint64) string {
	total := m.StateBits()
	if total == 0 {
		return ""
	}
	pick %= total
	for _, sq := range m.c.Seqs {
		w := uint64(m.c.Signals[sq.Dst].Width)
		if pick < w {
			m.vals[sq.Dst] ^= 1 << pick
			m.invalidate()
			m.Eval()
			return fmt.Sprintf("reg %s bit %d", m.c.Signals[sq.Dst].Name, pick)
		}
		pick -= w
	}
	for mi, mem := range m.c.Mems {
		bits := uint64(mem.Width) * uint64(mem.Depth)
		if pick < bits {
			addr := pick / uint64(mem.Width)
			bit := pick % uint64(mem.Width)
			m.mems[mi][addr] ^= 1 << bit
			m.invalidate()
			m.Eval()
			return fmt.Sprintf("mem %s[%d] bit %d", mem.Name, addr, bit)
		}
		pick -= bits
	}
	return ""
}
