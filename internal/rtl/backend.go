package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Engine names a Model evaluation engine. The package has one built-in
// engine, EngineClosure — the closure-compiled reference evaluator — and
// accepts additional engines through RegisterEngine (internal/rtlc registers
// EngineBytecode, the optimizing bytecode compiler + register-machine VM).
// Engines are behaviourally interchangeable: every engine must be bit-exact
// against the closure reference on all architectural state (signal values,
// memories, cycle counter), so VCD traces, checkpoints, StateHash digests and
// fault-injection campaigns are engine-independent.
type Engine string

// The engine names accepted by CompileEngine. An empty Engine selects the
// closure reference engine.
const (
	// EngineClosure is the built-in reference engine: every expression tree
	// is lowered to a tree of Go closures at compile time. It anchors the
	// bit-exactness of every other engine, the way NewReferenceEventQueue
	// anchors the calendar queue.
	EngineClosure Engine = "closure"
	// EngineBytecode is the optimizing bytecode compiler + register-machine
	// VM implemented by internal/rtlc. Selecting it requires that package to
	// be linked into the binary (it registers itself in an init function;
	// importing internal/rtlc, directly or blank, is enough).
	EngineBytecode Engine = "bytecode"
)

// Backend is a pluggable per-cycle evaluation core behind a Model. The Model
// keeps ownership of the architectural state surface (Peek/SetInput, VCD,
// checkpoints, fault injection); the backend owns how that state advances.
//
// The contract mirrors the closure engine exactly:
//
//   - Vals returns the signal-value storage, one uint64 per circuit signal.
//     The Model adopts this slice as its value store, so external reads and
//     writes (SetInput, checkpoint restore, bit flips) are immediately
//     visible to the backend and vice versa — no synchronisation step.
//   - Eval settles the combinational logic against current inputs, register
//     and memory state, exactly like the closure engine's levelised pass.
//   - Tick performs one full clock cycle minus the Model-side bookkeeping:
//     Eval, capture of register next-state and memory writes with pre-edge
//     values, commit, Eval. The Model increments the cycle counter and dumps
//     VCD afterwards.
//   - Invalidate tells the backend the Model mutated state behind its back
//     (Reset, checkpoint restore, fault injection, memory poke), so any
//     activity-gating state must be discarded. Input pokes via SetInput do
//     not require Invalidate; backends detect them by snapshotting inputs.
//   - Skipped reports how many sequential next-state evaluations the backend
//     elided through activity gating (0 for an ungated backend). Skipping
//     must never change results — it is observable only through this counter
//     and wall-clock time.
type Backend interface {
	// Vals returns the backing signal-value slice (len == number of signals).
	Vals() []uint64
	// Eval settles combinational logic.
	Eval()
	// Tick advances one clock: eval, capture, commit, eval.
	Tick()
	// Invalidate discards activity-gating state after an external mutation.
	Invalidate()
	// Skipped counts sequential updates elided by activity gating.
	Skipped() uint64
}

// EngineBuilder constructs a Backend for a validated circuit. mems is the
// Model's memory storage (one word slice per circuit memory), which the
// backend must share — memory state, like Vals, has a single copy.
type EngineBuilder func(c *Circuit, mems [][]uint64) (Backend, error)

var engineBuilders = map[Engine]EngineBuilder{}

// RegisterEngine makes an engine available to CompileEngine. It is intended
// to be called from an init function of the implementing package; registering
// a duplicate or overriding the built-in closure engine panics.
func RegisterEngine(name Engine, b EngineBuilder) {
	if name == "" || name == EngineClosure {
		panic("rtl: cannot override the closure reference engine")
	}
	if _, dup := engineBuilders[name]; dup {
		panic(fmt.Sprintf("rtl: engine %q registered twice", name))
	}
	engineBuilders[name] = b
}

// Engines lists the selectable engine names, sorted, starting with the
// built-in closure engine. Command-line help and spec validation use it so a
// typo'd engine name fails with the real set of choices.
func Engines() []Engine {
	out := []Engine{EngineClosure}
	for name := range engineBuilders {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseEngine validates an engine name from a flag or spec. The empty string
// selects the closure reference engine.
func ParseEngine(name string) (Engine, error) {
	e := Engine(name)
	if e == "" || e == EngineClosure {
		return EngineClosure, nil
	}
	if _, ok := engineBuilders[e]; ok {
		return e, nil
	}
	names := make([]string, 0, len(engineBuilders)+1)
	for _, n := range Engines() {
		names = append(names, string(n))
	}
	return "", fmt.Errorf("rtl: unknown engine %q (want one of %s)", name, strings.Join(names, ", "))
}

// CombOrder levelises the circuit's combinational assignments: the returned
// indices into Combs order every assignment after the assignments producing
// the signals it reads. Engine implementations lower assignments in this
// order so a single linear pass settles the logic. Returns an error naming a
// signal on any combinational cycle.
func (c *Circuit) CombOrder() ([]int, error) { return levelize(c) }
