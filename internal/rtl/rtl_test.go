package rtl

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// buildCounter returns an 8-bit counter with enable and synchronous clear.
func buildCounter(t testing.TB) *Model {
	b := NewBuilder("counter")
	en := b.Input("en", 1)
	clr := b.Input("clr", 1)
	count := b.Reg("count", 8, 0)
	out := b.Output("q", 8)
	b.Assign(out, b.Ref(count))
	next := MuxE(b.Ref(clr), C(0, 8),
		MuxE(b.Ref(en), Add(b.Ref(count), C(1, 8)), b.Ref(count)))
	b.Seq(count, next)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCounter(t *testing.T) {
	m := buildCounter(t)
	m.SetInput("en", 1)
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	if got := m.Peek("q"); got != 10 {
		t.Fatalf("q = %d, want 10", got)
	}
	m.SetInput("en", 0)
	m.Tick()
	if got := m.Peek("q"); got != 10 {
		t.Fatalf("q advanced while disabled: %d", got)
	}
	m.SetInput("clr", 1)
	m.Tick()
	if got := m.Peek("q"); got != 0 {
		t.Fatalf("clear failed: q = %d", got)
	}
}

func TestCounterWraps(t *testing.T) {
	m := buildCounter(t)
	m.SetInput("en", 1)
	for i := 0; i < 260; i++ {
		m.Tick()
	}
	if got := m.Peek("q"); got != 4 {
		t.Fatalf("q = %d, want 4 (260 mod 256)", got)
	}
}

func TestResetRestoresInit(t *testing.T) {
	b := NewBuilder("r")
	r := b.Reg("state", 16, 0xBEEF)
	o := b.Output("o", 16)
	b.Assign(o, b.Ref(r))
	b.Seq(r, Add(b.Ref(r), C(1, 16)))
	m := MustCompile(mustBuild(t, b))
	m.Tick()
	m.Tick()
	if m.Peek("o") != 0xBEF1 {
		t.Fatalf("o = %#x", m.Peek("o"))
	}
	m.Reset()
	if m.Peek("o") != 0xBEEF || m.Cycle() != 0 {
		t.Fatalf("reset failed: o=%#x cycle=%d", m.Peek("o"), m.Cycle())
	}
}

func mustBuild(t testing.TB, b *Builder) *Circuit {
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCombChain(t *testing.T) {
	// y = ((a+b)*2)^0xF via chained wires declared out of order to exercise
	// levelisation.
	b := NewBuilder("chain")
	a := b.Input("a", 8)
	bb := b.Input("b", 8)
	y := b.Output("y", 8)
	w2 := b.Wire("w2", 8)
	w1 := b.Wire("w1", 8)
	b.Assign(y, XorE(b.Ref(w2), C(0xF, 8)))
	b.Assign(w2, MulE(b.Ref(w1), C(2, 8)))
	b.Assign(w1, Add(b.Ref(a), b.Ref(bb)))
	m := MustCompile(mustBuild(t, b))
	m.SetInput("a", 3)
	m.SetInput("b", 4)
	m.Eval()
	want := uint64(((3 + 4) * 2) ^ 0xF)
	if got := m.Peek("y"); got != want {
		t.Fatalf("y = %d, want %d", got, want)
	}
}

func TestCombLoopRejected(t *testing.T) {
	b := NewBuilder("loop")
	x := b.Wire("x", 1)
	y := b.Wire("y", 1)
	b.Assign(x, Not(b.Ref(y)))
	b.Assign(y, Not(b.Ref(x)))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(c); err == nil || !strings.Contains(err.Error(), "combinational loop") {
		t.Fatalf("comb loop not rejected: %v", err)
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	b := NewBuilder("md")
	x := b.Wire("x", 1)
	b.Assign(x, C(0, 1))
	b.Assign(x, C(1, 1))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "drivers") {
		t.Fatalf("multiple drivers not rejected: %v", err)
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	b := NewBuilder("wm")
	x := b.Wire("x", 8)
	b.Assign(x, C(1, 4))
	if _, err := b.Build(); err == nil {
		t.Fatal("width mismatch not rejected")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	b := NewBuilder("memtest")
	we := b.Input("we", 1)
	waddr := b.Input("waddr", 4)
	wdata := b.Input("wdata", 32)
	raddr := b.Input("raddr", 4)
	rdata := b.Output("rdata", 32)
	mem := b.Mem("m", 32, 16)
	b.MemWr(mem, b.Ref(waddr), b.Ref(wdata), b.Ref(we))
	b.Assign(rdata, MemRd(mem, b.Ref(raddr), 32))
	m := MustCompile(mustBuild(t, b))

	m.SetInput("we", 1)
	m.SetInput("waddr", 5)
	m.SetInput("wdata", 0xCAFE)
	m.Tick()
	m.SetInput("we", 0)
	m.SetInput("raddr", 5)
	m.Eval()
	if got := m.Peek("rdata"); got != 0xCAFE {
		t.Fatalf("rdata = %#x, want 0xCAFE", got)
	}
	// Read-during-write returns old value at the write tick (non-blocking).
	m.SetInput("we", 1)
	m.SetInput("waddr", 5)
	m.SetInput("wdata", 0xD00D)
	m.SetInput("raddr", 5)
	m.Eval()
	if got := m.Peek("rdata"); got != 0xCAFE {
		t.Fatalf("pre-edge rdata = %#x, want old value 0xCAFE", got)
	}
	m.Tick()
	if got := m.Peek("rdata"); got != 0xD00D {
		t.Fatalf("post-edge rdata = %#x, want 0xD00D", got)
	}
}

// TestTickZeroAllocs guards the closure engine's Tick hot path against
// per-cycle allocation, including the memory-write capture buffer, which
// must be reused across cycles even when write ports fire.
func TestTickZeroAllocs(t *testing.T) {
	b := NewBuilder("alloc")
	we := b.Input("we", 1)
	waddr := b.Input("waddr", 4)
	wdata := b.Input("wdata", 32)
	cnt := b.Reg("cnt", 8, 0)
	b.Seq(cnt, Add(b.Ref(cnt), C(1, 8)))
	mem := b.Mem("m", 32, 16)
	b.MemWr(mem, b.Ref(waddr), b.Ref(wdata), b.Ref(we))
	out := b.Output("q", 32)
	b.Assign(out, MemRd(mem, SliceE(b.Ref(cnt), 3, 0), 32))
	m := MustCompile(mustBuild(t, b))
	m.SetInput("we", 1)
	i := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		i++
		m.SetInput("waddr", i&15)
		m.SetInput("wdata", i)
		m.Tick()
	})
	if allocs != 0 {
		t.Fatalf("Tick allocates %.1f times per cycle, want 0", allocs)
	}
}

func TestMemInit(t *testing.T) {
	b := NewBuilder("mi")
	ra := b.Input("ra", 2)
	rd := b.Output("rd", 8)
	mem := b.Mem("rom", 8, 4)
	b.MemInit(mem, []uint64{10, 20, 30, 40})
	b.Assign(rd, MemRd(mem, b.Ref(ra), 8))
	m := MustCompile(mustBuild(t, b))
	for i, want := range []uint64{10, 20, 30, 40} {
		m.SetInput("ra", uint64(i))
		m.Eval()
		if got := m.Peek("rd"); got != want {
			t.Fatalf("rom[%d] = %d, want %d", i, got, want)
		}
	}
	// Reset re-initialises.
	m.PokeMem(mem, 0, 99)
	m.Reset()
	m.SetInput("ra", 0)
	m.Eval()
	if got := m.Peek("rd"); got != 10 {
		t.Fatalf("after reset rom[0] = %d, want 10", got)
	}
}

func TestOperatorSemantics(t *testing.T) {
	// Evaluate a batch of operator expressions against Go reference results.
	cases := []struct {
		name string
		expr func(a, b Expr) Expr
		ref  func(a, b uint64) uint64 // 16-bit semantics
	}{
		{"add", Add, func(a, b uint64) uint64 { return (a + b) & 0xFFFF }},
		{"sub", Sub, func(a, b uint64) uint64 { return (a - b) & 0xFFFF }},
		{"mul", MulE, func(a, b uint64) uint64 { return (a * b) & 0xFFFF }},
		{"div", DivE, func(a, b uint64) uint64 {
			if b == 0 {
				return 0xFFFF
			}
			return a / b
		}},
		{"mod", ModE, func(a, b uint64) uint64 {
			if b == 0 {
				return a
			}
			return a % b
		}},
		{"and", AndE, func(a, b uint64) uint64 { return a & b }},
		{"or", OrE, func(a, b uint64) uint64 { return a | b }},
		{"xor", XorE, func(a, b uint64) uint64 { return a ^ b }},
		{"eq", Eq, func(a, b uint64) uint64 {
			if a == b {
				return 1
			}
			return 0
		}},
		{"lt", Lt, func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		}},
		{"slt", SLt, func(a, b uint64) uint64 {
			if int16(a) < int16(b) {
				return 1
			}
			return 0
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("op")
			a := b.Input("a", 16)
			bb := b.Input("b", 16)
			e := tc.expr(b.Ref(a), b.Ref(bb))
			y := b.Output("y", e.Width())
			b.Assign(y, e)
			m := MustCompile(mustBuild(t, b))
			f := func(av, bv uint16) bool {
				m.SetInput("a", uint64(av))
				m.SetInput("b", uint64(bv))
				m.Eval()
				return m.Peek("y") == tc.ref(uint64(av), uint64(bv))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShiftsAndUnary(t *testing.T) {
	b := NewBuilder("sh")
	a := b.Input("a", 16)
	s := b.Input("s", 5)
	shl := b.Output("shl", 16)
	shr := b.Output("shr", 16)
	sra := b.Output("sra", 16)
	not := b.Output("not", 16)
	neg := b.Output("neg", 16)
	ra := b.Output("ra", 1)
	ro := b.Output("ro", 1)
	rx := b.Output("rx", 1)
	b.Assign(shl, Shl(b.Ref(a), b.Ref(s)))
	b.Assign(shr, Shr(b.Ref(a), b.Ref(s)))
	b.Assign(sra, Sra(b.Ref(a), b.Ref(s)))
	b.Assign(not, Not(b.Ref(a)))
	b.Assign(neg, Neg(b.Ref(a)))
	b.Assign(ra, RedAnd(b.Ref(a)))
	b.Assign(ro, RedOr(b.Ref(a)))
	b.Assign(rx, RedXor(b.Ref(a)))
	m := MustCompile(mustBuild(t, b))
	f := func(av uint16, sv uint8) bool {
		sh := uint64(sv % 20)
		m.SetInput("a", uint64(av))
		m.SetInput("s", sh)
		m.Eval()
		wantShl := uint64(0)
		wantShr := uint64(0)
		if sh < 16 {
			wantShl = (uint64(av) << sh) & 0xFFFF
			wantShr = uint64(av) >> sh
		} else if sh < 32 { // width-5 input allows up to 31
			wantShl = (uint64(av) << sh) & 0xFFFF
			wantShr = uint64(av) >> sh
		}
		wantSra := uint64(int64(int16(av))>>min64(sh, 63)) & 0xFFFF
		pop := 0
		for t := av; t != 0; t &= t - 1 {
			pop++
		}
		return m.Peek("shl") == wantShl &&
			m.Peek("shr") == wantShr &&
			m.Peek("sra") == wantSra &&
			m.Peek("not") == uint64(^av) &&
			m.Peek("neg") == uint64(-av) &&
			m.Peek("ra") == b2u(av == 0xFFFF) &&
			m.Peek("ro") == b2u(av != 0) &&
			m.Peek("rx") == uint64(pop%2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestSliceConcatIndex(t *testing.T) {
	b := NewBuilder("sc")
	a := b.Input("a", 16)
	i := b.Input("i", 4)
	hi := b.Output("hi", 8)
	lo := b.Output("lo", 8)
	swapped := b.Output("swapped", 16)
	bit := b.Output("bit", 1)
	rep := b.Output("rep", 4)
	b.Assign(hi, SliceE(b.Ref(a), 15, 8))
	b.Assign(lo, SliceE(b.Ref(a), 7, 0))
	b.Assign(swapped, Cat(SliceE(b.Ref(a), 7, 0), SliceE(b.Ref(a), 15, 8)))
	b.Assign(bit, IndexE(b.Ref(a), b.Ref(i)))
	b.Assign(rep, Cat(Bit(b.Ref(a), 0), Bit(b.Ref(a), 0), Bit(b.Ref(a), 0), Bit(b.Ref(a), 0)))
	m := MustCompile(mustBuild(t, b))
	f := func(av uint16, iv uint8) bool {
		m.SetInput("a", uint64(av))
		m.SetInput("i", uint64(iv%16))
		m.Eval()
		wantRep := uint64(0)
		if av&1 == 1 {
			wantRep = 0xF
		}
		return m.Peek("hi") == uint64(av>>8) &&
			m.Peek("lo") == uint64(av&0xFF) &&
			m.Peek("swapped") == uint64((av&0xFF)<<8|av>>8) &&
			m.Peek("bit") == uint64(av>>(iv%16))&1 &&
			m.Peek("rep") == wantRep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelizedMatchesIterative(t *testing.T) {
	// Property: for a random-ish comb network the single-pass levelised Eval
	// must agree with fixed-point iteration.
	b := NewBuilder("net")
	a := b.Input("a", 8)
	bb := b.Input("b", 8)
	w := make([]SigID, 6)
	w[0] = b.Wire("w0", 8)
	w[1] = b.Wire("w1", 8)
	w[2] = b.Wire("w2", 8)
	w[3] = b.Wire("w3", 8)
	w[4] = b.Wire("w4", 8)
	w[5] = b.Wire("w5", 8)
	y := b.Output("y", 8)
	// Assign in an order that is NOT topological.
	b.Assign(w[5], XorE(b.Ref(w[4]), b.Ref(w[3])))
	b.Assign(w[4], Add(b.Ref(w[2]), b.Ref(w[1])))
	b.Assign(w[3], AndE(b.Ref(w[0]), b.Ref(bb)))
	b.Assign(w[2], OrE(b.Ref(w[0]), C(0x0F, 8)))
	b.Assign(w[1], Sub(b.Ref(a), b.Ref(w[0])))
	b.Assign(w[0], Add(b.Ref(a), b.Ref(bb)))
	b.Assign(y, b.Ref(w[5]))
	m := MustCompile(mustBuild(t, b))
	f := func(av, bv uint8) bool {
		m.SetInput("a", uint64(av))
		m.SetInput("b", uint64(bv))
		m.Eval()
		lev := m.Peek("y")
		// Scramble wires then iterate to fixed point.
		for _, id := range w {
			m.vals[id] = 0xAA
		}
		m.EvalIterative()
		return m.Peek("y") == lev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVCDOutput(t *testing.T) {
	m := buildCounter(t)
	var buf bytes.Buffer
	v := m.AttachVCD(&buf, 1)
	m.SetInput("en", 1)
	for i := 0; i < 3; i++ {
		m.Tick()
	}
	v.Flush()
	out := buf.String()
	for _, want := range []string{"$timescale 1ns $end", "$var reg 8", "count", "$dumpvars", "#1", "#2", "#3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q in:\n%s", want, out)
		}
	}
}

func TestVCDToggle(t *testing.T) {
	m := buildCounter(t)
	var buf bytes.Buffer
	v := m.AttachVCD(&buf, 1)
	m.SetInput("en", 1)
	m.Tick()
	v.Flush()
	sizeOn := buf.Len()
	v.SetEnabled(false)
	for i := 0; i < 100; i++ {
		m.Tick()
	}
	v.Flush()
	if buf.Len() != sizeOn {
		t.Fatal("VCD grew while disabled")
	}
	v.SetEnabled(true)
	m.Tick()
	v.Flush()
	if buf.Len() == sizeOn {
		t.Fatal("VCD did not resume after re-enable")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := buildCounter(t)
	m.SetInput("en", 1)
	for i := 0; i < 37; i++ {
		m.Tick()
	}
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Run further, then restore.
	for i := 0; i < 10; i++ {
		m.Tick()
	}
	if err := m.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m.Peek("q") != 37 || m.Cycle() != 37 {
		t.Fatalf("restore: q=%d cycle=%d, want 37/37", m.Peek("q"), m.Cycle())
	}
	m.Tick()
	if m.Peek("q") != 38 {
		t.Fatalf("post-restore tick: q=%d", m.Peek("q"))
	}
}

func TestCheckpointWrongCircuit(t *testing.T) {
	m1 := buildCounter(t)
	var buf bytes.Buffer
	if err := m1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("other")
	r := b.Reg("r", 8, 0)
	o := b.Output("o", 8)
	b.Assign(o, b.Ref(r))
	b.Seq(r, b.Ref(r))
	m2 := MustCompile(mustBuild(t, b))
	if err := m2.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into different circuit succeeded")
	}
}

func TestCheckpointMemContents(t *testing.T) {
	b := NewBuilder("cm")
	we := b.Input("we", 1)
	wa := b.Input("wa", 4)
	wd := b.Input("wd", 16)
	ra := b.Input("ra", 4)
	rd := b.Output("rd", 16)
	mem := b.Mem("m", 16, 16)
	b.MemWr(mem, b.Ref(wa), b.Ref(wd), b.Ref(we))
	b.Assign(rd, MemRd(mem, b.Ref(ra), 16))
	m := MustCompile(mustBuild(t, b))
	m.SetInput("we", 1)
	m.SetInput("wa", 7)
	m.SetInput("wd", 1234)
	m.Tick()
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.PeekMem(mem, 7) != 0 {
		t.Fatal("reset did not clear mem")
	}
	if err := m.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m.PeekMem(mem, 7) != 1234 {
		t.Fatalf("mem[7] = %d after restore", m.PeekMem(mem, 7))
	}
}

func TestSignExtend(t *testing.T) {
	if SignExtend(0x80, 8) != -128 {
		t.Fatalf("SignExtend(0x80,8) = %d", SignExtend(0x80, 8))
	}
	if SignExtend(0x7F, 8) != 127 {
		t.Fatalf("SignExtend(0x7F,8) = %d", SignExtend(0x7F, 8))
	}
	if SignExtend(0xFFFF, 16) != -1 {
		t.Fatal("SignExtend 16-bit all-ones")
	}
}

func TestMaskWidths(t *testing.T) {
	if Mask(1) != 1 || Mask(8) != 0xFF || Mask(64) != ^uint64(0) {
		t.Fatal("Mask wrong")
	}
}

func BenchmarkTickCounter(b *testing.B) {
	m := buildCounter(b)
	m.SetInput("en", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
}

// BenchmarkAblationLevelizedVsIterative quantifies DESIGN.md §5.1: the
// levelised single-pass Eval vs naive fixed-point iteration.
func BenchmarkAblationLevelized(b *testing.B) {
	m := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetInputID(0, uint64(i))
		m.Eval()
	}
}

func BenchmarkAblationIterative(b *testing.B) {
	m := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetInputID(0, uint64(i))
		m.EvalIterative()
	}
}

// benchNet builds a deep comb chain declared in reverse order, the worst case
// for iterative evaluation.
func benchNet(tb testing.TB) *Model {
	b := NewBuilder("deep")
	in := b.Input("in", 32)
	const depth = 64
	ids := make([]SigID, depth)
	for i := 0; i < depth; i++ {
		ids[i] = b.Wire("w"+string(rune('A'+i%26))+string(rune('0'+i/26)), 32)
	}
	out := b.Output("out", 32)
	b.Assign(out, b.Ref(ids[depth-1]))
	for i := depth - 1; i > 0; i-- {
		b.Assign(ids[i], Add(b.Ref(ids[i-1]), C(uint64(i), 32)))
	}
	b.Assign(ids[0], XorE(b.Ref(in), C(0x5A5A5A5A, 32)))
	c, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return MustCompile(c)
}
