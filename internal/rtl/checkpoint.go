package rtl

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Checkpointing serialises a model's architectural state (cycle counter,
// signal values, memory contents) so a long RTL simulation can be suspended
// and resumed — one of the Verilator features the paper lists as exposed
// through the framework. The format embeds a structural fingerprint of the
// circuit so a checkpoint cannot be restored into a different design.

const ckptMagic = 0x67656d35 // "gem5"

// fingerprint hashes the circuit structure (names, widths, counts).
func (c *Circuit) fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, c.Name)
	for _, s := range c.Signals {
		fmt.Fprintf(h, "|%s:%d:%d", s.Name, s.Width, s.Kind)
	}
	for _, m := range c.Mems {
		fmt.Fprintf(h, "|%s:%dx%d", m.Name, m.Depth, m.Width)
	}
	fmt.Fprintf(h, "|%d:%d:%d", len(c.Combs), len(c.Seqs), len(c.MemWrites))
	return h.Sum64()
}

// SaveCheckpoint writes the model state to w.
func (m *Model) SaveCheckpoint(w io.Writer) error {
	hdr := []uint64{
		ckptMagic,
		m.c.fingerprint(),
		m.cycle,
		uint64(len(m.vals)),
		uint64(len(m.mems)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("rtl: checkpoint write: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, m.vals); err != nil {
		return fmt.Errorf("rtl: checkpoint write signals: %w", err)
	}
	for i, words := range m.mems {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(words))); err != nil {
			return fmt.Errorf("rtl: checkpoint write mem %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, words); err != nil {
			return fmt.Errorf("rtl: checkpoint write mem %d: %w", i, err)
		}
	}
	return nil
}

// RestoreCheckpoint reads model state previously written by SaveCheckpoint.
// It fails if the checkpoint was taken from a structurally different circuit.
func (m *Model) RestoreCheckpoint(r io.Reader) error {
	var hdr [5]uint64
	if err := binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("rtl: checkpoint read: %w", err)
	}
	if hdr[0] != ckptMagic {
		return fmt.Errorf("rtl: not a gem5rtl checkpoint (magic %#x)", hdr[0])
	}
	if hdr[1] != m.c.fingerprint() {
		return fmt.Errorf("rtl: checkpoint is for a different circuit")
	}
	if hdr[3] != uint64(len(m.vals)) || hdr[4] != uint64(len(m.mems)) {
		return fmt.Errorf("rtl: checkpoint shape mismatch")
	}
	m.cycle = hdr[2]
	if err := binary.Read(r, binary.LittleEndian, m.vals); err != nil {
		return fmt.Errorf("rtl: checkpoint read signals: %w", err)
	}
	for i := range m.mems {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("rtl: checkpoint read mem %d: %w", i, err)
		}
		if n != uint64(len(m.mems[i])) {
			return fmt.Errorf("rtl: checkpoint mem %d depth mismatch", i)
		}
		if err := binary.Read(r, binary.LittleEndian, m.mems[i]); err != nil {
			return fmt.Errorf("rtl: checkpoint read mem %d: %w", i, err)
		}
	}
	m.invalidate()
	m.Eval()
	// An attached VCD writer keeps a last-value snapshot for change
	// detection; realign it so the next dump emits deltas against the
	// restored state instead of the pre-restore one.
	if m.vcd != nil {
		m.vcd.Resync(m)
	}
	return nil
}
