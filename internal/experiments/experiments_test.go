package experiments

import (
	"context"
	"testing"

	"gem5rtl/internal/sim"
)

// quickDSE shrinks the sweep for CI-speed integration tests.
func quickDSE() DSEParams { return DSEParams{Scale: 64, Limit: 4 * sim.Second} }

func TestFigure5ProducesPhases(t *testing.T) {
	p := DefaultFig5Params()
	p.N = 60 // small but with visible phases
	p.SleepUs = 60
	p.IntervalCycles = 5000
	res, err := RunFigure5Ctx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 8 {
		t.Fatalf("only %d interval samples", len(res.Samples))
	}
	// PMU and gem5 must agree closely on IPC in every window (the paper
	// reports only negligible reset-loss discrepancies).
	var sleepWindows int
	for _, smp := range res.Samples {
		diff := smp.PMUIPC - smp.Gem5IPC
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.1 {
			t.Fatalf("PMU %.3f vs gem5 %.3f IPC at %.3f ms", smp.PMUIPC, smp.Gem5IPC, smp.TimeMs)
		}
		if smp.PMUIPC < 0.05 {
			sleepWindows++
		}
	}
	// The three 60 us sleeps must appear as near-zero-IPC windows.
	if sleepWindows < 3 {
		t.Fatalf("only %d near-zero IPC windows; sleeps not visible", sleepWindows)
	}
	// Total committed instructions: PMU within 1% of gem5 (reset losses).
	pmuT, gemT := float64(res.PMUTotalInsts), float64(res.Gem5TotalInsts)
	if pmuT > gemT || pmuT < 0.97*gemT {
		t.Fatalf("PMU total %v vs gem5 total %v", res.PMUTotalInsts, res.Gem5TotalInsts)
	}
}

func TestTable2OverheadOrdering(t *testing.T) {
	cells, err := Runner{Workers: 1}.Table2(context.Background(), []int{80}, 20)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]Table2Cell{}
	for _, c := range cells {
		byCfg[c.Config] = c
	}
	if byCfg["gem5"].Overhead != 1.0 {
		t.Fatalf("baseline overhead %.2f", byCfg["gem5"].Overhead)
	}
	if byCfg["gem5+PMU"].Overhead < 1.0 {
		t.Fatalf("PMU overhead %.2f below baseline", byCfg["gem5+PMU"].Overhead)
	}
	if byCfg["gem5+PMU+waveform"].Overhead <= byCfg["gem5+PMU"].Overhead {
		t.Fatalf("waveform overhead %.2f not above PMU %.2f",
			byCfg["gem5+PMU+waveform"].Overhead, byCfg["gem5+PMU"].Overhead)
	}
}

func TestDSESinglePointShapes(t *testing.T) {
	p := quickDSE()
	// Latency-bound at 1 in-flight: DDR4-1ch far from ideal.
	ideal1, err := Run(context.Background(), p.Spec("sanity3", 1, "ideal", 1))
	if err != nil {
		t.Fatal(err)
	}
	ddr1, err := Run(context.Background(), p.Spec("sanity3", 1, "DDR4-1ch", 1))
	if err != nil {
		t.Fatal(err)
	}
	if perf := float64(ideal1) / float64(ddr1); perf > 0.5 {
		t.Fatalf("1-inflight DDR4-1ch perf %.2f, want << 1", perf)
	}
	// At 64 in-flight, HBM approaches ideal for a single accelerator.
	ideal64, err := Run(context.Background(), p.Spec("sanity3", 1, "ideal", 64))
	if err != nil {
		t.Fatal(err)
	}
	hbm64, err := Run(context.Background(), p.Spec("sanity3", 1, "HBM", 64))
	if err != nil {
		t.Fatal(err)
	}
	if perf := float64(ideal64) / float64(hbm64); perf < 0.6 {
		t.Fatalf("64-inflight HBM perf %.2f, want near 1", perf)
	}
	// And HBM beats DDR4-1ch.
	ddr64, err := Run(context.Background(), p.Spec("sanity3", 1, "DDR4-1ch", 64))
	if err != nil {
		t.Fatal(err)
	}
	if hbm64 >= ddr64 {
		t.Fatalf("HBM (%d) not faster than DDR4-1ch (%d)", hbm64, ddr64)
	}
}

func TestDSEMoreAcceleratorsMoreContention(t *testing.T) {
	p := quickDSE()
	perf := func(n int) float64 {
		ideal, err := Run(context.Background(), p.Spec("sanity3", n, "ideal", 64))
		if err != nil {
			t.Fatal(err)
		}
		ddr, err := Run(context.Background(), p.Spec("sanity3", n, "DDR4-1ch", 64))
		if err != nil {
			t.Fatal(err)
		}
		return float64(ideal) / float64(ddr)
	}
	p1, p4 := perf(1), perf(4)
	if p4 >= p1 {
		t.Fatalf("4-DLA perf %.3f not below 1-DLA perf %.3f on DDR4-1ch", p4, p1)
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Runner{Workers: 1}.Table3(context.Background(), DSEParams{Scale: 64, Limit: 4 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Config == "standalone-rtl" {
			if r.Overhead != 1.0 {
				t.Fatalf("standalone overhead %.2f", r.Overhead)
			}
			continue
		}
		if r.Overhead < 1.0 {
			t.Fatalf("%s/%s overhead %.2f below standalone", r.Config, r.Workload, r.Overhead)
		}
	}
}
