package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// runGoldenEntry is one pinned point of testdata/run_golden.json, captured
// from the pre-refactor RunPoint/RunPointWarm/RunPointGuarded entry points
// before they were deleted. The three tick columns were equal then; the
// option-based Run must reproduce all three.
type runGoldenEntry struct {
	Spec         string   `json:"spec"`
	ColdTicks    sim.Tick `json:"cold_ticks"`
	WarmTicks    sim.Tick `json:"warm_ticks"`
	GuardedTicks sim.Tick `json:"guarded_ticks"`
}

// parseSpecString inverts RunSpec.String() for the golden file's keys.
func parseSpecString(t *testing.T, s string) RunSpec {
	t.Helper()
	var spec RunSpec
	if _, err := fmt.Sscanf(s, "%s n=%d %s inflight=%d scale=%d",
		&spec.Workload, &spec.NVDLAs, &spec.Memory, &spec.Inflight, &spec.Scale); err != nil {
		t.Fatalf("unparseable golden spec %q: %v", s, err)
	}
	spec.Limit = 8 * sim.Second
	return spec
}

// TestRunMatchesLegacyGolden pins the unified Run entry point against results
// captured from the deleted RunPoint, RunPointWarm and RunPointGuarded
// wrappers: the bare run, the warm-start option (both the populating pass and
// the restoring pass) and the watchdog option must each reproduce the legacy
// tick counts bit-identically.
func TestRunMatchesLegacyGolden(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("testdata", "run_golden.json"))
	if err != nil {
		t.Fatalf("missing legacy golden file: %v", err)
	}
	var want []runGoldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond

	for _, entry := range want {
		spec := parseSpecString(t, entry.Spec)

		port.SetPacketIDForTest(0)
		cold, err := Run(ctx, spec)
		if err != nil {
			t.Fatalf("%v: cold: %v", spec, err)
		}
		if cold != entry.ColdTicks {
			t.Errorf("%v: cold ticks %d, legacy RunPoint gave %d", spec, cold, entry.ColdTicks)
		}

		cache := NewCheckpointCache("")
		port.SetPacketIDForTest(0)
		populate, err := Run(ctx, spec, WithWarmStart(warmup, cache))
		if err != nil {
			t.Fatalf("%v: warm populate: %v", spec, err)
		}
		port.SetPacketIDForTest(0)
		restore, err := Run(ctx, spec, WithWarmStart(warmup, cache))
		if err != nil {
			t.Fatalf("%v: warm restore: %v", spec, err)
		}
		if populate != entry.WarmTicks || restore != entry.WarmTicks {
			t.Errorf("%v: warm ticks populate=%d restore=%d, legacy RunPointWarm gave %d",
				spec, populate, restore, entry.WarmTicks)
		}

		port.SetPacketIDForTest(0)
		guarded, err := Run(ctx, spec, WithWatchdog(guard.Config{}))
		if err != nil {
			t.Fatalf("%v: guarded: %v", spec, err)
		}
		if guarded != entry.GuardedTicks {
			t.Errorf("%v: guarded ticks %d, legacy RunPointGuarded gave %d",
				spec, guarded, entry.GuardedTicks)
		}
	}
}

// TestRunOptionComposition exercises the full warm × guard × observability
// matrix on one point: every option subset must produce the same tick count
// as the bare run, warm-start and observability must also preserve the bare
// run's state hash, and every combination must hash identically across its
// own passes (the warm restore-equivalence witness). Guarded combinations are
// excluded from the bare-hash comparison only because the watchdog's check
// event consumes serialised queue sequence/dispatch counters (see
// WithWatchdog); the simulated machine — and hence the tick count — is
// unchanged.
func TestRunOptionComposition(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 16)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond

	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)

	port.SetPacketIDForTest(0)
	var refHash uint64
	refTicks, err := Run(ctx, spec, WithStateHash(&refHash))
	if err != nil {
		t.Fatal(err)
	}
	if refHash == 0 {
		t.Fatal("reference state hash not populated")
	}

	for _, warm := range []bool{false, true} {
		for _, guarded := range []bool{false, true} {
			for _, observed := range []bool{false, true} {
				name := fmt.Sprintf("warm=%v/guard=%v/obs=%v", warm, guarded, observed)
				t.Run(name, func(t *testing.T) {
					var cache *CheckpointCache
					if warm {
						cache = NewCheckpointCache("")
					}
					var passHash [2]uint64
					// Two passes so the warm configurations cover both the
					// populating (miss) and restoring (hit) paths.
					for pass := 0; pass < 2; pass++ {
						var opts []Option
						if warm {
							opts = append(opts, WithWarmStart(warmup, cache))
						}
						if guarded {
							opts = append(opts, WithWatchdog(guard.Config{}))
						}
						var samples []stats.Sample
						if observed {
							opts = append(opts, WithTracer(obs.Config{}),
								WithStats(func(s []stats.Sample) { samples = s }))
						}
						var hash uint64
						opts = append(opts, WithStateHash(&hash))

						port.SetPacketIDForTest(0)
						ticks, err := Run(ctx, spec, opts...)
						if err != nil {
							t.Fatalf("pass %d: %v", pass, err)
						}
						if ticks != refTicks {
							t.Errorf("pass %d: ticks %d, bare run gave %d", pass, ticks, refTicks)
						}
						passHash[pass] = hash
						if !guarded && hash != refHash {
							t.Errorf("pass %d: state hash %016x, bare run gave %016x", pass, hash, refHash)
						}
						if observed && len(samples) == 0 {
							t.Errorf("pass %d: WithStats sink received no samples", pass)
						}
					}
					if passHash[0] != passHash[1] {
						t.Errorf("state hash diverged between passes: %016x vs %016x",
							passHash[0], passHash[1])
					}
					if warm {
						cs := cache.Stats()
						if cs.Misses != 1 || cs.Hits != 1 {
							t.Errorf("cache stats %+v, want exactly one miss then one hit", cs)
						}
					}
				})
			}
		}
	}
}

// TestRunCancelledContext checks that a pre-cancelled context aborts before
// any simulation work.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 16)
	if _, err := Run(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCacheStatsStale checks the stale counter: an unrestorable snapshot is
// dropped, counted, and the point falls back to a cold populate.
func TestCacheStatsStale(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 16)
	const warmup = 1 * sim.Microsecond
	cache := NewCheckpointCache("")
	cache.store(spec, warmup, []byte("garbage"))
	if _, err := Run(context.Background(), spec, WithWarmStart(warmup, cache)); err != nil {
		t.Fatal(err)
	}
	cs := cache.Stats()
	if cs.Stale != 1 || cs.Hits != 0 {
		t.Errorf("cache stats %+v, want one stale drop and no hits", cs)
	}
}
