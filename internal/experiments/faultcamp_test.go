package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/sim"
)

// campSpec is the small deterministic point every fault-campaign test runs.
func campSpec() RunSpec {
	return RunSpec{Workload: "sanity3", NVDLAs: 1, Memory: "ideal",
		Inflight: 64, Scale: 64, Limit: 2 * sim.Second}
}

// campOutputs computes the absolute output regions for campSpec, mirroring
// what FaultCampaign derives before classifying.
func campOutputs(t *testing.T) []memRegion {
	t.Helper()
	tr, err := buildTrace("sanity3", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, outs := traceRegions(tr)
	if len(outs) == 0 {
		t.Fatal("sanity3 trace has no output regions")
	}
	abs := make([]memRegion, len(outs))
	for i, reg := range outs {
		abs[i] = memRegion{uint64(1)<<32 + reg.addr, reg.size}
	}
	return abs
}

// refRun executes the fault-free reference once for the targeted tests.
func refRun(t *testing.T, outs []memRegion) faultRunResult {
	t.Helper()
	ref, err := faultRun(context.Background(), FaultCampaign{Spec: campSpec()}, nil, outs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.hang != nil {
		t.Fatalf("reference run hung: %s", ref.hang.Reason)
	}
	return ref
}

// A dropped response wedges the accelerator's transaction table; the watchdog
// reaps it and the injection classifies as hung, not as a crashed campaign.
func TestFaultDropRespClassifiesHung(t *testing.T) {
	outs := campOutputs(t)
	ref := refRun(t, outs)
	f := guard.Fault{Kind: guard.DropResp, Link: 0, PktIndex: 0}
	run, err := faultRun(context.Background(), FaultCampaign{Spec: campSpec()}, &f, outs)
	if err != nil {
		t.Fatal(err)
	}
	outcome, detail := classify(run, ref)
	if outcome != guard.Hung {
		t.Fatalf("drop-resp outcome = %v (%s), want hung", outcome, detail)
	}
	if run.hang == nil || run.end >= campSpec().Limit {
		t.Fatalf("hang not reaped early: end = %d", run.end)
	}
}

// A flipped bit in an output write changes the architectural result: the
// signature diverges from the reference and the injection is corrupted.
func TestFaultWritePayloadFlipClassifiesCorrupted(t *testing.T) {
	outs := campOutputs(t)
	ref := refRun(t, outs)
	f := guard.Fault{Kind: guard.WritePayloadFlip, Link: 0, PktIndex: 0, Byte: 5, Bit: 2}
	run, err := faultRun(context.Background(), FaultCampaign{Spec: campSpec()}, &f, outs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.fired {
		t.Fatal("write fault never reached")
	}
	outcome, _ := classify(run, ref)
	if outcome != guard.Corrupted {
		t.Fatalf("write-payload-flip outcome = %v, want corrupted", outcome)
	}
}

// The behavioural accelerator model consumes read responses only for pacing,
// not data, so a read-payload flip must classify as masked.
func TestFaultReadPayloadFlipClassifiesMasked(t *testing.T) {
	outs := campOutputs(t)
	ref := refRun(t, outs)
	f := guard.Fault{Kind: guard.ReadPayloadFlip, Link: 0, PktIndex: 0, Byte: 0, Bit: 7}
	run, err := faultRun(context.Background(), FaultCampaign{Spec: campSpec()}, &f, outs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.fired {
		t.Fatal("read fault never reached")
	}
	outcome, _ := classify(run, ref)
	if outcome != guard.Masked {
		t.Fatalf("read-payload-flip outcome = %v, want masked", outcome)
	}
}

// A fault indexed far beyond the traffic never fires and reports itself as
// such instead of silently counting as masked-by-luck.
func TestFaultUnreachedReportsNeverReached(t *testing.T) {
	outs := campOutputs(t)
	ref := refRun(t, outs)
	f := guard.Fault{Kind: guard.DropResp, Link: 0, PktIndex: 1 << 40}
	run, err := faultRun(context.Background(), FaultCampaign{Spec: campSpec()}, &f, outs)
	if err != nil {
		t.Fatal(err)
	}
	outcome, detail := classify(run, ref)
	if outcome != guard.Masked || !strings.Contains(detail, "never reached") {
		t.Fatalf("unreached fault = %v (%q), want masked/never reached", outcome, detail)
	}
}

// The tentpole determinism guarantee: same seed, different worker counts,
// byte-identical classification table and deeply equal results.
func TestFaultCampaignDeterministic(t *testing.T) {
	c := FaultCampaign{Spec: campSpec(), Seed: 7, Count: 10}
	a, err := Runner{Workers: 4}.FaultCampaign(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Workers: 1}.FaultCampaign(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged across worker counts:\n%+v\nvs\n%+v", a, b)
	}
	if FormatFaultTable(a) != FormatFaultTable(b) {
		t.Fatal("classification tables differ")
	}
	for _, r := range a {
		if r.Err != nil {
			t.Fatalf("fault %d errored: %v", r.Index, r.Err)
		}
	}
	// Fault i is seed-derived independently of Count: a shorter campaign is a
	// strict prefix of a longer one.
	short := FaultCampaign{Spec: campSpec(), Seed: 7, Count: 4}
	s, err := Runner{Workers: 2}.FaultCampaign(context.Background(), short)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, a[:4]) {
		t.Fatal("count-4 campaign is not a prefix of the count-10 campaign")
	}
}

func TestFaultCampaignRejectsNoAccelerators(t *testing.T) {
	_, err := Runner{}.FaultCampaign(context.Background(), FaultCampaign{
		Spec: RunSpec{Workload: "sanity3", Memory: "ideal", Scale: 64, Limit: sim.Second}})
	if err == nil || !strings.Contains(err.Error(), "at least one accelerator") {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatFaultTable(t *testing.T) {
	results := []FaultResult{
		{Fault: guard.Fault{Kind: guard.DropResp}, Outcome: guard.Hung},
		{Fault: guard.Fault{Kind: guard.WritePayloadFlip}, Outcome: guard.Corrupted},
		{Fault: guard.Fault{Kind: guard.WritePayloadFlip}, Outcome: guard.Masked},
		{Fault: guard.Fault{Kind: guard.DRAMBitFlip}, Err: context.Canceled},
	}
	table := FormatFaultTable(results)
	for _, want := range []string{"kind", "drop-resp", "write-payload-flip", "errors: 1"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "dram-bit-flip") {
		t.Fatalf("errored-only kind should not appear as a row:\n%s", table)
	}
}

// The PMU campaign completes, classifies every injection, and is seed-stable.
func TestPMUFaultCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("PMU campaign runs several guest programs")
	}
	c := PMUCampaign{Seed: 3, Count: 4}
	a, err := Runner{Workers: 2}.PMUFaultCampaign(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Workers: 1}.PMUFaultCampaign(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed diverged across worker counts")
	}
	for _, r := range a {
		if r.Err != nil {
			t.Fatalf("fault %d errored: %v", r.Index, r.Err)
		}
		if r.Fault.Kind != guard.RTLStateFlip {
			t.Fatalf("fault %d kind = %v", r.Index, r.Fault.Kind)
		}
	}
}

// RunPointGuarded (the executor Runner.Guard selects) is transparent on a
// healthy point: same completion as RunPoint, no spurious trip.
func TestRunPointGuardedCleanRun(t *testing.T) {
	spec := campSpec()
	plain, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Run(context.Background(), spec, WithWatchdog(guard.Config{}))
	if err != nil {
		t.Fatalf("clean guarded point errored: %v", err)
	}
	if guarded != plain {
		t.Fatalf("guarded run finished at %d, plain at %d", guarded, plain)
	}
}
