package experiments

import (
	"context"
	"fmt"
	"time"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/trace"
)

// InflightSweep is the x-axis of Figures 6 and 7.
var InflightSweep = []int{1, 4, 8, 16, 32, 64, 128, 240}

// NVDLACounts is the per-subfigure accelerator count.
var NVDLACounts = []int{1, 2, 4}

// DSEPoint is one cell of the design-space exploration.
type DSEPoint struct {
	Workload string
	NVDLAs   int
	Memory   string // includes "ideal" for the baseline
	Inflight int
	// Ticks is the completion time of the slowest accelerator.
	Ticks sim.Tick
	// Perf is Ticks(ideal at same inflight & count) / Ticks — the figures'
	// "performance normalised to ideal memory".
	Perf float64
}

// DSEParams scales the experiment.
type DSEParams struct {
	// Scale divides the trace footprints (1 = paper-sized synthetic layers;
	// larger values shrink runs proportionally — ratios are preserved since
	// baseline and subject scale together).
	Scale int
	// Limit bounds one run's simulated time.
	Limit sim.Tick
	// RTLEngine selects the RTL simulation engine for every point of the
	// sweep (empty = production default). Results are engine-independent.
	RTLEngine string
	// Shards selects the sharded simulation engine for every point of the
	// sweep (0/1 = serial). Results are shard-count-independent.
	Shards int
}

// DefaultDSEParams returns the standard scaled configuration.
func DefaultDSEParams() DSEParams {
	return DSEParams{Scale: 8, Limit: 4 * sim.Second}
}

// buildTrace regenerates the named workload with its footprint divided by
// scale (ratios between baseline and subject runs are unaffected).
func buildTrace(workload string, base uint64, scale int) (*trace.Trace, error) {
	return trace.Scaled(workload, base, scale)
}

// DSESpecs builds the full Figure 6/7 grid for workload in output order:
// for each accelerator count and in-flight cap, the ideal baseline followed
// by each memory technology.
func DSESpecs(workload string, p DSEParams) []RunSpec {
	var specs []RunSpec
	for _, n := range NVDLACounts {
		for _, inflight := range InflightSweep {
			specs = append(specs, p.Spec(workload, n, "ideal", inflight))
			for _, tech := range memTechs() {
				specs = append(specs, p.Spec(workload, n, tech, inflight))
			}
		}
	}
	return specs
}

// DSEFigure reproduces Figure 6 (workload "googlenet") or Figure 7
// (workload "sanity3"): the full sweep over accelerator counts, memory
// technologies and in-flight caps, normalised per (count, inflight) to the
// ideal-memory run. Points come back in grid order regardless of the
// runner's worker count, and each ideal baseline is simulated exactly once
// and shared by the five technology points it normalises.
func (r Runner) DSEFigure(ctx context.Context, workload string, p DSEParams) ([]DSEPoint, error) {
	results, err := r.Sweep(ctx, DSESpecs(workload, p))
	if err != nil {
		return nil, err
	}
	points := make([]DSEPoint, 0, len(results))
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("%v: %w", res.Spec, res.Err)
		}
		points = append(points, DSEPoint{
			Workload: res.Spec.Workload, NVDLAs: res.Spec.NVDLAs,
			Memory: res.Spec.Memory, Inflight: res.Spec.Inflight,
			Ticks: res.Ticks, Perf: res.Perf,
		})
	}
	return points, nil
}

func memTechs() []string {
	return []string{"DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"}
}

// Table3Row is one configuration of the NVDLA simulation-time study.
type Table3Row struct {
	Config   string
	Workload string
	HostTime time.Duration
	// Overhead is normalised to the standalone RTL-model run.
	Overhead float64
}

// Table3 reproduces Table 3: host wall-clock of (a) the standalone
// accelerator model with an ideal zero-latency memory loop (the paper's
// standalone Verilator run with NVIDIA's nvdla.cpp wrapper), (b) the
// full-system simulation with perfect memory, and (c) with DDR4-4ch —
// each running sanity3 and googlenet once. Because the rows are host-time
// measurements, run with Workers = 1 when the absolute overheads matter;
// concurrent workers share host cores and inflate each other's times.
func (r Runner) Table3(ctx context.Context, p DSEParams) ([]Table3Row, error) {
	var rows []Table3Row
	for _, wl := range []string{"sanity3", "googlenet"} {
		standalone, err := runStandalone(ctx, wl, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Config: "standalone-rtl", Workload: wl,
			HostTime: standalone, Overhead: 1.0})
		results, err := r.Sweep(ctx, []RunSpec{
			p.Spec(wl, 1, "ideal", 240),
			p.Spec(wl, 1, "DDR4-4ch", 240),
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if res.Err != nil {
				return nil, fmt.Errorf("%v: %w", res.Spec, res.Err)
			}
			name := "gem5+NVDLA+perfect-memory"
			if !res.Spec.isIdeal() {
				name = "gem5+NVDLA+DDR4"
			}
			rows = append(rows, Table3Row{Config: name, Workload: wl,
				HostTime: res.HostTime,
				Overhead: float64(res.HostTime) / float64(standalone)})
		}
	}
	return rows, nil
}

// RunStandaloneOnce is the exported single-run entry for benchmarks.
func RunStandaloneOnce(workload string, p DSEParams) (time.Duration, error) {
	return runStandalone(context.Background(), workload, p)
}

// runStandalone ticks the accelerator wrapper directly against a
// zero-latency memory, like running the Verilated model with its bundled
// testbench wrapper: no SoC, no trace-into-memory load phase.
func runStandalone(ctx context.Context, workload string, p DSEParams) (time.Duration, error) {
	tr, err := trace.Scaled(workload, 0, p.Scale)
	if err != nil {
		return 0, err
	}
	return trace.RunStandaloneCtx(ctx, tr)
}
