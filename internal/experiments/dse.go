package experiments

import (
	"fmt"
	"time"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/trace"
)

// InflightSweep is the x-axis of Figures 6 and 7.
var InflightSweep = []int{1, 4, 8, 16, 32, 64, 128, 240}

// NVDLACounts is the per-subfigure accelerator count.
var NVDLACounts = []int{1, 2, 4}

// DSEPoint is one cell of the design-space exploration.
type DSEPoint struct {
	Workload string
	NVDLAs   int
	Memory   string // includes "ideal" for the baseline
	Inflight int
	// Ticks is the completion time of the slowest accelerator.
	Ticks sim.Tick
	// Perf is Ticks(ideal at same inflight & count) / Ticks — the figures'
	// "performance normalised to ideal memory".
	Perf float64
}

// DSEParams scales the experiment.
type DSEParams struct {
	// Scale divides the trace footprints (1 = paper-sized synthetic layers;
	// larger values shrink runs proportionally — ratios are preserved since
	// baseline and subject scale together).
	Scale int
	// Limit bounds one run's simulated time.
	Limit sim.Tick
}

// DefaultDSEParams returns the standard scaled configuration.
func DefaultDSEParams() DSEParams {
	return DSEParams{Scale: 8, Limit: 4 * sim.Second}
}

// buildTrace regenerates the named workload with its footprint divided by
// scale (ratios between baseline and subject runs are unaffected).
func buildTrace(workload string, base uint64, scale int) (*trace.Trace, error) {
	return trace.Scaled(workload, base, scale)
}

// RunDSEPoint measures one configuration: n accelerator instances, each
// running its own copy of the workload trace (the paper's setup), on the
// named memory technology with the given in-flight cap.
func RunDSEPoint(workload string, nDLA int, memory string, inflight int, p DSEParams) (sim.Tick, error) {
	cfg := soc.DefaultConfig()
	cfg.Cores = 1 // host cores idle during accelerator runs; keep one for realism
	cfg.Memory = memory
	cfg.NVDLAs = nDLA
	cfg.NVDLAMaxInflight = inflight
	s, err := soc.Build(cfg)
	if err != nil {
		return 0, err
	}
	for i := 0; i < nDLA; i++ {
		s.NVDLAs[i].Start()
		tr, err := buildTrace(workload, uint64(i+1)<<32, p.Scale)
		if err != nil {
			return 0, err
		}
		s.PlayTrace(i, tr)
	}
	done, err := s.RunUntilNVDLAsDone(p.Limit)
	if err != nil {
		return 0, err
	}
	return done, nil
}

// RunDSEFigure reproduces Figure 6 (workload "googlenet") or Figure 7
// (workload "sanity3"): the full sweep over accelerator counts, memory
// technologies and in-flight caps, normalised per (count, inflight) to the
// ideal-memory run. Progress lines go through report (may be nil).
func RunDSEFigure(workload string, p DSEParams, report func(string)) ([]DSEPoint, error) {
	say := func(format string, args ...any) {
		if report != nil {
			report(fmt.Sprintf(format, args...))
		}
	}
	var points []DSEPoint
	for _, n := range NVDLACounts {
		for _, inflight := range InflightSweep {
			idealT, err := RunDSEPoint(workload, n, "ideal", inflight, p)
			if err != nil {
				return nil, fmt.Errorf("ideal baseline (n=%d if=%d): %w", n, inflight, err)
			}
			points = append(points, DSEPoint{
				Workload: workload, NVDLAs: n, Memory: "ideal",
				Inflight: inflight, Ticks: idealT, Perf: 1,
			})
			for _, tech := range memTechs() {
				start := time.Now()
				t, err := RunDSEPoint(workload, n, tech, inflight, p)
				if err != nil {
					return nil, fmt.Errorf("%s n=%d if=%d: %w", tech, n, inflight, err)
				}
				points = append(points, DSEPoint{
					Workload: workload, NVDLAs: n, Memory: tech,
					Inflight: inflight, Ticks: t,
					Perf: float64(idealT) / float64(t),
				})
				say("%s n=%d inflight=%3d %-9s perf=%.3f (%s host)",
					workload, n, inflight, tech, float64(idealT)/float64(t),
					time.Since(start).Round(time.Millisecond))
			}
		}
	}
	return points, nil
}

func memTechs() []string {
	return []string{"DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"}
}

// Table3Row is one configuration of the NVDLA simulation-time study.
type Table3Row struct {
	Config   string
	Workload string
	HostTime time.Duration
	// Overhead is normalised to the standalone RTL-model run.
	Overhead float64
}

// RunTable3 reproduces Table 3: host wall-clock of (a) the standalone
// accelerator model with an ideal zero-latency memory loop (the paper's
// standalone Verilator run with NVIDIA's nvdla.cpp wrapper), (b) the
// full-system simulation with perfect memory, and (c) with DDR4-4ch —
// each running sanity3 and googlenet once.
func RunTable3(p DSEParams) ([]Table3Row, error) {
	var rows []Table3Row
	for _, wl := range []string{"sanity3", "googlenet"} {
		standalone, err := runStandalone(wl, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Config: "standalone-rtl", Workload: wl,
			HostTime: standalone, Overhead: 1.0})
		for _, memName := range []string{"ideal", "DDR4-4ch"} {
			start := time.Now()
			if _, err := RunDSEPoint(wl, 1, memName, 240, p); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			name := "gem5+NVDLA+perfect-memory"
			if memName != "ideal" {
				name = "gem5+NVDLA+DDR4"
			}
			rows = append(rows, Table3Row{Config: name, Workload: wl,
				HostTime: elapsed, Overhead: float64(elapsed) / float64(standalone)})
		}
	}
	return rows, nil
}

// RunStandaloneOnce is the exported single-run entry for benchmarks.
func RunStandaloneOnce(workload string, p DSEParams) (time.Duration, error) {
	return runStandalone(workload, p)
}

// runStandalone ticks the accelerator wrapper directly against a
// zero-latency memory, like running the Verilated model with its bundled
// testbench wrapper: no SoC, no trace-into-memory load phase.
func runStandalone(workload string, p DSEParams) (time.Duration, error) {
	tr, err := trace.Scaled(workload, 0, p.Scale)
	if err != nil {
		return 0, err
	}
	return trace.RunStandalone(tr), nil
}
