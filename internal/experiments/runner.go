package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/sim"
)

// RunSpec fully identifies one independent simulation point of the design
// space: which workload runs on how many accelerators, against which memory
// technology, under which in-flight cap, at which trace scale and simulated
// time limit. Specs are comparable, so they double as cache keys for the
// ideal-memory baselines that normalise the figures.
type RunSpec struct {
	Workload string
	NVDLAs   int
	Memory   string // "ideal" is the normalisation baseline
	Inflight int
	// Scale divides the trace footprints (see DSEParams.Scale).
	Scale int
	// Limit bounds one run's simulated time.
	Limit sim.Tick
}

// String renders the spec for progress lines and error messages.
func (s RunSpec) String() string {
	return fmt.Sprintf("%s n=%d %s inflight=%d scale=%d", s.Workload, s.NVDLAs, s.Memory, s.Inflight, s.Scale)
}

// baseline returns the ideal-memory spec this spec is normalised against.
func (s RunSpec) baseline() RunSpec {
	s.Memory = "ideal"
	return s
}

// isIdeal reports whether the spec is itself a normalisation baseline.
func (s RunSpec) isIdeal() bool { return s.Memory == "" || s.Memory == "ideal" }

// Spec converts a DSEParams-era positional call into a RunSpec.
func (p DSEParams) Spec(workload string, nDLA int, memory string, inflight int) RunSpec {
	return RunSpec{Workload: workload, NVDLAs: nDLA, Memory: memory,
		Inflight: inflight, Scale: p.Scale, Limit: p.Limit}
}

// Result is the outcome of one RunSpec.
type Result struct {
	Spec RunSpec
	// Ticks is the completion time of the slowest accelerator.
	Ticks sim.Tick
	// Perf is Ticks(ideal baseline) / Ticks — the figures' "performance
	// normalised to ideal memory". 1 for ideal points, 0 when Err is set.
	Perf float64
	// HostTime is the wall-clock cost of this point's own simulation
	// (baseline lookups for normalisation are excluded).
	HostTime time.Duration
	// Err records a per-point failure: a build/trace error, ctx.Err() on
	// cancellation, or a recovered panic from a diverging simulation. The
	// rest of the sweep is unaffected.
	Err error
}

// RunPoint executes one simulation point: n accelerator instances, each
// running its own copy of the workload trace (the paper's setup), on the
// named memory technology with the given in-flight cap. Cancelling ctx
// aborts the event loop promptly (a periodic check event watches the
// context) and returns ctx.Err().
func RunPoint(ctx context.Context, spec RunSpec) (sim.Tick, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s, err := buildPoint(spec)
	if err != nil {
		return 0, err
	}
	done, err := s.RunUntilNVDLAsDoneCtx(ctx, spec.Limit)
	obs.CountEvents(s.Queue.Dispatched())
	return done, err
}

// Runner executes sweeps of independent simulation points on a worker pool.
// The zero value is a valid sequential runner (Workers <= 0 selects
// runtime.NumCPU(); set Workers to 1 for strictly sequential execution and
// faithful per-point host times).
type Runner struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
	// Report receives per-point progress lines (may be nil). It is called
	// from worker goroutines and must be safe for concurrent use.
	Report func(string)
	// Run overrides the per-point executor; nil means RunPoint. Tests use
	// this to inject failures and count baseline executions.
	Run func(ctx context.Context, spec RunSpec) (sim.Tick, error)
	// Warmup, together with Ckpts, turns the sweep into a warm-start engine:
	// each point's first execution snapshots the full system at the Warmup
	// tick, and every later execution of the same point (a repeated sweep, or
	// a snapshot persisted by a previous process) restores the snapshot and
	// simulates only the remainder. Results are identical either way — the
	// soc restore-equivalence property guarantees bit-identical statistics.
	// Ignored when Run is set or Ckpts is nil.
	Warmup sim.Tick
	// Ckpts is the snapshot store for warm starts; nil disables them.
	Ckpts *CheckpointCache
	// Guard, when non-nil, attaches a liveness watchdog with this
	// configuration to every cold simulation point, so a hung point
	// surfaces as a *guard.HangError in Result.Err instead of stalling
	// the sweep until Limit. Ignored when Run overrides the executor or
	// the warm-start path is active (watchdog events are host-side and
	// not snapshot-safe).
	Guard *guard.Config
	// Monitor, when non-nil, samples host runtime metrics (wall time,
	// goroutines, heap, aggregate simulated events/sec) for the duration of
	// each Sweep or ForEach. The caller owns the monitor's output writer.
	Monitor *obs.HostMonitor
}

// executor resolves the per-point run function: an explicit override, the
// warm-start path, or the plain cold RunPoint.
func (r Runner) executor() func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
	if r.Run != nil {
		return r.Run
	}
	if r.Warmup > 0 && r.Ckpts != nil {
		warmup, cache := r.Warmup, r.Ckpts
		return func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
			return RunPointWarm(ctx, spec, warmup, cache)
		}
	}
	if r.Guard != nil {
		gcfg := *r.Guard
		return func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
			return RunPointGuarded(ctx, spec, gcfg)
		}
	}
	return RunPoint
}

// panicError wraps a recovered panic with the failing work item and the
// goroutine stack at the recovery point, so a diverging simulation deep in a
// sweep is diagnosable from Result.Err alone.
func panicError(what string, p any) error {
	return fmt.Errorf("experiments: %s panicked: %v\n%s", what, p, debug.Stack())
}

// poolSize resolves the effective worker count for n queued items.
func (r Runner) poolSize(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep runs every spec and returns one Result per spec, in input order
// regardless of completion order. Individual failures (including recovered
// panics from diverging simulations) are reported in Result.Err without
// aborting the sweep; the returned error is non-nil only when ctx ends
// before the sweep completes, in which case it is ctx.Err() and unstarted
// points carry it in their Result.Err.
//
// Ideal-memory baselines are deduplicated through a keyed cache: each
// distinct (workload, count, inflight, scale, limit) ideal run is simulated
// once per Sweep and shared by the ideal point itself and every technology
// point normalised against it.
func (r Runner) Sweep(ctx context.Context, specs []RunSpec) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run := r.executor()
	if r.Monitor != nil {
		r.Monitor.Start()
		defer r.Monitor.Stop()
	}
	results := make([]Result, len(specs))
	cache := &baselineCache{run: run, entries: map[RunSpec]*baselineEntry{}}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.poolSize(len(specs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(ctx, specs[i], cache)
			}
		}()
	}
	var unfed []int
	for i := range specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			unfed = append(unfed, i)
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for _, i := range unfed {
			results[i] = Result{Spec: specs[i], Err: err}
		}
		return results, err
	}
	return results, nil
}

// runOne executes a single point with panic recovery and normalisation.
func (r Runner) runOne(ctx context.Context, spec RunSpec, cache *baselineCache) (res Result) {
	res.Spec = spec
	defer func() {
		if p := recover(); p != nil {
			res.Ticks, res.Perf = 0, 0
			res.Err = panicError(spec.String(), p)
		}
		r.say(&res)
	}()
	if spec.isIdeal() {
		res.Ticks, res.HostTime, res.Err = cache.get(ctx, spec.baseline())
		if res.Err == nil {
			res.Perf = 1
		}
		return res
	}
	start := time.Now()
	t, err := cache.run(ctx, spec)
	res.HostTime = time.Since(start)
	if err != nil {
		res.Err = err
		return res
	}
	res.Ticks = t
	ideal, _, err := cache.get(ctx, spec.baseline())
	if err != nil {
		res.Err = fmt.Errorf("ideal baseline for %v: %w", spec, err)
		return res
	}
	res.Perf = float64(ideal) / float64(t)
	return res
}

// say emits one progress line for a finished point.
func (r Runner) say(res *Result) {
	if r.Report == nil {
		return
	}
	if res.Err != nil {
		r.Report(fmt.Sprintf("%s n=%d inflight=%3d %-9s ERROR: %v",
			res.Spec.Workload, res.Spec.NVDLAs, res.Spec.Inflight, res.Spec.Memory, res.Err))
		return
	}
	r.Report(fmt.Sprintf("%s n=%d inflight=%3d %-9s perf=%.3f (%s host)",
		res.Spec.Workload, res.Spec.NVDLAs, res.Spec.Inflight, res.Spec.Memory,
		res.Perf, res.HostTime.Round(time.Millisecond)))
}

// ForEach runs fn(ctx, i) for every i in [0, n) on the worker pool, with
// the same per-item panic recovery as Sweep. It is the generic counterpart
// to Sweep for experiment loops whose points are not RunSpec simulations
// (e.g. the PMU sort-benchmark overhead matrix). It returns the first error
// in index order (including ctx.Err() for items skipped after
// cancellation); fn stores its own results by index.
func (r Runner) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Monitor != nil {
		r.Monitor.Start()
		defer r.Monitor.Stop()
	}
	errs := make([]error, n)
	runItem := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = panicError(fmt.Sprintf("item %d", i), p)
			}
		}()
		return fn(ctx, i)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.poolSize(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runItem(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// baselineCache deduplicates ideal-memory baseline runs within one sweep:
// the first getter of a key simulates it (with panic recovery, so a
// diverging baseline surfaces as an error on every dependent point rather
// than a crash); concurrent getters block until the result is ready.
type baselineCache struct {
	run     func(ctx context.Context, spec RunSpec) (sim.Tick, error)
	mu      sync.Mutex
	entries map[RunSpec]*baselineEntry
}

type baselineEntry struct {
	once     sync.Once
	ticks    sim.Tick
	hostTime time.Duration
	err      error
}

func (c *baselineCache) get(ctx context.Context, spec RunSpec) (sim.Tick, time.Duration, error) {
	c.mu.Lock()
	e := c.entries[spec]
	if e == nil {
		e = &baselineEntry{}
		c.entries[spec] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				e.err = panicError(spec.String(), p)
			}
		}()
		start := time.Now()
		e.ticks, e.err = c.run(ctx, spec)
		e.hostTime = time.Since(start)
	})
	return e.ticks, e.hostTime, e.err
}
