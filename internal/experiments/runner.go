package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
)

// Result is the outcome of one RunSpec.
type Result struct {
	Spec RunSpec
	// Ticks is the completion time of the slowest accelerator.
	Ticks sim.Tick
	// Perf is Ticks(ideal baseline) / Ticks — the figures' "performance
	// normalised to ideal memory". 1 for ideal points, 0 when Err is set.
	Perf float64
	// HostTime is the wall-clock cost of this point's own simulation
	// (baseline lookups for normalisation are excluded).
	HostTime time.Duration
	// Err records a per-point failure: a build/trace error, ctx.Err() on
	// cancellation, or a recovered panic from a diverging simulation. The
	// rest of the sweep is unaffected.
	Err error
	// Attr is the point's self-profiler attribution report (nil unless the
	// Runner's SelfProfile is on). Its event counts are exact and
	// deterministic; its host-time shares are sampled wall time and, like
	// HostTime, machine-dependent.
	Attr *prof.Report `json:"attr,omitempty"`
}

// Runner executes sweeps of independent simulation points on a worker pool.
// The zero value is a valid sequential runner (Workers <= 0 selects
// runtime.NumCPU(); set Workers to 1 for strictly sequential execution and
// faithful per-point host times).
type Runner struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
	// Report receives per-point progress lines (may be nil). It is called
	// from worker goroutines and must be safe for concurrent use.
	Report func(string)
	// Run overrides the per-point executor; nil means Run with Options.
	// Tests use this to inject failures and count baseline executions.
	Run func(ctx context.Context, spec RunSpec) (sim.Tick, error)
	// Options configure every point's Run call (warm-start, watchdog,
	// tracing — see the Option constructors). Points execute concurrently,
	// so per-point sinks like WithStateHash must not be used here; compose
	// them on direct Run calls instead. Ignored when Run is set.
	Options []Option
	// Monitor, when non-nil, samples host runtime metrics (wall time,
	// goroutines, heap, aggregate simulated events/sec) for the duration of
	// each Sweep or ForEach. The caller owns the monitor's output writer.
	Monitor *obs.HostMonitor
	// SelfProfile, when > 0, attaches the event-kernel self-profiler to
	// every non-ideal point (clock-read cadence in dispatches; use
	// sim.DefaultProfileEvery) and stores each point's attribution report
	// in Result.Attr. Ideal-memory baseline runs are shared across points
	// and are never profiled. Ignored when Run is set.
	SelfProfile int
	// AttrSink, when non-nil, additionally receives every profiled point's
	// attribution report as it completes — the aggregation hook for CLIs
	// whose table helpers discard the raw Results. It is called from worker
	// goroutines and must be safe for concurrent use.
	AttrSink func(*prof.Report)
}

// executor resolves the per-point run function: an explicit override or the
// unified Run entry point with the runner's options.
func (r Runner) executor() func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
	if r.Run != nil {
		return r.Run
	}
	opts := r.Options
	return func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
		return Run(ctx, spec, opts...)
	}
}

// panicError wraps a recovered panic with the failing work item and the
// goroutine stack at the recovery point, so a diverging simulation deep in a
// sweep is diagnosable from Result.Err alone.
func panicError(what string, p any) error {
	return fmt.Errorf("experiments: %s panicked: %v\n%s", what, p, debug.Stack())
}

// poolSize resolves the effective worker count for n queued items.
func (r Runner) poolSize(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep runs every spec and returns one Result per spec, in input order
// regardless of completion order. Individual failures (including recovered
// panics from diverging simulations) are reported in Result.Err without
// aborting the sweep; the returned error is non-nil only when ctx ends
// before the sweep completes, in which case it is ctx.Err() and unstarted
// points carry it in their Result.Err.
//
// Ideal-memory baselines are deduplicated through a keyed cache: each
// distinct (workload, count, inflight, scale, limit) ideal run is simulated
// once per Sweep and shared by the ideal point itself and every technology
// point normalised against it.
func (r Runner) Sweep(ctx context.Context, specs []RunSpec) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run := r.executor()
	if r.Monitor != nil {
		r.Monitor.Start()
		defer r.Monitor.Stop()
	}
	results := make([]Result, len(specs))
	cache := &baselineCache{run: run, entries: map[RunSpec]*baselineEntry{}}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.poolSize(len(specs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(ctx, specs[i], cache)
			}
		}()
	}
	var unfed []int
	for i := range specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			unfed = append(unfed, i)
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for _, i := range unfed {
			results[i] = Result{Spec: specs[i], Err: err}
		}
		return results, err
	}
	return results, nil
}

// runOne executes a single point with panic recovery and normalisation.
func (r Runner) runOne(ctx context.Context, spec RunSpec, cache *baselineCache) (res Result) {
	res.Spec = spec
	defer func() {
		if p := recover(); p != nil {
			res.Ticks, res.Perf = 0, 0
			res.Err = panicError(spec.String(), p)
		}
		r.say(&res)
	}()
	if spec.isIdeal() {
		res.Ticks, res.HostTime, res.Err = cache.get(ctx, spec.baseline())
		if res.Err == nil {
			res.Perf = 1
		}
		return res
	}
	start := time.Now()
	var t sim.Tick
	var err error
	if r.SelfProfile > 0 && r.Run == nil {
		// Per-point option composition: the sink writes this point's report,
		// so the shared r.Options slice stays free of per-point sinks.
		opts := append(append([]Option{}, r.Options...),
			WithSelfProfile(r.SelfProfile, func(rep *prof.Report) {
				res.Attr = rep
				if r.AttrSink != nil {
					r.AttrSink(rep)
				}
			}))
		t, err = Run(ctx, spec, opts...)
	} else {
		t, err = cache.run(ctx, spec)
	}
	res.HostTime = time.Since(start)
	if err != nil {
		res.Err = err
		return res
	}
	res.Ticks = t
	ideal, _, err := cache.get(ctx, spec.baseline())
	if err != nil {
		res.Err = fmt.Errorf("ideal baseline for %v: %w", spec, err)
		return res
	}
	res.Perf = float64(ideal) / float64(t)
	return res
}

// say emits one progress line for a finished point.
func (r Runner) say(res *Result) {
	if r.Report == nil {
		return
	}
	if res.Err != nil {
		r.Report(fmt.Sprintf("%s n=%d inflight=%3d %-9s ERROR: %v",
			res.Spec.Workload, res.Spec.NVDLAs, res.Spec.Inflight, res.Spec.Memory, res.Err))
		return
	}
	r.Report(fmt.Sprintf("%s n=%d inflight=%3d %-9s perf=%.3f (%s host)",
		res.Spec.Workload, res.Spec.NVDLAs, res.Spec.Inflight, res.Spec.Memory,
		res.Perf, res.HostTime.Round(time.Millisecond)))
}

// ForEach runs fn(ctx, i) for every i in [0, n) on the worker pool, with
// the same per-item panic recovery as Sweep. It is the generic counterpart
// to Sweep for experiment loops whose points are not RunSpec simulations
// (e.g. the PMU sort-benchmark overhead matrix). It returns the first error
// in index order (including ctx.Err() for items skipped after
// cancellation); fn stores its own results by index.
func (r Runner) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Monitor != nil {
		r.Monitor.Start()
		defer r.Monitor.Stop()
	}
	errs := make([]error, n)
	runItem := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = panicError(fmt.Sprintf("item %d", i), p)
			}
		}()
		return fn(ctx, i)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.poolSize(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runItem(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// baselineCache deduplicates ideal-memory baseline runs within one sweep:
// the first getter of a key simulates it (with panic recovery, so a
// diverging baseline surfaces as an error on every dependent point rather
// than a crash); concurrent getters block until the result is ready.
type baselineCache struct {
	run     func(ctx context.Context, spec RunSpec) (sim.Tick, error)
	mu      sync.Mutex
	entries map[RunSpec]*baselineEntry
}

type baselineEntry struct {
	once     sync.Once
	ticks    sim.Tick
	hostTime time.Duration
	err      error
}

func (c *baselineCache) get(ctx context.Context, spec RunSpec) (sim.Tick, time.Duration, error) {
	c.mu.Lock()
	e := c.entries[spec]
	if e == nil {
		e = &baselineEntry{}
		c.entries[spec] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				e.err = panicError(spec.String(), p)
			}
		}()
		start := time.Now()
		e.ticks, e.err = c.run(ctx, spec)
		e.hostTime = time.Since(start)
	})
	return e.ticks, e.hostTime, e.err
}
