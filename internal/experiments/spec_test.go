package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"gem5rtl/internal/sim"
)

func validSpec() RunSpec {
	return DSEParams{Scale: 32, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 16)
}

// TestCanonicalJSONRoundTrip checks the canonical encoding is stable, compact
// and round-trips through the strict decoder.
func TestCanonicalJSONRoundTrip(t *testing.T) {
	spec := validSpec()
	b := spec.CanonicalJSON()
	want := `{"workload":"sanity3","nvdlas":1,"memory":"DDR4-1ch","inflight":16,"scale":32,"limit":8000000000000}`
	if string(b) != want {
		t.Errorf("canonical encoding:\n  got  %s\n  want %s", b, want)
	}
	var back RunSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Errorf("round trip changed the spec: %+v vs %+v", back, spec)
	}
}

// TestStrictDecodeRejectsUnknownFields checks a typo'd field fails loudly
// instead of silently running the zero value.
func TestStrictDecodeRejectsUnknownFields(t *testing.T) {
	var spec RunSpec
	err := json.Unmarshal([]byte(`{"workload":"sanity3","inflght":16}`), &spec)
	if err == nil || !strings.Contains(err.Error(), "inflght") {
		t.Errorf("unknown field not rejected: err=%v", err)
	}
}

// TestFingerprint checks equal specs share a fingerprint and any field change
// produces a different one.
func TestFingerprint(t *testing.T) {
	a, b := validSpec(), validSpec()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal specs have different fingerprints")
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("fingerprint %q is not hex SHA-256", a.Fingerprint())
	}
	variants := []RunSpec{a, a, a, a, a, a}
	variants[0].Workload = "googlenet"
	variants[1].NVDLAs = 2
	variants[2].Memory = "HBM"
	variants[3].Inflight = 64
	variants[4].Scale = 8
	variants[5].Limit = 4 * sim.Second
	seen := map[string]bool{a.Fingerprint(): true}
	for i, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d collides with an earlier fingerprint", i)
		}
		seen[fp] = true
	}
}

// TestRTLEngineExcludedFromFingerprint checks the engine knob is pure
// execution strategy: it decodes strictly, it validates, and it never
// reaches the canonical bytes or the fingerprint — two specs differing only
// in engine are one simulation point and share baselines and result-store
// entries.
func TestRTLEngineExcludedFromFingerprint(t *testing.T) {
	base := validSpec()
	closure, bytecode := base, base
	closure.RTLEngine = "closure"
	bytecode.RTLEngine = "bytecode"
	if base.Fingerprint() != closure.Fingerprint() || base.Fingerprint() != bytecode.Fingerprint() {
		t.Error("engine choice changed the fingerprint")
	}
	if string(closure.CanonicalJSON()) != string(base.CanonicalJSON()) {
		t.Errorf("engine leaked into canonical bytes: %s", closure.CanonicalJSON())
	}
	for _, s := range []RunSpec{closure, bytecode} {
		if err := s.Validate(); err != nil {
			t.Errorf("engine %q rejected: %v", s.RTLEngine, err)
		}
	}
	bad := base
	bad.RTLEngine = "jit"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "jit") {
		t.Errorf("unknown engine not rejected by name: err=%v", err)
	}
	// The strict decoder accepts the field and carries it through.
	var back RunSpec
	if err := json.Unmarshal([]byte(`{"workload":"sanity3","nvdlas":1,"memory":"ideal","inflight":16,"scale":32,"limit":1,"rtl_engine":"closure"}`), &back); err != nil {
		t.Fatalf("strict decode rejected rtl_engine: %v", err)
	}
	if back.RTLEngine != "closure" {
		t.Errorf("rtl_engine not decoded: %+v", back)
	}
}

// TestValidate checks every field's range and that errors name the offending
// field with its valid choices.
func TestValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*RunSpec)
		want   string
	}{
		{"workload", func(s *RunSpec) { s.Workload = "resnet" }, `workload "resnet"`},
		{"nvdlas-low", func(s *RunSpec) { s.NVDLAs = 0 }, "nvdlas 0"},
		{"nvdlas-high", func(s *RunSpec) { s.NVDLAs = 65 }, "nvdlas 65"},
		{"memory", func(s *RunSpec) { s.Memory = "DDR3" }, `memory "DDR3"`},
		{"inflight", func(s *RunSpec) { s.Inflight = 0 }, "inflight 0"},
		{"scale", func(s *RunSpec) { s.Scale = 0 }, "scale 0"},
		{"limit", func(s *RunSpec) { s.Limit = 0 }, "limit 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := validSpec()
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending field as %q", err, tc.want)
			}
		})
	}
	for _, memName := range Memories() {
		spec := validSpec()
		spec.Memory = memName
		if err := spec.Validate(); err != nil {
			t.Errorf("listed memory %q rejected: %v", memName, err)
		}
	}
}

// TestParseSpecs checks strict batch decoding: valid arrays parse, unknown
// fields and invalid specs fail with the offending index.
func TestParseSpecs(t *testing.T) {
	good := `[{"workload":"sanity3","nvdlas":1,"memory":"HBM","inflight":4,"scale":32,"limit":8000000000000}]`
	specs, err := ParseSpecs([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Memory != "HBM" {
		t.Errorf("parsed %+v", specs)
	}

	if _, err := ParseSpecs([]byte(`[{"workload":"sanity3","typo":1}]`)); err == nil {
		t.Error("unknown field in batch not rejected")
	}
	bad := `[` + string(validSpec().CanonicalJSON()) + `,{"workload":"sanity3","nvdlas":0,"memory":"HBM","inflight":4,"scale":32,"limit":1}]`
	_, err = ParseSpecs([]byte(bad))
	if err == nil || !strings.Contains(err.Error(), "spec[1]") {
		t.Errorf("invalid spec index not reported: err=%v", err)
	}
}

// TestBaseline checks the ideal-memory normalisation helper.
func TestBaseline(t *testing.T) {
	spec := validSpec()
	b := spec.Baseline()
	if !b.IsIdeal() || b.Workload != spec.Workload || b.Inflight != spec.Inflight {
		t.Errorf("baseline %+v does not preserve the point", b)
	}
	if spec.IsIdeal() {
		t.Error("DDR4-1ch spec claims to be ideal")
	}
	if !b.Baseline().IsIdeal() {
		t.Error("baseline of a baseline must stay ideal")
	}
}
