package experiments

import "errors"

// PermanentError marks a Run failure that retrying cannot fix: an invalid
// spec, an impossible SoC configuration, a workload trace that does not
// build, a misconfigured tracer. It is the permanent half of the service's
// transient-vs-permanent failure taxonomy — everything else a point can
// return (a watchdog hang, a context deadline, a recovered panic, a fault
// injected by the chaos harness) is presumed transient and worth retrying,
// because re-executing against healthy workers or fresh state may succeed.
type PermanentError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *PermanentError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError. A nil err stays nil, so call
// sites can wrap unconditionally.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is (or wraps) a PermanentError — a failure
// class no retry policy should spend attempts on.
func IsPermanent(err error) bool {
	var p *PermanentError
	return errors.As(err, &p)
}
