package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// readKernelGolden loads the serial engine's pinned grid results.
func readKernelGolden(t *testing.T) []kernelGoldenEntry {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("testdata", "kernel_golden.json"))
	if err != nil {
		t.Fatalf("missing golden file (run TestKernelGoldenStateHash -update to capture): %v", err)
	}
	var want []kernelGoldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestShardedMatchesGoldenGrid replays the full 12-config NVDLA grid under
// the bulk-synchronous sharded engine at 2 and 4 shards and checks every
// point against the same golden file the serial engine pinned: final tick
// and full-system StateHash must be bit-identical. Together with
// TestKernelGoldenStateHash this is the shard-vs-serial determinism matrix
// (a one-accelerator grid clamps 4 shards to 2; the extra row still proves
// the clamp path reproduces the goldens).
func TestShardedMatchesGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-config grid is not -short friendly")
	}
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	want := readKernelGolden(t)
	specs := kernelGoldenSpecs()
	if len(want) != len(specs) {
		t.Fatalf("golden file has %d entries, grid has %d", len(want), len(specs))
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			for i, spec := range specs {
				spec.Shards = shards
				got := runKernelGoldenPoint(t, spec)
				if got != want[i] {
					t.Errorf("sharded run diverged on %s (shards=%d):\n  got  ticks=%d hash=%s\n  want ticks=%d hash=%s",
						got.Spec, shards, got.Ticks, got.Hash, want[i].Ticks, want[i].Hash)
				}
			}
		})
	}
}

// TestShardedCrossEngine crosses the sharded engine with both RTL execution
// engines on a grid subset: (closure|bytecode) x 2 shards must reproduce
// the goldens, so the two execution-strategy knobs compose without touching
// results.
func TestShardedCrossEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short friendly")
	}
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	want := readKernelGolden(t)
	specs := kernelGoldenSpecs()
	for _, engine := range []string{"closure", "bytecode"} {
		t.Run(engine, func(t *testing.T) {
			for _, i := range []int{0, 5, 11} { // one point per in-flight band
				spec := specs[i]
				spec.RTLEngine = engine
				spec.Shards = 2
				got := runKernelGoldenPoint(t, spec)
				if got != want[i] {
					t.Errorf("engine=%s shards=2 diverged on %s:\n  got  ticks=%d hash=%s\n  want ticks=%d hash=%s",
						engine, got.Spec, got.Ticks, got.Hash, want[i].Ticks, want[i].Hash)
				}
			}
		})
	}
}

// TestShardedRunAPI drives the sharded engine through the public
// experiments.Run options pipeline and requires byte-identical statistics
// and state hash against the serial path — the multi-accelerator case,
// where shards hold real work.
func TestShardedRunAPI(t *testing.T) {
	run := func(shards int) (sim.Tick, uint64, []stats.Sample) {
		port.SetPacketIDForTest(0)
		spec := RunSpec{Workload: "sanity3", NVDLAs: 4, Memory: "DDR4-2ch",
			Inflight: 64, Scale: 32, Limit: 8 * sim.Second, Shards: shards}
		var hash uint64
		var samples []stats.Sample
		done, err := Run(context.Background(), spec,
			WithStateHash(&hash), WithStats(func(s []stats.Sample) { samples = s }))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return done, hash, samples
	}
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	doneSer, hashSer, statsSer := run(1)
	for _, shards := range []int{2, 4} {
		done, hash, st := run(shards)
		if done != doneSer {
			t.Errorf("shards=%d: completion tick %d, serial %d", shards, done, doneSer)
		}
		if hash != hashSer {
			t.Errorf("shards=%d: state hash %#x, serial %#x", shards, hash, hashSer)
		}
		if !reflect.DeepEqual(st, statsSer) {
			t.Errorf("shards=%d: statistics diverged from serial", shards)
		}
	}
}
