// Package experiments implements the paper's evaluation (§5-§6): the PMU
// functional validation (Figure 5), the PMU simulation-time overhead study
// (Table 2), the NVDLA memory design-space exploration (Figures 6 and 7),
// and the NVDLA simulation-time overhead study (Table 3). The cmd/ binaries
// and the top-level benchmarks are thin wrappers around this package, so a
// figure is regenerated identically from either entry point.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/workload"
)

// AXIHost is the host-side master used to program and read the PMU over its
// CPU-side port, standing in for core 0's MMIO path.
type AXIHost struct {
	q     *sim.EventQueue
	p     *port.RequestPort
	reads map[uint64]chan uint32 // packet ID -> result
}

// NewAXIHost creates a host master; bind its Port to the PMU's CPU port.
func NewAXIHost(q *sim.EventQueue) *AXIHost {
	h := &AXIHost{q: q, reads: map[uint64]chan uint32{}}
	h.p = port.NewRequestPort("axihost", h)
	return h
}

// Port returns the host's request port for binding.
func (h *AXIHost) Port() *port.RequestPort { return h.p }

// RecvTimingResp implements port.Requestor.
func (h *AXIHost) RecvTimingResp(pkt *port.Packet) bool {
	if ch, ok := h.reads[pkt.ID]; ok {
		delete(h.reads, pkt.ID)
		var v uint32
		for i := 0; i < len(pkt.Data) && i < 4; i++ {
			v |= uint32(pkt.Data[i]) << (8 * i)
		}
		ch <- v
	}
	return true
}

// RecvReqRetry implements port.Requestor.
func (h *AXIHost) RecvReqRetry() {}

// Write posts a register write (fire and forget; the response is dropped).
func (h *AXIHost) Write(addr uint64, val uint32) {
	pkt := port.NewWritePacket(addr, []byte{
		byte(val), byte(val >> 8), byte(val >> 16), byte(val >> 24)})
	if !h.p.SendTimingReq(pkt) {
		panic("experiments: PMU refused AXI write")
	}
}

// Read issues a register read and runs the simulation until it completes.
func (h *AXIHost) Read(addr uint64) uint32 {
	pkt := port.NewReadPacket(addr, 4)
	ch := make(chan uint32, 1)
	h.reads[pkt.ID] = ch
	if !h.p.SendTimingReq(pkt) {
		panic("experiments: PMU refused AXI read")
	}
	for {
		select {
		case v := <-ch:
			return v
		default:
		}
		if !h.q.Step() {
			panic("experiments: simulation drained before AXI read completed")
		}
	}
}

// Fig5Sample is one PMU interrupt interval: the PMU-measured and
// gem5-measured IPC and MPKI over the window ending at TimeMs.
type Fig5Sample struct {
	TimeMs   float64
	PMUIPC   float64
	Gem5IPC  float64
	PMUMPKI  float64
	Gem5MPKI float64
}

// Fig5Params configures the PMU functional experiment.
type Fig5Params struct {
	// N sizes the Selection/Bubble arrays (QuickSort gets 10N). The paper
	// uses 3000; the default here is smaller for tractable host time.
	N int
	// SleepUs separates the phases (paper: 1000).
	SleepUs int
	// IntervalCycles is the PMU threshold period (paper: 10000 PMU cycles).
	IntervalCycles int
	// Waveform enables PMU VCD tracing into WaveOut.
	Waveform bool
	WaveOut  io.Writer
	// SelfProfile, when > 0, attaches the event-kernel self-profiler (with
	// this clock-read cadence) and fills Fig5Result.Attr, sub-attributing the
	// PMU model's comb/seq/memw phases. Profiling is observational: the
	// sampled series is identical either way.
	SelfProfile int
}

// DefaultFig5Params returns a scaled-down configuration (see EXPERIMENTS.md
// for the scaling rationale).
func DefaultFig5Params() Fig5Params {
	return Fig5Params{N: 250, SleepUs: 100, IntervalCycles: 10000}
}

// Fig5Result is the full experiment outcome.
type Fig5Result struct {
	Samples []Fig5Sample
	// Final totals for validation.
	PMUTotalInsts  uint64
	Gem5TotalInsts uint64
	HostTime       time.Duration
	SimTicks       sim.Tick
	// Attr is the self-profiler attribution report (nil unless
	// Fig5Params.SelfProfile was set).
	Attr *prof.Report
}

// RunFigure5Ctx reproduces Figure 5: the sort benchmark runs on core 0 with
// the PMU RTL model attached; every threshold interrupt the harness reads
// the PMU counters over AXI and snapshots gem5-side statistics over the
// same window, yielding paired IPC/MPKI series. Cancelling ctx aborts the
// simulation promptly and returns ctx.Err().
func RunFigure5Ctx(ctx context.Context, p Fig5Params) (*Fig5Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.WithPMU = true
	cfg.PMUWaveform = p.Waveform
	cfg.PMUWaveOut = p.WaveOut
	s, err := soc.Build(cfg)
	if err != nil {
		return nil, err
	}
	if p.SelfProfile > 0 {
		s.AttachSelfProfiler(p.SelfProfile)
	}
	host := NewAXIHost(s.Queue)
	port.Bind(host.p, s.PMU.CPUPort(0))

	start := time.Now()
	s.PMU.Start()
	// Program the PMU: enable commit lines 0-3, the L1D miss line and the
	// cycle line; interrupt every IntervalCycles cycle events.
	host.Write(pmu.RegEnable, 0x3F)
	host.Write(pmu.RegThreshSel, pmu.EvCycle)
	host.Write(pmu.RegThreshVal, uint32(p.IntervalCycles))

	if err := s.LoadProgram(0, workload.SortBenchmark(workload.SortParams{
		N: p.N, SleepUs: p.SleepUs})); err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	finished := false
	s.Cores[0].OnExit = func(int64) { finished = true; s.Queue.ExitSimLoop("exit") }

	// Interval sampling on the PMU interrupt.
	var lastPMU [6]uint32
	lastGem5 := s.Stats.Snapshot()
	irqPending := false
	s.PMU.OnInterrupt(func(level bool) {
		if level {
			irqPending = true
			s.Queue.ExitSimLoop("pmu irq")
		}
	})
	s.StartCores(0)

	stop := s.Queue.WatchContext(ctx, 0)
	defer stop()
	for !finished {
		s.Queue.RunUntil(sim.MaxTick)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.Queue.ClearExit()
		if !irqPending {
			if finished {
				break
			}
			continue
		}
		irqPending = false
		// Interrupt handler: read the six counters over AXI (timing).
		var cur [6]uint32
		for i := 0; i < 6; i++ {
			cur[i] = host.Read(pmu.RegCounterBase + uint64(4*i))
		}
		nowGem5 := s.Stats.Snapshot()
		commits := float64(0)
		for i := pmu.EvCommit0; i <= pmu.EvCommit3; i++ {
			commits += float64(cur[i] - lastPMU[i])
		}
		misses := float64(cur[pmu.EvL1DMiss] - lastPMU[pmu.EvL1DMiss])
		// The cycle counter resets at the threshold; the window is the
		// configured interval in PMU (1 GHz) cycles = 2x core cycles.
		pmuCoreCycles := float64(p.IntervalCycles) * 2
		gem5Insts := nowGem5["system.cpu0.committedInsts"] - lastGem5["system.cpu0.committedInsts"]
		gem5Misses := nowGem5["system.cpu0.dcache.misses"] - lastGem5["system.cpu0.dcache.misses"]
		sample := Fig5Sample{
			TimeMs:  float64(s.Queue.Now()) / float64(sim.Millisecond),
			PMUIPC:  commits / pmuCoreCycles,
			Gem5IPC: gem5Insts / pmuCoreCycles,
		}
		if commits > 0 {
			sample.PMUMPKI = misses / commits * 1000
		}
		if gem5Insts > 0 {
			sample.Gem5MPKI = gem5Misses / gem5Insts * 1000
		}
		res.Samples = append(res.Samples, sample)
		lastPMU = cur
		lastGem5 = nowGem5
	}
	s.PMU.Stop()
	res.HostTime = time.Since(start)
	res.SimTicks = s.Queue.Now()
	var pmuTotal uint64
	for i := pmu.EvCommit0; i <= pmu.EvCommit3; i++ {
		pmuTotal += uint64(s.PMUWrapper.Counter(i))
	}
	// Counters were snapshot-read cumulatively; totals = final counter reads.
	res.PMUTotalInsts = pmuTotal
	st := s.Cores[0].Stats()
	res.Gem5TotalInsts = st.Committed
	res.Attr = prof.FromQueue(s.Queue)
	return res, nil
}

// Table2Config names one row of Table 2.
type Table2Config struct {
	Name     string
	PMU      bool
	Waveform bool
}

// Table2Configs returns the paper's three configurations.
func Table2Configs() []Table2Config {
	return []Table2Config{
		{Name: "gem5"},
		{Name: "gem5+PMU", PMU: true},
		{Name: "gem5+PMU+waveform", PMU: true, Waveform: true},
	}
}

// Table2Cell is one measured configuration x size point.
type Table2Cell struct {
	Config   string
	Size     int
	HostTime time.Duration
	// Overhead is host time normalised to the plain-gem5 run of this size.
	Overhead float64
}

// Table2 reproduces Table 2: host wall-clock of the sorting benchmark
// with and without the PMU RTL model and waveform tracing, over several
// array sizes, normalised to the PMU-less run. The paper's sizes (3k/30k/
// 60k) are scaled by the sizes argument (default DefaultTable2Sizes). The
// (config, size) cells are independent simulations and run on the runner's
// worker pool; because each cell is a host-time measurement, use Workers =
// 1 when the absolute overheads matter — concurrent workers share host
// cores and inflate each other's times.
func (r Runner) Table2(ctx context.Context, sizes []int, sleepUs int) ([]Table2Cell, error) {
	type job struct {
		cfg Table2Config
		n   int
	}
	var jobs []job
	for _, cfgRow := range Table2Configs() {
		for _, n := range sizes {
			jobs = append(jobs, job{cfgRow, n})
		}
	}
	cells := make([]Table2Cell, len(jobs))
	err := r.ForEach(ctx, len(jobs), func(ctx context.Context, i int) error {
		elapsed, err := runSortOnce(ctx, jobs[i].n, sleepUs, jobs[i].cfg.PMU, jobs[i].cfg.Waveform)
		if err != nil {
			return err
		}
		cells[i] = Table2Cell{Config: jobs[i].cfg.Name, Size: jobs[i].n, HostTime: elapsed}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Normalise each size to its plain-gem5 cell (always present: the gem5
	// configuration is first in Table2Configs).
	base := map[int]time.Duration{}
	for i, j := range jobs {
		if !j.cfg.PMU {
			base[j.n] = cells[i].HostTime
		}
	}
	for i := range cells {
		if b := base[cells[i].Size]; b > 0 {
			cells[i].Overhead = float64(cells[i].HostTime) / float64(b)
		}
	}
	return cells, nil
}

// DefaultTable2Sizes scales the paper's 3k/30k/60k (1:10:20) down to
// simulator-friendly sizes with the same ratios.
func DefaultTable2Sizes() []int { return []int{60, 600, 1200} }

// RunTable2Config runs a single Table 2 configuration at one size,
// returning the host time (benchmark entry point).
func RunTable2Config(cfg Table2Config, n, sleepUs int) (time.Duration, error) {
	return runSortOnce(context.Background(), n, sleepUs, cfg.PMU, cfg.Waveform)
}

func runSortOnce(ctx context.Context, n, sleepUs int, withPMU, waveform bool) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.WithPMU = withPMU
	var sink countingWriter
	if waveform {
		cfg.PMUWaveform = true
		cfg.PMUWaveOut = &sink
	}
	s, err := soc.Build(cfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if withPMU {
		host := NewAXIHost(s.Queue)
		port.Bind(host.p, s.PMU.CPUPort(0))
		s.PMU.Start()
		host.Write(pmu.RegEnable, 0x3F)
		host.Write(pmu.RegThreshSel, pmu.EvCycle)
		host.Write(pmu.RegThreshVal, 10000)
	}
	if err := s.LoadProgram(0, workload.SortBenchmark(workload.SortParams{
		N: n, SleepUs: sleepUs})); err != nil {
		return 0, err
	}
	done := false
	s.Cores[0].OnExit = func(int64) { done = true; s.Queue.ExitSimLoop("exit") }
	s.StartCores(0)
	watchStop := s.Queue.WatchContext(ctx, 0)
	defer watchStop()
	s.Queue.RunUntil(sim.MaxTick)
	obs.CountEvents(s.Dispatched())
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("experiments: sort benchmark (n=%d) did not finish", n)
	}
	return time.Since(start), nil
}

// countingWriter discards VCD output while paying realistic formatting cost.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
