package experiments

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gem5rtl/internal/sim"
)

// determinismSpecs is a small but representative grid: two in-flight caps,
// the ideal baseline and two technologies, all sharing baselines per cap.
func determinismSpecs() []RunSpec {
	p := DSEParams{Scale: 64, Limit: 4 * sim.Second}
	var specs []RunSpec
	for _, inflight := range []int{1, 64} {
		specs = append(specs,
			p.Spec("sanity3", 1, "ideal", inflight),
			p.Spec("sanity3", 1, "DDR4-1ch", inflight),
			p.Spec("sanity3", 1, "HBM", inflight),
		)
	}
	return specs
}

// TestSweepParallelMatchesSequential is the determinism guarantee behind
// the -parallel flag: every point simulates on its own event queue, so the
// parallel sweep must return tick-identical results to the sequential path.
func TestSweepParallelMatchesSequential(t *testing.T) {
	specs := determinismSpecs()
	seq, err := Runner{Workers: 1}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 4}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(specs))
	}
	for i := range specs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%v: errs %v / %v", specs[i], seq[i].Err, par[i].Err)
		}
		if seq[i].Spec != specs[i] || par[i].Spec != specs[i] {
			t.Fatalf("index %d: results out of input order (%v / %v, want %v)",
				i, seq[i].Spec, par[i].Spec, specs[i])
		}
		if seq[i].Ticks != par[i].Ticks {
			t.Fatalf("%v: sequential %d ticks vs parallel %d ticks",
				specs[i], seq[i].Ticks, par[i].Ticks)
		}
		if seq[i].Perf != par[i].Perf {
			t.Fatalf("%v: sequential perf %v vs parallel perf %v",
				specs[i], seq[i].Perf, par[i].Perf)
		}
	}
}

// TestSweepCancellation drives real simulations at full trace scale (each
// point takes far longer than the deadline) and checks that the in-loop
// context watcher aborts the sweep promptly with ctx.Err().
func TestSweepCancellation(t *testing.T) {
	p := DSEParams{Scale: 1, Limit: 8 * sim.Second}
	specs := []RunSpec{
		p.Spec("sanity3", 1, "DDR4-1ch", 64),
		p.Spec("sanity3", 1, "HBM", 64),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, err := Runner{Workers: 2}.Sweep(ctx, specs)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sweep error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("sweep took %s after a 50ms deadline", elapsed)
	}
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("point %d completed despite cancellation", i)
		}
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("point %d error = %v, want context.DeadlineExceeded", i, res.Err)
		}
	}
}

// TestSweepPanicRecovery: a diverging point must become an error Result,
// not kill the sweep.
func TestSweepPanicRecovery(t *testing.T) {
	p := DSEParams{Scale: 64, Limit: 4 * sim.Second}
	specs := []RunSpec{
		p.Spec("sanity3", 1, "ideal", 8),
		p.Spec("sanity3", 1, "boom", 8),
		p.Spec("sanity3", 1, "DDR4-4ch", 8),
	}
	fake := func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
		switch spec.Memory {
		case "boom":
			panic("diverging simulation")
		case "ideal":
			return 1000, nil
		default:
			return 2000, nil
		}
	}
	results, err := Runner{Workers: 2, Run: fake}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Ticks != 1000 || results[0].Perf != 1 {
		t.Fatalf("ideal result corrupted: %+v", results[0])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not recovered into Result.Err: %+v", results[1])
	}
	// The recovered error carries the panicking goroutine's stack trace and
	// the failing spec, so a campaign log is debuggable after the fact.
	if msg := results[1].Err.Error(); !strings.Contains(msg, "goroutine") {
		t.Fatalf("recovered panic carries no stack trace:\n%s", msg)
	} else if !strings.Contains(msg, results[1].Spec.String()) {
		t.Fatalf("recovered panic does not name the failing spec:\n%s", msg)
	}
	if results[2].Err != nil || results[2].Ticks != 2000 || results[2].Perf != 0.5 {
		t.Fatalf("tech result wrong: %+v", results[2])
	}
}

// TestSweepBaselinePanicPropagates: a panicking ideal baseline surfaces as
// an error on every point normalised against it.
func TestSweepBaselinePanicPropagates(t *testing.T) {
	p := DSEParams{Scale: 64, Limit: 4 * sim.Second}
	specs := []RunSpec{
		p.Spec("sanity3", 1, "DDR4-1ch", 8),
		p.Spec("sanity3", 1, "HBM", 8),
	}
	fake := func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
		if spec.isIdeal() {
			panic("baseline diverged")
		}
		return 2000, nil
	}
	results, err := Runner{Workers: 2, Run: fake}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
			t.Fatalf("point %d: baseline panic not propagated: %+v", i, res)
		}
	}
}

// TestSweepBaselineCacheDedup: each distinct ideal baseline is simulated
// exactly once per sweep, however many points consume it.
func TestSweepBaselineCacheDedup(t *testing.T) {
	p := DSEParams{Scale: 64, Limit: 4 * sim.Second}
	var specs []RunSpec
	for _, inflight := range []int{8, 64} {
		specs = append(specs, p.Spec("sanity3", 1, "ideal", inflight))
		for _, tech := range memTechs() {
			specs = append(specs, p.Spec("sanity3", 1, tech, inflight))
		}
	}
	var mu sync.Mutex
	calls := map[RunSpec]int{}
	fake := func(ctx context.Context, spec RunSpec) (sim.Tick, error) {
		mu.Lock()
		calls[spec]++
		mu.Unlock()
		if spec.isIdeal() {
			return 1000, nil
		}
		return 4000, nil
	}
	results, err := Runner{Workers: 4, Run: fake}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, inflight := range []int{8, 64} {
		key := p.Spec("sanity3", 1, "ideal", inflight)
		mu.Lock()
		n := calls[key]
		mu.Unlock()
		if n != 1 {
			t.Fatalf("ideal baseline inflight=%d simulated %d times, want 1", inflight, n)
		}
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%v: %v", res.Spec, res.Err)
		}
		want := 1.0
		if !res.Spec.isIdeal() {
			want = 0.25
		}
		if res.Perf != want {
			t.Fatalf("%v: perf %v, want %v", res.Spec, res.Perf, want)
		}
	}
}

// TestForEachPanicAndOrder: the generic pool recovers panics and reports
// the first error in index order.
func TestForEachPanicAndOrder(t *testing.T) {
	got := make([]int, 8)
	err := Runner{Workers: 3}.ForEach(context.Background(), 8, func(ctx context.Context, i int) error {
		got[i] = i + 1
		if i == 5 {
			panic("item exploded")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 5 panicked") {
		t.Fatalf("err = %v, want recovered panic from item 5", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("recovered panic carries no stack trace:\n%s", err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("item %d not executed", i)
		}
	}
}

// TestDSEFigureParallelMatchesSequential compares the figure-level API on a
// reduced grid by shrinking the sweep axes for the duration of the test.
func TestDSEFigureParallelMatchesSequential(t *testing.T) {
	oldInflight, oldCounts := InflightSweep, NVDLACounts
	InflightSweep, NVDLACounts = []int{1, 64}, []int{1}
	defer func() { InflightSweep, NVDLACounts = oldInflight, oldCounts }()

	p := DSEParams{Scale: 64, Limit: 4 * sim.Second}
	seq, err := Runner{Workers: 1}.DSEFigure(context.Background(), "sanity3", p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 4}.DSEFigure(context.Background(), "sanity3", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) != 2*(1+len(memTechs())) {
		t.Fatalf("point counts %d/%d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}
