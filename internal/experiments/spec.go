package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gem5rtl/internal/mem"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
)

// RunSpec fully identifies one independent simulation point of the design
// space: which workload runs on how many accelerators, against which memory
// technology, under which in-flight cap, at which trace scale and simulated
// time limit. Specs are comparable, so they double as cache keys for the
// ideal-memory baselines that normalise the figures, and they have a
// canonical JSON encoding (strict on decode) shared by the sweep service,
// the CLI tools and the result store.
type RunSpec struct {
	Workload string `json:"workload"`
	NVDLAs   int    `json:"nvdlas"`
	Memory   string `json:"memory"` // "ideal" is the normalisation baseline
	Inflight int    `json:"inflight"`
	// Scale divides the trace footprints (see DSEParams.Scale).
	Scale int `json:"scale"`
	// Limit bounds one run's simulated time, in ticks.
	Limit sim.Tick `json:"limit"`
	// RTLEngine selects the RTL simulation engine ("closure" or
	// "bytecode"; empty = the production default). Engines are
	// dispatch-identical, so this field is an execution-strategy knob: it
	// is excluded from the canonical encoding and the fingerprint, and two
	// specs differing only in engine are the same simulation point.
	RTLEngine string `json:"rtl_engine,omitempty"`
	// Shards selects the bulk-synchronous sharded simulation engine
	// (soc.Config.Shards; 0/1 = serial). Like RTLEngine it is a pure
	// execution-strategy knob — results are shard-count-independent — so it
	// too is excluded from the canonical encoding and the fingerprint.
	Shards int `json:"shards,omitempty"`
}

// String renders the spec for progress lines and error messages.
func (s RunSpec) String() string {
	return fmt.Sprintf("%s n=%d %s inflight=%d scale=%d", s.Workload, s.NVDLAs, s.Memory, s.Inflight, s.Scale)
}

// baseline returns the ideal-memory spec this spec is normalised against.
func (s RunSpec) baseline() RunSpec {
	s.Memory = "ideal"
	return s
}

// Baseline returns the ideal-memory spec this spec is normalised against
// (itself for an ideal spec). The sweep service uses it to schedule the
// baseline run a submitted point's Perf depends on.
func (s RunSpec) Baseline() RunSpec { return s.baseline() }

// isIdeal reports whether the spec is itself a normalisation baseline.
func (s RunSpec) isIdeal() bool { return s.Memory == "" || s.Memory == "ideal" }

// IsIdeal reports whether the spec is a normalisation baseline (ideal
// memory). Exported for the sweep service's Perf computation.
func (s RunSpec) IsIdeal() bool { return s.isIdeal() }

// Workloads lists the valid RunSpec workload names.
func Workloads() []string { return []string{"sanity3", "googlenet"} }

// Memories lists the valid RunSpec memory names: "ideal" plus the DRAM
// technologies of the evaluation.
func Memories() []string {
	return append([]string{"ideal"}, mem.TechNames()...)
}

// Validate checks every field against the simulator's accepted ranges and
// returns an actionable error naming the offending field, its value and the
// valid choices. It is shared by the CLI flag parsers and the sweep
// service's submit endpoint, so a bad spec fails identically everywhere.
func (s RunSpec) Validate() error {
	okWorkload := false
	for _, w := range Workloads() {
		if s.Workload == w {
			okWorkload = true
			break
		}
	}
	if !okWorkload {
		return fmt.Errorf("experiments: invalid spec: workload %q (want one of %s)",
			s.Workload, strings.Join(Workloads(), ", "))
	}
	if s.NVDLAs < 1 || s.NVDLAs > 64 {
		return fmt.Errorf("experiments: invalid spec: nvdlas %d (want 1..64 accelerator instances)", s.NVDLAs)
	}
	okMem := false
	for _, m := range Memories() {
		if s.Memory == m {
			okMem = true
			break
		}
	}
	if !okMem {
		return fmt.Errorf("experiments: invalid spec: memory %q (want one of %s)",
			s.Memory, strings.Join(Memories(), ", "))
	}
	if s.Inflight < 1 {
		return fmt.Errorf("experiments: invalid spec: inflight %d (want >= 1 in-flight memory requests)", s.Inflight)
	}
	if s.Scale < 1 {
		return fmt.Errorf("experiments: invalid spec: scale %d (want >= 1; the trace footprint divisor)", s.Scale)
	}
	if s.Limit == 0 {
		return fmt.Errorf("experiments: invalid spec: limit 0 (want a simulated-time bound in ticks, e.g. %d for 8 s)", 8*sim.Second)
	}
	if s.RTLEngine != "" {
		if _, err := rtl.ParseEngine(s.RTLEngine); err != nil {
			return fmt.Errorf("experiments: invalid spec: %w", err)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("experiments: invalid spec: shards %d (want >= 0; 0 or 1 selects the serial engine)", s.Shards)
	}
	return nil
}

// runSpecJSON mirrors RunSpec for strict decoding without recursing into
// RunSpec.UnmarshalJSON.
type runSpecJSON struct {
	Workload  string   `json:"workload"`
	NVDLAs    int      `json:"nvdlas"`
	Memory    string   `json:"memory"`
	Inflight  int      `json:"inflight"`
	Scale     int      `json:"scale"`
	Limit     sim.Tick `json:"limit"`
	RTLEngine string   `json:"rtl_engine,omitempty"`
	Shards    int      `json:"shards,omitempty"`
}

// UnmarshalJSON decodes a spec strictly: an unknown field is an error, so a
// typo in a submitted batch ("inflght") fails loudly instead of silently
// running the zero value.
func (s *RunSpec) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw runSpecJSON
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("experiments: decoding RunSpec: %w", err)
	}
	*s = RunSpec(raw)
	return nil
}

// CanonicalJSON renders the spec in its canonical form: compact, fields in
// declaration order. Two equal specs always produce identical bytes, so the
// encoding is usable as a deduplication key.
func (s RunSpec) CanonicalJSON() []byte {
	raw := runSpecJSON(s)
	// Engines are dispatch-identical and shard counts result-identical: the
	// execution-strategy knobs must not split the result-store key space, so
	// they never reach the canonical bytes.
	raw.RTLEngine = ""
	raw.Shards = 0
	b, err := json.Marshal(raw)
	if err != nil {
		// Marshalling a struct of strings and integers cannot fail.
		panic("experiments: RunSpec canonical encoding: " + err.Error())
	}
	return b
}

// Fingerprint returns the hex SHA-256 of the canonical JSON encoding — the
// sweep service's result-store key. Identical submitted points share a
// fingerprint, simulate once, and cache-hit forever.
func (s RunSpec) Fingerprint() string {
	sum := sha256.Sum256(s.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// ParseSpecs decodes a JSON array of RunSpecs strictly and validates each
// one; the error names the offending array index.
func ParseSpecs(data []byte) ([]RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var specs []RunSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("experiments: decoding spec list: %w", err)
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("spec[%d]: %w", i, err)
		}
	}
	return specs, nil
}

// Spec converts a DSEParams-era positional call into a RunSpec.
func (p DSEParams) Spec(workload string, nDLA int, memory string, inflight int) RunSpec {
	return RunSpec{Workload: workload, NVDLAs: nDLA, Memory: memory,
		Inflight: inflight, Scale: p.Scale, Limit: p.Limit,
		RTLEngine: p.RTLEngine, Shards: p.Shards}
}
