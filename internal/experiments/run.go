package experiments

import (
	"bytes"
	"context"
	"fmt"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/stats"
)

// Option configures one Run call. Options compose: warm-start, liveness
// guarding and observability are independent axes, and any subset may be
// active on the same point. The former RunPoint/RunPointWarm/RunPointGuarded
// entry points are exactly Run with zero or one option.
type Option func(*runOpts)

type runOpts struct {
	warmup    sim.Tick
	cache     *CheckpointCache
	guard     *guard.Config
	trace     *obs.Config
	stateHash *uint64
	statsSink func([]stats.Sample)
	profEvery int
	profSink  func(*prof.Report)
}

// WithWarmStart turns the run into a warm-start point against cache: the
// first execution of a spec snapshots the full system at the warmup tick and
// later executions restore the snapshot and simulate only the remainder.
// Results are bit-identical either way (the soc restore-equivalence
// property). A zero warmup or nil cache leaves the run cold.
func WithWarmStart(warmup sim.Tick, cache *CheckpointCache) Option {
	return func(o *runOpts) {
		o.warmup = warmup
		o.cache = cache
	}
}

// WithWatchdog attaches a liveness watchdog with the given configuration, so
// a hung point surfaces as a *guard.HangError instead of idling to the time
// limit. Composes with WithWarmStart: the watchdog is detached around the
// snapshot save/restore (its check event is host-side and not serialisable)
// and re-attached for the simulated remainder.
//
// An untripped watchdog never perturbs simulated behaviour — component events
// dispatch at the same ticks and the run finishes at the same time — but its
// periodic check event does consume event-queue sequence numbers and dispatch
// counts, which the checkpoint format serialises. A guarded run's StateHash
// therefore differs from an unguarded one even though the simulated machine
// is identical; compare hashes only between runs with the same guard setting.
func WithWatchdog(cfg guard.Config) Option {
	return func(o *runOpts) { o.guard = &cfg }
}

// WithTracer attaches a debug-flag tracer to the point's system (see
// obs.Config). Tracing is observational: a traced run dispatches the same
// events at the same ticks as an untraced one.
func WithTracer(cfg obs.Config) Option {
	return func(o *runOpts) { o.trace = &cfg }
}

// WithStateHash stores the post-run full-system state digest (soc.StateHash)
// into dst — the bit-identity witness tests and the sweep service use to
// prove two execution paths produced the same machine.
func WithStateHash(dst *uint64) Option {
	return func(o *runOpts) { o.stateHash = dst }
}

// WithStats delivers the point's final statistics (sorted, deterministic) to
// sink after the run completes.
func WithStats(sink func([]stats.Sample)) Option {
	return func(o *runOpts) { o.statsSink = sink }
}

// WithSelfProfile attaches the event-kernel self-profiler to the point's
// system (soc.AttachSelfProfiler; every <= 0 selects the default clock-read
// cadence) and delivers the per-component attribution report to sink after
// the run completes. The report's event counts are exact and deterministic;
// its host-time shares are sampled wall time. Profiling is observational:
// the simulated machine and its final stats are byte-identical either way.
// The checkpoint stream — and therefore StateHash, which digests it — gains
// the exact event-count attribution table when profiling is on, so a
// warm-start restore continues the prefix's attribution; the hash stays
// deterministic in both modes.
// Under warm-start the checkpoint carries the warm-up prefix's event counts,
// so a restore run's attribution equals the uninterrupted run's exactly.
func WithSelfProfile(every int, sink func(*prof.Report)) Option {
	return func(o *runOpts) {
		o.profEvery = every
		o.profSink = sink
	}
}

// Run executes one simulation point: n accelerator instances, each running
// its own copy of the workload trace (the paper's setup), on the named
// memory technology with the given in-flight cap. Cancelling ctx aborts the
// event loop promptly and returns ctx.Err(). Options layer warm-start
// checkpointing, liveness guarding and observability onto the same run; see
// WithWarmStart, WithWatchdog, WithTracer, WithStateHash, WithStats.
func Run(ctx context.Context, spec RunSpec, opts ...Option) (sim.Tick, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if o.warmup > 0 && o.cache != nil {
		return runWarm(ctx, spec, &o)
	}
	return runCold(ctx, spec, &o)
}

// attach wires the pre-run observability and guarding options into a built
// system. It returns the attached watchdog (nil when unguarded) so callers
// can detach it around checkpoint saves.
func (o *runOpts) attach(s *soc.System) (*guard.Watchdog, error) {
	if o.trace != nil {
		if _, err := s.AttachTracer(*o.trace); err != nil {
			return nil, err
		}
	}
	if o.profSink != nil {
		s.AttachSelfProfiler(o.profEvery)
	}
	if o.guard != nil {
		return s.AttachWatchdog(*o.guard), nil
	}
	return nil, nil
}

// finish runs the post-run option sinks.
func (o *runOpts) finish(s *soc.System) error {
	if o.stateHash != nil {
		h, err := s.StateHash()
		if err != nil {
			return fmt.Errorf("experiments: post-run state hash: %w", err)
		}
		*o.stateHash = h
	}
	if o.statsSink != nil {
		o.statsSink(s.Stats.SnapshotSorted())
	}
	if o.profSink != nil {
		o.profSink(prof.FromQueues(s.ShardQueues...))
	}
	return nil
}

// runCold executes the point from tick 0 with no checkpointing.
func runCold(ctx context.Context, spec RunSpec, o *runOpts) (sim.Tick, error) {
	s, err := buildPoint(spec)
	if err != nil {
		// A point that cannot build will not build on a retry either.
		return 0, Permanent(err)
	}
	wd, err := o.attach(s)
	if err != nil {
		return 0, Permanent(err)
	}
	done, err := s.RunUntilNVDLAsDoneCtx(ctx, spec.Limit)
	obs.CountEvents(s.Dispatched())
	// Stop before the finish sinks: the watchdog's host-side check event must
	// not be scheduled while StateHash serialises the queue.
	if wd != nil {
		wd.Stop()
	}
	if err != nil {
		return done, err
	}
	if ferr := o.finish(s); ferr != nil {
		return 0, ferr
	}
	return done, nil
}

// runWarm executes the point with warm-start checkpointing. On a cache hit
// it builds a fresh system, restores the snapshot and simulates only the
// remainder; on a miss it runs the warm-up prefix from tick 0, snapshots the
// full system at the warmup tick (watchdog detached around the save — its
// check event is host-side), then finishes the run. A snapshot that fails to
// restore (a stale file persisted by an older build) is dropped and the
// point transparently falls back to a cold run.
func runWarm(ctx context.Context, spec RunSpec, o *runOpts) (sim.Tick, error) {
	if blob, ok := o.cache.load(spec, o.warmup); ok {
		s, err := soc.Build(specConfig(spec))
		if err != nil {
			return 0, Permanent(err)
		}
		if o.trace != nil {
			if _, err := s.AttachTracer(*o.trace); err != nil {
				return 0, Permanent(err)
			}
		}
		if o.profSink != nil {
			// Attach before the restore so the snapshot's attribution
			// counts fold straight into the live profiler.
			s.AttachSelfProfiler(o.profEvery)
		}
		if _, err := s.Restore(bytes.NewReader(blob)); err == nil {
			o.cache.countHit()
			var wd *guard.Watchdog
			if o.guard != nil {
				wd = s.AttachWatchdog(*o.guard)
			}
			done, err := s.RunUntilNVDLAsDoneCtx(ctx, spec.Limit)
			obs.CountEvents(s.Dispatched())
			if wd != nil {
				wd.Stop()
			}
			if err != nil {
				return done, err
			}
			if ferr := o.finish(s); ferr != nil {
				return 0, ferr
			}
			return done, nil
		}
		o.cache.countStale()
		o.cache.drop(spec, o.warmup)
	}
	s, err := buildPoint(spec)
	if err != nil {
		return 0, Permanent(err)
	}
	wd, err := o.attach(s)
	if err != nil {
		return 0, Permanent(err)
	}
	done, remaining, err := s.RunNVDLAPhase(ctx, o.warmup)
	if err != nil {
		if wd != nil {
			wd.Stop()
		}
		return 0, err
	}
	if remaining == 0 {
		// Finished inside the warm-up window; nothing worth snapshotting.
		if wd != nil {
			wd.Stop()
		}
		if ferr := o.finish(s); ferr != nil {
			return 0, ferr
		}
		return done, nil
	}
	// The watchdog's check event is host-side and not serialisable; detach
	// it around the save and re-attach for the remainder.
	if wd != nil {
		wd.Stop()
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return 0, fmt.Errorf("experiments: warm-start snapshot for %v: %w", spec, err)
	}
	o.cache.store(spec, o.warmup, buf.Bytes())
	if o.guard != nil {
		wd = s.AttachWatchdog(*o.guard)
	}
	total, err := s.RunUntilNVDLAsDoneCtx(ctx, spec.Limit)
	obs.CountEvents(s.Dispatched())
	if wd != nil {
		wd.Stop()
	}
	if err != nil {
		return total, err
	}
	if ferr := o.finish(s); ferr != nil {
		return 0, ferr
	}
	return total, nil
}
