package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// eventCounts flattens a report to its deterministic part: exact per-owner
// event counts. Host-time shares are sampled wall time and excluded from
// every comparison here, mirroring the BENCH gating policy.
func eventCounts(r *prof.Report) map[string]uint64 {
	out := map[string]uint64{}
	for _, s := range r.Samples {
		out[s.Component+"/"+s.Kind] += s.Events
	}
	return out
}

func diffCounts(t *testing.T, label string, got, want map[string]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d owners vs %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: owner %s counted %d events, want %d", label, k, got[k], n)
		}
	}
}

// TestSelfProfileObservational pins the tentpole contract: running a point
// with the self-profiler attached changes neither the completion tick nor
// the final simulated statistics — the simulated machine cannot see the
// profiler. (StateHash is excluded from the on/off comparison by design:
// with profiling on the checkpoint stream additionally carries the exact
// attribution table, which the digest covers — and the stream's packet-ID
// high-water mark is process-global, so hashes only compare within one
// save/restore pair, never across independent runs.)
func TestSelfProfileObservational(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 64)
	ctx := context.Background()

	var offStats []stats.Sample
	offTicks, err := Run(ctx, spec, WithStats(func(s []stats.Sample) { offStats = s }))
	if err != nil {
		t.Fatal(err)
	}

	var onStats []stats.Sample
	var rep *prof.Report
	onTicks, err := Run(ctx, spec,
		WithStats(func(s []stats.Sample) { onStats = s }),
		WithSelfProfile(16, func(r *prof.Report) { rep = r }))
	if err != nil {
		t.Fatal(err)
	}

	if onTicks != offTicks {
		t.Errorf("profiling changed the result: %d ticks vs %d", onTicks, offTicks)
	}
	if !reflect.DeepEqual(onStats, offStats) {
		t.Errorf("profiling changed the final stats:\n%v\nvs\n%v", onStats, offStats)
	}
	if rep == nil || len(rep.Samples) == 0 {
		t.Fatal("profiled run delivered no attribution report")
	}
	if rep.TotalEvents() == 0 {
		t.Fatal("attribution report has zero events")
	}
	// The full table's shares must sum to 1 (allowing float rounding).
	var sum float64
	for _, row := range rep.Table(0) {
		sum += row.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("attribution shares sum to %v, want 1", sum)
	}
}

// TestAttributionCheckpointMatchesCold is the satellite regression: a
// warm-start (save/restore) run's event-count attribution must equal the
// cold run's exactly — the checkpoint carries the warm-up prefix's counts
// and AttachProfiler folds them back in on restore.
func TestAttributionCheckpointMatchesCold(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 64)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond

	var cold *prof.Report
	coldTicks, err := Run(ctx, spec, WithSelfProfile(16, func(r *prof.Report) { cold = r }))
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCheckpointCache("")
	var populate *prof.Report
	if _, err := Run(ctx, spec, WithWarmStart(warmup, cache),
		WithSelfProfile(16, func(r *prof.Report) { populate = r })); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("warm-up run stored no snapshot")
	}

	var warm *prof.Report
	warmTicks, err := Run(ctx, spec, WithWarmStart(warmup, cache),
		WithSelfProfile(16, func(r *prof.Report) { warm = r }))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatal("second run did not restore from the cache")
	}

	if warmTicks != coldTicks {
		t.Fatalf("warm run diverged: %d ticks vs %d", warmTicks, coldTicks)
	}
	want := eventCounts(cold)
	diffCounts(t, "populate run", eventCounts(populate), want)
	diffCounts(t, "restored run", eventCounts(warm), want)
}

// TestAttributionDeterministicAcrossWorkers sweeps the same specs with one
// and with four workers and requires identical per-point event-count
// attribution: counts only mutate inside each point's single-threaded
// dispatch loop, so worker count must not matter.
func TestAttributionDeterministicAcrossWorkers(t *testing.T) {
	specs := warmSpecs()
	ctx := context.Background()

	seq, err := Runner{Workers: 1, SelfProfile: 16}.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 4, SelfProfile: 16}.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	profiled := 0
	for i := range specs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("point %v failed: seq=%v par=%v", specs[i], seq[i].Err, par[i].Err)
		}
		if specs[i].isIdeal() {
			// Ideal baseline points share the normalisation cache and stay
			// unprofiled by design.
			if seq[i].Attr != nil || par[i].Attr != nil {
				t.Errorf("ideal point %v unexpectedly profiled", specs[i])
			}
			continue
		}
		if seq[i].Attr == nil || par[i].Attr == nil {
			t.Fatalf("point %v missing attribution: seq=%v par=%v",
				specs[i], seq[i].Attr != nil, par[i].Attr != nil)
		}
		diffCounts(t, specs[i].String(), eventCounts(par[i].Attr), eventCounts(seq[i].Attr))
		profiled++
	}
	if profiled == 0 {
		t.Fatal("sweep profiled no points")
	}
}
