package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"gem5rtl/internal/guard"
	"gem5rtl/internal/nvdla"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/trace"
	"gem5rtl/internal/workload"
)

// FaultCampaign configures a seeded NVDLA fault-injection campaign: Count
// independent simulations of Spec, each with exactly one fault injected at a
// seed-derived point (port payload flips, lost/replayed/delayed responses,
// DRAM bit flips), classified against a fault-free reference run. The same
// Seed always produces the same fault list and — because each point is a
// single-threaded deterministic simulation — the same classification table,
// regardless of the runner's worker count.
type FaultCampaign struct {
	Spec  RunSpec
	Seed  uint64
	Count int
	// Guard tunes the per-run watchdog that reaps hung injections. The zero
	// value selects the guard defaults.
	Guard guard.Config
	// SelfProfile, when > 0, attaches the event-kernel self-profiler to every
	// run (reference and injections) with this clock-read cadence. Profiling
	// is observational: the classification table is unchanged.
	SelfProfile int
	// AttrSink receives each profiled run's attribution report. It is called
	// from worker goroutines and must be safe for concurrent use.
	AttrSink func(*prof.Report)
}

// FaultResult is the classified outcome of one injection.
type FaultResult struct {
	Index   int
	Fault   guard.Fault
	Outcome guard.Outcome
	// Detail is the outcome evidence: the watchdog trip reason, the recovered
	// panic, or a note that the fault point was never reached.
	Detail string
	// Err is a campaign-level failure (cancellation, build error) — distinct
	// from the fault's own effect, which is always an Outcome.
	Err error
}

// memRegion is a preloaded or written address range within one accelerator's
// private region (base-relative).
type memRegion struct {
	addr uint64
	size uint64
}

// traceRegions extracts the base-relative memory footprint of a trace: the
// preloaded input/weight regions and the programmed output regions.
func traceRegions(tr *trace.Trace) (loads, outs []memRegion) {
	var outLo, outHi uint64
	var outBytes uint32
	for _, op := range tr.Ops {
		switch op.Kind {
		case trace.OpLoadMem:
			if len(op.Data) > 0 {
				loads = append(loads, memRegion{op.Addr, uint64(len(op.Data))})
			}
		case trace.OpWriteReg:
			switch op.Addr {
			case nvdla.RegOutAddrLo:
				outLo = uint64(op.Val)
			case nvdla.RegOutAddrHi:
				outHi = uint64(op.Val)
			case nvdla.RegOutBytes:
				outBytes = op.Val
			case nvdla.RegLayerCommit:
				if op.Val&1 != 0 && outBytes > 0 {
					outs = append(outs, memRegion{outHi<<32 | outLo, uint64(outBytes)})
				}
			}
		}
	}
	return loads, outs
}

// faultRunResult is the raw outcome of one (possibly faulted) simulation.
type faultRunResult struct {
	sig   uint64
	end   sim.Tick
	hang  *guard.HangError
	fired bool
}

// faultRun builds and runs one point with an optional injected fault and a
// watchdog, returning the output signature and hang state. A nil fault is the
// reference run.
func faultRun(ctx context.Context, c FaultCampaign, f *guard.Fault, outs []memRegion) (faultRunResult, error) {
	var res faultRunResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	spec := c.Spec
	s, err := buildPoint(spec)
	if err != nil {
		return res, err
	}
	if c.SelfProfile > 0 {
		s.AttachSelfProfiler(c.SelfProfile)
	}
	wd := s.AttachWatchdog(c.Guard)
	defer wd.Stop()
	var tap *guard.PacketFaultTap
	if f != nil {
		switch f.Kind {
		case guard.ReadPayloadFlip, guard.WritePayloadFlip, guard.DropResp, guard.DupResp, guard.DelayResp:
			tap = &guard.PacketFaultTap{F: *f}
			dla, pi := f.Link/2, f.Link%2
			inj := port.Interpose(s.NVDLAs[dla].MemPort(pi), tap)
			tap.BindDelay(s.Queue, inj)
		case guard.DRAMBitFlip:
			addr, bit := f.Addr, f.Bit%8
			s.Queue.ScheduleOneShotOwned("guard.dram-bit-flip", f.Tick,
				s.Queue.Owner("guard", "fault-inject"), func() {
					var b [1]byte
					s.Store.Read(addr, b[:])
					b[0] ^= 1 << bit
					s.Store.Write(addr, b[:])
					res.fired = true
				})
		}
	}
	_, remaining, runErr := s.RunNVDLAPhase(ctx, spec.Limit)
	res.end = s.Queue.Now()
	if runErr != nil {
		var h *guard.HangError
		if !errors.As(runErr, &h) {
			return res, runErr
		}
		res.hang = h
	}
	if res.hang == nil && remaining > 0 {
		res.hang = &guard.HangError{Tick: res.end,
			Reason: fmt.Sprintf("time limit with %d accelerators still running", remaining)}
	}
	if tap != nil {
		res.fired = tap.Fired
	} else if f == nil {
		res.fired = true
	}
	res.sig = outputSignature(s, outs)
	if c.AttrSink != nil {
		if rep := prof.FromQueue(s.Queue); rep != nil {
			c.AttrSink(rep)
		}
	}
	return res, nil
}

// outputSignature hashes what the run architecturally produced: each
// accelerator's completion flag and the bytes of every output region. Timing
// is deliberately excluded, so a pure latency fault that still produces the
// right data classifies as masked.
func outputSignature(s *soc.System, outs []memRegion) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4096)
	for _, w := range s.NVDLAWrappers {
		if w.Done() {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, reg := range outs {
		for off := uint64(0); off < reg.size; off += uint64(len(buf)) {
			n := reg.size - off
			if n > uint64(len(buf)) {
				n = uint64(len(buf))
			}
			s.Store.Read(reg.addr+off, buf[:n])
			h.Write(buf[:n])
		}
	}
	return h.Sum64()
}

// genFaults derives the campaign's fault list from the seed. Each fault draws
// from its own DeriveSeed stream, so the list is stable under Count changes:
// fault i is the same in a 10-fault and a 100-fault campaign.
func genFaults(c FaultCampaign, tr *trace.Trace, loads, outs []memRegion, refEnd sim.Tick) []guard.Fault {
	faults := make([]guard.Fault, c.Count)
	links := c.Spec.NVDLAs * 2
	readPkts := tr.TotalReadBytes / 64
	if readPkts == 0 {
		readPkts = 1
	}
	writePkts := tr.TotalWriteBytes / 64
	if writePkts == 0 {
		writePkts = 1
	}
	regions := append(append([]memRegion{}, loads...), outs...)
	for i := range faults {
		rng := guard.NewRNG(guard.DeriveSeed(c.Seed, i))
		f := &faults[i]
		k := rng.Intn(100)
		switch {
		case k < 20:
			f.Kind = guard.ReadPayloadFlip
		case k < 40:
			f.Kind = guard.WritePayloadFlip
		case k < 55:
			f.Kind = guard.DropResp
		case k < 65:
			f.Kind = guard.DupResp
		case k < 75:
			f.Kind = guard.DelayResp
		default:
			f.Kind = guard.DRAMBitFlip
		}
		switch f.Kind {
		case guard.WritePayloadFlip:
			// Output writes all leave through the DBBIF port (even links).
			f.Link = 2 * rng.Intn(c.Spec.NVDLAs)
			f.PktIndex = rng.Uint64n(writePkts)
			f.Byte = rng.Intn(64)
			f.Bit = uint(rng.Intn(8))
		case guard.ReadPayloadFlip, guard.DropResp, guard.DupResp, guard.DelayResp:
			f.Link = rng.Intn(links)
			// Keep indices in the first quarter of the read stream so the
			// fault point is almost surely reached on either port.
			f.PktIndex = rng.Uint64n(max(readPkts/4, 1))
			f.Byte = rng.Intn(64)
			f.Bit = uint(rng.Intn(8))
			if f.Kind == guard.DelayResp {
				f.Delay = sim.Tick(1+rng.Intn(10)) * sim.Microsecond
			}
		case guard.DRAMBitFlip:
			dla := rng.Intn(c.Spec.NVDLAs)
			reg := regions[rng.Intn(len(regions))]
			f.Addr = (uint64(dla)+1)<<32 + reg.addr + rng.Uint64n(reg.size)
			f.Bit = uint(rng.Intn(8))
			f.Tick = 1 + sim.Tick(rng.Uint64n(uint64(refEnd)))
		}
	}
	return faults
}

// FaultCampaign runs the configured campaign on the runner's worker pool:
// one fault-free reference run, then Count single-fault runs classified
// against it. A hung injection is reaped by the per-run watchdog and reported
// as an Outcome, not an error; a panicking injection (e.g. a duplicated
// response hitting an integrity check) classifies as Detected. The returned
// error is non-nil only for campaign-level failures: a failing reference run
// or context cancellation (partial results are still returned).
func (r Runner) FaultCampaign(ctx context.Context, c FaultCampaign) ([]FaultResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Spec.NVDLAs <= 0 {
		return nil, fmt.Errorf("experiments: fault campaign needs at least one accelerator")
	}
	tr, err := buildTrace(c.Spec.Workload, 0, c.Spec.Scale)
	if err != nil {
		return nil, err
	}
	loads, outs := traceRegions(tr)
	var outsAbs []memRegion
	for dla := 0; dla < c.Spec.NVDLAs; dla++ {
		base := (uint64(dla) + 1) << 32
		for _, reg := range outs {
			outsAbs = append(outsAbs, memRegion{base + reg.addr, reg.size})
		}
	}
	ref, err := faultRun(ctx, c, nil, outsAbs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault-campaign reference run: %w", err)
	}
	if ref.hang != nil {
		return nil, fmt.Errorf("experiments: fault-campaign reference run hung: %s", ref.hang.Reason)
	}
	faults := genFaults(c, tr, loads, outs, ref.end)
	results := make([]FaultResult, len(faults))
	for i := range results {
		results[i] = FaultResult{Index: i, Fault: faults[i]}
	}
	ferr := r.ForEach(ctx, len(faults), func(ctx context.Context, i int) error {
		results[i] = runFault(ctx, c, i, faults[i], ref, outsAbs)
		return ctx.Err()
	})
	return results, ferr
}

// runFault executes and classifies one injection. Its own panic recovery maps
// an integrity-check abort (a simulator panic caused by the fault) to
// Detected, so a campaign never crashes on a fault the simulator caught.
func runFault(ctx context.Context, c FaultCampaign, i int, f guard.Fault, ref faultRunResult, outs []memRegion) (res FaultResult) {
	res = FaultResult{Index: i, Fault: f}
	defer func() {
		if p := recover(); p != nil {
			res.Outcome = guard.Detected
			res.Detail = fmt.Sprintf("panic: %v", p)
			res.Err = nil
		}
	}()
	run, err := faultRun(ctx, c, &f, outs)
	if err != nil {
		res.Err = err
		return res
	}
	res.Outcome, res.Detail = classify(run, ref)
	return res
}

// classify maps a faulted run against the reference.
func classify(run, ref faultRunResult) (guard.Outcome, string) {
	switch {
	case run.hang != nil:
		return guard.Hung, run.hang.Reason
	case run.sig != ref.sig:
		return guard.Corrupted, "output signature differs from reference"
	case !run.fired:
		return guard.Masked, "fault point never reached"
	default:
		return guard.Masked, ""
	}
}

// FormatFaultTable renders the campaign's kind x outcome classification
// counts. The text is deterministic in the results, so two same-seed
// campaigns render byte-identical tables.
func FormatFaultTable(results []FaultResult) string {
	var counts [guard.RTLStateFlip + 1][4]int
	errs := 0
	for _, r := range results {
		if r.Err != nil {
			errs++
			continue
		}
		counts[r.Fault.Kind][r.Outcome]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %7s %9s %10s %5s %6s\n",
		"kind", "masked", "detected", "corrupted", "hung", "total")
	for k := range counts {
		row := counts[k]
		total := row[0] + row[1] + row[2] + row[3]
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-20s %7d %9d %10d %5d %6d\n",
			guard.FaultKind(k), row[0], row[1], row[2], row[3], total)
	}
	if errs > 0 {
		fmt.Fprintf(&b, "errors: %d\n", errs)
	}
	return b.String()
}

// PMUCampaign configures a seeded RTL-state fault campaign against the PMU:
// Count runs of the sort benchmark with the PMU attached, each flipping one
// seed-selected register or memory bit of the PMU's RTL model at a
// seed-selected simulated time.
type PMUCampaign struct {
	Seed  uint64
	Count int
	// SortN sizes the guest sort benchmark (0 = 60).
	SortN int
	// SleepUs separates the benchmark phases (0 = 10).
	SleepUs int
	// Limit bounds one run's simulated time (0 = 1 s).
	Limit sim.Tick
	Guard guard.Config
	// SelfProfile and AttrSink mirror FaultCampaign: cadence > 0 attaches the
	// self-profiler to every run, and AttrSink (called from worker goroutines;
	// must be concurrency-safe) receives each run's attribution report.
	SelfProfile int
	AttrSink    func(*prof.Report)
}

// pmuRun executes the PMU workload once with an optional RTL state flip.
func pmuRun(ctx context.Context, c PMUCampaign, f *guard.Fault) (faultRunResult, error) {
	var res faultRunResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.WithPMU = true
	s, err := soc.Build(cfg)
	if err != nil {
		return res, err
	}
	if c.SelfProfile > 0 {
		s.AttachSelfProfiler(c.SelfProfile)
	}
	host := NewAXIHost(s.Queue)
	port.Bind(host.Port(), s.PMU.CPUPort(0))
	s.PMU.Start()
	host.Write(pmu.RegEnable, 0x3F)
	host.Write(pmu.RegThreshSel, pmu.EvCycle)
	host.Write(pmu.RegThreshVal, 10000)
	if err := s.LoadProgram(0, workload.SortBenchmark(workload.SortParams{
		N: c.SortN, SleepUs: c.SleepUs})); err != nil {
		return res, err
	}
	done := false
	s.Cores[0].OnExit = func(int64) { done = true; s.Queue.ExitSimLoop("exit") }
	s.StartCores(0)
	wd := s.AttachWatchdog(c.Guard)
	defer wd.Stop()
	if f != nil {
		pick := f.Pick
		s.Queue.ScheduleOneShotOwned("guard.rtl-state-flip", f.Tick,
			s.Queue.Owner("guard", "fault-inject"), func() {
				s.PMUWrapper.Model().InjectStateFlip(pick)
				res.fired = true
			})
	} else {
		res.fired = true
	}
	stop := s.Queue.WatchContext(ctx, 0)
	defer stop()
	s.Queue.RunUntil(c.Limit)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.end = s.Queue.Now()
	if werr := wd.Err(); werr != nil {
		var h *guard.HangError
		errors.As(werr, &h)
		res.hang = h
	} else if !done {
		res.hang = &guard.HangError{Tick: res.end, Reason: "time limit before guest exit"}
	}
	// Signature: the 20 PMU counters plus the core's committed-instruction
	// count — a flipped counter or a derailed measurement both surface here.
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < pmu.NumCounters; i++ {
		v := s.PMUWrapper.Counter(i)
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:4])
	}
	committed := s.Cores[0].Stats().Committed
	for i := 0; i < 8; i++ {
		buf[i] = byte(committed >> (8 * i))
	}
	h.Write(buf[:])
	res.sig = h.Sum64()
	if c.AttrSink != nil {
		if rep := prof.FromQueue(s.Queue); rep != nil {
			c.AttrSink(rep)
		}
	}
	return res, nil
}

// PMUFaultCampaign runs the configured PMU campaign on the runner's worker
// pool. Semantics mirror FaultCampaign: one reference run, Count classified
// single-fault runs, hangs reaped by the watchdog, same seed, same table.
func (r Runner) PMUFaultCampaign(ctx context.Context, c PMUCampaign) ([]FaultResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.SortN <= 0 {
		c.SortN = 60
	}
	if c.SleepUs <= 0 {
		c.SleepUs = 10
	}
	if c.Limit <= 0 {
		c.Limit = 1 * sim.Second
	}
	ref, err := pmuRun(ctx, c, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: PMU fault-campaign reference run: %w", err)
	}
	if ref.hang != nil {
		return nil, fmt.Errorf("experiments: PMU fault-campaign reference run hung: %s", ref.hang.Reason)
	}
	results := make([]FaultResult, c.Count)
	for i := range results {
		rng := guard.NewRNG(guard.DeriveSeed(c.Seed, i))
		results[i] = FaultResult{Index: i, Fault: guard.Fault{
			Kind: guard.RTLStateFlip,
			Pick: rng.Uint64(),
			Tick: 1 + sim.Tick(rng.Uint64n(uint64(ref.end))),
		}}
	}
	ferr := r.ForEach(ctx, len(results), func(ctx context.Context, i int) error {
		f := results[i].Fault
		res := FaultResult{Index: i, Fault: f}
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.Outcome = guard.Detected
					res.Detail = fmt.Sprintf("panic: %v", p)
				}
			}()
			run, err := pmuRun(ctx, c, &f)
			if err != nil {
				res.Err = err
				return
			}
			res.Outcome, res.Detail = classify(run, ref)
		}()
		results[i] = res
		return ctx.Err()
	})
	return results, ferr
}
