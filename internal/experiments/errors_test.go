package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gem5rtl/internal/sim"
)

// TestPermanentErrorTaxonomy pins the transient-vs-permanent contract the
// sweep service's retry policy is built on: wrapped errors classify as
// permanent through arbitrary further wrapping, nil stays nil, and ordinary
// errors stay transient.
func TestPermanentErrorTaxonomy(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	base := errors.New("no such workload")
	perm := Permanent(base)
	if !IsPermanent(perm) {
		t.Error("wrapped error not permanent")
	}
	if !IsPermanent(fmt.Errorf("spec[3]: %w", perm)) {
		t.Error("permanence lost through fmt.Errorf wrapping")
	}
	if !errors.Is(perm, base) {
		t.Error("Unwrap does not expose the underlying error")
	}
	if IsPermanent(base) || IsPermanent(context.DeadlineExceeded) {
		t.Error("unwrapped errors must classify transient")
	}
}

// TestRunClassifiesBuildFailuresPermanent runs a spec that cannot build (an
// unknown workload trace) and expects the failure marked permanent — the
// service must quarantine it immediately instead of burning retry attempts.
func TestRunClassifiesBuildFailuresPermanent(t *testing.T) {
	spec := RunSpec{Workload: "no-such-workload", NVDLAs: 1, Memory: "HBM",
		Inflight: 16, Scale: 32, Limit: 8 * sim.Second}
	_, err := Run(context.Background(), spec)
	if err == nil {
		t.Fatal("unknown workload ran successfully")
	}
	if !IsPermanent(err) {
		t.Errorf("build failure not permanent: %v", err)
	}
	// A cancelled context is a scheduling artefact, never permanent.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testGridSpec()); !errors.Is(err, context.Canceled) || IsPermanent(err) {
		t.Errorf("cancelled run misclassified: %v", err)
	}
}

// testGridSpec is a small valid spec for classification tests.
func testGridSpec() RunSpec {
	return DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 16)
}
