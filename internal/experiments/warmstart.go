package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
)

// specConfig maps a sweep point to its SoC configuration.
func specConfig(spec RunSpec) soc.Config {
	cfg := soc.DefaultConfig()
	cfg.Cores = 1 // host cores idle during accelerator runs; keep one for realism
	cfg.Memory = spec.Memory
	cfg.NVDLAs = spec.NVDLAs
	cfg.NVDLAMaxInflight = spec.Inflight
	cfg.RTLEngine = rtl.Engine(spec.RTLEngine)
	cfg.Shards = spec.Shards
	return cfg
}

// buildPoint builds and fully sets up one simulation point: accelerators
// started and each playing its own copy of the workload trace.
func buildPoint(spec RunSpec) (*soc.System, error) {
	s, err := soc.Build(specConfig(spec))
	if err != nil {
		return nil, err
	}
	for i := 0; i < spec.NVDLAs; i++ {
		s.NVDLAs[i].Start()
		tr, err := buildTrace(spec.Workload, uint64(i+1)<<32, spec.Scale)
		if err != nil {
			return nil, err
		}
		s.PlayTrace(i, tr)
	}
	return s, nil
}

// CheckpointCache holds post-warm-up system snapshots keyed by simulation
// point. The first run of a point populates its entry (taken at the runner's
// Warmup tick); every later run of the same point restores it into a fresh
// build and simulates only the remainder. Entries live in memory; setting
// Dir additionally persists them as files so the warm start survives across
// processes (cmd/nvdla-dse -checkpoint-dir). The zero value is not usable —
// construct with NewCheckpointCache.
type CheckpointCache struct {
	dir string
	mu  sync.Mutex
	mem map[ckptKey][]byte

	// Effectiveness counters, mirrored into the host-wide obs counters so
	// warm-start behaviour is visible in interval dumps and the sweep
	// service's status endpoint. A formerly silent miss or stale-drop now
	// always leaves a trace.
	hits    atomic.Uint64
	misses  atomic.Uint64
	stale   atomic.Uint64
	corrupt atomic.Uint64
}

// CacheStats is a point-in-time view of warm-start cache effectiveness:
// how many runs restored a snapshot (Hits), ran cold because none existed
// (Misses), dropped an unrestorable snapshot and fell back cold (Stale), or
// rejected a persisted file whose integrity trailer did not verify — a torn
// write, a flipped bit — and fell back cold (Corrupt).
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
	Corrupt uint64 `json:"corrupt"`
}

// Stats samples the cache's effectiveness counters.
func (c *CheckpointCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(),
		Stale: c.stale.Load(), Corrupt: c.corrupt.Load()}
}

// countHit records a snapshot restore, here and host-wide.
func (c *CheckpointCache) countHit() { c.hits.Add(1); obs.CountCkptHit() }

// countMiss records a cold run due to an absent snapshot.
func (c *CheckpointCache) countMiss() { c.misses.Add(1); obs.CountCkptMiss() }

// countStale records a dropped unrestorable snapshot.
func (c *CheckpointCache) countStale() { c.stale.Add(1); obs.CountCkptStale() }

// countCorrupt records a discarded persisted snapshot that failed its
// integrity check.
func (c *CheckpointCache) countCorrupt() { c.corrupt.Add(1); obs.CountCkptCorrupt() }

// ckptKey identifies a warm-up prefix: the point's behaviour-affecting
// fields plus the warm-up tick. Limit is zeroed — it only bounds the run and
// does not influence the prefix.
type ckptKey struct {
	spec   RunSpec
	warmup sim.Tick
}

// NewCheckpointCache returns an empty cache. dir may be "" for a purely
// in-memory cache, or a directory (created on first store) for cross-process
// persistence.
func NewCheckpointCache(dir string) *CheckpointCache {
	return &CheckpointCache{dir: dir, mem: map[ckptKey][]byte{}}
}

// Len reports how many snapshots the in-memory layer holds.
func (c *CheckpointCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *CheckpointCache) key(spec RunSpec, warmup sim.Tick) ckptKey {
	spec.Limit = 0
	// Checkpoints are engine-portable (same state layout, same
	// fingerprint), so a prefix warmed under one engine serves all.
	spec.RTLEngine = ""
	return ckptKey{spec, warmup}
}

// fileName is deterministic in the key so a later process finds the snapshot
// an earlier one persisted. Stale files (older code, different trace scale)
// are harmless: soc.Restore rejects them by fingerprint and the point falls
// back to a cold run that overwrites the file.
func (c *CheckpointCache) fileName(k ckptKey) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s_n%d_%s_if%d_s%d_w%d.ckpt",
		k.spec.Workload, k.spec.NVDLAs, k.spec.Memory, k.spec.Inflight,
		k.spec.Scale, k.warmup))
}

// Persisted snapshot files carry a 12-byte integrity trailer: a CRC-64/ECMA
// of the snapshot bytes followed by a magic. A file without a valid trailer
// — a torn write the rename discipline could not prevent (power loss), a
// flipped bit on disk, a file from before the trailer existed — is counted,
// deleted and treated as a miss, so on-disk corruption always degrades to a
// cold run instead of restoring a silently wrong machine. In-memory entries
// never carry the trailer: they were produced by this process and are
// trusted as-is.
const ckptTrailerMagic = "gRCK"

var ckptCRCTable = crc64.MakeTable(crc64.ECMA)

// sealSnapshot appends the integrity trailer to a snapshot for persistence.
func sealSnapshot(blob []byte) []byte {
	out := make([]byte, len(blob)+12)
	copy(out, blob)
	binary.LittleEndian.PutUint64(out[len(blob):], crc64.Checksum(blob, ckptCRCTable))
	copy(out[len(blob)+8:], ckptTrailerMagic)
	return out
}

// openSnapshot verifies and strips the integrity trailer of a persisted
// snapshot file.
func openSnapshot(data []byte) ([]byte, bool) {
	if len(data) < 12 || string(data[len(data)-4:]) != ckptTrailerMagic {
		return nil, false
	}
	blob := data[: len(data)-12 : len(data)-12]
	if crc64.Checksum(blob, ckptCRCTable) != binary.LittleEndian.Uint64(data[len(data)-12:]) {
		return nil, false
	}
	return blob, true
}

// load returns the snapshot for (spec, warmup), consulting memory first and
// then the persistence directory, counting the outcome (hit counting is the
// caller's, after the restore succeeds). A persisted file that fails its
// integrity check is counted corrupt, removed, and reported as a miss — the
// point falls back to a cold run that rewrites it.
func (c *CheckpointCache) load(spec RunSpec, warmup sim.Tick) ([]byte, bool) {
	k := c.key(spec, warmup)
	c.mu.Lock()
	blob, ok := c.mem[k]
	c.mu.Unlock()
	if ok {
		return blob, true
	}
	if c.dir == "" {
		c.countMiss()
		return nil, false
	}
	data, err := os.ReadFile(c.fileName(k))
	if err != nil {
		c.countMiss()
		return nil, false
	}
	blob, ok = openSnapshot(data)
	if !ok {
		c.countCorrupt()
		os.Remove(c.fileName(k))
		return nil, false
	}
	c.mu.Lock()
	c.mem[k] = blob
	c.mu.Unlock()
	return blob, true
}

// store records the snapshot in memory and, when Dir is set, on disk
// (best-effort: a full disk degrades to memory-only caching, it does not
// fail the sweep).
func (c *CheckpointCache) store(spec RunSpec, warmup sim.Tick, blob []byte) {
	k := c.key(spec, warmup)
	c.mu.Lock()
	c.mem[k] = blob
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	// Write-then-rename so concurrent workers never expose a torn file; the
	// integrity trailer catches what the rename cannot (power loss, on-disk
	// bit rot).
	name := c.fileName(k)
	tmp, err := os.CreateTemp(c.dir, ".ckpt-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(sealSnapshot(blob)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
	}
}

// drop forgets a snapshot that failed to restore (stale persisted file).
func (c *CheckpointCache) drop(spec RunSpec, warmup sim.Tick) {
	k := c.key(spec, warmup)
	c.mu.Lock()
	delete(c.mem, k)
	c.mu.Unlock()
	if c.dir != "" {
		os.Remove(c.fileName(k))
	}
}
