package experiments

import (
	"context"
	"os"
	"testing"

	"gem5rtl/internal/sim"
)

// warmSpecs is a small sanity3 sub-grid: two memory technologies and two
// in-flight caps, plus the shared ideal baselines the runner adds itself.
func warmSpecs() []RunSpec {
	p := DSEParams{Scale: 64, Limit: 8 * sim.Second}
	var specs []RunSpec
	for _, inflight := range []int{16, 64} {
		specs = append(specs, p.Spec("sanity3", 1, "ideal", inflight))
		for _, mem := range []string{"DDR4-1ch", "HBM"} {
			specs = append(specs, p.Spec("sanity3", 1, mem, inflight))
		}
	}
	return specs
}

// TestWarmStartMatchesCold runs the same sweep three ways — cold, warm with
// an empty cache (populating it), and warm against the populated cache
// (restoring every point) — and requires identical results throughout.
func TestWarmStartMatchesCold(t *testing.T) {
	specs := warmSpecs()
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond

	cold, err := Runner{Workers: 1}.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCheckpointCache("")
	populate, err := Runner{Workers: 1, Options: []Option{WithWarmStart(warmup, cache)}}.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("warm-up sweep stored no snapshots")
	}
	warm, err := Runner{Workers: 1, Options: []Option{WithWarmStart(warmup, cache)}}.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range specs {
		for _, got := range []struct {
			name string
			res  Result
		}{{"populate", populate[i]}, {"warm", warm[i]}} {
			if got.res.Err != nil {
				t.Fatalf("%s %v: %v", got.name, specs[i], got.res.Err)
			}
			if got.res.Ticks != cold[i].Ticks || got.res.Perf != cold[i].Perf {
				t.Errorf("%s %v diverges from cold: ticks %d vs %d, perf %g vs %g",
					got.name, specs[i], got.res.Ticks, cold[i].Ticks, got.res.Perf, cold[i].Perf)
			}
		}
	}
}

// TestWarmStartPersistsToDir checks the cross-process path: a cache rooted
// in a directory persists snapshots that a second, fresh cache (fresh
// process stand-in) restores, with results identical to the cold run.
func TestWarmStartPersistsToDir(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 64)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond
	dir := t.TempDir()

	cold, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	first := NewCheckpointCache(dir)
	populated, err := Run(ctx, spec, WithWarmStart(warmup, first))
	if err != nil {
		t.Fatal(err)
	}

	second := NewCheckpointCache(dir)
	restored, err := Run(ctx, spec, WithWarmStart(warmup, second))
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() == 0 {
		t.Error("second cache did not load the persisted snapshot")
	}
	if populated != cold || restored != cold {
		t.Errorf("warm-start ticks diverge: cold=%d populated=%d restored=%d",
			cold, populated, restored)
	}
}

// TestWarmStartStaleSnapshotFallsBack feeds the cache a snapshot that cannot
// restore (truncated file) and expects a transparent cold run.
func TestWarmStartStaleSnapshotFallsBack(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 64)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond

	cold, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCheckpointCache("")
	cache.store(spec, warmup, []byte("not a checkpoint"))
	got, err := Run(ctx, spec, WithWarmStart(warmup, cache))
	if err != nil {
		t.Fatal(err)
	}
	if got != cold {
		t.Errorf("fallback run diverges: cold=%d got=%d", cold, got)
	}
}

// TestWarmStartCorruptFileFallsBack flips one bit in a persisted snapshot
// file and expects the integrity trailer to reject it: the run transparently
// falls back cold with identical results, the corruption is counted, and the
// poisoned file is removed so the next run can repopulate it.
func TestWarmStartCorruptFileFallsBack(t *testing.T) {
	spec := DSEParams{Scale: 64, Limit: 8 * sim.Second}.Spec("sanity3", 1, "DDR4-1ch", 64)
	ctx := context.Background()
	const warmup = 1 * sim.Microsecond
	dir := t.TempDir()

	cold, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first := NewCheckpointCache(dir)
	if _, err := Run(ctx, spec, WithWarmStart(warmup, first)); err != nil {
		t.Fatal(err)
	}
	name := first.fileName(first.key(spec, warmup))
	blob, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/3] ^= 0x10
	if err := os.WriteFile(name, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	second := NewCheckpointCache(dir)
	got, err := Run(ctx, spec, WithWarmStart(warmup, second))
	if err != nil {
		t.Fatal(err)
	}
	if got != cold {
		t.Errorf("corrupt-fallback run diverges: cold=%d got=%d", cold, got)
	}
	if st := second.Stats(); st.Corrupt != 1 || st.Hits != 0 {
		t.Errorf("cache stats %+v, want exactly one corrupt rejection and no hits", st)
	}
	// The corrupt file is gone and the cold fallback re-persisted a good one.
	reblob, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("fallback did not rewrite the snapshot: %v", err)
	}
	if _, ok := openSnapshot(reblob); !ok {
		t.Error("rewritten snapshot fails its own integrity check")
	}
}

// TestSnapshotTrailerRoundTrip pins the seal/open contract: a sealed blob
// opens to the same bytes, and any single-bit flip anywhere in the sealed
// form — payload, CRC, magic — is rejected.
func TestSnapshotTrailerRoundTrip(t *testing.T) {
	blob := []byte("warm-start snapshot payload bytes")
	sealed := sealSnapshot(blob)
	got, ok := openSnapshot(sealed)
	if !ok || string(got) != string(blob) {
		t.Fatalf("round trip failed: ok=%v got=%q", ok, got)
	}
	for bit := 0; bit < len(sealed)*8; bit += 7 {
		mut := append([]byte(nil), sealed...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, ok := openSnapshot(mut); ok {
			t.Fatalf("flip of bit %d went undetected", bit)
		}
	}
	if _, ok := openSnapshot([]byte("short")); ok {
		t.Error("trailer-less short input accepted")
	}
}
