package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// kernelGoldenSpecs is the 12-config NVDLA grid of BenchmarkSweep: sanity3,
// one accelerator, every memory technology crossed with four in-flight caps.
func kernelGoldenSpecs() []RunSpec {
	p := DSEParams{Scale: 32, Limit: 8 * sim.Second}
	var specs []RunSpec
	for _, inflight := range []int{1, 16, 64, 240} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			specs = append(specs, p.Spec("sanity3", 1, mem, inflight))
		}
	}
	return specs
}

type kernelGoldenEntry struct {
	Spec  string   `json:"spec"`
	Ticks sim.Tick `json:"ticks"`
	Hash  string   `json:"state_hash"`
}

// runKernelGoldenPoint executes one grid point from a deterministic packet-ID
// origin and digests the full post-run system state.
func runKernelGoldenPoint(t *testing.T, spec RunSpec) kernelGoldenEntry {
	t.Helper()
	port.SetPacketIDForTest(0)
	s, err := buildPoint(spec)
	if err != nil {
		t.Fatalf("%v: build: %v", spec, err)
	}
	done, err := s.RunUntilNVDLAsDoneCtx(context.Background(), spec.Limit)
	if err != nil {
		t.Fatalf("%v: run: %v", spec, err)
	}
	hash, err := s.StateHash()
	if err != nil {
		t.Fatalf("%v: hash: %v", spec, err)
	}
	return kernelGoldenEntry{Spec: spec.String(), Ticks: done, Hash: fmt.Sprintf("%016x", hash)}
}

// TestKernelGoldenStateHash pins the final simulated time AND the full
// serialised system state (StateHash) of every point in the 12-config NVDLA
// grid. It is the bit-identity witness for hot-path changes: any event-queue
// or allocation optimisation that perturbs event order, packet IDs, stats, or
// checkpoint bytes fails here. Regenerate with -update only for changes that
// intentionally alter simulated behaviour.
func TestKernelGoldenStateHash(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-config grid is not -short friendly")
	}
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)

	var got []kernelGoldenEntry
	for _, spec := range kernelGoldenSpecs() {
		got = append(got, runKernelGoldenPoint(t, spec))
	}

	path := filepath.Join("testdata", "kernel_golden.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to capture): %v", err)
	}
	var want []kernelGoldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d entries, grid has %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("grid point %s diverged:\n  got  ticks=%d hash=%s\n  want ticks=%d hash=%s",
				got[i].Spec, got[i].Ticks, got[i].Hash, want[i].Ticks, want[i].Hash)
		}
	}
}

// TestReferenceQueueMatchesGolden replays the same 12-config grid with the
// pure binary-heap reference queue and checks it against the same golden
// file. Together with TestKernelGoldenStateHash (which runs the calendar
// queue) this proves the two event-queue implementations produce identical
// StateHash values on every grid point — the determinism contract of the
// kernel rewrite.
func TestReferenceQueueMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-config grid is not -short friendly")
	}
	base := port.PacketIDMark()
	defer port.SetPacketIDForTest(base)
	sim.UseReferenceQueueForTest(true)
	defer sim.UseReferenceQueueForTest(false)

	buf, err := os.ReadFile(filepath.Join("testdata", "kernel_golden.json"))
	if err != nil {
		t.Fatalf("missing golden file (run TestKernelGoldenStateHash -update to capture): %v", err)
	}
	var want []kernelGoldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	specs := kernelGoldenSpecs()
	if len(want) != len(specs) {
		t.Fatalf("golden file has %d entries, grid has %d", len(want), len(specs))
	}
	for i, spec := range specs {
		got := runKernelGoldenPoint(t, spec)
		if got != want[i] {
			t.Errorf("reference queue diverged on %s:\n  got  ticks=%d hash=%s\n  want ticks=%d hash=%s",
				got.Spec, got.Ticks, got.Hash, want[i].Ticks, want[i].Hash)
		}
	}
}
