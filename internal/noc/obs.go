package noc

import "gem5rtl/internal/obs"

// AttachTracer wires the NoC debug flag (nil logger = off).
func (x *Xbar) AttachTracer(t *obs.Tracer) {
	x.trace = t.Logger("NoC", x.cfg.Name)
}
