// Package noc implements the SoC interconnect: a coherent-crossbar-style
// switch (Table 1: 128-bit wide, 2 cycles) connecting upstream agents
// (core cache hierarchies, RTLObjects) to downstream responders (the shared
// LLC, memory controllers). The crossbar adds a fixed forward latency,
// serialises payloads over its link width (throughput modelling), routes
// responses back to the originating port via packet sender state, and
// propagates back-pressure with a bounded per-front-port outstanding limit.
package noc

import (
	"fmt"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Config parameterises a crossbar.
type Config struct {
	Name string
	// Latency is the forwarding latency per traversal (each direction).
	Latency sim.Tick
	// BytesPerTick is link bandwidth; 128-bit @ 2 GHz = 16 B / 500 ps.
	// Zero disables throughput modelling.
	WidthBytes int
	ClockTick  sim.Tick
	// MaxOutstanding bounds in-flight requests per front port (back-pressure).
	MaxOutstanding int
}

// Route maps an address range [Base, Base+Size) to a downstream port index.
type Route struct {
	Base uint64
	Size uint64
	Down int
}

// Xbar is the crossbar switch.
type Xbar struct {
	cfg    Config
	q      *sim.EventQueue
	fronts []*port.ResponsePort
	respQs []*port.RespQueue
	downs  []*port.RequestPort
	reqQs  []*port.ReqQueue
	routes []Route
	// interleave: when > 0, addresses route to down ports by block
	// interleaving instead of ranges.
	interleave int

	outstanding []int
	// Per-front-port link occupancy, one layer per direction (gem5's
	// crossbar layers): ingress carries request payloads, egress carries
	// response payloads.
	ingressBusy []sim.Tick
	egressBusy  []sim.Tick

	// frontStates holds one immutable frontState per front port, shared by
	// every in-flight packet from that port instead of allocating per
	// request. Safe because frontState is never mutated after construction
	// and the checkpoint codec encodes it by value.
	frontStates []*frontState

	Forwarded uint64
	Responses uint64

	// trace is the NoC debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger
}

// New creates a crossbar with nFront upstream ports and nDown downstream
// ports. Configure routing with AddRoute or SetInterleave before use.
func New(cfg Config, q *sim.EventQueue, nFront, nDown int) *Xbar {
	if cfg.MaxOutstanding == 0 {
		cfg.MaxOutstanding = 64
	}
	x := &Xbar{cfg: cfg, q: q, outstanding: make([]int, nFront),
		ingressBusy: make([]sim.Tick, nFront), egressBusy: make([]sim.Tick, nFront)}
	for i := 0; i < nFront; i++ {
		i := i
		fp := port.NewResponsePort(fmt.Sprintf("%s.front[%d]", cfg.Name, i), &xbarFront{x, i})
		x.fronts = append(x.fronts, fp)
		frq := port.NewRespQueue(fmt.Sprintf("%s.front[%d]", cfg.Name, i), q, fp)
		frq.SetOwner(q.Owner(cfg.Name, "front-drain"))
		x.respQs = append(x.respQs, frq)
		x.frontStates = append(x.frontStates, &frontState{front: i})
	}
	for i := 0; i < nDown; i++ {
		i := i
		dp := port.NewRequestPort(fmt.Sprintf("%s.down[%d]", cfg.Name, i), &xbarDown{x, i})
		x.downs = append(x.downs, dp)
		drq := port.NewReqQueue(fmt.Sprintf("%s.down[%d]", cfg.Name, i), q, dp)
		drq.SetOwner(q.Owner(cfg.Name, "down-drain"))
		x.reqQs = append(x.reqQs, drq)
	}
	return x
}

// FrontPort returns upstream response port i.
func (x *Xbar) FrontPort(i int) *port.ResponsePort { return x.fronts[i] }

// DownPort returns downstream request port i.
func (x *Xbar) DownPort(i int) *port.RequestPort { return x.downs[i] }

// AddRoute maps an address range to a downstream port.
func (x *Xbar) AddRoute(r Route) { x.routes = append(x.routes, r) }

// SetInterleave routes by 64-byte block modulo the downstream count
// (used for banked LLCs).
func (x *Xbar) SetInterleave(on bool) {
	if on {
		x.interleave = 64
	} else {
		x.interleave = 0
	}
}

func (x *Xbar) route(addr uint64) int {
	if x.interleave > 0 {
		return int(addr/uint64(x.interleave)) % len(x.downs)
	}
	for _, r := range x.routes {
		if addr >= r.Base && addr < r.Base+r.Size {
			return r.Down
		}
	}
	if len(x.routes) == 0 && len(x.downs) == 1 {
		return 0
	}
	panic(fmt.Sprintf("noc %s: no route for address %#x", x.cfg.Name, addr))
}

// occupancy returns the serialisation delay for a payload of n bytes.
func (x *Xbar) occupancy(n int) sim.Tick {
	if x.cfg.WidthBytes == 0 || x.cfg.ClockTick == 0 || n == 0 {
		return 0
	}
	flits := (n + x.cfg.WidthBytes - 1) / x.cfg.WidthBytes
	return sim.Tick(flits) * x.cfg.ClockTick
}

// xfer accounts occupancy on one directional port layer and returns the
// departure time.
func (x *Xbar) xfer(busy []sim.Tick, idx, bytes int) sim.Tick {
	now := x.q.Now()
	start := now
	if busy[idx] > start {
		start = busy[idx]
	}
	busy[idx] = start + x.occupancy(bytes)
	return start + x.cfg.Latency
}

type frontState struct {
	front int
}

type xbarFront struct {
	x *Xbar
	i int
}

func (f *xbarFront) RecvTimingReq(pkt *port.Packet) bool {
	x := f.x
	if x.outstanding[f.i] >= x.cfg.MaxOutstanding {
		if x.trace.On() {
			x.trace.Logf("front[%d] %s addr=%#x refused: %d outstanding",
				f.i, pkt.Cmd, pkt.Addr, x.outstanding[f.i])
		}
		return false
	}
	down := x.route(pkt.Addr)
	if x.trace.On() {
		x.trace.Logf("front[%d] %s addr=%#x -> down[%d]", f.i, pkt.Cmd, pkt.Addr, down)
	}
	if pkt.NeedsResponse() {
		pkt.PushSenderState(f.x.frontStates[f.i])
		x.outstanding[f.i]++
	}
	x.Forwarded++
	payload := 0
	if pkt.Cmd.IsWrite() {
		payload = pkt.Size
	}
	x.reqQs[down].Schedule(pkt, x.xfer(x.ingressBusy, f.i, payload))
	return true
}

func (f *xbarFront) RecvRespRetry() { f.x.respQs[f.i].RecvRespRetry() }

type xbarDown struct {
	x *Xbar
	i int
}

func (d *xbarDown) RecvTimingResp(pkt *port.Packet) bool {
	x := d.x
	st := pkt.PopSenderState().(*frontState)
	x.outstanding[st.front]--
	x.Responses++
	if x.trace.On() {
		x.trace.Logf("down[%d] %s addr=%#x -> front[%d]", d.i, pkt.Cmd, pkt.Addr, st.front)
	}
	payload := 0
	if pkt.Cmd.IsRead() {
		payload = pkt.Size
	}
	x.respQs[st.front].Schedule(pkt, x.xfer(x.egressBusy, st.front, payload))
	// Freed an outstanding slot: allow a stalled front to retry.
	x.fronts[st.front].SendRetryReq()
	return true
}

func (d *xbarDown) RecvReqRetry() { d.x.reqQs[d.i].RecvReqRetry() }

// FunctionalAccess routes functional accesses downstream.
func (x *Xbar) FunctionalAccess(pkt *port.Packet) {
	x.downs[x.route(pkt.Addr)].SendFunctional(pkt)
}

// Ensure the front ports support functional forwarding.
func (f *xbarFront) FunctionalAccess(pkt *port.Packet) { f.x.FunctionalAccess(pkt) }

var _ port.Functional = (*xbarFront)(nil)
