// Package noc implements the SoC interconnect: a coherent-crossbar-style
// switch (Table 1: 128-bit wide, 2 cycles) connecting upstream agents
// (core cache hierarchies, RTLObjects) to downstream responders (the shared
// LLC, memory controllers). The crossbar adds a fixed forward latency,
// serialises payloads over its link width (throughput modelling), routes
// responses back to the originating port via packet sender state, and
// propagates back-pressure with a bounded per-front-port outstanding limit.
package noc

import (
	"fmt"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Config parameterises a crossbar.
type Config struct {
	Name string
	// Latency is the forwarding latency per traversal (each direction).
	Latency sim.Tick
	// BytesPerTick is link bandwidth; 128-bit @ 2 GHz = 16 B / 500 ps.
	// Zero disables throughput modelling.
	WidthBytes int
	ClockTick  sim.Tick
	// MaxOutstanding bounds in-flight requests per front port (back-pressure).
	MaxOutstanding int
}

// Route maps an address range [Base, Base+Size) to a downstream port index.
type Route struct {
	Base uint64
	Size uint64
	Down int
}

// Xbar is the crossbar switch.
type Xbar struct {
	cfg    Config
	q      *sim.EventQueue
	fronts []*port.ResponsePort
	respQs []*port.RespQueue
	downs  []*port.RequestPort
	reqQs  []*port.ReqQueue
	routes []Route
	// interleave: when > 0, addresses route to down ports by block
	// interleaving instead of ranges.
	interleave int

	outstanding []int
	// Per-front-port link occupancy, one layer per direction (gem5's
	// crossbar layers): ingress carries request payloads, egress carries
	// response payloads.
	ingressBusy []sim.Tick
	egressBusy  []sim.Tick

	// frontStates holds one immutable frontState per front port, shared by
	// every in-flight packet from that port instead of allocating per
	// request. Safe because frontState is never mutated after construction
	// and the checkpoint codec encodes it by value.
	frontStates []*frontState

	// Sharded-engine lane ownership (see SetFrontShard). laneQ[i] is the
	// event queue front lane i runs on — x.q unless the lane was moved to
	// another shard. Remote lanes exchange traffic with the crossbar's home
	// shard through the emit hooks instead of touching its queues directly.
	laneQ       []*sim.EventQueue
	emitIngress []func(IngressMsg)
	emitEgress  []func(EgressMsg)

	// forwarded counts requests per front lane so remote lanes can count
	// without racing the home shard; ForwardedCount sums them.
	forwarded []uint64
	Responses uint64

	// trace is the NoC debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger
}

// IngressMsg is a request crossing a shard boundary front→crossbar: the lane
// has already done its local accounting (outstanding, ingress occupancy) and
// the home shard only has to place the packet on the routed down queue under
// the sender's stamp at an epoch barrier.
type IngressMsg struct {
	Down  int
	Pkt   *port.Packet
	When  sim.Tick
	Stamp sim.Stamp
}

// EgressMsg is a response crossing crossbar→front: the home shard records the
// time the response reached the crossbar (SendTick) and the lane's shard does
// the lane-local work — outstanding release, egress occupancy, response
// scheduling — at the next epoch barrier.
type EgressMsg struct {
	Front    int
	Pkt      *port.Packet
	SendTick sim.Tick
	Stamp    sim.Stamp
}

// New creates a crossbar with nFront upstream ports and nDown downstream
// ports. Configure routing with AddRoute or SetInterleave before use.
func New(cfg Config, q *sim.EventQueue, nFront, nDown int) *Xbar {
	if cfg.MaxOutstanding == 0 {
		cfg.MaxOutstanding = 64
	}
	x := &Xbar{cfg: cfg, q: q, outstanding: make([]int, nFront),
		ingressBusy: make([]sim.Tick, nFront), egressBusy: make([]sim.Tick, nFront),
		laneQ:       make([]*sim.EventQueue, nFront),
		emitIngress: make([]func(IngressMsg), nFront),
		emitEgress:  make([]func(EgressMsg), nFront),
		forwarded:   make([]uint64, nFront)}
	for i := 0; i < nFront; i++ {
		i := i
		fp := port.NewResponsePort(fmt.Sprintf("%s.front[%d]", cfg.Name, i), &xbarFront{x, i})
		x.fronts = append(x.fronts, fp)
		frq := port.NewRespQueue(fmt.Sprintf("%s.front[%d]", cfg.Name, i), q, fp)
		frq.SetOwner(q.Owner(cfg.Name, "front-drain"))
		x.respQs = append(x.respQs, frq)
		x.frontStates = append(x.frontStates, &frontState{front: i})
		x.laneQ[i] = q
	}
	for i := 0; i < nDown; i++ {
		i := i
		dp := port.NewRequestPort(fmt.Sprintf("%s.down[%d]", cfg.Name, i), &xbarDown{x, i})
		x.downs = append(x.downs, dp)
		drq := port.NewReqQueue(fmt.Sprintf("%s.down[%d]", cfg.Name, i), q, dp)
		drq.SetOwner(q.Owner(cfg.Name, "down-drain"))
		x.reqQs = append(x.reqQs, drq)
	}
	return x
}

// FrontPort returns upstream response port i.
func (x *Xbar) FrontPort(i int) *port.ResponsePort { return x.fronts[i] }

// DownPort returns downstream request port i.
func (x *Xbar) DownPort(i int) *port.RequestPort { return x.downs[i] }

// AddRoute maps an address range to a downstream port.
func (x *Xbar) AddRoute(r Route) { x.routes = append(x.routes, r) }

// SetInterleave routes by 64-byte block modulo the downstream count
// (used for banked LLCs).
func (x *Xbar) SetInterleave(on bool) {
	if on {
		x.interleave = 64
	} else {
		x.interleave = 0
	}
}

func (x *Xbar) route(addr uint64) int {
	if x.interleave > 0 {
		return int(addr/uint64(x.interleave)) % len(x.downs)
	}
	for _, r := range x.routes {
		if addr >= r.Base && addr < r.Base+r.Size {
			return r.Down
		}
	}
	if len(x.routes) == 0 && len(x.downs) == 1 {
		return 0
	}
	panic(fmt.Sprintf("noc %s: no route for address %#x", x.cfg.Name, addr))
}

// occupancy returns the serialisation delay for a payload of n bytes.
func (x *Xbar) occupancy(n int) sim.Tick {
	if x.cfg.WidthBytes == 0 || x.cfg.ClockTick == 0 || n == 0 {
		return 0
	}
	flits := (n + x.cfg.WidthBytes - 1) / x.cfg.WidthBytes
	return sim.Tick(flits) * x.cfg.ClockTick
}

// xferAt accounts occupancy on one directional port layer for a transfer
// starting no earlier than now and returns the departure time. The explicit
// now lets barrier-applied cross-shard transfers account occupancy from the
// simulated send time rather than the (later) apply time.
func (x *Xbar) xferAt(now sim.Tick, busy []sim.Tick, idx, bytes int) sim.Tick {
	start := now
	if busy[idx] > start {
		start = busy[idx]
	}
	busy[idx] = start + x.occupancy(bytes)
	return start + x.cfg.Latency
}

// xfer is xferAt at the home queue's current tick.
func (x *Xbar) xfer(busy []sim.Tick, idx, bytes int) sim.Tick {
	return x.xferAt(x.q.Now(), busy, idx, bytes)
}

// SetFrontShard moves front lane i onto another shard's event queue. The
// lane-local state (outstanding count, ingress/egress occupancy, response
// queue) is owned by that shard from then on; traffic crosses the boundary as
// IngressMsg/EgressMsg values through the emit hooks, which the sharded
// engine delivers to the opposite shard's barrier-apply phase (ApplyIngress
// on the crossbar's home shard, ApplyEgress on the lane's shard). Must be
// called after New and before any traffic; the minimum cross-shard latency
// this relies on is cfg.Latency, which therefore bounds the engine's epoch
// length.
func (x *Xbar) SetFrontShard(i int, q *sim.EventQueue, ingress func(IngressMsg), egress func(EgressMsg)) {
	x.laneQ[i] = q
	x.emitIngress[i] = ingress
	x.emitEgress[i] = egress
	name := fmt.Sprintf("%s.front[%d]", x.cfg.Name, i)
	x.respQs[i] = port.NewRespQueue(name, q, x.fronts[i])
	x.respQs[i].SetOwner(q.Owner(x.cfg.Name, "front-drain"))
}

// ApplyIngress schedules a boundary-crossing request on its routed down
// queue; the sharded engine calls it on the crossbar's home shard at an
// epoch barrier. Insertion order among messages from different source shards
// is irrelevant: the down queue orders by (when, sender stamp).
func (x *Xbar) ApplyIngress(m IngressMsg) {
	x.reqQs[m.Down].ScheduleStamped(m.Pkt, m.When, m.Stamp)
}

// ApplyEgress completes a boundary-crossing response on its lane's shard at
// an epoch barrier: releases the outstanding slot and accounts the egress
// traversal from the simulated send time. No retry kick is needed — a remote
// lane never refuses (RecvTimingReq panics instead), so nothing ever waits.
func (x *Xbar) ApplyEgress(m EgressMsg) {
	i := m.Front
	x.outstanding[i]--
	payload := 0
	if m.Pkt.Cmd.IsRead() {
		payload = m.Pkt.Size
	}
	x.respQs[i].ScheduleStamped(m.Pkt, x.xferAt(m.SendTick, x.egressBusy, i, payload), m.Stamp)
}

// ForwardedCount returns the total requests forwarded across all front lanes.
func (x *Xbar) ForwardedCount() uint64 {
	var n uint64
	for _, f := range x.forwarded {
		n += f
	}
	return n
}

type frontState struct {
	front int
}

type xbarFront struct {
	x *Xbar
	i int
}

func (f *xbarFront) RecvTimingReq(pkt *port.Packet) bool {
	x := f.x
	emit := x.emitIngress[f.i]
	if x.outstanding[f.i] >= x.cfg.MaxOutstanding {
		if emit != nil {
			// A shard-boundary lane must never exert back-pressure: the
			// refusal/retry round trip would couple the shards tighter than
			// the epoch lookahead. Configurations that could hit this are
			// rejected up front (soc.Config validation), so reaching it is a
			// bug, and silently diverging from the serial engine would be
			// worse than stopping.
			panic(fmt.Sprintf("noc %s: shard boundary back-pressure on front[%d] (%d outstanding)",
				x.cfg.Name, f.i, x.outstanding[f.i]))
		}
		if x.trace.On() {
			x.trace.Logf("front[%d] %s addr=%#x refused: %d outstanding",
				f.i, pkt.Cmd, pkt.Addr, x.outstanding[f.i])
		}
		return false
	}
	down := x.route(pkt.Addr)
	if x.trace.On() {
		x.trace.Logf("front[%d] %s addr=%#x -> down[%d]", f.i, pkt.Cmd, pkt.Addr, down)
	}
	if pkt.NeedsResponse() {
		pkt.PushSenderState(f.x.frontStates[f.i])
		x.outstanding[f.i]++
	}
	x.forwarded[f.i]++
	payload := 0
	if pkt.Cmd.IsWrite() {
		payload = pkt.Size
	}
	when := x.xferAt(x.laneQ[f.i].Now(), x.ingressBusy, f.i, payload)
	if emit != nil {
		emit(IngressMsg{Down: down, Pkt: pkt, When: when, Stamp: x.laneQ[f.i].CurrentStamp()})
	} else {
		x.reqQs[down].ScheduleStamped(pkt, when, x.q.CurrentStamp())
	}
	return true
}

func (f *xbarFront) RecvRespRetry() { f.x.respQs[f.i].RecvRespRetry() }

type xbarDown struct {
	x *Xbar
	i int
}

func (d *xbarDown) RecvTimingResp(pkt *port.Packet) bool {
	x := d.x
	st := pkt.PopSenderState().(*frontState)
	x.Responses++
	if x.trace.On() {
		x.trace.Logf("down[%d] %s addr=%#x -> front[%d]", d.i, pkt.Cmd, pkt.Addr, st.front)
	}
	if emit := x.emitEgress[st.front]; emit != nil {
		// Remote lane: the lane's shard releases the outstanding slot and
		// accounts the egress traversal at the barrier (ApplyEgress).
		emit(EgressMsg{Front: st.front, Pkt: pkt, SendTick: x.q.Now(), Stamp: x.q.CurrentStamp()})
		return true
	}
	x.outstanding[st.front]--
	payload := 0
	if pkt.Cmd.IsRead() {
		payload = pkt.Size
	}
	x.respQs[st.front].Schedule(pkt, x.xfer(x.egressBusy, st.front, payload))
	// Freed an outstanding slot: allow a stalled front to retry.
	x.fronts[st.front].SendRetryReq()
	return true
}

func (d *xbarDown) RecvReqRetry() { d.x.reqQs[d.i].RecvReqRetry() }

// FunctionalAccess routes functional accesses downstream.
func (x *Xbar) FunctionalAccess(pkt *port.Packet) {
	x.downs[x.route(pkt.Addr)].SendFunctional(pkt)
}

// Ensure the front ports support functional forwarding.
func (f *xbarFront) FunctionalAccess(pkt *port.Packet) { f.x.FunctionalAccess(pkt) }

var _ port.Functional = (*xbarFront)(nil)
