package noc

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

type nocSink struct{}

func (nocSink) RecvTimingResp(*port.Packet) bool { return true }
func (nocSink) RecvReqRetry()                    {}
func (nocSink) RecvTimingReq(*port.Packet) bool  { return true }
func (nocSink) RecvRespRetry()                   {}

func buildTestXbar(q *sim.EventQueue) *Xbar {
	x := New(Config{Name: "xb", Latency: 1000, WidthBytes: 16, ClockTick: 500, MaxOutstanding: 8}, q, 2, 1)
	for i := 0; i < 2; i++ {
		up := port.NewRequestPort("up", nocSink{})
		port.Bind(up, x.FrontPort(i))
	}
	down := port.NewResponsePort("down", nocSink{})
	port.Bind(x.DownPort(0), down)
	return x
}

func saveXbar(t *testing.T, x *Xbar) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := x.SaveState(w); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestXbarRoundTrip pushes traffic (forward and response directions) through
// a crossbar mid-flight and round-trips its state, checking that queued
// packets with frontState sender state survive.
func TestXbarRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	x := buildTestXbar(q)

	// In-flight requests from both fronts (queued, not yet drained).
	for i := 0; i < 2; i++ {
		pkt := port.NewReadPacket(uint64(0x100*i), 64)
		if !x.FrontPort(i).Peer().SendTimingReq(pkt) {
			t.Fatal("request refused")
		}
	}
	// A response heading back up (carries frontState until delivered).
	resp := port.NewReadPacket(0x300, 64)
	if !x.FrontPort(0).Peer().SendTimingReq(resp) {
		t.Fatal("request refused")
	}
	q.RunUntil(2_000) // deliver requests downstream
	resp.MakeResponse()
	resp.AllocateData()
	x.downs[0].Peer().SendTimingResp(resp)

	blob := saveXbar(t, x)

	q2 := sim.NewEventQueue()
	x2 := buildTestXbar(q2)
	if err := x2.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := saveXbar(t, x2); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}
	if x2.ForwardedCount() != x.ForwardedCount() || x2.Responses != x.Responses {
		t.Errorf("counters = %d/%d, want %d/%d", x2.ForwardedCount(), x2.Responses, x.ForwardedCount(), x.Responses)
	}
	if x2.outstanding[0] != x.outstanding[0] {
		t.Errorf("outstanding = %v, want %v", x2.outstanding, x.outstanding)
	}

	// Shape mismatch must be refused.
	bad := New(Config{Name: "xb"}, sim.NewEventQueue(), 3, 1)
	if err := bad.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err == nil {
		t.Fatal("shape mismatch not detected")
	}
}
