package noc

import (
	"testing"

	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

type driver struct {
	q       *sim.EventQueue
	p       *port.RequestPort
	resps   []*port.Packet
	pending []*port.Packet
	stalled bool
}

func newDriver(q *sim.EventQueue, name string) *driver {
	d := &driver{q: q}
	d.p = port.NewRequestPort(name, d)
	return d
}

func (d *driver) RecvTimingResp(pkt *port.Packet) bool {
	d.resps = append(d.resps, pkt)
	return true
}

func (d *driver) RecvReqRetry() {
	d.stalled = false
	d.pump()
}

func (d *driver) send(pkt *port.Packet) {
	d.pending = append(d.pending, pkt)
	d.pump()
}

func (d *driver) pump() {
	for len(d.pending) > 0 && !d.stalled {
		if !d.p.SendTimingReq(d.pending[0]) {
			d.stalled = true
			return
		}
		d.pending = d.pending[1:]
	}
}

func cfg() Config {
	return Config{Name: "xbar", Latency: sim.Nanosecond, WidthBytes: 16, ClockTick: 500}
}

func TestRoutingByRange(t *testing.T) {
	q := sim.NewEventQueue()
	x := New(cfg(), q, 1, 2)
	store := mem.NewStorage()
	m0 := mem.NewIdealMemory("m0", q, store, 100)
	m1 := mem.NewIdealMemory("m1", q, store, 100)
	port.Bind(x.DownPort(0), m0.Port())
	port.Bind(x.DownPort(1), m1.Port())
	x.AddRoute(Route{Base: 0, Size: 0x1000, Down: 0})
	x.AddRoute(Route{Base: 0x1000, Size: 0x1000, Down: 1})
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))

	d.send(port.NewReadPacket(0x10, 8))
	d.send(port.NewReadPacket(0x1010, 8))
	q.Run()
	if len(d.resps) != 2 {
		t.Fatalf("resps = %d", len(d.resps))
	}
	if m0.Reads != 1 || m1.Reads != 1 {
		t.Fatalf("routing wrong: m0=%d m1=%d", m0.Reads, m1.Reads)
	}
}

func TestInterleaveRouting(t *testing.T) {
	q := sim.NewEventQueue()
	x := New(cfg(), q, 1, 4)
	store := mem.NewStorage()
	var mems []*mem.IdealMemory
	for i := 0; i < 4; i++ {
		m := mem.NewIdealMemory("m", q, store, 100)
		port.Bind(x.DownPort(i), m.Port())
		mems = append(mems, m)
	}
	x.SetInterleave(true)
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))
	for i := 0; i < 8; i++ {
		d.send(port.NewReadPacket(uint64(i)*64, 8))
	}
	q.Run()
	for i, m := range mems {
		if m.Reads != 2 {
			t.Fatalf("bank %d got %d reads, want 2", i, m.Reads)
		}
	}
}

func TestMultipleFrontsShareDownstream(t *testing.T) {
	q := sim.NewEventQueue()
	x := New(cfg(), q, 3, 1)
	store := mem.NewStorage()
	m := mem.NewIdealMemory("m", q, store, 100)
	port.Bind(x.DownPort(0), m.Port())
	var drivers []*driver
	for i := 0; i < 3; i++ {
		d := newDriver(q, "cpu")
		port.Bind(d.p, x.FrontPort(i))
		drivers = append(drivers, d)
	}
	for round := 0; round < 5; round++ {
		for _, d := range drivers {
			d.send(port.NewReadPacket(uint64(round)*64, 8))
		}
	}
	q.Run()
	for i, d := range drivers {
		if len(d.resps) != 5 {
			t.Fatalf("driver %d got %d responses", i, len(d.resps))
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	q := sim.NewEventQueue()
	c := cfg()
	c.Latency = 10 * sim.Nanosecond
	x := New(c, q, 1, 1)
	m := mem.NewIdealMemory("m", q, mem.NewStorage(), sim.Nanosecond)
	port.Bind(x.DownPort(0), m.Port())
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))
	d.send(port.NewReadPacket(0, 8))
	q.Run()
	// Two traversals (req + resp) of 10 ns plus 1 ns memory.
	if q.Now() < 21*sim.Nanosecond {
		t.Fatalf("round trip %d too fast", q.Now())
	}
}

func TestOutstandingLimit(t *testing.T) {
	q := sim.NewEventQueue()
	c := cfg()
	c.MaxOutstanding = 2
	x := New(c, q, 1, 1)
	m := mem.NewIdealMemory("m", q, mem.NewStorage(), 100*sim.Nanosecond)
	port.Bind(x.DownPort(0), m.Port())
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))
	for i := 0; i < 10; i++ {
		d.send(port.NewReadPacket(uint64(i)*64, 8))
	}
	if !d.stalled {
		t.Fatal("no back-pressure at outstanding limit")
	}
	q.Run()
	if len(d.resps) != 10 {
		t.Fatalf("resps = %d", len(d.resps))
	}
}

func TestWritesNoResponseTracking(t *testing.T) {
	q := sim.NewEventQueue()
	x := New(cfg(), q, 1, 1)
	m := mem.NewIdealMemory("m", q, mem.NewStorage(), 100)
	port.Bind(x.DownPort(0), m.Port())
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))
	// WritebackDirty expects no response and must not leak outstanding slots.
	for i := 0; i < 100; i++ {
		wb := port.NewPacket(port.WritebackDirty, uint64(i)*64, 64)
		wb.Data = make([]byte, 64)
		d.send(wb)
	}
	q.Run()
	if x.outstanding[0] != 0 {
		t.Fatalf("outstanding leaked: %d", x.outstanding[0])
	}
}

func TestFunctionalRouting(t *testing.T) {
	q := sim.NewEventQueue()
	x := New(cfg(), q, 1, 1)
	store := mem.NewStorage()
	m := mem.NewIdealMemory("m", q, store, 100)
	port.Bind(x.DownPort(0), m.Port())
	d := newDriver(q, "cpu")
	port.Bind(d.p, x.FrontPort(0))
	w := port.NewWritePacket(0x40, []byte{5})
	d.p.SendFunctional(w)
	got := make([]byte, 1)
	store.Read(0x40, got)
	if got[0] != 5 {
		t.Fatal("functional write not routed")
	}
}
