package noc

import (
	"fmt"
	"strings"
)

// The liveness-probe methods below implement guard.Probe (structurally):
// the watchdog waits on per-front outstanding transactions and queued
// packets.

// GuardName identifies the crossbar in watchdog diagnostics.
func (x *Xbar) GuardName() string { return x.cfg.Name }

// InFlight reports outstanding forwarded requests plus queued packets.
func (x *Xbar) InFlight() int {
	n := 0
	for _, o := range x.outstanding {
		n += o
	}
	for _, rq := range x.respQs {
		n += rq.Len()
	}
	for _, rq := range x.reqQs {
		n += rq.Len()
	}
	return n
}

// GuardDetail renders per-front occupancy.
func (x *Xbar) GuardDetail() string {
	var parts []string
	for i, o := range x.outstanding {
		if o == 0 && x.respQs[i].Len() == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("front%d out=%d respQ=%d", i, o, x.respQs[i].Len()))
	}
	for i, rq := range x.reqQs {
		if rq.Len() > 0 {
			parts = append(parts, fmt.Sprintf("down%d reqQ=%d", i, rq.Len()))
		}
	}
	return strings.Join(parts, " ")
}
