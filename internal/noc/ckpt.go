package noc

import (
	"fmt"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/sim"
)

// frontState rides in-flight packets' sender-state stacks, so it must
// checkpoint with them.
func (s *frontState) SenderStateKind() uint8 { return ckpt.XbarFrontState }

// EncodeSenderState writes the originating front-port index.
func (s *frontState) EncodeSenderState(w *ckpt.Writer) { w.Int(s.front) }

func init() {
	ckpt.RegisterSenderState(ckpt.XbarFrontState, func(r *ckpt.Reader) any {
		return &frontState{front: r.Int()}
	})
}

// SaveState captures the crossbar's in-flight bookkeeping: per-front
// outstanding counts and layer occupancy, the forwarding counters, and every
// per-port response/request queue with its retry flags.
func (x *Xbar) SaveState(w *ckpt.Writer) error {
	w.Section("noc." + x.cfg.Name)
	w.Int(len(x.fronts))
	w.Int(len(x.downs))
	for _, o := range x.outstanding {
		w.Int(o)
	}
	for _, b := range x.ingressBusy {
		w.U64(uint64(b))
	}
	for _, b := range x.egressBusy {
		w.U64(uint64(b))
	}
	// Forwarded is kept per lane at runtime (remote lanes count on their own
	// shard); the checkpoint stores the engine-independent sum.
	w.U64(x.ForwardedCount())
	w.U64(x.Responses)
	for i := range x.fronts {
		if err := x.fronts[i].SaveState(w); err != nil {
			return err
		}
		if err := x.respQs[i].SaveState(w); err != nil {
			return err
		}
	}
	for i := range x.reqQs {
		if err := x.reqQs[i].SaveState(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// RestoreState reinstates the crossbar state into a freshly built instance
// with the same port counts.
func (x *Xbar) RestoreState(r *ckpt.Reader) error {
	r.Section("noc." + x.cfg.Name)
	if nf, nd := r.Int(), r.Int(); r.Err() == nil && (nf != len(x.fronts) || nd != len(x.downs)) {
		return fmt.Errorf("noc %s: checkpoint shape %d/%d does not match %d/%d",
			x.cfg.Name, nf, nd, len(x.fronts), len(x.downs))
	}
	for i := range x.outstanding {
		x.outstanding[i] = r.Int()
	}
	for i := range x.ingressBusy {
		x.ingressBusy[i] = sim.Tick(r.U64())
	}
	for i := range x.egressBusy {
		x.egressBusy[i] = sim.Tick(r.U64())
	}
	for i := range x.forwarded {
		x.forwarded[i] = 0
	}
	x.forwarded[0] = r.U64()
	x.Responses = r.U64()
	for i := range x.fronts {
		if err := x.fronts[i].RestoreState(r); err != nil {
			return err
		}
		if err := x.respQs[i].RestoreState(r); err != nil {
			return err
		}
	}
	for i := range x.reqQs {
		if err := x.reqQs[i].RestoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
