package vhdl

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

const counterVHDL = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  generic ( W : integer := 8 );
  port (
    clk : in  std_logic;
    rst : in  std_logic;
    en  : in  std_logic;
    q   : out std_logic_vector(W-1 downto 0)
  );
end entity;

architecture rtl of counter is
  signal count : unsigned(W-1 downto 0) := (others => '0');
begin
  q <= std_logic_vector(count);
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        count <= (others => '0');
      elsif en = '1' then
        count <= count + 1;
      end if;
    end if;
  end process;
end architecture;
`

func TestCounterVHDL(t *testing.T) {
	m, err := Compile(counterVHDL, "counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("en", 1)
	for i := 0; i < 7; i++ {
		m.Tick()
	}
	if got := m.Peek("q"); got != 7 {
		t.Fatalf("q = %d, want 7", got)
	}
	m.SetInput("rst", 1)
	m.Tick()
	if got := m.Peek("q"); got != 0 {
		t.Fatalf("after rst q = %d", got)
	}
}

func TestGenericOverride(t *testing.T) {
	m, err := Compile(counterVHDL, "counter", map[string]int64{"W": 3})
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("en", 1)
	for i := 0; i < 9; i++ {
		m.Tick() // wraps at 8
	}
	if got := m.Peek("q"); got != 1 {
		t.Fatalf("q = %d, want 1 (3-bit wrap)", got)
	}
}

func TestConcurrentConditionalAssign(t *testing.T) {
	src := `
entity mux4 is
  port (
    s : in std_logic_vector(1 downto 0);
    a : in std_logic_vector(7 downto 0);
    b : in std_logic_vector(7 downto 0);
    c : in std_logic_vector(7 downto 0);
    d : in std_logic_vector(7 downto 0);
    y : out std_logic_vector(7 downto 0)
  );
end entity;
architecture rtl of mux4 is
begin
  y <= a when s = "00" else
       b when s = "01" else
       c when s = "10" else
       d;
end architecture;
`
	m, err := Compile(src, "mux4", nil)
	if err != nil {
		t.Fatal(err)
	}
	ins := []string{"a", "b", "c", "d"}
	for i, n := range ins {
		m.SetInput(n, uint64(10+i))
	}
	for s := uint64(0); s < 4; s++ {
		m.SetInput("s", s)
		m.Eval()
		if got := m.Peek("y"); got != 10+s {
			t.Fatalf("s=%d: y=%d want %d", s, got, 10+s)
		}
	}
}

func TestProcessCaseAndLogicOps(t *testing.T) {
	src := `
entity alu is
  port (
    op : in std_logic_vector(1 downto 0);
    a  : in std_logic_vector(15 downto 0);
    b  : in std_logic_vector(15 downto 0);
    y  : out std_logic_vector(15 downto 0)
  );
end entity;
architecture rtl of alu is
begin
  process(op, a, b)
  begin
    case op is
      when "00" => y <= std_logic_vector(unsigned(a) + unsigned(b));
      when "01" => y <= a and b;
      when "10" => y <= a or b;
      when others => y <= a xor b;
    end case;
  end process;
end architecture;
`
	m, err := Compile(src, "alu", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16, op uint8) bool {
		op %= 4
		m.SetInput("a", uint64(a))
		m.SetInput("b", uint64(b))
		m.SetInput("op", uint64(op))
		m.Eval()
		var want uint16
		switch op {
		case 0:
			want = a + b
		case 1:
			want = a & b
		case 2:
			want = a | b
		default:
			want = a ^ b
		}
		return m.Peek("y") == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncResetIdiom(t *testing.T) {
	src := `
entity ff is
  port ( clk, rst_n, d : in std_logic; q : out std_logic );
end entity;
architecture rtl of ff is
begin
  process(clk, rst_n)
  begin
    if rst_n = '0' then
      q <= '0';
    elsif rising_edge(clk) then
      q <= d;
    end if;
  end process;
end architecture;
`
	m, err := Compile(src, "ff", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("rst_n", 1)
	m.SetInput("d", 1)
	m.Tick()
	if m.Peek("q") != 1 {
		t.Fatalf("q = %d", m.Peek("q"))
	}
	m.SetInput("rst_n", 0)
	m.Tick()
	if m.Peek("q") != 0 {
		t.Fatalf("reset q = %d", m.Peek("q"))
	}
}

func TestHierarchyVHDL(t *testing.T) {
	src := `
entity inc is
  generic ( STEP : integer := 1 );
  port ( d : in std_logic_vector(7 downto 0); q : out std_logic_vector(7 downto 0) );
end entity;
architecture rtl of inc is
begin
  q <= std_logic_vector(unsigned(d) + STEP);
end architecture;

entity top is
  port ( d : in std_logic_vector(7 downto 0); q : out std_logic_vector(7 downto 0) );
end entity;
architecture rtl of top is
  signal mid : std_logic_vector(7 downto 0);
begin
  u0: entity work.inc generic map (STEP => 3) port map (d => d, q => mid);
  u1: entity work.inc generic map (STEP => 10) port map (d => mid, q => q);
end architecture;
`
	m, err := Compile(src, "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("d", 5)
	m.Eval()
	if got := m.Peek("q"); got != 18 {
		t.Fatalf("q = %d, want 18", got)
	}
}

func TestSliceAndIndex(t *testing.T) {
	src := `
entity bits is
  port (
    a : in std_logic_vector(7 downto 0);
    hi : out std_logic_vector(3 downto 0);
    b2 : out std_logic;
    cat : out std_logic_vector(15 downto 0)
  );
end entity;
architecture rtl of bits is
begin
  hi <= a(7 downto 4);
  b2 <= a(2);
  cat <= a & a;
end architecture;
`
	m, err := Compile(src, "bits", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("a", 0xB6)
	m.Eval()
	if m.Peek("hi") != 0xB || m.Peek("b2") != 1 || m.Peek("cat") != 0xB6B6 {
		t.Fatalf("hi=%#x b2=%d cat=%#x", m.Peek("hi"), m.Peek("b2"), m.Peek("cat"))
	}
}

func TestLatchDetectionVHDL(t *testing.T) {
	src := `
entity l is
  port ( en, d : in std_logic; q : out std_logic );
end entity;
architecture rtl of l is
begin
  process(en, d)
  begin
    if en = '1' then
      q <= d;
    end if;
  end process;
end architecture;
`
	if _, err := Compile(src, "l", nil); err == nil || !strings.Contains(err.Error(), "latch") {
		t.Fatalf("latch not detected: %v", err)
	}
}

func TestUnsupportedRejected(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"loop", `entity m is port (a : in std_logic); end entity;
		  architecture r of m is begin process(a) begin for i in 0 to 3 loop end loop; end process; end architecture;`,
			"not supported"},
		{"variable", `entity m is port (a : in std_logic); end entity;
		  architecture r of m is begin process(a) variable v : integer; begin end process; end architecture;`,
			"not supported"},
		{"inout", `entity m is port (a : inout std_logic); end entity;`, "not supported"},
		{"range", `entity m is port (a : in std_logic_vector(0 to 7)); end entity;
		  architecture r of m is begin end architecture;`, "downto"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "m", nil)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got: %v", tc.wantErr, err)
			}
		})
	}
}

// BitonicSorterVHDL is the paper's GHDL validation design (§4): a bitonic
// sorting network. This version sorts eight 8-bit values presented across
// two 32-bit input words, fully combinationally, exactly like the
// compare-exchange network a VHDL bitonic sorter synthesises to.
const BitonicSorterVHDL = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

-- One compare-exchange element: lo gets the smaller, hi the larger.
entity cmpex is
  port (
    a  : in  std_logic_vector(7 downto 0);
    b  : in  std_logic_vector(7 downto 0);
    lo : out std_logic_vector(7 downto 0);
    hi : out std_logic_vector(7 downto 0)
  );
end entity;
architecture rtl of cmpex is
begin
  lo <= a when unsigned(a) < unsigned(b) else b;
  hi <= b when unsigned(a) < unsigned(b) else a;
end architecture;

-- 8-lane bitonic sorting network over two 32-bit buses (4 lanes each).
entity bitonic8 is
  port (
    in_lo  : in  std_logic_vector(31 downto 0);
    in_hi  : in  std_logic_vector(31 downto 0);
    out_lo : out std_logic_vector(31 downto 0);
    out_hi : out std_logic_vector(31 downto 0)
  );
end entity;
architecture rtl of bitonic8 is
  signal x0, x1, x2, x3, x4, x5, x6, x7 : std_logic_vector(7 downto 0);
  signal a0, a1, a2, a3, a4, a5, a6, a7 : std_logic_vector(7 downto 0);
  signal b0, b1, b2, b3, b4, b5, b6, b7 : std_logic_vector(7 downto 0);
  signal c0, c1, c2, c3, c4, c5, c6, c7 : std_logic_vector(7 downto 0);
  signal d0, d1, d2, d3, d4, d5, d6, d7 : std_logic_vector(7 downto 0);
  signal e0, e1, e2, e3, e4, e5, e6, e7 : std_logic_vector(7 downto 0);
  signal f0, f1, f2, f3, f4, f5, f6, f7 : std_logic_vector(7 downto 0);
begin
  x0 <= in_lo(7 downto 0);
  x1 <= in_lo(15 downto 8);
  x2 <= in_lo(23 downto 16);
  x3 <= in_lo(31 downto 24);
  x4 <= in_hi(7 downto 0);
  x5 <= in_hi(15 downto 8);
  x6 <= in_hi(23 downto 16);
  x7 <= in_hi(31 downto 24);

  -- Stage 1: sort pairs (alternating direction).
  s1a: entity work.cmpex port map (a => x0, b => x1, lo => a0, hi => a1);
  s1b: entity work.cmpex port map (a => x2, b => x3, lo => a3, hi => a2);
  s1c: entity work.cmpex port map (a => x4, b => x5, lo => a4, hi => a5);
  s1d: entity work.cmpex port map (a => x6, b => x7, lo => a7, hi => a6);

  -- Stage 2: bitonic merge of 4-element runs.
  s2a: entity work.cmpex port map (a => a0, b => a2, lo => b0, hi => b2);
  s2b: entity work.cmpex port map (a => a1, b => a3, lo => b1, hi => b3);
  s2c: entity work.cmpex port map (a => a4, b => a6, lo => b6, hi => b4);
  s2d: entity work.cmpex port map (a => a5, b => a7, lo => b7, hi => b5);

  s3a: entity work.cmpex port map (a => b0, b => b1, lo => c0, hi => c1);
  s3b: entity work.cmpex port map (a => b2, b => b3, lo => c2, hi => c3);
  s3c: entity work.cmpex port map (a => b4, b => b5, lo => c5, hi => c4);
  s3d: entity work.cmpex port map (a => b6, b => b7, lo => c7, hi => c6);

  -- Stage 3: final 8-element bitonic merge.
  s4a: entity work.cmpex port map (a => c0, b => c4, lo => d0, hi => d4);
  s4b: entity work.cmpex port map (a => c1, b => c5, lo => d1, hi => d5);
  s4c: entity work.cmpex port map (a => c2, b => c6, lo => d2, hi => d6);
  s4d: entity work.cmpex port map (a => c3, b => c7, lo => d3, hi => d7);

  s5a: entity work.cmpex port map (a => d0, b => d2, lo => e0, hi => e2);
  s5b: entity work.cmpex port map (a => d1, b => d3, lo => e1, hi => e3);
  s5c: entity work.cmpex port map (a => d4, b => d6, lo => e4, hi => e6);
  s5d: entity work.cmpex port map (a => d5, b => d7, lo => e5, hi => e7);

  s6a: entity work.cmpex port map (a => e0, b => e1, lo => f0, hi => f1);
  s6b: entity work.cmpex port map (a => e2, b => e3, lo => f2, hi => f3);
  s6c: entity work.cmpex port map (a => e4, b => e5, lo => f4, hi => f5);
  s6d: entity work.cmpex port map (a => e6, b => e7, lo => f6, hi => f7);

  out_lo <= f3 & f2 & f1 & f0;
  out_hi <= f7 & f6 & f5 & f4;
end architecture;
`

func TestBitonicSorter(t *testing.T) {
	m, err := Compile(BitonicSorterVHDL, "bitonic8", nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals [8]uint8) bool {
		var lo, hi uint64
		for i := 0; i < 4; i++ {
			lo |= uint64(vals[i]) << (8 * i)
			hi |= uint64(vals[4+i]) << (8 * i)
		}
		m.SetInput("in_lo", lo)
		m.SetInput("in_hi", hi)
		m.Eval()
		want := append([]uint8(nil), vals[:]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		olo, ohi := m.Peek("out_lo"), m.Peek("out_hi")
		for i := 0; i < 4; i++ {
			if uint8(olo>>(8*i)) != want[i] || uint8(ohi>>(8*i)) != want[4+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompileBitonic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(BitonicSorterVHDL, "bitonic8", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitonicEval(b *testing.B) {
	m, err := Compile(BitonicSorterVHDL, "bitonic8", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetInput("in_lo", uint64(i)*0x01010101)
		m.SetInput("in_hi", uint64(i)*0x10101010)
		m.Eval()
	}
}

func TestCaseWhenChoicesPipe(t *testing.T) {
	src := `
entity dec is
  port ( s : in std_logic_vector(1 downto 0); y : out std_logic_vector(3 downto 0) );
end entity;
architecture rtl of dec is
begin
  process(s)
  begin
    case s is
      when "00" | "11" => y <= "0001";
      when "01" => y <= "0010";
      when others => y <= "1000";
    end case;
  end process;
end architecture;
`
	m, err := Compile(src, "dec", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{0: 1, 3: 1, 1: 2, 2: 8}
	for in, w := range want {
		m.SetInput("s", in)
		m.Eval()
		if m.Peek("y") != w {
			t.Fatalf("s=%d: y=%d want %d", in, m.Peek("y"), w)
		}
	}
}

func TestSignalInitialValue(t *testing.T) {
	src := `
entity iv is
  port ( clk : in std_logic; q : out std_logic_vector(7 downto 0) );
end entity;
architecture rtl of iv is
  signal cnt : unsigned(7 downto 0) := x"30";
begin
  q <= std_logic_vector(cnt);
  process(clk) begin
    if rising_edge(clk) then cnt <= cnt + 1; end if;
  end process;
end architecture;
`
	m, err := Compile(src, "iv", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Peek("q") != 0x30 {
		t.Fatalf("initial q = %#x, want 0x30", m.Peek("q"))
	}
	m.Tick()
	if m.Peek("q") != 0x31 {
		t.Fatalf("q = %#x", m.Peek("q"))
	}
	m.Reset()
	if m.Peek("q") != 0x30 {
		t.Fatal("reset did not restore the initialiser")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	src := `
ENTITY UpCase IS
  PORT ( A : IN STD_LOGIC; Y : OUT STD_LOGIC );
END ENTITY;
ARCHITECTURE RTL OF UpCase IS
BEGIN
  Y <= NOT A;
END ARCHITECTURE;
`
	m, err := Compile(src, "upcase", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetInput("a", 0)
	m.Eval()
	if m.Peek("y") != 1 {
		t.Fatal("case-insensitive elaboration failed")
	}
}
