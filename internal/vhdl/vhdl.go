// Package vhdl implements gem5rtl's VHDL toolflow: a lexer, parser and
// elaborator for a synthesisable VHDL subset, playing the role GHDL plays in
// the paper — the first time (per the paper) a VHDL flow is interfaced with
// a gem5-style simulator. Source text elaborates into the same internal/rtl
// intermediate representation as the Verilog frontend, so VHDL designs plug
// into RTLObject identically.
//
// Supported subset: entity with generics and in/out ports of std_logic,
// std_logic_vector/unsigned/signed (N downto 0) and integer; architecture
// with signal declarations and initialisers; concurrent simple and
// conditional ("when/else") assignments; processes with sensitivity lists,
// rising_edge clocking (including the async-reset idiom, approximated as
// synchronous), if/elsif/else, case/when; entity instantiation with generic
// and port maps; the usual operators; (others => '0'/'1') aggregates;
// bit-string and hex literals; and the numeric_std casts
// (std_logic_vector, unsigned, signed, resize, to_unsigned, to_integer),
// which are width-preserving no-ops over the engine's two-state vectors.
package vhdl

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokChar // '0'
	tokBits // "0101"
	tokHex  // x"AF"
	tokPunct
)

type token struct {
	kind tokKind
	text string // identifiers are lower-cased (VHDL is case-insensitive)
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case (c == 'x' || c == 'X') && i+1 < len(src) && src[i+1] == '"':
			j := i + 2
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("vhdl: line %d: unterminated hex literal", line)
			}
			toks = append(toks, token{tokHex, src[i+2 : j], line})
			i = j + 1
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("vhdl: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokBits, src[i+1 : j], line})
			i = j + 1
		case c == '\'' && i+2 < len(src) && src[i+2] == '\'':
			toks = append(toks, token{tokChar, src[i+1 : i+2], line})
			i += 3
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[i:j]), line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokNumber, strings.ReplaceAll(src[i:j], "_", ""), line})
			i = j
		default:
			// Multi-char punctuation.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "/=", "=>", ":=", "**":
				toks = append(toks, token{tokPunct, two, line})
				i += 2
			default:
				toks = append(toks, token{tokPunct, string(c), line})
				i++
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// ---------------------------------------------------------------------------
// AST

// Design is a parsed VHDL file: entities paired with their architectures.
type Design struct {
	Entities []*Entity
}

// EntityByName returns the named entity or nil (names are lower-cased).
func (d *Design) EntityByName(name string) *Entity {
	name = strings.ToLower(name)
	for _, e := range d.Entities {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Entity is an entity declaration plus its (single) architecture body.
type Entity struct {
	Name     string
	Generics []genericDecl
	Ports    []portDecl
	Signals  []signalDecl
	Concs    []conc
	Line     int
}

type genericDecl struct {
	name string
	def  expr
}

type portDecl struct {
	name string
	isIn bool
	typ  typeRef
	line int
}

type signalDecl struct {
	name string
	typ  typeRef
	init expr
	line int
}

type typeRef struct {
	name string // std_logic, std_logic_vector, unsigned, signed, integer, boolean
	msb  expr   // nil for scalar
	line int
}

// conc is a concurrent statement.
type conc interface{ conc() }

type concAssign struct {
	target lvalue
	// arms: value when cond, ..., final else value (conds[i] guards vals[i];
	// vals[len(conds)] is the unconditional tail).
	vals  []expr
	conds []expr
	line  int
}

type process struct {
	seq  bool // clocked by rising_edge
	body []stmtNode
	line int
}

type instance struct {
	label    string
	entity   string
	generics map[string]expr
	ports    map[string]expr
	line     int
}

func (*concAssign) conc() {}
func (*process) conc()    {}
func (*instance) conc()   {}

type stmtNode interface{ stmtNode() }

type sigAssign struct {
	target lvalue
	rhs    expr
	line   int
}

type ifNode struct {
	cond expr
	then []stmtNode
	els  []stmtNode
	line int
}

type caseNode struct {
	subject expr
	arms    []caseArm
	line    int
}

type caseArm struct {
	choices []expr // empty = others
	body    []stmtNode
}

type nullNode struct{}

func (*sigAssign) stmtNode() {}
func (*ifNode) stmtNode()    {}
func (*caseNode) stmtNode()  {}
func (*nullNode) stmtNode()  {}

type lvalue struct {
	name     string
	index    expr // single index (bit or memory-free; memories unsupported)
	msb, lsb expr // slice (msb downto lsb)
	line     int
}

type expr interface{ expr() }

type numLit struct {
	val  uint64
	w    int // 0 = unsized
	line int
}
type identRef struct {
	name string
	line int
}
type callExpr struct {
	fn   string
	args []expr
	line int
}
type unaryE struct {
	op   string
	x    expr
	line int
}
type binE struct {
	op   string
	x, y expr
	line int
}
type selectE struct {
	base     expr
	index    expr
	msb, lsb expr
	line     int
}
type othersE struct {
	bit  byte // '0' or '1'
	line int
}

func (*numLit) expr()   {}
func (*identRef) expr() {}
func (*callExpr) expr() {}
func (*unaryE) expr()   {}
func (*binE) expr()     {}
func (*selectE) expr()  {}
func (*othersE) expr()  {}
