package vhdl

import (
	"fmt"
	"sort"
	"strings"

	"gem5rtl/internal/rtl"
)

// Elaborate flattens the named top entity into an rtl.Circuit. Generic
// overrides replace entity generic defaults. Clocked processes (detected via
// rising_edge) become sequential logic on the engine's implicit clock; the
// async-reset idiom is approximated synchronously, matching the engine's
// single-clock two-state semantics.
func Elaborate(d *Design, top string, overrides map[string]int64) (*rtl.Circuit, error) {
	ent := d.EntityByName(top)
	if ent == nil {
		return nil, fmt.Errorf("vhdl: no entity %q in design", top)
	}
	e := &elab{d: d, b: rtl.NewBuilder(strings.ToLower(top))}
	sc, err := e.declare(ent, "", overrides, true)
	if err != nil {
		return nil, err
	}
	if err := e.elabConcs(sc); err != nil {
		return nil, err
	}
	c, err := e.b.Build()
	if err != nil {
		return nil, fmt.Errorf("vhdl: %s: %w", top, err)
	}
	return c, nil
}

// Compile parses, elaborates and compiles VHDL source in one call — the
// equivalent of the paper's GHDL flow producing a tickable model. It uses
// the closure reference engine; use CompileEngine to select another.
func Compile(src, top string, overrides map[string]int64) (*rtl.Model, error) {
	return CompileEngine(src, top, overrides, rtl.EngineClosure)
}

// CompileEngine is Compile with an explicit simulation engine (see
// rtl.Engines). Engine choice never changes results, only execution
// strategy.
func CompileEngine(src, top string, overrides map[string]int64, engine rtl.Engine) (*rtl.Model, error) {
	d, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := Elaborate(d, top, overrides)
	if err != nil {
		return nil, err
	}
	m, err := rtl.CompileEngine(c, engine)
	if err != nil {
		if strings.Contains(err.Error(), "combinational loop") {
			return nil, fmt.Errorf("vhdl: %w (a combinational process may leave a target unassigned on some path — inferred latch)", err)
		}
		return nil, err
	}
	return m, nil
}

type sigInfo struct {
	id    rtl.SigID
	width int
}

type scope struct {
	ent      *Entity
	prefix   string
	generics map[string]int64
	sigs     map[string]sigInfo
}

type elab struct {
	d *Design
	b *rtl.Builder
}

func (e *elab) declare(ent *Entity, prefix string, overrides map[string]int64, isTop bool) (*scope, error) {
	sc := &scope{ent: ent, prefix: prefix, generics: map[string]int64{}, sigs: map[string]sigInfo{}}
	for _, g := range ent.Generics {
		if g.def != nil {
			v, err := e.evalConst(g.def, sc)
			if err != nil {
				return nil, err
			}
			sc.generics[g.name] = v
		}
	}
	for name, v := range overrides {
		sc.generics[strings.ToLower(name)] = v
	}
	// Which signals are driven from clocked processes?
	seqDriven := map[string]bool{}
	for _, c := range ent.Concs {
		if pr, ok := c.(*process); ok && pr.seq {
			collectTargets(pr.body, seqDriven)
		}
	}
	for _, p := range ent.Ports {
		w, err := e.typeWidth(p.typ, sc)
		if err != nil {
			return nil, err
		}
		full := prefix + p.name
		var id rtl.SigID
		switch {
		case p.isIn && isTop:
			id = e.b.Input(full, w)
		case p.isIn:
			id = e.b.Wire(full, w)
		case isTop:
			id = e.b.Output(full, w)
		case seqDriven[p.name]:
			id = e.b.Reg(full, w, 0)
		default:
			id = e.b.Wire(full, w)
		}
		sc.sigs[p.name] = sigInfo{id, w}
	}
	for _, s := range ent.Signals {
		w, err := e.typeWidth(s.typ, sc)
		if err != nil {
			return nil, err
		}
		full := prefix + s.name
		var id rtl.SigID
		if seqDriven[s.name] {
			init := uint64(0)
			if s.init != nil {
				iv, err := e.constValue(s.init, sc, w)
				if err != nil {
					return nil, fmt.Errorf("vhdl: line %d: signal initialiser must be constant: %w", s.line, err)
				}
				init = iv
			}
			id = e.b.Reg(full, w, init)
		} else {
			id = e.b.Wire(full, w)
		}
		sc.sigs[s.name] = sigInfo{id, w}
	}
	return sc, nil
}

func collectTargets(stmts []stmtNode, out map[string]bool) {
	for _, s := range stmts {
		switch v := s.(type) {
		case *sigAssign:
			out[v.target.name] = true
		case *ifNode:
			collectTargets(v.then, out)
			collectTargets(v.els, out)
		case *caseNode:
			for _, a := range v.arms {
				collectTargets(a.body, out)
			}
		}
	}
}

func (e *elab) typeWidth(t typeRef, sc *scope) (int, error) {
	switch t.name {
	case "std_logic", "std_ulogic", "bit", "boolean":
		return 1, nil
	case "integer", "natural", "positive":
		return 32, nil
	case "std_logic_vector", "std_ulogic_vector", "unsigned", "signed", "bit_vector":
		if t.msb == nil {
			return 0, fmt.Errorf("vhdl: line %d: %s requires a (N downto 0) range", t.line, t.name)
		}
		hi, err := e.evalConst(t.msb, sc)
		if err != nil {
			return 0, err
		}
		w := int(hi) + 1
		if w < 1 || w > 64 {
			return 0, fmt.Errorf("vhdl: line %d: width %d out of supported range [1,64]", t.line, w)
		}
		return w, nil
	}
	return 0, fmt.Errorf("vhdl: line %d: unsupported type %q", t.line, t.name)
}

func (e *elab) elabConcs(sc *scope) error {
	for _, c := range sc.ent.Concs {
		switch v := c.(type) {
		case *concAssign:
			if err := e.elabConcAssign(v, sc); err != nil {
				return err
			}
		case *process:
			if err := e.elabProcess(v, sc); err != nil {
				return err
			}
		case *instance:
			if err := e.elabInstance(v, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *elab) elabConcAssign(ca *concAssign, sc *scope) error {
	si, ok := sc.sigs[ca.target.name]
	if !ok {
		return fmt.Errorf("vhdl: line %d: assignment to undeclared signal %q", ca.line, ca.target.name)
	}
	if ca.target.index != nil || ca.target.msb != nil {
		return fmt.Errorf("vhdl: line %d: concurrent assignment to a slice of %q is not supported", ca.line, ca.target.name)
	}
	// Fold when/else arms from the unconditional tail backwards.
	val, err := e.elabExprW(ca.vals[len(ca.vals)-1], sc, si.width)
	if err != nil {
		return err
	}
	for i := len(ca.conds) - 1; i >= 0; i-- {
		cond, err := e.elabExpr(ca.conds[i], sc)
		if err != nil {
			return err
		}
		arm, err := e.elabExprW(ca.vals[i], sc, si.width)
		if err != nil {
			return err
		}
		val = rtl.MuxE(cond, arm, val)
	}
	e.b.Assign(si.id, rtl.Resize(val, si.width))
	return nil
}

func (e *elab) elabProcess(pr *process, sc *scope) error {
	env := map[string]rtl.Expr{}
	if err := e.walkStmts(pr.body, sc, env); err != nil {
		return err
	}
	// Sorted emission keeps the circuit's Seqs/Combs layout stable across
	// compiles of the same source (map order would scramble fault-injection
	// picks, checkpoint layout and VCD signal order).
	targets := make([]string, 0, len(env))
	for name := range env {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		si := sc.sigs[name]
		if pr.seq {
			e.b.Seq(si.id, rtl.Resize(env[name], si.width))
		} else {
			e.b.Assign(si.id, rtl.Resize(env[name], si.width))
		}
	}
	return nil
}

// walkStmts synthesises process statements into per-target expressions using
// the same copy-and-merge scheme as the Verilog frontend. rising_edge
// conditions evaluate as constant true (every engine Tick is a posedge).
func (e *elab) walkStmts(stmts []stmtNode, sc *scope, env map[string]rtl.Expr) error {
	for _, s := range stmts {
		switch v := s.(type) {
		case *nullNode:
		case *sigAssign:
			if err := e.walkAssign(v, sc, env); err != nil {
				return err
			}
		case *ifNode:
			if exprHasRisingEdge(v.cond) {
				// Clock gate: body executes on every tick; an else branch
				// (unusual) is ignored, matching falling-edge exclusion.
				if err := e.walkStmts(v.then, sc, env); err != nil {
					return err
				}
				continue
			}
			cond, err := e.elabExpr(v.cond, sc)
			if err != nil {
				return err
			}
			envT := cloneEnv(env)
			envE := cloneEnv(env)
			if err := e.walkStmts(v.then, sc, envT); err != nil {
				return err
			}
			if err := e.walkStmts(v.els, sc, envE); err != nil {
				return err
			}
			e.mergeEnv(env, cond, envT, envE, sc)
		case *caseNode:
			subj, err := e.elabExpr(v.subject, sc)
			if err != nil {
				return err
			}
			// Desugar to a priority chain, others last.
			var othersBody []stmtNode
			type armC struct {
				cond rtl.Expr
				body []stmtNode
			}
			var arms []armC
			for _, a := range v.arms {
				if len(a.choices) == 0 {
					othersBody = a.body
					continue
				}
				var cond rtl.Expr
				for _, ch := range a.choices {
					cv, err := e.elabExprW(ch, sc, subj.Width())
					if err != nil {
						return err
					}
					eq := rtl.Eq(subj, rtl.Resize(cv, subj.Width()))
					if cond == nil {
						cond = eq
					} else {
						cond = rtl.LOr(cond, eq)
					}
				}
				arms = append(arms, armC{cond, a.body})
			}
			// Build nested merge from the last arm backwards.
			walkChain := func(idx int) error { return nil }
			var rec func(idx int, env map[string]rtl.Expr) error
			rec = func(idx int, env map[string]rtl.Expr) error {
				if idx == len(arms) {
					return e.walkStmts(othersBody, sc, env)
				}
				envT := cloneEnv(env)
				envE := cloneEnv(env)
				if err := e.walkStmts(arms[idx].body, sc, envT); err != nil {
					return err
				}
				if err := rec(idx+1, envE); err != nil {
					return err
				}
				e.mergeEnv(env, arms[idx].cond, envT, envE, sc)
				return nil
			}
			_ = walkChain
			if err := rec(0, env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vhdl: unsupported statement %T", s)
		}
	}
	return nil
}

func (e *elab) walkAssign(v *sigAssign, sc *scope, env map[string]rtl.Expr) error {
	si, ok := sc.sigs[v.target.name]
	if !ok {
		return fmt.Errorf("vhdl: line %d: assignment to undeclared signal %q", v.line, v.target.name)
	}
	rhs, err := e.elabExprW(v.rhs, sc, si.width)
	if err != nil {
		return err
	}
	cur, have := env[v.target.name]
	if !have {
		cur = e.b.Ref(si.id)
	}
	var newVal rtl.Expr
	switch {
	case v.target.index == nil && v.target.msb == nil:
		newVal = rtl.Resize(rhs, si.width)
	case v.target.msb != nil:
		hi, err := e.evalConst(v.target.msb, sc)
		if err != nil {
			return fmt.Errorf("vhdl: line %d: slice bounds must be constant: %w", v.line, err)
		}
		lo, err := e.evalConst(v.target.lsb, sc)
		if err != nil {
			return fmt.Errorf("vhdl: line %d: slice bounds must be constant: %w", v.line, err)
		}
		if lo > hi || int(hi) >= si.width {
			return fmt.Errorf("vhdl: line %d: slice (%d downto %d) out of range for %q", v.line, hi, lo, v.target.name)
		}
		newVal = spliceBits(cur, rtl.Resize(rhs, int(hi-lo)+1), int(hi), int(lo), si.width)
	default:
		bit, err := e.evalConst(v.target.index, sc)
		if err != nil {
			return fmt.Errorf("vhdl: line %d: index must be constant in assignments: %w", v.line, err)
		}
		if int(bit) >= si.width {
			return fmt.Errorf("vhdl: line %d: index %d out of range for %q", v.line, bit, v.target.name)
		}
		newVal = spliceBits(cur, rtl.Resize(rhs, 1), int(bit), int(bit), si.width)
	}
	env[v.target.name] = newVal
	return nil
}

func spliceBits(cur, repl rtl.Expr, hi, lo, w int) rtl.Expr {
	parts := make([]rtl.Expr, 0, 3)
	if hi < w-1 {
		parts = append(parts, rtl.SliceE(cur, w-1, hi+1))
	}
	parts = append(parts, repl)
	if lo > 0 {
		parts = append(parts, rtl.SliceE(cur, lo-1, 0))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return rtl.Cat(parts...)
}

func cloneEnv(env map[string]rtl.Expr) map[string]rtl.Expr {
	out := make(map[string]rtl.Expr, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (e *elab) mergeEnv(env map[string]rtl.Expr, cond rtl.Expr, envT, envE map[string]rtl.Expr, sc *scope) {
	keys := map[string]bool{}
	for k := range envT {
		keys[k] = true
	}
	for k := range envE {
		keys[k] = true
	}
	for k := range keys {
		base, ok := env[k]
		if !ok {
			base = e.b.Ref(sc.sigs[k].id)
		}
		tv, tok := envT[k]
		if !tok {
			tv = base
		}
		ev, eok := envE[k]
		if !eok {
			ev = base
		}
		if tv == ev {
			env[k] = tv
			continue
		}
		w := tv.Width()
		if ev.Width() > w {
			w = ev.Width()
		}
		env[k] = rtl.MuxE(cond, rtl.Resize(tv, w), rtl.Resize(ev, w))
	}
}

func (e *elab) elabInstance(inst *instance, sc *scope) error {
	child := e.d.EntityByName(inst.entity)
	if child == nil {
		return fmt.Errorf("vhdl: line %d: unknown entity %q", inst.line, inst.entity)
	}
	overrides := map[string]int64{}
	for name, ge := range inst.generics {
		v, err := e.evalConst(ge, sc)
		if err != nil {
			return fmt.Errorf("vhdl: line %d: generic %q must be constant: %w", inst.line, name, err)
		}
		overrides[name] = v
	}
	childScope, err := e.declare(child, sc.prefix+inst.label+".", overrides, false)
	if err != nil {
		return err
	}
	if err := e.elabConcs(childScope); err != nil {
		return err
	}
	for _, p := range child.Ports {
		conn, given := inst.ports[p.name]
		csi := childScope.sigs[p.name]
		if p.isIn {
			if !given || conn == nil {
				e.b.Assign(csi.id, rtl.C(0, csi.width))
				continue
			}
			pe, err := e.elabExprW(conn, sc, csi.width)
			if err != nil {
				return err
			}
			e.b.Assign(csi.id, rtl.Resize(pe, csi.width))
		} else {
			if !given || conn == nil {
				continue
			}
			id, ok := conn.(*identRef)
			if !ok {
				return fmt.Errorf("vhdl: line %d: output port %s.%s must map to a simple signal", inst.line, inst.label, p.name)
			}
			psi, ok := sc.sigs[id.name]
			if !ok {
				return fmt.Errorf("vhdl: line %d: port map to undeclared signal %q", inst.line, id.name)
			}
			e.b.Assign(psi.id, rtl.Resize(e.b.Ref(csi.id), psi.width))
		}
	}
	for name := range inst.ports {
		found := false
		for _, p := range child.Ports {
			if p.name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("vhdl: line %d: entity %s has no port %q", inst.line, inst.entity, name)
		}
	}
	return nil
}

// evalConst evaluates constant expressions (generics, literals, arithmetic).
func (e *elab) evalConst(x expr, sc *scope) (int64, error) {
	switch v := x.(type) {
	case *numLit:
		return int64(v.val), nil
	case *identRef:
		if g, ok := sc.generics[v.name]; ok {
			return g, nil
		}
		return 0, fmt.Errorf("line %d: %q is not a generic/constant", v.line, v.name)
	case *unaryE:
		xv, err := e.evalConst(v.x, sc)
		if err != nil {
			return 0, err
		}
		switch v.op {
		case "-":
			return -xv, nil
		case "not":
			return ^xv, nil
		}
	case *binE:
		a, err := e.evalConst(v.x, sc)
		if err != nil {
			return 0, err
		}
		b, err := e.evalConst(v.y, sc)
		if err != nil {
			return 0, err
		}
		switch v.op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant division by zero", v.line)
			}
			return a / b, nil
		case "mod", "rem":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant modulo by zero", v.line)
			}
			return a % b, nil
		}
	}
	return 0, fmt.Errorf("non-constant expression %T", x)
}

// constValue evaluates a constant initialiser, resolving others-aggregates
// against the declared width.
func (e *elab) constValue(x expr, sc *scope, width int) (uint64, error) {
	if o, ok := x.(*othersE); ok {
		if o.bit == '1' {
			return rtl.Mask(width), nil
		}
		return 0, nil
	}
	v, err := e.evalConst(x, sc)
	if err != nil {
		return 0, err
	}
	return uint64(v) & rtl.Mask(width), nil
}

// elabExprW elaborates an expression in a context expecting the given width,
// which resolves others-aggregates.
func (e *elab) elabExprW(x expr, sc *scope, width int) (rtl.Expr, error) {
	if o, ok := x.(*othersE); ok {
		if o.bit == '1' {
			return rtl.C(rtl.Mask(width), width), nil
		}
		return rtl.C(0, width), nil
	}
	return e.elabExpr(x, sc)
}

func (e *elab) elabExpr(x expr, sc *scope) (rtl.Expr, error) {
	switch v := x.(type) {
	case *numLit:
		w := v.w
		if w == 0 {
			w = 32
			if v.val > 0xFFFFFFFF {
				w = 64
			}
		}
		return rtl.C(v.val, w), nil
	case *identRef:
		if g, ok := sc.generics[v.name]; ok {
			return rtl.C(uint64(g), 32), nil
		}
		if si, ok := sc.sigs[v.name]; ok {
			return e.b.Ref(si.id), nil
		}
		// true/false literals
		if v.name == "true" {
			return rtl.C(1, 1), nil
		}
		if v.name == "false" {
			return rtl.C(0, 1), nil
		}
		return nil, fmt.Errorf("vhdl: line %d: undeclared identifier %q", v.line, v.name)
	case *othersE:
		return nil, fmt.Errorf("vhdl: line %d: (others => ...) is only supported as a direct assignment source", v.line)
	case *selectE:
		base, err := e.elabExpr(v.base, sc)
		if err != nil {
			return nil, err
		}
		hi, err := e.evalConst(v.msb, sc)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: slice bounds must be constant: %w", v.line, err)
		}
		lo, err := e.evalConst(v.lsb, sc)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: slice bounds must be constant: %w", v.line, err)
		}
		if lo > hi || int(hi) >= base.Width() {
			return nil, fmt.Errorf("vhdl: line %d: slice (%d downto %d) out of range (width %d)", v.line, hi, lo, base.Width())
		}
		return rtl.SliceE(base, int(hi), int(lo)), nil
	case *unaryE:
		xe, err := e.elabExpr(v.x, sc)
		if err != nil {
			return nil, err
		}
		switch v.op {
		case "not":
			return rtl.Not(xe), nil
		case "-":
			return rtl.Neg(xe), nil
		}
		return nil, fmt.Errorf("vhdl: line %d: unsupported unary %q", v.line, v.op)
	case *binE:
		xe, err := e.elabExpr(v.x, sc)
		if err != nil {
			return nil, err
		}
		ye, err := e.elabExpr(v.y, sc)
		if err != nil {
			return nil, err
		}
		switch v.op {
		case "and":
			return rtl.AndE(xe, ye), nil
		case "or":
			return rtl.OrE(xe, ye), nil
		case "xor":
			return rtl.XorE(xe, ye), nil
		case "nand":
			return rtl.Not(rtl.AndE(xe, ye)), nil
		case "nor":
			return rtl.Not(rtl.OrE(xe, ye)), nil
		case "xnor":
			return rtl.Not(rtl.XorE(xe, ye)), nil
		case "=":
			return rtl.Eq(xe, ye), nil
		case "/=":
			return rtl.Ne(xe, ye), nil
		case "<":
			return rtl.Lt(xe, ye), nil
		case "<=":
			return rtl.Le(xe, ye), nil
		case ">":
			return rtl.Gt(xe, ye), nil
		case ">=":
			return rtl.Ge(xe, ye), nil
		case "+":
			return rtl.Add(xe, ye), nil
		case "-":
			return rtl.Sub(xe, ye), nil
		case "*":
			return rtl.MulE(xe, ye), nil
		case "/":
			return rtl.DivE(xe, ye), nil
		case "mod", "rem":
			return rtl.ModE(xe, ye), nil
		case "sll":
			return rtl.Shl(xe, ye), nil
		case "srl":
			return rtl.Shr(xe, ye), nil
		case "sra":
			return rtl.Sra(xe, ye), nil
		case "&":
			return rtl.Cat(xe, ye), nil
		}
		return nil, fmt.Errorf("vhdl: line %d: unsupported operator %q", v.line, v.op)
	case *callExpr:
		return e.elabCall(v, sc)
	}
	return nil, fmt.Errorf("vhdl: unsupported expression %T", x)
}

// elabCall handles both function-style casts and signal indexing, which are
// syntactically identical in VHDL (name(arg)).
func (e *elab) elabCall(v *callExpr, sc *scope) (rtl.Expr, error) {
	// Signal indexing: sig(i).
	if si, ok := sc.sigs[v.fn]; ok {
		if len(v.args) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: bad index of signal %q", v.line, v.fn)
		}
		if c, err := e.evalConst(v.args[0], sc); err == nil {
			if int(c) >= si.width {
				return nil, fmt.Errorf("vhdl: line %d: index %d out of range for %q", v.line, c, v.fn)
			}
			return rtl.Bit(e.b.Ref(si.id), int(c)), nil
		}
		idx, err := e.elabExpr(v.args[0], sc)
		if err != nil {
			return nil, err
		}
		return rtl.IndexE(e.b.Ref(si.id), idx), nil
	}
	switch v.fn {
	case "std_logic_vector", "unsigned", "signed", "std_ulogic_vector":
		if len(v.args) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: %s expects one argument", v.line, v.fn)
		}
		return e.elabExpr(v.args[0], sc)
	case "to_integer":
		if len(v.args) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: to_integer expects one argument", v.line)
		}
		a, err := e.elabExpr(v.args[0], sc)
		if err != nil {
			return nil, err
		}
		return rtl.Resize(a, 32), nil
	case "resize", "to_unsigned", "to_signed":
		if len(v.args) != 2 {
			return nil, fmt.Errorf("vhdl: line %d: %s expects two arguments", v.line, v.fn)
		}
		w, err := e.evalConst(v.args[1], sc)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %s width must be constant: %w", v.line, v.fn, err)
		}
		if w < 1 || w > 64 {
			return nil, fmt.Errorf("vhdl: line %d: width %d out of range", v.line, w)
		}
		a, err := e.elabExpr(v.args[0], sc)
		if err != nil {
			return nil, err
		}
		return rtl.Resize(a, int(w)), nil
	case "shift_left":
		a, err := e.elabExpr(v.args[0], sc)
		if err != nil {
			return nil, err
		}
		n, err := e.elabExpr(v.args[1], sc)
		if err != nil {
			return nil, err
		}
		return rtl.Shl(a, n), nil
	case "shift_right":
		a, err := e.elabExpr(v.args[0], sc)
		if err != nil {
			return nil, err
		}
		n, err := e.elabExpr(v.args[1], sc)
		if err != nil {
			return nil, err
		}
		return rtl.Shr(a, n), nil
	case "rising_edge":
		// Reached only when a rising_edge test survives outside the clock
		// strip (e.g. in an expression); every Tick is a posedge.
		return rtl.C(1, 1), nil
	case "falling_edge":
		return rtl.C(0, 1), nil
	}
	return nil, fmt.Errorf("vhdl: line %d: unsupported function or undeclared array %q", v.line, v.fn)
}
