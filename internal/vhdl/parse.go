package vhdl

import (
	"fmt"
	"strconv"
)

// Parse scans and parses VHDL source into a Design.
func Parse(src string) (*Design, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	d := &Design{}
	entities := map[string]*Entity{}
	for !p.atEOF() {
		switch {
		case p.isKw("library"), p.isKw("use"):
			// Skip context clauses up to the semicolon.
			for !p.atEOF() && !p.isPunct(";") {
				p.pos++
			}
			p.acceptPunct(";")
		case p.isKw("entity"):
			e, err := p.parseEntity()
			if err != nil {
				return nil, err
			}
			if _, dup := entities[e.Name]; dup {
				return nil, fmt.Errorf("vhdl: duplicate entity %q", e.Name)
			}
			entities[e.Name] = e
			d.Entities = append(d.Entities, e)
		case p.isKw("architecture"):
			if err := p.parseArchitecture(entities); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected entity, architecture, library or use")
		}
	}
	if len(d.Entities) == 0 {
		return nil, fmt.Errorf("vhdl: no entities in source")
	}
	return d, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("vhdl: line %d: %s (at %q)", t.line, fmt.Sprintf(format, args...), t.text)
}

func (p *parser) isKw(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}
func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}
func (p *parser) acceptKw(s string) bool {
	if p.isKw(s) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expectKw(s string) error {
	if !p.acceptKw(s) {
		return p.errf("expected %q", s)
	}
	return nil
}
func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}
func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	s := p.cur().text
	p.pos++
	return s, nil
}

var vhdlKeywords = map[string]bool{
	"when": true, "else": true, "then": true, "elsif": true, "end": true,
	"and": true, "or": true, "xor": true, "nand": true, "nor": true, "xnor": true,
	"not": true, "downto": true, "to": true, "is": true, "begin": true,
	"process": true, "case": true, "if": true, "others": true, "sll": true,
	"srl": true, "mod": true, "rem": true, "loop": true, "generate": true,
}

func (p *parser) parseEntity() (*Entity, error) {
	line := p.cur().line
	if err := p.expectKw("entity"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	e := &Entity{Name: name, Line: line}
	if p.acceptKw("generic") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			gname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			if _, err := p.expectIdent(); err != nil { // type (integer etc.)
				return nil, err
			}
			var def expr
			if p.acceptPunct(":=") {
				def, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			e.Generics = append(e.Generics, genericDecl{gname, def})
			if !p.acceptPunct(";") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("port") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			pline := p.cur().line
			// name {, name} : in|out type
			var names []string
			for {
				n, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				names = append(names, n)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			isIn := false
			if p.acceptKw("in") {
				isIn = true
			} else if p.acceptKw("out") || p.acceptKw("buffer") {
				isIn = false
			} else if p.acceptKw("inout") {
				return nil, p.errf("inout ports are not supported")
			} else {
				return nil, p.errf("expected port direction")
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				e.Ports = append(e.Ports, portDecl{name: n, isIn: isIn, typ: typ, line: pline})
			}
			if !p.acceptPunct(";") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.acceptKw("entity")
	if p.cur().kind == tokIdent {
		p.pos++
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseType() (typeRef, error) {
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return typeRef{}, err
	}
	t := typeRef{name: name, line: line}
	if p.acceptPunct("(") {
		msb, err := p.parseExpr()
		if err != nil {
			return t, err
		}
		if !p.acceptKw("downto") {
			return t, p.errf("only (N downto 0) ranges are supported")
		}
		lsbTok := p.cur()
		lsb, err := p.parseExpr()
		if err != nil {
			return t, err
		}
		if n, ok := lsb.(*numLit); !ok || n.val != 0 {
			return t, fmt.Errorf("vhdl: line %d: only (N downto 0) ranges are supported", lsbTok.line)
		}
		t.msb = msb
		if err := p.expectPunct(")"); err != nil {
			return t, err
		}
	}
	return t, nil
}

func (p *parser) parseArchitecture(entities map[string]*Entity) error {
	if err := p.expectKw("architecture"); err != nil {
		return err
	}
	if _, err := p.expectIdent(); err != nil { // arch name
		return err
	}
	if err := p.expectKw("of"); err != nil {
		return err
	}
	ename, err := p.expectIdent()
	if err != nil {
		return err
	}
	e, ok := entities[ename]
	if !ok {
		return p.errf("architecture for unknown entity %q", ename)
	}
	if err := p.expectKw("is"); err != nil {
		return err
	}
	// Declarative part: signal declarations (components are ignored in favour
	// of direct entity instantiation; constants become generics-like).
	for !p.isKw("begin") {
		if p.atEOF() {
			return p.errf("unexpected EOF in architecture")
		}
		switch {
		case p.acceptKw("signal"):
			line := p.cur().line
			var names []string
			for {
				n, err := p.expectIdent()
				if err != nil {
					return err
				}
				names = append(names, n)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			typ, err := p.parseType()
			if err != nil {
				return err
			}
			var init expr
			if p.acceptPunct(":=") {
				init, err = p.parseExpr()
				if err != nil {
					return err
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			for _, n := range names {
				e.Signals = append(e.Signals, signalDecl{name: n, typ: typ, init: init, line: line})
			}
		case p.acceptKw("constant"):
			// constant NAME : type := value;  -> treated as a generic default.
			n, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			if _, err := p.parseType(); err != nil {
				return err
			}
			if err := p.expectPunct(":="); err != nil {
				return err
			}
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			e.Generics = append(e.Generics, genericDecl{n, v})
		default:
			return p.errf("unsupported architecture declaration")
		}
	}
	p.pos++ // begin
	for !p.isKw("end") {
		if p.atEOF() {
			return p.errf("unexpected EOF in architecture body")
		}
		c, err := p.parseConcurrent()
		if err != nil {
			return err
		}
		e.Concs = append(e.Concs, c)
	}
	p.pos++ // end
	p.acceptKw("architecture")
	if p.cur().kind == tokIdent {
		p.pos++
	}
	return p.expectPunct(";")
}

func (p *parser) parseConcurrent() (conc, error) {
	line := p.cur().line
	if p.isKw("process") {
		return p.parseProcess()
	}
	// Could be "label: process", "label: entity work.x ...", or an assignment.
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ":" {
		label := p.cur().text
		p.pos += 2
		if p.isKw("process") {
			return p.parseProcess()
		}
		if p.acceptKw("entity") {
			if p.acceptKw("work") {
				if err := p.expectPunct("."); err != nil {
					return nil, err
				}
			}
			ename, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			inst := &instance{label: label, entity: ename, line: line,
				generics: map[string]expr{}, ports: map[string]expr{}}
			if p.acceptKw("generic") {
				if err := p.expectKw("map"); err != nil {
					return nil, err
				}
				if err := p.parseMap(inst.generics); err != nil {
					return nil, err
				}
			}
			if p.acceptKw("port") {
				if err := p.expectKw("map"); err != nil {
					return nil, err
				}
				if err := p.parseMap(inst.ports); err != nil {
					return nil, err
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return inst, nil
		}
		return nil, p.errf("unsupported labelled concurrent statement")
	}
	// Concurrent (possibly conditional) signal assignment.
	target, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("<="); err != nil {
		return nil, err
	}
	ca := &concAssign{target: target, line: line}
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ca.vals = append(ca.vals, v)
		if p.acceptKw("when") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ca.conds = append(ca.conds, cond)
			if err := p.expectKw("else"); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return ca, nil
}

func (p *parser) parseMap(out map[string]expr) error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("=>"); err != nil {
			return err
		}
		if p.acceptKw("open") {
			out[name] = nil
		} else {
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			out[name] = v
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	return p.expectPunct(")")
}

func (p *parser) parseProcess() (conc, error) {
	line := p.cur().line
	if err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		for !p.acceptPunct(")") {
			if p.atEOF() {
				return nil, p.errf("unterminated sensitivity list")
			}
			p.pos++
		}
	}
	p.acceptKw("is")
	if p.isKw("variable") {
		return nil, p.errf("process variables are not supported")
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if p.cur().kind == tokIdent {
		p.pos++
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	pr := &process{body: body, line: line}
	pr.seq = containsRisingEdge(body)
	return pr, nil
}

// parseStmts parses statements until end/elsif/else/when.
func (p *parser) parseStmts() ([]stmtNode, error) {
	var out []stmtNode
	for {
		if p.isKw("end") || p.isKw("elsif") || p.isKw("else") || p.isKw("when") || p.atEOF() {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (stmtNode, error) {
	line := p.cur().line
	switch {
	case p.acceptKw("null"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &nullNode{}, nil
	case p.isKw("if"):
		p.pos++
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		node := &ifNode{cond: cond, then: then, line: line}
		cur := node
		for p.isKw("elsif") {
			p.pos++
			c2, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("then"); err != nil {
				return nil, err
			}
			b2, err := p.parseStmts()
			if err != nil {
				return nil, err
			}
			nxt := &ifNode{cond: c2, then: b2, line: line}
			cur.els = []stmtNode{nxt}
			cur = nxt
		}
		if p.acceptKw("else") {
			els, err := p.parseStmts()
			if err != nil {
				return nil, err
			}
			cur.els = els
		}
		if err := p.expectKw("end"); err != nil {
			return nil, err
		}
		if err := p.expectKw("if"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return node, nil
	case p.isKw("case"):
		p.pos++
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("is"); err != nil {
			return nil, err
		}
		cn := &caseNode{subject: subj, line: line}
		for p.acceptKw("when") {
			var arm caseArm
			if p.acceptKw("others") {
				// choices stays empty
			} else {
				for {
					ch, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					arm.choices = append(arm.choices, ch)
					if !p.acceptPunct("|") {
						break
					}
				}
			}
			if err := p.expectPunct("=>"); err != nil {
				return nil, err
			}
			arm.body, err = p.parseStmts()
			if err != nil {
				return nil, err
			}
			cn.arms = append(cn.arms, arm)
		}
		if err := p.expectKw("end"); err != nil {
			return nil, err
		}
		if err := p.expectKw("case"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return cn, nil
	case p.isKw("for") || p.isKw("while") || p.isKw("loop"):
		return nil, p.errf("loops are not supported by the gem5rtl VHDL subset")
	default:
		target, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("<="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &sigAssign{target: target, rhs: rhs, line: line}, nil
	}
}

func (p *parser) parseLValue() (lvalue, error) {
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return lvalue{}, err
	}
	lv := lvalue{name: name, line: line}
	if p.acceptPunct("(") {
		first, err := p.parseExpr()
		if err != nil {
			return lv, err
		}
		if p.acceptKw("downto") {
			lv.msb = first
			lv.lsb, err = p.parseExpr()
			if err != nil {
				return lv, err
			}
		} else {
			lv.index = first
		}
		if err := p.expectPunct(")"); err != nil {
			return lv, err
		}
	}
	return lv, nil
}

// containsRisingEdge reports whether any condition in the statement tree
// calls rising_edge (making the process clocked).
func containsRisingEdge(stmts []stmtNode) bool {
	for _, s := range stmts {
		if n, ok := s.(*ifNode); ok {
			if exprHasRisingEdge(n.cond) || containsRisingEdge(n.then) || containsRisingEdge(n.els) {
				return true
			}
		}
		if n, ok := s.(*caseNode); ok {
			for _, a := range n.arms {
				if containsRisingEdge(a.body) {
					return true
				}
			}
		}
	}
	return false
}

func exprHasRisingEdge(e expr) bool {
	switch v := e.(type) {
	case *callExpr:
		if v.fn == "rising_edge" || v.fn == "falling_edge" {
			return true
		}
		for _, a := range v.args {
			if exprHasRisingEdge(a) {
				return true
			}
		}
	case *binE:
		return exprHasRisingEdge(v.x) || exprHasRisingEdge(v.y)
	case *unaryE:
		return exprHasRisingEdge(v.x)
	}
	return false
}

// ---------------------------------------------------------------------------
// Expression parsing. VHDL precedence (low to high): logical (and/or/...),
// relational, shift, adding, multiplying, misc (**, not).

func (p *parser) parseExpr() (expr, error) {
	return p.parseLogical()
}

func (p *parser) parseLogical() (expr, error) {
	lhs, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return lhs, nil
		}
		switch t.text {
		case "and", "or", "xor", "nand", "nor", "xnor":
			p.pos++
			rhs, err := p.parseRelational()
			if err != nil {
				return nil, err
			}
			lhs = &binE{op: t.text, x: lhs, y: rhs, line: t.line}
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseRelational() (expr, error) {
	lhs, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "/=", "<", "<=", ">", ">=":
			p.pos++
			rhs, err := p.parseShift()
			if err != nil {
				return nil, err
			}
			return &binE{op: t.text, x: lhs, y: rhs, line: t.line}, nil
		}
	}
	return lhs, nil
}

func (p *parser) parseShift() (expr, error) {
	lhs, err := p.parseAdding()
	if err != nil {
		return nil, err
	}
	for p.isKw("sll") || p.isKw("srl") || p.isKw("sra") {
		op := p.cur().text
		line := p.cur().line
		p.pos++
		rhs, err := p.parseAdding()
		if err != nil {
			return nil, err
		}
		lhs = &binE{op: op, x: lhs, y: rhs, line: line}
	}
	return lhs, nil
}

func (p *parser) parseAdding() (expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-" || t.text == "&") {
			p.pos++
			rhs, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			lhs = &binE{op: t.text, x: lhs, y: rhs, line: t.line}
			continue
		}
		return lhs, nil
	}
}

func (p *parser) parseMul() (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		isMul := t.kind == tokPunct && (t.text == "*" || t.text == "/")
		isMod := t.kind == tokIdent && (t.text == "mod" || t.text == "rem")
		if !isMul && !isMod {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &binE{op: t.text, x: lhs, y: rhs, line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokIdent && t.text == "not" {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryE{op: "not", x: x, line: t.line}, nil
	}
	if t.kind == tokPunct && t.text == "-" {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryE{op: "-", x: x, line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// name(args) is either an index/slice or a call; disambiguated at
	// elaboration by the callExpr produced in parsePrimary.
	return base, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		v, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: bad number %q", t.line, t.text)
		}
		return &numLit{val: v, w: 0, line: t.line}, nil
	case tokChar:
		p.pos++
		switch t.text {
		case "0":
			return &numLit{val: 0, w: 1, line: t.line}, nil
		case "1":
			return &numLit{val: 1, w: 1, line: t.line}, nil
		default:
			// 'X', 'Z', 'U' etc. collapse to 0 in the two-state engine.
			return &numLit{val: 0, w: 1, line: t.line}, nil
		}
	case tokBits:
		p.pos++
		if len(t.text) == 0 || len(t.text) > 64 {
			return nil, fmt.Errorf("vhdl: line %d: bit string length %d unsupported", t.line, len(t.text))
		}
		var v uint64
		for _, c := range t.text {
			v <<= 1
			if c == '1' {
				v |= 1
			}
		}
		return &numLit{val: v, w: len(t.text), line: t.line}, nil
	case tokHex:
		p.pos++
		v, err := strconv.ParseUint(t.text, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: bad hex literal %q", t.line, t.text)
		}
		return &numLit{val: v, w: 4 * len(t.text), line: t.line}, nil
	case tokIdent:
		name := t.text
		line := t.line
		p.pos++
		if p.acceptPunct("(") {
			// others aggregate? (others => '0')
			if name == "" {
				return nil, p.errf("internal: empty name")
			}
			var args []expr
			var msb, lsb expr
			isSlice := false
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if p.acceptKw("downto") {
					msb = a
					lsb, err = p.parseExpr()
					if err != nil {
						return nil, err
					}
					isSlice = true
					break
				}
				args = append(args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if isSlice {
				return &selectE{base: &identRef{name: name, line: line}, msb: msb, lsb: lsb, line: line}, nil
			}
			return &callExpr{fn: name, args: args, line: line}, nil
		}
		return &identRef{name: name, line: line}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			// (others => '0') aggregate?
			if p.acceptKw("others") {
				if err := p.expectPunct("=>"); err != nil {
					return nil, err
				}
				bitTok := p.cur()
				if bitTok.kind != tokChar {
					return nil, p.errf("expected '0' or '1' in others aggregate")
				}
				p.pos++
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &othersE{bit: bitTok.text[0], line: t.line}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression")
}
