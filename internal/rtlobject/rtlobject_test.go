package rtlobject

import (
	"testing"

	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// echoWrapper is a minimal RTL model stand-in: it issues a programmed list
// of memory requests (one per tick), records responses, and answers CPU
// requests by echoing the address. It raises the interrupt when all memory
// responses have arrived.
type echoWrapper struct {
	toIssue   []MemRequest
	responses []MemResponse
	cpuSeen   []CPURequest
	resets    int
	ticks     uint64
	needed    int
}

func (w *echoWrapper) Name() string { return "echo" }
func (w *echoWrapper) Reset()       { w.resets++; w.responses = nil; w.ticks = 0 }

func (w *echoWrapper) Tick(in *Input) *Output {
	w.ticks++
	out := &Output{}
	w.responses = append(w.responses, in.MemResponses...)
	for _, req := range in.CPURequests {
		w.cpuSeen = append(w.cpuSeen, req)
		out.CPUResponses = append(out.CPUResponses, CPUResponse{
			ID:   req.ID,
			Data: []byte{byte(req.Addr), byte(req.Addr >> 8), 0, 0},
		})
	}
	if len(w.toIssue) > 0 {
		out.MemRequests = append(out.MemRequests, w.toIssue[0])
		w.toIssue = w.toIssue[1:]
	}
	out.Interrupt = w.needed > 0 && len(w.responses) >= w.needed
	return out
}

// simpleMem answers reads/writes with fixed latency and limited concurrency.
type simpleMem struct {
	q        *sim.EventQueue
	portR    *port.ResponsePort
	rq       *port.RespQueue
	latency  sim.Tick
	capacity int
	inflight int
	seen     int
}

func newSimpleMem(q *sim.EventQueue, latency sim.Tick, capacity int) *simpleMem {
	m := &simpleMem{q: q, latency: latency, capacity: capacity}
	m.portR = port.NewResponsePort("mem", m)
	m.rq = port.NewRespQueue("mem", q, m.portR)
	return m
}

func (m *simpleMem) RecvTimingReq(pkt *port.Packet) bool {
	if m.inflight >= m.capacity {
		return false
	}
	m.inflight++
	m.seen++
	pkt.MakeResponse()
	if pkt.Cmd == port.ReadResp {
		pkt.AllocateData()
		for i := range pkt.Data {
			pkt.Data[i] = byte(pkt.Addr)
		}
	}
	m.rq.Schedule(pkt, m.q.Now()+m.latency)
	m.q.ScheduleFunc("memfree", m.q.Now()+m.latency, func() {
		m.inflight--
		m.portR.SendRetryReq()
	})
	return true
}

func (m *simpleMem) RecvRespRetry() { m.rq.RecvRespRetry() }

func setup(t *testing.T, cfg Config, w Wrapper, memLat sim.Tick, memCap int) (*sim.EventQueue, *RTLObject, *simpleMem) {
	t.Helper()
	q := sim.NewEventQueue()
	core := sim.NewClockDomain("cpu", q, 2_000_000_000)
	r := New(cfg, core, w)
	mem := newSimpleMem(q, memLat, memCap)
	port.Bind(r.MemPort(0), mem.portR)
	return q, r, mem
}

func TestMemoryRoundTrip(t *testing.T) {
	w := &echoWrapper{
		toIssue: []MemRequest{{ID: 1, Addr: 0x40, Size: 64}},
		needed:  1,
	}
	irqs := 0
	_, r, _ := setup(t, Config{Name: "dev"}, w, 1000, 8)
	r.OnInterrupt(func(level bool) {
		if level {
			irqs++
		}
	})
	r.Start()
	q := r.dom.Queue()
	q.RunUntil(20 * sim.Microsecond)
	r.Stop()
	if w.resets != 1 {
		t.Fatalf("wrapper reset %d times, want 1", w.resets)
	}
	if len(w.responses) != 1 {
		t.Fatalf("wrapper got %d responses, want 1", len(w.responses))
	}
	if w.responses[0].ID != 1 || w.responses[0].Data[0] != 0x40 {
		t.Fatalf("bad response: %+v", w.responses[0])
	}
	if w.responses[0].Latency < 1000 {
		t.Fatalf("latency %d < memory latency", w.responses[0].Latency)
	}
	if irqs != 1 {
		t.Fatalf("got %d interrupts, want 1", irqs)
	}
	st := r.Stats()
	if st.MemReads != 1 || st.RetiredMem != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMaxInflightEnforced(t *testing.T) {
	const n = 32
	var reqs []MemRequest
	for i := 0; i < n; i++ {
		reqs = append(reqs, MemRequest{ID: uint64(i + 1), Addr: uint64(i) * 64, Size: 64})
	}
	// Issue all in one tick by front-loading.
	w := &burstWrapper{reqs: reqs}
	_, r, mem := setup(t, Config{Name: "dev", MaxInflight: 4}, w, 5000, 64)
	maxSeen := 0
	probe := sim.NewTicker("probe", r.dom, sim.PriStats, func(uint64) bool {
		if c := r.InflightCount(); c > maxSeen {
			maxSeen = c
		}
		return true
	})
	r.Start()
	probe.Start()
	q := r.dom.Queue()
	q.RunUntil(sim.Millisecond)
	probe.Stop()
	r.Stop()
	if maxSeen > 4 {
		t.Fatalf("observed %d in-flight, cap is 4", maxSeen)
	}
	if mem.seen != n {
		t.Fatalf("memory saw %d requests, want %d", mem.seen, n)
	}
	if len(w.responses) != n {
		t.Fatalf("wrapper got %d responses, want %d", len(w.responses), n)
	}
	if r.Stats().StallCycles == 0 {
		t.Fatal("expected stall cycles with a tight in-flight cap")
	}
}

// burstWrapper issues all requests on the first tick.
type burstWrapper struct {
	reqs      []MemRequest
	responses []MemResponse
	issued    bool
}

func (w *burstWrapper) Name() string { return "burst" }
func (w *burstWrapper) Reset()       { w.issued = false; w.responses = nil }
func (w *burstWrapper) Tick(in *Input) *Output {
	out := &Output{}
	w.responses = append(w.responses, in.MemResponses...)
	if !w.issued {
		out.MemRequests = w.reqs
		w.issued = true
	}
	return out
}

func TestCPUPortRequestResponse(t *testing.T) {
	w := &echoWrapper{}
	q, r, _ := setup(t, Config{Name: "dev"}, w, 100, 8)
	// A fake CPU master sending a read to the device's CPU-side port 0.
	cpu := &fakeMaster{q: q}
	cpu.p = port.NewRequestPort("cpu", cpu)
	port.Bind(cpu.p, r.CPUPort(0))
	r.Start()
	pkt := port.NewReadPacket(0x1234, 4)
	if !cpu.p.SendTimingReq(pkt) {
		t.Fatal("device refused CPU request")
	}
	q.RunUntil(10 * sim.Microsecond)
	r.Stop()
	if len(cpu.resps) != 1 {
		t.Fatalf("CPU got %d responses, want 1", len(cpu.resps))
	}
	if cpu.resps[0].Data[0] != 0x34 || cpu.resps[0].Data[1] != 0x12 {
		t.Fatalf("bad echo data: %v", cpu.resps[0].Data)
	}
	if len(w.cpuSeen) != 1 || w.cpuSeen[0].Addr != 0x1234 || w.cpuSeen[0].Port != 0 {
		t.Fatalf("wrapper saw %+v", w.cpuSeen)
	}
}

type fakeMaster struct {
	q     *sim.EventQueue
	p     *port.RequestPort
	resps []*port.Packet
}

func (f *fakeMaster) RecvTimingResp(pkt *port.Packet) bool {
	f.resps = append(f.resps, pkt)
	return true
}
func (f *fakeMaster) RecvReqRetry() {}

func TestClockDividerSlowsModel(t *testing.T) {
	w1 := &echoWrapper{}
	_, r1, _ := setup(t, Config{Name: "fast", ClockDivider: 1}, w1, 100, 8)
	w2 := &echoWrapper{}
	_, r2, _ := setup(t, Config{Name: "slow", ClockDivider: 4}, w2, 100, 8)
	r1.Start()
	r2.Start()
	r1.dom.Queue().RunUntil(100 * sim.Nanosecond)
	r2.dom.Queue().RunUntil(100 * sim.Nanosecond)
	r1.Stop()
	r2.Stop()
	if w1.ticks == 0 || w2.ticks == 0 {
		t.Fatal("models did not tick")
	}
	ratio := float64(w1.ticks) / float64(w2.ticks)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("tick ratio %.2f, want ~4 (divider)", ratio)
	}
}

func TestTLBTranslation(t *testing.T) {
	tlb := NewPageTLB(12)
	tlb.Map(0x10, 0x80) // 0x10000 -> 0x80000
	w := &echoWrapper{toIssue: []MemRequest{{ID: 1, Addr: 0x10040, Size: 64}}}
	q := sim.NewEventQueue()
	core := sim.NewClockDomain("cpu", q, 2_000_000_000)
	r := New(Config{Name: "dev", TLB: tlb}, core, w)
	mem := newSimpleMem(q, 100, 8)
	port.Bind(r.MemPort(0), mem.portR)
	var seenAddr uint64
	origRecv := mem.portR
	_ = origRecv
	r.Start()
	q.RunUntil(10 * sim.Microsecond)
	r.Stop()
	if len(w.responses) != 1 {
		t.Fatalf("no response")
	}
	// The simpleMem echoes the low byte of the translated address.
	if w.responses[0].Data[0] != 0x40 {
		t.Fatalf("data byte %#x", w.responses[0].Data[0])
	}
	if tlb.Hits != 1 {
		t.Fatalf("TLB hits = %d, want 1", tlb.Hits)
	}
	_ = seenAddr
}

func TestIdentityTLB(t *testing.T) {
	var tlb IdentityTLB
	if tlb.Translate(0xABC) != 0xABC {
		t.Fatal("identity TLB translated")
	}
}

func TestPageTLBPassthroughAndRange(t *testing.T) {
	tlb := NewPageTLB(12)
	tlb.MapRange(0x100, 0x200, 4)
	if got := tlb.Translate(0x102<<12 | 0x34); got != 0x202<<12|0x34 {
		t.Fatalf("mapped translate = %#x", got)
	}
	if got := tlb.Translate(0x999<<12 | 0x1); got != 0x999<<12|0x1 {
		t.Fatalf("unmapped passthrough = %#x", got)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestPortBackPressureQueuesRequests(t *testing.T) {
	// Memory with capacity 1 and long latency: the object must queue and
	// retry, never dropping requests.
	var reqs []MemRequest
	for i := 0; i < 10; i++ {
		reqs = append(reqs, MemRequest{ID: uint64(i + 1), Addr: uint64(i) * 64, Size: 64})
	}
	w := &burstWrapper{reqs: reqs}
	_, r, mem := setup(t, Config{Name: "dev"}, w, 2000, 1)
	r.Start()
	r.dom.Queue().RunUntil(sim.Millisecond)
	r.Stop()
	if mem.seen != 10 || len(w.responses) != 10 {
		t.Fatalf("seen=%d responses=%d, want 10/10", mem.seen, len(w.responses))
	}
}
