package rtlobject

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// ckptWrapper is a deterministic checkpointable model: every tick it issues
// one 64-byte read until total is reached, and records retired responses.
type ckptWrapper struct {
	issued  int
	retired int
	total   int
}

func (w *ckptWrapper) Name() string { return "ckptw" }
func (w *ckptWrapper) Reset()       { w.issued, w.retired = 0, 0 }

func (w *ckptWrapper) Tick(in *Input) *Output {
	out := &Output{}
	w.retired += len(in.MemResponses)
	if w.issued < w.total {
		w.issued++
		out.MemRequests = append(out.MemRequests, MemRequest{
			ID: uint64(w.issued), Addr: uint64(w.issued) * 64, Size: 64,
		})
	}
	return out
}

func (w *ckptWrapper) SaveState(cw *ckpt.Writer) error {
	cw.Section("ckptw")
	cw.Int(w.issued)
	cw.Int(w.retired)
	cw.Int(w.total)
	return cw.Err()
}

func (w *ckptWrapper) RestoreState(r *ckpt.Reader) error {
	r.Section("ckptw")
	w.issued = r.Len()
	w.retired = r.Len()
	w.total = r.Len()
	return r.Err()
}

type ckptRig struct {
	q    *sim.EventQueue
	obj  *RTLObject
	wrap *ckptWrapper
	m0   *mem.IdealMemory
	m1   *mem.IdealMemory
}

func newCkptRig(total int) *ckptRig {
	r := &ckptRig{q: sim.NewEventQueue(), wrap: &ckptWrapper{total: total}}
	core := sim.NewClockDomain("cpu", r.q, 2_000_000_000)
	r.obj = New(Config{Name: "obj", ClockDivider: 2, MaxInflight: 2}, core, r.wrap)
	store := mem.NewStorage()
	r.m0 = mem.NewIdealMemory("m0", r.q, store, 40*sim.Nanosecond)
	r.m1 = mem.NewIdealMemory("m1", r.q, store, 40*sim.Nanosecond)
	port.Bind(r.obj.MemPort(0), r.m0.Port())
	port.Bind(r.obj.MemPort(1), r.m1.Port())
	return r
}

func (r *ckptRig) save(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	for _, c := range []ckpt.Checkpointable{r.q, r.obj, r.m0, r.m1} {
		if err := c.SaveState(w); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func (r *ckptRig) restore(t *testing.T, blob []byte) {
	t.Helper()
	rd := ckpt.NewReader(bytes.NewReader(blob))
	for _, c := range []ckpt.Checkpointable{r.q, r.obj, r.m0, r.m1} {
		if err := c.RestoreState(rd); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
}

// TestRTLObjectRoundTrip checkpoints the bridge mid-run — requests beyond
// MaxInflight waiting in the overflow queue, responses outstanding in memory
// — restores into a fresh rig (no Start) and checks both finish identically.
func TestRTLObjectRoundTrip(t *testing.T) {
	r := newCkptRig(20)
	r.obj.Start()
	r.q.RunUntil(100 * sim.Nanosecond)
	if r.obj.InflightCount() == 0 {
		t.Fatal("nothing in flight at checkpoint tick")
	}
	blob := r.save(t)

	r2 := newCkptRig(20)
	r2.restore(t, blob)
	if got := r2.save(t); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}
	if r2.wrap.issued != r.wrap.issued || r2.obj.InflightCount() != r.obj.InflightCount() {
		t.Fatalf("bridge state lost: issued=%d inflight=%d", r2.wrap.issued, r2.obj.InflightCount())
	}

	end := 100 * sim.Microsecond
	r.q.RunUntil(end)
	r2.q.RunUntil(end)
	if r.wrap.retired != 20 || r2.wrap.retired != r.wrap.retired {
		t.Errorf("retired: cold=%d restored=%d", r.wrap.retired, r2.wrap.retired)
	}
	if r.obj.Stats() != r2.obj.Stats() {
		t.Errorf("final stats diverge:\n got %+v\nwant %+v", r2.obj.Stats(), r.obj.Stats())
	}
}

// TestRTLObjectWrapperMustCheckpoint verifies the bridge refuses to save a
// model that cannot serialise itself.
func TestRTLObjectWrapperMustCheckpoint(t *testing.T) {
	q := sim.NewEventQueue()
	core := sim.NewClockDomain("cpu", q, 2_000_000_000)
	obj := New(Config{Name: "obj"}, core, &echoWrapper{})
	var buf bytes.Buffer
	if err := obj.SaveState(ckpt.NewWriter(&buf)); err == nil {
		t.Fatal("non-checkpointable wrapper accepted")
	}
}
