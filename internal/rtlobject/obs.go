package rtlobject

import "gem5rtl/internal/obs"

// AttachTracer wires the RTL debug flag (nil logger = off).
func (r *RTLObject) AttachTracer(t *obs.Tracer) {
	r.trace = t.Logger("RTL", r.cfg.Name)
}
