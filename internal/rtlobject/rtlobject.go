// Package rtlobject implements the paper's central contribution: the generic
// RTLObject that embeds an RTL model (behind a shared-library-style
// tick/reset Wrapper) into the simulated SoC, bridging the model's interfaces
// to gem5-style timing ports and packets.
//
// As in the paper (§3.4), the RTLObject provides:
//
//   - four predefined timing ports — two CPU-side response ports, through
//     which SoC agents (cores, DMA) reach the RTL block, and two memory-side
//     request ports, through which the RTL block reaches caches or DRAM;
//   - a tick event driven at a configurable ratio of the core clock;
//   - optional TLB hookup for address translation of the model's memory
//     requests;
//   - Input/Output structs exchanged with the wrapper on every model tick,
//     mirroring the paper's void*-struct protocol; and
//   - an interrupt line delivered to a registered callback.
//
// The in-flight request limit that drives the paper's NVDLA design-space
// exploration is enforced here: memory requests beyond MaxInflight wait in
// an internal queue until responses retire earlier ones.
package rtlobject

import (
	"fmt"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// NumCPUPorts and NumMemPorts are the predefined port counts of §3.4.
const (
	NumCPUPorts = 2
	NumMemPorts = 2
)

// MemRequest is one memory access the RTL model asks the framework to issue
// on its behalf through a memory-side port.
type MemRequest struct {
	// ID is chosen by the wrapper and echoed back on the response.
	ID uint64
	// Addr is the model-visible address (virtual if a TLB is attached).
	Addr uint64
	// Size in bytes.
	Size int
	// Write selects store vs load; Data holds store payload.
	Write bool
	Data  []byte
	// Port selects which memory-side port to use (0..NumMemPorts-1).
	Port int
}

// MemResponse returns load data (or a store ack) to the model.
type MemResponse struct {
	ID    uint64
	Write bool
	Data  []byte
	// Latency is the measured round-trip in ticks, for model-side profiling.
	Latency sim.Tick
}

// CPURequest is a request that arrived on a CPU-side port (e.g. a core
// programming the PMU's AXI registers).
type CPURequest struct {
	ID    uint64
	Port  int
	Addr  uint64
	Size  int
	Write bool
	Data  []byte
}

// CPUResponse answers a CPURequest with the same ID.
type CPUResponse struct {
	ID   uint64
	Data []byte
}

// Input is the struct passed to Wrapper.Tick each model clock cycle,
// mirroring the paper's input struct.
type Input struct {
	// Cycle counts wrapper ticks since reset.
	Cycle uint64
	// MemResponses completed since the previous tick, in completion order.
	MemResponses []MemResponse
	// CPURequests received since the previous tick, in arrival order.
	CPURequests []CPURequest
	// User carries model-specific payload (e.g. PMU event bits).
	User any
}

// Output is returned by Wrapper.Tick, mirroring the paper's output struct.
type Output struct {
	// MemRequests for the framework to issue (subject to MaxInflight).
	MemRequests []MemRequest
	// CPUResponses completing earlier CPURequests.
	CPUResponses []CPUResponse
	// Interrupt level; a rising edge triggers the IRQ callback.
	Interrupt bool
	// User carries model-specific payload.
	User any
}

// Wrapper is the shared-library interface of §3.3: every RTL model is
// wrapped behind tick and reset entry points.
type Wrapper interface {
	// Tick advances the model one clock and exchanges interface data.
	Tick(in *Input) *Output
	// Reset restores the model's power-on state.
	Reset()
	// Name identifies the model in stats and errors.
	Name() string
}

// Config parameterises an RTLObject.
type Config struct {
	Name string
	// ClockDivider slows the RTL model relative to the core clock domain
	// (the paper's frequency-ratio parameter). 1 = same frequency; 2 = the
	// PMU/NVDLA case (1 GHz under 2 GHz cores).
	ClockDivider uint64
	// MaxInflight caps outstanding memory-side requests (0 = unlimited).
	MaxInflight int
	// TLB, when non-nil, translates model addresses before issue.
	TLB TLB
}

// Stats aggregates RTLObject activity counters.
type Stats struct {
	Ticks         uint64
	MemReads      uint64
	MemWrites     uint64
	MemReadBytes  uint64
	MemWriteBytes uint64
	CPURequests   uint64
	Interrupts    uint64
	StallCycles   uint64 // cycles with requests blocked on MaxInflight
	TotalMemLat   sim.Tick
	RetiredMem    uint64
}

// AvgMemLatency returns the mean memory round-trip in ticks.
func (s *Stats) AvgMemLatency() float64 {
	if s.RetiredMem == 0 {
		return 0
	}
	return float64(s.TotalMemLat) / float64(s.RetiredMem)
}

// RTLObject bridges one Wrapper into the SoC.
type RTLObject struct {
	cfg     Config
	q       *sim.EventQueue
	dom     *sim.ClockDomain
	wrapper Wrapper
	ticker  *sim.Ticker

	cpuPorts [NumCPUPorts]*port.ResponsePort
	memPorts [NumMemPorts]*port.RequestPort
	respQs   [NumCPUPorts]*port.RespQueue

	// Wrapper exchange state. pendingCPU/pendingResp backing arrays are
	// reused across ticks (reset to length zero after each exchange); the
	// Input handed to the wrapper is therefore only valid during the Tick
	// call, matching the paper's void*-struct protocol. Wrappers that keep
	// entries beyond the call must copy the elements (element copies stay
	// valid — only the backing array is recycled).
	pendingCPU  []CPURequest
	pendingResp []MemResponse
	in          Input                   // reused Input handed to Wrapper.Tick
	cpuPkts     map[uint64]*port.Packet // CPU request ID -> original packet
	cpuPktPort  map[uint64]int
	nextCPUID   uint64

	// Memory-side outstanding and overflow queue. sendQ drains from
	// sendHead instead of re-slicing so the backing array is reused;
	// txnFree recycles memTxn records and pool recycles DMA read packets
	// (write packets stay unpooled: their Data aliases the wrapper's
	// request buffer, which checkpoints and posted-write queues may retain).
	inflight map[uint64]*memTxn
	sendQ    []MemRequest
	sendHead int
	txnFree  []*memTxn
	pool     port.PacketPool
	blocked  [NumMemPorts]bool

	irqLevel bool
	irqFn    func(level bool)

	// trace is the RTL debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger

	stats Stats
}

type memTxn struct {
	req    MemRequest
	issued sim.Tick
}

// New creates an RTLObject clocked from coreDom divided by cfg.ClockDivider.
// The object does not start ticking until Start is called (after reset and
// binding).
func New(cfg Config, coreDom *sim.ClockDomain, w Wrapper) *RTLObject {
	if cfg.ClockDivider == 0 {
		cfg.ClockDivider = 1
	}
	r := &RTLObject{
		cfg:        cfg,
		q:          coreDom.Queue(),
		dom:        coreDom.Derived(cfg.Name+".clk", cfg.ClockDivider),
		wrapper:    w,
		cpuPkts:    map[uint64]*port.Packet{},
		cpuPktPort: map[uint64]int{},
		inflight:   map[uint64]*memTxn{},
	}
	for i := 0; i < NumCPUPorts; i++ {
		i := i
		r.cpuPorts[i] = port.NewResponsePort(fmt.Sprintf("%s.cpu_side[%d]", cfg.Name, i), &cpuSide{r, i})
		r.respQs[i] = port.NewRespQueue(fmt.Sprintf("%s.cpu_side[%d]", cfg.Name, i), r.q, r.cpuPorts[i])
		r.respQs[i].SetOwner(r.q.Owner(cfg.Name, "resp-drain"))
	}
	for i := 0; i < NumMemPorts; i++ {
		i := i
		r.memPorts[i] = port.NewRequestPort(fmt.Sprintf("%s.mem_side[%d]", cfg.Name, i), &memSide{r, i})
	}
	r.ticker = sim.NewTicker(cfg.Name+".tick", r.dom, sim.PriDefault, r.tick)
	r.ticker.SetOwner(r.q.Owner(cfg.Name, "tick"))
	return r
}

// Name returns the configured name.
func (r *RTLObject) Name() string { return r.cfg.Name }

// SetPacketIDSpace namespaces the object's DMA packet IDs under the given
// non-zero space tag (port.PacketPool.SetIDSpace). The SoC assigns every
// RTLObject its own space so the object's ID sequence depends only on its own
// allocation order — a prerequisite for the sharded engine, where objects
// allocate concurrently, to mint the same IDs (and therefore the same
// checkpoint bytes) as a serial run. Must be called before Start.
func (r *RTLObject) SetPacketIDSpace(space uint64) { r.pool.SetIDSpace(space) }

// Stats returns a snapshot of activity counters.
func (r *RTLObject) Stats() Stats { return r.stats }

// Wrapper returns the wrapped model (for testbench-style inspection).
func (r *RTLObject) Wrapper() Wrapper { return r.wrapper }

// CPUPort returns CPU-side response port i, for binding SoC masters.
func (r *RTLObject) CPUPort(i int) *port.ResponsePort { return r.cpuPorts[i] }

// MemPort returns memory-side request port i, for binding toward caches or
// memory controllers.
func (r *RTLObject) MemPort(i int) *port.RequestPort { return r.memPorts[i] }

// OnInterrupt registers the IRQ edge callback (e.g. the CPU's interrupt pin).
func (r *RTLObject) OnInterrupt(fn func(level bool)) { r.irqFn = fn }

// Start resets the wrapper and begins ticking at the next model clock edge.
func (r *RTLObject) Start() {
	r.wrapper.Reset()
	r.ticker.Start()
}

// Stop halts the tick event; outstanding memory responses are still
// delivered to the wrapper on a subsequent Start.
func (r *RTLObject) Stop() { r.ticker.Stop() }

// tick is the per-model-cycle event: exchange structs with the wrapper and
// move packets (§3.4's tick event function).
func (r *RTLObject) tick(cycle uint64) bool {
	r.in = Input{
		Cycle:        cycle,
		MemResponses: r.pendingResp,
		CPURequests:  r.pendingCPU,
	}
	// Keep the backing arrays: the wrapper consumes the batch during Tick,
	// so the next tick can refill the same storage.
	r.pendingResp = r.pendingResp[:0]
	r.pendingCPU = r.pendingCPU[:0]
	out := r.wrapper.Tick(&r.in)
	r.stats.Ticks++
	if out != nil {
		for _, resp := range out.CPUResponses {
			r.completeCPU(resp)
		}
		if len(out.MemRequests) > 0 {
			// Compact the drained prefix before growing the queue so the
			// backing array is reused instead of reallocated.
			if r.sendHead > 0 && len(r.sendQ)+len(out.MemRequests) > cap(r.sendQ) {
				n := copy(r.sendQ, r.sendQ[r.sendHead:])
				for i := n; i < len(r.sendQ); i++ {
					r.sendQ[i] = MemRequest{}
				}
				r.sendQ = r.sendQ[:n]
				r.sendHead = 0
			}
			r.sendQ = append(r.sendQ, out.MemRequests...)
		}
		if out.Interrupt != r.irqLevel {
			r.irqLevel = out.Interrupt
			if r.trace.On() {
				r.trace.Logf("irq %v at model cycle %d", out.Interrupt, cycle)
			}
			if out.Interrupt {
				r.stats.Interrupts++
			}
			if r.irqFn != nil {
				r.irqFn(out.Interrupt)
			}
		}
	}
	r.pumpMem()
	return true
}

// pumpMem issues queued memory requests subject to the in-flight cap and
// port back-pressure.
func (r *RTLObject) pumpMem() {
	for r.sendHead < len(r.sendQ) {
		if r.cfg.MaxInflight > 0 && len(r.inflight) >= r.cfg.MaxInflight {
			r.stats.StallCycles++
			return
		}
		req := r.sendQ[r.sendHead]
		if req.Port < 0 || req.Port >= NumMemPorts {
			panic(fmt.Sprintf("rtlobject %s: bad mem port %d", r.cfg.Name, req.Port))
		}
		if r.blocked[req.Port] {
			return
		}
		addr := req.Addr
		if r.cfg.TLB != nil {
			addr = r.cfg.TLB.Translate(addr)
		}
		var pkt *port.Packet
		if req.Write {
			// Unpooled (the packet aliases the wrapper's payload buffer) but
			// minted from the pool's ID space so reads and writes share one
			// deterministic per-object sequence.
			pkt = r.pool.NewWrite(addr, req.Data)
		} else {
			pkt = r.pool.GetRead(addr, req.Size)
		}
		pkt.ReqTick = r.q.Now()
		pkt.PushSenderState(req.ID)
		if !r.memPorts[req.Port].SendTimingReq(pkt) {
			pkt.PopSenderState()
			pkt.Release()
			r.blocked[req.Port] = true
			return
		}
		if r.trace.On() {
			r.trace.Logf("mem issue id=%d port=%d write=%v addr=%#x (%d inflight)",
				req.ID, req.Port, req.Write, addr, len(r.inflight)+1)
		}
		var txn *memTxn
		if n := len(r.txnFree); n > 0 {
			txn = r.txnFree[n-1]
			r.txnFree = r.txnFree[:n-1]
			*txn = memTxn{req: req, issued: r.q.Now()}
		} else {
			txn = &memTxn{req: req, issued: r.q.Now()}
		}
		r.inflight[req.ID] = txn
		if req.Write {
			r.stats.MemWrites++
			r.stats.MemWriteBytes += uint64(len(req.Data))
		} else {
			r.stats.MemReads++
			r.stats.MemReadBytes += uint64(req.Size)
		}
		// Drain from the head, clearing the slot so the retired request's
		// Data buffer is not pinned by the queue.
		r.sendQ[r.sendHead] = MemRequest{}
		r.sendHead++
		if r.sendHead == len(r.sendQ) {
			r.sendQ = r.sendQ[:0]
			r.sendHead = 0
		}
	}
}

// InflightCount reports currently outstanding memory requests.
func (r *RTLObject) InflightCount() int { return len(r.inflight) }

// QueuedCount reports memory requests waiting behind the in-flight cap.
func (r *RTLObject) QueuedCount() int { return len(r.sendQ) - r.sendHead }

func (r *RTLObject) completeCPU(resp CPUResponse) {
	pkt, ok := r.cpuPkts[resp.ID]
	if !ok {
		panic(fmt.Sprintf("rtlobject %s: CPU response for unknown id %d", r.cfg.Name, resp.ID))
	}
	delete(r.cpuPkts, resp.ID)
	pi := r.cpuPktPort[resp.ID]
	delete(r.cpuPktPort, resp.ID)
	pkt.MakeResponse()
	if pkt.Cmd == port.ReadResp {
		pkt.AllocateData()
		copy(pkt.Data, resp.Data)
	}
	r.respQs[pi].Schedule(pkt, r.q.Now())
}

// cpuSide adapts one CPU-side response port to the RTLObject.
type cpuSide struct {
	r *RTLObject
	i int
}

func (c *cpuSide) RecvTimingReq(pkt *port.Packet) bool {
	r := c.r
	r.nextCPUID++
	id := r.nextCPUID
	req := CPURequest{
		ID:    id,
		Port:  c.i,
		Addr:  pkt.Addr,
		Size:  pkt.Size,
		Write: pkt.Cmd.IsWrite(),
	}
	if pkt.Cmd.IsWrite() {
		req.Data = append([]byte(nil), pkt.Data...)
	}
	if pkt.NeedsResponse() {
		r.cpuPkts[id] = pkt
		r.cpuPktPort[id] = c.i
	}
	r.pendingCPU = append(r.pendingCPU, req)
	r.stats.CPURequests++
	return true
}

func (c *cpuSide) RecvRespRetry() { c.r.respQs[c.i].RecvRespRetry() }

// memSide adapts one memory-side request port to the RTLObject.
type memSide struct {
	r *RTLObject
	i int
}

func (m *memSide) RecvTimingResp(pkt *port.Packet) bool {
	r := m.r
	id := pkt.PopSenderState().(uint64)
	txn, ok := r.inflight[id]
	if !ok {
		panic(fmt.Sprintf("rtlobject %s: memory response for unknown id %d", r.cfg.Name, id))
	}
	delete(r.inflight, id)
	lat := r.q.Now() - txn.issued
	if r.trace.On() {
		r.trace.Logf("mem done id=%d write=%v latency=%d", id, txn.req.Write, uint64(lat))
	}
	r.stats.TotalMemLat += lat
	r.stats.RetiredMem++
	resp := MemResponse{ID: id, Write: txn.req.Write, Latency: lat}
	if pkt.Cmd == port.ReadResp {
		// Individually allocated: wrappers may retain response payloads.
		resp.Data = append([]byte(nil), pkt.Data...)
	}
	txn.req = MemRequest{} // drop the Data reference before recycling
	r.txnFree = append(r.txnFree, txn)
	// The payload has been copied out; recycle the pooled read packet
	// (no-op for unpooled write packets).
	pkt.Release()
	r.pendingResp = append(r.pendingResp, resp)
	// Retiring a request may unblock the overflow queue immediately.
	r.pumpMem()
	return true
}

func (m *memSide) RecvReqRetry() {
	m.r.blocked[m.i] = false
	m.r.pumpMem()
}
