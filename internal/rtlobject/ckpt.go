package rtlobject

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Exported codecs for the wrapper-protocol structs, shared with wrapper
// packages (nvdla, pmu) that queue these structs internally and so must
// serialise them too.

// SaveMemRequest writes one MemRequest.
func SaveMemRequest(w *ckpt.Writer, req *MemRequest) {
	w.U64(req.ID)
	w.U64(req.Addr)
	w.Int(req.Size)
	w.Bool(req.Write)
	w.Bytes(req.Data)
	w.Int(req.Port)
}

// LoadMemRequest reads one MemRequest.
func LoadMemRequest(r *ckpt.Reader) MemRequest {
	return MemRequest{
		ID:    r.U64(),
		Addr:  r.U64(),
		Size:  r.Len(),
		Write: r.Bool(),
		Data:  r.Bytes(),
		Port:  r.Len(),
	}
}

// SaveMemResponse writes one MemResponse.
func SaveMemResponse(w *ckpt.Writer, resp *MemResponse) {
	w.U64(resp.ID)
	w.Bool(resp.Write)
	w.Bytes(resp.Data)
	w.U64(uint64(resp.Latency))
}

// LoadMemResponse reads one MemResponse.
func LoadMemResponse(r *ckpt.Reader) MemResponse {
	return MemResponse{
		ID:      r.U64(),
		Write:   r.Bool(),
		Data:    r.Bytes(),
		Latency: sim.Tick(r.U64()),
	}
}

// SaveCPURequest writes one CPURequest.
func SaveCPURequest(w *ckpt.Writer, req *CPURequest) {
	w.U64(req.ID)
	w.Int(req.Port)
	w.U64(req.Addr)
	w.Int(req.Size)
	w.Bool(req.Write)
	w.Bytes(req.Data)
}

// LoadCPURequest reads one CPURequest.
func LoadCPURequest(r *ckpt.Reader) CPURequest {
	return CPURequest{
		ID:    r.U64(),
		Port:  r.Len(),
		Addr:  r.U64(),
		Size:  r.Len(),
		Write: r.Bool(),
		Data:  r.Bytes(),
	}
}

// SaveState captures the RTLObject bridge — tick event, wrapper exchange
// buffers, CPU-side packet table, memory-side in-flight table and overflow
// queue, port flags and response queues — then delegates to the wrapped
// model, which must itself implement ckpt.Checkpointable. Maps are written
// sorted by ID so the stream is deterministic.
func (r *RTLObject) SaveState(w *ckpt.Writer) error {
	w.Section("rtlobject." + r.cfg.Name)
	if err := r.ticker.SaveState(w); err != nil {
		return err
	}
	w.Int(len(r.pendingCPU))
	for i := range r.pendingCPU {
		SaveCPURequest(w, &r.pendingCPU[i])
	}
	w.Int(len(r.pendingResp))
	for i := range r.pendingResp {
		SaveMemResponse(w, &r.pendingResp[i])
	}
	ids := make([]uint64, 0, len(r.cpuPkts))
	for id := range r.cpuPkts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.U64(id)
		w.Int(r.cpuPktPort[id])
		port.SavePacket(w, r.cpuPkts[id])
	}
	w.U64(r.nextCPUID)
	w.U64(r.pool.SaveCounter())
	ids = ids[:0]
	for id := range r.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		txn := r.inflight[id]
		SaveMemRequest(w, &txn.req)
		w.U64(uint64(txn.issued))
	}
	w.Int(len(r.sendQ) - r.sendHead)
	for i := r.sendHead; i < len(r.sendQ); i++ {
		SaveMemRequest(w, &r.sendQ[i])
	}
	for i := range r.blocked {
		w.Bool(r.blocked[i])
	}
	w.Bool(r.irqLevel)
	saveRTLStats(w, &r.stats)
	for i := range r.respQs {
		if err := r.respQs[i].SaveState(w); err != nil {
			return err
		}
		if err := r.cpuPorts[i].SaveState(w); err != nil {
			return err
		}
	}
	c, ok := r.wrapper.(ckpt.Checkpointable)
	if !ok {
		return fmt.Errorf("rtlobject %s: wrapper %s does not support checkpointing", r.cfg.Name, r.wrapper.Name())
	}
	return c.SaveState(w)
}

// RestoreState reinstates the bridge into a freshly built RTLObject of
// identical configuration. The IRQ callback is not invoked for the restored
// level: the receiving component restores its own interrupt state from its
// section of the checkpoint. Start must NOT be called afterwards — it would
// reset the wrapper and restart the (already re-materialised) tick event.
func (r *RTLObject) RestoreState(rd *ckpt.Reader) error {
	rd.Section("rtlobject." + r.cfg.Name)
	if err := r.ticker.RestoreState(rd); err != nil {
		return err
	}
	n := rd.Len()
	r.pendingCPU = nil
	for i := 0; i < n && rd.Err() == nil; i++ {
		r.pendingCPU = append(r.pendingCPU, LoadCPURequest(rd))
	}
	n = rd.Len()
	r.pendingResp = nil
	for i := 0; i < n && rd.Err() == nil; i++ {
		r.pendingResp = append(r.pendingResp, LoadMemResponse(rd))
	}
	n = rd.Len()
	r.cpuPkts = make(map[uint64]*port.Packet, n)
	r.cpuPktPort = make(map[uint64]int, n)
	for i := 0; i < n && rd.Err() == nil; i++ {
		id := rd.U64()
		pi := rd.Len()
		r.cpuPkts[id] = port.LoadPacket(rd)
		r.cpuPktPort[id] = pi
	}
	r.nextCPUID = rd.U64()
	r.pool.RestoreCounter(rd.U64())
	n = rd.Len()
	r.inflight = make(map[uint64]*memTxn, n)
	for i := 0; i < n && rd.Err() == nil; i++ {
		req := LoadMemRequest(rd)
		r.inflight[req.ID] = &memTxn{req: req, issued: sim.Tick(rd.U64())}
	}
	n = rd.Len()
	r.sendQ = nil
	r.sendHead = 0
	for i := 0; i < n && rd.Err() == nil; i++ {
		r.sendQ = append(r.sendQ, LoadMemRequest(rd))
	}
	for i := range r.blocked {
		r.blocked[i] = rd.Bool()
	}
	r.irqLevel = rd.Bool()
	restoreRTLStats(rd, &r.stats)
	for i := range r.respQs {
		if err := r.respQs[i].RestoreState(rd); err != nil {
			return err
		}
		if err := r.cpuPorts[i].RestoreState(rd); err != nil {
			return err
		}
	}
	c, ok := r.wrapper.(ckpt.Checkpointable)
	if !ok {
		return fmt.Errorf("rtlobject %s: wrapper %s does not support checkpointing", r.cfg.Name, r.wrapper.Name())
	}
	return c.RestoreState(rd)
}

func saveRTLStats(w *ckpt.Writer, s *Stats) {
	w.U64(s.Ticks)
	w.U64(s.MemReads)
	w.U64(s.MemWrites)
	w.U64(s.MemReadBytes)
	w.U64(s.MemWriteBytes)
	w.U64(s.CPURequests)
	w.U64(s.Interrupts)
	w.U64(s.StallCycles)
	w.U64(uint64(s.TotalMemLat))
	w.U64(s.RetiredMem)
}

func restoreRTLStats(r *ckpt.Reader, s *Stats) {
	s.Ticks = r.U64()
	s.MemReads = r.U64()
	s.MemWrites = r.U64()
	s.MemReadBytes = r.U64()
	s.MemWriteBytes = r.U64()
	s.CPURequests = r.U64()
	s.Interrupts = r.U64()
	s.StallCycles = r.U64()
	s.TotalMemLat = sim.Tick(r.U64())
	s.RetiredMem = r.U64()
}
