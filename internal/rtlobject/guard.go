package rtlobject

import (
	"fmt"
	"sort"
	"strings"
)

// The liveness-probe methods below implement guard.Probe (structurally): the
// watchdog waits on the transaction tables bridging the RTL model to the
// memory system. Forward progress must be measured with Progress (retired
// transactions), never with Stats().Ticks — the tick event free-runs even
// when the model is wedged.

// GuardName identifies the RTLObject in watchdog diagnostics.
func (r *RTLObject) GuardName() string { return r.cfg.Name }

// InFlight reports outstanding memory transactions, queued requests, and
// unanswered CPU-side packets.
func (r *RTLObject) InFlight() int {
	n := len(r.inflight) + len(r.sendQ) + len(r.cpuPkts)
	for _, rq := range r.respQs {
		n += rq.Len()
	}
	return n
}

// GuardDetail renders the transaction tables with model-side request IDs.
func (r *RTLObject) GuardDetail() string {
	ids := make([]uint64, 0, len(r.inflight))
	for id := range r.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	const maxIDs = 8
	strs := make([]string, 0, len(ids))
	for i, id := range ids {
		if i == maxIDs {
			strs = append(strs, fmt.Sprintf("+%d more", len(ids)-maxIDs))
			break
		}
		strs = append(strs, fmt.Sprintf("%d", id))
	}
	return fmt.Sprintf("mem-inflight=[%s] sendQ=%d cpuPkts=%d",
		strings.Join(strs, " "), len(r.sendQ), len(r.cpuPkts))
}

// Progress is the watchdog forward-progress counter: retired memory
// transactions, serviced CPU requests and raised interrupts.
func (r *RTLObject) Progress() uint64 {
	return r.stats.RetiredMem + r.stats.CPURequests + r.stats.Interrupts
}
