package rtlobject

// TLB is the address-translation hook of §3.4: an RTLObject may translate
// the RTL model's addresses through an existing SoC TLB or one added for the
// device. The paper bypasses a full IOMMU (as gem5's support was immature);
// this interface models the same device-side translation point.
type TLB interface {
	// Translate maps a device-virtual address to a physical address.
	Translate(va uint64) uint64
}

// IdentityTLB performs no translation (the paper's effective configuration,
// with the IOMMU bypassed).
type IdentityTLB struct{}

// Translate returns va unchanged.
func (IdentityTLB) Translate(va uint64) uint64 { return va }

// PageTLB is a page-granular translation table with a fixed page size and a
// default passthrough for unmapped pages, plus hit/miss counters. It gives
// device traffic the same relocation a simple IOMMU would.
type PageTLB struct {
	PageBits uint // e.g. 12 for 4 KiB pages
	mappings map[uint64]uint64

	Hits   uint64
	Misses uint64
}

// NewPageTLB creates an empty table with 2^pageBits-byte pages.
func NewPageTLB(pageBits uint) *PageTLB {
	return &PageTLB{PageBits: pageBits, mappings: map[uint64]uint64{}}
}

// Map installs a translation from virtual page vpn to physical page ppn
// (page numbers, not byte addresses).
func (t *PageTLB) Map(vpn, ppn uint64) { t.mappings[vpn] = ppn }

// MapRange installs translations for n consecutive pages.
func (t *PageTLB) MapRange(vpn, ppn, n uint64) {
	for i := uint64(0); i < n; i++ {
		t.Map(vpn+i, ppn+i)
	}
}

// Translate looks up va's page; unmapped pages pass through untranslated.
func (t *PageTLB) Translate(va uint64) uint64 {
	vpn := va >> t.PageBits
	off := va & ((1 << t.PageBits) - 1)
	if ppn, ok := t.mappings[vpn]; ok {
		t.Hits++
		return ppn<<t.PageBits | off
	}
	t.Misses++
	return va
}
