package mem

import "gem5rtl/internal/obs"

// AttachTracer wires the Mem debug flag (nil logger = off).
func (d *DRAMCtrl) AttachTracer(t *obs.Tracer) {
	d.trace = t.Logger("Mem", d.cfg.Name)
}

// AttachTracer wires the Mem debug flag (nil logger = off).
func (m *IdealMemory) AttachTracer(t *obs.Tracer) {
	m.trace = t.Logger("Mem", m.prt.Name())
}

// AttachTracer wires the Mem debug flag (nil logger = off).
func (s *Scratchpad) AttachTracer(t *obs.Tracer) {
	s.trace = t.Logger("Mem", s.prt.Name())
}
