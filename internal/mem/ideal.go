package mem

import (
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// IdealMemory responds to every access after a fixed latency with unlimited
// bandwidth and concurrency — the "ideal 1-cycle main memory" the paper
// normalises its design-space exploration against, and the perfect-memory
// configuration of Table 3.
type IdealMemory struct {
	q       *sim.EventQueue
	store   *Storage
	prt     *port.ResponsePort
	rq      *port.RespQueue
	latency sim.Tick

	Reads  uint64
	Writes uint64

	// trace is the Mem debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger
}

// NewIdealMemory creates an ideal memory with the given fixed latency
// (use one core-clock period for the paper's 1-cycle baseline).
func NewIdealMemory(name string, q *sim.EventQueue, store *Storage, latency sim.Tick) *IdealMemory {
	m := &IdealMemory{q: q, store: store, latency: latency}
	m.prt = port.NewResponsePort(name, m)
	m.rq = port.NewRespQueue(name, q, m.prt)
	return m
}

// Port returns the memory's response port.
func (m *IdealMemory) Port() *port.ResponsePort { return m.prt }

// RecvTimingReq implements port.Responder; it never refuses.
func (m *IdealMemory) RecvTimingReq(pkt *port.Packet) bool {
	if m.trace.On() {
		m.trace.Logf("%s addr=%#x size=%d", pkt.Cmd, pkt.Addr, pkt.Size)
	}
	if pkt.Cmd.IsWrite() {
		m.Writes++
		m.store.Write(pkt.Addr, pkt.Data)
		if !pkt.NeedsResponse() {
			// Writeback terminus: the data is stored, recycle the packet.
			pkt.Release()
			return true
		}
		pkt.MakeResponse()
	} else {
		m.Reads++
		pkt.MakeResponse()
		pkt.AllocateData()
		m.store.Read(pkt.Addr, pkt.Data)
	}
	m.rq.Schedule(pkt, m.q.Now()+m.latency)
	return true
}

// RecvRespRetry implements port.Responder.
func (m *IdealMemory) RecvRespRetry() { m.rq.RecvRespRetry() }

// FunctionalAccess implements port.Functional.
func (m *IdealMemory) FunctionalAccess(pkt *port.Packet) {
	if pkt.Cmd.IsWrite() {
		m.store.Write(pkt.Addr, pkt.Data)
	} else {
		pkt.AllocateData()
		m.store.Read(pkt.Addr, pkt.Data)
	}
}
