package mem

import (
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Scratchpad is an on-chip SRAM responder: fixed low latency and a private
// data bus whose width bounds its bandwidth. It implements the extension the
// paper proposes in §4.2 — hooking "a proper SRAM such as a scratchpad
// memory" to the NVDLA's SRAMIF instead of routing that interface to main
// memory. Backed by the system Storage so trace preloads reach it.
type Scratchpad struct {
	q       *sim.EventQueue
	store   *Storage
	prt     *port.ResponsePort
	rq      *port.RespQueue
	latency sim.Tick
	// perByte is the bus occupancy per byte (e.g. 64 GB/s -> ~15.6 ps/B).
	perByte   float64
	busFreeAt sim.Tick

	Reads  uint64
	Writes uint64
	Bytes  uint64

	// trace is the Mem debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger
}

// ScratchpadConfig sizes a scratchpad.
type ScratchpadConfig struct {
	Name    string
	Latency sim.Tick
	// BandwidthGBs bounds throughput (0 = unlimited).
	BandwidthGBs float64
}

// DefaultScratchpadConfig returns a 2 ns, 64 GB/s on-chip SRAM.
func DefaultScratchpadConfig(name string) ScratchpadConfig {
	return ScratchpadConfig{Name: name, Latency: 2 * sim.Nanosecond, BandwidthGBs: 64}
}

// NewScratchpad creates a scratchpad on the given queue and backing store.
func NewScratchpad(cfg ScratchpadConfig, q *sim.EventQueue, store *Storage) *Scratchpad {
	s := &Scratchpad{q: q, store: store, latency: cfg.Latency}
	if cfg.BandwidthGBs > 0 {
		s.perByte = 1.0 / cfg.BandwidthGBs * 1000 // ps per byte
	}
	s.prt = port.NewResponsePort(cfg.Name, s)
	s.rq = port.NewRespQueue(cfg.Name, q, s.prt)
	return s
}

// Port returns the scratchpad's response port.
func (s *Scratchpad) Port() *port.ResponsePort { return s.prt }

// RecvTimingReq implements port.Responder; it never refuses (SRAM arrays
// accept a request per cycle) but serialises data on its bus.
func (s *Scratchpad) RecvTimingReq(pkt *port.Packet) bool {
	occupancy := sim.Tick(float64(pkt.Size) * s.perByte)
	start := s.q.Now()
	if s.busFreeAt > start {
		start = s.busFreeAt
	}
	s.busFreeAt = start + occupancy
	done := start + occupancy + s.latency
	if s.trace.On() {
		s.trace.Logf("%s addr=%#x size=%d done=%d", pkt.Cmd, pkt.Addr, pkt.Size, uint64(done))
	}
	s.Bytes += uint64(pkt.Size)
	if pkt.Cmd.IsWrite() {
		s.Writes++
		s.store.Write(pkt.Addr, pkt.Data)
		if !pkt.NeedsResponse() {
			// Writeback terminus: the data is stored, recycle the packet.
			pkt.Release()
			return true
		}
		pkt.MakeResponse()
	} else {
		s.Reads++
		pkt.MakeResponse()
		pkt.AllocateData()
		s.store.Read(pkt.Addr, pkt.Data)
	}
	s.rq.Schedule(pkt, done)
	return true
}

// RecvRespRetry implements port.Responder.
func (s *Scratchpad) RecvRespRetry() { s.rq.RecvRespRetry() }

// FunctionalAccess implements port.Functional.
func (s *Scratchpad) FunctionalAccess(pkt *port.Packet) {
	if pkt.Cmd.IsWrite() {
		s.store.Write(pkt.Addr, pkt.Data)
	} else {
		pkt.AllocateData()
		s.store.Read(pkt.Addr, pkt.Data)
	}
}
