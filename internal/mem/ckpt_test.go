package mem

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

type memSink struct{}

func (memSink) RecvTimingResp(*port.Packet) bool { return true }
func (memSink) RecvReqRetry()                    {}

func saveOne(t *testing.T, c ckpt.Checkpointable) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := c.SaveState(w); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreOne(t *testing.T, c ckpt.Checkpointable, blob []byte) {
	t.Helper()
	if err := c.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestStorageRoundTrip(t *testing.T) {
	s := NewStorage()
	s.Write(0x100, []byte{1, 2, 3})
	s.Write(1<<20, []byte{9})
	blob := saveOne(t, s)

	s2 := NewStorage()
	s2.Write(0x5000, []byte{0xff}) // pre-existing contents must be replaced
	restoreOne(t, s2, blob)
	if !bytes.Equal(saveOne(t, s2), blob) {
		t.Error("re-saved storage differs")
	}
	got := make([]byte, 3)
	s2.Read(0x100, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("restored data = %v", got)
	}
	one := make([]byte, 1)
	s2.Read(0x5000, one)
	if one[0] != 0 {
		t.Error("stale page survived restore")
	}
}

func TestIdealAndScratchpadRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	store := NewStorage()
	im := NewIdealMemory("im", q, store, 500)
	port.BindUnchecked(port.NewRequestPort("r", memSink{}), im.Port())
	im.RecvTimingReq(port.NewReadPacket(0x40, 64))
	blob := saveOne(t, im)
	q2 := sim.NewEventQueue()
	im2 := NewIdealMemory("im", q2, NewStorage(), 500)
	port.BindUnchecked(port.NewRequestPort("r", memSink{}), im2.Port())
	restoreOne(t, im2, blob)
	if !bytes.Equal(saveOne(t, im2), blob) {
		t.Error("re-saved ideal memory differs")
	}
	if im2.Reads != 1 {
		t.Errorf("Reads = %d", im2.Reads)
	}

	sp := NewScratchpad(DefaultScratchpadConfig("sp"), q, store)
	port.BindUnchecked(port.NewRequestPort("r", memSink{}), sp.Port())
	sp.RecvTimingReq(port.NewWritePacket(0x80, make([]byte, 64)))
	blob = saveOne(t, sp)
	sp2 := NewScratchpad(DefaultScratchpadConfig("sp"), sim.NewEventQueue(), NewStorage())
	port.BindUnchecked(port.NewRequestPort("r", memSink{}), sp2.Port())
	restoreOne(t, sp2, blob)
	if !bytes.Equal(saveOne(t, sp2), blob) {
		t.Error("re-saved scratchpad differs")
	}
	if sp2.busFreeAt != sp.busFreeAt || sp2.Bytes != 64 {
		t.Errorf("scratchpad state lost: busFreeAt=%d Bytes=%d", sp2.busFreeAt, sp2.Bytes)
	}
}

// buildDRAM wires a DDR4-1ch controller to a stub requestor.
func buildDRAM(q *sim.EventQueue) (*DRAMCtrl, *Storage) {
	cfg, _ := ConfigByName("DDR4-1ch")
	store := NewStorage()
	d := NewDRAMCtrl(cfg, q, store)
	port.BindUnchecked(port.NewRequestPort("r", memSink{}), d.Port())
	return d, store
}

// TestDRAMRoundTrip checkpoints a controller mid-burst — queued reads and
// writes, in-flight read completions, open rows — and verifies the restored
// instance re-serialises identically and finishes the outstanding work.
func TestDRAMRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	d, _ := buildDRAM(q)
	for i := 0; i < 8; i++ {
		if !d.RecvTimingReq(port.NewReadPacket(uint64(i)*4096, 64)) {
			t.Fatal("read refused")
		}
	}
	if !d.RecvTimingReq(port.NewWritePacket(0x100000, make([]byte, 64))) {
		t.Fatal("write refused")
	}
	// Run a little so some reads are issued (tracked in pendingReads) while
	// others still queue.
	q.RunUntil(20_000)
	if len(d.pendingReads) == 0 {
		t.Fatal("test did not reach an in-flight read state")
	}

	blob := saveOne(t, d)
	q2 := sim.NewEventQueue()
	d2, _ := buildDRAM(q2)
	// Restores validate event times against the restored clock.
	var qb bytes.Buffer
	w := ckpt.NewWriter(&qb)
	if err := q.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := q2.RestoreState(ckpt.NewReader(&qb)); err != nil {
		t.Fatal(err)
	}
	restoreOne(t, d2, blob)
	if !bytes.Equal(saveOne(t, d2), blob) {
		t.Error("re-saved DRAM state differs")
	}

	// Both instances must retire the same work at the same ticks.
	q.RunUntil(5_000_000)
	q2.RunUntil(5_000_000)
	if d.stats != d2.stats {
		t.Errorf("post-run stats diverge:\n got %+v\nwant %+v", d2.stats, d.stats)
	}
	if r, wr := d2.QueueOccupancy(); r != 0 || wr != 0 {
		t.Errorf("restored controller left work queued: %d/%d", r, wr)
	}
}
