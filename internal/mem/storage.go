// Package mem implements gem5rtl's main-memory substrate: an ideal 1-cycle
// memory (the paper's normalisation baseline) and event-driven DRAM
// controller models for the three technologies of Table 1 — DDR4-2400 (1/2/4
// channels), quad-channel GDDR5, and an 8-channel HBM stack. The controllers
// model per-channel read/write queues with back-pressure, banks with
// open-page row buffers, and a data bus that serialises bursts, yielding the
// bandwidth ceilings and queueing contention the paper's design-space
// exploration measures.
package mem

// Storage is sparse byte-addressable backing store shared by a controller's
// channels. Timing is handled by the controllers; Storage only moves data.
type Storage struct {
	pageBits uint
	pages    map[uint64][]byte
}

// NewStorage creates an empty store with 64 KiB pages.
func NewStorage() *Storage {
	return &Storage{pageBits: 16, pages: map[uint64][]byte{}}
}

func (s *Storage) page(addr uint64, alloc bool) ([]byte, uint64) {
	pn := addr >> s.pageBits
	off := addr & ((1 << s.pageBits) - 1)
	p, ok := s.pages[pn]
	if !ok && alloc {
		p = make([]byte, 1<<s.pageBits)
		s.pages[pn] = p
	}
	return p, off
}

// Read copies len(buf) bytes at addr into buf; unwritten memory reads zero.
func (s *Storage) Read(addr uint64, buf []byte) {
	for n := 0; n < len(buf); {
		p, off := s.page(addr+uint64(n), false)
		chunk := int(uint64(1)<<s.pageBits - off)
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		if p == nil {
			for i := 0; i < chunk; i++ {
				buf[n+i] = 0
			}
		} else {
			copy(buf[n:n+chunk], p[off:])
		}
		n += chunk
	}
}

// Write copies buf into memory at addr.
func (s *Storage) Write(addr uint64, buf []byte) {
	for n := 0; n < len(buf); {
		p, off := s.page(addr+uint64(n), true)
		chunk := int(uint64(1)<<s.pageBits - off)
		if chunk > len(buf)-n {
			chunk = len(buf) - n
		}
		copy(p[off:], buf[n:n+chunk])
		n += chunk
	}
}

// AllocatedBytes reports how much backing store has been touched.
func (s *Storage) AllocatedBytes() uint64 {
	return uint64(len(s.pages)) << s.pageBits
}
