package mem

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// SaveState serialises the sparse backing store. Pages are written sorted by
// page number so the stream is independent of map iteration order.
func (s *Storage) SaveState(w *ckpt.Writer) error {
	w.Section("mem.storage")
	w.U64(uint64(s.pageBits))
	pns := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.Int(len(pns))
	for _, pn := range pns {
		w.U64(pn)
		w.Bytes(s.pages[pn])
	}
	return w.Err()
}

// RestoreState replaces the store contents with the checkpointed pages.
func (s *Storage) RestoreState(r *ckpt.Reader) error {
	r.Section("mem.storage")
	if pb := uint(r.U64()); r.Err() == nil && pb != s.pageBits {
		return fmt.Errorf("mem: checkpoint page size 2^%d does not match 2^%d", pb, s.pageBits)
	}
	n := r.Len()
	s.pages = make(map[uint64][]byte, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		pn := r.U64()
		s.pages[pn] = r.Bytes()
	}
	return r.Err()
}

// SaveState captures the ideal memory's counters, port flags and response
// queue.
func (m *IdealMemory) SaveState(w *ckpt.Writer) error {
	w.Section("mem.ideal")
	w.U64(m.Reads)
	w.U64(m.Writes)
	if err := m.prt.SaveState(w); err != nil {
		return err
	}
	return m.rq.SaveState(w)
}

// RestoreState reinstates the ideal memory state.
func (m *IdealMemory) RestoreState(r *ckpt.Reader) error {
	r.Section("mem.ideal")
	m.Reads = r.U64()
	m.Writes = r.U64()
	if err := m.prt.RestoreState(r); err != nil {
		return err
	}
	return m.rq.RestoreState(r)
}

// SaveState captures the scratchpad's bus occupancy, counters, port flags
// and response queue.
func (s *Scratchpad) SaveState(w *ckpt.Writer) error {
	w.Section("mem.spm")
	w.U64(uint64(s.busFreeAt))
	w.U64(s.Reads)
	w.U64(s.Writes)
	w.U64(s.Bytes)
	if err := s.prt.SaveState(w); err != nil {
		return err
	}
	return s.rq.SaveState(w)
}

// RestoreState reinstates the scratchpad state.
func (s *Scratchpad) RestoreState(r *ckpt.Reader) error {
	r.Section("mem.spm")
	s.busFreeAt = sim.Tick(r.U64())
	s.Reads = r.U64()
	s.Writes = r.U64()
	s.Bytes = r.U64()
	if err := s.prt.RestoreState(r); err != nil {
		return err
	}
	return s.rq.RestoreState(r)
}

// SaveState captures the DRAM controller: statistics, response path, tracked
// in-flight reads, and per-channel bank state, queues, drain hysteresis and
// issue events. Queued requests save only the packet and arrival time; their
// (bank, row) coordinates are a pure function of the address and are
// recomputed on restore.
func (d *DRAMCtrl) SaveState(w *ckpt.Writer) error {
	w.Section("mem.dram." + d.cfg.Name)
	saveDRAMStats(w, &d.stats)
	if err := d.prt.SaveState(w); err != nil {
		return err
	}
	if err := d.rq.SaveState(w); err != nil {
		return err
	}
	w.Int(len(d.pendingReads))
	for _, pr := range d.pendingReads {
		port.SavePacket(w, pr.pkt)
		w.U64(uint64(pr.arrived))
		sim.SaveEvent(w, pr.ev)
	}
	w.Int(len(d.chans))
	for _, ch := range d.chans {
		w.Int(len(ch.banks))
		for _, b := range ch.banks {
			w.I64(b.openRow)
			w.U64(uint64(b.readyAt))
		}
		w.U64(uint64(ch.busFreeAt))
		w.Bool(ch.draining)
		sim.SaveEvent(w, ch.issueEv)
		saveDRAMQueue(w, ch.readQ)
		saveDRAMQueue(w, ch.writeQ)
	}
	return w.Err()
}

// RestoreState reinstates the controller state into a freshly built instance
// of identical configuration.
func (d *DRAMCtrl) RestoreState(r *ckpt.Reader) error {
	r.Section("mem.dram." + d.cfg.Name)
	restoreDRAMStats(r, &d.stats)
	if err := d.prt.RestoreState(r); err != nil {
		return err
	}
	if err := d.rq.RestoreState(r); err != nil {
		return err
	}
	n := r.Len()
	d.pendingReads = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		pr := &dramPendingRead{pkt: port.LoadPacket(r), arrived: sim.Tick(r.U64())}
		pr.ev = sim.NewEvent(d.cfg.Name+".readDone", func() { d.readDone(pr) }).SetOwner(d.ownReadDone)
		d.pendingReads = append(d.pendingReads, pr)
		d.q.RestoreEvent(r, pr.ev)
	}
	if nc := r.Len(); r.Err() == nil && nc != len(d.chans) {
		return fmt.Errorf("mem %s: checkpoint has %d channels, controller has %d", d.cfg.Name, nc, len(d.chans))
	}
	for _, ch := range d.chans {
		if nb := r.Len(); r.Err() == nil && nb != len(ch.banks) {
			return fmt.Errorf("mem %s: checkpoint has %d banks/channel, controller has %d", d.cfg.Name, nb, len(ch.banks))
		}
		for b := range ch.banks {
			ch.banks[b].openRow = r.I64()
			ch.banks[b].readyAt = sim.Tick(r.U64())
		}
		ch.busFreeAt = sim.Tick(r.U64())
		ch.draining = r.Bool()
		d.q.RestoreEvent(r, ch.issueEv)
		ch.readQ = d.restoreDRAMQueue(r)
		ch.writeQ = d.restoreDRAMQueue(r)
	}
	return r.Err()
}

func saveDRAMQueue(w *ckpt.Writer, q []*dramRequest) {
	w.Int(len(q))
	for _, req := range q {
		port.SavePacket(w, req.pkt)
		w.U64(uint64(req.arrived))
	}
}

func (d *DRAMCtrl) restoreDRAMQueue(r *ckpt.Reader) []*dramRequest {
	n := r.Len()
	var q []*dramRequest
	for i := 0; i < n && r.Err() == nil; i++ {
		pkt := port.LoadPacket(r)
		arrived := sim.Tick(r.U64())
		_, bank, row := d.route(pkt.Addr)
		// A restored posted write's packet already carries its response
		// command, for which IsRead() is false — matching the write it models.
		q = append(q, &dramRequest{pkt: pkt, bank: bank, row: row, arrived: arrived, isRead: pkt.Cmd.IsRead()})
	}
	return q
}

func saveDRAMStats(w *ckpt.Writer, s *DRAMStats) {
	w.U64(s.Reads)
	w.U64(s.Writes)
	w.U64(s.RowHits)
	w.U64(s.RowMisses)
	w.U64(s.BytesRead)
	w.U64(s.BytesWrit)
	w.U64(s.RetriesSent)
	w.U64(uint64(s.TotalRdLat))
	w.U64(s.RetiredRds)
}

func restoreDRAMStats(r *ckpt.Reader, s *DRAMStats) {
	s.Reads = r.U64()
	s.Writes = r.U64()
	s.RowHits = r.U64()
	s.RowMisses = r.U64()
	s.BytesRead = r.U64()
	s.BytesWrit = r.U64()
	s.RetriesSent = r.U64()
	s.TotalRdLat = sim.Tick(r.U64())
	s.RetiredRds = r.U64()
}
