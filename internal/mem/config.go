package mem

import "gem5rtl/internal/sim"

// DRAMConfig parameterises a DRAM controller. Timing follows the usual
// open-page model: a row hit pays tCL + tBURST; a row miss pays
// tRP (if another row is open) + tRCD + tCL + tBURST. The per-channel data
// bus is busy for tBURST per 64-byte access, which caps channel bandwidth at
// 64 B / tBURST.
type DRAMConfig struct {
	Name            string
	Channels        int
	BanksPerChannel int
	RowBufferBytes  int
	// Queue depths per channel (Table 1: 128-entry write, 64-entry read).
	ReadQueueDepth  int
	WriteQueueDepth int
	// Core timing parameters in ticks (ps).
	TRCD   sim.Tick
	TRP    sim.Tick
	TCL    sim.Tick
	TBurst sim.Tick // 64-byte data burst occupancy
	// Static front/back latencies (controller pipeline, PHY).
	FrontendLatency sim.Tick
	BackendLatency  sim.Tick
	// Write-drain hysteresis thresholds as fractions of WriteQueueDepth.
	WriteHighWatermark float64
	WriteLowWatermark  float64
}

// PeakBandwidthGBs returns the theoretical per-controller peak bandwidth in
// GB/s implied by the burst timing and channel count.
func (c DRAMConfig) PeakBandwidthGBs() float64 {
	perChan := 64.0 / (float64(c.TBurst) * 1e-12) / 1e9
	return perChan * float64(c.Channels)
}

func baseConfig() DRAMConfig {
	return DRAMConfig{
		BanksPerChannel:    16,
		ReadQueueDepth:     64,
		WriteQueueDepth:    128,
		FrontendLatency:    10 * sim.Nanosecond,
		BackendLatency:     10 * sim.Nanosecond,
		WriteHighWatermark: 0.85,
		WriteLowWatermark:  0.50,
	}
}

// DDR4Config returns a DDR4-2400 controller with the given channel count
// (Table 1: 2 ranks/channel folded into the bank count, 8 KiB row buffer,
// 18.75 GB/s peak per channel).
func DDR4Config(channels int) DRAMConfig {
	c := baseConfig()
	c.Name = ddr4Name(channels)
	c.Channels = channels
	c.BanksPerChannel = 32 // 16 banks x 2 ranks
	c.RowBufferBytes = 8 * 1024
	c.TRCD = 14160 // 17 cycles @ 1200 MHz
	c.TRP = 14160
	c.TCL = 14160
	c.TBurst = 3413 // 64 B / 18.75 GB/s
	return c
}

func ddr4Name(channels int) string {
	switch channels {
	case 1:
		return "DDR4-1ch"
	case 2:
		return "DDR4-2ch"
	case 4:
		return "DDR4-4ch"
	}
	return "DDR4"
}

// GDDR5Config returns the quad-channel GDDR5 configuration of Table 1
// (2 KiB row buffer, 112 GB/s aggregate peak).
func GDDR5Config() DRAMConfig {
	c := baseConfig()
	c.Name = "GDDR5"
	c.Channels = 4
	c.RowBufferBytes = 2 * 1024
	c.TRCD = 14000
	c.TRP = 14000
	c.TCL = 14000
	c.TBurst = 2285 // 64 B / 28 GB/s per channel
	return c
}

// HBMConfig returns the 8-channel HBM stack of Table 1 (2 KiB row buffer,
// 128 GB/s aggregate peak).
func HBMConfig() DRAMConfig {
	c := baseConfig()
	c.Name = "HBM"
	c.Channels = 8
	c.RowBufferBytes = 2 * 1024
	c.TRCD = 15000
	c.TRP = 15000
	c.TCL = 15000
	c.TBurst = 4000 // 64 B / 16 GB/s per channel
	return c
}

// ConfigByName resolves the evaluation's memory technology names
// (DDR4-1ch, DDR4-2ch, DDR4-4ch, GDDR5, HBM, ideal is handled separately).
func ConfigByName(name string) (DRAMConfig, bool) {
	switch name {
	case "DDR4-1ch":
		return DDR4Config(1), true
	case "DDR4-2ch":
		return DDR4Config(2), true
	case "DDR4-4ch":
		return DDR4Config(4), true
	case "GDDR5":
		return GDDR5Config(), true
	case "HBM":
		return HBMConfig(), true
	}
	return DRAMConfig{}, false
}

// TechNames lists the DSE memory technologies in presentation order.
func TechNames() []string {
	return []string{"DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"}
}
