package mem

import (
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// DRAMCtrl is an event-driven multi-channel DRAM controller. It exposes one
// response port; requests are interleaved across channels at 64-byte block
// granularity. Each channel schedules at most one command at a time
// (FR-FCFS: row hits first, then oldest), models per-bank open rows and a
// shared data bus, prioritises reads, and drains writes in batches governed
// by high/low watermarks — the gem5 memory-controller behaviour the paper's
// DSE leans on (severe DDR4-1ch contention at high in-flight counts).
type DRAMCtrl struct {
	cfg   DRAMConfig
	q     *sim.EventQueue
	store *Storage
	prt   *port.ResponsePort
	rq    *port.RespQueue
	chans []*dramChannel

	// pendingReads tracks issued reads whose data has not returned yet. Each
	// entry owns its completion event, so in-flight reads are explicit state
	// (checkpointable) rather than anonymous closures on the event queue.
	pendingReads []*dramPendingRead

	// reqFree and prFree recycle the per-access bookkeeping records; each
	// dramPendingRead keeps its completion event (and the closure binding it)
	// across reuses, so steady-state reads schedule zero allocations.
	reqFree []*dramRequest
	prFree  []*dramPendingRead

	// trace is the Mem debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger

	// ownReadDone and ownIssue are self-profiler attribution owners for the
	// controller's completion and channel-issue events.
	ownReadDone sim.OwnerID
	ownIssue    sim.OwnerID

	stats DRAMStats
}

// dramPendingRead is one issued-but-uncompleted read access.
type dramPendingRead struct {
	pkt     *port.Packet
	arrived sim.Tick
	ev      *sim.Event
}

// DRAMStats aggregates controller activity.
type DRAMStats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64
	BytesRead   uint64
	BytesWrit   uint64
	RetriesSent uint64
	TotalRdLat  sim.Tick
	RetiredRds  uint64
}

// AvgReadLatency returns the mean read latency in ticks.
func (s *DRAMStats) AvgReadLatency() float64 {
	if s.RetiredRds == 0 {
		return 0
	}
	return float64(s.TotalRdLat) / float64(s.RetiredRds)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s *DRAMStats) RowHitRate() float64 {
	tot := s.RowHits + s.RowMisses
	if tot == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(tot)
}

type dramRequest struct {
	pkt     *port.Packet
	bank    int
	row     uint64
	arrived sim.Tick
	// isRead is latched at enqueue: a posted write's packet is mutated into
	// its response (and may later be recycled) while the queue entry still
	// models the bank/bus cost, so the entry must not consult pkt.Cmd.
	isRead bool
}

type dramBank struct {
	openRow int64 // -1 = precharged
	readyAt sim.Tick
}

type dramChannel struct {
	ctrl      *DRAMCtrl
	id        int
	banks     []dramBank
	readQ     []*dramRequest
	writeQ    []*dramRequest
	busFreeAt sim.Tick
	draining  bool
	issueEv   *sim.Event
}

// NewDRAMCtrl builds a controller on the given event queue and storage.
func NewDRAMCtrl(cfg DRAMConfig, q *sim.EventQueue, store *Storage) *DRAMCtrl {
	d := &DRAMCtrl{cfg: cfg, q: q, store: store}
	d.ownReadDone = q.Owner(cfg.Name, "readDone")
	d.ownIssue = q.Owner(cfg.Name, "issue")
	d.prt = port.NewResponsePort(cfg.Name, d)
	d.rq = port.NewRespQueue(cfg.Name, q, d.prt)
	for i := 0; i < cfg.Channels; i++ {
		ch := &dramChannel{ctrl: d, id: i, banks: make([]dramBank, cfg.BanksPerChannel)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		ch.issueEv = sim.NewEvent(cfg.Name+".issue", ch.issue).SetOwner(d.ownIssue)
		d.chans = append(d.chans, ch)
	}
	return d
}

// Port returns the controller's response port.
func (d *DRAMCtrl) Port() *port.ResponsePort { return d.prt }

// Stats returns a snapshot of the counters.
func (d *DRAMCtrl) Stats() DRAMStats { return d.stats }

// Config returns the controller configuration.
func (d *DRAMCtrl) Config() DRAMConfig { return d.cfg }

// route computes (channel, bank, row) for an address. The bank index XOR-
// folds the row bits so large power-of-two strides (e.g. two DMA streams
// placed 16 MiB apart) do not alias onto the same banks and thrash rows.
func (d *DRAMCtrl) route(addr uint64) (int, int, uint64) {
	block := addr >> 6
	ch := int(block) % d.cfg.Channels
	chanBlock := block / uint64(d.cfg.Channels)
	colsPerRow := uint64(d.cfg.RowBufferBytes / 64)
	rowIdx := chanBlock / colsPerRow
	bank := foldBank(rowIdx, d.cfg.BanksPerChannel)
	row := rowIdx / uint64(d.cfg.BanksPerChannel)
	return ch, bank, row
}

// foldBank XOR-folds rowIdx in bank-width chunks.
func foldBank(rowIdx uint64, banks int) int {
	width := uint(0)
	for 1<<width < banks {
		width++
	}
	var acc uint64
	for r := rowIdx; r != 0; r >>= width {
		acc ^= r
	}
	return int(acc % uint64(banks))
}

// RecvTimingReq implements port.Responder with queue-full back-pressure.
func (d *DRAMCtrl) RecvTimingReq(pkt *port.Packet) bool {
	chIdx, bank, row := d.route(pkt.Addr)
	ch := d.chans[chIdx]
	var req *dramRequest
	if n := len(d.reqFree); n > 0 {
		req = d.reqFree[n-1]
		d.reqFree[n-1] = nil
		d.reqFree = d.reqFree[:n-1]
		*req = dramRequest{pkt: pkt, bank: bank, row: row, arrived: d.q.Now(), isRead: pkt.Cmd.IsRead()}
	} else {
		req = &dramRequest{pkt: pkt, bank: bank, row: row, arrived: d.q.Now(), isRead: pkt.Cmd.IsRead()}
	}
	if d.trace.On() {
		d.trace.Logf("%s addr=%#x ch=%d bank=%d row=%#x", pkt.Cmd, pkt.Addr, chIdx, bank, row)
	}
	if pkt.Cmd.IsWrite() {
		if len(ch.writeQ) >= d.cfg.WriteQueueDepth {
			return false
		}
		ch.writeQ = append(ch.writeQ, req)
		d.stats.Writes++
		d.stats.BytesWrit += uint64(pkt.Size)
		// Posted write: data lands in storage now, ack after the frontend
		// pipeline; the queued entry models the bandwidth/bank cost.
		d.store.Write(pkt.Addr, pkt.Data)
		if pkt.NeedsResponse() {
			resp := pkt
			resp.MakeResponse()
			d.rq.Schedule(resp, d.q.Now()+d.cfg.FrontendLatency)
		}
	} else {
		if len(ch.readQ) >= d.cfg.ReadQueueDepth {
			return false
		}
		ch.readQ = append(ch.readQ, req)
		d.stats.Reads++
		d.stats.BytesRead += uint64(pkt.Size)
	}
	ch.kick()
	return true
}

// RecvRespRetry implements port.Responder.
func (d *DRAMCtrl) RecvRespRetry() { d.rq.RecvRespRetry() }

// FunctionalAccess implements port.Functional for image/trace loading.
func (d *DRAMCtrl) FunctionalAccess(pkt *port.Packet) {
	if pkt.Cmd.IsWrite() {
		d.store.Write(pkt.Addr, pkt.Data)
	} else {
		pkt.AllocateData()
		d.store.Read(pkt.Addr, pkt.Data)
	}
}

// kick arms the issue event if idle.
func (ch *dramChannel) kick() {
	if ch.issueEv.Scheduled() {
		return
	}
	if len(ch.readQ) == 0 && len(ch.writeQ) == 0 {
		return
	}
	ch.ctrl.q.Schedule(ch.issueEv, ch.ctrl.q.Now())
}

// issue schedules one DRAM access (FR-FCFS with read priority and write
// drain hysteresis), then re-arms for the time the data bus frees.
func (ch *dramChannel) issue() {
	d := ch.ctrl
	cfg := &d.cfg
	now := d.q.Now()

	// Decide read vs write service.
	hi := int(float64(cfg.WriteQueueDepth) * cfg.WriteHighWatermark)
	lo := int(float64(cfg.WriteQueueDepth) * cfg.WriteLowWatermark)
	if ch.draining && len(ch.writeQ) <= lo {
		ch.draining = false
	}
	if !ch.draining && len(ch.writeQ) >= hi {
		ch.draining = true
	}
	var queue *[]*dramRequest
	switch {
	case ch.draining && len(ch.writeQ) > 0:
		queue = &ch.writeQ
	case len(ch.readQ) > 0:
		queue = &ch.readQ
	case len(ch.writeQ) > 0:
		queue = &ch.writeQ
	default:
		return
	}

	// FR-FCFS: the oldest request hitting an open (or scheduled-open) row,
	// else the oldest request. Not gating on bank readiness lets the
	// scheduler batch same-row requests before switching rows, which is
	// what keeps interleaved DMA streams from thrashing row buffers.
	sel := 0
	for i, r := range *queue {
		b := &ch.banks[r.bank]
		if b.openRow == int64(r.row) {
			sel = i
			break
		}
	}
	req := (*queue)[sel]
	*queue = append((*queue)[:sel], (*queue)[sel+1:]...)

	bank := &ch.banks[req.bank]
	// tCL is pipeline latency on the response path; it does not occupy the
	// bank or bus, so back-to-back row hits stream at tBURST intervals
	// (channel peak bandwidth), while row misses serialise tRP+tRCD on the
	// bank.
	var prep sim.Tick
	if bank.openRow == int64(req.row) {
		d.stats.RowHits++
	} else {
		d.stats.RowMisses++
		if bank.openRow >= 0 {
			prep += cfg.TRP
		}
		prep += cfg.TRCD
	}
	start := now
	if bank.readyAt > start {
		start = bank.readyAt
	}
	dataStart := start + prep
	if ch.busFreeAt > dataStart {
		dataStart = ch.busFreeAt
	}
	done := dataStart + cfg.TBurst
	ch.busFreeAt = done
	bank.readyAt = done
	bank.openRow = int64(req.row)

	if req.isRead {
		d.scheduleReadDone(req.pkt, req.arrived, done+cfg.TCL+cfg.BackendLatency)
	} else if req.pkt.Cmd == port.WritebackDirty {
		// Writeback retire: the data was stored at enqueue and no response is
		// owed, so this controller is the packet's final owner.
		req.pkt.Release()
	}
	req.pkt = nil
	d.reqFree = append(d.reqFree, req)
	// A queue slot freed: let a refused sender retry. The retry may re-enter
	// RecvTimingReq and kick(), scheduling issueEv — the re-arm below must
	// therefore tolerate an already-scheduled event.
	d.stats.RetriesSent++
	d.prt.SendRetryReq()

	if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
		// Commands issue at command-bus rate so bank activates overlap
		// (bank-level parallelism); the data bus remains the serialisation
		// point. Keep only a small runway of scheduled bursts so queue
		// occupancy — and the back-pressure derived from it — stays real.
		const tCK = sim.Tick(1000) // ~1 ns command cycle
		when := now + tCK
		// Unsigned guard: only push the next command out when the scheduled
		// burst runway is longer than half the bank count.
		if ahead := sim.Tick(d.cfg.BanksPerChannel/2) * cfg.TBurst; ch.busFreeAt > ahead {
			if runway := ch.busFreeAt - ahead; runway > when {
				when = runway
			}
		}
		if ch.issueEv.Scheduled() {
			if ch.issueEv.When() > when {
				d.q.Reschedule(ch.issueEv, when)
			}
		} else {
			d.q.Schedule(ch.issueEv, when)
		}
	}
}

// scheduleReadDone registers an issued read and arms its completion event.
func (d *DRAMCtrl) scheduleReadDone(pkt *port.Packet, arrived sim.Tick, when sim.Tick) {
	var pr *dramPendingRead
	if n := len(d.prFree); n > 0 {
		pr = d.prFree[n-1]
		d.prFree[n-1] = nil
		d.prFree = d.prFree[:n-1]
		pr.pkt = pkt
		pr.arrived = arrived
	} else {
		pr = &dramPendingRead{pkt: pkt, arrived: arrived}
		pr.ev = sim.NewEvent(d.cfg.Name+".readDone", func() { d.readDone(pr) }).SetOwner(d.ownReadDone)
	}
	d.pendingReads = append(d.pendingReads, pr)
	d.q.Schedule(pr.ev, when)
}

// readDone retires a tracked read: fills the packet from storage and hands
// it to the response queue.
func (d *DRAMCtrl) readDone(pr *dramPendingRead) {
	for i, p := range d.pendingReads {
		if p == pr {
			d.pendingReads = append(d.pendingReads[:i], d.pendingReads[i+1:]...)
			break
		}
	}
	pkt := pr.pkt
	pkt.MakeResponse()
	pkt.AllocateData()
	d.store.Read(pkt.Addr, pkt.Data)
	d.stats.TotalRdLat += d.q.Now() - pr.arrived
	d.stats.RetiredRds++
	if d.trace.On() {
		d.trace.Logf("read done addr=%#x latency=%d", pkt.Addr, uint64(d.q.Now()-pr.arrived))
	}
	d.rq.Schedule(pkt, d.q.Now())
	// The tracker (with its event and closure) is reusable the moment the
	// response leaves; the packet itself lives on in the response queue.
	pr.pkt = nil
	d.prFree = append(d.prFree, pr)
}

// QueueOccupancy reports total queued reads and writes across channels
// (for tests and stats dumps).
func (d *DRAMCtrl) QueueOccupancy() (reads, writes int) {
	for _, ch := range d.chans {
		reads += len(ch.readQ)
		writes += len(ch.writeQ)
	}
	return
}
