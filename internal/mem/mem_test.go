package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

func TestStorageReadWrite(t *testing.T) {
	s := NewStorage()
	data := []byte{1, 2, 3, 4, 5}
	s.Write(0x12345, data)
	got := make([]byte, 5)
	s.Read(0x12345, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v", got)
	}
	// Unwritten reads as zero.
	zero := make([]byte, 8)
	s.Read(0x999999, zero)
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
}

func TestStorageCrossPage(t *testing.T) {
	s := NewStorage()
	addr := uint64(1<<16) - 3 // straddles a 64 KiB page boundary
	data := []byte{9, 8, 7, 6, 5, 4}
	s.Write(addr, data)
	got := make([]byte, 6)
	s.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page got %v", got)
	}
}

func TestStorageQuickRoundTrip(t *testing.T) {
	s := NewStorage()
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s.Write(uint64(addr), data)
		got := make([]byte, len(data))
		s.Read(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// memTester drives a memory's response port with reads/writes.
type memTester struct {
	q       *sim.EventQueue
	p       *port.RequestPort
	resps   int
	lastTk  sim.Tick
	pending []*port.Packet
	stalled bool
	datas   [][]byte
}

func newMemTester(q *sim.EventQueue) *memTester {
	m := &memTester{q: q}
	m.p = port.NewRequestPort("tester", m)
	return m
}

func (m *memTester) RecvTimingResp(pkt *port.Packet) bool {
	m.resps++
	m.lastTk = m.q.Now()
	if pkt.Cmd == port.ReadResp {
		m.datas = append(m.datas, append([]byte(nil), pkt.Data...))
	}
	return true
}

func (m *memTester) RecvReqRetry() {
	m.stalled = false
	m.pump()
}

func (m *memTester) send(pkt *port.Packet) {
	m.pending = append(m.pending, pkt)
	m.pump()
}

func (m *memTester) pump() {
	for len(m.pending) > 0 && !m.stalled {
		if !m.p.SendTimingReq(m.pending[0]) {
			m.stalled = true
			return
		}
		m.pending = m.pending[1:]
	}
}

func TestIdealMemoryTiming(t *testing.T) {
	q := sim.NewEventQueue()
	store := NewStorage()
	im := NewIdealMemory("ideal", q, store, 500)
	tst := newMemTester(q)
	port.Bind(tst.p, im.Port())

	w := port.NewWritePacket(0x100, []byte{0xAB, 0xCD})
	tst.send(w)
	q.Run()
	r := port.NewReadPacket(0x100, 2)
	tst.send(r)
	q.Run()
	if tst.resps != 2 {
		t.Fatalf("resps = %d", tst.resps)
	}
	if tst.datas[0][0] != 0xAB || tst.datas[0][1] != 0xCD {
		t.Fatalf("read back %v", tst.datas[0])
	}
}

func TestDRAMReadWriteData(t *testing.T) {
	q := sim.NewEventQueue()
	store := NewStorage()
	d := NewDRAMCtrl(DDR4Config(1), q, store)
	tst := newMemTester(q)
	port.Bind(tst.p, d.Port())

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	tst.send(port.NewWritePacket(0x4000, payload))
	q.Run()
	tst.send(port.NewReadPacket(0x4000, 64))
	q.Run()
	if len(tst.datas) != 1 || !bytes.Equal(tst.datas[0], payload) {
		t.Fatal("DRAM read data mismatch")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDRAMRowHitFasterThanMiss(t *testing.T) {
	measure := func(addrs []uint64) sim.Tick {
		q := sim.NewEventQueue()
		d := NewDRAMCtrl(DDR4Config(1), q, NewStorage())
		tst := newMemTester(q)
		port.Bind(tst.p, d.Port())
		var last sim.Tick
		for _, a := range addrs {
			tst.send(port.NewReadPacket(a, 64))
			q.Run()
			last = tst.lastTk
		}
		return last
	}
	// Same row: sequential blocks within one 8 KiB row buffer.
	sameRow := measure([]uint64{0, 64, 128, 192})
	// Same bank, different rows: stride of rowBuffer*banks.
	cfg := DDR4Config(1)
	stride := uint64(cfg.RowBufferBytes * cfg.BanksPerChannel)
	diffRow := measure([]uint64{0, stride, 2 * stride, 3 * stride})
	if sameRow >= diffRow {
		t.Fatalf("row hits (%d) not faster than misses (%d)", sameRow, diffRow)
	}
}

func TestDRAMBandwidthScalesWithChannels(t *testing.T) {
	run := func(channels int) sim.Tick {
		q := sim.NewEventQueue()
		d := NewDRAMCtrl(DDR4Config(channels), q, NewStorage())
		tst := newMemTester(q)
		port.Bind(tst.p, d.Port())
		for i := 0; i < 256; i++ {
			tst.send(port.NewReadPacket(uint64(i)*64, 64))
		}
		q.Run()
		if tst.resps != 256 {
			t.Fatalf("resps = %d", tst.resps)
		}
		return tst.lastTk
	}
	t1 := run(1)
	t4 := run(4)
	speedup := float64(t1) / float64(t4)
	if speedup < 2.0 {
		t.Fatalf("4ch speedup %.2f over 1ch, want >= 2", speedup)
	}
}

func TestDRAMQueueBackPressure(t *testing.T) {
	q := sim.NewEventQueue()
	cfg := DDR4Config(1)
	d := NewDRAMCtrl(cfg, q, NewStorage())
	tst := newMemTester(q)
	port.Bind(tst.p, d.Port())
	// Flood with more reads than the queue holds; all must eventually finish.
	const n = 300
	for i := 0; i < n; i++ {
		tst.send(port.NewReadPacket(uint64(i)*64, 64))
	}
	if !tst.stalled {
		t.Fatal("expected back-pressure with 300 reads into a 64-deep queue")
	}
	q.Run()
	if tst.resps != n {
		t.Fatalf("resps = %d, want %d", tst.resps, n)
	}
}

func TestDRAMApproachesPeakBandwidth(t *testing.T) {
	// Sequential reads (row hits) should achieve a large fraction of peak.
	q := sim.NewEventQueue()
	cfg := DDR4Config(1)
	d := NewDRAMCtrl(cfg, q, NewStorage())
	tst := newMemTester(q)
	port.Bind(tst.p, d.Port())
	const n = 2000
	for i := 0; i < n; i++ {
		tst.send(port.NewReadPacket(uint64(i)*64, 64))
	}
	q.Run()
	elapsed := float64(tst.lastTk) * 1e-12 // seconds
	gbs := float64(n*64) / elapsed / 1e9
	peak := cfg.PeakBandwidthGBs()
	if gbs < 0.7*peak || gbs > 1.05*peak {
		t.Fatalf("achieved %.1f GB/s, peak %.1f GB/s — out of [70%%,105%%]", gbs, peak)
	}
	st := d.Stats()
	if st.RowHitRate() < 0.9 {
		t.Fatalf("sequential row hit rate %.2f too low", st.RowHitRate())
	}
}

func TestDRAMWriteDrainHysteresis(t *testing.T) {
	q := sim.NewEventQueue()
	cfg := DDR4Config(1)
	d := NewDRAMCtrl(cfg, q, NewStorage())
	tst := newMemTester(q)
	port.Bind(tst.p, d.Port())
	buf := make([]byte, 64)
	// Fill write queue beyond the high watermark, interleaved with reads;
	// everything must complete and reads must still be answered.
	for i := 0; i < 200; i++ {
		tst.send(port.NewWritePacket(uint64(i)*64, buf))
		if i%4 == 0 {
			tst.send(port.NewReadPacket(uint64(i)*64, 64))
		}
	}
	q.Run()
	st := d.Stats()
	if st.Writes != 200 || st.RetiredRds != 50 {
		t.Fatalf("writes=%d reads=%d", st.Writes, st.RetiredRds)
	}
}

func TestConfigByName(t *testing.T) {
	for _, name := range TechNames() {
		cfg, ok := ConfigByName(name)
		if !ok || cfg.Name != name {
			t.Fatalf("ConfigByName(%q) failed", name)
		}
	}
	if _, ok := ConfigByName("DDR3"); ok {
		t.Fatal("unknown tech accepted")
	}
}

func TestPeakBandwidthTable1(t *testing.T) {
	// Paper Table 1: DDR4 18.75 GB/s/channel, GDDR5 112 GB/s, HBM 128 GB/s.
	checks := []struct {
		cfg  DRAMConfig
		want float64
	}{
		{DDR4Config(1), 18.75},
		{DDR4Config(4), 75.0},
		{GDDR5Config(), 112.0},
		{HBMConfig(), 128.0},
	}
	for _, c := range checks {
		got := c.cfg.PeakBandwidthGBs()
		if got < 0.95*c.want || got > 1.05*c.want {
			t.Fatalf("%s peak %.2f GB/s, want ~%.2f", c.cfg.Name, got, c.want)
		}
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := NewDRAMCtrl(DDR4Config(4), sim.NewEventQueue(), NewStorage())
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		ch, _, _ := d.route(uint64(i) * 64)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("blocks spread over %d channels, want 4", len(seen))
	}
}

func BenchmarkDRAMSequentialReads(b *testing.B) {
	q := sim.NewEventQueue()
	d := NewDRAMCtrl(DDR4Config(2), q, NewStorage())
	tst := newMemTester(q)
	port.Bind(tst.p, d.Port())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tst.send(port.NewReadPacket(uint64(i%4096)*64, 64))
		q.Run()
	}
}
