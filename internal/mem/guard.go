package mem

import (
	"fmt"
	"strings"
)

// The liveness-probe methods below implement guard.Probe (structurally) for
// the three memory backends.

// GuardName identifies the DRAM controller in watchdog diagnostics.
func (d *DRAMCtrl) GuardName() string { return d.prt.Name() }

// InFlight reports queued plus issued-but-uncompleted accesses.
func (d *DRAMCtrl) InFlight() int {
	r, w := d.QueueOccupancy()
	return r + w + len(d.pendingReads) + d.rq.Len()
}

// GuardDetail renders queue occupancy and in-flight read packet IDs.
func (d *DRAMCtrl) GuardDetail() string {
	r, w := d.QueueOccupancy()
	ids := make([]string, 0, len(d.pendingReads))
	const maxIDs = 8
	for i, pr := range d.pendingReads {
		if i == maxIDs {
			ids = append(ids, fmt.Sprintf("+%d more", len(d.pendingReads)-maxIDs))
			break
		}
		ids = append(ids, fmt.Sprintf("%d", pr.pkt.ID))
	}
	return fmt.Sprintf("readQ=%d writeQ=%d respQ=%d inflight-reads=[%s]",
		r, w, d.rq.Len(), strings.Join(ids, " "))
}

// Retired reports completed accesses — the watchdog's forward-progress
// counter for the controller.
func (d *DRAMCtrl) Retired() uint64 { return d.stats.RetiredRds + d.stats.Writes }

// GuardName identifies the ideal memory in watchdog diagnostics.
func (m *IdealMemory) GuardName() string { return m.prt.Name() }

// InFlight reports queued responses.
func (m *IdealMemory) InFlight() int { return m.rq.Len() }

// GuardDetail renders queue occupancy.
func (m *IdealMemory) GuardDetail() string { return fmt.Sprintf("respQ=%d", m.rq.Len()) }

// Retired reports completed accesses.
func (m *IdealMemory) Retired() uint64 { return m.Reads + m.Writes }

// GuardName identifies the scratchpad in watchdog diagnostics.
func (s *Scratchpad) GuardName() string { return s.prt.Name() }

// InFlight reports queued responses.
func (s *Scratchpad) InFlight() int { return s.rq.Len() }

// GuardDetail renders queue occupancy.
func (s *Scratchpad) GuardDetail() string { return fmt.Sprintf("respQ=%d", s.rq.Len()) }

// Retired reports completed accesses.
func (s *Scratchpad) Retired() uint64 { return s.Reads + s.Writes }
