// Package nvdla implements the paper's second use case (§4.2): an NVDLA-like
// deep-learning accelerator integrated through the RTLObject. The real
// nv_full NVDLA is ~1M lines of Verilog; per DESIGN.md's substitution table
// gem5rtl models it at cycle level with the same external architecture
// (Figure 4): a CSB configuration bus on the CPU side, a 1-bit interrupt, and
// two memory interfaces — DBBIF (activations and outputs) and SRAMIF
// (weights) — both connected to the simulated SoC memory system. The model
// executes convolution layers tile by tile: each tile fetches its working
// set over the AXI-style interfaces, occupies the 2048-MAC array for a
// configured number of cycles, and streams outputs back, so its memory
// demand and memory-level parallelism (bounded by the framework's
// max-in-flight limit) reproduce the behaviour the paper's design-space
// exploration measures.
package nvdla

import (
	"fmt"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/rtlobject"
)

// CSB register map (byte offsets).
const (
	RegCtrl          = 0x00 // write 1: start executing committed layers
	RegStatus        = 0x04 // bit0: done, bit1: running
	RegIrqClear      = 0x08 // write 1: deassert interrupt
	RegInAddrLo      = 0x10
	RegInAddrHi      = 0x14
	RegWtAddrLo      = 0x18
	RegWtAddrHi      = 0x1C
	RegOutAddrLo     = 0x20
	RegOutAddrHi     = 0x24
	RegInBytes       = 0x28
	RegWtBytes       = 0x2C
	RegOutBytes      = 0x30
	RegTileBytes     = 0x34
	RegCyclesPerTile = 0x38
	RegLayerCommit   = 0x3C // write 1: enqueue the staged layer
	RegPerfCycles    = 0x40 // read: total busy (compute) cycles
	RegPerfStalls    = 0x44 // read: cycles stalled waiting for memory
)

// Memory-side port assignment (Figure 4): DBBIF carries activations and
// output writes; SRAMIF carries weights.
const (
	PortDBBIF  = 0
	PortSRAMIF = 1
)

// MACs is the nv_full configuration of Table 1 (2048 8-bit MACs).
const MACs = 2048

// Config tunes the accelerator model.
type Config struct {
	Name string
	// PrefetchTiles is how many tiles ahead the load engine may run.
	PrefetchTiles int
	// IssuePerTick caps new memory requests generated per cycle.
	IssuePerTick int
}

// DefaultConfig returns the standard model configuration.
func DefaultConfig(name string) Config {
	return Config{Name: name, PrefetchTiles: 4, IssuePerTick: 8}
}

// Stats describes one accelerator's execution.
type Stats struct {
	BusyCycles   uint64 // MAC array occupied
	StallCycles  uint64 // runnable but waiting for tile data
	IdleCycles   uint64
	BytesRead    uint64
	BytesWritten uint64
	TilesDone    uint64
	LayersDone   uint64
}

type layerCfg struct {
	inAddr, wtAddr, outAddr    uint64
	inBytes, wtBytes, outBytes uint32
	tileBytes                  uint32
	cyclesPerTile              uint32
}

type tileState struct {
	needed  int // bytes to fetch
	arrived int
	issued  int
}

// Wrapper is the NVDLA shared-library wrapper (Figure 4): NVIDIA's
// nvdla.cpp AXI/CSB adapters folded into the gem5rtl tick/reset protocol.
// It implements rtlobject.Wrapper.
type Wrapper struct {
	cfg Config

	// CSB staging + committed layers.
	staged layerCfg
	layers []layerCfg

	running bool
	done    bool
	irq     bool

	// Current layer execution state.
	layerIdx    int
	tiles       []tileState
	outPerTile  int
	fetchTile   int // next tile to issue reads for
	computeTile int // next tile to compute
	computeLeft uint32
	inCur       uint64 // read cursors
	wtCur       uint64
	inEnd       uint64
	wtEnd       uint64
	outCur      uint64
	nextID      uint64
	readTile    map[uint64]int
	writesOut   int
	pendWrites  []rtlobject.MemRequest
	// pendHead is the drain point of pendWrites; the backing array is
	// reused instead of re-sliced away.
	pendHead int

	// out is the Output returned from every Tick, reused with its slices
	// reset: the RTLObject copies the elements out before the next tick.
	out rtlobject.Output
	// wbuf is a grow-only arena for output-write payloads. Write packets
	// (and DRAM posted-write queues, and checkpoints) may retain payload
	// slices indefinitely, so carved slices are never recycled — the arena
	// only batches many small allocations into one large one. Slices are
	// full (three-index) so neighbours can't be scribbled by append, and
	// fault-injection bit flips stay confined to one write's payload.
	wbuf []byte

	// trace is the NVDLA debug-flag logger (nil = off; see AttachTracer).
	// It is preserved across Reset.
	trace *obs.Logger

	stats Stats
}

// New creates an NVDLA wrapper.
func New(cfg Config) *Wrapper {
	if cfg.PrefetchTiles == 0 {
		cfg.PrefetchTiles = 4
	}
	if cfg.IssuePerTick == 0 {
		cfg.IssuePerTick = 8
	}
	return &Wrapper{cfg: cfg, readTile: map[uint64]int{}}
}

// Name implements rtlobject.Wrapper.
func (w *Wrapper) Name() string { return w.cfg.Name }

// Stats returns execution counters.
func (w *Wrapper) Stats() Stats { return w.stats }

// Done reports completion of all committed layers.
func (w *Wrapper) Done() bool { return w.done }

// Reset implements rtlobject.Wrapper.
func (w *Wrapper) Reset() {
	*w = Wrapper{cfg: w.cfg, readTile: map[uint64]int{}, trace: w.trace}
}

// WriteReg applies a CSB register write (also reachable via CPU-side port
// packets; this direct entry is the trace player's fast path).
func (w *Wrapper) WriteReg(addr uint64, val uint32) {
	switch addr {
	case RegCtrl:
		if val&1 != 0 && len(w.layers) > 0 {
			w.running = true
			w.done = false
			w.layerIdx = 0
			w.beginLayer()
		}
	case RegIrqClear:
		w.irq = false
	case RegInAddrLo:
		w.staged.inAddr = w.staged.inAddr&^0xFFFFFFFF | uint64(val)
	case RegInAddrHi:
		w.staged.inAddr = w.staged.inAddr&0xFFFFFFFF | uint64(val)<<32
	case RegWtAddrLo:
		w.staged.wtAddr = w.staged.wtAddr&^0xFFFFFFFF | uint64(val)
	case RegWtAddrHi:
		w.staged.wtAddr = w.staged.wtAddr&0xFFFFFFFF | uint64(val)<<32
	case RegOutAddrLo:
		w.staged.outAddr = w.staged.outAddr&^0xFFFFFFFF | uint64(val)
	case RegOutAddrHi:
		w.staged.outAddr = w.staged.outAddr&0xFFFFFFFF | uint64(val)<<32
	case RegInBytes:
		w.staged.inBytes = val
	case RegWtBytes:
		w.staged.wtBytes = val
	case RegOutBytes:
		w.staged.outBytes = val
	case RegTileBytes:
		w.staged.tileBytes = val
	case RegCyclesPerTile:
		w.staged.cyclesPerTile = val
	case RegLayerCommit:
		if val&1 != 0 {
			w.layers = append(w.layers, w.staged)
		}
	}
}

// ReadReg returns a CSB register value.
func (w *Wrapper) ReadReg(addr uint64) uint32 {
	switch addr {
	case RegStatus:
		var v uint32
		if w.done {
			v |= 1
		}
		if w.running {
			v |= 2
		}
		return v
	case RegPerfCycles:
		return uint32(w.stats.BusyCycles)
	case RegPerfStalls:
		return uint32(w.stats.StallCycles)
	}
	return 0
}

// beginLayer initialises tiling for layer layerIdx.
func (w *Wrapper) beginLayer() {
	l := w.layers[w.layerIdx]
	total := int(l.inBytes) + int(l.wtBytes)
	tb := int(l.tileBytes)
	if tb <= 0 {
		tb = total
	}
	ntiles := (total + tb - 1) / tb
	if ntiles == 0 {
		ntiles = 1
	}
	w.tiles = make([]tileState, ntiles)
	for i := range w.tiles {
		need := tb
		if i == ntiles-1 {
			need = total - tb*(ntiles-1)
		}
		w.tiles[i].needed = need
	}
	w.outPerTile = int(l.outBytes) / ntiles
	w.fetchTile = 0
	w.computeTile = 0
	w.computeLeft = 0
	w.inCur = l.inAddr
	w.wtCur = l.wtAddr
	w.inEnd = l.inAddr + uint64(l.inBytes)
	w.wtEnd = l.wtAddr + uint64(l.wtBytes)
	w.outCur = l.outAddr
	if w.trace.On() {
		w.trace.Logf("layer %d begin: %d tiles, in=%d wt=%d out=%d bytes",
			w.layerIdx, len(w.tiles), l.inBytes, l.wtBytes, l.outBytes)
	}
}

// Tick implements rtlobject.Wrapper: one 1 GHz accelerator cycle.
func (w *Wrapper) Tick(in *rtlobject.Input) *rtlobject.Output {
	out := &w.out
	out.MemRequests = out.MemRequests[:0]
	out.CPUResponses = out.CPUResponses[:0]
	out.Interrupt = false
	// CSB traffic via the CPU-side port.
	for _, req := range in.CPURequests {
		if req.Write {
			var v uint32
			for i := 0; i < len(req.Data) && i < 4; i++ {
				v |= uint32(req.Data[i]) << (8 * i)
			}
			w.WriteReg(req.Addr&0xFF, v)
			out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{ID: req.ID})
		} else {
			v := w.ReadReg(req.Addr & 0xFF)
			out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{
				ID:   req.ID,
				Data: []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)},
			})
		}
	}
	// Memory responses.
	for _, resp := range in.MemResponses {
		if resp.Write {
			w.writesOut--
			continue
		}
		tile, ok := w.readTile[resp.ID]
		if !ok {
			panic(fmt.Sprintf("nvdla %s: response for unknown read %d", w.cfg.Name, resp.ID))
		}
		delete(w.readTile, resp.ID)
		w.tiles[tile].arrived += len(resp.Data)
		w.stats.BytesRead += uint64(len(resp.Data))
	}
	if !w.running {
		w.stats.IdleCycles++
		out.Interrupt = w.irq
		return out
	}

	// Compute engine.
	switch {
	case w.computeLeft > 0:
		w.computeLeft--
		w.stats.BusyCycles++
		if w.computeLeft == 0 {
			w.finishTile(out)
		}
	case w.computeTile < len(w.tiles) &&
		w.tiles[w.computeTile].arrived >= w.tiles[w.computeTile].needed:
		w.computeLeft = w.layers[w.layerIdx].cyclesPerTile
		if w.computeLeft == 0 {
			w.finishTile(out)
		} else {
			w.computeLeft--
			w.stats.BusyCycles++
			if w.computeLeft == 0 {
				w.finishTile(out)
			}
		}
	default:
		w.stats.StallCycles++
	}

	// Load engine: issue reads for tiles within the prefetch window.
	budget := w.cfg.IssuePerTick
	for budget > 0 && w.fetchTile < len(w.tiles) &&
		w.fetchTile < w.computeTile+w.cfg.PrefetchTiles {
		t := &w.tiles[w.fetchTile]
		if t.issued >= t.needed {
			w.fetchTile++
			continue
		}
		req, ok := w.nextRead(w.fetchTile)
		if !ok {
			w.fetchTile++
			continue
		}
		out.MemRequests = append(out.MemRequests, req)
		budget--
	}
	// Store engine: drain pending output writes.
	for budget > 0 && w.pendHead < len(w.pendWrites) {
		out.MemRequests = append(out.MemRequests, w.pendWrites[w.pendHead])
		w.pendWrites[w.pendHead] = rtlobject.MemRequest{}
		w.pendHead++
		budget--
	}
	if w.pendHead == len(w.pendWrites) {
		w.pendWrites = w.pendWrites[:0]
		w.pendHead = 0
	}

	// Layer / workload completion.
	if w.computeTile >= len(w.tiles) && w.pendHead == len(w.pendWrites) && w.writesOut == 0 {
		w.stats.LayersDone++
		if w.trace.On() {
			w.trace.Logf("layer %d done (%d tiles)", w.layerIdx, w.stats.TilesDone)
		}
		w.layerIdx++
		if w.layerIdx < len(w.layers) {
			w.beginLayer()
		} else {
			w.running = false
			w.done = true
			w.irq = true
			if w.trace.On() {
				w.trace.Logf("workload done: %d layers, irq raised", len(w.layers))
			}
		}
	}
	out.Interrupt = w.irq
	return out
}

// nextRead builds the next 64-byte read for a tile, alternating the
// activation (DBBIF) and weight (SRAMIF) streams.
func (w *Wrapper) nextRead(tile int) (rtlobject.MemRequest, bool) {
	t := &w.tiles[tile]
	var addr uint64
	var prt int
	switch {
	case w.inCur < w.inEnd && (w.wtCur >= w.wtEnd || (t.issued/64)%3 != 2):
		// Roughly 2/3 activations, 1/3 weights, matching the byte split.
		addr = w.inCur
		w.inCur += 64
		prt = PortDBBIF
	case w.wtCur < w.wtEnd:
		addr = w.wtCur
		w.wtCur += 64
		prt = PortSRAMIF
	default:
		return rtlobject.MemRequest{}, false
	}
	w.nextID++
	id := w.nextID
	w.readTile[id] = tile
	t.issued += 64
	return rtlobject.MemRequest{ID: id, Addr: addr, Size: 64, Port: prt}, true
}

// finishTile retires the current compute tile and queues its output writes.
// The last tile carries any remainder so the whole OutBytes is written.
func (w *Wrapper) finishTile(out *rtlobject.Output) {
	w.stats.TilesDone++
	if w.trace.On() {
		w.trace.Logf("tile %d/%d done", w.computeTile+1, len(w.tiles))
	}
	outBytes := w.outPerTile
	if w.computeTile == len(w.tiles)-1 {
		outBytes = int(w.layers[w.layerIdx].outBytes) - w.outPerTile*(len(w.tiles)-1)
	}
	for b := 0; b < outBytes; b += 64 {
		n := outBytes - b
		if n > 64 {
			n = 64
		}
		w.nextID++
		w.pendWrites = append(w.pendWrites, rtlobject.MemRequest{
			ID: w.nextID, Addr: w.outCur, Size: n, Write: true,
			Data: w.carve(n), Port: PortDBBIF,
		})
		w.outCur += uint64(n)
		w.writesOut++
		w.stats.BytesWritten += uint64(n)
	}
	w.computeTile++
}

// carve returns a fresh zeroed n-byte payload from the write arena.
func (w *Wrapper) carve(n int) []byte {
	if len(w.wbuf)+n > cap(w.wbuf) {
		const chunk = 64 << 10
		w.wbuf = make([]byte, 0, chunk)
	}
	off := len(w.wbuf)
	w.wbuf = w.wbuf[:off+n]
	return w.wbuf[off : off+n : off+n]
}
