package nvdla

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/sim"
)

// ckptRig is a dlaRig that keeps the pieces needed for checkpointing.
type ckptRig struct {
	q        *sim.EventQueue
	dla      *Wrapper
	obj      *rtlobject.RTLObject
	store    *mem.Storage
	m0, m1   *mem.IdealMemory
	doneTick sim.Tick
}

func newCkptRig(t testing.TB) *ckptRig {
	t.Helper()
	r := &ckptRig{q: sim.NewEventQueue()}
	core := sim.NewClockDomain("cpu", r.q, 2_000_000_000)
	r.dla = New(DefaultConfig("nvdla0"))
	r.obj = rtlobject.New(rtlobject.Config{
		Name: "nvdla0", ClockDivider: 2, MaxInflight: 16,
	}, core, r.dla)
	r.store = mem.NewStorage()
	r.m0 = mem.NewIdealMemory("dbbif", r.q, r.store, 20*sim.Nanosecond)
	r.m1 = mem.NewIdealMemory("sramif", r.q, r.store, 20*sim.Nanosecond)
	port.Bind(r.obj.MemPort(PortDBBIF), r.m0.Port())
	port.Bind(r.obj.MemPort(PortSRAMIF), r.m1.Port())
	r.obj.OnInterrupt(func(level bool) {
		if level && r.doneTick == 0 {
			r.doneTick = r.q.Now()
		}
	})
	return r
}

func (r *ckptRig) save(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	for _, c := range []ckpt.Checkpointable{r.q, r.obj, r.m0, r.m1, r.store} {
		if err := c.SaveState(w); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func (r *ckptRig) restore(t *testing.T, blob []byte) {
	t.Helper()
	rd := ckpt.NewReader(bytes.NewReader(blob))
	for _, c := range []ckpt.Checkpointable{r.q, r.obj, r.m0, r.m1, r.store} {
		if err := c.RestoreState(rd); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
}

// TestNVDLARoundTrip checkpoints an accelerator mid-layer — outstanding tile
// reads, partially computed tiles, pending output writes — restores into a
// fresh rig (no Start, no re-programming) and checks the restored run
// completes at the same tick with identical statistics.
func TestNVDLARoundTrip(t *testing.T) {
	r := newCkptRig(t)
	r.obj.Start() // Start resets the wrapper; program afterwards.
	program(r.dla, 8<<10, 4<<10, 4<<10, 2<<10, 300)
	r.q.RunUntil(1500 * sim.Nanosecond)
	if r.dla.Done() {
		t.Fatal("layer finished before checkpoint tick; lower the tick")
	}
	if len(r.dla.readTile) == 0 && len(r.dla.pendWrites) == 0 &&
		r.dla.computeLeft == 0 && r.dla.writesOut == 0 {
		t.Fatal("no in-flight accelerator state at checkpoint tick")
	}
	blob := r.save(t)

	r2 := newCkptRig(t)
	r2.restore(t, blob)
	if got := r2.save(t); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}

	end := 10 * sim.Millisecond
	r.q.RunUntil(end)
	r2.q.RunUntil(end)
	if !r.dla.Done() || !r2.dla.Done() {
		t.Fatalf("runs did not finish: cold=%v restored=%v", r.dla.Done(), r2.dla.Done())
	}
	if r.doneTick != r2.doneTick {
		t.Errorf("completion tick diverges: cold=%d restored=%d", r.doneTick, r2.doneTick)
	}
	if r.dla.Stats() != r2.dla.Stats() {
		t.Errorf("accelerator stats diverge:\n got %+v\nwant %+v", r2.dla.Stats(), r.dla.Stats())
	}
	if r.obj.Stats() != r2.obj.Stats() {
		t.Errorf("bridge stats diverge:\n got %+v\nwant %+v", r2.obj.Stats(), r.obj.Stats())
	}
}
