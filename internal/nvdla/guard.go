package nvdla

import "fmt"

// The liveness-probe methods below implement guard.Probe (structurally): the
// watchdog waits on the wrapper's internal load/store bookkeeping, which
// covers faults the RTLObject's tables cannot see (e.g. a response that
// retired at the bridge but never reached the model).

// GuardName identifies the accelerator model in watchdog diagnostics.
func (w *Wrapper) GuardName() string { return w.cfg.Name + ".model" }

// InFlight reports reads the model is waiting on plus pending and
// outstanding output writes.
func (w *Wrapper) InFlight() int {
	return len(w.readTile) + len(w.pendWrites) + w.writesOut
}

// GuardDetail renders the model's execution position.
func (w *Wrapper) GuardDetail() string {
	return fmt.Sprintf("reads-waited=%d pendWrites=%d writesOut=%d layer=%d/%d computeTile=%d/%d",
		len(w.readTile), len(w.pendWrites), w.writesOut,
		w.layerIdx, len(w.layers), w.computeTile, len(w.tiles))
}
