package nvdla

import (
	"testing"

	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/sim"
)

// dlaRig wires one NVDLA wrapper through an RTLObject to ideal memory on
// both the DBBIF and SRAMIF ports.
type dlaRig struct {
	q   *sim.EventQueue
	dla *Wrapper
	obj *rtlobject.RTLObject
}

func newDLARig(t testing.TB, maxInflight int, latency sim.Tick) *dlaRig {
	t.Helper()
	r := &dlaRig{q: sim.NewEventQueue()}
	core := sim.NewClockDomain("cpu", r.q, 2_000_000_000)
	r.dla = New(DefaultConfig("nvdla0"))
	r.obj = rtlobject.New(rtlobject.Config{
		Name: "nvdla0", ClockDivider: 2, MaxInflight: maxInflight,
	}, core, r.dla)
	store := mem.NewStorage()
	m0 := mem.NewIdealMemory("dbbif", r.q, store, latency)
	m1 := mem.NewIdealMemory("sramif", r.q, store, latency)
	port.Bind(r.obj.MemPort(PortDBBIF), m0.Port())
	port.Bind(r.obj.MemPort(PortSRAMIF), m1.Port())
	return r
}

// program commits a small layer and starts it.
func program(dla *Wrapper, inBytes, wtBytes, outBytes, tile, cycles uint32) {
	dla.WriteReg(RegInAddrLo, 0)
	dla.WriteReg(RegInAddrHi, 0)
	dla.WriteReg(RegWtAddrLo, 0)
	dla.WriteReg(RegWtAddrHi, 1) // 4 GiB apart
	dla.WriteReg(RegOutAddrLo, 0)
	dla.WriteReg(RegOutAddrHi, 2)
	dla.WriteReg(RegInBytes, inBytes)
	dla.WriteReg(RegWtBytes, wtBytes)
	dla.WriteReg(RegOutBytes, outBytes)
	dla.WriteReg(RegTileBytes, tile)
	dla.WriteReg(RegCyclesPerTile, cycles)
	dla.WriteReg(RegLayerCommit, 1)
	dla.WriteReg(RegCtrl, 1)
}

func TestLayerRunsToCompletion(t *testing.T) {
	r := newDLARig(t, 64, 10*sim.Nanosecond)
	irqAt := sim.Tick(0)
	r.obj.OnInterrupt(func(level bool) {
		if level && irqAt == 0 {
			irqAt = r.q.Now()
		}
	})
	r.obj.Start() // resets the wrapper, so program after
	program(r.dla, 16384, 8192, 4096, 4096, 100)
	r.q.RunUntil(sim.Millisecond)
	r.obj.Stop()
	if !r.dla.Done() {
		t.Fatalf("accelerator not done: stats %+v", r.dla.Stats())
	}
	if irqAt == 0 {
		t.Fatal("no completion interrupt")
	}
	st := r.dla.Stats()
	if st.BytesRead != 16384+8192 {
		t.Fatalf("read %d bytes, want %d", st.BytesRead, 16384+8192)
	}
	if st.BytesWritten != 4096 {
		t.Fatalf("wrote %d bytes", st.BytesWritten)
	}
	// 6 tiles x 100 cycles of compute.
	if st.TilesDone != 6 || st.BusyCycles != 600 {
		t.Fatalf("tiles=%d busy=%d", st.TilesDone, st.BusyCycles)
	}
	if st.LayersDone != 1 {
		t.Fatalf("layers=%d", st.LayersDone)
	}
}

func TestStatusRegister(t *testing.T) {
	r := newDLARig(t, 64, 10*sim.Nanosecond)
	if r.dla.ReadReg(RegStatus) != 0 {
		t.Fatal("status not idle initially")
	}
	r.obj.Start()
	program(r.dla, 4096, 4096, 0, 2048, 50)
	if r.dla.ReadReg(RegStatus)&2 == 0 {
		t.Fatal("running bit not set after start")
	}
	r.q.RunUntil(sim.Millisecond)
	if r.dla.ReadReg(RegStatus)&1 == 0 {
		t.Fatal("done bit not set")
	}
	if r.dla.ReadReg(RegPerfCycles) == 0 {
		t.Fatal("perf cycle counter empty")
	}
	r.dla.WriteReg(RegIrqClear, 1)
	out := r.dla.Tick(&rtlobject.Input{})
	if out.Interrupt {
		t.Fatal("interrupt not cleared")
	}
}

func TestFewerInflightIsSlower(t *testing.T) {
	run := func(maxInflight int) sim.Tick {
		r := newDLARig(t, maxInflight, 40*sim.Nanosecond)
		var doneAt sim.Tick
		r.obj.OnInterrupt(func(level bool) {
			if level && doneAt == 0 {
				doneAt = r.q.Now()
				r.q.ExitSimLoop("dla done")
			}
		})
		r.obj.Start()
		// Memory-bound layer: no compute at all.
		program(r.dla, 1<<17, 1<<16, 0, 8192, 1)
		r.q.RunUntil(100 * sim.Millisecond)
		r.obj.Stop()
		if doneAt == 0 {
			t.Fatalf("inflight=%d never finished", maxInflight)
		}
		return doneAt
	}
	t1 := run(1)
	t64 := run(64)
	if t64*4 > t1 {
		t.Fatalf("64 in-flight (%d) not at least 4x faster than 1 (%d)", t64, t1)
	}
}

func TestComputeBoundInsensitiveToLatency(t *testing.T) {
	run := func(latency sim.Tick) sim.Tick {
		r := newDLARig(t, 128, latency)
		var doneAt sim.Tick
		r.obj.OnInterrupt(func(level bool) {
			if level && doneAt == 0 {
				doneAt = r.q.Now()
				r.q.ExitSimLoop("dla done")
			}
		})
		r.obj.Start()
		// Compute-heavy: 4000 cycles per 8 KiB tile.
		program(r.dla, 1<<15, 1<<14, 0, 8192, 4000)
		r.q.RunUntil(100 * sim.Millisecond)
		r.obj.Stop()
		if doneAt == 0 {
			t.Fatal("never finished")
		}
		return doneAt
	}
	fast := run(5 * sim.Nanosecond)
	slow := run(60 * sim.Nanosecond)
	ratio := float64(slow) / float64(fast)
	if ratio > 1.15 {
		t.Fatalf("compute-bound run slowed %.2fx by memory latency", ratio)
	}
}

func TestCSBViaPortPackets(t *testing.T) {
	r := newDLARig(t, 16, 10*sim.Nanosecond)
	// Program through the CPU-side port like a host core would.
	drv := &csbDriver{q: r.q}
	drv.p = port.NewRequestPort("host", drv)
	port.Bind(drv.p, r.obj.CPUPort(0))
	r.obj.Start()
	writes := []struct {
		addr uint64
		val  uint32
	}{
		{RegInBytes, 4096}, {RegWtBytes, 4096}, {RegOutBytes, 0},
		{RegTileBytes, 2048}, {RegCyclesPerTile, 10},
		{RegLayerCommit, 1}, {RegCtrl, 1},
	}
	for _, wr := range writes {
		pkt := port.NewWritePacket(wr.addr, []byte{
			byte(wr.val), byte(wr.val >> 8), byte(wr.val >> 16), byte(wr.val >> 24)})
		if !drv.p.SendTimingReq(pkt) {
			t.Fatal("CSB write refused")
		}
	}
	r.q.RunUntil(sim.Millisecond)
	if !r.dla.Done() {
		t.Fatal("CSB-programmed run did not finish")
	}
	// Read status through the port.
	rd := port.NewReadPacket(RegStatus, 4)
	drv.p.SendTimingReq(rd)
	r.q.RunUntil(r.q.Now() + 10*sim.Microsecond)
	if len(drv.resps) == 0 || drv.resps[len(drv.resps)-1].Data[0]&1 == 0 {
		t.Fatal("status read via port did not show done")
	}
}

type csbDriver struct {
	q     *sim.EventQueue
	p     *port.RequestPort
	resps []*port.Packet
}

func (d *csbDriver) RecvTimingResp(pkt *port.Packet) bool {
	d.resps = append(d.resps, pkt)
	return true
}
func (d *csbDriver) RecvReqRetry() {}

func TestMultiLayer(t *testing.T) {
	r := newDLARig(t, 64, 10*sim.Nanosecond)
	r.obj.Start()
	for i := 0; i < 3; i++ {
		r.dla.WriteReg(RegInBytes, 8192)
		r.dla.WriteReg(RegWtBytes, 4096)
		r.dla.WriteReg(RegOutBytes, 2048)
		r.dla.WriteReg(RegTileBytes, 4096)
		r.dla.WriteReg(RegCyclesPerTile, 20)
		r.dla.WriteReg(RegLayerCommit, 1)
	}
	r.dla.WriteReg(RegCtrl, 1)
	r.q.RunUntil(10 * sim.Millisecond)
	if st := r.dla.Stats(); st.LayersDone != 3 {
		t.Fatalf("layers done = %d, want 3", st.LayersDone)
	}
}

func TestResetClears(t *testing.T) {
	r := newDLARig(t, 64, 10*sim.Nanosecond)
	r.obj.Start()
	program(r.dla, 4096, 4096, 0, 2048, 10)
	r.q.RunUntil(sim.Millisecond)
	r.obj.Stop()
	r.dla.Reset()
	if r.dla.Done() || r.dla.ReadReg(RegStatus) != 0 || r.dla.ReadReg(RegPerfCycles) != 0 {
		t.Fatal("reset did not clear state")
	}
}

func BenchmarkDLATick(b *testing.B) {
	dla := New(DefaultConfig("bench"))
	program(dla, 1<<30, 1<<28, 0, 8192, 100)
	in := &rtlobject.Input{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dla.Tick(in)
		// Feed responses back immediately (zero-latency memory).
		in = &rtlobject.Input{}
		for _, req := range out.MemRequests {
			if !req.Write {
				in.MemResponses = append(in.MemResponses,
					rtlobject.MemResponse{ID: req.ID, Data: make([]byte, req.Size)})
			} else {
				in.MemResponses = append(in.MemResponses,
					rtlobject.MemResponse{ID: req.ID, Write: true})
			}
		}
	}
}
