package nvdla

import (
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/rtlobject"
)

// SaveState captures the accelerator model: CSB staging and committed layers,
// run/irq flags, and the full execution state of the current layer — tile
// fetch/compute progress, the activation/weight/output stream cursors, the
// outstanding-read table (sorted by ID for a deterministic stream) and queued
// output writes. It implements ckpt.Checkpointable so the enclosing
// RTLObject can delegate to it.
func (w *Wrapper) SaveState(cw *ckpt.Writer) error {
	cw.Section("nvdla." + w.cfg.Name)
	saveLayerCfg(cw, &w.staged)
	cw.Int(len(w.layers))
	for i := range w.layers {
		saveLayerCfg(cw, &w.layers[i])
	}
	cw.Bool(w.running)
	cw.Bool(w.done)
	cw.Bool(w.irq)
	cw.Int(w.layerIdx)
	cw.Int(len(w.tiles))
	for i := range w.tiles {
		cw.Int(w.tiles[i].needed)
		cw.Int(w.tiles[i].arrived)
		cw.Int(w.tiles[i].issued)
	}
	cw.Int(w.outPerTile)
	cw.Int(w.fetchTile)
	cw.Int(w.computeTile)
	cw.U32(w.computeLeft)
	cw.U64(w.inCur)
	cw.U64(w.wtCur)
	cw.U64(w.inEnd)
	cw.U64(w.wtEnd)
	cw.U64(w.outCur)
	cw.U64(w.nextID)
	ids := make([]uint64, 0, len(w.readTile))
	for id := range w.readTile {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cw.Int(len(ids))
	for _, id := range ids {
		cw.U64(id)
		cw.Int(w.readTile[id])
	}
	cw.Int(w.writesOut)
	cw.Int(len(w.pendWrites) - w.pendHead)
	for i := w.pendHead; i < len(w.pendWrites); i++ {
		rtlobject.SaveMemRequest(cw, &w.pendWrites[i])
	}
	cw.U64(w.stats.BusyCycles)
	cw.U64(w.stats.StallCycles)
	cw.U64(w.stats.IdleCycles)
	cw.U64(w.stats.BytesRead)
	cw.U64(w.stats.BytesWritten)
	cw.U64(w.stats.TilesDone)
	cw.U64(w.stats.LayersDone)
	return cw.Err()
}

// RestoreState reinstates a checkpointed accelerator. The caller must not
// Reset or re-play the configuration trace afterwards: register state,
// committed layers and in-flight tiles all come from the checkpoint.
func (w *Wrapper) RestoreState(r *ckpt.Reader) error {
	r.Section("nvdla." + w.cfg.Name)
	restoreLayerCfg(r, &w.staged)
	n := r.Len()
	w.layers = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		var l layerCfg
		restoreLayerCfg(r, &l)
		w.layers = append(w.layers, l)
	}
	w.running = r.Bool()
	w.done = r.Bool()
	w.irq = r.Bool()
	w.layerIdx = r.Len()
	n = r.Len()
	w.tiles = make([]tileState, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		w.tiles[i].needed = r.Len()
		w.tiles[i].arrived = r.Len()
		w.tiles[i].issued = r.Len()
	}
	w.outPerTile = r.Len()
	w.fetchTile = r.Len()
	w.computeTile = r.Len()
	w.computeLeft = r.U32()
	w.inCur = r.U64()
	w.wtCur = r.U64()
	w.inEnd = r.U64()
	w.wtEnd = r.U64()
	w.outCur = r.U64()
	w.nextID = r.U64()
	n = r.Len()
	w.readTile = make(map[uint64]int, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := r.U64()
		w.readTile[id] = r.Len()
	}
	w.writesOut = r.Len()
	n = r.Len()
	w.pendWrites = nil
	w.pendHead = 0
	for i := 0; i < n && r.Err() == nil; i++ {
		w.pendWrites = append(w.pendWrites, rtlobject.LoadMemRequest(r))
	}
	w.stats.BusyCycles = r.U64()
	w.stats.StallCycles = r.U64()
	w.stats.IdleCycles = r.U64()
	w.stats.BytesRead = r.U64()
	w.stats.BytesWritten = r.U64()
	w.stats.TilesDone = r.U64()
	w.stats.LayersDone = r.U64()
	return r.Err()
}

func saveLayerCfg(w *ckpt.Writer, l *layerCfg) {
	w.U64(l.inAddr)
	w.U64(l.wtAddr)
	w.U64(l.outAddr)
	w.U32(l.inBytes)
	w.U32(l.wtBytes)
	w.U32(l.outBytes)
	w.U32(l.tileBytes)
	w.U32(l.cyclesPerTile)
}

func restoreLayerCfg(r *ckpt.Reader, l *layerCfg) {
	l.inAddr = r.U64()
	l.wtAddr = r.U64()
	l.outAddr = r.U64()
	l.inBytes = r.U32()
	l.wtBytes = r.U32()
	l.outBytes = r.U32()
	l.tileBytes = r.U32()
	l.cyclesPerTile = r.U32()
}
