package nvdla

import "gem5rtl/internal/obs"

// AttachTracer wires the NVDLA debug flag (nil logger = off). The logger
// survives Reset (which rebuilds the execution state wholesale). The
// component name matches GuardName so watchdog hang diagnostics can pull
// this model's trace tail.
func (w *Wrapper) AttachTracer(t *obs.Tracer) {
	w.trace = t.Logger("NVDLA", w.cfg.Name+".model")
}
