// Package stats provides the gem5-style statistics registry gem5rtl
// components dump at interval boundaries and at end of simulation —
// the counterpart of gem5's stats.txt that §6.1 compares the PMU against.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// Value is a single named statistic, sampled lazily at dump time.
type Value struct {
	Name string
	Desc string
	Get  func() float64
}

// Registry holds the statistics of one simulated system.
type Registry struct {
	values []Value
	byName map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Register adds a statistic; duplicate names are rejected with a panic, as
// they indicate mis-wired components.
func (r *Registry) Register(name, desc string, get func() float64) {
	if _, dup := r.byName[name]; dup {
		panic("stats: duplicate statistic " + name)
	}
	r.byName[name] = len(r.values)
	r.values = append(r.values, Value{Name: name, Desc: desc, Get: get})
}

// RegisterCounter registers a uint64 counter by pointer.
func (r *Registry) RegisterCounter(name, desc string, p *uint64) {
	r.Register(name, desc, func() float64 { return float64(*p) })
}

// Get returns the current value of a named statistic.
func (r *Registry) Get(name string) (float64, bool) {
	i, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	return r.values[i].Get(), true
}

// Snapshot samples every statistic. The returned map has no defined order;
// any code path that serializes a snapshot must use SnapshotSorted (or
// Names) instead, so emitted output is deterministic.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.values))
	for _, v := range r.values {
		out[v.Name] = v.Get()
	}
	return out
}

// Sample is one (name, value) pair from an ordered snapshot.
type Sample struct {
	Name  string
	Value float64
}

// Names returns every registered statistic name, sorted. The slice is
// freshly allocated; callers may keep it.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.values))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SnapshotSorted samples every statistic in sorted-name order — the
// deterministic form for serialization (interval dumps, golden files).
func (r *Registry) SnapshotSorted() []Sample {
	names := r.Names()
	out := make([]Sample, len(names))
	for i, name := range names {
		out[i] = Sample{Name: name, Value: r.values[r.byName[name]].Get()}
	}
	return out
}

// SortedValues returns every registered statistic in sorted-name order,
// descriptions included — the form exporters that need metadata (the
// Prometheus text renderer) consume.
func (r *Registry) SortedValues() []Value {
	out := make([]Value, 0, len(r.values))
	for _, name := range r.Names() {
		out = append(out, r.values[r.byName[name]])
	}
	return out
}

// Dump writes all statistics in gem5's "name value # desc" format, sorted.
func (r *Registry) Dump(w io.Writer) {
	fmt.Fprintln(w, "---------- Begin Simulation Statistics ----------")
	for _, name := range r.Names() {
		v := r.values[r.byName[name]]
		fmt.Fprintf(w, "%-50s %14.6g  # %s\n", v.Name, v.Get(), v.Desc)
	}
	fmt.Fprintln(w, "---------- End Simulation Statistics   ----------")
}

// Delta computes after-minus-before for interval statistics (e.g. IPC over
// a 10,000-cycle window in the PMU experiment).
func Delta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}
