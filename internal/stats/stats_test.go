package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegisterGetSnapshot(t *testing.T) {
	r := NewRegistry()
	x := uint64(0)
	r.RegisterCounter("sys.x", "a counter", &x)
	r.Register("sys.y", "derived", func() float64 { return float64(x) * 2 })
	x = 21
	if v, ok := r.Get("sys.x"); !ok || v != 21 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	snap := r.Snapshot()
	if snap["sys.y"] != 42 {
		t.Fatalf("snapshot %v", snap)
	}
	if _, ok := r.Get("sys.z"); ok {
		t.Fatal("missing stat found")
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("a", "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("a", "", func() float64 { return 1 })
}

func TestDumpFormatSorted(t *testing.T) {
	r := NewRegistry()
	r.Register("b.stat", "second", func() float64 { return 2 })
	r.Register("a.stat", "first", func() float64 { return 1 })
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	ai := strings.Index(out, "a.stat")
	bi := strings.Index(out, "b.stat")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("dump not sorted:\n%s", out)
	}
	if !strings.Contains(out, "# first") {
		t.Fatal("description missing")
	}
}

func TestDelta(t *testing.T) {
	before := map[string]float64{"x": 10, "y": 5}
	after := map[string]float64{"x": 25, "y": 5}
	d := Delta(before, after)
	if d["x"] != 15 || d["y"] != 0 {
		t.Fatalf("delta %v", d)
	}
}
