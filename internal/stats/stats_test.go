package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegisterGetSnapshot(t *testing.T) {
	r := NewRegistry()
	x := uint64(0)
	r.RegisterCounter("sys.x", "a counter", &x)
	r.Register("sys.y", "derived", func() float64 { return float64(x) * 2 })
	x = 21
	if v, ok := r.Get("sys.x"); !ok || v != 21 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	snap := r.Snapshot()
	if snap["sys.y"] != 42 {
		t.Fatalf("snapshot %v", snap)
	}
	if _, ok := r.Get("sys.z"); ok {
		t.Fatal("missing stat found")
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register("a", "", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("a", "", func() float64 { return 1 })
}

func TestDumpFormatSorted(t *testing.T) {
	r := NewRegistry()
	r.Register("b.stat", "second", func() float64 { return 2 })
	r.Register("a.stat", "first", func() float64 { return 1 })
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	ai := strings.Index(out, "a.stat")
	bi := strings.Index(out, "b.stat")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("dump not sorted:\n%s", out)
	}
	if !strings.Contains(out, "# first") {
		t.Fatal("description missing")
	}
}

func TestDelta(t *testing.T) {
	before := map[string]float64{"x": 10, "y": 5}
	after := map[string]float64{"x": 25, "y": 5}
	d := Delta(before, after)
	if d["x"] != 15 || d["y"] != 0 {
		t.Fatalf("delta %v", d)
	}
}

// TestDumpGolden pins the exact serialized form of Dump: registration order
// must not leak into the output (names sort), and the column layout matches
// gem5's "name value # desc" stats.txt format.
func TestDumpGolden(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order.
	r.Register("system.mem.reads", "memory reads", func() float64 { return 12345 })
	r.Register("system.cpu0.ipc", "instructions per cycle", func() float64 { return 0.75 })
	r.Register("system.cpu0.committedInsts", "committed instructions", func() float64 { return 98765 })
	var buf bytes.Buffer
	r.Dump(&buf)
	want := `---------- Begin Simulation Statistics ----------
system.cpu0.committedInsts                                  98765  # committed instructions
system.cpu0.ipc                                              0.75  # instructions per cycle
system.mem.reads                                            12345  # memory reads
---------- End Simulation Statistics   ----------
`
	if buf.String() != want {
		t.Fatalf("dump drifted from golden form:\n got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestNamesSortedAndFresh(t *testing.T) {
	r := NewRegistry()
	r.Register("b", "", func() float64 { return 0 })
	r.Register("a", "", func() float64 { return 0 })
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	names[0] = "mutated"
	if again := r.Names(); again[0] != "a" {
		t.Fatal("Names returned a shared slice")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	x := uint64(3)
	r.RegisterCounter("z.last", "", &x)
	r.Register("a.first", "", func() float64 { return 1 })
	snap := r.SnapshotSorted()
	if len(snap) != 2 || snap[0].Name != "a.first" || snap[1].Name != "z.last" {
		t.Fatalf("snapshot order %v", snap)
	}
	if snap[0].Value != 1 || snap[1].Value != 3 {
		t.Fatalf("snapshot values %v", snap)
	}
}
