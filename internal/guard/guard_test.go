package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gem5rtl/internal/sim"
)

type fakeProbe struct {
	name string
	n    int
}

func (p *fakeProbe) GuardName() string   { return p.name }
func (p *fakeProbe) InFlight() int       { return p.n }
func (p *fakeProbe) GuardDetail() string { return fmt.Sprintf("n=%d", p.n) }

// A quiescent system lets the watchdog stop rescheduling itself so the queue
// drains, and never trips.
func TestWatchdogQuiescentDrains(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{})
	p := &fakeProbe{name: "comp", n: 1}
	wd.Watch(p)
	// The component finishes its work before the first check.
	q.ScheduleFunc("finish", 10*sim.Microsecond, func() { p.n = 0 })
	wd.Start()
	q.RunUntil(sim.Second)
	if err := wd.Err(); err != nil {
		t.Fatalf("quiescent run tripped: %v", err)
	}
	if !q.Empty() {
		t.Fatalf("queue did not drain: %d pending", q.Pending())
	}
}

// A queue that drains while a component still holds in-flight work is the
// lost-event hang: the watchdog must trip on its very next check.
func TestWatchdogDrainedWithWork(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{})
	wd.Watch(&fakeProbe{name: "stuck.cache", n: 3})
	wd.Start()
	q.RunUntil(sim.Second)
	err := wd.Err()
	if err == nil {
		t.Fatal("expected a trip, got nil")
	}
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("err is %T, want *HangError", err)
	}
	if !strings.Contains(hang.Reason, "drained with in-flight work") {
		t.Fatalf("reason = %q", hang.Reason)
	}
	if !strings.Contains(hang.Diagnostic, "stuck.cache") || !strings.Contains(hang.Diagnostic, "n=3") {
		t.Fatalf("diagnostic missing component dump:\n%s", hang.Diagnostic)
	}
	if !IsHang(err) {
		t.Fatal("IsHang(err) = false")
	}
}

// tick installs a free-running self-rescheduling event, the signature of a
// wedged-but-busy simulation (idle accelerator tickers keep the queue alive).
func tick(q *sim.EventQueue, period sim.Tick, fn func()) {
	var ev *sim.Event
	ev = sim.NewEvent("ticker", func() {
		if fn != nil {
			fn()
		}
		q.Schedule(ev, q.Now()+period)
	})
	q.Schedule(ev, period)
}

// In-flight work + live queue + no forward progress = stall trip after
// MaxStalls checks.
func TestWatchdogStallTrip(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{Interval: 10 * sim.Microsecond, MaxStalls: 3})
	wd.Watch(&fakeProbe{name: "rtl.dla0", n: 1})
	wd.AddProgress("retired", func() uint64 { return 42 }) // frozen
	tick(q, sim.Microsecond, nil)
	wd.Start()
	q.RunUntil(sim.Second)
	err := wd.Err()
	if err == nil {
		t.Fatal("expected a stall trip, got nil")
	}
	var hang *HangError
	if !errors.As(err, &hang) {
		t.Fatalf("err is %T, want *HangError", err)
	}
	if !strings.Contains(hang.Reason, "no forward progress") {
		t.Fatalf("reason = %q", hang.Reason)
	}
	// Interval 10us, 3 stalls after the first (baseline) check -> trip by 40us.
	if hang.Tick > 50*sim.Microsecond {
		t.Fatalf("tripped late at %d", hang.Tick)
	}
	if !strings.Contains(hang.Diagnostic, "pending events") {
		t.Fatalf("diagnostic missing event dump:\n%s", hang.Diagnostic)
	}
}

// Forward progress resets the stall count: a slow but advancing simulation
// never trips.
func TestWatchdogProgressResetsStalls(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{Interval: 10 * sim.Microsecond, MaxStalls: 2})
	wd.Watch(&fakeProbe{name: "busy", n: 1})
	var retired uint64
	wd.AddProgress("retired", func() uint64 { return retired })
	// Progress once per check interval: always exactly one retirement between
	// checks, so the stall counter can never reach MaxStalls.
	tick(q, 10*sim.Microsecond, func() { retired++ })
	wd.Start()
	q.RunUntil(500 * sim.Microsecond)
	if err := wd.Err(); err != nil {
		t.Fatalf("advancing run tripped: %v", err)
	}
}

// Stop deschedules the check so a stopped watchdog can never trip (required
// before checkpointing).
func TestWatchdogStop(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{})
	wd.Watch(&fakeProbe{name: "comp", n: 1})
	wd.Start()
	wd.Stop()
	q.RunUntil(sim.Second)
	if err := wd.Err(); err != nil {
		t.Fatalf("stopped watchdog tripped: %v", err)
	}
	if !q.Empty() {
		t.Fatal("stopped watchdog left its event scheduled")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
	for _, n := range []uint64{1, 7, 1 << 40} {
		if v := NewRNG(5).Uint64n(n); v >= n {
			t.Fatalf("Uint64n(%d) = %d out of range", n, v)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 0) != DeriveSeed(7, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Fatal("campaign seed ignored")
	}
}

func TestOutcomeAndKindStrings(t *testing.T) {
	if Masked.String() != "masked" || Hung.String() != "hung" {
		t.Fatal("Outcome strings changed")
	}
	if DropResp.String() != "drop-resp" || RTLStateFlip.String() != "rtl-state-flip" {
		t.Fatal("FaultKind strings changed")
	}
}

// A tripped watchdog with a trace-tail source includes each tripped
// component's recent trace lines in the diagnostic — the last thing the
// component logged before the hang.
func TestHangDiagnosticIncludesTraceTail(t *testing.T) {
	q := sim.NewEventQueue()
	wd := NewWatchdog(q, Config{})
	wd.Watch(&fakeProbe{name: "stuck.cache", n: 2})
	wd.Watch(&fakeProbe{name: "fine.xbar", n: 0})
	wd.SetTraceTail(func(component string, n int) []string {
		if component != "stuck.cache" {
			t.Errorf("tail queried for untripped component %q", component)
			return nil
		}
		if n != TraceTailLines {
			t.Errorf("tail depth %d, want %d", n, TraceTailLines)
		}
		return []string{"100: stuck.cache: miss addr=0x40", "200: stuck.cache: MSHR full"}
	})
	wd.Start()
	q.RunUntil(sim.Second)
	var hang *HangError
	if !errors.As(wd.Err(), &hang) {
		t.Fatalf("expected a trip, got %v", wd.Err())
	}
	if !strings.Contains(hang.Diagnostic, "| 100: stuck.cache: miss addr=0x40") ||
		!strings.Contains(hang.Diagnostic, "| 200: stuck.cache: MSHR full") {
		t.Fatalf("diagnostic missing trace tail:\n%s", hang.Diagnostic)
	}
}

// DeriveSeedString must be a pure function of (seed, key): identical inputs
// reproduce, and nearby inputs (one character, one seed bit apart) land in
// unrelated streams — the property retry schedules and chaos campaigns rely
// on for worker-count independence.
func TestDeriveSeedStringDeterministicAndIndependent(t *testing.T) {
	const fp = "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"
	a := DeriveSeedString(42, fp)
	if b := DeriveSeedString(42, fp); a != b {
		t.Fatalf("same inputs, different seeds: %#x vs %#x", a, b)
	}
	variants := []uint64{
		DeriveSeedString(43, fp),
		DeriveSeedString(42, fp[:len(fp)-1]+"9"),
		DeriveSeedString(42, ""),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collides with the base seed %#x", i, a)
		}
	}
}
