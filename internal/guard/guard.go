// Package guard is the robustness layer of gem5rtl: a liveness watchdog for
// the event loop, and a deterministic fault-injection vocabulary used by the
// campaign engine in internal/experiments.
//
// Co-simulation has two classic silent failure modes the rest of the
// simulator cannot see. A wedged timing-port handshake (a lost retry, a
// dropped response) leaves components with in-flight work while the event
// queue either drains or spins on idle tickers until the time limit; and a
// misbehaving RTL model corrupts results without tripping anything. The
// watchdog closes the first gap: components expose their occupancy through
// the small Probe interface, the watchdog samples forward-progress counters
// on a periodic event, and a wedge is converted into a structured HangError
// carrying pending events, in-flight packet IDs and per-component occupancy
// instead of a hang.
package guard

import (
	"errors"
	"fmt"
	"strings"

	"gem5rtl/internal/sim"
)

// Probe is implemented by components that can report in-flight work the
// watchdog should wait on: cache MSHRs, crossbar queues, DRAM controller
// queues, RTLObject transaction tables, CPU load/store queues.
type Probe interface {
	// GuardName identifies the component in diagnostics.
	GuardName() string
	// InFlight returns the component's current in-flight work item count.
	// Zero means the component is quiescent.
	InFlight() int
	// GuardDetail renders the in-flight work (packet IDs, block addresses,
	// queue occupancies) for the diagnostic dump. Only consulted on a trip.
	GuardDetail() string
}

// Config tunes a Watchdog. The zero value selects the defaults.
type Config struct {
	// Interval is the simulated time between liveness checks
	// (0 = DefaultInterval).
	Interval sim.Tick
	// MaxStalls is how many consecutive no-progress checks with in-flight
	// work trip the watchdog (0 = DefaultMaxStalls). The effective hang
	// detection latency is Interval * MaxStalls of simulated time.
	MaxStalls int
	// MaxDumpEvents bounds the pending-event listing in the diagnostic
	// (0 = DefaultMaxDumpEvents).
	MaxDumpEvents int
}

// Watchdog defaults: a check every 50 us of simulated time, tripping after
// four silent checks. Memory round-trips are nanosecond-scale, so 200 us
// without a single retired packet or committed instruction while work is
// outstanding is decisively a hang, while sleep syscalls and long compute
// stretches (which hold no in-flight work) can never false-trip.
const (
	DefaultInterval      = 50 * sim.Microsecond
	DefaultMaxStalls     = 4
	DefaultMaxDumpEvents = 16
)

// TraceTailLines is how many recent trace lines per tripped component a
// HangError diagnostic includes when a trace-tail source is wired.
const TraceTailLines = 8

// HangError is the structured diagnostic produced when the watchdog trips.
type HangError struct {
	// Tick is the simulated time of the trip.
	Tick sim.Tick
	// Reason is the one-line trip cause.
	Reason string
	// Diagnostic is the multi-line dump: progress counters, per-component
	// occupancy with in-flight packet IDs, and the head of the event queue.
	Diagnostic string
}

func (e *HangError) Error() string {
	return fmt.Sprintf("guard: watchdog tripped at tick %d: %s\n%s", e.Tick, e.Reason, e.Diagnostic)
}

// IsHang reports whether err is (or wraps) a watchdog HangError.
func IsHang(err error) bool {
	var h *HangError
	return errors.As(err, &h)
}

type progressSrc struct {
	name string
	fn   func() uint64
}

type namedQueue struct {
	name string
	q    *sim.EventQueue
}

// Watchdog is an EventQueue-attached liveness monitor. Register components
// with Watch and forward-progress counters with AddProgress, then Start it;
// a trip latches a HangError (see Err) and ends the simulation loop via
// ExitSimLoop, so the driving code regains control with full diagnostics.
type Watchdog struct {
	q   *sim.EventQueue
	cfg Config
	ev  *sim.Event

	probes   []Probe
	progress []progressSrc

	// shards are additional event queues (the sharded engine's non-primary
	// shards) whose pending events the liveness logic and diagnostics must
	// cover; see WatchQueue.
	shards []namedQueue

	// hostedLast throttles CheckHosted to the configured interval.
	hostedLast  sim.Tick
	hostedValid bool

	// traceTail, when set, supplies the last trace lines recorded for a
	// component (see SetTraceTail); trips include them in the diagnostic.
	traceTail func(component string, n int) []string

	last      uint64
	lastValid bool
	stalls    int
	err       *HangError
}

// NewWatchdog creates an unstarted watchdog on q.
func NewWatchdog(q *sim.EventQueue, cfg Config) *Watchdog {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MaxStalls == 0 {
		cfg.MaxStalls = DefaultMaxStalls
	}
	if cfg.MaxDumpEvents == 0 {
		cfg.MaxDumpEvents = DefaultMaxDumpEvents
	}
	w := &Watchdog{q: q, cfg: cfg}
	// PriStats: the check observes the post-update state of its tick, after
	// component events have run.
	w.ev = sim.NewEventPri("guard.watchdog", sim.PriStats, w.check).SetOwner(q.Owner("guard", "watchdog"))
	return w
}

// Watch registers components whose in-flight work the watchdog tracks.
func (w *Watchdog) Watch(probes ...Probe) {
	w.probes = append(w.probes, probes...)
}

// WatchQueue registers an additional shard event queue under a diagnostic
// name. The liveness logic then treats the machine as drained only when
// every registered queue is empty, and a trip's pending-event dump
// aggregates across all queues, naming the queue each event sits on — so a
// hang report from a sharded run says which shard stalled instead of
// showing only the primary shard's (possibly empty) queue.
func (w *Watchdog) WatchQueue(name string, q *sim.EventQueue) {
	w.shards = append(w.shards, namedQueue{name, q})
}

// SetTraceTail wires a trace-line source (typically obs.Tracer.Tail): on a
// trip, the diagnostic then includes the last trace lines of every tripped
// component, so a hang report ships its own context. The watchdog keeps
// working without one — the guard package stays decoupled from tracing.
func (w *Watchdog) SetTraceTail(tail func(component string, n int) []string) {
	w.traceTail = tail
}

// AddProgress registers a monotonic forward-progress counter (retired
// packets, committed instructions, completed tiles). Any change between two
// checks counts as progress. Free-running counters such as raw dispatched
// events or model tick counts must NOT be registered: an idle ticker spins
// forever and would mask a real hang.
func (w *Watchdog) AddProgress(name string, fn func() uint64) {
	w.progress = append(w.progress, progressSrc{name, fn})
}

// Start schedules the first liveness check.
func (w *Watchdog) Start() {
	w.q.Schedule(w.ev, w.q.Now()+w.cfg.Interval)
}

// Stop deschedules the check event. Required before checkpointing the system
// (the watchdog's event is host-side and not serialisable) and before
// reusing the queue without liveness monitoring.
func (w *Watchdog) Stop() {
	if w.ev.Scheduled() {
		w.q.Deschedule(w.ev)
	}
}

// Err returns the latched HangError, or nil if the watchdog never tripped.
func (w *Watchdog) Err() error {
	if w.err == nil {
		return nil
	}
	return w.err
}

// check is the periodic liveness event (the serial engine's driver).
func (w *Watchdog) check() {
	tripped, idle := w.runCheck()
	if tripped || idle {
		return
	}
	w.q.Schedule(w.ev, w.q.Now()+w.cfg.Interval)
}

// CheckHosted runs one liveness check from a host-side driver — the sharded
// engine's epoch-barrier hook, where every shard is quiescent — instead of
// a queue event. It self-throttles to the configured interval (barriers
// arrive far more often than checks are wanted) and reports whether the
// watchdog tripped, so the hook can stop the run. now is the aligned
// simulated time at the barrier.
func (w *Watchdog) CheckHosted(now sim.Tick) bool {
	if w.err != nil {
		return true
	}
	if w.hostedValid && now-w.hostedLast < w.cfg.Interval {
		return false
	}
	w.hostedLast, w.hostedValid = now, true
	tripped, _ := w.runCheck()
	return tripped
}

// runCheck performs one liveness check. tripped reports a latched hang;
// idle reports full quiescence (no in-flight work, every watched queue
// empty), after which the serial driver stops rescheduling itself.
func (w *Watchdog) runCheck() (tripped, idle bool) {
	work := 0
	for _, p := range w.probes {
		work += p.InFlight()
	}
	var total uint64
	for _, src := range w.progress {
		total += src.fn()
	}
	progressed := !w.lastValid || total != w.last
	w.last, w.lastValid = total, true
	empty := w.q.Empty()
	for _, s := range w.shards {
		empty = empty && s.q.Empty()
	}
	switch {
	case work == 0:
		// Quiescent: nothing to wait on. Reset the stall count so idle
		// stretches (sleeping cores, drained accelerators) never accumulate
		// toward a trip, and let the queue drain naturally if this check was
		// the last pending event.
		w.stalls = 0
		if empty {
			return false, true
		}
	case empty:
		// The check event was the last thing scheduled, yet components still
		// hold in-flight work: the simulation lost the events that would have
		// completed it.
		w.trip("event queue drained with in-flight work")
		return true, false
	case progressed:
		w.stalls = 0
	default:
		w.stalls++
		if w.stalls >= w.cfg.MaxStalls {
			w.trip(fmt.Sprintf("no forward progress for %d checks (%d ns simulated) with in-flight work",
				w.stalls, uint64(w.cfg.Interval)*uint64(w.stalls)/uint64(sim.Nanosecond)))
			return true, false
		}
	}
	return false, false
}

// trip latches the diagnostic and ends the simulation loop.
func (w *Watchdog) trip(reason string) {
	var b strings.Builder
	fmt.Fprintf(&b, "progress counters:\n")
	for _, src := range w.progress {
		fmt.Fprintf(&b, "  %-24s %d\n", src.name, src.fn())
	}
	fmt.Fprintf(&b, "in-flight work:\n")
	for _, p := range w.probes {
		n := p.InFlight()
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-24s %d  %s\n", p.GuardName(), n, p.GuardDetail())
		if w.traceTail == nil {
			continue
		}
		for _, line := range w.traceTail(p.GuardName(), TraceTailLines) {
			fmt.Fprintf(&b, "    | %s\n", line)
		}
	}
	w.dumpPending(&b)
	w.err = &HangError{Tick: w.q.Now(), Reason: reason, Diagnostic: b.String()}
	w.q.ExitSimLoop("watchdog: " + reason)
}

// dumpPending renders the pending-event listing, aggregated across the
// primary queue and every queue registered via WatchQueue. With shard
// queues registered, each queue's contribution is labelled so the report
// names the shard that still holds (or has lost) its events.
func (w *Watchdog) dumpPending(b *strings.Builder) {
	if len(w.shards) == 0 {
		pending := w.q.PendingSummaries(w.cfg.MaxDumpEvents)
		fmt.Fprintf(b, "pending events (%d total, first %d):\n", w.q.Pending(), len(pending))
		for _, s := range pending {
			fmt.Fprintf(b, "  %s\n", s)
		}
		return
	}
	all := append([]namedQueue{{"shard0", w.q}}, w.shards...)
	total := 0
	for _, nq := range all {
		total += nq.q.Pending()
	}
	fmt.Fprintf(b, "pending events (%d total across %d shards):\n", total, len(all))
	for _, nq := range all {
		pending := nq.q.PendingSummaries(w.cfg.MaxDumpEvents)
		fmt.Fprintf(b, "  %s: %d pending (first %d):\n", nq.name, nq.q.Pending(), len(pending))
		for _, s := range pending {
			fmt.Fprintf(b, "    %s\n", s)
		}
	}
}
