package guard

import (
	"fmt"

	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Outcome classifies one fault injection, following the standard
// fault-injection taxonomy.
type Outcome int

// Injection outcomes.
const (
	// Masked: the run completed with output identical to the fault-free
	// reference — the fault was architecturally absorbed.
	Masked Outcome = iota
	// Detected: an existing integrity check (a panic, a protocol checker)
	// caught the fault and aborted the run.
	Detected
	// Corrupted: the run completed but produced different output — silent
	// data corruption, the worst class.
	Corrupted
	// Hung: the run stopped making forward progress and was reaped by the
	// watchdog (or ran out its time limit).
	Hung
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Detected:
		return "detected"
	case Corrupted:
		return "corrupted"
	case Hung:
		return "hung"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// FaultKind enumerates the injectable fault models.
type FaultKind int

// Fault kinds.
const (
	// ReadPayloadFlip flips one bit in a read-response payload on a port.
	ReadPayloadFlip FaultKind = iota
	// WritePayloadFlip flips one bit in a write-request payload on a port.
	WritePayloadFlip
	// DropResp swallows one response on a port (a lost transfer).
	DropResp
	// DupResp delivers one response twice (a replayed transfer).
	DupResp
	// DelayResp holds one response and re-delivers it Delay ticks later
	// (a latency fault).
	DelayResp
	// DRAMBitFlip flips one bit in backing store at Addr at simulated
	// time Tick.
	DRAMBitFlip
	// RTLStateFlip flips state bit Pick of an rtl.Model (register or memory
	// bit, see rtl.Model.InjectStateFlip) at simulated time Tick.
	RTLStateFlip
)

func (k FaultKind) String() string {
	switch k {
	case ReadPayloadFlip:
		return "read-payload-flip"
	case WritePayloadFlip:
		return "write-payload-flip"
	case DropResp:
		return "drop-resp"
	case DupResp:
		return "dup-resp"
	case DelayResp:
		return "delay-resp"
	case DRAMBitFlip:
		return "dram-bit-flip"
	case RTLStateFlip:
		return "rtl-state-flip"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault describes one deterministic injection. Which fields matter depends
// on Kind.
type Fault struct {
	Kind FaultKind
	// Link selects the tapped port for packet faults (campaign-defined
	// numbering, e.g. accelerator*2 + port index).
	Link int
	// PktIndex selects the Nth matching packet on the link (0-based).
	PktIndex uint64
	// Byte and Bit locate a payload flip (reduced modulo the payload size).
	Byte int
	Bit  uint
	// Addr locates a DRAM bit flip.
	Addr uint64
	// Tick schedules time-triggered faults (DRAMBitFlip, RTLStateFlip).
	Tick sim.Tick
	// Delay is the added latency of a DelayResp fault.
	Delay sim.Tick
	// Pick selects the flipped state bit of an RTLStateFlip.
	Pick uint64
}

func (f Fault) String() string {
	switch f.Kind {
	case ReadPayloadFlip, WritePayloadFlip:
		return fmt.Sprintf("%s link=%d pkt=%d byte=%d bit=%d", f.Kind, f.Link, f.PktIndex, f.Byte, f.Bit)
	case DropResp, DupResp:
		return fmt.Sprintf("%s link=%d pkt=%d", f.Kind, f.Link, f.PktIndex)
	case DelayResp:
		return fmt.Sprintf("%s link=%d pkt=%d delay=%dns", f.Kind, f.Link, f.PktIndex, uint64(f.Delay)/uint64(sim.Nanosecond))
	case DRAMBitFlip:
		return fmt.Sprintf("%s addr=%#x bit=%d tick=%d", f.Kind, f.Addr, f.Bit, f.Tick)
	case RTLStateFlip:
		return fmt.Sprintf("%s pick=%d tick=%d", f.Kind, f.Pick, f.Tick)
	}
	return f.Kind.String()
}

// RNG is a splitmix64 generator: tiny, fast, and fully determined by its
// seed, so campaigns reproduce bit-identically from a seed alone.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value of the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 { return r.Uint64() % n }

// Intn returns a value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }

// DeriveSeed mixes a campaign seed with a fault index into an independent
// per-fault stream seed.
func DeriveSeed(seed uint64, i int) uint64 {
	r := NewRNG(seed ^ (uint64(i)+1)*0xd6e8feb86659fd93)
	return r.Uint64()
}

// DeriveSeedString mixes a seed with a string key — a spec fingerprint, a
// component name — into an independent stream seed. The derivation depends
// only on (seed, key), never on host state, so schedules keyed by it (retry
// backoff, chaos injections) are deterministic at any worker count. The key
// bytes are folded FNV-style and finished through a splitmix64 step so
// near-identical keys land in unrelated streams.
func DeriveSeedString(seed uint64, key string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	return NewRNG(h).Uint64()
}

// PacketFaultTap implements port.LinkTap for the packet fault kinds: it
// counts matching packets per direction and fires the configured fault on
// the PktIndex-th one. A tap whose index exceeds the link's actual traffic
// simply never fires (Fired stays false) and the injection classifies as
// masked.
type PacketFaultTap struct {
	F Fault
	// Q and Inj enable DelayResp re-delivery; set via BindDelay.
	q   *sim.EventQueue
	inj *port.Injector
	// Fired reports whether the fault point was reached.
	Fired bool

	reqSeen  uint64
	respSeen uint64
}

// BindDelay supplies the event queue and injector a DelayResp fault needs to
// re-deliver the held response.
func (t *PacketFaultTap) BindDelay(q *sim.EventQueue, inj *port.Injector) {
	t.q, t.inj = q, inj
}

// TapReq implements port.LinkTap.
func (t *PacketFaultTap) TapReq(pkt *port.Packet) port.TapAction {
	if t.F.Kind != WritePayloadFlip || !pkt.Cmd.IsWrite() || len(pkt.Data) == 0 {
		return port.TapPass
	}
	if t.reqSeen == t.F.PktIndex && !t.Fired {
		t.flip(pkt)
	}
	t.reqSeen++
	return port.TapPass
}

// TapResp implements port.LinkTap.
func (t *PacketFaultTap) TapResp(pkt *port.Packet) port.TapAction {
	switch t.F.Kind {
	case ReadPayloadFlip:
		if pkt.Cmd != port.ReadResp || len(pkt.Data) == 0 {
			return port.TapPass
		}
		if t.respSeen == t.F.PktIndex && !t.Fired {
			t.flip(pkt)
		}
		t.respSeen++
	case DropResp, DupResp, DelayResp:
		match := t.respSeen == t.F.PktIndex && !t.Fired
		t.respSeen++
		if !match {
			return port.TapPass
		}
		t.Fired = true
		switch t.F.Kind {
		case DropResp:
			return port.TapDrop
		case DupResp:
			return port.TapDup
		case DelayResp:
			if t.q == nil || t.inj == nil {
				return port.TapPass
			}
			held := pkt
			t.q.ScheduleOneShotOwned("guard.delay-resp", t.q.Now()+t.F.Delay,
				t.q.Owner("guard", "delay-resp"), func() {
					t.inj.DeliverResp(held)
				})
			return port.TapDrop
		}
	}
	return port.TapPass
}

// flip XORs the configured bit into the payload, reducing Byte/Bit modulo
// the payload size.
func (t *PacketFaultTap) flip(pkt *port.Packet) {
	pkt.Data[t.F.Byte%len(pkt.Data)] ^= 1 << (t.F.Bit % 8)
	t.Fired = true
}
