package trace

import (
	"testing"

	"gem5rtl/internal/nvdla"
)

func TestBuildStructure(t *testing.T) {
	tr := Build("t", []Layer{{
		InputAddr: 0x1000, WeightAddr: 0x2000, OutputAddr: 0x3000,
		InBytes: 4096, WtBytes: 2048, OutBytes: 1024,
		TileBytes: 2048, CyclesPerTile: 10,
	}})
	if tr.TotalReadBytes != 6144 || tr.TotalWriteBytes != 1024 {
		t.Fatalf("totals %d/%d", tr.TotalReadBytes, tr.TotalWriteBytes)
	}
	// 3 tiles x 10 cycles.
	if tr.ComputeCycles != 30 {
		t.Fatalf("compute cycles %d", tr.ComputeCycles)
	}
	// Last two ops are Start + WaitIRQ.
	n := len(tr.Ops)
	if tr.Ops[n-2].Kind != OpStart || tr.Ops[n-1].Kind != OpWaitIRQ {
		t.Fatal("trace does not end with start/wait")
	}
	// Preloads precede register writes.
	if tr.Ops[0].Kind != OpLoadMem {
		t.Fatal("trace does not start with memory preload")
	}
	// The register sequence includes a layer commit.
	committed := false
	for _, op := range tr.Ops {
		if op.Kind == OpWriteReg && op.Addr == nvdla.RegLayerCommit {
			committed = true
		}
	}
	if !committed {
		t.Fatal("no layer commit in register sequence")
	}
}

func TestByNameAndScaled(t *testing.T) {
	for _, name := range []string{"sanity3", "googlenet"} {
		full, err := ByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := Scaled(name, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if scaled.TotalReadBytes >= full.TotalReadBytes {
			t.Fatalf("%s: scaling did not shrink reads (%d vs %d)",
				name, scaled.TotalReadBytes, full.TotalReadBytes)
		}
		// Footprint shrinks roughly by the scale factor.
		ratio := float64(full.TotalReadBytes) / float64(scaled.TotalReadBytes)
		if ratio < 4 || ratio > 16 {
			t.Fatalf("%s: scale ratio %.1f out of range", name, ratio)
		}
	}
	if _, err := ByName("alexnet", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDemandCharacterisation(t *testing.T) {
	// The paper's characterisation: sanity3 is memory-intensive (higher
	// bandwidth demand) than the compute-heavier GoogleNet conv.
	s := sanity3Layers(0)[0].Demand()
	g := googleNetLayers(0)[0].Demand()
	if s <= g {
		t.Fatalf("sanity3 demand %.1f GB/s not above googlenet %.1f GB/s", s, g)
	}
	// Both exceed one DDR4 channel (18.75 GB/s) — the Figure 6/7 premise.
	if g < 18.75 {
		t.Fatalf("googlenet demand %.1f GB/s below one DDR4 channel", g)
	}
	// And sanity3 stays below two channels, so DDR4-2ch can approach 1.0.
	if s > 37.5 {
		t.Fatalf("sanity3 demand %.1f GB/s above two DDR4 channels", s)
	}
}

func TestRunStandaloneCompletes(t *testing.T) {
	tr, err := Scaled("sanity3", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d := RunStandalone(tr); d <= 0 {
		t.Fatalf("standalone run took %v", d)
	}
}

func TestPatternDeterministic(t *testing.T) {
	a := pattern(64, 3)
	b := pattern(64, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	c := pattern(64, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical patterns")
	}
}
