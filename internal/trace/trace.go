// Package trace defines gem5rtl's NVDLA workload traces: the stand-in for
// NVIDIA's compiled register/memory traces (sanity3, GoogleNet) that the
// paper's host application loads into main memory before starting the
// accelerator. A trace is a memory preload (weights/activations) plus a
// sequence of CSB register writes describing the layers to execute, ending
// with a start command — structurally the same recipe as the nvdla_hw
// trace-player format, with synthetic data.
package trace

import (
	"fmt"

	"gem5rtl/internal/nvdla"
)

// Op is one trace operation.
type Op struct {
	Kind OpKind
	Addr uint64
	Val  uint32
	Data []byte
}

// OpKind enumerates trace operations.
type OpKind int

// Trace operation kinds.
const (
	// OpWriteReg writes a CSB register (Addr, Val).
	OpWriteReg OpKind = iota
	// OpLoadMem preloads memory at Addr with Data.
	OpLoadMem
	// OpStart writes the CSB start bit and begins execution.
	OpStart
	// OpWaitIRQ blocks the host until the accelerator interrupt.
	OpWaitIRQ
)

// Trace is a loadable NVDLA workload.
type Trace struct {
	Name string
	Ops  []Op
	// TotalReadBytes/TotalWriteBytes summarise the memory footprint (for
	// reports and demand calculations).
	TotalReadBytes  uint64
	TotalWriteBytes uint64
	// ComputeCycles is the pure-compute lower bound in accelerator cycles.
	ComputeCycles uint64
}

// Layer describes one convolution layer in accelerator terms.
type Layer struct {
	InputAddr  uint64
	WeightAddr uint64
	OutputAddr uint64
	InBytes    uint32
	WtBytes    uint32
	OutBytes   uint32
	// TileBytes is the input+weight working set fetched per tile.
	TileBytes uint32
	// CyclesPerTile is the MAC-array occupancy per tile.
	CyclesPerTile uint32
}

// Demand returns the layer's memory bandwidth demand in GB/s at a 1 GHz
// accelerator clock (bytes moved per compute nanosecond).
func (l Layer) Demand() float64 {
	tiles := float64(l.InBytes+l.WtBytes) / float64(l.TileBytes)
	totalCycles := tiles * float64(l.CyclesPerTile)
	totalBytes := float64(l.InBytes + l.WtBytes + l.OutBytes)
	return totalBytes / totalCycles // bytes per ns == GB/s
}

// Build assembles a trace from layers: preloads input/weight regions with a
// deterministic pattern and emits the CSB programming sequence.
func Build(name string, layers []Layer) *Trace {
	t := &Trace{Name: name}
	for i, l := range layers {
		t.Ops = append(t.Ops,
			Op{Kind: OpLoadMem, Addr: l.InputAddr, Data: pattern(int(l.InBytes), byte(0x10+i))},
			Op{Kind: OpLoadMem, Addr: l.WeightAddr, Data: pattern(int(l.WtBytes), byte(0x80+i))},
		)
	}
	for _, l := range layers {
		t.Ops = append(t.Ops,
			regw(nvdla.RegInAddrLo, uint32(l.InputAddr)),
			regw(nvdla.RegInAddrHi, uint32(l.InputAddr>>32)),
			regw(nvdla.RegWtAddrLo, uint32(l.WeightAddr)),
			regw(nvdla.RegWtAddrHi, uint32(l.WeightAddr>>32)),
			regw(nvdla.RegOutAddrLo, uint32(l.OutputAddr)),
			regw(nvdla.RegOutAddrHi, uint32(l.OutputAddr>>32)),
			regw(nvdla.RegInBytes, l.InBytes),
			regw(nvdla.RegWtBytes, l.WtBytes),
			regw(nvdla.RegOutBytes, l.OutBytes),
			regw(nvdla.RegTileBytes, l.TileBytes),
			regw(nvdla.RegCyclesPerTile, l.CyclesPerTile),
			regw(nvdla.RegLayerCommit, 1),
		)
		t.TotalReadBytes += uint64(l.InBytes + l.WtBytes)
		t.TotalWriteBytes += uint64(l.OutBytes)
		tiles := (uint64(l.InBytes+l.WtBytes) + uint64(l.TileBytes) - 1) / uint64(l.TileBytes)
		t.ComputeCycles += tiles * uint64(l.CyclesPerTile)
	}
	t.Ops = append(t.Ops, Op{Kind: OpStart}, Op{Kind: OpWaitIRQ})
	return t
}

func regw(addr uint64, val uint32) Op { return Op{Kind: OpWriteReg, Addr: addr, Val: val} }

// pattern fills n bytes with the affine byte recurrence v' = 31v + 7 from
// seed. The map is a permutation of Z/256, so the sequence is purely cyclic
// with period at most 256: generate one period, then extend it with
// doubling copies (memmove speed) instead of the scalar recurrence —
// multi-MiB workload payloads otherwise dominate sweep build time.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	v := seed
	period := 0
	for i := range b {
		b[i] = v
		v = v*31 + 7
		if v == seed {
			period = i + 1
			break
		}
	}
	for filled := period; filled > 0 && filled < n; filled *= 2 {
		copy(b[filled:], b[:filled])
	}
	return b
}

// Sanity3 models the paper's small, memory-intensive convolution (§5.2.2):
// low arithmetic intensity, so performance tracks memory bandwidth. The
// aggregate demand is ~29 GB/s per accelerator — above one DDR4 channel,
// below two — reproducing Figure 7's separations. base offsets each
// accelerator instance into a private address region.
func Sanity3(base uint64) *Trace {
	return Build("sanity3", sanity3Layers(base))
}

func sanity3Layers(base uint64) []Layer {
	const tile = 8192
	return []Layer{{
		InputAddr:  base + 0x0000_0000,
		WeightAddr: base + 0x0100_0000,
		OutputAddr: base + 0x0200_0000,
		InBytes:    1 << 21, // 2 MiB activations
		WtBytes:    1 << 19, // 512 KiB weights
		OutBytes:   1 << 19,
		TileBytes:  tile,
		// 8 KiB per tile / 280 cycles ≈ 29 GB/s read demand.
		CyclesPerTile: 280,
	}}
}

// GoogleNet models the second convolution of the GoogleNet pipeline (3x3
// filters, more computation per byte): demand ~22 GB/s per accelerator, so a
// single instance runs near-ideal on everything but DDR4-1ch, two instances
// need DDR4-4ch, and four exceed DDR4 entirely — Figure 6's shapes.
func GoogleNet(base uint64) *Trace {
	return Build("googlenet", googleNetLayers(base))
}

func googleNetLayers(base uint64) []Layer {
	const tile = 8192
	mk := func(i uint64) Layer {
		return Layer{
			InputAddr:  base + i*0x0400_0000,
			WeightAddr: base + i*0x0400_0000 + 0x0100_0000,
			OutputAddr: base + i*0x0400_0000 + 0x0200_0000,
			InBytes:    1 << 21,
			WtBytes:    1 << 20,
			OutBytes:   1 << 20,
			TileBytes:  tile,
			// 8 KiB per tile / 360 cycles ≈ 22.8 GB/s read demand.
			CyclesPerTile: 360,
		}
	}
	return []Layer{mk(0), mk(1)}
}

// ByName resolves the evaluation workload names.
func ByName(name string, base uint64) (*Trace, error) {
	return Scaled(name, base, 1)
}

// Scaled regenerates a named workload with every layer footprint divided by
// scale (>=1). Tile size and per-tile compute are unchanged, so arithmetic
// intensity — and therefore the bandwidth-demand shapes of the DSE — is
// preserved while runs shrink proportionally.
func Scaled(name string, base uint64, scale int) (*Trace, error) {
	if scale < 1 {
		scale = 1
	}
	var t *Trace
	switch name {
	case "sanity3":
		t = Sanity3(base)
	case "googlenet":
		t = GoogleNet(base)
	default:
		return nil, fmt.Errorf("trace: unknown workload %q (want sanity3 or googlenet)", name)
	}
	if scale == 1 {
		return t, nil
	}
	layers := layerSpecs[name](base)
	for i := range layers {
		layers[i].InBytes = roundTile(layers[i].InBytes/uint32(scale), layers[i].TileBytes)
		layers[i].WtBytes = roundTile(layers[i].WtBytes/uint32(scale), layers[i].TileBytes/2)
		layers[i].OutBytes = layers[i].OutBytes / uint32(scale) / 64 * 64
	}
	return Build(name, layers), nil
}

// roundTile keeps a scaled size a positive multiple of 64 bytes.
func roundTile(n, minN uint32) uint32 {
	if n < 64 {
		n = 64
	}
	if n < minN {
		n = minN
	}
	return n / 64 * 64
}

// layerSpecs maps workload names to their layer generators.
var layerSpecs = map[string]func(base uint64) []Layer{
	"sanity3":   sanity3Layers,
	"googlenet": googleNetLayers,
}
