package trace

import (
	"time"

	"gem5rtl/internal/nvdla"
	"gem5rtl/internal/rtlobject"
)

// RunStandalone executes a trace against a bare accelerator wrapper with a
// zero-latency memory loop — the equivalent of the paper's standalone
// Verilator simulation using NVIDIA's bundled nvdla.cpp testbench, which
// "reads the trace directly" with no SoC, no trace-into-memory load phase
// and no timing model around it. It returns the host wall-clock time, the
// Table 3 normalisation baseline.
func RunStandalone(t *Trace) time.Duration {
	dla := nvdla.New(nvdla.DefaultConfig("standalone"))
	start := time.Now()
	for _, op := range t.Ops {
		switch op.Kind {
		case OpWriteReg:
			dla.WriteReg(op.Addr, op.Val)
		case OpStart:
			dla.WriteReg(nvdla.RegCtrl, 1)
		case OpLoadMem:
			// The standalone testbench serves reads straight from the trace
			// file; there is nothing to preload.
		}
	}
	in := &rtlobject.Input{}
	for !dla.Done() {
		out := dla.Tick(in)
		in = &rtlobject.Input{}
		for _, req := range out.MemRequests {
			resp := rtlobject.MemResponse{ID: req.ID, Write: req.Write}
			if !req.Write {
				resp.Data = make([]byte, req.Size)
			}
			in.MemResponses = append(in.MemResponses, resp)
		}
	}
	return time.Since(start)
}
