package trace

import (
	"context"
	"time"

	"gem5rtl/internal/nvdla"
	"gem5rtl/internal/rtlobject"
)

// standaloneCtxCheckEvery bounds how many accelerator cycles run between
// context checks in the standalone tick loop. Checking every 4096 cycles
// keeps cancellation latency in the microsecond range at a negligible cost.
const standaloneCtxCheckEvery = 4096

// RunStandaloneCtx executes a trace against a bare accelerator wrapper with
// a zero-latency memory loop — the equivalent of the paper's standalone
// Verilator simulation using NVIDIA's bundled nvdla.cpp testbench, which
// "reads the trace directly" with no SoC, no trace-into-memory load phase
// and no timing model around it. It returns the host wall-clock time, the
// Table 3 normalisation baseline. Cancelling ctx aborts the tick loop and
// returns ctx.Err().
func RunStandaloneCtx(ctx context.Context, t *Trace) (time.Duration, error) {
	dla := nvdla.New(nvdla.DefaultConfig("standalone"))
	start := time.Now()
	for _, op := range t.Ops {
		switch op.Kind {
		case OpWriteReg:
			dla.WriteReg(op.Addr, op.Val)
		case OpStart:
			dla.WriteReg(nvdla.RegCtrl, 1)
		case OpLoadMem:
			// The standalone testbench serves reads straight from the trace
			// file; there is nothing to preload.
		}
	}
	in := &rtlobject.Input{}
	for cycle := 0; !dla.Done(); cycle++ {
		if cycle%standaloneCtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return time.Since(start), err
			}
		}
		out := dla.Tick(in)
		in = &rtlobject.Input{}
		for _, req := range out.MemRequests {
			resp := rtlobject.MemResponse{ID: req.ID, Write: req.Write}
			if !req.Write {
				resp.Data = make([]byte, req.Size)
			}
			in.MemResponses = append(in.MemResponses, resp)
		}
	}
	return time.Since(start), nil
}

// RunStandalone is RunStandaloneCtx without cancellation.
//
// Deprecated: use RunStandaloneCtx.
func RunStandalone(t *Trace) time.Duration {
	d, _ := RunStandaloneCtx(context.Background(), t)
	return d
}
