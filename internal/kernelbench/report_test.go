package kernelbench

import (
	"strings"
	"testing"
)

func baselineReport() Report {
	return Report{
		CalendarSpeedup:  4.0,
		RTLSpeedup:       2.5,
		SelfProfOverhead: 1.05,
		Results: []Result{
			{Name: "queue/calendar", AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "queue/profiled", AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "sweep/cold", AllocsPerOp: 100_000, BytesPerOp: 50_000_000},
		},
	}
}

// problemsContaining filters Compare output to messages mentioning substr.
func problemsContaining(problems []string, substr string) []string {
	var out []string
	for _, p := range problems {
		if strings.Contains(p, substr) {
			out = append(out, p)
		}
	}
	return out
}

func TestCompareCleanPass(t *testing.T) {
	base := baselineReport()
	if problems := Compare(base, base, 0.10); len(problems) != 0 {
		t.Fatalf("identical reports should compare clean: %v", problems)
	}
}

func TestCompareGatesRatios(t *testing.T) {
	base := baselineReport()

	slow := base
	slow.CalendarSpeedup = 3.0 // below 4.0 - 10%
	if p := problemsContaining(Compare(slow, base, 0.10), "calendar speedup"); len(p) != 1 {
		t.Errorf("calendar speedup fall not flagged: %v", Compare(slow, base, 0.10))
	}

	heavy := base
	heavy.SelfProfOverhead = 1.30 // above both 1.05+10% and the 1.20 noise floor
	if p := problemsContaining(Compare(heavy, base, 0.10), "selfprof overhead"); len(p) != 1 {
		t.Errorf("selfprof overhead climb not flagged: %v", Compare(heavy, base, 0.10))
	}

	wobble := base
	wobble.SelfProfOverhead = 1.18 // above 1.05+10% but inside the noise floor
	if problems := Compare(wobble, base, 0.10); len(problems) != 0 {
		t.Errorf("within-noise-floor overhead flagged: %v", problems)
	}

	// Within threshold in the harmless direction: a *lower* overhead and a
	// *higher* speedup must never fail.
	better := base
	better.CalendarSpeedup = 9.0
	better.SelfProfOverhead = 1.0
	if problems := Compare(better, base, 0.10); len(problems) != 0 {
		t.Errorf("improvements flagged as regressions: %v", problems)
	}
}

func TestCompareGatesNameSetBothWays(t *testing.T) {
	base := baselineReport()

	extra := base
	extra.Results = append([]Result{}, base.Results...)
	extra.Results = append(extra.Results, Result{Name: "queue/new"})
	if p := problemsContaining(Compare(extra, base, 0.10), "missing from baseline"); len(p) != 1 {
		t.Errorf("new benchmark not flagged: %v", Compare(extra, base, 0.10))
	}

	missing := base
	missing.Results = base.Results[:2]
	if p := problemsContaining(Compare(missing, base, 0.10), "not measured"); len(p) != 1 {
		t.Errorf("dropped benchmark not flagged: %v", Compare(missing, base, 0.10))
	}
}

func TestCompareGatesAllocGrowth(t *testing.T) {
	base := baselineReport()
	grown := base
	grown.Results = append([]Result{}, base.Results...)
	grown.Results[2].AllocsPerOp = 150_000 // +50% over sweep/cold's 100k
	problems := Compare(grown, base, 0.10)
	if p := problemsContaining(problems, "allocs/op"); len(p) != 1 {
		t.Errorf("alloc growth not flagged: %v", problems)
	}
	// The absolute floor tolerates a 0 -> 4 blip on tiny benchmarks.
	blip := base
	blip.Results = append([]Result{}, base.Results...)
	blip.Results[0].AllocsPerOp = 4
	if problems := Compare(blip, base, 0.10); len(problems) != 0 {
		t.Errorf("within-floor blip flagged: %v", problems)
	}
}
