package kernelbench

import "testing"

// BenchmarkKernel runs the shared kernel suite under `go test -bench`:
//
//	go test -bench BenchmarkKernel -benchmem ./internal/kernelbench
//
// cmd/kernelbench runs the identical bodies and emits BENCH_kernel.json.
func BenchmarkKernel(b *testing.B) {
	for _, bench := range Suite() {
		b.Run(bench.Name, bench.Run)
	}
}
