// Package kernelbench is the repeatable event-kernel benchmark suite behind
// `make bench` and the CI benchmark job. One set of benchmark bodies is
// shared by two entry points: the `go test -bench BenchmarkKernel` wrapper
// (interactive profiling) and cmd/kernelbench (which runs the suite via
// testing.Benchmark and emits/compares the BENCH_kernel.json baseline).
//
// The suite has three tiers:
//
//   - queue/* — event-queue microbenchmarks, run on both the calendar
//     queue and the reference binary heap so their ratio (the calendar
//     speedup) is a machine-independent quantity; queue/profiled repeats
//     the calendar run with the self-profiler attached — a worst-case
//     bound on the dispatch-boundary hook, since the churn benchmark's
//     event bodies do no work of their own;
//   - packet/pool — the pooled packet fast path;
//   - rtl/* — the PMU RTL model ticked under the closure reference engine
//     and the optimizing bytecode engine, so their ratio (the RTL compile
//     speedup) is a machine-independent quantity;
//   - sweep/* — the 12-config sanity3 DSE grid of BenchmarkSweep, cold,
//     warm-start and self-profiled, exercising the whole simulator;
//     MeasureSelfProfOverhead separately derives the selfprof overhead
//     (gated in CI) from drift-cancelling alternating passes, holding the
//     profiler to its <5% whole-run budget;
//   - psim/* — one multi-accelerator point (4 NVDLAs, DDR4-2ch) run serial
//     and under the bulk-synchronous sharded engine at 2 and 4 shards, so
//     serial/shards4 (the psim speedup) is a machine-relative quantity;
//     results are bit-identical across the three rows by construction
//     (DESIGN.md §9), only wall time may differ.
//
// PERFORMANCE.md documents how to run the suite and how the JSON baseline
// is compared.
package kernelbench

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
)

// Bench is one suite entry.
type Bench struct {
	// Name identifies the benchmark in BENCH_kernel.json ("queue/calendar").
	Name string
	// Run is the standard benchmark body.
	Run func(b *testing.B)
}

// Suite returns the full kernel benchmark suite in a fixed order.
func Suite() []Bench {
	return []Bench{
		{"queue/calendar", func(b *testing.B) { benchQueueChurn(b, false, false) }},
		{"queue/reference", func(b *testing.B) { benchQueueChurn(b, true, false) }},
		{"queue/profiled", func(b *testing.B) { benchQueueChurn(b, false, true) }},
		{"queue/oneshot", benchOneShot},
		{"packet/pool", benchPacketPool},
		{"rtl/closure", func(b *testing.B) { benchRTL(b, rtl.EngineClosure) }},
		{"rtl/bytecode", func(b *testing.B) { benchRTL(b, rtl.EngineBytecode) }},
		{"sweep/cold", func(b *testing.B) { benchSweep(b, false, false) }},
		{"sweep/warm", func(b *testing.B) { benchSweep(b, true, false) }},
		{"sweep/profiled", func(b *testing.B) { benchSweep(b, false, true) }},
		{"psim/serial", func(b *testing.B) { benchPsim(b, 1) }},
		{"psim/shards2", func(b *testing.B) { benchPsim(b, 2) }},
		{"psim/shards4", func(b *testing.B) { benchPsim(b, 4) }},
	}
}

// benchQueueChurn measures steady-state Schedule/dispatch throughput on a
// mixed event population: 64 near-future tickers at coprime clock-like
// periods (the common case: every component reschedules within the calendar
// window) plus 4 far tickers that land in the spill heap each round. One op
// = one event dispatch. Every event carries an owner tag (tagging is always
// on in real components), so the profiled row differs from queue/calendar by
// exactly the attached profiler — their ns/op ratio is the dispatch-hook
// overhead.
func benchQueueChurn(b *testing.B, reference, profiled bool) {
	var q *sim.EventQueue
	if reference {
		q = sim.NewReferenceEventQueue()
	} else {
		q = sim.NewEventQueue()
	}
	if profiled {
		q.AttachProfiler(sim.DefaultProfileEvery)
	}
	periods := []sim.Tick{500, 625, 750, 1000, 1250, 2000, 3125, 10000}
	var events []*sim.Event
	for i := 0; i < 64; i++ {
		i := i
		p := periods[i%len(periods)]
		owner := q.Owner(fmt.Sprintf("bench%d", i%8), "tick")
		var ev *sim.Event
		ev = sim.NewEvent(fmt.Sprintf("tick%d", i), func() {
			q.Schedule(ev, q.Now()+p)
		}).SetOwner(owner)
		events = append(events, ev)
		q.Schedule(ev, sim.Tick(1+i))
	}
	for i := 0; i < 4; i++ {
		i := i
		far := sim.Tick(100_000 + 7_000*i) // beyond the calendar window
		var ev *sim.Event
		ev = sim.NewEvent(fmt.Sprintf("far%d", i), func() {
			q.Schedule(ev, q.Now()+far)
		})
		events = append(events, ev)
		q.Schedule(ev, far)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
	b.StopTimer()
	for _, ev := range events {
		q.Deschedule(ev)
	}
}

// benchOneShot measures the pooled fire-and-forget path: schedule one
// recycled one-shot and dispatch it. Steady state must not allocate.
func benchOneShot(b *testing.B) {
	q := sim.NewEventQueue()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScheduleOneShot("os", q.Now()+10, fn)
		q.Step()
	}
}

// benchPacketPool measures the pooled packet round trip the memory system
// performs per access: Get, materialise a response payload, Release.
func benchPacketPool(b *testing.B) {
	var pool port.PacketPool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := pool.GetRead(0x1000, 64)
		pkt.MakeResponse()
		pkt.AllocateData()
		pkt.Release()
	}
}

// benchRTL measures the RTL hot path — one full PMU model clock cycle under
// the given engine — on the duty cycle the SoC actually presents: the PMU is
// clocked every cycle, but commit/miss event pulses arrive in bursts (one
// active cycle in eight here) with idle cycles between them. One op = one
// Tick. Both engine rows run the identical stimulus, so their ns/op ratio —
// the RTL compile speedup — measures how the engines split the same work:
// the closure engine re-evaluates the whole model every cycle while the
// bytecode engine's dirty-set gating elides the quiet cycles' evaluations.
// Steady state must not allocate on either engine.
func benchRTL(b *testing.B, engine rtl.Engine) {
	m, err := pmu.CompileModelEngine(pmu.NumCounters, engine)
	if err != nil {
		b.Fatal(err)
	}
	// Enable every event line through the AXI port (one configuration
	// write), then idle the port for the timed loop.
	m.SetInput("awvalid", 1)
	m.SetInput("awaddr", pmu.RegEnable)
	m.SetInput("wdata", (1<<6)-1)
	m.Tick()
	m.SetInput("awvalid", 0)
	events := m.InputID("events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ev uint64
		if i&7 == 0 {
			ev = uint64(i>>3)&0x3f | 1 // commit burst; bit 0 always pulses
		}
		m.SetInputID(events, ev)
		m.Tick()
	}
}

// MeasureSelfProfOverhead times alternating unprofiled/profiled sequential
// passes over the 12-config DSE grid and returns the median profiled/cold
// wall-time ratio (1.00 = free). Alternating within each pair — rather than
// timing all cold passes and then all profiled passes, as the benchmark
// suite's independent rows do — cancels slow machine drift, which on a busy
// host is larger than the profiler's own cost; the median over pairs then
// discards outlier passes. One warm-up pass runs untimed first so lazy
// construction caches don't land in the first pair.
func MeasureSelfProfOverhead(pairs int, logf func(format string, args ...any)) float64 {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	specs := sweepSpecs()
	run := func(profiled bool) (float64, error) {
		r := experiments.Runner{Workers: 1}
		if profiled {
			r.SelfProfile = sim.DefaultProfileEvery
		}
		start := time.Now()
		results, err := r.Sweep(context.Background(), specs)
		if err != nil {
			return 0, err
		}
		for _, res := range results {
			if res.Err != nil {
				return 0, fmt.Errorf("%v: %w", res.Spec, res.Err)
			}
		}
		return float64(time.Since(start).Nanoseconds()), nil
	}
	if _, err := run(false); err != nil {
		logf("selfprof overhead measurement failed: %v", err)
		return 0
	}
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		cold, err := run(false)
		if err != nil || cold <= 0 {
			logf("selfprof overhead measurement failed: %v", err)
			return 0
		}
		prof, err := run(true)
		if err != nil {
			logf("selfprof overhead measurement failed: %v", err)
			return 0
		}
		ratios = append(ratios, prof/cold)
		logf("  selfprof pair %d/%d: %.3fx", i+1, pairs, prof/cold)
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// sweepSpecs is the 12-config sanity3 grid of BenchmarkSweep.
func sweepSpecs() []experiments.RunSpec {
	p := experiments.DSEParams{Scale: 32, Limit: 8 * sim.Second}
	var specs []experiments.RunSpec
	for _, inflight := range []int{1, 16, 64, 240} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			specs = append(specs, p.Spec("sanity3", 1, mem, inflight))
		}
	}
	return specs
}

// psimSpec is the multi-accelerator point of the psim/* rows: enough
// concurrent NVDLA work that the non-memory shards hold real computation.
// The same configuration backs TestShardedRunAPI's bit-identity check.
func psimSpec(shards int) experiments.RunSpec {
	p := experiments.DSEParams{Scale: 32, Limit: 8 * sim.Second, Shards: shards}
	return p.Spec("sanity3", 4, "DDR4-2ch", 64)
}

// benchPsim measures one full multi-accelerator run under the given shard
// count (1 = the serial engine). One op = one complete simulation. The
// serial/shards4 ns/op ratio is the psim speedup recorded (and gated) in
// BENCH_kernel.json on hosts with enough cores to host the shards.
func benchPsim(b *testing.B, shards int) {
	spec := psimSpec(shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep measures one sequential pass over the 12-point DSE grid — the
// macro benchmark the ISSUE acceptance targets. warm restores each point
// from a 2µs checkpoint instead of simulating the prefix; profiled attaches
// the self-profiler to every point, so the profiled/cold ratio is the
// whole-simulator profiling overhead on realistic work (the gated
// selfprof_overhead column, budget <5%).
func benchSweep(b *testing.B, warm, profiled bool) {
	specs := sweepSpecs()
	r := experiments.Runner{Workers: 1}
	if profiled {
		r.SelfProfile = sim.DefaultProfileEvery
	}
	if warm {
		r.Options = []experiments.Option{
			experiments.WithWarmStart(2*sim.Microsecond, experiments.NewCheckpointCache("")),
		}
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err) // populate the cache outside the timing loop
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := r.Sweep(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatalf("%v: %v", res.Spec, res.Err)
			}
		}
	}
}
