package kernelbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// Result captures one benchmark's measurements for BENCH_kernel.json.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_kernel.json document. NsPerOp values are specific to
// the machine that produced them; the comparison below therefore checks the
// machine-independent columns (allocs/op, B/op) and the machine-relative
// CalendarSpeedup, never raw wall time.
type Report struct {
	// CalendarSpeedup is queue/reference ns/op divided by queue/calendar
	// ns/op from the same run — the event-kernel speedup, computed on one
	// machine and therefore comparable across machines.
	CalendarSpeedup float64 `json:"calendar_speedup"`
	// RTLSpeedup is rtl/closure ns/op divided by rtl/bytecode ns/op from
	// the same run — the RTL compiler's speedup over the closure reference
	// engine, machine-relative like CalendarSpeedup.
	RTLSpeedup float64 `json:"rtl_compile_speedup"`
	// SelfProfOverhead is the whole-simulator cost of attaching the
	// self-profiler to every point of the 12-config DSE grid, as a
	// machine-relative wall-time ratio (1.00 = free), measured by
	// MeasureSelfProfOverhead's drift-cancelling paired passes rather than
	// by dividing the independent sweep/profiled and sweep/cold rows. The
	// budget is <5% (see sim.DefaultProfileEvery); Compare gates growth
	// beyond the committed baseline. queue/profiled vs queue/calendar
	// bounds the same hook from above on empty event bodies.
	SelfProfOverhead float64 `json:"selfprof_overhead"`
	// PsimSpeedup is psim/serial ns/op divided by psim/shards4 ns/op from
	// the same run — the wall-time gain of the bulk-synchronous sharded
	// engine on the multi-accelerator point, machine-relative like
	// CalendarSpeedup. It is recorded only on hosts with at least
	// PsimSpeedupMinCPUs cores (0 = not measured on this host): shards are
	// goroutines that need real cores to overlap, so the ratio is
	// meaningless on a smaller machine. When measured, Compare holds it to
	// the absolute PsimSpeedupFloor.
	PsimSpeedup float64  `json:"psim_speedup"`
	Results     []Result `json:"results"`
}

// PsimSpeedupFloor is the acceptance floor for the sharded engine: a 4-shard
// multi-accelerator run must be at least this much faster than serial on a
// host with PsimSpeedupMinCPUs+ cores.
const PsimSpeedupFloor = 1.5

// PsimSpeedupMinCPUs is the smallest host that can meaningfully measure (and
// therefore gate) PsimSpeedup: the 4-shard row needs four runnable shard
// goroutines plus the coordinator.
const PsimSpeedupMinCPUs = 4

// Collect runs the whole suite through testing.Benchmark and assembles the
// report. Progress lines go through logf (may be nil).
func Collect(logf func(format string, args ...any)) Report {
	return CollectOnly("", logf)
}

// CollectOnly runs the suite rows whose names contain substr ("" = all) —
// the focused-gate entry behind cmd/kernelbench -only. Derived ratios are
// computed when their input rows were measured; the selfprof overhead
// measurement (whole-grid paired passes) runs only on an unfiltered
// collection. Compare a filtered report against a baseline narrowed by
// RestrictBaseline, never against the full committed document.
func CollectOnly(substr string, logf func(format string, args ...any)) Report {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rep Report
	ns := map[string]float64{}
	for _, bench := range Suite() {
		if substr != "" && !strings.Contains(bench.Name, substr) {
			continue
		}
		logf("running %s ...", bench.Name)
		r := testing.Benchmark(bench.Run)
		res := Result{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		ns[res.Name] = res.NsPerOp
		rep.Results = append(rep.Results, res)
		logf("  %12.1f ns/op  %8d allocs/op  %10d B/op", res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if cal, ref := ns["queue/calendar"], ns["queue/reference"]; cal > 0 {
		rep.CalendarSpeedup = ref / cal
	}
	if fast, slow := ns["rtl/bytecode"], ns["rtl/closure"]; fast > 0 {
		rep.RTLSpeedup = slow / fast
	}
	if runtime.NumCPU() >= PsimSpeedupMinCPUs {
		if ser, par := ns["psim/serial"], ns["psim/shards4"]; par > 0 {
			rep.PsimSpeedup = ser / par
		}
	} else {
		logf("host has %d CPUs (< %d): psim_speedup not measured", runtime.NumCPU(), PsimSpeedupMinCPUs)
	}
	if substr == "" {
		logf("measuring selfprof overhead (paired passes) ...")
		rep.SelfProfOverhead = MeasureSelfProfOverhead(5, logf)
	}
	return rep
}

// RestrictBaseline narrows a committed baseline to what a filtered run
// (CollectOnly) measured: rows absent from current are dropped, and each
// baseline-relative ratio survives only when its input rows were measured.
// The absolute PsimSpeedup floor is unaffected — Compare applies it to the
// current report alone.
func RestrictBaseline(baseline, current Report) Report {
	cur := map[string]bool{}
	for _, r := range current.Results {
		cur[r.Name] = true
	}
	out := Report{PsimSpeedup: baseline.PsimSpeedup}
	for _, r := range baseline.Results {
		if cur[r.Name] {
			out.Results = append(out.Results, r)
		}
	}
	if cur["queue/calendar"] && cur["queue/reference"] {
		out.CalendarSpeedup = baseline.CalendarSpeedup
	}
	if cur["rtl/closure"] && cur["rtl/bytecode"] {
		out.RTLSpeedup = baseline.RTLSpeedup
	}
	if current.SelfProfOverhead > 0 {
		out.SelfProfOverhead = baseline.SelfProfOverhead
	}
	return out
}

// Marshal renders the report as committed-file JSON.
func (rep Report) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ParseReport reads a BENCH_kernel.json document.
func ParseReport(data []byte) (Report, error) {
	var rep Report
	err := json.Unmarshal(data, &rep)
	return rep, err
}

// Compare checks the current report against a committed baseline and
// returns one message per regression beyond threshold (e.g. 0.10 = 10%).
//
// Compared columns:
//   - allocs/op and B/op per benchmark: machine-independent, must not grow
//     by more than threshold (plus a small absolute floor so a 0→1 alloc
//     blip on a tiny benchmark doesn't fail spuriously);
//   - CalendarSpeedup and RTLSpeedup: same-run ratios, must not fall more
//     than threshold below baseline;
//   - SelfProfOverhead: a same-run ratio where smaller is better, must not
//     climb more than threshold above baseline.
//
// Raw ns/op is informational only — a CI runner is not the machine the
// baseline was measured on.
func Compare(current, baseline Report, threshold float64) []string {
	var problems []string
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	names := make([]string, 0, len(current.Results))
	for _, r := range current.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from baseline (regenerate BENCH_kernel.json)", name))
			continue
		}
		if limit := grownLimit(b.AllocsPerOp, threshold); c.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d (+%d%% limit %d)",
				name, c.AllocsPerOp, b.AllocsPerOp, int(threshold*100), limit))
		}
		if limit := grownLimit(b.BytesPerOp, threshold); c.BytesPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: B/op %d exceeds baseline %d (+%d%% limit %d)",
				name, c.BytesPerOp, b.BytesPerOp, int(threshold*100), limit))
		}
	}
	for _, r := range baseline.Results {
		if _, ok := cur[r.Name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but not measured", r.Name))
		}
	}
	if baseline.CalendarSpeedup > 0 {
		floor := baseline.CalendarSpeedup * (1 - threshold)
		if current.CalendarSpeedup < floor {
			problems = append(problems, fmt.Sprintf(
				"calendar speedup %.2fx fell below baseline %.2fx - %d%% = %.2fx",
				current.CalendarSpeedup, baseline.CalendarSpeedup, int(threshold*100), floor))
		}
	}
	if baseline.RTLSpeedup > 0 {
		floor := baseline.RTLSpeedup * (1 - threshold)
		if current.RTLSpeedup < floor {
			problems = append(problems, fmt.Sprintf(
				"rtl compile speedup %.2fx fell below baseline %.2fx - %d%% = %.2fx",
				current.RTLSpeedup, baseline.RTLSpeedup, int(threshold*100), floor))
		}
	}
	// The psim gate is an absolute floor, not baseline-relative: the
	// acceptance criterion is ">= 1.5x at 4 shards", independent of what an
	// earlier baseline measured. A current report with PsimSpeedup == 0 ran
	// on a host below PsimSpeedupMinCPUs cores and is exempt — the column is
	// machine-guarded, like skipping raw ns/op.
	if current.PsimSpeedup > 0 && current.PsimSpeedup < PsimSpeedupFloor {
		problems = append(problems, fmt.Sprintf(
			"psim speedup %.2fx (serial/shards4) fell below the %.2fx floor",
			current.PsimSpeedup, PsimSpeedupFloor))
	}
	if baseline.SelfProfOverhead > 0 {
		// Even with paired-pass drift cancellation the sweep ratio carries a
		// few percent of host noise, so the ceiling never drops below
		// 1 + 2*threshold: the gate exists to catch the dispatch hook
		// becoming structurally more expensive, not single-percent wobble.
		ceiling := baseline.SelfProfOverhead * (1 + threshold)
		if floor := 1 + 2*threshold; ceiling < floor {
			ceiling = floor
		}
		if current.SelfProfOverhead > ceiling {
			problems = append(problems, fmt.Sprintf(
				"selfprof overhead %.3fx climbed above limit %.3fx (baseline %.3fx, threshold %d%%)",
				current.SelfProfOverhead, ceiling, baseline.SelfProfOverhead, int(threshold*100)))
		}
	}
	return problems
}

// grownLimit is the largest acceptable value for a counter with the given
// baseline: baseline*(1+threshold), but never tighter than baseline+4 so
// near-zero baselines tolerate measurement noise.
func grownLimit(baseline int64, threshold float64) int64 {
	limit := int64(float64(baseline) * (1 + threshold))
	if limit < baseline+4 {
		limit = baseline + 4
	}
	return limit
}
