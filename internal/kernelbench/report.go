package kernelbench

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
)

// Result captures one benchmark's measurements for BENCH_kernel.json.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_kernel.json document. NsPerOp values are specific to
// the machine that produced them; the comparison below therefore checks the
// machine-independent columns (allocs/op, B/op) and the machine-relative
// CalendarSpeedup, never raw wall time.
type Report struct {
	// CalendarSpeedup is queue/reference ns/op divided by queue/calendar
	// ns/op from the same run — the event-kernel speedup, computed on one
	// machine and therefore comparable across machines.
	CalendarSpeedup float64 `json:"calendar_speedup"`
	// RTLSpeedup is rtl/closure ns/op divided by rtl/bytecode ns/op from
	// the same run — the RTL compiler's speedup over the closure reference
	// engine, machine-relative like CalendarSpeedup.
	RTLSpeedup float64 `json:"rtl_compile_speedup"`
	// SelfProfOverhead is the whole-simulator cost of attaching the
	// self-profiler to every point of the 12-config DSE grid, as a
	// machine-relative wall-time ratio (1.00 = free), measured by
	// MeasureSelfProfOverhead's drift-cancelling paired passes rather than
	// by dividing the independent sweep/profiled and sweep/cold rows. The
	// budget is <5% (see sim.DefaultProfileEvery); Compare gates growth
	// beyond the committed baseline. queue/profiled vs queue/calendar
	// bounds the same hook from above on empty event bodies.
	SelfProfOverhead float64  `json:"selfprof_overhead"`
	Results          []Result `json:"results"`
}

// Collect runs the whole suite through testing.Benchmark and assembles the
// report. Progress lines go through logf (may be nil).
func Collect(logf func(format string, args ...any)) Report {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var rep Report
	ns := map[string]float64{}
	for _, bench := range Suite() {
		logf("running %s ...", bench.Name)
		r := testing.Benchmark(bench.Run)
		res := Result{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		ns[res.Name] = res.NsPerOp
		rep.Results = append(rep.Results, res)
		logf("  %12.1f ns/op  %8d allocs/op  %10d B/op", res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if cal, ref := ns["queue/calendar"], ns["queue/reference"]; cal > 0 {
		rep.CalendarSpeedup = ref / cal
	}
	if fast, slow := ns["rtl/bytecode"], ns["rtl/closure"]; fast > 0 {
		rep.RTLSpeedup = slow / fast
	}
	logf("measuring selfprof overhead (paired passes) ...")
	rep.SelfProfOverhead = MeasureSelfProfOverhead(5, logf)
	return rep
}

// Marshal renders the report as committed-file JSON.
func (rep Report) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ParseReport reads a BENCH_kernel.json document.
func ParseReport(data []byte) (Report, error) {
	var rep Report
	err := json.Unmarshal(data, &rep)
	return rep, err
}

// Compare checks the current report against a committed baseline and
// returns one message per regression beyond threshold (e.g. 0.10 = 10%).
//
// Compared columns:
//   - allocs/op and B/op per benchmark: machine-independent, must not grow
//     by more than threshold (plus a small absolute floor so a 0→1 alloc
//     blip on a tiny benchmark doesn't fail spuriously);
//   - CalendarSpeedup and RTLSpeedup: same-run ratios, must not fall more
//     than threshold below baseline;
//   - SelfProfOverhead: a same-run ratio where smaller is better, must not
//     climb more than threshold above baseline.
//
// Raw ns/op is informational only — a CI runner is not the machine the
// baseline was measured on.
func Compare(current, baseline Report, threshold float64) []string {
	var problems []string
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	names := make([]string, 0, len(current.Results))
	for _, r := range current.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from baseline (regenerate BENCH_kernel.json)", name))
			continue
		}
		if limit := grownLimit(b.AllocsPerOp, threshold); c.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d (+%d%% limit %d)",
				name, c.AllocsPerOp, b.AllocsPerOp, int(threshold*100), limit))
		}
		if limit := grownLimit(b.BytesPerOp, threshold); c.BytesPerOp > limit {
			problems = append(problems, fmt.Sprintf("%s: B/op %d exceeds baseline %d (+%d%% limit %d)",
				name, c.BytesPerOp, b.BytesPerOp, int(threshold*100), limit))
		}
	}
	for _, r := range baseline.Results {
		if _, ok := cur[r.Name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but not measured", r.Name))
		}
	}
	if baseline.CalendarSpeedup > 0 {
		floor := baseline.CalendarSpeedup * (1 - threshold)
		if current.CalendarSpeedup < floor {
			problems = append(problems, fmt.Sprintf(
				"calendar speedup %.2fx fell below baseline %.2fx - %d%% = %.2fx",
				current.CalendarSpeedup, baseline.CalendarSpeedup, int(threshold*100), floor))
		}
	}
	if baseline.RTLSpeedup > 0 {
		floor := baseline.RTLSpeedup * (1 - threshold)
		if current.RTLSpeedup < floor {
			problems = append(problems, fmt.Sprintf(
				"rtl compile speedup %.2fx fell below baseline %.2fx - %d%% = %.2fx",
				current.RTLSpeedup, baseline.RTLSpeedup, int(threshold*100), floor))
		}
	}
	if baseline.SelfProfOverhead > 0 {
		// Even with paired-pass drift cancellation the sweep ratio carries a
		// few percent of host noise, so the ceiling never drops below
		// 1 + 2*threshold: the gate exists to catch the dispatch hook
		// becoming structurally more expensive, not single-percent wobble.
		ceiling := baseline.SelfProfOverhead * (1 + threshold)
		if floor := 1 + 2*threshold; ceiling < floor {
			ceiling = floor
		}
		if current.SelfProfOverhead > ceiling {
			problems = append(problems, fmt.Sprintf(
				"selfprof overhead %.3fx climbed above limit %.3fx (baseline %.3fx, threshold %d%%)",
				current.SelfProfOverhead, ceiling, baseline.SelfProfOverhead, int(threshold*100)))
		}
	}
	return problems
}

// grownLimit is the largest acceptable value for a counter with the given
// baseline: baseline*(1+threshold), but never tighter than baseline+4 so
// near-zero baselines tolerate measurement noise.
func grownLimit(baseline int64, threshold float64) int64 {
	limit := int64(float64(baseline) * (1 + threshold))
	if limit < baseline+4 {
		limit = baseline + 4
	}
	return limit
}
