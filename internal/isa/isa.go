// Package isa defines RV-lite, the small RISC-style guest ISA gem5rtl's
// timing cores execute. The paper boots Linux on simulated Armv8 cores; per
// the substitution table in DESIGN.md we instead run statically-linked
// RV-lite programs over a micro-kernel syscall layer (sleep/print/exit),
// which provides exactly the workload phases the PMU experiment needs.
//
// Instructions are fixed 8-byte words: opcode, rd, rs1, rs2 (one byte each)
// followed by a 32-bit little-endian immediate. Registers follow RISC-V
// naming: x0 is hardwired zero, x1/ra is the link register, x2/sp the stack
// pointer, x10-x17/a0-a7 the argument registers.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes.
const (
	OpInvalid Opcode = iota
	// Register-register ALU.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt  // signed set-less-than
	OpSltu // unsigned
	// Register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // rd = imm << 12
	// Memory (rd/rs2 value, rs1 base, imm offset).
	OpLd // 8 bytes
	OpLw // 4 bytes, zero-extended
	OpLb // 1 byte, zero-extended
	OpSd
	OpSw
	OpSb
	// Control flow. Branch/jump immediates are byte offsets from the
	// instruction's own address.
	OpBeq
	OpBne
	OpBlt // signed
	OpBge // signed
	OpBltu
	OpBgeu
	OpJal  // rd = pc+8; pc += imm
	OpJalr // rd = pc+8; pc = rs1 + imm
	// System.
	OpEcall
	OpNop
	opMax
)

// InstBytes is the fixed encoding size.
const InstBytes = 8

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti", OpLui: "lui",
	OpLd: "ld", OpLw: "lw", OpLb: "lb", OpSd: "sd", OpSw: "sw", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr", OpEcall: "ecall", OpNop: "nop",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsLoad reports whether the opcode reads memory.
func (o Opcode) IsLoad() bool { return o == OpLd || o == OpLw || o == OpLb }

// IsStore reports whether the opcode writes memory.
func (o Opcode) IsStore() bool { return o == OpSd || o == OpSw || o == OpSb }

// IsBranch reports whether the opcode is a conditional branch.
func (o Opcode) IsBranch() bool { return o >= OpBeq && o <= OpBgeu }

// MemBytes returns the access width of a load/store opcode.
func (o Opcode) MemBytes() int {
	switch o {
	case OpLd, OpSd:
		return 8
	case OpLw, OpSw:
		return 4
	case OpLb, OpSb:
		return 1
	}
	return 0
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode serialises the instruction into its 8-byte form.
func (i Inst) Encode() [InstBytes]byte {
	var b [InstBytes]byte
	b[0] = byte(i.Op)
	b[1] = i.Rd
	b[2] = i.Rs1
	b[3] = i.Rs2
	binary.LittleEndian.PutUint32(b[4:], uint32(i.Imm))
	return b
}

// Decode parses an 8-byte instruction word.
func Decode(b []byte) (Inst, error) {
	if len(b) < InstBytes {
		return Inst{}, fmt.Errorf("isa: short instruction (%d bytes)", len(b))
	}
	i := Inst{
		Op:  Opcode(b[0]),
		Rd:  b[1],
		Rs1: b[2],
		Rs2: b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if i.Op == OpInvalid || i.Op >= opMax {
		return i, fmt.Errorf("isa: invalid opcode %d", b[0])
	}
	if i.Rd > 31 || i.Rs1 > 31 || i.Rs2 > 31 {
		return i, fmt.Errorf("isa: register out of range in %v", i)
	}
	return i, nil
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch {
	case i.Op == OpNop || i.Op == OpEcall:
		return i.Op.String()
	case i.Op.IsLoad():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsStore():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op.IsBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op == OpJal:
		return fmt.Sprintf("jal x%d, %d", i.Rd, i.Imm)
	case i.Op == OpJalr:
		return fmt.Sprintf("jalr x%d, %d(x%d)", i.Rd, i.Imm, i.Rs1)
	case i.Op == OpLui:
		return fmt.Sprintf("lui x%d, %d", i.Rd, i.Imm)
	case i.Op >= OpAddi && i.Op <= OpSlti:
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Syscall numbers recognised by the micro-kernel (see internal/cpu).
const (
	SysExit     = 93   // a0 = exit code
	SysSleepUs  = 1000 // a0 = microseconds to sleep (the paper's 1 ms sleeps)
	SysPrintInt = 1001 // a0 = integer to print
	SysPrintChr = 1002 // a0 = character to print
	SysCycles   = 1003 // returns current core cycle count in a0
)
