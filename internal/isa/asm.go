package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates RV-lite assembly text into a flat instruction image.
// Syntax: one instruction or label per line; `;` and `#` start comments;
// labels end with a colon. Branch and jal targets are labels (or numeric
// byte offsets); `li`, `mv`, `j`, `ret`, `call`, `bgt`, `ble`, `bgtu`,
// `bleu`, and `beqz`/`bnez` pseudo-instructions are expanded.
func Assemble(src string) ([]byte, error) {
	type pending struct {
		inst  Inst
		label string // branch/jal target to resolve
		line  int
	}
	var prog []pending
	labels := map[string]int{} // label -> instruction index

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				label := strings.TrimSpace(line[:i])
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
				}
				labels[label] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		insts, targets, err := parseLine(line, lineNo+1)
		if err != nil {
			return nil, err
		}
		for k, in := range insts {
			prog = append(prog, pending{inst: in, label: targets[k], line: lineNo + 1})
		}
	}

	out := make([]byte, 0, len(prog)*InstBytes)
	for idx, p := range prog {
		in := p.inst
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("isa: line %d: undefined label %q", p.line, p.label)
			}
			in.Imm = int32((target - idx) * InstBytes)
		}
		enc := in.Encode()
		out = append(out, enc[:]...)
	}
	return out, nil
}

// MustAssemble panics on assembly errors; for embedded guest programs.
func MustAssemble(src string) []byte {
	b, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return b
}

var regAliases = func() map[string]uint8 {
	m := map[string]uint8{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	}
	for i := 0; i <= 7; i++ {
		m[fmt.Sprintf("a%d", i)] = uint8(10 + i)
	}
	for i := 2; i <= 11; i++ {
		m[fmt.Sprintf("s%d", i)] = uint8(16 + i)
	}
	for i := 3; i <= 6; i++ {
		m[fmt.Sprintf("t%d", i)] = uint8(25 + i)
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = uint8(i)
	}
	return m
}()

func parseReg(s string) (uint8, error) {
	if r, ok := regAliases[strings.ToLower(strings.TrimSpace(s))]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

// parseMemOperand parses "off(reg)".
func parseMemOperand(s string) (int32, uint8, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int32(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	return off, r, err
}

var rrOps = map[string]Opcode{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "rem": OpRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "sll": OpSll, "srl": OpSrl,
	"sra": OpSra, "slt": OpSlt, "sltu": OpSltu,
}

var riOps = map[string]Opcode{
	"addi": OpAddi, "andi": OpAndi, "ori": OpOri, "xori": OpXori,
	"slli": OpSlli, "srli": OpSrli, "srai": OpSrai, "slti": OpSlti,
}

var branchOps = map[string]Opcode{
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"bltu": OpBltu, "bgeu": OpBgeu,
}

// parseLine returns the instruction(s) for one line plus, per instruction,
// an optional label to resolve into the immediate.
func parseLine(line string, lineNo int) ([]Inst, []string, error) {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	fail := func(format string, a ...any) ([]Inst, []string, error) {
		return nil, nil, fmt.Errorf("isa: line %d: %s", lineNo, fmt.Sprintf(format, a...))
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("isa: line %d: %s expects %d operands, got %d", lineNo, mnem, n, len(args))
		}
		return nil
	}
	one := func(in Inst) ([]Inst, []string, error) { return []Inst{in}, []string{""}, nil }
	oneL := func(in Inst, label string) ([]Inst, []string, error) {
		return []Inst{in}, []string{label}, nil
	}

	if op, ok := rrOps[mnem]; ok {
		if err := need(3); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		rs1, e2 := parseReg(args[1])
		rs2, e3 := parseReg(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	if op, ok := riOps[mnem]; ok {
		if err := need(3); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		rs1, e2 := parseReg(args[1])
		imm, e3 := parseImm(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	}
	if op, ok := branchOps[mnem]; ok {
		if err := need(3); err != nil {
			return nil, nil, err
		}
		rs1, e1 := parseReg(args[0])
		rs2, e2 := parseReg(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		if imm, err := parseImm(args[2]); err == nil {
			return one(Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
		}
		return oneL(Inst{Op: op, Rs1: rs1, Rs2: rs2}, args[2])
	}
	switch mnem {
	case "nop":
		return one(Inst{Op: OpNop})
	case "ecall":
		return one(Inst{Op: OpEcall})
	case "lui":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		imm, e2 := parseImm(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: OpLui, Rd: rd, Imm: imm})
	case "ld", "lw", "lb", "sd", "sw", "sb":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		r, e1 := parseReg(args[0])
		off, base, e2 := parseMemOperand(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		op := map[string]Opcode{"ld": OpLd, "lw": OpLw, "lb": OpLb,
			"sd": OpSd, "sw": OpSw, "sb": OpSb}[mnem]
		in := Inst{Op: op, Rs1: base, Imm: off}
		if op.IsLoad() {
			in.Rd = r
		} else {
			in.Rs2 = r
		}
		return one(in)
	case "jal":
		switch len(args) {
		case 1: // jal label  (rd = ra)
			return oneL(Inst{Op: OpJal, Rd: 1}, args[0])
		case 2:
			rd, err := parseReg(args[0])
			if err != nil {
				return fail("bad register")
			}
			if imm, err := parseImm(args[1]); err == nil {
				return one(Inst{Op: OpJal, Rd: rd, Imm: imm})
			}
			return oneL(Inst{Op: OpJal, Rd: rd}, args[1])
		}
		return fail("jal expects 1 or 2 operands")
	case "jalr":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		off, base, e2 := parseMemOperand(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: OpJalr, Rd: rd, Rs1: base, Imm: off})
	// Pseudo-instructions.
	case "li":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		imm, e2 := parseImm(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: OpAddi, Rd: rd, Rs1: 0, Imm: imm})
	case "mv":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rd, e1 := parseReg(args[0])
		rs, e2 := parseReg(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		return one(Inst{Op: OpAddi, Rd: rd, Rs1: rs})
	case "j":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		return oneL(Inst{Op: OpJal, Rd: 0}, args[0])
	case "call":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		return oneL(Inst{Op: OpJal, Rd: 1}, args[0])
	case "ret":
		return one(Inst{Op: OpJalr, Rd: 0, Rs1: 1})
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return fail("bad register")
		}
		op := OpBeq
		if mnem == "bnez" {
			op = OpBne
		}
		return oneL(Inst{Op: op, Rs1: rs, Rs2: 0}, args[1])
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, nil, err
		}
		rs1, e1 := parseReg(args[0])
		rs2, e2 := parseReg(args[1])
		if e1 != nil || e2 != nil {
			return fail("bad operands")
		}
		// bgt a,b == blt b,a ; ble a,b == bge b,a
		var op Opcode
		switch mnem {
		case "bgt":
			op = OpBlt
		case "ble":
			op = OpBge
		case "bgtu":
			op = OpBltu
		case "bleu":
			op = OpBgeu
		}
		return oneL(Inst{Op: op, Rs1: rs2, Rs2: rs1}, args[2])
	}
	return fail("unknown mnemonic %q", mnem)
}

// Disassemble renders an instruction image as text, one per line.
func Disassemble(image []byte) (string, error) {
	var sb strings.Builder
	for off := 0; off+InstBytes <= len(image); off += InstBytes {
		in, err := Decode(image[off:])
		if err != nil {
			return sb.String(), fmt.Errorf("isa: at offset %d: %w", off, err)
		}
		fmt.Fprintf(&sb, "%6d: %s\n", off, in)
	}
	return sb.String(), nil
}
