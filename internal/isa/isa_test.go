package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op: Opcode(op%uint8(opMax-1)) + 1,
			Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32,
			Imm: imm,
		}
		enc := in.Encode()
		out, err := Decode(enc[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input accepted")
	}
	bad := Inst{Op: OpAdd, Rd: 40}.Encode()
	if _, err := Decode(bad[:]); err == nil {
		t.Fatal("out-of-range register accepted")
	}
	var zero [InstBytes]byte
	if _, err := Decode(zero[:]); err == nil {
		t.Fatal("opcode 0 accepted")
	}
}

func TestAssembleBasics(t *testing.T) {
	img := MustAssemble(`
start:
    addi x1, x0, 5
    add  x2, x1, x1
    beq  x2, x0, start
    ecall
`)
	if len(img) != 4*InstBytes {
		t.Fatalf("image %d bytes", len(img))
	}
	in, err := Decode(img[2*InstBytes:])
	if err != nil {
		t.Fatal(err)
	}
	// beq back to start: offset = -2 instructions.
	if in.Op != OpBeq || in.Imm != -2*InstBytes {
		t.Fatalf("branch decoded as %v", in)
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	img := MustAssemble(`
main:
    li   a0, 7
    mv   a1, a0
    j    end
    nop
end:
    ret
`)
	first, _ := Decode(img)
	if first.Op != OpAddi || first.Rd != 10 || first.Imm != 7 {
		t.Fatalf("li decoded as %v", first)
	}
	jmp, _ := Decode(img[2*InstBytes:])
	if jmp.Op != OpJal || jmp.Rd != 0 || jmp.Imm != 2*InstBytes {
		t.Fatalf("j decoded as %v", jmp)
	}
	ret, _ := Decode(img[4*InstBytes:])
	if ret.Op != OpJalr || ret.Rs1 != 1 {
		t.Fatalf("ret decoded as %v", ret)
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	img := MustAssemble("main:\n    add sp, ra, t0\n")
	in, _ := Decode(img)
	if in.Rd != 2 || in.Rs1 != 1 || in.Rs2 != 5 {
		t.Fatalf("aliases decoded as %v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undefined-label", "main:\n  j nowhere\n", "undefined label"},
		{"duplicate-label", "a:\na:\n  nop\n", "duplicate label"},
		{"bad-reg", "main:\n  add x99, x0, x0\n", "bad"},
		{"bad-mnemonic", "main:\n  frobnicate x1\n", "unknown mnemonic"},
		{"operand-count", "main:\n  add x1, x2\n", "expects 3 operands"},
		{"bad-mem-operand", "main:\n  ld x1, x2\n", "bad operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestMemOperands(t *testing.T) {
	img := MustAssemble("main:\n  ld x5, -16(sp)\n  sd x6, 24(x7)\n")
	ld, _ := Decode(img)
	if ld.Op != OpLd || ld.Rd != 5 || ld.Rs1 != 2 || ld.Imm != -16 {
		t.Fatalf("ld decoded as %v", ld)
	}
	sd, _ := Decode(img[InstBytes:])
	if sd.Op != OpSd || sd.Rs2 != 6 || sd.Rs1 != 7 || sd.Imm != 24 {
		t.Fatalf("sd decoded as %v", sd)
	}
}

func TestDisassembleStrings(t *testing.T) {
	img := MustAssemble("main:\n  addi x1, x0, 3\n  ld x2, 8(x1)\n  ecall\n")
	text, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"addi x1, x0, 3", "ld x2, 8(x1)", "ecall"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestOpcodeClassification(t *testing.T) {
	if !OpLd.IsLoad() || OpLd.IsStore() || OpLd.MemBytes() != 8 {
		t.Fatal("OpLd misclassified")
	}
	if !OpSb.IsStore() || OpSb.MemBytes() != 1 {
		t.Fatal("OpSb misclassified")
	}
	if !OpBge.IsBranch() || OpJal.IsBranch() {
		t.Fatal("branch classification wrong")
	}
	if OpLw.MemBytes() != 4 || OpAdd.MemBytes() != 0 {
		t.Fatal("MemBytes wrong")
	}
}

func TestBgtBlePseudo(t *testing.T) {
	img := MustAssemble("main:\n  bgt a0, a1, main\n  ble a0, a1, main\n")
	bgt, _ := Decode(img)
	// bgt a0,a1 == blt a1,a0
	if bgt.Op != OpBlt || bgt.Rs1 != 11 || bgt.Rs2 != 10 {
		t.Fatalf("bgt decoded as %v", bgt)
	}
	ble, _ := Decode(img[InstBytes:])
	if ble.Op != OpBge || ble.Rs1 != 11 || ble.Rs2 != 10 {
		t.Fatalf("ble decoded as %v", ble)
	}
}
