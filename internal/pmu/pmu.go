// Package pmu implements the paper's first use case (§4.1): an in-house
// performance monitoring unit with a configurable number of 32-bit event
// counters, programmable thresholds that raise an interrupt, and an
// AXI-Lite-style configuration interface. The PMU is real RTL: its Verilog
// source (generated here, playing the role of generate-loops) is compiled by
// gem5rtl's Verilog frontend into a cycle-accurate model, then wrapped for
// the RTLObject exactly as Figure 3 shows — event_enable bits and AXI
// read/write in the input struct, AXI responses and the interrupt in the
// output struct.
//
// Behavioural artefacts the paper studies are faithfully present: events are
// recorded with a one-cycle delay (events register), and when a threshold
// interrupt fires the counter resets, losing any event arriving in the reset
// cycle — the discrepancies §6.1 quantifies against gem5's own statistics.
package pmu

import (
	"fmt"
	"strings"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/verilog"

	// Link in the optimizing bytecode engine so every PMU user can select
	// it by name (rtl.EngineBytecode).
	_ "gem5rtl/internal/rtlc"
)

// NumCounters matches Table 1: 20 32-bit counters.
const NumCounters = 20

// Register map (byte addresses on the AXI-Lite port).
const (
	RegCounterBase = 0x00 // counter i at 4*i; writes clear
	RegEnable      = 0x80 // event_enable bits
	RegThreshVal   = 0x84 // threshold value (0 disables)
	RegThreshSel   = 0x88 // counter index monitored by the threshold
)

// Event line assignments used by the gem5rtl SoC integration (§5.2.1): four
// commit lines (the OoO core commits up to 4 per cycle), one L1D-miss line,
// and one cycle line.
const (
	EvCommit0 = 0
	EvCommit1 = 1
	EvCommit2 = 2
	EvCommit3 = 3
	EvL1DMiss = 4
	EvCycle   = 5
)

// VerilogSource generates the PMU's Verilog for nc counters. The per-counter
// logic is emitted explicitly (the subset has no generate loops).
func VerilogSource(nc int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `// Auto-generated PMU RTL: %d x 32-bit event counters with a
// threshold interrupt and an AXI-Lite register file.
module pmu (
    input  wire clk,
    input  wire rst,
    input  wire [%d:0] events,
    input  wire awvalid,
    input  wire [7:0] awaddr,
    input  wire [31:0] wdata,
    input  wire arvalid,
    input  wire [7:0] araddr,
    output reg  [31:0] rdata,
    output reg  rvalid,
    output wire irq
);
`, nc, nc-1)
	for i := 0; i < nc; i++ {
		fmt.Fprintf(&b, "  reg [31:0] c%d;\n", i)
	}
	fmt.Fprintf(&b, `  reg [%d:0] ev_r;
  reg [%d:0] enable;
  reg [31:0] thresh_val;
  reg [4:0]  thresh_sel;
  reg irq_r;
  assign irq = irq_r;

  wire [31:0] selcnt;
  assign selcnt = `, nc-1, nc-1)
	for i := 0; i < nc-1; i++ {
		fmt.Fprintf(&b, "(thresh_sel == 5'd%d) ? c%d :\n                  ", i, i)
	}
	fmt.Fprintf(&b, "c%d;\n", nc-1)
	fmt.Fprintf(&b, `
  wire thresh_hit;
  assign thresh_hit = (thresh_val != 32'd0) && (selcnt >= thresh_val);

  wire [31:0] rmux;
  assign rmux = `)
	for i := 0; i < nc; i++ {
		fmt.Fprintf(&b, "(araddr == 8'd%d) ? c%d :\n                ", 4*i, i)
	}
	fmt.Fprintf(&b, `(araddr == 8'h80) ? {%d'd0, enable} :
                (araddr == 8'h84) ? thresh_val :
                (araddr == 8'h88) ? {27'd0, thresh_sel} :
                32'hDEADBEEF;

  always @(posedge clk) begin
    if (rst) begin
      ev_r <= 0;
      enable <= 0;
      thresh_val <= 0;
      thresh_sel <= 0;
      irq_r <= 0;
      rvalid <= 0;
      rdata <= 0;
`, 32-nc)
	for i := 0; i < nc; i++ {
		fmt.Fprintf(&b, "      c%d <= 0;\n", i)
	}
	fmt.Fprintf(&b, `    end else begin
      // One-cycle recording delay: events land in ev_r first.
      ev_r <= events & enable;
      irq_r <= thresh_hit;
`)
	for i := 0; i < nc; i++ {
		fmt.Fprintf(&b, `      c%[1]d <= (awvalid && (awaddr == 8'd%[2]d)) ? 32'd0 :
            ((thresh_hit && (thresh_sel == 5'd%[1]d)) ? 32'd0 : (c%[1]d + ev_r[%[1]d]));
`, i, 4*i)
	}
	fmt.Fprintf(&b, `      if (awvalid && (awaddr == 8'h80)) enable <= wdata[%d:0];
      if (awvalid && (awaddr == 8'h84)) thresh_val <= wdata;
      if (awvalid && (awaddr == 8'h88)) thresh_sel <= wdata[4:0];
      rvalid <= arvalid;
      if (arvalid) rdata <= rmux;
    end
  end
endmodule
`, nc-1)
	return b.String()
}

// CompileModel runs the Verilog toolflow on the generated PMU source using
// the closure reference engine.
func CompileModel(nc int) (*rtl.Model, error) {
	return CompileModelEngine(nc, rtl.EngineClosure)
}

// CompileModelEngine is CompileModel with an explicit simulation engine.
func CompileModelEngine(nc int, engine rtl.Engine) (*rtl.Model, error) {
	return verilog.CompileEngine(VerilogSource(nc), "pmu", nil, engine)
}

// Wrapper is the shared-library wrapper of Figure 3: it drives the PMU
// model's event and AXI inputs from the RTLObject input struct and returns
// AXI read data and the interrupt line in the output struct.
//
// SoC glue (the CPU commit tap, cache miss tap) accumulates events between
// model ticks via AddCommits/AddMiss; each Tick drains the accumulators onto
// the event wires (up to four commit lines per cycle, carrying any remainder
// into following cycles).
type Wrapper struct {
	model *rtl.Model
	nc    int

	// signal IDs resolved once
	inEvents, inRst              rtl.SigID
	inAwvalid, inAwaddr, inWdata rtl.SigID
	inArvalid, inAraddr          rtl.SigID
	outRdata, outRvalid, outIrq  rtl.SigID

	pendingCommits int
	pendingMisses  int

	// One AXI transaction in flight at a time; extras queue here.
	axiQ []rtlobject.CPURequest
	// Read issued last tick, completing this tick.
	inflightRead *rtlobject.CPURequest

	// TickHook runs after every model tick (used by tests/tracing).
	TickHook func(m *rtl.Model)

	// trace is the PMU debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger
	// prevIrq tracks the IRQ line for edge tracing.
	prevIrq bool
}

// NewWrapper compiles the PMU RTL with the closure reference engine and
// builds its wrapper.
func NewWrapper(nc int) (*Wrapper, error) {
	return NewWrapperEngine(nc, rtl.EngineClosure)
}

// NewWrapperEngine is NewWrapper with an explicit simulation engine.
func NewWrapperEngine(nc int, engine rtl.Engine) (*Wrapper, error) {
	m, err := CompileModelEngine(nc, engine)
	if err != nil {
		return nil, err
	}
	w := &Wrapper{model: m, nc: nc}
	w.inEvents = m.InputID("events")
	w.inRst = m.InputID("rst")
	w.inAwvalid = m.InputID("awvalid")
	w.inAwaddr = m.InputID("awaddr")
	w.inWdata = m.InputID("wdata")
	w.inArvalid = m.InputID("arvalid")
	w.inAraddr = m.InputID("araddr")
	w.outRdata = m.OutputID("rdata")
	w.outRvalid = m.OutputID("rvalid")
	w.outIrq = m.OutputID("irq")
	return w, nil
}

// Model exposes the compiled RTL model (waveform attachment, tests).
func (w *Wrapper) Model() *rtl.Model { return w.model }

// Name implements rtlobject.Wrapper.
func (w *Wrapper) Name() string { return "pmu" }

// Reset implements rtlobject.Wrapper: it pulses the synchronous reset.
func (w *Wrapper) Reset() {
	w.model.Reset()
	w.model.SetInputID(w.inRst, 1)
	w.model.Tick()
	w.model.SetInputID(w.inRst, 0)
	w.pendingCommits = 0
	w.pendingMisses = 0
	w.axiQ = nil
	w.inflightRead = nil
}

// AddCommits accumulates committed-instruction events from the core tap.
func (w *Wrapper) AddCommits(n int) { w.pendingCommits += n }

// AddMiss accumulates one L1D miss event from the cache tap.
func (w *Wrapper) AddMiss() { w.pendingMisses++ }

// Tick implements rtlobject.Wrapper.
func (w *Wrapper) Tick(in *rtlobject.Input) *rtlobject.Output {
	out := &rtlobject.Output{}
	// Complete the read issued last tick (rvalid is registered).
	w.axiQ = append(w.axiQ, in.CPURequests...)

	// Event wires for this cycle.
	var ev uint64
	c := w.pendingCommits
	if c > 4 {
		c = 4
	}
	w.pendingCommits -= c
	for i := 0; i < c; i++ {
		ev |= 1 << (EvCommit0 + i)
	}
	if w.pendingMisses > 0 {
		w.pendingMisses--
		ev |= 1 << EvL1DMiss
	}
	ev |= 1 << EvCycle
	w.model.SetInputID(w.inEvents, ev)

	// Drive at most one AXI transaction per cycle.
	w.model.SetInputID(w.inAwvalid, 0)
	w.model.SetInputID(w.inArvalid, 0)
	var issuedRead *rtlobject.CPURequest
	if w.inflightRead == nil && len(w.axiQ) > 0 {
		req := w.axiQ[0]
		w.axiQ = w.axiQ[1:]
		if req.Write {
			var v uint64
			for i := 0; i < len(req.Data) && i < 4; i++ {
				v |= uint64(req.Data[i]) << (8 * i)
			}
			if w.trace.On() {
				w.trace.Logf("axi write addr=%#x data=%#x", req.Addr&0xFF, v)
			}
			w.model.SetInputID(w.inAwvalid, 1)
			w.model.SetInputID(w.inAwaddr, req.Addr&0xFF)
			w.model.SetInputID(w.inWdata, v)
			out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{ID: req.ID})
		} else {
			w.model.SetInputID(w.inArvalid, 1)
			w.model.SetInputID(w.inAraddr, req.Addr&0xFF)
			r := req
			issuedRead = &r
		}
	}

	w.model.Tick()
	if w.TickHook != nil {
		w.TickHook(w.model)
	}

	// rdata/rvalid are registered: after this Tick they reflect the arvalid
	// driven above, so the read completes one model cycle after issue.
	if issuedRead != nil {
		w.inflightRead = issuedRead
	}
	if w.inflightRead != nil && w.model.PeekID(w.outRvalid) == 1 {
		data := w.model.PeekID(w.outRdata)
		if w.trace.On() {
			w.trace.Logf("axi read addr=%#x -> %#x", w.inflightRead.Addr&0xFF, data)
		}
		out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{
			ID:   w.inflightRead.ID,
			Data: []byte{byte(data), byte(data >> 8), byte(data >> 16), byte(data >> 24)},
		})
		w.inflightRead = nil
	}
	out.Interrupt = w.model.PeekID(w.outIrq) == 1
	if out.Interrupt != w.prevIrq {
		if w.trace.On() {
			w.trace.Logf("irq %v", out.Interrupt)
		}
		w.prevIrq = out.Interrupt
	}
	return out
}

// Counter peeks counter i directly in the RTL model (testbench backdoor).
func (w *Wrapper) Counter(i int) uint32 {
	return uint32(w.model.Peek(fmt.Sprintf("c%d", i)))
}
