package pmu

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/rtlobject"
)

func savePMU(t *testing.T, w *Wrapper) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	if err := w.SaveState(cw); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPMURoundTrip checkpoints a PMU mid-measurement — counters running,
// events pending, an AXI read in flight — restores into a fresh wrapper and
// checks both continue identically.
func TestPMURoundTrip(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 0x3F)
	w.AddCommits(7) // more than one cycle can drain
	w.AddMiss()
	tickN(w, 3)
	// Issue a read plus a write: one AXI transaction per cycle, so the write
	// is still queued in the wrapper when we checkpoint.
	w.Tick(&rtlobject.Input{CPURequests: []rtlobject.CPURequest{
		{ID: 11, Addr: RegCounterBase + 4*EvCycle},
		{ID: 12, Addr: RegThreshVal, Write: true, Data: []byte{50, 0, 0, 0}},
	}})
	if len(w.axiQ) != 1 {
		t.Fatalf("setup: queued=%d", len(w.axiQ))
	}

	blob := savePMU(t, w)
	w2 := newPMU(t)
	if err := w2.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := savePMU(t, w2); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}
	if w2.pendingCommits != w.pendingCommits || len(w2.axiQ) != 1 {
		t.Fatal("wrapper glue state lost")
	}

	// Continue both: same responses, same counters.
	for i := 0; i < 5; i++ {
		a := w.Tick(&rtlobject.Input{})
		b := w2.Tick(&rtlobject.Input{})
		if len(a.CPUResponses) != len(b.CPUResponses) {
			t.Fatalf("tick %d: responses diverge (%d vs %d)", i, len(a.CPUResponses), len(b.CPUResponses))
		}
		for j := range a.CPUResponses {
			if a.CPUResponses[j].ID != b.CPUResponses[j].ID ||
				!bytes.Equal(a.CPUResponses[j].Data, b.CPUResponses[j].Data) {
				t.Fatalf("tick %d: response %d diverges", i, j)
			}
		}
	}
	for i := 0; i < NumCounters; i++ {
		if w.Counter(i) != w2.Counter(i) {
			t.Errorf("counter %d diverges: %d vs %d", i, w.Counter(i), w2.Counter(i))
		}
	}
}

// TestPMUCheckpointWrongCircuit ensures the RTL fingerprint refuses a
// checkpoint from a differently-shaped PMU.
func TestPMUCheckpointWrongCircuit(t *testing.T) {
	w := newPMU(t)
	blob := savePMU(t, w)
	other, err := NewWrapper(NumCounters / 2)
	if err != nil {
		t.Fatal(err)
	}
	other.Reset()
	if err := other.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err == nil {
		t.Fatal("cross-circuit restore not refused")
	}
}
