package pmu

import (
	"bytes"
	"math/rand"
	"testing"

	"gem5rtl/internal/rtl"
	"gem5rtl/internal/rtlobject"
)

// TestEngineEquivalence drives closure- and bytecode-engined PMU instances
// with an identical stimulus — event bursts, AXI configuration traffic,
// threshold interrupts, counter-clearing reads and writes — and requires
// bit-identical wrapper outputs, RTL state, counters and VCD waveforms every
// cycle. This is the integration-level form of the rtlc differential tests:
// real generated Verilog through the full toolflow on both engines.
func TestEngineEquivalence(t *testing.T) {
	wc, err := NewWrapperEngine(NumCounters, rtl.EngineClosure)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWrapperEngine(NumCounters, rtl.EngineBytecode)
	if err != nil {
		t.Fatal(err)
	}
	var vcdC, vcdB bytes.Buffer
	wc.Model().AttachVCD(&vcdC, 1)
	wb.Model().AttachVCD(&vcdB, 1)
	wc.Reset()
	wb.Reset()

	sigs := wc.Model().Circuit().Signals
	compare := func(cycle int) {
		t.Helper()
		for i := range sigs {
			if gc, gb := wc.Model().PeekID(rtl.SigID(i)), wb.Model().PeekID(rtl.SigID(i)); gc != gb {
				t.Fatalf("cycle %d: signal %q: closure %#x bytecode %#x", cycle, sigs[i].Name, gc, gb)
			}
		}
	}
	write := func(addr uint64, val uint32) *rtlobject.Input {
		return &rtlobject.Input{CPURequests: []rtlobject.CPURequest{{
			ID: 1, Addr: addr, Write: true,
			Data: []byte{byte(val), byte(val >> 8), byte(val >> 16), byte(val >> 24)},
		}}}
	}
	rng := rand.New(rand.NewSource(21))
	for cycle := 0; cycle < 400; cycle++ {
		var in *rtlobject.Input
		switch cycle {
		case 0:
			in = write(RegEnable, 0x3f) // enable all event lines
		case 5:
			in = write(RegThreshVal, 40)
		case 6:
			in = write(RegThreshSel, EvCommit0)
		case 200:
			in = write(RegCounterBase+4*EvL1DMiss, 0) // write-clear
		default:
			if cycle%17 == 9 {
				in = &rtlobject.Input{CPURequests: []rtlobject.CPURequest{{
					ID: uint64(cycle), Addr: RegCounterBase + 4*uint64(rng.Intn(NumCounters)),
				}}}
			} else {
				in = &rtlobject.Input{}
			}
		}
		if n := rng.Intn(7); n > 0 {
			wc.AddCommits(n)
			wb.AddCommits(n)
		}
		if rng.Intn(3) == 0 {
			wc.AddMiss()
			wb.AddMiss()
		}
		oc := wc.Tick(in)
		ob := wb.Tick(in)
		if oc.Interrupt != ob.Interrupt {
			t.Fatalf("cycle %d: IRQ: closure %v bytecode %v", cycle, oc.Interrupt, ob.Interrupt)
		}
		if len(oc.CPUResponses) != len(ob.CPUResponses) {
			t.Fatalf("cycle %d: response count: closure %d bytecode %d",
				cycle, len(oc.CPUResponses), len(ob.CPUResponses))
		}
		for i := range oc.CPUResponses {
			if oc.CPUResponses[i].ID != ob.CPUResponses[i].ID ||
				!bytes.Equal(oc.CPUResponses[i].Data, ob.CPUResponses[i].Data) {
				t.Fatalf("cycle %d: response %d differs", cycle, i)
			}
		}
		compare(cycle)
	}
	for i := 0; i < NumCounters; i++ {
		if wc.Counter(i) != wb.Counter(i) {
			t.Fatalf("counter %d: closure %d bytecode %d", i, wc.Counter(i), wb.Counter(i))
		}
	}
	if !bytes.Equal(vcdC.Bytes(), vcdB.Bytes()) {
		t.Fatalf("VCD waveforms differ between engines (%d vs %d bytes)", vcdC.Len(), vcdB.Len())
	}
}
