package pmu

import (
	"testing"

	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/verilog"
)

func newPMU(t testing.TB) *Wrapper {
	t.Helper()
	w, err := NewWrapper(NumCounters)
	if err != nil {
		t.Fatal(err)
	}
	w.Reset()
	return w
}

// tickN runs n idle ticks.
func tickN(w *Wrapper, n int) {
	for i := 0; i < n; i++ {
		w.Tick(&rtlobject.Input{})
	}
}

// axiWrite performs a register write and ticks once.
func axiWrite(w *Wrapper, addr uint64, val uint32) {
	in := &rtlobject.Input{CPURequests: []rtlobject.CPURequest{{
		ID: 9999, Addr: addr, Write: true,
		Data: []byte{byte(val), byte(val >> 8), byte(val >> 16), byte(val >> 24)},
	}}}
	w.Tick(in)
}

// axiRead performs a register read, ticking until the response arrives.
func axiRead(t testing.TB, w *Wrapper, addr uint64) uint32 {
	t.Helper()
	in := &rtlobject.Input{CPURequests: []rtlobject.CPURequest{{ID: 4242, Addr: addr}}}
	out := w.Tick(in)
	for i := 0; i < 4; i++ {
		for _, r := range out.CPUResponses {
			if r.ID == 4242 {
				return uint32(r.Data[0]) | uint32(r.Data[1])<<8 |
					uint32(r.Data[2])<<16 | uint32(r.Data[3])<<24
			}
		}
		out = w.Tick(&rtlobject.Input{})
	}
	t.Fatal("AXI read never completed")
	return 0
}

func TestVerilogSourceCompiles(t *testing.T) {
	if _, err := verilog.Compile(VerilogSource(NumCounters), "pmu", nil); err != nil {
		t.Fatal(err)
	}
	// Smaller configurations elaborate too.
	if _, err := verilog.Compile(VerilogSource(4), "pmu", nil); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCounterCounts(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvCycle)
	tickN(w, 100)
	got := axiRead(t, w, RegCounterBase+4*EvCycle)
	// ~100 cycles counted (1-cycle recording delay and the enable-write tick
	// introduce small, deterministic offsets).
	if got < 95 || got > 110 {
		t.Fatalf("cycle counter = %d, want ~100", got)
	}
}

func TestDisabledEventsNotCounted(t *testing.T) {
	w := newPMU(t)
	// No enables: commits must not count.
	w.AddCommits(50)
	tickN(w, 60)
	if got := w.Counter(EvCommit0); got != 0 {
		t.Fatalf("disabled counter counted %d", got)
	}
}

func TestCommitEventLines(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 0xF) // commit lines 0-3
	// 10 commits: with up to 4 lines per cycle the counters must total 10.
	w.AddCommits(10)
	tickN(w, 10)
	total := uint32(0)
	for i := EvCommit0; i <= EvCommit3; i++ {
		total += w.Counter(i)
	}
	if total != 10 {
		t.Fatalf("commit total = %d, want 10", total)
	}
	// Line 0 saw 3 cycles (4+4+2), line 3 only 2.
	if w.Counter(EvCommit0) != 3 || w.Counter(EvCommit3) != 2 {
		t.Fatalf("line distribution: c0=%d c3=%d", w.Counter(EvCommit0), w.Counter(EvCommit3))
	}
}

func TestMissEvents(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvL1DMiss)
	for i := 0; i < 7; i++ {
		w.AddMiss()
	}
	tickN(w, 10)
	if got := w.Counter(EvL1DMiss); got != 7 {
		t.Fatalf("miss counter = %d, want 7", got)
	}
}

func TestCounterClearOnWrite(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvCycle)
	tickN(w, 50)
	axiWrite(w, RegCounterBase+4*EvCycle, 0)
	got := axiRead(t, w, RegCounterBase+4*EvCycle)
	if got > 5 {
		t.Fatalf("counter after clear = %d", got)
	}
}

func TestThresholdInterruptAndReset(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvCycle)
	axiWrite(w, RegThreshSel, EvCycle)
	axiWrite(w, RegThreshVal, 20)
	irqs := 0
	lastIrq := false
	var countsAtIrq []uint32
	for i := 0; i < 200; i++ {
		out := w.Tick(&rtlobject.Input{})
		if out.Interrupt && !lastIrq {
			irqs++
			countsAtIrq = append(countsAtIrq, w.Counter(EvCycle))
		}
		lastIrq = out.Interrupt
	}
	if irqs < 8 || irqs > 11 {
		t.Fatalf("got %d interrupts over 200 cycles with threshold 20, want ~10", irqs)
	}
	// After each interrupt the counter resets: observed values stay small.
	for _, c := range countsAtIrq {
		if c > 22 {
			t.Fatalf("counter did not reset at threshold: %d", c)
		}
	}
}

func TestEventLossDuringReset(t *testing.T) {
	// The paper's §6.1 artefact: the reset cycle loses events. Over a run
	// with threshold resets, the counted total is slightly below the true
	// event count.
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvCycle)
	axiWrite(w, RegThreshSel, EvCycle)
	axiWrite(w, RegThreshVal, 10)
	const cycles = 100
	resets := 0
	lastIrq := false
	for i := 0; i < cycles; i++ {
		out := w.Tick(&rtlobject.Input{})
		if out.Interrupt && !lastIrq {
			resets++
		}
		lastIrq = out.Interrupt
	}
	counted := w.Counter(EvCycle)
	// Each reset discards the event arriving that cycle; total counted plus
	// thresholds consumed must be below the cycle count.
	if int(counted)+resets*10 > cycles {
		t.Fatalf("no event loss visible: counted=%d resets=%d cycles=%d", counted, resets, cycles)
	}
	if resets == 0 {
		t.Fatal("threshold never fired")
	}
}

func TestAXIReadbackConfigRegs(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 0x3F)
	axiWrite(w, RegThreshVal, 12345)
	axiWrite(w, RegThreshSel, 7)
	if got := axiRead(t, w, RegEnable); got != 0x3F {
		t.Fatalf("enable readback %#x", got)
	}
	if got := axiRead(t, w, RegThreshVal); got != 12345 {
		t.Fatalf("thresh_val readback %d", got)
	}
	if got := axiRead(t, w, RegThreshSel); got != 7 {
		t.Fatalf("thresh_sel readback %d", got)
	}
}

func TestResetClearsState(t *testing.T) {
	w := newPMU(t)
	axiWrite(w, RegEnable, 1<<EvCycle)
	tickN(w, 30)
	w.Reset()
	if got := w.Counter(EvCycle); got != 0 {
		t.Fatalf("counter after reset = %d", got)
	}
	if got := axiRead(t, w, RegEnable); got != 0 {
		t.Fatalf("enable after reset = %#x", got)
	}
}

func TestUnknownAddressReads(t *testing.T) {
	w := newPMU(t)
	if got := axiRead(t, w, 0xF0); got != 0xDEADBEEF {
		t.Fatalf("unknown address read %#x", got)
	}
}

func BenchmarkPMUTick(b *testing.B) {
	w, err := NewWrapper(NumCounters)
	if err != nil {
		b.Fatal(err)
	}
	w.Reset()
	in := &rtlobject.Input{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AddCommits(3)
		w.Tick(in)
	}
}
