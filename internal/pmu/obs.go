package pmu

import "gem5rtl/internal/obs"

// AttachTracer wires the PMU debug flag (nil logger = off).
func (w *Wrapper) AttachTracer(t *obs.Tracer) {
	w.trace = t.Logger("PMU", "pmu")
}
