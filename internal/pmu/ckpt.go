package pmu

import (
	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/rtlobject"
)

// SaveState captures the PMU wrapper: the compiled RTL model's full state
// (cycle counter, signal values — written through rtl.Model.SaveCheckpoint,
// whose structural fingerprint guards against restoring into a different
// circuit) plus the wrapper-side glue: accumulated commit/miss events not yet
// driven onto the event wires, the queued AXI transactions and the read
// completing this cycle. It implements ckpt.Checkpointable so the enclosing
// RTLObject can delegate to it.
func (w *Wrapper) SaveState(cw *ckpt.Writer) error {
	cw.Section("pmu.wrapper")
	if err := w.model.SaveCheckpoint(cw); err != nil {
		cw.Fail(err)
		return err
	}
	cw.Int(w.pendingCommits)
	cw.Int(w.pendingMisses)
	cw.Int(len(w.axiQ))
	for i := range w.axiQ {
		rtlobject.SaveCPURequest(cw, &w.axiQ[i])
	}
	cw.Bool(w.inflightRead != nil)
	if w.inflightRead != nil {
		rtlobject.SaveCPURequest(cw, w.inflightRead)
	}
	return cw.Err()
}

// RestoreState reinstates a checkpointed PMU. Callers must not pulse Reset or
// rewrite the enable/threshold registers afterwards: the register file,
// counters and in-flight AXI traffic all come from the checkpoint. An
// attached VCD writer is realigned by the model restore (see rtl.Resync);
// the waveform file itself restarts at the restore point.
func (w *Wrapper) RestoreState(r *ckpt.Reader) error {
	r.Section("pmu.wrapper")
	if err := w.model.RestoreCheckpoint(r); err != nil {
		r.Fail(err)
		return err
	}
	w.pendingCommits = r.Len()
	w.pendingMisses = r.Len()
	n := r.Len()
	w.axiQ = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		w.axiQ = append(w.axiQ, rtlobject.LoadCPURequest(r))
	}
	w.inflightRead = nil
	if r.Bool() {
		req := rtlobject.LoadCPURequest(r)
		w.inflightRead = &req
	}
	return r.Err()
}
