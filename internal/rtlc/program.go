package rtlc

import (
	"fmt"
	"math/bits"
	"strings"

	"gem5rtl/internal/rtl"
)

// Op is a bytecode opcode. The set is deliberately small and total: every
// operation produces a defined result for every input (division by zero,
// out-of-range shifts and indexes follow the rtl package's closure-engine
// semantics bit for bit), so instructions can be executed eagerly and folded
// at compile time with the very same interpreter that runs them at runtime.
type Op uint8

// The bytecode instruction set. Operand meaning is given per opcode; r[i]
// denotes register-file slot i, and unless stated otherwise the result is
// masked with Inst.Mask before the store to r[Dst].
const (
	// OpCopy: r[Dst] = r[A] & Mask.
	OpCopy Op = iota
	// OpAdd: r[Dst] = (r[A] + r[B]) & Mask.
	OpAdd
	// OpSub: r[Dst] = (r[A] - r[B]) & Mask.
	OpSub
	// OpMul: r[Dst] = (r[A] * r[B]) & Mask.
	OpMul
	// OpDiv: r[Dst] = r[B]==0 ? Mask : (r[A] / r[B]) & Mask.
	OpDiv
	// OpMod: r[Dst] = r[B]==0 ? r[A] & Mask : (r[A] % r[B]) & Mask.
	OpMod
	// OpAnd: r[Dst] = r[A] & r[B] & Mask.
	OpAnd
	// OpOr: r[Dst] = (r[A] | r[B]) & Mask.
	OpOr
	// OpXor: r[Dst] = (r[A] ^ r[B]) & Mask.
	OpXor
	// OpShl: r[Dst] = r[B]>=64 ? 0 : (r[A] << r[B]) & Mask.
	OpShl
	// OpShr: r[Dst] = r[B]>=64 ? 0 : (r[A] >> r[B]) & Mask.
	OpShr
	// OpSra: arithmetic shift right of r[A] sign-extended from width 64-WA
	// by min(r[B], 63), masked. WA holds 64 minus the operand width so the
	// sign extension is two shifts with no table lookup.
	OpSra
	// OpShrC: r[Dst] = (r[A] >> WA) & Mask — constant shift, the Slice node.
	OpShrC
	// OpShlOr: r[Dst] = r[A]<<WA | r[B] — one Concat accumulation step.
	// No masking: the IR guarantees concat widths total at most 64.
	OpShlOr
	// OpEq: r[Dst] = r[A]==r[B] ? 1 : 0. Comparisons ignore Mask (results
	// are a single bit).
	OpEq
	// OpNe: r[Dst] = r[A]!=r[B] ? 1 : 0.
	OpNe
	// OpLt: r[Dst] = r[A]<r[B] ? 1 : 0 (unsigned).
	OpLt
	// OpLe: r[Dst] = r[A]<=r[B] ? 1 : 0 (unsigned).
	OpLe
	// OpGt: r[Dst] = r[A]>r[B] ? 1 : 0 (unsigned).
	OpGt
	// OpGe: r[Dst] = r[A]>=r[B] ? 1 : 0 (unsigned).
	OpGe
	// OpSLt: signed r[A]<r[B] with operands sign-extended from widths
	// 64-WA and 64-WB respectively.
	OpSLt
	// OpSLe: signed <=, operand widths as in OpSLt.
	OpSLe
	// OpSGt: signed >, operand widths as in OpSLt.
	OpSGt
	// OpSGe: signed >=, operand widths as in OpSLt.
	OpSGe
	// OpLAnd: r[Dst] = (r[A]!=0 && r[B]!=0) ? 1 : 0.
	OpLAnd
	// OpLOr: r[Dst] = (r[A]!=0 || r[B]!=0) ? 1 : 0.
	OpLOr
	// OpNot: r[Dst] = ^r[A] & Mask.
	OpNot
	// OpNeg: r[Dst] = (-r[A]) & Mask.
	OpNeg
	// OpRedXor: r[Dst] = parity of r[A] (popcount & 1).
	OpRedXor
	// OpIndex: dynamic bit select — r[Dst] = r[B] >= WA ? 0 :
	// (r[A]>>r[B]) & 1, where WA is the indexed operand's width.
	OpIndex
	// OpMux: r[Dst] = (r[A]!=0 ? r[B] : r[C]) & Mask.
	OpMux
	// OpMuxEq: fused compare+select — r[Dst] = (r[A]==r[B] ? r[C] : r[D])
	// & Mask. Collapses the (sel == K) ? a : b chains that dominate
	// register-file read muxes into one dispatch.
	OpMuxEq
	// OpMuxNe: r[Dst] = (r[A]!=r[B] ? r[C] : r[D]) & Mask.
	OpMuxNe
	// OpMuxLt: r[Dst] = (r[A]<r[B] ? r[C] : r[D]) & Mask (unsigned).
	OpMuxLt
	// OpMuxGe: r[Dst] = (r[A]>=r[B] ? r[C] : r[D]) & Mask (unsigned).
	OpMuxGe
	// OpMemRead: r[Dst] = (r[A] >= len(mems[B]) ? 0 : mems[B][r[A]]) & Mask.
	// B is a memory ID, not a register. The raw word is unmasked (Mask is
	// all-ones) except when the read is retargeted into a narrower store,
	// mirroring the closure engine's read-raw/mask-at-assign behaviour.
	OpMemRead

	nOps
)

var opNames = [nOps]string{
	OpCopy: "copy", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSra: "sra", OpShrC: "shrc", OpShlOr: "shlor", OpEq: "eq",
	OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpSLt: "slt",
	OpSLe: "sle", OpSGt: "sgt", OpSGe: "sge", OpLAnd: "land", OpLOr: "lor",
	OpNot: "not", OpNeg: "neg", OpRedXor: "redxor", OpIndex: "index",
	OpMux: "mux", OpMuxEq: "muxeq", OpMuxNe: "muxne", OpMuxLt: "muxlt",
	OpMuxGe: "muxge", OpMemRead: "memrd",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one register-machine instruction. Dst and the register operands
// A..D index the flat register file; WA/WB carry small immediates (shift
// amounts, sign-extension widths, index bounds) and Mask the result mask.
// The struct is word-packed to 32 bytes so the dispatch loop streams the
// code array through the cache.
type Inst struct {
	Op     Op
	WA, WB uint8
	Dst    uint32
	A      uint32
	B      uint32
	C      uint32
	D      uint32
	Mask   uint64
}

// eachSrc calls f on each operand field of in that names a register. B is a
// memory ID for OpMemRead and is skipped; WA/WB are immediates.
func (in *Inst) eachSrc(f func(*uint32)) {
	switch in.Op {
	case OpCopy, OpNot, OpNeg, OpRedXor, OpShrC, OpMemRead:
		f(&in.A)
	case OpMux:
		f(&in.A)
		f(&in.B)
		f(&in.C)
	case OpMuxEq, OpMuxNe, OpMuxLt, OpMuxGe:
		f(&in.A)
		f(&in.B)
		f(&in.C)
		f(&in.D)
	default:
		f(&in.A)
		f(&in.B)
	}
}

// opUsesMask reports whether the opcode applies Inst.Mask to its result.
// Ops that don't (comparisons, reductions, OpShlOr, OpIndex) produce values
// already narrower than any destination they are retargeted into, except
// OpShlOr whose width the compiler checks before retargeting.
func opUsesMask(op Op) bool {
	switch op {
	case OpCopy, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSra, OpShrC, OpNot, OpNeg,
		OpMux, OpMuxEq, OpMuxNe, OpMuxLt, OpMuxGe, OpMemRead:
		return true
	}
	return false
}

// SeqProg is the compiled next-state function of one sequential assignment,
// plus the dirty-set metadata that lets the VM skip it on quiet cycles.
type SeqProg struct {
	// Dst is the register's signal slot (also its value-file index).
	Dst rtl.SigID
	// Out is the register holding the computed next value after Code runs.
	Out uint32
	// Code computes the next value from current (pre-edge) state.
	Code []Inst
	// Cone selects, over the signal dirty bitset, the root signals (inputs,
	// registers, undriven wires) this next-state function transitively
	// depends on. If none are dirty the evaluation is skipped.
	Cone []ConeWord
	// MemCone is the same selection over the memory dirty bitset.
	MemCone []ConeWord
}

// ConeWord is one word of a bitset intersection mask: bitset[Word] & Mask.
type ConeWord struct {
	Word int
	Mask uint64
}

// MemWProg is the compiled write port of one memory: Code computes the
// enable, address and data expressions into the En/Addr/Data registers.
type MemWProg struct {
	// Mem is the target memory.
	Mem rtl.MemID
	// Depth is the memory depth; out-of-range addresses drop the write.
	Depth int
	// Mask is the memory word mask applied to the data.
	Mask uint64
	// Code computes the three port expressions.
	Code []Inst
	// En, Addr and Data are the registers holding the port values after
	// Code runs; the write happens iff En is nonzero.
	En, Addr, Data uint32
	// Cone selects, over the signal dirty bitset, the root signals the
	// port's enable/address/data expressions transitively depend on. If no
	// port of a memory has a dirty cone, none of that memory's ports can
	// produce a state-changing write and the whole group is skipped.
	Cone []ConeWord
	// MemCone is the same selection over the memory dirty bitset.
	MemCone []ConeWord
}

// Program is a compiled circuit: a flat register file layout plus straight-
// line code for the combinational pass, each sequential next-state function,
// and each memory write port.
//
// The register file is laid out [signal slots | constant pool | temporaries]:
// the first NSig slots are the architectural signal values (the Model adopts
// them as its value store), the next NConst hold the folded constant pool
// (loaded once at VM construction — there is no load-immediate opcode), and
// the rest are scratch temporaries reused by every code segment.
type Program struct {
	// NSig is the number of architectural signal slots.
	NSig int
	// NConst is the constant pool size.
	NConst int
	// NTemp is the temporary count (the maximum over all code segments).
	NTemp int
	// Consts is the constant pool, in register order.
	Consts []uint64
	// Comb is the combinational pass in levelised order.
	Comb []Inst
	// Seqs are the sequential next-state programs, in circuit order.
	Seqs []SeqProg
	// MemWs are the memory write ports, in circuit order.
	MemWs []MemWProg
	// Inputs lists the circuit's input signals; the VM snapshots them each
	// Tick to detect externally driven changes for the dirty set.
	Inputs []rtl.SigID
	// SigWords and MemWords size the dirty bitsets.
	SigWords, MemWords int
}

// RegsLen returns the register file size implied by the layout.
func (p *Program) RegsLen() int { return p.NSig + p.NConst + p.NTemp }

// Len returns the total instruction count across all code segments, a
// compact proxy for compiled size used by tests and diagnostics.
func (p *Program) Len() int {
	n := len(p.Comb)
	for i := range p.Seqs {
		n += len(p.Seqs[i].Code)
	}
	for i := range p.MemWs {
		n += len(p.MemWs[i].Code)
	}
	return n
}

// exec interprets one straight-line code segment against the register file.
// It is the single semantic authority for the instruction set: the VM hot
// path, the compile-time constant folder and the disassembler's doc comments
// all defer to it, so folding can never drift from execution.
func exec(code []Inst, regs []uint64, mems [][]uint64) {
	for i := range code {
		in := &code[i]
		switch in.Op {
		case OpCopy:
			regs[in.Dst] = regs[in.A] & in.Mask
		case OpAdd:
			regs[in.Dst] = (regs[in.A] + regs[in.B]) & in.Mask
		case OpSub:
			regs[in.Dst] = (regs[in.A] - regs[in.B]) & in.Mask
		case OpMul:
			regs[in.Dst] = (regs[in.A] * regs[in.B]) & in.Mask
		case OpDiv:
			if d := regs[in.B]; d == 0 {
				regs[in.Dst] = in.Mask
			} else {
				regs[in.Dst] = (regs[in.A] / d) & in.Mask
			}
		case OpMod:
			if d := regs[in.B]; d == 0 {
				regs[in.Dst] = regs[in.A] & in.Mask
			} else {
				regs[in.Dst] = (regs[in.A] % d) & in.Mask
			}
		case OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B] & in.Mask
		case OpOr:
			regs[in.Dst] = (regs[in.A] | regs[in.B]) & in.Mask
		case OpXor:
			regs[in.Dst] = (regs[in.A] ^ regs[in.B]) & in.Mask
		case OpShl:
			if s := regs[in.B]; s >= 64 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = (regs[in.A] << s) & in.Mask
			}
		case OpShr:
			if s := regs[in.B]; s >= 64 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = (regs[in.A] >> s) & in.Mask
			}
		case OpSra:
			sx := int64(regs[in.A]<<in.WA) >> in.WA
			s := regs[in.B]
			if s >= 64 {
				s = 63
			}
			regs[in.Dst] = uint64(sx>>s) & in.Mask
		case OpShrC:
			regs[in.Dst] = (regs[in.A] >> in.WA) & in.Mask
		case OpShlOr:
			regs[in.Dst] = regs[in.A]<<in.WA | regs[in.B]
		case OpEq:
			regs[in.Dst] = b2u(regs[in.A] == regs[in.B])
		case OpNe:
			regs[in.Dst] = b2u(regs[in.A] != regs[in.B])
		case OpLt:
			regs[in.Dst] = b2u(regs[in.A] < regs[in.B])
		case OpLe:
			regs[in.Dst] = b2u(regs[in.A] <= regs[in.B])
		case OpGt:
			regs[in.Dst] = b2u(regs[in.A] > regs[in.B])
		case OpGe:
			regs[in.Dst] = b2u(regs[in.A] >= regs[in.B])
		case OpSLt:
			regs[in.Dst] = b2u(int64(regs[in.A]<<in.WA)>>in.WA < int64(regs[in.B]<<in.WB)>>in.WB)
		case OpSLe:
			regs[in.Dst] = b2u(int64(regs[in.A]<<in.WA)>>in.WA <= int64(regs[in.B]<<in.WB)>>in.WB)
		case OpSGt:
			regs[in.Dst] = b2u(int64(regs[in.A]<<in.WA)>>in.WA > int64(regs[in.B]<<in.WB)>>in.WB)
		case OpSGe:
			regs[in.Dst] = b2u(int64(regs[in.A]<<in.WA)>>in.WA >= int64(regs[in.B]<<in.WB)>>in.WB)
		case OpLAnd:
			regs[in.Dst] = b2u(regs[in.A] != 0 && regs[in.B] != 0)
		case OpLOr:
			regs[in.Dst] = b2u(regs[in.A] != 0 || regs[in.B] != 0)
		case OpNot:
			regs[in.Dst] = ^regs[in.A] & in.Mask
		case OpNeg:
			regs[in.Dst] = (-regs[in.A]) & in.Mask
		case OpRedXor:
			regs[in.Dst] = uint64(bits.OnesCount64(regs[in.A]) & 1)
		case OpIndex:
			if b := regs[in.B]; b >= uint64(in.WA) {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = (regs[in.A] >> b) & 1
			}
		case OpMux:
			if regs[in.A] != 0 {
				regs[in.Dst] = regs[in.B] & in.Mask
			} else {
				regs[in.Dst] = regs[in.C] & in.Mask
			}
		case OpMuxEq:
			if regs[in.A] == regs[in.B] {
				regs[in.Dst] = regs[in.C] & in.Mask
			} else {
				regs[in.Dst] = regs[in.D] & in.Mask
			}
		case OpMuxNe:
			if regs[in.A] != regs[in.B] {
				regs[in.Dst] = regs[in.C] & in.Mask
			} else {
				regs[in.Dst] = regs[in.D] & in.Mask
			}
		case OpMuxLt:
			if regs[in.A] < regs[in.B] {
				regs[in.Dst] = regs[in.C] & in.Mask
			} else {
				regs[in.Dst] = regs[in.D] & in.Mask
			}
		case OpMuxGe:
			if regs[in.A] >= regs[in.B] {
				regs[in.Dst] = regs[in.C] & in.Mask
			} else {
				regs[in.Dst] = regs[in.D] & in.Mask
			}
		case OpMemRead:
			words := mems[in.B]
			if a := regs[in.A]; a >= uint64(len(words)) {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = words[a] & in.Mask
			}
		default:
			panic(fmt.Sprintf("rtlc: exec of unknown opcode %d", in.Op))
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// regName renders a register index according to the program layout.
func (p *Program) regName(r uint32) string {
	switch {
	case int(r) < p.NSig:
		return fmt.Sprintf("s%d", r)
	case int(r) < p.NSig+p.NConst:
		return fmt.Sprintf("c%d=%#x", int(r)-p.NSig, p.Consts[int(r)-p.NSig])
	default:
		return fmt.Sprintf("t%d", int(r)-p.NSig-p.NConst)
	}
}

// disasmInst renders one instruction.
func (p *Program) disasmInst(in *Inst) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s = %s", p.regName(in.Dst), in.Op)
	first := true
	inCopy := *in
	(&inCopy).eachSrc(func(r *uint32) {
		if first {
			sb.WriteByte(' ')
			first = false
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(p.regName(*r))
	})
	if in.Op == OpMemRead {
		fmt.Fprintf(&sb, ", mem%d", in.B)
	}
	if in.WA != 0 || in.WB != 0 {
		fmt.Fprintf(&sb, " [wa=%d wb=%d]", in.WA, in.WB)
	}
	if opUsesMask(in.Op) && in.Mask != ^uint64(0) {
		fmt.Fprintf(&sb, " & %#x", in.Mask)
	}
	return sb.String()
}

// Disasm renders the whole program as human-readable text, one instruction
// per line, for compiler tests and debugging.
func (p *Program) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "regs: %d sig + %d const + %d temp\n", p.NSig, p.NConst, p.NTemp)
	sb.WriteString("comb:\n")
	for i := range p.Comb {
		fmt.Fprintf(&sb, "  %s\n", p.disasmInst(&p.Comb[i]))
	}
	for i := range p.Seqs {
		sq := &p.Seqs[i]
		fmt.Fprintf(&sb, "seq s%d <- %s (cone %d+%d words):\n",
			sq.Dst, p.regName(sq.Out), len(sq.Cone), len(sq.MemCone))
		for j := range sq.Code {
			fmt.Fprintf(&sb, "  %s\n", p.disasmInst(&sq.Code[j]))
		}
	}
	for i := range p.MemWs {
		w := &p.MemWs[i]
		fmt.Fprintf(&sb, "memw mem%d [en=%s addr=%s data=%s]:\n",
			w.Mem, p.regName(w.En), p.regName(w.Addr), p.regName(w.Data))
		for j := range w.Code {
			fmt.Fprintf(&sb, "  %s\n", p.disasmInst(&w.Code[j]))
		}
	}
	return sb.String()
}
