package rtlc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gem5rtl/internal/rtl"
	"gem5rtl/internal/rtlc"
)

// allOpsCircuit exercises every IR node kind and documented edge case:
// division by zero, shifts past 64, out-of-range dynamic index and memory
// reads, signed compares of mixed widths, fused and unfused muxes, concat,
// slices, reductions, multiple write ports on one memory.
func allOpsCircuit(t testing.TB) *rtl.Circuit {
	t.Helper()
	b := rtl.NewBuilder("allops")
	a := b.Input("a", 8)
	bi := b.Input("b", 8)
	ci := b.Input("c", 16)
	d := b.Input("d", 1)
	en := b.Input("en", 1)
	ra, rb, rc, rd, ren := b.Ref(a), b.Ref(bi), b.Ref(ci), b.Ref(d), b.Ref(en)

	mem := b.Mem("m", 16, 8)
	b.MemInit(mem, []uint64{0xdead, 0xbeef, 3, 4, 5, 0xffff, 7})

	w := func(name string, e rtl.Expr) rtl.Expr {
		id := b.Wire(name, e.Width())
		b.Assign(id, e)
		return b.Ref(id)
	}

	sum := w("sum", rtl.Add(ra, rb))
	dif := w("dif", rtl.Sub(ra, rb))
	prod := w("prod", rtl.MulE(ra, rb))
	w("quo", rtl.DivE(ra, rb)) // rb == 0 must yield all-ones
	w("rem", rtl.ModE(ra, rb))
	andv := w("andv", rtl.AndE(ra, rb))
	orv := w("orv", rtl.OrE(ra, rb))
	xorv := w("xorv", rtl.XorE(ra, rb))
	shl := w("shlv", rtl.Shl(rc, rb)) // rb >= 64 must yield zero
	shr := w("shrv", rtl.Shr(rc, rb))
	w("srav", rtl.Sra(rc, rb))
	w("eqv", rtl.Eq(ra, rb))
	w("nev", rtl.Ne(ra, rb))
	w("ltv", rtl.Lt(ra, rb))
	w("lev", rtl.Le(ra, rb))
	w("gtv", rtl.Gt(ra, rb))
	w("gev", rtl.Ge(ra, rb))
	w("sltv", rtl.SLt(ra, rc)) // mixed operand widths
	w("landv", rtl.LAnd(ra, rb))
	w("lorv", rtl.LOr(ra, rb))
	w("notv", rtl.Not(rc))
	w("negv", rtl.Neg(rc))
	w("lnotv", rtl.LNot(ra))
	w("redav", rtl.RedAnd(rc))
	w("redov", rtl.RedOr(rc))
	w("redxv", rtl.RedXor(rc))
	w("mux1", rtl.MuxE(rd, ra, rb))
	w("muxeq", rtl.MuxE(rtl.Eq(ra, rtl.C(3, 8)), sum, dif))
	w("muxne", rtl.MuxE(rtl.Ne(ra, rb), ra, rb))
	w("muxlt", rtl.MuxE(rtl.Lt(ra, rb), prod, xorv))
	w("muxle", rtl.MuxE(rtl.Le(ra, rb), andv, orv))
	w("muxgt", rtl.MuxE(rtl.Gt(ra, rb), shl, shr))
	w("muxln", rtl.MuxE(rtl.LNot(rd), ra, rb))
	w("slv", rtl.SliceE(rc, 11, 4))
	w("bitv", rtl.Bit(rc, 7))
	w("idxv", rtl.IndexE(rc, ra)) // ra >= 16 must yield zero
	w("catv", rtl.Cat(rtl.SliceE(ra, 3, 0), rtl.SliceE(rb, 3, 0), rtl.Bit(rc, 0)))
	mrd := w("mrdv", rtl.MemRd(mem, ra, 16)) // ra >= 8 must yield zero
	w("csum", rtl.Add(rtl.C(5, 8), rtl.C(7, 8)))
	w("dupe", rtl.Add(ra, rb)) // CSE against sum

	cnt := b.Reg("cnt", 16, 0)
	b.Seq(cnt, rtl.MuxE(ren, rtl.Add(b.Ref(cnt), rtl.C(1, 16)), b.Ref(cnt)))
	acc := b.Reg("acc", 16, 0x1234)
	b.Seq(acc, rtl.XorE(b.Ref(acc), mrd))
	shreg := b.Reg("shreg", 8, 1)
	b.Seq(shreg, rtl.Cat(rtl.SliceE(b.Ref(shreg), 6, 0), rtl.Bit(rc, 3)))

	// Two write ports on one memory: last-writer-wins ordering must hold.
	b.MemWr(mem, rtl.SliceE(ra, 2, 0), rc, ren)
	b.MemWr(mem, rtl.SliceE(rb, 2, 0), rtl.Not(rc), rtl.Bit(ra, 0))

	out := b.Output("out", 16)
	b.Assign(out, rtl.XorE(rtl.Resize(sum, 16), rtl.Add(b.Ref(cnt), b.Ref(acc))))

	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func compileBoth(t testing.TB, c *rtl.Circuit) (mc, mb *rtl.Model) {
	t.Helper()
	mc, err := rtl.CompileEngine(c, rtl.EngineClosure)
	if err != nil {
		t.Fatalf("closure compile: %v", err)
	}
	mb, err = rtl.CompileEngine(c, rtl.EngineBytecode)
	if err != nil {
		t.Fatalf("bytecode compile: %v", err)
	}
	return mc, mb
}

func compareState(t testing.TB, c *rtl.Circuit, mc, mb *rtl.Model, tag string) {
	t.Helper()
	for i := range c.Signals {
		if gc, gb := mc.PeekID(rtl.SigID(i)), mb.PeekID(rtl.SigID(i)); gc != gb {
			t.Fatalf("%s: signal %q: closure %#x, bytecode %#x", tag, c.Signals[i].Name, gc, gb)
		}
	}
	for mi := range c.Mems {
		for a := 0; a < c.Mems[mi].Depth; a++ {
			if gc, gb := mc.PeekMem(rtl.MemID(mi), a), mb.PeekMem(rtl.MemID(mi), a); gc != gb {
				t.Fatalf("%s: mem %q[%d]: closure %#x, bytecode %#x", tag, c.Mems[mi].Name, a, gc, gb)
			}
		}
	}
	if mc.Cycle() != mb.Cycle() {
		t.Fatalf("%s: cycle: closure %d, bytecode %d", tag, mc.Cycle(), mb.Cycle())
	}
}

// driveAllOps produces the step-s stimulus, hitting the divide-by-zero,
// oversized-shift and out-of-range edges on a regular cadence.
func driveAllOps(m *rtl.Model, rng *rand.Rand, s int) {
	av, bv, cv := rng.Uint64(), rng.Uint64(), rng.Uint64()
	switch s % 5 {
	case 1:
		bv = 0 // div/mod by zero
	case 2:
		bv = 200 // shift >= 64
	case 3:
		av = 0xff // index/memread out of range
	}
	m.SetInput("a", av)
	m.SetInput("b", bv)
	m.SetInput("c", cv)
	m.SetInput("d", uint64(s>>1)&1)
	m.SetInput("en", uint64(s)&1)
}

func TestEnginesDispatchIdentical(t *testing.T) {
	c := allOpsCircuit(t)
	mc, mb := compileBoth(t, c)
	compareState(t, c, mc, mb, "reset")
	rngC := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for s := 0; s < 300; s++ {
		driveAllOps(mc, rngC, s)
		driveAllOps(mb, rngB, s)
		mc.Tick()
		mb.Tick()
		compareState(t, c, mc, mb, fmt.Sprintf("step %d", s))
	}
}

func TestEngineSelectionAPI(t *testing.T) {
	found := map[rtl.Engine]bool{}
	for _, e := range rtl.Engines() {
		found[e] = true
	}
	if !found[rtl.EngineClosure] || !found[rtl.EngineBytecode] {
		t.Fatalf("Engines() = %v, want closure and bytecode", rtl.Engines())
	}
	if e, err := rtl.ParseEngine(""); err != nil || e != rtl.EngineClosure {
		t.Fatalf("ParseEngine(\"\") = %v, %v", e, err)
	}
	if e, err := rtl.ParseEngine("bytecode"); err != nil || e != rtl.EngineBytecode {
		t.Fatalf("ParseEngine(bytecode) = %v, %v", e, err)
	}
	if _, err := rtl.ParseEngine("jit"); err == nil {
		t.Fatal("ParseEngine(jit) succeeded, want error naming valid engines")
	}
	if _, err := rtl.CompileEngine(allOpsCircuit(t), "jit"); err == nil {
		t.Fatal("CompileEngine with unknown engine succeeded")
	}
	_, mb := compileBoth(t, allOpsCircuit(t))
	if mb.Engine() != rtl.EngineBytecode {
		t.Fatalf("Engine() = %q, want bytecode", mb.Engine())
	}
}

func countOps(code []rtlc.Inst, op rtlc.Op) int {
	n := 0
	for i := range code {
		if code[i].Op == op {
			n++
		}
	}
	return n
}

func TestOptimizationConstFold(t *testing.T) {
	b := rtl.NewBuilder("fold")
	o := b.Output("o", 8)
	b.Assign(o, rtl.Add(rtl.MulE(rtl.C(3, 8), rtl.C(5, 8)), rtl.C(2, 8)))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtlc.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Comb) != 1 || p.Comb[0].Op != rtlc.OpCopy {
		t.Fatalf("constant expression not folded to one copy:\n%s", p.Disasm())
	}
	if p.NTemp != 0 {
		t.Fatalf("folded program uses %d temps:\n%s", p.NTemp, p.Disasm())
	}
	mc, mb := compileBoth(t, c)
	if got := mb.Peek("o"); got != 17 || mc.Peek("o") != got {
		t.Fatalf("o = %d (closure %d), want 17", got, mc.Peek("o"))
	}
}

func TestOptimizationCSEAndRetarget(t *testing.T) {
	b := rtl.NewBuilder("cse")
	a := b.Input("a", 8)
	bb := b.Input("b", 8)
	x := b.Wire("x", 8)
	y := b.Wire("y", 8)
	z := b.Wire("z", 8)
	b.Assign(x, rtl.Add(b.Ref(a), b.Ref(bb)))
	b.Assign(y, rtl.Add(b.Ref(a), b.Ref(bb))) // identical expression
	b.Assign(z, rtl.Add(b.Ref(bb), b.Ref(a))) // commutative variant
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtlc.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(p.Comb, rtlc.OpAdd); n != 1 {
		t.Fatalf("CSE kept %d adds, want 1:\n%s", n, p.Disasm())
	}
	// The single add should have been retargeted to a signal slot directly,
	// so the program needs no temporaries at all.
	if p.NTemp != 0 {
		t.Fatalf("retargeting left %d temps:\n%s", p.NTemp, p.Disasm())
	}
}

func TestOptimizationMuxFusion(t *testing.T) {
	b := rtl.NewBuilder("fuse")
	a := b.Input("a", 8)
	bb := b.Input("b", 8)
	o := b.Output("o", 8)
	b.Assign(o, rtl.MuxE(rtl.Eq(b.Ref(a), rtl.C(3, 8)), b.Ref(a), b.Ref(bb)))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtlc.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(p.Comb, rtlc.OpMuxEq); n != 1 {
		t.Fatalf("mux/compare not fused:\n%s", p.Disasm())
	}
	// The standalone compare must have been swept as dead code.
	if n := countOps(p.Comb, rtlc.OpEq); n != 0 {
		t.Fatalf("fused compare left standalone OpEq:\n%s", p.Disasm())
	}
}

func TestDirtySetSkipsQuietRegisters(t *testing.T) {
	b := rtl.NewBuilder("gate")
	en := b.Input("en", 1)
	cnt := b.Reg("cnt", 16, 0)
	b.Seq(cnt, rtl.MuxE(b.Ref(en), rtl.Add(b.Ref(cnt), rtl.C(1, 16)), b.Ref(cnt)))
	o := b.Output("o", 16)
	b.Assign(o, b.Ref(cnt))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mc, mb := compileBoth(t, c)

	// Active phase: the counter changes every cycle, so nothing is skipped.
	mc.SetInput("en", 1)
	mb.SetInput("en", 1)
	for i := 0; i < 10; i++ {
		mc.Tick()
		mb.Tick()
	}
	if got := mb.SeqSkips(); got != 0 {
		t.Fatalf("active counter was skipped %d times", got)
	}
	// Quiet phase: after the enable-low edge settles, every evaluation is
	// provably redundant and must be skipped.
	mc.SetInput("en", 0)
	mb.SetInput("en", 0)
	for i := 0; i < 10; i++ {
		mc.Tick()
		mb.Tick()
	}
	if got := mb.SeqSkips(); got < 8 {
		t.Fatalf("quiet counter skipped only %d times, want >= 8", got)
	}
	compareState(t, c, mc, mb, "after quiet phase")
	if mc.Peek("o") != 10 {
		t.Fatalf("counter = %d, want 10", mc.Peek("o"))
	}

	// Fault injection must invalidate the gating so the flip propagates.
	skipsBefore := mb.SeqSkips()
	dc := mc.InjectStateFlip(3)
	db := mb.InjectStateFlip(3)
	if dc != db {
		t.Fatalf("flip sites differ: %q vs %q", dc, db)
	}
	mc.Tick()
	mb.Tick()
	compareState(t, c, mc, mb, "after flip")
	if mb.SeqSkips() != skipsBefore {
		t.Fatal("tick after fault injection was skipped")
	}
	if mc.SeqSkips() != 0 {
		t.Fatalf("closure engine reports %d skips, want 0", mc.SeqSkips())
	}
}

func TestCrossEngineCheckpoint(t *testing.T) {
	c := allOpsCircuit(t)
	run := func(m *rtl.Model, rng *rand.Rand, from, to int) {
		for s := from; s < to; s++ {
			driveAllOps(m, rng, s)
			m.Tick()
		}
	}
	for _, dir := range []struct {
		name       string
		save, load rtl.Engine
	}{
		{"closure-to-bytecode", rtl.EngineClosure, rtl.EngineBytecode},
		{"bytecode-to-closure", rtl.EngineBytecode, rtl.EngineClosure},
	} {
		t.Run(dir.name, func(t *testing.T) {
			src, err := rtl.CompileEngine(c, dir.save)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			run(src, rng, 0, 40)
			var buf bytes.Buffer
			if err := src.SaveCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			dst, err := rtl.CompileEngine(c, dir.load)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("cross-engine restore: %v", err)
			}
			compareState(t, c, src, dst, "restore")
			// Both engines must continue bit-identically from the restored
			// state under identical stimulus.
			rngA := rand.New(rand.NewSource(9))
			rngB := rand.New(rand.NewSource(9))
			for s := 0; s < 40; s++ {
				driveAllOps(src, rngA, s)
				driveAllOps(dst, rngB, s)
				src.Tick()
				dst.Tick()
				compareState(t, c, src, dst, fmt.Sprintf("post-restore step %d", s))
			}
		})
	}
}

func TestVCDByteIdentical(t *testing.T) {
	c := allOpsCircuit(t)
	mc, mb := compileBoth(t, c)
	var bufC, bufB bytes.Buffer
	mc.AttachVCD(&bufC, 1)
	mb.AttachVCD(&bufB, 1)
	rngC := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	for s := 0; s < 60; s++ {
		driveAllOps(mc, rngC, s)
		driveAllOps(mb, rngB, s)
		mc.Tick()
		mb.Tick()
	}
	if !bytes.Equal(bufC.Bytes(), bufB.Bytes()) {
		t.Fatalf("VCD output differs between engines (%d vs %d bytes)", bufC.Len(), bufB.Len())
	}
	if bufC.Len() == 0 {
		t.Fatal("VCD output empty")
	}
}

func TestFaultInjectionEquivalence(t *testing.T) {
	c := allOpsCircuit(t)
	mc, mb := compileBoth(t, c)
	if mc.StateBits() != mb.StateBits() {
		t.Fatalf("StateBits: %d vs %d", mc.StateBits(), mb.StateBits())
	}
	rngC := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	pickRng := rand.New(rand.NewSource(6))
	for s := 0; s < 120; s++ {
		driveAllOps(mc, rngC, s)
		driveAllOps(mb, rngB, s)
		mc.Tick()
		mb.Tick()
		if s%7 == 3 {
			pick := pickRng.Uint64()
			dc, db := mc.InjectStateFlip(pick), mb.InjectStateFlip(pick)
			if dc != db {
				t.Fatalf("step %d: flip sites differ: %q vs %q", s, dc, db)
			}
		}
		compareState(t, c, mc, mb, fmt.Sprintf("step %d", s))
	}
}

// TestTickAllocsPerRun enforces the zero-allocation discipline on the Tick
// hot path for both engines, matching the port/cache regression tests.
func TestTickAllocsPerRun(t *testing.T) {
	c := allOpsCircuit(t)
	for _, engine := range []rtl.Engine{rtl.EngineClosure, rtl.EngineBytecode} {
		t.Run(string(engine), func(t *testing.T) {
			m, err := rtl.CompileEngine(c, engine)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			s := 0
			allocs := testing.AllocsPerRun(200, func() {
				driveAllOps(m, rng, s)
				s++
				m.Tick()
			})
			if allocs != 0 {
				t.Fatalf("engine %s: Tick allocates %.1f times per cycle, want 0", engine, allocs)
			}
		})
	}
}
