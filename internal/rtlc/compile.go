package rtlc

import (
	"fmt"
	"math/bits"
	"sort"

	"gem5rtl/internal/rtl"
)

// The compiler lowers the levelised rtl.Circuit IR to a Program in one
// demand-driven pass with the optimizations applied online, then a cleanup
// pass:
//
//   - constant folding: any instruction whose register operands all hold
//     pool constants is executed at compile time by the same interpreter
//     that runs at simulation time (exec), so folded results can never
//     diverge from runtime semantics — including the division-by-zero and
//     shift-overflow corner cases.
//   - copy propagation: signal reads resolve through a per-segment alias
//     table to the register that currently holds the value (a temp, another
//     signal slot, or a pool constant), and provably-redundant masking
//     copies are elided using a conservative per-register value-width bound.
//   - common-subexpression elimination: per-segment value numbering over
//     canonicalised instructions (commutative operands sorted). It is sound
//     because a segment is SSA-like — every signal has a single driver, the
//     comb pass runs in levelised order, and memories are constant within a
//     segment.
//   - mux/compare fusion: (a==b) ? t : f and the <, >=, !=, <=, > variants
//     collapse into single OpMux* instructions, the shape that dominates
//     register-file read muxes; !cond muxes swap arms instead of negating.
//   - dead-code elimination: a backward liveness sweep per segment drops
//     instructions whose results reach no signal store or port output (for
//     example compares subsumed by a fused mux). Signal stores themselves
//     are never dead: every signal is architecturally observable through
//     Peek, VCD dumps and checkpoints.
//
// Finally the virtual register space is compacted: the constant pool keeps
// only constants the optimized code still references, and each segment's
// temporaries are renumbered into one shared scratch region.

// Virtual register space layout during compilation; finalize() renumbers
// into the dense [signals | constants | temps] file.
const (
	tempVBase  = 1 << 28
	constVBase = 1 << 30
)

// vnKey identifies an instruction for value numbering: opcode, immediates,
// operands and mask — everything but the destination.
type vnKey struct {
	op     Op
	wa, wb uint8
	a, b   uint32
	c, d   uint32
	mask   uint64
}

type coneSet struct {
	sigs map[rtl.SigID]struct{}
	mems map[rtl.MemID]struct{}
}

func newConeSet() *coneSet {
	return &coneSet{sigs: map[rtl.SigID]struct{}{}, mems: map[rtl.MemID]struct{}{}}
}

func (cs *coneSet) merge(o *coneSet) {
	for s := range o.sigs {
		cs.sigs[s] = struct{}{}
	}
	for m := range o.mems {
		cs.mems[m] = struct{}{}
	}
}

type compiler struct {
	c    *rtl.Circuit
	nsig int

	// Constant pool under construction (virtual ids; compacted later).
	constIdx map[uint64]uint32
	consts   []uint64

	// Global copy-propagation facts: comb-driven signals proven constant.
	constWire map[rtl.SigID]uint32

	// Per-segment state.
	code   []Inst
	vn     map[vnKey]uint32
	sigVal map[rtl.SigID]uint32

	// Provable value-width bound per temp register (signals and constants
	// are derived on the fly). Used to elide masking that cannot change the
	// value — conservative, since Const values and memory init words may
	// carry bits above their declared width, which the closure engine
	// propagates raw until the next mask.
	tempW map[uint32]int

	nTempV uint32

	// fresh tracks whether the most recently returned value register was
	// produced by the instruction just emitted (and not a CSE hit), which
	// makes it eligible for store retargeting in root().
	fresh    bool
	freshKey vnKey

	// Cone computation.
	combDriver map[rtl.SigID]rtl.Expr
	coneMemo   map[rtl.SigID]*coneSet
}

// Compile validates and lowers a circuit to an optimized Program. The
// resulting program is bit-exact against the rtl closure engine by
// construction; see the package tests and FuzzEngines for the enforcement.
func Compile(c *rtl.Circuit) (*Program, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.CombOrder()
	if err != nil {
		return nil, err
	}
	if len(c.Signals) >= tempVBase {
		return nil, fmt.Errorf("rtlc: circuit %q has too many signals (%d)", c.Name, len(c.Signals))
	}
	cc := &compiler{
		c:          c,
		nsig:       len(c.Signals),
		constIdx:   map[uint64]uint32{},
		constWire:  map[rtl.SigID]uint32{},
		tempW:      map[uint32]int{},
		nTempV:     tempVBase,
		combDriver: map[rtl.SigID]rtl.Expr{},
		coneMemo:   map[rtl.SigID]*coneSet{},
	}
	for i := range c.Combs {
		cc.combDriver[c.Combs[i].Dst] = c.Combs[i].Src
	}

	p := &Program{
		NSig:     cc.nsig,
		SigWords: (cc.nsig + 63) / 64,
		MemWords: (len(c.Mems) + 63) / 64,
	}

	// Combinational pass: one segment in levelised order, storing into the
	// architectural signal slots.
	cc.beginSegment()
	for _, idx := range order {
		a := &c.Combs[idx]
		cc.combRoot(a.Src, a.Dst)
	}
	p.Comb = cc.code

	// Sequential next-state functions: one segment each, so the dirty-set
	// pass can skip them independently.
	for i := range c.Seqs {
		sq := &c.Seqs[i]
		cc.beginSegment()
		out := cc.port(sq.Next, rtl.Mask(c.Signals[sq.Dst].Width))
		cone := newConeSet()
		cc.exprRoots(sq.Next, cone)
		sp := SeqProg{Dst: sq.Dst, Out: out, Code: cc.code}
		sp.Cone, sp.MemCone = cc.coneWords(cone)
		p.Seqs = append(p.Seqs, sp)
	}

	// Memory write ports: enable and address are raw expression values,
	// data is masked to the memory width — exactly the closure capture.
	for i := range c.MemWrites {
		w := &c.MemWrites[i]
		mem := &c.Mems[w.Mem]
		cc.beginSegment()
		en := cc.port(w.En, ^uint64(0))
		addr := cc.port(w.Addr, ^uint64(0))
		data := cc.port(w.Data, rtl.Mask(mem.Width))
		cone := newConeSet()
		cc.exprRoots(w.En, cone)
		cc.exprRoots(w.Addr, cone)
		cc.exprRoots(w.Data, cone)
		mw := MemWProg{
			Mem: w.Mem, Depth: mem.Depth, Mask: rtl.Mask(mem.Width),
			Code: cc.code, En: en, Addr: addr, Data: data,
		}
		mw.Cone, mw.MemCone = cc.coneWords(cone)
		p.MemWs = append(p.MemWs, mw)
	}

	for i, s := range c.Signals {
		if s.Kind == rtl.SigInput {
			p.Inputs = append(p.Inputs, rtl.SigID(i))
		}
	}

	cc.finalize(p)
	return p, nil
}

func (cc *compiler) beginSegment() {
	cc.code = nil
	cc.vn = map[vnKey]uint32{}
	cc.sigVal = map[rtl.SigID]uint32{}
	cc.fresh = false
}

func (cc *compiler) newTempV() uint32 {
	r := cc.nTempV
	cc.nTempV++
	return r
}

func (cc *compiler) constReg(v uint64) uint32 {
	if r, ok := cc.constIdx[v]; ok {
		return r
	}
	r := constVBase + uint32(len(cc.consts))
	cc.consts = append(cc.consts, v)
	cc.constIdx[v] = r
	return r
}

// constVal reports whether r is a pool constant, and its value.
func (cc *compiler) constVal(r uint32) (uint64, bool) {
	if r >= constVBase {
		return cc.consts[r-constVBase], true
	}
	return 0, false
}

// widthOf returns a provable upper bound on the bit width of the value held
// in register r.
func (cc *compiler) widthOf(r uint32) int {
	switch {
	case r >= constVBase:
		return bits.Len64(cc.consts[r-constVBase])
	case r >= tempVBase:
		return cc.tempW[r]
	default:
		return cc.c.Signals[r].Width
	}
}

// resultWidth bounds the width of the value an instruction produces.
func (cc *compiler) resultWidth(in *Inst) int {
	switch in.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpSLt, OpSLe, OpSGt, OpSGe,
		OpLAnd, OpLOr, OpRedXor, OpIndex:
		return 1
	case OpShlOr:
		w := cc.widthOf(in.A) + int(in.WA)
		if bw := cc.widthOf(in.B); bw > w {
			w = bw
		}
		if w > 64 {
			w = 64
		}
		return w
	default:
		return bits.Len64(in.Mask)
	}
}

// commutative reports whether the opcode's A/B operands may be swapped.
func commutative(op Op) bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLAnd, OpLOr,
		OpMuxEq, OpMuxNe:
		return true
	}
	return false
}

// tryFold executes in at compile time when every register operand is a pool
// constant, using the runtime interpreter itself so fold and execution can
// never disagree. OpMemRead is excluded (memory contents are runtime state).
func (cc *compiler) tryFold(in Inst) (uint32, bool) {
	if in.Op == OpMemRead {
		return 0, false
	}
	var vals [4]uint64
	n := 0
	ok := true
	(&in).eachSrc(func(r *uint32) {
		if !ok {
			return
		}
		v, isC := cc.constVal(*r)
		if !isC {
			ok = false
			return
		}
		vals[n] = v
		*r = uint32(n)
		n++
	})
	if !ok {
		return 0, false
	}
	regs := [5]uint64{vals[0], vals[1], vals[2], vals[3], 0}
	in.Dst = 4
	one := [1]Inst{in}
	exec(one[:], regs[:], nil)
	return cc.constReg(regs[4]), true
}

// emit appends an instruction after canonicalisation, folding and value
// numbering, and returns the register holding its result.
func (cc *compiler) emit(in Inst) uint32 {
	if commutative(in.Op) && in.A > in.B {
		in.A, in.B = in.B, in.A
	}
	if r, ok := cc.tryFold(in); ok {
		cc.fresh = false
		return r
	}
	key := vnKey{in.Op, in.WA, in.WB, in.A, in.B, in.C, in.D, in.Mask}
	if r, ok := cc.vn[key]; ok {
		cc.fresh = false
		return r
	}
	dst := cc.newTempV()
	in.Dst = dst
	cc.code = append(cc.code, in)
	cc.vn[key] = dst
	cc.tempW[dst] = cc.resultWidth(&in)
	cc.fresh = true
	cc.freshKey = key
	return dst
}

// resolve returns the register currently holding signal s's value: an alias
// established earlier in this segment, a proven-constant wire, or the
// signal's own slot.
func (cc *compiler) resolve(s rtl.SigID) uint32 {
	if r, ok := cc.sigVal[s]; ok {
		return r
	}
	if r, ok := cc.constWire[s]; ok {
		return r
	}
	return uint32(s)
}

// coerce returns a register holding r's value masked with mask, eliding the
// copy when the mask provably cannot change the value.
func (cc *compiler) coerce(r uint32, mask uint64) uint32 {
	if v, ok := cc.constVal(r); ok {
		if v&mask == v {
			return r
		}
		cc.fresh = false
		return cc.constReg(v & mask)
	}
	if cc.widthOf(r) <= bits.Len64(mask) {
		return r
	}
	return cc.emit(Inst{Op: OpCopy, A: r, Mask: mask})
}

// port lowers a port expression (sequential next-state, memory-write enable/
// address/data) and returns the register holding its value under mask.
func (cc *compiler) port(e rtl.Expr, mask uint64) uint32 {
	return cc.coerce(cc.expr(e), mask)
}

// combRoot lowers one combinational assignment, storing into the signal's
// architectural slot. Where possible the producing instruction is retargeted
// to write the slot directly (with the destination mask folded in) instead
// of going through a temp plus copy.
func (cc *compiler) combRoot(e rtl.Expr, dst rtl.SigID) {
	dstW := cc.c.Signals[dst].Width
	dmask := rtl.Mask(dstW)
	slot := uint32(dst)
	r := cc.expr(e)

	if v, ok := cc.constVal(r); ok {
		cc.code = append(cc.code, Inst{Op: OpCopy, Dst: slot, A: r, Mask: dmask})
		cr := cc.constReg(v & dmask)
		cc.constWire[dst] = cr
		cc.sigVal[dst] = cr
		return
	}
	if cc.fresh {
		last := &cc.code[len(cc.code)-1]
		if last.Dst == r && (opUsesMask(last.Op) || cc.widthOf(r) <= dstW) {
			if combined := last.Mask & dmask; !opUsesMask(last.Op) || combined == last.Mask {
				// The store mask cannot change the value, so the slot
				// still holds the expression's value for CSE reuse.
				cc.vn[cc.freshKey] = slot
			} else {
				// Narrowing store: the slot no longer carries the full
				// expression value, so retire the value-number entry.
				delete(cc.vn, cc.freshKey)
			}
			if opUsesMask(last.Op) {
				last.Mask &= dmask
			}
			last.Dst = slot
			cc.sigVal[dst] = slot
			cc.fresh = false
			return
		}
	}
	cc.code = append(cc.code, Inst{Op: OpCopy, Dst: slot, A: r, Mask: dmask})
	if cc.widthOf(r) <= dstW {
		cc.sigVal[dst] = r
	} else {
		cc.sigVal[dst] = slot
	}
	cc.fresh = false
}

// expr lowers an expression tree, returning the register holding its value.
func (cc *compiler) expr(e rtl.Expr) uint32 {
	switch v := e.(type) {
	case *rtl.Const:
		cc.fresh = false
		return cc.constReg(v.Val)
	case *rtl.Ref:
		cc.fresh = false
		return cc.resolve(v.Sig)
	case *rtl.Unary:
		return cc.unary(v)
	case *rtl.Binary:
		return cc.binary(v)
	case *rtl.Mux:
		return cc.mux(v)
	case *rtl.Slice:
		x := cc.expr(v.X)
		mask := rtl.Mask(v.Hi - v.Lo + 1)
		if v.Lo == 0 {
			return cc.coerce(x, mask)
		}
		return cc.emit(Inst{Op: OpShrC, A: x, WA: uint8(v.Lo), Mask: mask})
	case *rtl.Index:
		x := cc.expr(v.X)
		b := cc.expr(v.Bit)
		w := v.X.Width()
		if bv, ok := cc.constVal(b); ok {
			// Constant bit select: out-of-range reads zero, in-range
			// lowers to a constant shift.
			if bv >= uint64(w) {
				return cc.constReg(0)
			}
			return cc.emit(Inst{Op: OpShrC, A: x, WA: uint8(bv), Mask: 1})
		}
		return cc.emit(Inst{Op: OpIndex, A: x, B: b, WA: uint8(w)})
	case *rtl.Concat:
		// acc = acc<<w | part, left to right — the first iteration's
		// 0<<w|part collapses to the part itself.
		var acc uint32
		for i, part := range v.Parts {
			pr := cc.expr(part)
			if i == 0 {
				acc = pr
				continue
			}
			acc = cc.emit(Inst{Op: OpShlOr, A: acc, B: pr, WA: uint8(part.Width())})
		}
		return acc
	case *rtl.MemRead:
		a := cc.expr(v.Addr)
		// Reads are raw (Mask all-ones): the closure engine masks memory
		// words only at the enclosing store, and init words may legally
		// carry bits above the declared width.
		return cc.emit(Inst{Op: OpMemRead, A: a, B: uint32(v.Mem), Mask: ^uint64(0)})
	}
	panic(fmt.Sprintf("rtlc: lower of unknown node %T", e))
}

func (cc *compiler) unary(v *rtl.Unary) uint32 {
	x := cc.expr(v.X)
	switch v.Op {
	case rtl.UnNot:
		return cc.emit(Inst{Op: OpNot, A: x, Mask: rtl.Mask(v.W)})
	case rtl.UnNeg:
		return cc.emit(Inst{Op: OpNeg, A: x, Mask: rtl.Mask(v.W)})
	case rtl.UnLNot:
		return cc.emit(Inst{Op: OpEq, A: x, B: cc.constReg(0)})
	case rtl.UnRedAnd:
		return cc.emit(Inst{Op: OpEq, A: x, B: cc.constReg(rtl.Mask(v.X.Width()))})
	case rtl.UnRedOr:
		return cc.emit(Inst{Op: OpNe, A: x, B: cc.constReg(0)})
	case rtl.UnRedXor:
		return cc.emit(Inst{Op: OpRedXor, A: x})
	}
	panic(fmt.Sprintf("rtlc: unknown unary op %d", v.Op))
}

func (cc *compiler) binary(v *rtl.Binary) uint32 {
	x := cc.expr(v.X)
	y := cc.expr(v.Y)
	mask := rtl.Mask(v.W)
	simple := func(op Op) uint32 {
		return cc.emit(Inst{Op: op, A: x, B: y, Mask: mask})
	}
	switch v.Op {
	case rtl.OpAdd:
		return simple(OpAdd)
	case rtl.OpSub:
		return simple(OpSub)
	case rtl.OpMul:
		return simple(OpMul)
	case rtl.OpDiv:
		return simple(OpDiv)
	case rtl.OpMod:
		return simple(OpMod)
	case rtl.OpAnd:
		return simple(OpAnd)
	case rtl.OpOr:
		return simple(OpOr)
	case rtl.OpXor:
		return simple(OpXor)
	case rtl.OpShl:
		return simple(OpShl)
	case rtl.OpShr:
		return simple(OpShr)
	case rtl.OpSra:
		return cc.emit(Inst{Op: OpSra, A: x, B: y, WA: uint8(64 - v.X.Width()), Mask: mask})
	case rtl.OpEq:
		return simple(OpEq)
	case rtl.OpNe:
		return simple(OpNe)
	case rtl.OpLt:
		return simple(OpLt)
	case rtl.OpLe:
		return simple(OpLe)
	case rtl.OpGt:
		return simple(OpGt)
	case rtl.OpGe:
		return simple(OpGe)
	case rtl.OpSLt, rtl.OpSLe, rtl.OpSGt, rtl.OpSGe:
		op := map[rtl.Op]Op{
			rtl.OpSLt: OpSLt, rtl.OpSLe: OpSLe, rtl.OpSGt: OpSGt, rtl.OpSGe: OpSGe,
		}[v.Op]
		return cc.emit(Inst{
			Op: op, A: x, B: y,
			WA: uint8(64 - v.X.Width()), WB: uint8(64 - v.Y.Width()),
		})
	case rtl.OpLAnd:
		return simple(OpLAnd)
	case rtl.OpLOr:
		return simple(OpLOr)
	}
	panic(fmt.Sprintf("rtlc: unknown binary op %d", v.Op))
}

func (cc *compiler) mux(v *rtl.Mux) uint32 {
	cond, t, f := v.Cond, v.T, v.F
	// !cond muxes swap arms instead of materialising the negation.
	for {
		ln, ok := cond.(*rtl.Unary)
		if !ok || ln.Op != rtl.UnLNot {
			break
		}
		cond = ln.X
		t, f = f, t
	}
	mask := rtl.Mask(v.W)
	condR := cc.expr(cond)
	if cv, ok := cc.constVal(condR); ok {
		arm := t
		if cv == 0 {
			arm = f
		}
		return cc.coerce(cc.expr(arm), mask)
	}
	tR := cc.expr(t)
	fR := cc.expr(f)
	// Compare fusion: a cond that is itself an unsigned compare collapses
	// with the select into one instruction. The standalone compare emitted
	// while lowering condR above becomes dead and is swept by DCE unless
	// something else still uses it.
	if b, ok := cond.(*rtl.Binary); ok {
		var op Op
		x, y := b.X, b.Y
		switch b.Op {
		case rtl.OpEq:
			op = OpMuxEq
		case rtl.OpNe:
			op = OpMuxNe
		case rtl.OpLt:
			op = OpMuxLt
		case rtl.OpGe:
			op = OpMuxGe
		case rtl.OpLe: // a<=b ⇔ b>=a
			op, x, y = OpMuxGe, b.Y, b.X
		case rtl.OpGt: // a>b ⇔ b<a
			op, x, y = OpMuxLt, b.Y, b.X
		}
		if op != 0 {
			xr := cc.expr(x)
			yr := cc.expr(y)
			return cc.emit(Inst{Op: op, A: xr, B: yr, C: tR, D: fR, Mask: mask})
		}
	}
	return cc.emit(Inst{Op: OpMux, A: condR, B: tR, C: fR, Mask: mask})
}

// exprRoots accumulates the root signals (non-comb-driven: inputs, register
// outputs, undriven wires) and memories that e transitively depends on,
// following combinational drivers with memoisation.
func (cc *compiler) exprRoots(e rtl.Expr, cs *coneSet) {
	switch v := e.(type) {
	case *rtl.Const:
	case *rtl.Ref:
		cc.refRoots(v.Sig, cs)
	case *rtl.Unary:
		cc.exprRoots(v.X, cs)
	case *rtl.Binary:
		cc.exprRoots(v.X, cs)
		cc.exprRoots(v.Y, cs)
	case *rtl.Mux:
		cc.exprRoots(v.Cond, cs)
		cc.exprRoots(v.T, cs)
		cc.exprRoots(v.F, cs)
	case *rtl.Slice:
		cc.exprRoots(v.X, cs)
	case *rtl.Index:
		cc.exprRoots(v.X, cs)
		cc.exprRoots(v.Bit, cs)
	case *rtl.Concat:
		for _, p := range v.Parts {
			cc.exprRoots(p, cs)
		}
	case *rtl.MemRead:
		cs.mems[v.Mem] = struct{}{}
		cc.exprRoots(v.Addr, cs)
	}
}

func (cc *compiler) refRoots(s rtl.SigID, cs *coneSet) {
	if memo, ok := cc.coneMemo[s]; ok {
		cs.merge(memo)
		return
	}
	drv, ok := cc.combDriver[s]
	if !ok {
		cs.sigs[s] = struct{}{}
		return
	}
	sub := newConeSet()
	cc.exprRoots(drv, sub)
	cc.coneMemo[s] = sub
	cs.merge(sub)
}

// coneWords converts a root set to sorted bitset-intersection masks.
func (cc *compiler) coneWords(cs *coneSet) (sig, mem []ConeWord) {
	sigWords := map[int]uint64{}
	for s := range cs.sigs {
		sigWords[int(s)>>6] |= 1 << (uint(s) & 63)
	}
	memWords := map[int]uint64{}
	for m := range cs.mems {
		memWords[int(m)>>6] |= 1 << (uint(m) & 63)
	}
	toSlice := func(ws map[int]uint64) []ConeWord {
		out := make([]ConeWord, 0, len(ws))
		for w, m := range ws {
			out = append(out, ConeWord{Word: w, Mask: m})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Word < out[j].Word })
		return out
	}
	return toSlice(sigWords), toSlice(memWords)
}

// segment is one straight-line code region plus the registers that must
// survive it (port outputs); comb stores to signal slots are implicit roots.
type segment struct {
	code *[]Inst
	outs []*uint32
}

// finalize runs dead-code elimination per segment and renumbers the virtual
// register space into the dense [signals | constants | temps] file.
func (cc *compiler) finalize(p *Program) {
	segs := []segment{{code: &p.Comb}}
	for i := range p.Seqs {
		segs = append(segs, segment{code: &p.Seqs[i].Code, outs: []*uint32{&p.Seqs[i].Out}})
	}
	for i := range p.MemWs {
		w := &p.MemWs[i]
		segs = append(segs, segment{code: &w.Code, outs: []*uint32{&w.En, &w.Addr, &w.Data}})
	}

	// Backward liveness DCE within each segment.
	nsig := uint32(cc.nsig)
	for _, sg := range segs {
		live := map[uint32]bool{}
		for _, out := range sg.outs {
			live[*out] = true
		}
		code := *sg.code
		kept := make([]Inst, 0, len(code))
		for i := len(code) - 1; i >= 0; i-- {
			in := code[i]
			if in.Dst >= nsig && !live[in.Dst] {
				continue
			}
			(&in).eachSrc(func(r *uint32) { live[*r] = true })
			kept = append(kept, in)
		}
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		*sg.code = kept
	}

	// Compact the constant pool to the constants the optimized code still
	// references, in deterministic first-use order.
	constMap := map[uint32]uint32{}
	noteConst := func(r uint32) {
		if r >= constVBase {
			if _, ok := constMap[r]; !ok {
				constMap[r] = nsig + uint32(len(p.Consts))
				p.Consts = append(p.Consts, cc.consts[r-constVBase])
			}
		}
	}
	for _, sg := range segs {
		code := *sg.code
		for i := range code {
			(&code[i]).eachSrc(func(r *uint32) { noteConst(*r) })
		}
		for _, out := range sg.outs {
			noteConst(*out)
		}
	}
	p.NConst = len(p.Consts)

	// Renumber temps per segment into one shared scratch region.
	tempBase := nsig + uint32(p.NConst)
	maxTemp := 0
	for _, sg := range segs {
		tempMap := map[uint32]uint32{}
		remap := func(r *uint32) {
			switch {
			case *r >= constVBase:
				*r = constMap[*r]
			case *r >= tempVBase:
				t, ok := tempMap[*r]
				if !ok {
					panic("rtlc: temp used before definition")
				}
				*r = t
			}
		}
		code := *sg.code
		for i := range code {
			in := &code[i]
			in.eachSrc(remap)
			if in.Dst >= tempVBase {
				t, ok := tempMap[in.Dst]
				if !ok {
					t = tempBase + uint32(len(tempMap))
					tempMap[in.Dst] = t
				}
				in.Dst = t
			}
		}
		for _, out := range sg.outs {
			remap(out)
		}
		if len(tempMap) > maxTemp {
			maxTemp = len(tempMap)
		}
	}
	p.NTemp = maxTemp
}
