package rtlc

import (
	"fmt"

	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
)

// VM executes a compiled Program behind the rtl.Backend interface. The first
// NSig slots of its register file are the architectural signal values —
// rtl.Model adopts them as its value store, so Peek/SetInput, VCD dumps,
// checkpoints and fault injection observe and mutate VM state directly.
//
// The sequential pass is activity-gated: each register's next-state program
// carries the precomputed set of root signals and memories its input cone
// depends on, and the VM tracks which roots changed (inputs by snapshot
// comparison, registers and memories by commit-time value comparison). A
// register whose cone saw no change keeps its value and its evaluation is
// skipped — observable only through Skipped() and wall-clock time, never in
// results. Any mutation the VM cannot see (reset, checkpoint restore, fault
// injection, memory pokes) must call Invalidate, which forces the next Tick
// to evaluate everything.
type VM struct {
	p    *Program
	regs []uint64
	mems [][]uint64

	dirty    []uint64
	memDirty []uint64
	allDirty bool
	extEval  bool
	inSnap   []uint64

	next    []uint64
	memwBuf []memWrite
	memRun  []bool

	skipped uint64

	// Self-profiler phase attribution (AttachProfiler). Nil when off.
	prof    *sim.Profiler
	ownComb sim.OwnerID
	ownSeq  sim.OwnerID
	ownMemw sim.OwnerID
}

type memWrite struct {
	mem  rtl.MemID
	addr int
	data uint64
}

// NewVM instantiates a VM for a compiled program, sharing the given memory
// storage (one word slice per circuit memory, depths matching the circuit).
func NewVM(p *Program, mems [][]uint64) (*VM, error) {
	for i := range p.MemWs {
		w := &p.MemWs[i]
		if int(w.Mem) >= len(mems) || len(mems[w.Mem]) != w.Depth {
			return nil, fmt.Errorf("rtlc: memory storage shape mismatch for mem %d", w.Mem)
		}
	}
	v := &VM{
		p:        p,
		regs:     make([]uint64, p.RegsLen()),
		mems:     mems,
		dirty:    make([]uint64, p.SigWords),
		memDirty: make([]uint64, p.MemWords),
		allDirty: true,
		inSnap:   make([]uint64, len(p.Inputs)),
		next:     make([]uint64, len(p.Seqs)),
		memwBuf:  make([]memWrite, 0, len(p.MemWs)),
		memRun:   make([]bool, len(mems)),
	}
	copy(v.regs[p.NSig:], p.Consts)
	return v, nil
}

// Vals returns the architectural signal slots of the register file.
func (v *VM) Vals() []uint64 { return v.regs[:v.p.NSig] }

// Eval settles the combinational logic: one straight-line bytecode pass in
// levelised order. External Eval calls may observe transient input values
// that are reverted before the next Tick (set/eval/set-back probing), so the
// next Tick's leading settle can never be elided after one.
func (v *VM) Eval() {
	exec(v.p.Comb, v.regs, v.mems)
	v.extEval = true
}

// Invalidate discards all activity-gating state; the next Tick evaluates
// every sequential program.
func (v *VM) Invalidate() { v.allDirty = true }

// Skipped reports how many sequential next-state evaluations were elided.
func (v *VM) Skipped() uint64 { return v.skipped }

// AttachProfiler implements rtl.PhaseProfiled: Tick sub-attributes its comb
// settles, sequential captures/commits and memory write-port passes to the
// given self-profiler owners. Phase counts reflect the work the VM really
// performs — activity gating elides phases, so a quiet model charges almost
// nothing — while simulation results remain bit-exact.
func (v *VM) AttachProfiler(p *sim.Profiler, comb, seq, memw sim.OwnerID) {
	v.prof, v.ownComb, v.ownSeq, v.ownMemw = p, comb, seq, memw
}

// enter switches self-profiler attribution to owner o (nil-safe).
func (v *VM) enter(o sim.OwnerID) sim.OwnerID {
	if v.prof == nil {
		return 0
	}
	return v.prof.Enter(o)
}

// exit restores the owner saved by enter (nil-safe).
func (v *VM) exit(prev sim.OwnerID) {
	if v.prof != nil {
		v.prof.Exit(prev)
	}
}

func (v *VM) markSig(s uint32) { v.dirty[s>>6] |= 1 << (s & 63) }

func bitsetZero(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return false
		}
	}
	return true
}

func (v *VM) coneDirty(cone, memCone []ConeWord) bool {
	for _, cw := range cone {
		if v.dirty[cw.Word]&cw.Mask != 0 {
			return true
		}
	}
	for _, cw := range memCone {
		if v.memDirty[cw.Word]&cw.Mask != 0 {
			return true
		}
	}
	return false
}

// Tick advances one clock cycle: settle combinational logic, capture every
// register's next value and memory write with pre-edge state, commit, and
// settle again — bit-exact against the closure engine's Tick, minus the
// evaluations the dirty set proves redundant. Three further elisions ride on
// the same dirty tracking:
//
//   - the leading settle is skipped when no root changed since the previous
//     trailing settle (no input edge, no external Eval, not invalidated) —
//     the combinational slots then provably still hold their fixed point;
//   - a memory's write ports are skipped as a group when every port's input
//     cone is clean — each port then recomputes last cycle's enable/address/
//     data, whose committed write left the array word already equal to the
//     data. Gating is all-or-nothing per memory so last-writer-wins ordering
//     between ports is never reordered;
//   - the trailing settle is skipped when no commit changed a value — the
//     post-edge state equals the pre-edge state the leading settle (or its
//     inherited fixed point) already covered.
func (v *VM) Tick() {
	// Externally driven inputs have no commit point, so detect changes by
	// snapshot comparison. The marks feed this cycle's gating and are
	// consumed (cleared) below.
	inChanged := false
	for i, id := range v.p.Inputs {
		if nv := v.regs[id]; nv != v.inSnap[i] {
			v.inSnap[i] = nv
			v.markSig(uint32(id))
			inChanged = true
		}
	}
	// Globally quiet fast path: with no root dirty at all, every seq and
	// write-port cone is clean, so the cycle reduces to "skip everything" —
	// no captures, no commits, no settles (beyond honouring a pending
	// external Eval). This is the steady state between event bursts.
	if !v.allDirty && !inChanged && bitsetZero(v.dirty) && bitsetZero(v.memDirty) {
		if v.extEval {
			prev := v.enter(v.ownComb)
			exec(v.p.Comb, v.regs, v.mems)
			v.exit(prev)
			v.extEval = false
		}
		v.skipped += uint64(len(v.p.Seqs))
		return
	}

	if v.allDirty || v.extEval || inChanged {
		prev := v.enter(v.ownComb)
		exec(v.p.Comb, v.regs, v.mems)
		v.exit(prev)
	}
	v.extEval = false

	// Capture memory writes with pre-edge values, skipping every port of a
	// memory whose ports' cones are all clean.
	v.memwBuf = v.memwBuf[:0]
	if len(v.p.MemWs) > 0 {
		prev := v.enter(v.ownMemw)
		for i := range v.memRun {
			v.memRun[i] = v.allDirty
		}
		if !v.allDirty {
			for i := range v.p.MemWs {
				w := &v.p.MemWs[i]
				if !v.memRun[w.Mem] && v.coneDirty(w.Cone, w.MemCone) {
					v.memRun[w.Mem] = true
				}
			}
		}
		for i := range v.p.MemWs {
			w := &v.p.MemWs[i]
			if !v.memRun[w.Mem] {
				continue
			}
			exec(w.Code, v.regs, v.mems)
			if v.regs[w.En] != 0 {
				if addr := v.regs[w.Addr]; addr < uint64(w.Depth) {
					v.memwBuf = append(v.memwBuf, memWrite{w.Mem, int(addr), v.regs[w.Data] & w.Mask})
				}
			}
		}
		v.exit(prev)
	}

	// Capture register next-state, skipping programs whose input cones are
	// clean: the register then provably recomputes its current value.
	prevSeq := v.enter(v.ownSeq)
	for j := range v.p.Seqs {
		sq := &v.p.Seqs[j]
		if v.allDirty || v.coneDirty(sq.Cone, sq.MemCone) {
			exec(sq.Code, v.regs, v.mems)
			v.next[j] = v.regs[sq.Out]
		} else {
			v.skipped++
			v.next[j] = v.regs[sq.Dst]
		}
	}

	// The marks above were consumed by this cycle's gating; marks set by
	// the commits below feed the next cycle.
	for i := range v.dirty {
		v.dirty[i] = 0
	}
	for i := range v.memDirty {
		v.memDirty[i] = 0
	}
	v.allDirty = false

	// Commit, marking roots that actually changed value.
	changed := false
	for j := range v.p.Seqs {
		dst := uint32(v.p.Seqs[j].Dst)
		if v.regs[dst] != v.next[j] {
			v.regs[dst] = v.next[j]
			v.markSig(dst)
			changed = true
		}
	}
	for _, w := range v.memwBuf {
		words := v.mems[w.mem]
		if words[w.addr] != w.data {
			words[w.addr] = w.data
			v.memDirty[int(w.mem)>>6] |= 1 << (uint(w.mem) & 63)
			changed = true
		}
	}
	v.exit(prevSeq)
	if changed {
		prev := v.enter(v.ownComb)
		exec(v.p.Comb, v.regs, v.mems)
		v.exit(prev)
	}
}
