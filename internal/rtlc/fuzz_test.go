package rtlc_test

import (
	"fmt"
	"testing"

	"gem5rtl/internal/rtl"
)

// fz is a deterministic byte-stream reader for the fuzz circuit generator.
// Exhausted input reads as zero, so every byte slice maps to a well-defined
// circuit and stimulus.
type fz struct {
	data []byte
	pos  int
}

func (f *fz) b() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	v := f.data[f.pos]
	f.pos++
	return v
}

func (f *fz) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f.b())
	}
	return v
}

// genExpr derives an expression over the available signal pool from the byte
// stream. Depth is bounded; operand widths follow the builder's width rules
// by construction so generated circuits always validate.
func genExpr(f *fz, pool []rtl.Expr, mem rtl.MemID, memW int, hasMem bool, depth int) rtl.Expr {
	pick := func() rtl.Expr { return pool[int(f.b())%len(pool)] }
	if depth >= 2 {
		if f.b()&1 == 0 {
			return pick()
		}
		return rtl.C(f.u64(), 1+int(f.b()%64))
	}
	sub := func() rtl.Expr { return genExpr(f, pool, mem, memW, hasMem, depth+1) }
	switch f.b() % 33 {
	case 0:
		return rtl.C(f.u64(), 1+int(f.b()%64))
	case 1:
		return pick()
	case 2:
		return rtl.Add(sub(), sub())
	case 3:
		return rtl.Sub(sub(), sub())
	case 4:
		return rtl.MulE(sub(), sub())
	case 5:
		return rtl.DivE(sub(), sub())
	case 6:
		return rtl.ModE(sub(), sub())
	case 7:
		return rtl.AndE(sub(), sub())
	case 8:
		return rtl.OrE(sub(), sub())
	case 9:
		return rtl.XorE(sub(), sub())
	case 10:
		return rtl.Shl(sub(), sub())
	case 11:
		return rtl.Shr(sub(), sub())
	case 12:
		return rtl.Sra(sub(), sub())
	case 13:
		return rtl.Eq(sub(), sub())
	case 14:
		return rtl.Ne(sub(), sub())
	case 15:
		return rtl.Lt(sub(), sub())
	case 16:
		return rtl.Le(sub(), sub())
	case 17:
		return rtl.Gt(sub(), sub())
	case 18:
		return rtl.Ge(sub(), sub())
	case 19:
		return rtl.SLt(sub(), sub())
	case 20:
		return rtl.LAnd(sub(), sub())
	case 21:
		return rtl.LOr(sub(), sub())
	case 22:
		return rtl.Not(sub())
	case 23:
		return rtl.Neg(sub())
	case 24:
		return rtl.LNot(sub())
	case 25:
		return rtl.RedAnd(sub())
	case 26:
		switch f.b() % 2 {
		case 0:
			return rtl.RedOr(sub())
		default:
			return rtl.RedXor(sub())
		}
	case 27:
		return rtl.MuxE(sub(), sub(), sub())
	case 28:
		x := sub()
		hi := int(f.b()) % x.Width()
		lo := int(f.b()) % (hi + 1)
		return rtl.SliceE(x, hi, lo)
	case 29:
		return rtl.IndexE(sub(), sub())
	case 30:
		wa := 1 + int(f.b()%32)
		wb := 1 + int(f.b()%32)
		return rtl.Cat(rtl.Resize(sub(), wa), rtl.Resize(sub(), wb))
	case 31:
		if hasMem {
			return rtl.MemRd(mem, sub(), memW)
		}
		return pick()
	default:
		x := sub()
		return rtl.Bit(x, int(f.b())%x.Width())
	}
}

// genCircuit builds a random acyclic circuit from the byte stream: a few
// inputs, optionally one memory (with deliberately unmasked init words to
// exercise the raw-constant propagation edge), a chain of wires and
// registers over random expressions, random write ports, and one output.
func genCircuit(f *fz) (*rtl.Circuit, error) {
	b := rtl.NewBuilder("fuzz")
	var pool []rtl.Expr
	nin := 1 + int(f.b()%3)
	for i := 0; i < nin; i++ {
		pool = append(pool, b.Ref(b.Input(fmt.Sprintf("in%d", i), 1+int(f.b()%64))))
	}
	var mem rtl.MemID
	hasMem := f.b()&1 == 1
	memW := 0
	if hasMem {
		memW = 1 + int(f.b()%32)
		depth := 2 + int(f.b()%14)
		mem = b.Mem("m", memW, depth)
		ini := make([]uint64, 1+depth/2)
		for i := range ini {
			ini[i] = f.u64() // raw: may exceed the memory width on purpose
		}
		b.MemInit(mem, ini)
	}
	n := 3 + int(f.b()%10)
	for i := 0; i < n; i++ {
		e := genExpr(f, pool, mem, memW, hasMem, 0)
		if f.b()%3 == 2 {
			id := b.Reg(fmt.Sprintf("r%d", i), e.Width(), f.u64())
			b.Seq(id, e)
			pool = append(pool, b.Ref(id))
		} else {
			id := b.Wire(fmt.Sprintf("w%d", i), e.Width())
			b.Assign(id, e)
			pool = append(pool, b.Ref(id))
		}
	}
	if hasMem {
		for i := int(f.b() % 3); i > 0; i-- {
			b.MemWr(mem,
				genExpr(f, pool, mem, memW, hasMem, 1),
				rtl.Resize(genExpr(f, pool, mem, memW, hasMem, 1), memW),
				genExpr(f, pool, mem, memW, hasMem, 1))
		}
	}
	o := b.Output("out", 8)
	b.Assign(o, rtl.Resize(pool[len(pool)-1], 8))
	return b.Build()
}

// FuzzEngines is the differential fuzz target: for every generated circuit
// it runs the closure reference engine, the bytecode VM, and the iterative
// fixpoint evaluator in lockstep — including under fault-injection bit flips
// — and requires bit-identical signals, memories, and flip-site reports.
func FuzzEngines(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 256)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range seed {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		seed[i] = byte(s)
	}
	f.Add(seed)
	f.Add(seed[3:190])
	f.Add([]byte{255, 0, 255, 0, 7, 7, 7, 7, 31, 31, 31, 31, 64, 64, 64, 64,
		200, 100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 0, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fz{data: data}
		c, err := genCircuit(fr)
		if err != nil {
			t.Skip()
		}
		mc, errC := rtl.CompileEngine(c, rtl.EngineClosure)
		mb, errB := rtl.CompileEngine(c, rtl.EngineBytecode)
		if (errC == nil) != (errB == nil) {
			t.Fatalf("engines disagree on compilability: closure=%v bytecode=%v", errC, errB)
		}
		if errC != nil {
			t.Skip()
		}
		var inputs []rtl.SigID
		for i := range c.Signals {
			if c.Signals[i].Kind == rtl.SigInput {
				inputs = append(inputs, rtl.SigID(i))
			}
		}
		check := func(tag string) {
			for i := range c.Signals {
				if gc, gb := mc.PeekID(rtl.SigID(i)), mb.PeekID(rtl.SigID(i)); gc != gb {
					t.Fatalf("%s: signal %q: closure %#x bytecode %#x", tag, c.Signals[i].Name, gc, gb)
				}
			}
			for mi := range c.Mems {
				for a := 0; a < c.Mems[mi].Depth; a++ {
					if gc, gb := mc.PeekMem(rtl.MemID(mi), a), mb.PeekMem(rtl.MemID(mi), a); gc != gb {
						t.Fatalf("%s: mem %q[%d]: closure %#x bytecode %#x", tag, c.Mems[mi].Name, a, gc, gb)
					}
				}
			}
		}
		check("reset")
		for step := 0; step < 24; step++ {
			for _, id := range inputs {
				v := fr.u64()
				mc.SetInputID(id, v)
				mb.SetInputID(id, v)
			}
			// Third evaluator: the iterative fixpoint settle must agree with
			// both compiled engines on the combinational state.
			mc.Eval()
			mb.Eval()
			mc.EvalIterative()
			check(fmt.Sprintf("eval step %d", step))
			mc.Tick()
			mb.Tick()
			if step%7 == 3 {
				pick := fr.u64()
				dc, db := mc.InjectStateFlip(pick), mb.InjectStateFlip(pick)
				if dc != db {
					t.Fatalf("step %d: flip sites differ: %q vs %q", step, dc, db)
				}
			}
			check(fmt.Sprintf("tick step %d", step))
		}
	})
}
