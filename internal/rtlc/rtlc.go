// Package rtlc is the optimizing RTL engine: a compiler from the rtl.Circuit
// IR to a flat register-machine bytecode plus a dense switch-dispatch VM with
// word-packed value storage and a dirty-set sequential pass that skips
// registers whose next-state input cones did not change this cycle.
//
// It registers itself with the rtl package as the "bytecode" engine
// (rtl.EngineBytecode) in an init function, so linking this package in —
// directly or via a blank import — makes rtl.CompileEngine(c, "bytecode")
// work. The closure-compiled engine in package rtl remains the bit-exact
// reference; this engine must be, and is continuously tested to be,
// dispatch-identical to it on every architectural observable (signal values,
// memories, VCD traces, checkpoints, state hashes, fault-injection
// outcomes). See DESIGN.md §"RTL compiler pipeline" for the IR →
// optimization passes → bytecode → VM walk-through.
package rtlc

import "gem5rtl/internal/rtl"

func init() {
	rtl.RegisterEngine(rtl.EngineBytecode, func(c *rtl.Circuit, mems [][]uint64) (rtl.Backend, error) {
		p, err := Compile(c)
		if err != nil {
			return nil, err
		}
		return NewVM(p, mems)
	})
}
