package ckpt

import "fmt"

// SenderState is implemented by packet sender-state values that survive
// checkpointing. Sender-state stacks carry routing bookkeeping (which port a
// response returns through, which register a load targets), so in-flight
// packets cannot be serialised without them. Each concrete type claims a
// stream-wide kind tag and registers a decoder; the set of types is closed
// and small (CPU load state, crossbar routing, raw request IDs).
type SenderState interface {
	// SenderStateKind returns the type's registered kind tag.
	SenderStateKind() uint8
	// EncodeSenderState writes the value's fields.
	EncodeSenderState(w *Writer)
}

// Reserved sender-state kind tags. RawU64SenderState is handled directly by
// the port package (bare uint64 values used as request IDs); component
// packages register their own tags in init().
const (
	RawU64SenderState uint8 = 0
	CPULoadState      uint8 = 1
	XbarFrontState    uint8 = 2
)

// SenderStateDecoder reconstructs one sender-state value from the stream.
type SenderStateDecoder func(r *Reader) any

var senderStateDecoders [256]SenderStateDecoder

// RegisterSenderState installs the decoder for a kind tag. Called from
// package init(); double registration is a programming error.
func RegisterSenderState(kind uint8, dec SenderStateDecoder) {
	if senderStateDecoders[kind] != nil {
		panic(fmt.Sprintf("ckpt: sender-state kind %d registered twice", kind))
	}
	senderStateDecoders[kind] = dec
}

// DecodeSenderState reconstructs the value for a kind tag read from the
// stream, failing the reader for unknown kinds.
func DecodeSenderState(kind uint8, r *Reader) any {
	dec := senderStateDecoders[kind]
	if dec == nil {
		r.Fail(fmt.Errorf("ckpt: no decoder for sender-state kind %d", kind))
		return nil
	}
	return dec(r)
}
