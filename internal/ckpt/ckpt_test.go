package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0xdeadbeefcafef00d)
	w.U32(0x12345678)
	w.I64(-42)
	w.Int(7)
	w.Bool(true)
	w.Bool(false)
	w.U8(0xab)
	w.F64(3.25)
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.Bytes([]byte{})
	w.String("hello")
	w.String("")
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	r := NewReader(&buf)
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.U32(); got != 0x12345678 {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.Bytes(); got != nil {
		t.Errorf("nil Bytes = %v, want nil", got)
	}
	if got := r.Bytes(); got == nil || len(got) != 0 {
		t.Errorf("empty Bytes = %v, want non-nil empty", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("cache")
	w.U64(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Section("cpu")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "cpu") {
		t.Fatalf("wrong-section read error = %v", err)
	}

	// Misaligned stream (no marker at all).
	r = NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}))
	r.Section("cache")
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("misaligned read error = %v", err)
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1}))
	_ = r.U64() // short read fails
	if r.Err() == nil {
		t.Fatal("expected error after short read")
	}
	// All later reads are zero-valued no-ops.
	if r.U64() != 0 || r.Int() != 0 || r.Bool() || r.String() != "" || r.Bytes() != nil {
		t.Error("post-error reads not zero-valued")
	}
}

func TestHeaderValidation(t *testing.T) {
	save := func(fp uint64) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Header(fp, 12345)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	r := NewReader(bytes.NewReader(save(0x1111)))
	if tick := r.Header(0x1111); tick != 12345 || r.Err() != nil {
		t.Fatalf("good header: tick=%d err=%v", tick, r.Err())
	}

	r = NewReader(bytes.NewReader(save(0x1111)))
	r.Header(0x2222)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch error = %v", err)
	}

	r = NewReader(bytes.NewReader([]byte("not a checkpoint....")))
	r.Header(0x1111)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic error = %v", err)
	}
}

func TestRawWriteReadPassthrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(99)
	if _, err := w.Write([]byte("raw-model-blob")); err != nil {
		t.Fatal(err)
	}
	w.U64(100)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if r.U64() != 99 {
		t.Error("prefix mismatch")
	}
	blob := make([]byte, len("raw-model-blob"))
	if _, err := r.Read(blob); err != nil || string(blob) != "raw-model-blob" {
		t.Errorf("raw read = %q, %v", blob, err)
	}
	if r.U64() != 100 {
		t.Error("suffix mismatch")
	}
}

type testState struct{ v uint64 }

func (s *testState) SenderStateKind() uint8      { return 200 }
func (s *testState) EncodeSenderState(w *Writer) { w.U64(s.v) }
func decodeTestState(r *Reader) any              { return &testState{v: r.U64()} }

func TestSenderStateRegistry(t *testing.T) {
	RegisterSenderState(200, decodeTestState)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := &testState{v: 77}
	w.U8(s.SenderStateKind())
	s.EncodeSenderState(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	kind := r.U8()
	got := DecodeSenderState(kind, r)
	if ts, ok := got.(*testState); !ok || ts.v != 77 {
		t.Fatalf("decoded = %#v", got)
	}

	r = NewReader(bytes.NewReader([]byte{0}))
	DecodeSenderState(250, r)
	if r.Err() == nil {
		t.Fatal("unknown kind should fail the reader")
	}
}
