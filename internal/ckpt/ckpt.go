// Package ckpt is the full-system checkpoint/restore framework: a versioned,
// fingerprinted binary serialization layer plus the Checkpointable contract
// every simulated component implements. It generalises the single-model
// format proven in internal/rtl/checkpoint.go (magic + fingerprint header,
// little-endian fixed-width fields) to the whole SoC.
//
// Design rules, mirroring gem5's SERIALIZE macros in spirit:
//
//   - Streams are little-endian and fixed-layout; there is no in-band schema.
//     A Version bump invalidates old checkpoints.
//   - A fingerprint of the builder's configuration is embedded in the header;
//     restore refuses a checkpoint taken under a different configuration, so
//     state is only ever poured back into an identically shaped system.
//   - Events hold closures and cannot be serialised. Components instead save
//     the scheduling state (pending?, when, sequence number) of the events
//     they own and re-materialise them on restore (see sim.SaveEvent /
//     EventQueue.RestoreEvent). Preserving the original sequence numbers keeps
//     intra-tick event ordering bit-identical after a restore.
//   - Section markers delimit every component's state. They cost a few bytes
//     and turn a misaligned read — the classic serialization bug — into an
//     immediate, named error instead of silent corruption downstream.
//
// Writer and Reader use sticky errors: the first failure latches and every
// later call is a no-op returning zero values, so component Save/Restore code
// can be written as straight-line field lists and check Err() once.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic identifies a gem5rtl system checkpoint stream ("g5ck").
const Magic uint32 = 0x6735636b

// Version is the stream layout version; bumped on incompatible changes.
const Version uint32 = 1

// sectionMark precedes every section name, catching misaligned reads early.
const sectionMark uint32 = 0x5ec70000

// Checkpointable is implemented by every component whose simulation state can
// be captured and restored. SaveState and RestoreState must visit fields in
// the same order; RestoreState is only called on a freshly built component of
// the identical configuration (the SoC fingerprint enforces this).
type Checkpointable interface {
	SaveState(w *Writer) error
	RestoreState(r *Reader) error
}

// Writer serialises checkpoint state with sticky-error semantics.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w for checkpoint writing. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Fail latches err (if the writer has not already failed).
func (w *Writer) Fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Flush drains buffered output and returns the writer's final status.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.Fail(w.w.Flush())
	return w.err
}

// Write passes raw bytes through, letting components with their own binary
// formats (e.g. rtl.Model.SaveCheckpoint) write into the same stream.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.Fail(err)
	return n, err
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.w.Write(b[:])
	w.Fail(err)
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	if w.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.w.Write(b[:])
	w.Fail(err)
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	var b byte
	if v {
		b = 1
	}
	w.U8(b)
}

// U8 writes a single byte.
func (w *Writer) U8(v byte) {
	if w.err != nil {
		return
	}
	w.Fail(w.w.WriteByte(v))
}

// F64 writes a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice, distinguishing nil from empty
// (components rely on lazily allocated buffers staying nil across restore).
func (w *Writer) Bytes(b []byte) {
	if b == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Int(len(b))
	if w.err != nil || len(b) == 0 {
		return
	}
	_, err := w.w.Write(b)
	w.Fail(err)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	_, err := w.w.WriteString(s)
	w.Fail(err)
}

// Section writes a named marker delimiting one component's state.
func (w *Writer) Section(name string) {
	w.U32(sectionMark)
	w.String(name)
}

// Header writes the stream header: magic, version, configuration fingerprint
// and the checkpoint's simulated time.
func (w *Writer) Header(fingerprint uint64, tick uint64) {
	w.U32(Magic)
	w.U32(Version)
	w.U64(fingerprint)
	w.U64(tick)
}

// Reader deserialises checkpoint state with sticky-error semantics.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r for checkpoint reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail latches err (if the reader has not already failed).
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Read passes raw bytes through for components with their own binary formats.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := io.ReadFull(r.r, p)
	r.Fail(err)
	return n, err
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.Fail(err)
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.Fail(err)
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// MaxLen caps any length-prefixed field a Reader accepts. Real sections are
// far smaller; a length beyond this is a corrupted or hostile stream and is
// rejected before any allocation.
const MaxLen = 1 << 30

// Len reads a non-negative length; negative or implausibly large values
// latch an error.
func (r *Reader) Len() int {
	n := r.Int()
	if n < 0 {
		r.Fail(fmt.Errorf("ckpt: negative length %d in stream", n))
		return 0
	}
	if n > MaxLen {
		r.Fail(fmt.Errorf("ckpt: implausible length %d in stream (max %d)", n, MaxLen))
		return 0
	}
	return n
}

// readN reads exactly n bytes, growing the buffer in bounded chunks so a
// corrupted length prefix fails at the stream's true end instead of
// allocating the full claimed size up front.
func (r *Reader) readN(n int) []byte {
	const chunk = 64 << 10
	c := n
	if c > chunk {
		c = chunk
	}
	buf := make([]byte, 0, c)
	for len(buf) < n {
		c = n - len(buf)
		if c > chunk {
			c = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r.r, buf[start:]); err != nil {
			r.Fail(err)
			return nil
		}
	}
	return buf
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U8 reads a single byte.
func (r *Reader) U8() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.Fail(err)
		return 0
	}
	return b
}

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a slice written with Writer.Bytes (nil stays nil).
func (r *Reader) Bytes() []byte {
	if !r.Bool() {
		return nil
	}
	n := r.Len()
	if r.err != nil {
		return nil
	}
	b := r.readN(n)
	if r.err != nil {
		return nil
	}
	return b
}

// String reads a string written with Writer.String.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	b := r.readN(n)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// Section consumes a marker written by Writer.Section and verifies the name,
// turning any save/restore field mismatch into an immediate, located error.
func (r *Reader) Section(name string) {
	if m := r.U32(); r.err == nil && m != sectionMark {
		r.Fail(fmt.Errorf("ckpt: expected section %q, stream is misaligned (marker %#x)", name, m))
		return
	}
	if got := r.String(); r.err == nil && got != name {
		r.Fail(fmt.Errorf("ckpt: expected section %q, found %q", name, got))
	}
}

// Header reads and validates the stream header against the restorer's own
// fingerprint, returning the checkpoint's simulated time. A fingerprint
// mismatch means the checkpoint was taken under a different system
// configuration and must not be loaded.
func (r *Reader) Header(fingerprint uint64) (tick uint64) {
	if m := r.U32(); r.err == nil && m != Magic {
		r.Fail(fmt.Errorf("ckpt: bad magic %#x (not a gem5rtl checkpoint)", m))
		return 0
	}
	if v := r.U32(); r.err == nil && v != Version {
		r.Fail(fmt.Errorf("ckpt: unsupported checkpoint version %d (want %d)", v, Version))
		return 0
	}
	if fp := r.U64(); r.err == nil && fp != fingerprint {
		r.Fail(fmt.Errorf("ckpt: configuration fingerprint mismatch: checkpoint %#x, system %#x", fp, fingerprint))
		return 0
	}
	return r.U64()
}
