package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

// buildSeedStream writes one of every field type, exactly mirroring the read
// sequence in readSeedShape.
func buildSeedStream() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header(0x1234, 42)
	w.Section("core0")
	w.U64(7)
	w.U32(3)
	w.Int(-5)
	w.Bool(true)
	w.U8(0xAB)
	w.F64(3.5)
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.String("hello")
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// readSeedShape drives a Reader through the full field vocabulary against
// arbitrary bytes. It must never panic, whatever the stream contains.
func readSeedShape(data []byte) error {
	r := NewReader(bytes.NewReader(data))
	r.Header(0x1234)
	r.Section("core0")
	_ = r.U64()
	_ = r.U32()
	_ = r.Int()
	_ = r.Bool()
	_ = r.U8()
	_ = r.F64()
	_ = r.Bytes()
	_ = r.Bytes()
	_ = r.String()
	var p [16]byte
	_, _ = r.Read(p[:])
	return r.Err()
}

// FuzzReader asserts the Reader survives arbitrary streams: truncated,
// bit-flipped and oversized-length inputs must latch an error, never panic
// and never allocate the claimed length up front.
func FuzzReader(f *testing.F) {
	seed := buildSeedStream()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	flipped := append([]byte(nil), seed...)
	flipped[9] ^= 0x80
	f.Add(flipped)
	// A stream claiming a huge (but sub-cap) Bytes length it cannot back.
	var over bytes.Buffer
	ow := NewWriter(&over)
	ow.Header(0x1234, 42)
	ow.Section("core0")
	ow.U64(7)
	ow.U32(3)
	ow.Int(-5)
	ow.Bool(true)
	ow.U8(0xAB)
	ow.F64(3.5)
	ow.Bool(true)
	ow.Int(1 << 28)
	_ = ow.Flush()
	f.Add(over.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = readSeedShape(data)
	})
}

func TestReaderRoundTrip(t *testing.T) {
	if err := readSeedShape(buildSeedStream()); err == nil {
		t.Fatal("expected trailing-Read error on exact stream, got nil")
	}
	// Everything before the deliberate trailing Read must succeed.
	r := NewReader(bytes.NewReader(buildSeedStream()))
	if tick := r.Header(0x1234); tick != 42 {
		t.Fatalf("tick = %d, want 42", tick)
	}
	r.Section("core0")
	if got := r.U64(); got != 7 {
		t.Fatalf("U64 = %d", got)
	}
	r.U32()
	if got := r.Int(); got != -5 {
		t.Fatalf("Int = %d", got)
	}
	r.Bool()
	r.U8()
	r.F64()
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean stream errored: %v", err)
	}
}

// TestReaderTruncation cuts the seed stream at every byte offset: each prefix
// must produce a latched error (the stream is exactly consumed when whole)
// and must never panic.
func TestReaderTruncation(t *testing.T) {
	seed := buildSeedStream()
	for i := 0; i < len(seed); i++ {
		if err := readSeedShape(seed[:i]); err == nil {
			t.Fatalf("truncation at byte %d: expected error, got nil", i)
		}
	}
}

func TestReaderOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Bool(true)
	w.Int(1 << 40) // far beyond MaxLen
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if b := r.Bytes(); b != nil {
		t.Fatalf("oversized Bytes returned %d bytes", len(b))
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "implausible length") {
		t.Fatalf("err = %v, want implausible-length error", err)
	}
}

// TestReaderHugeClaimTruncated claims a large (sub-cap) payload backed by a
// few bytes: the chunked read must fail at the real end of the stream rather
// than allocate the claimed size.
func TestReaderHugeClaimTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Bool(true)
	w.Int(1 << 28)
	w.Write([]byte("short"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if b := r.Bytes(); b != nil {
		t.Fatalf("truncated Bytes returned %d bytes", len(b))
	}
	if r.Err() == nil {
		t.Fatal("expected error for truncated huge claim")
	}
}

func TestReaderNegativeLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if s := r.String(); s != "" {
		t.Fatalf("negative-length String = %q", s)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "negative length") {
		t.Fatalf("err = %v, want negative-length error", err)
	}
}
