package cpu

import "gem5rtl/internal/obs"

// AttachTracer wires the CPU debug flag (nil logger = off).
func (c *Core) AttachTracer(t *obs.Tracer) {
	c.trace = t.Logger("CPU", c.cfg.Name)
}
