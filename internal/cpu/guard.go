package cpu

import "fmt"

// The liveness-probe methods below implement guard.Probe (structurally): the
// watchdog waits on the core's outstanding loads, stores and fetches. A
// sleeping or exited core holds none, so it never false-trips the watchdog.

// GuardName identifies the core in watchdog diagnostics.
func (c *Core) GuardName() string { return c.cfg.Name }

// InFlight reports outstanding memory accesses.
func (c *Core) InFlight() int { return c.outLoads + c.outStores + c.fetchOutstanding }

// GuardDetail renders the scoreboard occupancy.
func (c *Core) GuardDetail() string {
	return fmt.Sprintf("outLoads=%d outStores=%d fetchOutstanding=%d pc=%#x",
		c.outLoads, c.outStores, c.fetchOutstanding, c.pc)
}
