// Package cpu implements gem5rtl's timing core: a 3-wide issue, out-of-order
// style model of the paper's Table 1 cores (92-entry IQ and 192-entry ROB
// approximated by load/store queue and outstanding-access limits), executing
// RV-lite guest programs over a micro-kernel syscall layer. The model is
// timing-directed with a functional backbone: architectural state updates
// functionally at issue, while loads/stores/ifetches issue real timing
// packets into the cache hierarchy whose responses gate dependent issue via
// a register scoreboard. The core exposes the two event taps the PMU use
// case wires up: per-cycle committed-instruction counts and L1D misses (the
// latter via cache.Cache.OnMiss).
package cpu

import (
	"fmt"
	"io"

	"gem5rtl/internal/isa"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Config parameterises a core.
type Config struct {
	Name        string
	ID          int
	IssueWidth  int // Table 1: 3-wide issue/retire
	CommitWidth int // PMU event lines: up to 4 commits/cycle
	ROBSize     int // 192
	LDQ         int // 48
	STQ         int // 48
	// BranchPenalty is the fetch-redirect cost of taken control flow.
	BranchPenalty uint64
	// Entry and StackTop locate the program image and stack.
	Entry    uint64
	StackTop uint64
}

// DefaultConfig returns the Table 1 core parameters.
func DefaultConfig(id int) Config {
	return Config{
		Name:          fmt.Sprintf("cpu%d", id),
		ID:            id,
		IssueWidth:    3,
		CommitWidth:   4,
		ROBSize:       192,
		LDQ:           48,
		STQ:           48,
		BranchPenalty: 1,
		// Each core gets a private 64 KiB program region so multi-programmed
		// workloads do not collide.
		Entry:    0x10000 + uint64(id)*0x10000,
		StackTop: 0x200000 + uint64(id)*0x40000,
	}
}

// Stats aggregates core activity.
type Stats struct {
	Cycles      uint64
	Committed   uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	TakenBr     uint64
	LoadStalls  uint64
	FetchStalls uint64
	QueueStalls uint64
	SleepCycles uint64
	Syscalls    uint64
}

// IPC returns committed instructions per non-sleep cycle.
func (s *Stats) IPC() float64 {
	busy := s.Cycles - s.SleepCycles
	if busy == 0 {
		return 0
	}
	return float64(s.Committed) / float64(busy)
}

// Core is one timing core.
type Core struct {
	cfg    Config
	dom    *sim.ClockDomain
	q      *sim.EventQueue
	ticker *sim.Ticker

	iPort *port.RequestPort
	dPort *port.RequestPort

	regs [32]uint64
	pc   uint64

	// Scoreboard: registers awaiting an outstanding load.
	pendingReg [32]bool
	outLoads   int
	outStores  int

	fetchBlock       uint64
	fetchOutstanding int

	stallCycles uint64
	exited      bool
	exitCode    int64
	sleeping    bool
	// wakeEv ends a sleep syscall. It is a persistent, component-owned event
	// (not an ad-hoc closure) so its pending state can be checkpointed.
	wakeEv *sim.Event

	decoded map[uint64]isa.Inst

	// pool recycles the core's timing read packets (ifetch and load touches);
	// lsFree recycles their loadState tags. Write packets stay individually
	// allocated: a posted write's packet is retained by the DRAM write queue
	// (and by checkpoints) after its response retires here.
	pool   port.PacketPool
	lsFree []*loadState
	// fnRead/fnWrite are reusable scratch packets for the functional
	// backbone; fnBuf backs their payloads. Functional accesses complete
	// synchronously and nothing downstream retains the packet or buffer.
	fnRead  port.Packet
	fnWrite port.Packet
	fnBuf   [16]byte

	// OnCommit fires every active cycle with the number of instructions
	// committed that cycle — the PMU's commit event lines.
	OnCommit func(n int)
	// OnExit fires when the program executes the exit syscall.
	OnExit func(code int64)
	// Out receives print syscall output.
	Out io.Writer

	// trace is the CPU debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger

	stats Stats
}

// loadState tags in-flight packets for response handling.
type loadState struct {
	isLoad  bool
	isFetch bool
	rd      uint8
}

// getLoadState recycles a tag from the freelist (or allocates one). Tags are
// returned by putLoadState once popped from a response or a refused send.
func (c *Core) getLoadState(isLoad, isFetch bool, rd uint8) *loadState {
	if n := len(c.lsFree); n > 0 {
		st := c.lsFree[n-1]
		c.lsFree[n-1] = nil
		c.lsFree = c.lsFree[:n-1]
		st.isLoad, st.isFetch, st.rd = isLoad, isFetch, rd
		return st
	}
	return &loadState{isLoad: isLoad, isFetch: isFetch, rd: rd}
}

func (c *Core) putLoadState(st *loadState) { c.lsFree = append(c.lsFree, st) }

// New creates a core on the given clock domain. Bind IPort/DPort before
// Start.
func New(cfg Config, dom *sim.ClockDomain) *Core {
	c := &Core{
		cfg:        cfg,
		dom:        dom,
		q:          dom.Queue(),
		pc:         cfg.Entry,
		decoded:    map[uint64]isa.Inst{},
		fetchBlock: ^uint64(0),
	}
	c.regs[2] = cfg.StackTop
	c.iPort = port.NewRequestPort(cfg.Name+".icache", (*coreIFace)(c))
	c.dPort = port.NewRequestPort(cfg.Name+".dcache", (*coreDFace)(c))
	c.ticker = sim.NewTicker(cfg.Name+".tick", dom, sim.PriCPU, c.cycle)
	c.ticker.SetOwner(c.q.Owner(cfg.Name, "tick"))
	c.wakeEv = sim.NewEvent(cfg.Name+".wake", c.wake).SetOwner(c.q.Owner(cfg.Name, "wake"))
	return c
}

// wake ends a sleep syscall and restarts the clock.
func (c *Core) wake() {
	if c.trace.On() {
		c.trace.Logf("wake pc=%#x", c.pc)
	}
	c.sleeping = false
	if !c.exited {
		c.ticker.StartAt(c.dom.ClockEdge(0))
	}
}

// IPort returns the instruction-side request port (bind to L1I).
func (c *Core) IPort() *port.RequestPort { return c.iPort }

// DPort returns the data-side request port (bind to L1D).
func (c *Core) DPort() *port.RequestPort { return c.dPort }

// Stats returns a snapshot of counters.
func (c *Core) Stats() Stats { return c.stats }

// Exited reports whether the program has exited, and its code.
func (c *Core) Exited() (bool, int64) { return c.exited, c.exitCode }

// PC returns the current program counter.
func (c *Core) PC() uint64 { return c.pc }

// Reg returns architectural register r.
func (c *Core) Reg(r int) uint64 { return c.regs[r] }

// LoadProgram writes a program image into memory (functionally, through the
// data port so all cache levels stay consistent) and resets the PC.
func (c *Core) LoadProgram(image []byte) {
	pkt := port.NewFunctionalWrite(c.cfg.Entry, image)
	c.dPort.SendFunctional(pkt)
	c.pc = c.cfg.Entry
	c.decoded = map[uint64]isa.Inst{}
}

// Start begins executing at the next clock edge.
func (c *Core) Start() { c.ticker.Start() }

// Stop halts the core's clock.
func (c *Core) Stop() { c.ticker.Stop() }

// cycle models one core clock.
func (c *Core) cycle(uint64) bool {
	if c.exited {
		return false
	}
	c.stats.Cycles++
	if c.stallCycles > 0 {
		c.stallCycles--
		c.commitTap(0)
		return true
	}
	if c.fetchOutstanding >= 2 {
		// Fetch buffer full: both outstanding block fetches still in flight.
		c.stats.FetchStalls++
		c.commitTap(0)
		return true
	}
	committed := 0
	for committed < c.cfg.IssueWidth {
		if !c.step(&committed) {
			break
		}
	}
	c.stats.Committed += uint64(committed)
	if committed > 0 && c.trace.On() {
		c.trace.Logf("cycle %d committed %d pc=%#x", c.dom.CurCycle(), committed, c.pc)
	}
	c.commitTap(committed)
	return !c.exited && !c.sleeping
}

func (c *Core) commitTap(n int) {
	if c.OnCommit != nil {
		c.OnCommit(n)
	}
}

// step attempts to issue one instruction; returns false to end the cycle.
func (c *Core) step(committed *int) bool {
	// Instruction fetch: a new 64-byte block sends a timing touch to the
	// L1I. Fetch is pipelined (up to two blocks in flight); execution only
	// stalls when the fetch buffer is full (checked in cycle), modelling an
	// ahead-of-execute fetch engine.
	blk := c.pc &^ 63
	if blk != c.fetchBlock {
		c.fetchBlock = blk
		fetch := c.pool.GetRead(blk, 64)
		fetch.PushSenderState(c.getLoadState(false, true, 0))
		fetch.RequestorID = c.cfg.ID
		if c.iPort.SendTimingReq(fetch) {
			c.fetchOutstanding++
		} else {
			// Refused (L1I MSHR-full): proceed functionally; rare.
			c.putLoadState(fetch.PopSenderState().(*loadState))
			fetch.Release()
		}
	}
	in, ok := c.decoded[c.pc]
	if !ok {
		c.fnRead = port.Packet{Cmd: port.ReadReq, Addr: c.pc, Size: isa.InstBytes,
			Data: c.fnBuf[:isa.InstBytes]}
		c.iPort.SendFunctional(&c.fnRead)
		var err error
		in, err = isa.Decode(c.fnRead.Data)
		if err != nil {
			panic(fmt.Sprintf("%s: pc=%#x: %v", c.cfg.Name, c.pc, err))
		}
		c.decoded[c.pc] = in
	}
	// Scoreboard: stall if a source (or, for WAW, the destination) is
	// awaiting a load.
	if c.pendingReg[in.Rs1] || c.pendingReg[in.Rs2] ||
		(in.Rd != 0 && c.pendingReg[in.Rd]) {
		c.stats.LoadStalls++
		return false
	}
	if c.outLoads+c.outStores >= c.cfg.ROBSize {
		c.stats.QueueStalls++
		return false
	}
	nextPC := c.pc + isa.InstBytes
	switch {
	case in.Op == isa.OpNop:
	case in.Op == isa.OpEcall:
		if !c.syscall() {
			// exit or sleep: consume the instruction then end the cycle.
			c.pc = nextPC
			*committed++
			return false
		}
	case in.Op.IsLoad():
		if c.outLoads >= c.cfg.LDQ {
			c.stats.QueueStalls++
			return false
		}
		addr := c.regs[in.Rs1] + uint64(int64(in.Imm))
		n := in.Op.MemBytes()
		// Functional backbone: architectural value now...
		c.fnRead = port.Packet{Cmd: port.ReadReq, Addr: addr, Size: n, Data: c.fnBuf[:n]}
		c.dPort.SendFunctional(&c.fnRead)
		var v uint64
		for i := n - 1; i >= 0; i-- {
			v = v<<8 | uint64(c.fnRead.Data[i])
		}
		c.setReg(in.Rd, v)
		// ...timing packet to gate consumers.
		t := c.pool.GetRead(addr, n)
		t.RequestorID = c.cfg.ID
		t.PushSenderState(c.getLoadState(true, false, in.Rd))
		if !c.dPort.SendTimingReq(t) {
			// L1D refused (MSHR-full): retry next cycle, undo.
			c.putLoadState(t.PopSenderState().(*loadState))
			t.Release()
			c.stats.QueueStalls++
			return false
		}
		if in.Rd != 0 {
			c.pendingReg[in.Rd] = true
		}
		c.outLoads++
		c.stats.Loads++
	case in.Op.IsStore():
		if c.outStores >= c.cfg.STQ {
			c.stats.QueueStalls++
			return false
		}
		addr := c.regs[in.Rs1] + uint64(int64(in.Imm))
		n := in.Op.MemBytes()
		// The write payload must be individually allocated: the timing packet
		// below aliases it, and a posted write's packet (and thus the buffer)
		// can be retained by the DRAM write queue and by checkpoints long
		// after this store retires.
		buf := make([]byte, n)
		v := c.regs[in.Rs2]
		for i := 0; i < n; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		c.fnWrite = port.Packet{Cmd: port.WriteReq, Addr: addr, Size: n, Data: buf}
		c.dPort.SendFunctional(&c.fnWrite)
		t := port.NewWritePacket(addr, buf)
		t.RequestorID = c.cfg.ID
		t.PushSenderState(c.getLoadState(false, false, 0))
		if !c.dPort.SendTimingReq(t) {
			c.putLoadState(t.PopSenderState().(*loadState))
			c.stats.QueueStalls++
			return false
		}
		c.outStores++
		c.stats.Stores++
	case in.Op.IsBranch():
		c.stats.Branches++
		if c.branchTaken(in) {
			c.stats.TakenBr++
			nextPC = c.pc + uint64(int64(in.Imm))
			c.stallCycles += c.cfg.BranchPenalty
			c.pc = nextPC
			*committed++
			return false
		}
	case in.Op == isa.OpJal:
		c.setReg(in.Rd, c.pc+isa.InstBytes)
		nextPC = c.pc + uint64(int64(in.Imm))
		c.stallCycles += c.cfg.BranchPenalty
		c.pc = nextPC
		*committed++
		return false
	case in.Op == isa.OpJalr:
		target := c.regs[in.Rs1] + uint64(int64(in.Imm))
		c.setReg(in.Rd, c.pc+isa.InstBytes)
		nextPC = target
		c.stallCycles += c.cfg.BranchPenalty
		c.pc = nextPC
		*committed++
		return false
	default:
		c.alu(in)
	}
	c.pc = nextPC
	*committed++
	return true
}

func (c *Core) setReg(r uint8, v uint64) {
	if r != 0 {
		c.regs[r] = v
	}
}

func (c *Core) branchTaken(in isa.Inst) bool {
	a, b := c.regs[in.Rs1], c.regs[in.Rs2]
	switch in.Op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int64(a) < int64(b)
	case isa.OpBge:
		return int64(a) >= int64(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	}
	return false
}

func (c *Core) alu(in isa.Inst) {
	a := c.regs[in.Rs1]
	b := c.regs[in.Rs2]
	imm := uint64(int64(in.Imm))
	var v uint64
	switch in.Op {
	case isa.OpAdd:
		v = a + b
	case isa.OpSub:
		v = a - b
	case isa.OpMul:
		v = a * b
	case isa.OpDiv:
		if b == 0 {
			v = ^uint64(0)
		} else {
			v = uint64(int64(a) / int64(b))
		}
	case isa.OpRem:
		if b == 0 {
			v = a
		} else {
			v = uint64(int64(a) % int64(b))
		}
	case isa.OpAnd:
		v = a & b
	case isa.OpOr:
		v = a | b
	case isa.OpXor:
		v = a ^ b
	case isa.OpSll:
		v = a << (b & 63)
	case isa.OpSrl:
		v = a >> (b & 63)
	case isa.OpSra:
		v = uint64(int64(a) >> (b & 63))
	case isa.OpSlt:
		if int64(a) < int64(b) {
			v = 1
		}
	case isa.OpSltu:
		if a < b {
			v = 1
		}
	case isa.OpAddi:
		v = a + imm
	case isa.OpAndi:
		v = a & imm
	case isa.OpOri:
		v = a | imm
	case isa.OpXori:
		v = a ^ imm
	case isa.OpSlli:
		v = a << (imm & 63)
	case isa.OpSrli:
		v = a >> (imm & 63)
	case isa.OpSrai:
		v = uint64(int64(a) >> (imm & 63))
	case isa.OpSlti:
		if int64(a) < int64(imm) {
			v = 1
		}
	case isa.OpLui:
		v = imm << 12
	default:
		panic("cpu: unhandled ALU op " + in.Op.String())
	}
	c.setReg(in.Rd, v)
}

// syscall executes an ecall; returns false if the core should stop issuing
// this cycle (sleep/exit).
func (c *Core) syscall() bool {
	c.stats.Syscalls++
	num := c.regs[17] // a7
	a0 := c.regs[10]
	switch num {
	case isa.SysExit:
		c.exited = true
		c.exitCode = int64(a0)
		if c.trace.On() {
			c.trace.Logf("exit code=%d after %d insts", c.exitCode, c.stats.Committed)
		}
		if c.OnExit != nil {
			c.OnExit(c.exitCode)
		}
		return false
	case isa.SysSleepUs:
		dur := sim.Tick(a0) * sim.Microsecond
		if c.trace.On() {
			c.trace.Logf("sleep %dus", a0)
		}
		c.sleeping = true
		c.stats.SleepCycles += c.dom.TicksToCycles(dur)
		c.q.Schedule(c.wakeEv, c.q.Now()+dur)
		return false
	case isa.SysPrintInt:
		if c.Out != nil {
			fmt.Fprintf(c.Out, "%d\n", int64(a0))
		}
	case isa.SysPrintChr:
		if c.Out != nil {
			fmt.Fprintf(c.Out, "%c", rune(a0))
		}
	case isa.SysCycles:
		c.regs[10] = c.dom.CurCycle()
	default:
		panic(fmt.Sprintf("%s: unknown syscall %d", c.cfg.Name, num))
	}
	return true
}

// coreIFace handles instruction-side responses.
type coreIFace Core

func (ci *coreIFace) RecvTimingResp(pkt *port.Packet) bool {
	c := (*Core)(ci)
	st := pkt.PopSenderState().(*loadState)
	if !st.isFetch {
		panic("cpu: non-fetch response on icache port")
	}
	c.fetchOutstanding--
	c.putLoadState(st)
	pkt.Release()
	return true
}

func (ci *coreIFace) RecvReqRetry() {}

// coreDFace handles data-side responses.
type coreDFace Core

func (cd *coreDFace) RecvTimingResp(pkt *port.Packet) bool {
	c := (*Core)(cd)
	st := pkt.PopSenderState().(*loadState)
	if st.isLoad {
		c.outLoads--
		if st.rd != 0 {
			c.pendingReg[st.rd] = false
		}
	} else {
		c.outStores--
	}
	c.putLoadState(st)
	// Loads and fetches are pool-owned by this core; for store responses
	// (never pooled) this is a no-op.
	pkt.Release()
	return true
}

func (cd *coreDFace) RecvReqRetry() {}
