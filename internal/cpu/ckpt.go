package cpu

import (
	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/sim"
)

// loadState travels on in-flight packets, so it must checkpoint with them.
func (s *loadState) SenderStateKind() uint8 { return ckpt.CPULoadState }

// EncodeSenderState writes the load-state fields.
func (s *loadState) EncodeSenderState(w *ckpt.Writer) {
	w.Bool(s.isLoad)
	w.Bool(s.isFetch)
	w.U8(s.rd)
}

func init() {
	ckpt.RegisterSenderState(ckpt.CPULoadState, func(r *ckpt.Reader) any {
		return &loadState{isLoad: r.Bool(), isFetch: r.Bool(), rd: r.U8()}
	})
}

// SaveState captures the core's architectural and microarchitectural state:
// registers, PC, the load scoreboard, outstanding-access counters, fetch
// engine state, sleep/exit latches, statistics, and the clock ticker plus
// wake event. The decoded-instruction cache is deliberately skipped — it is
// rebuilt lazily through untimed functional reads, which cannot perturb
// timing.
func (c *Core) SaveState(w *ckpt.Writer) error {
	w.Section("cpu.core")
	for _, v := range c.regs {
		w.U64(v)
	}
	w.U64(c.pc)
	for _, p := range c.pendingReg {
		w.Bool(p)
	}
	w.Int(c.outLoads)
	w.Int(c.outStores)
	w.U64(c.fetchBlock)
	w.Int(c.fetchOutstanding)
	w.U64(c.stallCycles)
	w.Bool(c.exited)
	w.I64(c.exitCode)
	w.Bool(c.sleeping)
	saveCPUStats(w, &c.stats)
	sim.SaveEvent(w, c.wakeEv)
	return c.ticker.SaveState(w)
}

// RestoreState reinstates the state captured by SaveState into a freshly
// built core. Host-side wiring (OnCommit, OnExit, Out) is not part of the
// checkpoint; callers re-register their hooks after restoring.
func (c *Core) RestoreState(r *ckpt.Reader) error {
	r.Section("cpu.core")
	for i := range c.regs {
		c.regs[i] = r.U64()
	}
	c.pc = r.U64()
	for i := range c.pendingReg {
		c.pendingReg[i] = r.Bool()
	}
	c.outLoads = r.Int()
	c.outStores = r.Int()
	c.fetchBlock = r.U64()
	c.fetchOutstanding = r.Int()
	c.stallCycles = r.U64()
	c.exited = r.Bool()
	c.exitCode = r.I64()
	c.sleeping = r.Bool()
	restoreCPUStats(r, &c.stats)
	c.q.RestoreEvent(r, c.wakeEv)
	return c.ticker.RestoreState(r)
}

func saveCPUStats(w *ckpt.Writer, s *Stats) {
	w.U64(s.Cycles)
	w.U64(s.Committed)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.Branches)
	w.U64(s.TakenBr)
	w.U64(s.LoadStalls)
	w.U64(s.FetchStalls)
	w.U64(s.QueueStalls)
	w.U64(s.SleepCycles)
	w.U64(s.Syscalls)
}

func restoreCPUStats(r *ckpt.Reader, s *Stats) {
	s.Cycles = r.U64()
	s.Committed = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.Branches = r.U64()
	s.TakenBr = r.U64()
	s.LoadStalls = r.U64()
	s.FetchStalls = r.U64()
	s.QueueStalls = r.U64()
	s.SleepCycles = r.U64()
	s.Syscalls = r.U64()
}
