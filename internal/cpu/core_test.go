package cpu

import (
	"bytes"
	"sort"
	"testing"

	"gem5rtl/internal/cache"
	"gem5rtl/internal/isa"
	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/workload"
)

// rig is a single-core system: core -> L1I/L1D -> ideal memory (two ports
// via a tiny crossbar-free setup: both caches talk to one memory through
// separate ideal memories sharing a store is wrong; use one memory with two
// response ports is unsupported, so L1I and L1D each get an ideal memory
// backed by the same Storage — coherent because the store is shared).
type rig struct {
	q     *sim.EventQueue
	dom   *sim.ClockDomain
	core  *Core
	l1i   *cache.Cache
	l1d   *cache.Cache
	store *mem.Storage
	out   bytes.Buffer
}

func newRig(t testing.TB) *rig {
	t.Helper()
	r := &rig{q: sim.NewEventQueue()}
	r.dom = sim.NewClockDomain("cpu", r.q, 2_000_000_000)
	r.core = New(DefaultConfig(0), r.dom)
	r.core.Out = &r.out
	r.l1i = cache.New(cache.Config{Name: "l1i", SizeBytes: 64 << 10, Assoc: 4,
		Latency: 1 * sim.Nanosecond, MSHRs: 8}, r.q)
	r.l1d = cache.New(cache.Config{Name: "l1d", SizeBytes: 64 << 10, Assoc: 4,
		Latency: 1 * sim.Nanosecond, MSHRs: 24}, r.q)
	r.store = mem.NewStorage()
	mi := mem.NewIdealMemory("memI", r.q, r.store, 40*sim.Nanosecond)
	md := mem.NewIdealMemory("memD", r.q, r.store, 40*sim.Nanosecond)
	port.Bind(r.core.IPort(), r.l1i.CPUPort())
	port.Bind(r.core.DPort(), r.l1d.CPUPort())
	port.Bind(r.l1i.MemPort(), mi.Port())
	port.Bind(r.l1d.MemPort(), md.Port())
	return r
}

func (r *rig) run(t testing.TB, src string, limit sim.Tick) int64 {
	t.Helper()
	img, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	r.core.LoadProgram(img)
	r.core.Start()
	r.q.RunUntil(limit)
	exited, code := r.core.Exited()
	if !exited {
		t.Fatalf("program did not exit within %d ticks (pc=%#x)", limit, r.core.PC())
	}
	return code
}

func TestSimpleLoop(t *testing.T) {
	r := newRig(t)
	code := r.run(t, workload.SimpleLoop(100), 10*sim.Millisecond)
	if code != 4950 {
		t.Fatalf("exit code %d, want 4950", code)
	}
	st := r.core.Stats()
	if st.Committed == 0 || st.Cycles == 0 {
		t.Fatal("no stats recorded")
	}
	ipc := st.IPC()
	if ipc <= 0.1 || ipc > 3.0 {
		t.Fatalf("IPC %.2f outside sane range", ipc)
	}
}

func TestMemoryStreamChecksum(t *testing.T) {
	r := newRig(t)
	code := r.run(t, workload.MemoryStream(0x400000, 200), 50*sim.Millisecond)
	if code != 199*200/2 {
		t.Fatalf("checksum %d", code)
	}
	if r.core.Stats().Loads < 200 || r.core.Stats().Stores < 200 {
		t.Fatalf("loads/stores %d/%d", r.core.Stats().Loads, r.core.Stats().Stores)
	}
	if r.l1d.Stats().Misses == 0 {
		t.Fatal("no L1D misses on a 200-element stream")
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	r := newRig(t)
	src := `
main:
    li a7, 1000
    li a0, 50      ; 50 us
    ecall
    li a7, 93
    li a0, 7
    ecall
`
	code := r.run(t, src, 10*sim.Millisecond)
	if code != 7 {
		t.Fatalf("exit %d", code)
	}
	if r.q.Now() < 50*sim.Microsecond {
		t.Fatalf("exit at %d, before sleep elapsed", r.q.Now())
	}
	if st := r.core.Stats(); st.SleepCycles == 0 {
		t.Fatal("sleep cycles not recorded")
	}
}

func TestPrintSyscalls(t *testing.T) {
	r := newRig(t)
	src := `
main:
    li a7, 1001
    li a0, 42
    ecall
    li a7, 1002
    li a0, 10     ; newline
    ecall
    li a7, 93
    li a0, 0
    ecall
`
	r.run(t, src, sim.Millisecond)
	if got := r.out.String(); got != "42\n\n" {
		t.Fatalf("output %q", got)
	}
}

func TestOnCommitTap(t *testing.T) {
	r := newRig(t)
	total := 0
	maxPerCycle := 0
	r.core.OnCommit = func(n int) {
		total += n
		if n > maxPerCycle {
			maxPerCycle = n
		}
	}
	r.run(t, workload.SimpleLoop(50), sim.Millisecond)
	if uint64(total) != r.core.Stats().Committed {
		t.Fatalf("tap total %d != committed %d", total, r.core.Stats().Committed)
	}
	if maxPerCycle == 0 || maxPerCycle > 3 {
		t.Fatalf("max commits/cycle %d outside [1,3]", maxPerCycle)
	}
}

func TestCallRet(t *testing.T) {
	r := newRig(t)
	src := `
main:
    li a0, 5
    call double
    call double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    ret
`
	if code := r.run(t, src, sim.Millisecond); code != 20 {
		t.Fatalf("exit %d, want 20", code)
	}
}

func TestQuickSortProgramSortsMemory(t *testing.T) {
	r := newRig(t)
	p := workload.SortParams{N: 20, SleepUs: 5}
	r.run(t, workload.SortBenchmark(p), 200*sim.Millisecond)
	for _, arr := range []struct {
		base uint64
		n    int
	}{
		{workload.QuickBase, 10 * p.N},
		{workload.SelectBase, p.N},
		{workload.BubbleBase, p.N},
	} {
		vals := make([]uint64, arr.n)
		buf := make([]byte, 8)
		for i := 0; i < arr.n; i++ {
			r.store.Read(arr.base+uint64(i)*8, buf)
			for b := 7; b >= 0; b-- {
				vals[i] = vals[i]<<8 | uint64(buf[b])
			}
		}
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
			t.Fatalf("array at %#x not sorted: %v", arr.base, vals[:min(10, len(vals))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBranchHeavyLowerIPC(t *testing.T) {
	// A tight loop (taken branch every few instructions) should have lower
	// IPC than the same work unrolled 16x (one taken branch per 18 insts),
	// since taken control flow pays the fetch-redirect penalty.
	tight := `
main:
    li t0, 0
    li t1, 16000
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    li a7, 93
    ecall
`
	unrolled := "main:\n    li t0, 0\n    li t1, 16000\nloop:\n"
	for i := 0; i < 16; i++ {
		unrolled += "    addi t0, t0, 1\n"
	}
	unrolled += "    blt t0, t1, loop\n    li a7, 93\n    ecall\n"

	r1 := newRig(t)
	r1.run(t, tight, 50*sim.Millisecond)
	st1 := r1.core.Stats()
	r2 := newRig(t)
	r2.run(t, unrolled, 50*sim.Millisecond)
	st2 := r2.core.Stats()
	if st1.IPC() >= st2.IPC() {
		t.Fatalf("tight-loop IPC %.2f >= unrolled IPC %.2f", st1.IPC(), st2.IPC())
	}
}

func TestAssemblerRoundTrip(t *testing.T) {
	img, err := isa.Assemble(workload.SortBenchmark(workload.SortParams{N: 10, SleepUs: 1}))
	if err != nil {
		t.Fatal(err)
	}
	text, err := isa.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 {
		t.Fatal("empty disassembly")
	}
}

func BenchmarkCoreCyclesPerSecond(b *testing.B) {
	r := newRig(b)
	img, _ := isa.Assemble(workload.SimpleLoop(1 << 30))
	r.core.LoadProgram(img)
	r.core.Start()
	b.ResetTimer()
	r.q.RunUntil(sim.Tick(b.N) * r.dom.Period())
}
