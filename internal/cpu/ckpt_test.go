package cpu

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/isa"
	"gem5rtl/internal/sim"
)

// saveCore serialises a core to bytes, failing the test on error.
func saveCore(t *testing.T, c *Core) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := c.SaveState(w); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestCoreRoundTrip mutates a core into a mid-run shape (sleeping, pending
// loads, stats), checkpoints it, restores into a fresh core and verifies the
// re-serialised state is byte-identical and key fields survived.
func TestCoreRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	dom := sim.NewClockDomain("clk", q, 2_000_000_000)
	c := New(DefaultConfig(0), dom)
	c.ticker.Start()
	for i := range c.regs {
		c.regs[i] = uint64(i * 3)
	}
	c.pc = 0x1234
	c.pendingReg[5] = true
	c.outLoads = 2
	c.outStores = 1
	c.fetchBlock = 0x40
	c.fetchOutstanding = 1
	c.stallCycles = 3
	c.sleeping = true
	c.stats = Stats{Cycles: 100, Committed: 250, Loads: 40, SleepCycles: 10}
	q.Schedule(c.wakeEv, 9_000)

	blob := saveCore(t, c)

	q2 := sim.NewEventQueue()
	dom2 := sim.NewClockDomain("clk", q2, 2_000_000_000)
	c2 := New(DefaultConfig(0), dom2)
	r := ckpt.NewReader(bytes.NewReader(blob))
	if err := c2.RestoreState(r); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if c2.pc != 0x1234 || c2.regs[7] != 21 || !c2.pendingReg[5] || !c2.sleeping {
		t.Errorf("fields lost: pc=%#x regs[7]=%d pending5=%v sleeping=%v",
			c2.pc, c2.regs[7], c2.pendingReg[5], c2.sleeping)
	}
	if !c2.wakeEv.Scheduled() || c2.wakeEv.When() != 9_000 {
		t.Error("wake event not re-materialised")
	}
	if !c2.ticker.Running() {
		t.Error("ticker not re-materialised")
	}
	if got := saveCore(t, c2); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}
}

// saveRig serialises everything a core rig owns, in a fixed order.
func saveRig(t *testing.T, r *rig) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	for _, c := range []ckpt.Checkpointable{r.q, r.core, r.l1i, r.l1d, r.store} {
		if err := c.SaveState(w); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreRig(t *testing.T, r *rig, blob []byte) {
	t.Helper()
	rd := ckpt.NewReader(bytes.NewReader(blob))
	for _, c := range []ckpt.Checkpointable{r.q, r.core, r.l1i, r.l1d, r.store} {
		if err := c.RestoreState(rd); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
}

// TestCoreSleepWakeAfterRestore checkpoints a real program mid-sleep,
// restores it into a fresh rig (no LoadProgram/Start) and checks it wakes,
// finishes, and exits with the same code at the same tick as an
// uninterrupted run.
func TestCoreSleepWakeAfterRestore(t *testing.T) {
	src := `
main:
    li a7, 1000
    li a0, 50      ; sleep 50 us
    ecall
    li a7, 93
    li a0, 7
    ecall
`
	// Reference: uninterrupted run.
	ref := newRig(t)
	if code := ref.run(t, src, 10*sim.Millisecond); code != 7 {
		t.Fatalf("reference exit %d", code)
	}
	refTick := ref.q.Now()

	// Checkpointed run: stop mid-sleep.
	r := newRig(t)
	img, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	r.core.LoadProgram(img)
	r.core.Start()
	r.q.RunUntil(10 * sim.Microsecond)
	if !r.core.sleeping {
		t.Fatal("core not sleeping at checkpoint tick")
	}
	blob := saveRig(t, r)

	// Restore into a fresh rig: no program load, no Start.
	r2 := newRig(t)
	restoreRig(t, r2, blob)
	if !r2.core.sleeping || !r2.core.wakeEv.Scheduled() {
		t.Fatal("restored core lost its pending wake")
	}
	r2.q.RunUntil(10 * sim.Millisecond)
	exited, code := r2.core.Exited()
	if !exited || code != 7 {
		t.Fatalf("restored run: exited=%v code=%d", exited, code)
	}
	if r2.q.Now() != refTick {
		t.Errorf("restored run finished at tick %d, reference at %d", r2.q.Now(), refTick)
	}
}
