package sim

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
)

// TestEventQueueRoundTrip checks that queue counters and exit state survive a
// save/restore and that restored runs are refused on dirty queues.
func TestEventQueueRoundTrip(t *testing.T) {
	q := NewEventQueue()
	q.ScheduleFunc("a", 100, func() {})
	q.ScheduleFunc("b", 200, func() {})
	q.RunUntil(150)
	q.ExitSimLoop("test exit")

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := q.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	q2 := NewEventQueue()
	r := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err := q2.RestoreState(r); err != nil {
		t.Fatal(err)
	}
	if q2.Now() != q.Now() || q2.Dispatched() != q.Dispatched() {
		t.Errorf("restored now=%d dispatched=%d, want %d/%d", q2.Now(), q2.Dispatched(), q.Now(), q.Dispatched())
	}
	if q2.ExitReason() != "test exit" {
		t.Errorf("exit reason = %q", q2.ExitReason())
	}

	// Restoring into a used queue must be refused.
	q3 := NewEventQueue()
	q3.ScheduleFunc("x", 0, func() {})
	q3.Step()
	r = ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err := q3.RestoreState(r); err == nil {
		t.Fatal("restore into dirty queue should fail")
	}
}

// TestRestoreSchedulePreservesOrder re-materialises three same-name,
// same-tick events in a different order than their saved sequence numbers
// and checks the saved seqs still decide dispatch order (rank ties on equal
// names, so seq is the deciding key), and that a fresh same-name event
// scheduled after the restore orders behind all of them.
func TestRestoreSchedulePreservesOrder(t *testing.T) {
	q := NewEventQueue()
	var order []string
	mk := func(tag string) *Event { return NewEvent("ev", func() { order = append(order, tag) }) }
	a, b, c := mk("a"), mk("b"), mk("c")

	// Restore in reverse order with explicit seqs.
	q.RestoreSchedule(c, 100, 2)
	q.RestoreSchedule(b, 100, 1)
	q.RestoreSchedule(a, 100, 0)
	// A newly scheduled event with the same name at the same tick mints a
	// later seq and must order after all three.
	q.ScheduleOneShot("ev", 100, func() { order = append(order, "d") })

	q.Run()
	want := []string{"a", "b", "c", "d"}
	for i, n := range want {
		if i >= len(order) || order[i] != n {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestEventAndTickerRoundTrip saves a scheduled event and a running ticker,
// restores them into a fresh queue, and checks both fire at identical times.
func TestEventAndTickerRoundTrip(t *testing.T) {
	run := func(restore bool) (fired Tick, cycles uint64) {
		q := NewEventQueue()
		dom := NewClockDomain("clk", q, 1_000_000_000) // 1 ns period
		var ev *Event
		ev = NewEvent("fire", func() { fired = q.Now() })
		tk := NewTicker("tick", dom, 0, func(uint64) bool { return true })

		if !restore {
			tk.Start()
			q.Schedule(ev, 7_500)
			q.RunUntil(20_000)
			cycles = tk.Cycle()
			return fired, cycles
		}

		// Build the same system, run half way, checkpoint, and pour the
		// state into a second fresh instance.
		tk.Start()
		q.Schedule(ev, 7_500)
		q.RunUntil(5_000)

		var buf bytes.Buffer
		w := ckpt.NewWriter(&buf)
		if err := q.SaveState(w); err != nil {
			t.Fatal(err)
		}
		SaveEvent(w, ev)
		if err := tk.SaveState(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		q2 := NewEventQueue()
		dom2 := NewClockDomain("clk", q2, 1_000_000_000)
		var fired2 Tick
		ev2 := NewEvent("fire", func() { fired2 = q2.Now() })
		tk2 := NewTicker("tick", dom2, 0, func(uint64) bool { return true })
		r := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
		if err := q2.RestoreState(r); err != nil {
			t.Fatal(err)
		}
		q2.RestoreEvent(r, ev2)
		if err := tk2.RestoreState(r); err != nil {
			t.Fatal(err)
		}
		q2.RunUntil(20_000)
		return fired2, tk2.Cycle()
	}

	coldFired, coldCycles := run(false)
	warmFired, warmCycles := run(true)
	if coldFired != warmFired {
		t.Errorf("event fired at %d after restore, want %d", warmFired, coldFired)
	}
	if coldCycles != warmCycles {
		t.Errorf("ticker cycles = %d after restore, want %d", warmCycles, coldCycles)
	}
}
