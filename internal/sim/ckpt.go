package sim

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
)

// SaveState serialises the queue's clock, canonical sequence space, dispatch
// count and exit latch. Pending events are deliberately not serialised here:
// events hold closures, which cannot cross a process boundary. Instead every
// component saves the scheduling state of the events it owns (SaveEvent) and
// re-materialises them during its own RestoreState (RestoreEvent). It is
// exactly SaveQueues over a single queue, so a serial engine and a sharded
// engine (which saves all its shard queues through SaveQueues) emit
// byte-identical streams for the same simulated machine.
func (q *EventQueue) SaveState(w *ckpt.Writer) error {
	return SaveQueues(w, []*EventQueue{q})
}

// forEachPending visits every pending event (near ring and far heap) in
// arbitrary order.
func (q *EventQueue) forEachPending(fn func(*Event)) {
	for _, e := range q.far {
		fn(e)
	}
	for si, head := range q.slots {
		if q.bits[si>>6]&(1<<(uint(si)&63)) == 0 {
			continue
		}
		for e := head; e != nil; e = e.next {
			fn(e)
		}
	}
}

// CanonicalizeEventSeqs renumbers the pending events of all queues into one
// shared canonical sequence space: events sort by (when, prio, rank, seq)
// and are assigned seq 0..n-1 in that order; every queue's counter is set to
// n. The sort key is engine-independent — rank is the event-name hash, and
// the per-queue seq tie-break is only consulted between same-name events,
// which always share a queue — so a serial run and a sharded run over the
// same machine state produce identical numbering. Renumbering preserves the
// relative seq order of same-name events, so it never perturbs future
// dispatch order; it exists purely to make the checkpoint encoding (and
// therefore StateHash) independent of how events were spread across queues.
//
// Exact (when, prio, rank) ties between events on *different* queues would
// make the canonical order ambiguous; that can only happen with duplicate
// event names across components, which is a build bug, and panics loudly.
func CanonicalizeEventSeqs(queues []*EventQueue) uint64 {
	type pend struct {
		e  *Event
		qi int
	}
	var all []pend
	for qi, q := range queues {
		q.forEachPending(func(e *Event) { all = append(all, pend{e, qi}) })
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].e, all[j].e
		if a.when != b.when {
			return a.when < b.when
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.seq < b.seq
	})
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.qi != b.qi && a.e.when == b.e.when && a.e.prio == b.e.prio && a.e.rank == b.e.rank {
			panic(fmt.Sprintf("sim: canonical event order ambiguous: %q (queue %d) and %q (queue %d) tie at tick %d prio %d rank %#x",
				a.e.name, a.qi, b.e.name, b.qi, a.e.when, a.e.prio, a.e.rank))
		}
	}
	n := uint64(len(all))
	for i, p := range all {
		p.e.seq = uint64(i)
	}
	// Future Schedule calls mint from CanonicalSeqBase+n: far above both the
	// renumbered events and the per-port-queue stamp ordinals (port/ckpt.go),
	// so anything scheduled after the save — in the saving run or in a
	// restored one — orders behind everything that predates it. The saving
	// run and a restored run mint identical sequences from here on, which
	// keeps save-and-continue bit-identical to restore-and-continue.
	for _, q := range queues {
		q.seq = CanonicalSeqBase + n
	}
	return n
}

// CanonicalSeqBase is the post-canonicalization floor of the event sequence
// counter; see CanonicalizeEventSeqs.
const CanonicalSeqBase = uint64(1) << 32

// SaveQueues serialises one or more event queues as a single canonical
// "sim.eventq" section: shared clock (all queues must agree — the sharded
// engine only saves at epoch barriers), canonical sequence space
// (CanonicalizeEventSeqs), summed dispatch count and the primary queue's
// exit latch, followed by the merged self-profiler attribution table in
// sorted (component, kind) order. A one-queue serial save and an n-shard
// parallel save of the same machine emit identical bytes, which is what
// makes serial and sharded checkpoints interchangeable.
func SaveQueues(w *ckpt.Writer, queues []*EventQueue) error {
	q0 := queues[0]
	for _, q := range queues[1:] {
		if q.now != q0.now {
			panic(fmt.Sprintf("sim: SaveQueues with unaligned clocks (%d vs %d); sharded saves must happen at epoch barriers",
				q0.now, q.now))
		}
	}
	n := CanonicalizeEventSeqs(queues)
	w.Section("sim.eventq")
	w.U64(uint64(q0.now))
	w.U64(CanonicalSeqBase + n)
	var disp uint64
	for _, q := range queues {
		disp += q.dispatched
	}
	w.U64(disp)
	w.Bool(q0.exitSet)
	w.String(q0.exitReason)
	saveAttrMerged(w, queues)
	return w.Err()
}

// saveAttrMerged persists the self-profilers' exact per-owner event counts
// (host times are machine-dependent and deliberately excluded), merged
// across queues and sorted by (component, kind) — an encoding independent of
// per-queue OwnerID interning order and of the shard layout. With profiling
// off it writes an empty table.
func saveAttrMerged(w *ckpt.Writer, queues []*EventQueue) {
	merged := make(map[ownerKey]uint64)
	for _, q := range queues {
		if q.prof == nil {
			continue
		}
		for id, c := range q.prof.counts {
			if c != 0 {
				merged[q.ownerKeys[id]] += c
			}
		}
	}
	keys := make([]ownerKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].component != keys[j].component {
			return keys[i].component < keys[j].component
		}
		return keys[i].kind < keys[j].kind
	})
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k.component)
		w.String(k.kind)
		w.U64(merged[k])
	}
}

// RestoreState loads the queue's clock and counters. It must run on a
// pristine queue (freshly built system, nothing started) and before any
// component restores: component reschedules validate against the restored
// clock, and the restored sequence counter guarantees that events scheduled
// after the restore order behind every re-materialised one.
func (q *EventQueue) RestoreState(r *ckpt.Reader) error {
	return RestoreQueues(r, []*EventQueue{q})
}

// RestoreQueues loads a canonical "sim.eventq" section into one or more
// pristine queues: the clock and sequence counter propagate to every queue
// (component restores then re-materialise each event onto its own shard's
// queue with its canonical seq), while the dispatch count, exit latch and
// attribution table land on the primary queue — the next SaveQueues sums and
// merges across queues, so the round-trip is byte-stable regardless of which
// engine saved and which restores.
func RestoreQueues(r *ckpt.Reader, queues []*EventQueue) error {
	for _, q := range queues {
		if q.now != 0 || q.Pending() != 0 || q.dispatched != 0 {
			return fmt.Errorf("sim: queue restore requires a pristine queue (now=%d, pending=%d, dispatched=%d)",
				q.now, q.Pending(), q.dispatched)
		}
	}
	r.Section("sim.eventq")
	now := Tick(r.U64())
	seq := r.U64()
	disp := r.U64()
	exitSet := r.Bool()
	exitReason := r.String()
	for i, q := range queues {
		q.now = now
		q.seq = seq
		if i == 0 {
			q.dispatched = disp
			q.exitSet = exitSet
			q.exitReason = exitReason
		}
	}
	q := queues[0]
	n := r.U32()
	if n > 0 {
		q.restoredAttr = make(map[ownerKey]uint64, n)
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			comp := r.String()
			kind := r.String()
			q.restoredAttr[ownerKey{comp, kind}] += r.U64()
		}
		// A profiler attached before the restore folds the counts in now;
		// otherwise AttachProfiler picks them up, and a profiling-off run
		// simply discards them.
		if q.prof != nil {
			q.applyRestoredAttr()
		}
	}
	return r.Err()
}

// RestoreSchedule inserts e with an explicit (when, seq) pair captured by a
// checkpoint. Unlike Schedule it does not mint a fresh sequence number:
// keeping the saved one makes dispatch ordering independent of the order in
// which components happen to re-materialise their events. The queue's own
// counter is bumped past seq so post-restore Schedule calls cannot collide.
func (q *EventQueue) RestoreSchedule(e *Event, when Tick, seq uint64) {
	if e.scheduled {
		panic(fmt.Sprintf("sim: restoring already-scheduled event %q", e.name))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q restored at %d, before now %d", e.name, when, q.now))
	}
	e.seq = seq
	q.insert(e, when)
	if seq >= q.seq {
		q.seq = seq + 1
	}
}

// SaveEvent records the scheduling state of a component-owned event:
// whether it is pending and, if so, its tick and sequence number.
func SaveEvent(w *ckpt.Writer, e *Event) {
	w.Bool(e.scheduled)
	if e.scheduled {
		w.U64(uint64(e.when))
		w.U64(e.seq)
	}
}

// RestoreEvent re-schedules e from state captured by SaveEvent. The event
// must belong to the restoring component (its closure is recreated by the
// component's constructor; only the scheduling state travels through the
// checkpoint).
func (q *EventQueue) RestoreEvent(r *ckpt.Reader, e *Event) {
	if !r.Bool() {
		return
	}
	when := Tick(r.U64())
	seq := r.U64()
	if r.Err() != nil {
		return
	}
	q.RestoreSchedule(e, when, seq)
}

// SaveState captures the ticker's cycle count and pending-edge event.
func (t *Ticker) SaveState(w *ckpt.Writer) error {
	w.Section("sim.ticker")
	w.U64(t.cycle)
	SaveEvent(w, t.ev)
	return w.Err()
}

// RestoreState reinstates the cycle count and (if it was pending) the next
// clock-edge event. Restored tickers must not also be Start()ed.
func (t *Ticker) RestoreState(r *ckpt.Reader) error {
	r.Section("sim.ticker")
	t.cycle = r.U64()
	t.dom.q.RestoreEvent(r, t.ev)
	return r.Err()
}
