package sim

import (
	"fmt"

	"gem5rtl/internal/ckpt"
)

// SaveState serialises the queue's clock, sequence counter, dispatch count
// and exit latch. Pending events are deliberately not serialised here: events
// hold closures, which cannot cross a process boundary. Instead every
// component saves the scheduling state of the events it owns (SaveEvent) and
// re-materialises them during its own RestoreState (RestoreEvent), preserving
// the original insertion sequence numbers so intra-tick ordering after a
// restore is bit-identical to the uninterrupted run.
func (q *EventQueue) SaveState(w *ckpt.Writer) error {
	w.Section("sim.eventq")
	w.U64(uint64(q.now))
	w.U64(q.seq)
	w.U64(q.dispatched)
	w.Bool(q.exitSet)
	w.String(q.exitReason)
	q.saveAttr(w)
	return w.Err()
}

// saveAttr persists the self-profiler's exact per-owner event counts (host
// times are machine-dependent and deliberately excluded), in deterministic
// OwnerID order. With profiling off it writes an empty table.
func (q *EventQueue) saveAttr(w *ckpt.Writer) {
	if q.prof == nil {
		w.U32(0)
		return
	}
	n := uint32(0)
	for _, c := range q.prof.counts {
		if c != 0 {
			n++
		}
	}
	w.U32(n)
	for id, c := range q.prof.counts {
		if c == 0 {
			continue
		}
		k := q.ownerKeys[id]
		w.String(k.component)
		w.String(k.kind)
		w.U64(c)
	}
}

// RestoreState loads the queue's clock and counters. It must run on a
// pristine queue (freshly built system, nothing started) and before any
// component restores: component reschedules validate against the restored
// clock, and the restored sequence counter guarantees that events scheduled
// after the restore order behind every re-materialised one.
func (q *EventQueue) RestoreState(r *ckpt.Reader) error {
	if q.now != 0 || q.Pending() != 0 || q.dispatched != 0 {
		return fmt.Errorf("sim: queue restore requires a pristine queue (now=%d, pending=%d, dispatched=%d)",
			q.now, q.Pending(), q.dispatched)
	}
	r.Section("sim.eventq")
	q.now = Tick(r.U64())
	q.seq = r.U64()
	q.dispatched = r.U64()
	q.exitSet = r.Bool()
	q.exitReason = r.String()
	n := r.U32()
	if n > 0 {
		q.restoredAttr = make(map[ownerKey]uint64, n)
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			comp := r.String()
			kind := r.String()
			q.restoredAttr[ownerKey{comp, kind}] += r.U64()
		}
		// A profiler attached before the restore folds the counts in now;
		// otherwise AttachProfiler picks them up, and a profiling-off run
		// simply discards them.
		if q.prof != nil {
			q.applyRestoredAttr()
		}
	}
	return r.Err()
}

// RestoreSchedule inserts e with an explicit (when, seq) pair captured by a
// checkpoint. Unlike Schedule it does not mint a fresh sequence number:
// keeping the saved one makes dispatch ordering independent of the order in
// which components happen to re-materialise their events. The queue's own
// counter is bumped past seq so post-restore Schedule calls cannot collide.
func (q *EventQueue) RestoreSchedule(e *Event, when Tick, seq uint64) {
	if e.scheduled {
		panic(fmt.Sprintf("sim: restoring already-scheduled event %q", e.name))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q restored at %d, before now %d", e.name, when, q.now))
	}
	e.seq = seq
	q.insert(e, when)
	if seq >= q.seq {
		q.seq = seq + 1
	}
}

// SaveEvent records the scheduling state of a component-owned event:
// whether it is pending and, if so, its tick and sequence number.
func SaveEvent(w *ckpt.Writer, e *Event) {
	w.Bool(e.scheduled)
	if e.scheduled {
		w.U64(uint64(e.when))
		w.U64(e.seq)
	}
}

// RestoreEvent re-schedules e from state captured by SaveEvent. The event
// must belong to the restoring component (its closure is recreated by the
// component's constructor; only the scheduling state travels through the
// checkpoint).
func (q *EventQueue) RestoreEvent(r *ckpt.Reader, e *Event) {
	if !r.Bool() {
		return
	}
	when := Tick(r.U64())
	seq := r.U64()
	if r.Err() != nil {
		return
	}
	q.RestoreSchedule(e, when, seq)
}

// SaveState captures the ticker's cycle count and pending-edge event.
func (t *Ticker) SaveState(w *ckpt.Writer) error {
	w.Section("sim.ticker")
	w.U64(t.cycle)
	SaveEvent(w, t.ev)
	return w.Err()
}

// RestoreState reinstates the cycle count and (if it was pending) the next
// clock-edge event. Restored tickers must not also be Start()ed.
func (t *Ticker) RestoreState(r *ckpt.Reader) error {
	r.Section("sim.ticker")
	t.cycle = r.U64()
	t.dom.q.RestoreEvent(r, t.ev)
	return r.Err()
}
