package sim

import (
	"context"
	"testing"
)

// perpetualChain schedules a self-rescheduling event so the queue never
// drains on its own.
func perpetualChain(q *EventQueue, every Tick) {
	var e *Event
	e = NewEvent("chain", func() { q.Schedule(e, q.Now()+every) })
	q.Schedule(e, every)
}

func TestWatchContextCancelExitsLoop(t *testing.T) {
	q := NewEventQueue()
	perpetualChain(q, Nanosecond)
	ctx, cancel := context.WithCancel(context.Background())
	stop := q.WatchContext(ctx, Microsecond)
	defer stop()
	cancel()
	q.RunUntil(MaxTick)
	if q.ExitReason() != ExitReasonContext {
		t.Fatalf("exit reason %q, want %q", q.ExitReason(), ExitReasonContext)
	}
	// The first check fires one interval in; the loop must not run beyond
	// the following check.
	if q.Now() > 2*Microsecond {
		t.Fatalf("ran to tick %d after cancellation", q.Now())
	}
}

func TestWatchContextUncancelledIsInvisible(t *testing.T) {
	run := func(watch bool) Tick {
		q := NewEventQueue()
		perpetualChain(q, Nanosecond)
		if watch {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stop := q.WatchContext(ctx, Microsecond)
			defer stop()
		}
		q.RunUntil(10 * Microsecond)
		return q.Now()
	}
	plainNow := run(false)
	watchNow := run(true)
	if plainNow != watchNow {
		t.Fatalf("watcher changed final tick: %d vs %d", plainNow, watchNow)
	}
}

func TestWatchContextStopRemovesEvent(t *testing.T) {
	q := NewEventQueue()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := q.WatchContext(ctx, Microsecond)
	if q.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", q.Pending())
	}
	stop()
	if q.Pending() != 0 {
		t.Fatalf("pending = %d after stop, want 0", q.Pending())
	}
	// Contexts that can never be cancelled install nothing.
	if s := q.WatchContext(context.Background(), 0); s == nil {
		t.Fatal("nil stop func for background context")
	} else {
		s()
	}
	if q.Pending() != 0 {
		t.Fatalf("background context installed an event: pending = %d", q.Pending())
	}
}
