package sim

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
)

// TestDispatchNoProfilerZeroAllocs pins the zero-cost-when-off contract: with
// no profiler attached, dispatching owned one-shot events allocates nothing
// on the hot path (the recycled-event pool absorbs the Event itself).
func TestDispatchNoProfilerZeroAllocs(t *testing.T) {
	q := NewEventQueue()
	owner := q.Owner("cpu0", "tick")
	// Prime the event recycle pool.
	q.ScheduleOneShotOwned("prime", q.Now()+1, owner, func() {})
	for q.Step() {
	}
	when := q.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		when++
		q.ScheduleOneShotOwned("e", when, owner, func() {})
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("dispatch with profiling off allocates %v per event, want 0", allocs)
	}
}

// TestProfilerExactCounts checks that per-owner event counts are exact: every
// dispatch of an owned event increments exactly its owner, untagged events
// charge the reserved unattributed owner, and Enter/Exit phase attribution
// counts once per Enter.
func TestProfilerExactCounts(t *testing.T) {
	q := NewEventQueue()
	p := q.AttachProfiler(4)
	a := q.Owner("cpu0", "tick")
	b := q.Owner("dram", "respond")
	phase := q.Owner("pmu0", "rtl-comb")
	for i := 0; i < 10; i++ {
		q.ScheduleOneShotOwned("a", Tick(i+1), a, func() {})
	}
	for i := 0; i < 7; i++ {
		q.ScheduleOneShotOwned("b", Tick(i+1), b, func() {
			prev := p.Enter(phase)
			p.Exit(prev)
		})
	}
	for i := 0; i < 3; i++ {
		q.ScheduleOneShot("untagged", Tick(i+1), func() {})
	}
	for q.Step() {
	}
	want := map[string]uint64{
		"cpu0/tick":               10,
		"dram/respond":            7,
		"pmu0/rtl-comb":           7,
		"(unattributed)/dispatch": 3,
	}
	got := map[string]uint64{}
	for _, s := range p.Stats() {
		got[s.Component+"/"+s.Kind] = s.Events
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("owner %s: %d events, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

// TestOwnerInterningStable checks that interning is idempotent and that the
// reserved pair maps to the zero ID rather than minting a new owner.
func TestOwnerInterningStable(t *testing.T) {
	q := NewEventQueue()
	a1 := q.Owner("noc", "xfer")
	a2 := q.Owner("noc", "xfer")
	if a1 != a2 {
		t.Fatalf("re-interning minted a new ID: %d vs %d", a1, a2)
	}
	if id := q.Owner("", ""); id != 0 {
		t.Fatalf("reserved owner interned as %d, want 0", id)
	}
	if c, k := q.OwnerName(a1); c != "noc" || k != "xfer" {
		t.Fatalf("OwnerName(%d) = %q/%q", a1, c, k)
	}
}

// TestProfilerCheckpointRoundTrip saves a profiled queue mid-run, restores it
// into a fresh queue, and requires the combined event-count attribution to
// equal the uninterrupted run's exactly. Host-time shares are deliberately
// not serialised; only counts must survive.
func TestProfilerCheckpointRoundTrip(t *testing.T) {
	run := func(q *EventQueue, from, to int, owner OwnerID) {
		for i := from; i < to; i++ {
			q.ScheduleOneShotOwned("e", Tick(i+1), owner, func() {})
		}
		for q.Step() {
		}
	}

	// Uninterrupted reference.
	ref := NewEventQueue()
	refP := ref.AttachProfiler(8)
	run(ref, 0, 100, ref.Owner("cpu0", "tick"))

	// Prefix run, checkpoint, resume.
	q1 := NewEventQueue()
	q1.AttachProfiler(8)
	run(q1, 0, 40, q1.Owner("cpu0", "tick"))
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := q1.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	q2 := NewEventQueue()
	if err := q2.RestoreState(ckpt.NewReader(&buf)); err != nil {
		t.Fatal(err)
	}
	p2 := q2.AttachProfiler(8) // attach after restore: counts must fold in
	run(q2, 40, 100, q2.Owner("cpu0", "tick"))

	refCounts := map[string]uint64{}
	for _, s := range refP.Stats() {
		refCounts[s.Component+"/"+s.Kind] = s.Events
	}
	gotCounts := map[string]uint64{}
	for _, s := range p2.Stats() {
		gotCounts[s.Component+"/"+s.Kind] = s.Events
	}
	if len(gotCounts) != len(refCounts) {
		t.Fatalf("restored attribution has %d owners, reference %d: %v vs %v",
			len(gotCounts), len(refCounts), gotCounts, refCounts)
	}
	for k, n := range refCounts {
		if gotCounts[k] != n {
			t.Errorf("owner %s: restored run counted %d events, reference %d", k, gotCounts[k], n)
		}
	}
	if q2.Dispatched() != ref.Dispatched() {
		t.Errorf("dispatched %d events after restore, reference %d", q2.Dispatched(), ref.Dispatched())
	}
}
