// Package sim provides the discrete-event simulation kernel that underpins
// every timed component in gem5rtl. It mirrors gem5's event queue semantics:
// simulated time is counted in integer Ticks (1 tick = 1 picosecond), events
// are ordered by (tick, priority, insertion sequence), and a single queue
// drives the whole system deterministically.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Tick is a point in (or span of) simulated time. One Tick is one picosecond,
// matching gem5's convention, so a 2 GHz clock has a period of 500 Ticks.
type Tick uint64

// Common time spans expressed in Ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000 * Picosecond
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// MaxTick is the largest representable simulated time.
const MaxTick = Tick(^uint64(0))

// Standard event priorities. Lower values run earlier within the same tick.
const (
	PriDefault  = 0
	PriCPU      = -10 // CPU ticks run before device ticks within a cycle
	PriStats    = 50  // stats dumps observe the post-update state of a tick
	PriSimExit  = 100 // exit events run after everything else in their tick
	PriMinFirst = -1 << 30
)

// Event is a schedulable unit of work. Create events with NewEvent (or
// EventQueue.ScheduleFunc) and schedule them on exactly one queue at a time.
type Event struct {
	name      string
	fn        func()
	when      Tick
	prio      int
	seq       uint64
	index     int // heap index; -1 when not scheduled
	scheduled bool
}

// NewEvent returns an unscheduled event that runs fn when dispatched.
// The name is used in error messages and debugging output only.
func NewEvent(name string, fn func()) *Event {
	return &Event{name: name, fn: fn, index: -1}
}

// NewEventPri is NewEvent with an explicit intra-tick priority.
func NewEventPri(name string, prio int, fn func()) *Event {
	return &Event{name: name, fn: fn, prio: prio, index: -1}
}

// Name returns the event's debug name.
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is currently pending on a queue.
func (e *Event) Scheduled() bool { return e.scheduled }

// When returns the tick the event is scheduled for. Only meaningful while
// Scheduled() is true.
func (e *Event) When() Tick { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic single-threaded event queue. The zero value
// is not usable; construct with NewEventQueue.
type EventQueue struct {
	now        Tick
	heap       eventHeap
	seq        uint64
	exitReason string
	exitSet    bool
	// dispatched is a plain counter on the Step hot path; the queue is
	// strictly single-threaded, so read it only from the sim goroutine
	// (host-side monitors aggregate it post-run via obs.CountEvents).
	dispatched uint64
}

// NewEventQueue returns an empty queue positioned at tick 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current simulated time.
func (q *EventQueue) Now() Tick { return q.now }

// Dispatched returns the total number of events executed so far; useful for
// simulator performance statistics (host events per second). Like the rest
// of the queue API it must be called from the simulation goroutine.
func (q *EventQueue) Dispatched() uint64 { return q.dispatched }

// Empty reports whether no events are pending.
func (q *EventQueue) Empty() bool { return len(q.heap) == 0 }

// Pending returns the number of scheduled events.
func (q *EventQueue) Pending() int { return len(q.heap) }

// Schedule inserts e at absolute time when. Scheduling into the past or
// double-scheduling an event is a programming error and panics, as the
// resulting simulation would be non-causal.
func (q *EventQueue) Schedule(e *Event, when Tick) {
	if e.scheduled {
		panic(fmt.Sprintf("sim: event %q already scheduled for %d", e.name, e.when))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %d, before now %d", e.name, when, q.now))
	}
	e.when = when
	e.seq = q.seq
	q.seq++
	e.scheduled = true
	heap.Push(&q.heap, e)
}

// ScheduleFunc creates, schedules, and returns a one-shot event running fn.
func (q *EventQueue) ScheduleFunc(name string, when Tick, fn func()) *Event {
	e := NewEvent(name, fn)
	q.Schedule(e, when)
	return e
}

// Deschedule removes a pending event from the queue.
func (q *EventQueue) Deschedule(e *Event) {
	if !e.scheduled {
		panic(fmt.Sprintf("sim: descheduling unscheduled event %q", e.name))
	}
	heap.Remove(&q.heap, e.index)
	e.scheduled = false
}

// Reschedule moves a pending event to a new time; if the event is not
// scheduled it is simply scheduled.
func (q *EventQueue) Reschedule(e *Event, when Tick) {
	if e.scheduled {
		q.Deschedule(e)
	}
	q.Schedule(e, when)
}

// Step dispatches the single next event. It returns false when the queue is
// empty or an exit has been requested.
func (q *EventQueue) Step() bool {
	if q.exitSet || len(q.heap) == 0 {
		return false
	}
	e := heap.Pop(&q.heap).(*Event)
	q.now = e.when
	e.scheduled = false
	q.dispatched++
	e.fn()
	return true
}

// ExitSimLoop requests that Run/RunUntil return after the current event. It
// mirrors gem5's exit_sim_loop mechanism; the reason is retrievable with
// ExitReason.
func (q *EventQueue) ExitSimLoop(reason string) {
	q.exitReason = reason
	q.exitSet = true
}

// ExitReason returns the reason passed to ExitSimLoop, or "" if none.
func (q *EventQueue) ExitReason() string { return q.exitReason }

// ClearExit re-arms the queue after an exit so simulation can be resumed.
func (q *EventQueue) ClearExit() { q.exitSet = false; q.exitReason = "" }

// Run dispatches events until the queue drains or ExitSimLoop is called.
// It returns the exit reason ("" if the queue simply drained).
func (q *EventQueue) Run() string {
	for q.Step() {
	}
	return q.exitReason
}

// PendingSummaries returns short one-line descriptions of up to max pending
// events in dispatch order (all of them when max <= 0). It is a diagnostic
// introspection hook — the liveness watchdog dumps it when a simulation
// wedges — and does not disturb the queue.
func (q *EventQueue) PendingSummaries(max int) []string {
	evs := make([]*Event, len(q.heap))
	copy(evs, q.heap)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		return a.seq < b.seq
	})
	if max > 0 && len(evs) > max {
		evs = evs[:max]
	}
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("%s @%d prio=%d", e.name, e.when, e.prio)
	}
	return out
}

// RunUntil dispatches events with tick <= limit. Time advances to limit if
// the queue drains earlier. Returns the exit reason ("" if none).
func (q *EventQueue) RunUntil(limit Tick) string {
	for !q.exitSet && len(q.heap) > 0 && q.heap[0].when <= limit {
		q.Step()
	}
	if !q.exitSet && q.now < limit {
		q.now = limit
	}
	return q.exitReason
}
