// Package sim provides the discrete-event simulation kernel that underpins
// every timed component in gem5rtl. It mirrors gem5's event queue semantics:
// simulated time is counted in integer Ticks (1 tick = 1 picosecond), events
// are ordered by (tick, priority, insertion sequence), and a single queue
// drives the whole system deterministically.
//
// # Queue internals
//
// The queue is a hybrid calendar/heap structure tuned for the simulator's
// event mix (see PERFORMANCE.md for the model and measurements):
//
//   - Near-future events — clock edges, port-queue drains, cache and memory
//     completions, everything within calWindow ticks of now — live in a
//     calendar ring with one slot per tick. Insertion and removal are O(1)
//     plus an insertion sort over the handful of events sharing one tick, and
//     dispatching a tick drains its slot as a batch with no per-event heap
//     churn. An occupancy bitmap makes "find the next non-empty tick" a few
//     word scans.
//   - Far-future events — sleep syscall wake-ups, periodic context checks —
//     fall back to a conventional binary heap and migrate into the ring only
//     when their tick comes up for dispatch.
//
// Both structures order events identically, so the dispatch order is
// bit-identical to a pure-heap queue; TestCalendarMatchesReferenceHeap and
// the kernel golden-state tests hold the two implementations to the same
// StateHash.
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"
)

// Tick is a point in (or span of) simulated time. One Tick is one picosecond,
// matching gem5's convention, so a 2 GHz clock has a period of 500 Ticks.
type Tick uint64

// Common time spans expressed in Ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000 * Picosecond
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// MaxTick is the largest representable simulated time.
const MaxTick = Tick(^uint64(0))

// Standard event priorities. Lower values run earlier within the same tick.
const (
	PriDefault  = 0
	PriCPU      = -10 // CPU ticks run before device ticks within a cycle
	PriStats    = 50  // stats dumps observe the post-update state of a tick
	PriSimExit  = 100 // exit events run after everything else in their tick
	PriMinFirst = -1 << 30
)

// Calendar-ring geometry. The window must comfortably cover the recurring
// near-future distances of the simulated SoC — clock periods (500–2000
// ticks), cache latencies (1000–10000 ticks) and DRAM round-trips (tens of
// nanoseconds) — so that only genuinely far events (microsecond sleeps,
// 100 us context checks) pay the heap. 2^16 ticks = 65.536 ns.
const (
	calWindowBits = 16
	calWindow     = Tick(1) << calWindowBits
	calMask       = uint64(calWindow) - 1
)

// Event is a schedulable unit of work. Create events with NewEvent (or
// EventQueue.ScheduleFunc) and schedule them on exactly one queue at a time.
//
// Ownership contract: an Event belongs to the component that created it and
// may be freely rescheduled once it is no longer pending (after dispatch, or
// after Deschedule). Events obtained through ScheduleOneShot are owned by the
// queue and are recycled immediately after dispatch — callers never see them
// and must not retain references from inside their own callbacks.
type Event struct {
	name string
	fn   func()
	when Tick
	prio int
	// rank is a stable arbitration key derived from the event name (FNV-64a).
	// Same-tick, same-priority events dispatch in rank order before falling
	// back to the insertion sequence, so the intra-tick order of events from
	// *different* components depends only on their names — not on which queue
	// they were scheduled on or in which host order. This is what lets the
	// sharded engine (internal/psim) reproduce the serial dispatch order
	// bit-for-bit: component names are unique, so cross-component ties break
	// identically on every shard layout, and the seq tie-break is only ever
	// consulted between events of the same name, which always live on the
	// same queue.
	rank uint64
	seq  uint64
	// index is the event's far-heap position, or one of the sentinel states
	// below when it is not in the heap.
	index     int
	next      *Event // intrusive link: calendar slot list, or queue freelist
	scheduled bool
	oneShot   bool
	// owner attributes the event's dispatch time to a (component, kind)
	// pair when a Profiler is attached; see SetOwner. Always tagged (one
	// int32 store at creation), only read when profiling is on.
	owner OwnerID
}

// Event.index sentinels.
const (
	idxUnscheduled = -1
	idxNearRing    = -2
)

// nameRank hashes an event name with FNV-64a. The hash is computed once per
// event creation (or per one-shot rename) and cached in Event.rank.
func nameRank(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NewEvent returns an unscheduled event that runs fn when dispatched.
// The name doubles as the event's stable arbitration identity: same-tick,
// same-priority ties dispatch in name-hash (rank) order, so names should be
// component-qualified and unique per component.
func NewEvent(name string, fn func()) *Event {
	return &Event{name: name, fn: fn, rank: nameRank(name), index: idxUnscheduled}
}

// NewEventPri is NewEvent with an explicit intra-tick priority.
func NewEventPri(name string, prio int, fn func()) *Event {
	return &Event{name: name, fn: fn, prio: prio, rank: nameRank(name), index: idxUnscheduled}
}

// Name returns the event's debug name.
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is currently pending on a queue.
func (e *Event) Scheduled() bool { return e.scheduled }

// When returns the tick the event is scheduled for. Only meaningful while
// Scheduled() is true.
func (e *Event) When() Tick { return e.when }

// before orders two events scheduled for the same tick: by priority, then by
// name rank (stable across queue layouts), then by insertion sequence (FIFO
// among same-name events). It must agree with eventHeap.Less.
func (e *Event) before(o *Event) bool {
	if e.prio != o.prio {
		return e.prio < o.prio
	}
	if e.rank != o.rank {
		return e.rank < o.rank
	}
	return e.seq < o.seq
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = idxUnscheduled
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic single-threaded event queue. The zero value
// is not usable; construct with NewEventQueue (or, for differential testing
// against the historical pure-heap dispatcher, NewReferenceEventQueue).
type EventQueue struct {
	now        Tick
	seq        uint64
	exitReason string
	exitSet    bool
	// dispatched is a plain counter on the Step hot path; the queue is
	// strictly single-threaded, so read it only from the sim goroutine
	// (host-side monitors aggregate it post-run via obs.CountEvents).
	dispatched uint64

	// curStamp identifies the dispatch context of the event currently (or
	// most recently) executing: its (when, prio, rank, seq). Port queues
	// capture it at insertion time so their arrival-tick ties resolve by the
	// *sender's* dispatch order — an engine-independent key the sharded
	// engine can reproduce across epoch barriers.
	curStamp Stamp

	// stopAfter, when stopSet, caps RunUntil: no event with a later tick is
	// dispatched and time does not advance past it. Unlike ExitSimLoop it is
	// not an event and consumes no sequence numbers or dispatch counts, so a
	// run that completes via stop-after leaves the same queue state as one
	// that never reached the cap — the property the serial and sharded
	// engines rely on to finish runs at bit-identical states.
	stopAfter Tick
	stopSet   bool

	// Calendar ring: slot i holds the (prio, seq)-sorted intrusive list of
	// events at the unique tick t in [now, now+calWindow) with t mod
	// calWindow == i. bits mirrors slot occupancy for fast next-tick scans.
	slots     []*Event
	bits      []uint64
	nearCount int
	// nearNext caches the earliest ring tick; nearDirty forces a bitmap
	// rescan after the slot holding nearNext drains.
	nearNext  Tick
	nearDirty bool

	// far holds events at least calWindow ticks ahead (and everything when
	// ref is set). Far events migrate into the ring when their tick comes up.
	far eventHeap

	// freeEvents recycles one-shot events dispatched via ScheduleOneShot.
	freeEvents *Event

	// ref selects the reference pure-heap dispatcher (NewReferenceEventQueue).
	ref bool

	// Self-profiler state (prof.go). ownerKeys/ownerIDs intern attribution
	// owners whether or not a profiler is attached, so owner IDs are fixed
	// by deterministic Build order; prof is nil when profiling is off.
	ownerKeys    []ownerKey
	ownerIDs     map[ownerKey]OwnerID
	prof         *Profiler
	restoredAttr map[ownerKey]uint64
}

// NewEventQueue returns an empty queue positioned at tick 0.
func NewEventQueue() *EventQueue {
	if referenceMode {
		return NewReferenceEventQueue()
	}
	return &EventQueue{
		slots: make([]*Event, calWindow),
		bits:  make([]uint64, calWindow/64),
	}
}

// NewReferenceEventQueue returns a queue that dispatches purely from the
// binary heap, bypassing the calendar ring. It exists so tests (and the
// kernel benchmark harness) can prove the hybrid queue reproduces the
// historical dispatch order bit-for-bit; simulations should use
// NewEventQueue.
func NewReferenceEventQueue() *EventQueue {
	return &EventQueue{ref: true}
}

// referenceMode switches NewEventQueue-constructed queues to reference
// dispatch for code paths that build their own queues internally (soc.Build).
// Test-only; see UseReferenceQueueForTest.
var referenceMode bool

// UseReferenceQueueForTest makes every subsequently constructed EventQueue a
// reference (pure-heap) queue while on. It is NOT safe to toggle while
// simulations are running and exists solely for differential determinism
// tests that drive full systems through constructors they do not control.
func UseReferenceQueueForTest(on bool) {
	referenceMode = on
}

// Now returns the current simulated time.
func (q *EventQueue) Now() Tick { return q.now }

// Dispatched returns the total number of events executed so far; useful for
// simulator performance statistics (host events per second). Like the rest
// of the queue API it must be called from the simulation goroutine.
func (q *EventQueue) Dispatched() uint64 { return q.dispatched }

// Empty reports whether no events are pending.
func (q *EventQueue) Empty() bool { return q.nearCount == 0 && len(q.far) == 0 }

// Pending returns the number of scheduled events.
func (q *EventQueue) Pending() int { return q.nearCount + len(q.far) }

// Schedule inserts e at absolute time when. Scheduling into the past is a
// programming error and panics, as the resulting simulation would be
// non-causal.
//
// Contract: an event may be pending on at most one (queue, tick) at a time.
// Scheduling an already-pending event panics, naming the event and both the
// pending and requested ticks; use Reschedule to move a pending event, or
// Deschedule it first. An event becomes schedulable again the moment its
// callback starts executing, so self-rescheduling tickers are fine.
func (q *EventQueue) Schedule(e *Event, when Tick) {
	if e.scheduled {
		panic(fmt.Sprintf("sim: event %q already scheduled for tick %d, cannot schedule for tick %d (use Reschedule, or Deschedule first)",
			e.name, e.when, when))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %d, before now %d", e.name, when, q.now))
	}
	e.seq = q.seq
	q.seq++
	q.insert(e, when)
}

// insert files e (whose seq is already assigned) under its time class.
func (q *EventQueue) insert(e *Event, when Tick) {
	e.when = when
	e.scheduled = true
	if q.ref || when-q.now >= calWindow {
		heap.Push(&q.far, e)
		return
	}
	q.insertNear(e)
}

// insertNear links e into its calendar slot, keeping the slot list sorted by
// (prio, seq) so same-tick dispatch order matches the reference heap.
func (q *EventQueue) insertNear(e *Event) {
	e.index = idxNearRing
	si := uint64(e.when) & calMask
	head := q.slots[si]
	switch {
	case head == nil:
		e.next = nil
		q.slots[si] = e
		q.bits[si>>6] |= 1 << (si & 63)
	case e.before(head):
		e.next = head
		q.slots[si] = e
	default:
		p := head
		for p.next != nil && p.next.before(e) {
			p = p.next
		}
		e.next = p.next
		p.next = e
	}
	q.nearCount++
	if q.nearCount == 1 {
		q.nearNext = e.when
		q.nearDirty = false
	} else if !q.nearDirty && e.when < q.nearNext {
		q.nearNext = e.when
	}
}

// removeNear unlinks a pending ring event (Deschedule support).
func (q *EventQueue) removeNear(e *Event) {
	si := uint64(e.when) & calMask
	head := q.slots[si]
	if head == e {
		q.slots[si] = e.next
	} else {
		p := head
		for p.next != e {
			p = p.next
		}
		p.next = e.next
	}
	e.next = nil
	e.index = idxUnscheduled
	q.nearCount--
	if q.slots[si] == nil {
		q.bits[si>>6] &^= 1 << (si & 63)
		if e.when == q.nearNext {
			q.nearDirty = true
		}
	}
}

// scanNear finds the earliest non-empty ring tick at or after now. It must
// only be called while nearCount > 0.
func (q *EventQueue) scanNear() Tick {
	base := uint64(q.now) & calMask
	wi := base >> 6
	nw := uint64(len(q.bits))
	// First word: ignore slots before now's slot.
	if w := q.bits[wi] &^ (1<<(base&63) - 1); w != 0 {
		slot := wi<<6 + uint64(bits.TrailingZeros64(w))
		return q.now + Tick((slot-base)&calMask)
	}
	for i := uint64(1); i <= nw; i++ {
		j := (wi + i) % nw
		w := q.bits[j]
		if j == wi {
			// Wrapped all the way around: only slots before base remain.
			w &= 1<<(base&63) - 1
		}
		if w != 0 {
			slot := j<<6 + uint64(bits.TrailingZeros64(w))
			return q.now + Tick((slot-base)&calMask)
		}
	}
	panic("sim: scanNear with empty ring")
}

// NextEventTick returns the tick of the next pending event, or false when the
// queue is empty. It does not disturb the queue and is the introspection hook
// RunUntil and external pacing loops use.
func (q *EventQueue) NextEventTick() (Tick, bool) {
	var t Tick
	ok := false
	if q.nearCount > 0 {
		if q.nearDirty {
			q.nearNext = q.scanNear()
			q.nearDirty = false
		}
		t = q.nearNext
		ok = true
	}
	if len(q.far) > 0 && (!ok || q.far[0].when < t) {
		t = q.far[0].when
		ok = true
	}
	return t, ok
}

// migrateFar moves every far-heap event scheduled exactly at t into t's ring
// slot. Heap pops yield them in (prio, seq) order, so the sorted slot insert
// merges them with any ring events already at t in reference order.
func (q *EventQueue) migrateFar(t Tick) {
	for len(q.far) > 0 && q.far[0].when == t {
		e := heap.Pop(&q.far).(*Event)
		q.insertNear(e)
	}
}

// ScheduleFunc creates, schedules, and returns a one-shot event running fn.
// The returned event is caller-owned (it can be descheduled or rescheduled);
// use ScheduleOneShot when no handle is needed — it recycles events through
// an internal freelist and is allocation-free in steady state.
func (q *EventQueue) ScheduleFunc(name string, when Tick, fn func()) *Event {
	e := NewEvent(name, fn)
	q.Schedule(e, when)
	return e
}

// ScheduleOneShot schedules fn to run once at the given absolute tick using
// a queue-owned pooled event. No handle is returned: the event cannot be
// descheduled, and it is recycled into the queue's freelist as soon as the
// callback returns (unless the callback re-scheduled it, which only the
// queue itself can observe). Use it for fire-and-forget work — fault
// injections, delayed retries — where ScheduleFunc's per-call allocation
// would accumulate.
func (q *EventQueue) ScheduleOneShot(name string, when Tick, fn func()) {
	q.ScheduleOneShotOwned(name, when, 0, fn)
}

// ScheduleOneShotOwned is ScheduleOneShot with an attribution owner for the
// self-profiler; the pooled event carries the owner for this dispatch only.
func (q *EventQueue) ScheduleOneShotOwned(name string, when Tick, owner OwnerID, fn func()) {
	e := q.freeEvents
	if e != nil {
		q.freeEvents = e.next
		e.next = nil
		e.name = name
		e.rank = nameRank(name)
		e.fn = fn
		e.prio = PriDefault
	} else {
		e = &Event{name: name, fn: fn, rank: nameRank(name), index: idxUnscheduled, oneShot: true}
	}
	e.owner = owner
	q.Schedule(e, when)
}

// recycleEvent returns a dispatched one-shot event to the freelist, dropping
// the callback so captured state is not retained.
func (q *EventQueue) recycleEvent(e *Event) {
	e.fn = nil
	e.name = ""
	e.next = q.freeEvents
	q.freeEvents = e
}

// Deschedule removes a pending event from the queue. The event may be
// scheduled again afterwards. Descheduling an event that is not pending
// panics.
func (q *EventQueue) Deschedule(e *Event) {
	if !e.scheduled {
		panic(fmt.Sprintf("sim: descheduling unscheduled event %q", e.name))
	}
	if e.index >= 0 {
		heap.Remove(&q.far, e.index)
	} else {
		q.removeNear(e)
	}
	e.scheduled = false
}

// Reschedule moves a pending event to a new time; if the event is not
// scheduled it is simply scheduled.
func (q *EventQueue) Reschedule(e *Event, when Tick) {
	if e.scheduled {
		q.Deschedule(e)
	}
	q.Schedule(e, when)
}

// Step dispatches the single next event. It returns false when the queue is
// empty or an exit has been requested.
func (q *EventQueue) Step() bool {
	if q.exitSet {
		return false
	}
	if q.ref {
		return q.stepRef()
	}
	t, ok := q.NextEventTick()
	if !ok {
		return false
	}
	q.now = t
	if len(q.far) > 0 && q.far[0].when == t {
		q.migrateFar(t)
	}
	si := uint64(t) & calMask
	e := q.slots[si]
	q.slots[si] = e.next
	if e.next == nil {
		q.bits[si>>6] &^= 1 << (si & 63)
		q.nearDirty = true
	}
	e.next = nil
	e.index = idxUnscheduled
	e.scheduled = false
	q.nearCount--
	q.dispatched++
	q.curStamp = Stamp{When: e.when, Prio: int32(e.prio), Rank: e.rank, Seq: e.seq}
	if p := q.prof; p != nil {
		p.hit(e.owner)
	}
	e.fn()
	if e.oneShot && !e.scheduled {
		q.recycleEvent(e)
	}
	return true
}

// stepRef is the reference pure-heap dispatcher (the pre-calendar-queue
// implementation, kept for differential testing).
func (q *EventQueue) stepRef() bool {
	if len(q.far) == 0 {
		return false
	}
	e := heap.Pop(&q.far).(*Event)
	q.now = e.when
	e.scheduled = false
	q.dispatched++
	q.curStamp = Stamp{When: e.when, Prio: int32(e.prio), Rank: e.rank, Seq: e.seq}
	if p := q.prof; p != nil {
		p.hit(e.owner)
	}
	e.fn()
	if e.oneShot && !e.scheduled {
		q.recycleEvent(e)
	}
	return true
}

// ExitSimLoop requests that Run/RunUntil return after the current event. It
// mirrors gem5's exit_sim_loop mechanism; the reason is retrievable with
// ExitReason.
func (q *EventQueue) ExitSimLoop(reason string) {
	q.exitReason = reason
	q.exitSet = true
}

// ExitReason returns the reason passed to ExitSimLoop, or "" if none.
func (q *EventQueue) ExitReason() string { return q.exitReason }

// ClearExit re-arms the queue after an exit so simulation can be resumed.
func (q *EventQueue) ClearExit() { q.exitSet = false; q.exitReason = "" }

// Run dispatches events until the queue drains or ExitSimLoop is called.
// It returns the exit reason ("" if the queue simply drained).
func (q *EventQueue) Run() string {
	for q.Step() {
	}
	return q.exitReason
}

// PendingSummaries returns short one-line descriptions of up to max pending
// events in dispatch order (all of them when max <= 0). It is a diagnostic
// introspection hook — the liveness watchdog dumps it when a simulation
// wedges — and does not disturb the queue.
func (q *EventQueue) PendingSummaries(max int) []string {
	evs := make([]*Event, 0, q.Pending())
	evs = append(evs, q.far...)
	for si, head := range q.slots {
		if q.bits[si>>6]&(1<<(uint(si)&63)) == 0 {
			continue
		}
		for e := head; e != nil; e = e.next {
			evs = append(evs, e)
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.seq < b.seq
	})
	if max > 0 && len(evs) > max {
		evs = evs[:max]
	}
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("%s @%d prio=%d", e.name, e.when, e.prio)
	}
	return out
}

// RunUntil dispatches events with tick <= limit (further capped by
// SetStopAfter when armed). Time advances to the effective limit if the
// queue drains earlier. Returns the exit reason ("" if none).
func (q *EventQueue) RunUntil(limit Tick) string {
	for !q.exitSet {
		eff := limit
		if q.stopSet && q.stopAfter < eff {
			eff = q.stopAfter
		}
		t, ok := q.NextEventTick()
		if !ok || t > eff {
			break
		}
		q.Step()
	}
	eff := limit
	if q.stopSet && q.stopAfter < eff {
		eff = q.stopAfter
	}
	if !q.exitSet && q.now < eff {
		q.now = eff
	}
	return q.exitReason
}

// Stamp is the identity of one event dispatch: the (when, prio, rank, seq)
// key under which the event was ordered. Stamps order exactly like the
// dispatch order itself, so "sort by stamp" reproduces "order of side
// effects in the serial run" — the property port queues use to keep
// arrival-tick ties deterministic under the sharded engine. The Seq field
// is only ever compared between dispatches of the same event name (equal
// Rank), which always share a queue, so stamp comparisons never depend on
// per-queue sequence counters diverging across shard layouts.
type Stamp struct {
	When Tick
	Prio int32
	Rank uint64
	Seq  uint64
}

// Less orders stamps by (when, prio, rank, seq).
func (s Stamp) Less(o Stamp) bool {
	if s.When != o.When {
		return s.When < o.When
	}
	if s.Prio != o.Prio {
		return s.Prio < o.Prio
	}
	if s.Rank != o.Rank {
		return s.Rank < o.Rank
	}
	return s.Seq < o.Seq
}

// CurrentStamp returns the dispatch stamp of the event currently executing
// (or, between dispatches, the most recently executed one; the zero Stamp
// before any event has run). Single-threaded like the rest of the queue API.
func (q *EventQueue) CurrentStamp() Stamp { return q.curStamp }

// SetStopAfter caps RunUntil at tick t: events scheduled later stay pending
// and simulated time stops at t. Unlike ExitSimLoop this consumes no event,
// sequence number or dispatch count — completion detected mid-run (the last
// NVDLA interrupt) can end the run at an epoch-aligned tick while leaving
// queue state identical to a run that was given exactly that limit.
func (q *EventQueue) SetStopAfter(t Tick) {
	q.stopAfter = t
	q.stopSet = true
}

// ClearStopAfter disarms SetStopAfter.
func (q *EventQueue) ClearStopAfter() { q.stopSet = false; q.stopAfter = 0 }

// StopAfter returns the armed stop-after tick, or false when disarmed.
func (q *EventQueue) StopAfter() (Tick, bool) { return q.stopAfter, q.stopSet }
