package sim

import "fmt"

// ClockDomain converts between wall-clock frequencies, clock cycles, and
// Ticks for the objects it drives. Several objects may share one domain
// (e.g. all cores at 2 GHz) while others run at a ratio of it (the paper's
// RTLObject frequency parameter).
type ClockDomain struct {
	q      *EventQueue
	period Tick
	freqHz uint64
	name   string
}

// NewClockDomain creates a domain at freqHz. The frequency must divide one
// second into a whole number of picoseconds (true for all realistic SoC
// frequencies; 2 GHz -> 500 ps).
func NewClockDomain(name string, q *EventQueue, freqHz uint64) *ClockDomain {
	if freqHz == 0 {
		panic("sim: zero-frequency clock domain")
	}
	p := uint64(Second) / freqHz
	if p == 0 || uint64(Second)%freqHz != 0 {
		panic(fmt.Sprintf("sim: frequency %d Hz does not yield an integral picosecond period", freqHz))
	}
	return &ClockDomain{q: q, period: Tick(p), freqHz: freqHz, name: name}
}

// Name returns the domain's name.
func (c *ClockDomain) Name() string { return c.name }

// Queue returns the event queue this domain schedules on.
func (c *ClockDomain) Queue() *EventQueue { return c.q }

// Period returns the clock period in Ticks.
func (c *ClockDomain) Period() Tick { return c.period }

// Frequency returns the domain frequency in Hz.
func (c *ClockDomain) Frequency() uint64 { return c.freqHz }

// CurCycle returns the number of complete cycles elapsed at the current tick.
func (c *ClockDomain) CurCycle() uint64 { return uint64(c.q.Now() / c.period) }

// ClockEdge returns the tick of the next clock edge at least n cycles in the
// future, aligned to the period (gem5's clockEdge(Cycles(n))).
func (c *ClockDomain) ClockEdge(n uint64) Tick {
	now := c.q.Now()
	edge := (now / c.period) * c.period
	if edge < now {
		edge += c.period
	} else if edge == now && n == 0 {
		return now
	}
	if edge == now {
		// already on an edge: n cycles ahead
		return now + Tick(n)*c.period
	}
	return edge + Tick(n)*c.period
}

// NextCycle returns the first clock edge strictly after the current tick.
func (c *ClockDomain) NextCycle() Tick {
	now := c.q.Now()
	return ((now / c.period) + 1) * c.period
}

// Cycles converts a cycle count into Ticks.
func (c *ClockDomain) Cycles(n uint64) Tick { return Tick(n) * c.period }

// TicksToCycles converts a tick span into (floor) cycles of this domain.
func (c *ClockDomain) TicksToCycles(t Tick) uint64 { return uint64(t / c.period) }

// Derived returns a new domain at 1/div the frequency of this one, used for
// RTL models clocked slower than the cores (e.g. a 1 GHz PMU under 2 GHz
// cores has div=2).
func (c *ClockDomain) Derived(name string, div uint64) *ClockDomain {
	if div == 0 {
		panic("sim: zero divisor for derived clock domain")
	}
	return &ClockDomain{q: c.q, period: c.period * Tick(div), freqHz: c.freqHz / div, name: name}
}

// Ticker repeatedly invokes a callback on every clock edge of a domain.
// The callback returns false to stop ticking (it can be restarted with
// Start). This is the mechanism behind gem5rtl's clocked objects, including
// RTLObject's per-cycle evaluation of the RTL model.
type Ticker struct {
	dom   *ClockDomain
	ev    *Event
	fn    func(cycle uint64) bool
	cycle uint64
}

// NewTicker creates a ticker on dom invoking fn each cycle with a running
// cycle count. It does not start automatically.
func NewTicker(name string, dom *ClockDomain, prio int, fn func(cycle uint64) bool) *Ticker {
	t := &Ticker{dom: dom, fn: fn}
	t.ev = NewEventPri(name, prio, t.tick)
	return t
}

func (t *Ticker) tick() {
	cyc := t.cycle
	t.cycle++
	if t.fn(cyc) {
		t.dom.q.Schedule(t.ev, t.dom.q.Now()+t.dom.period)
	}
}

// Start schedules the first tick at the next clock edge (or immediately if
// exactly on an edge). Calling Start on a running ticker panics.
func (t *Ticker) Start() {
	t.dom.q.Schedule(t.ev, t.dom.ClockEdge(0))
}

// StartAt schedules the first tick at the given absolute time.
func (t *Ticker) StartAt(when Tick) { t.dom.q.Schedule(t.ev, when) }

// Stop cancels a pending tick; a stopped ticker may be restarted.
func (t *Ticker) Stop() {
	if t.ev.Scheduled() {
		t.dom.q.Deschedule(t.ev)
	}
}

// Running reports whether a tick is pending.
func (t *Ticker) Running() bool { return t.ev.Scheduled() }

// Cycle returns the number of times the callback has fired.
func (t *Ticker) Cycle() uint64 { return t.cycle }
