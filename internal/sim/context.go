package sim

import "context"

// ExitReasonContext is the exit reason set when a watched context ends.
const ExitReasonContext = "context done"

// DefaultCtxCheckInterval is the simulated-time spacing of context checks
// installed by WatchContext when callers pass 0. 100 us of simulated time
// keeps the host-side cancellation latency well under a second even at
// heavy simulation slowdowns while adding a negligible number of events.
const DefaultCtxCheckInterval = 100 * Microsecond

// WatchContext installs a periodic check event that ends the simulation
// loop (via ExitSimLoop with ExitReasonContext) once ctx is cancelled or
// its deadline passes. This is how host-side cancellation and -timeout
// flags reach into the deterministic event loop: the check event observes
// the context but never touches simulated state, so a run that is not
// cancelled dispatches the exact same component events in the exact same
// order as a run without a watcher.
//
// interval is the simulated time between checks (0 selects
// DefaultCtxCheckInterval). The returned stop function removes the watcher;
// callers must invoke it before reusing the queue for a fresh run.
func (q *EventQueue) WatchContext(ctx context.Context, interval Tick) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if interval == 0 {
		interval = DefaultCtxCheckInterval
	}
	e := NewEventPri("ctx-watch", PriSimExit, nil).SetOwner(q.Owner("sim", "ctx-watch"))
	e.fn = func() {
		if ctx.Err() != nil {
			q.ExitSimLoop(ExitReasonContext)
			return
		}
		q.Schedule(e, q.now+interval)
	}
	q.Schedule(e, q.now+interval)
	return func() {
		if e.Scheduled() {
			q.Deschedule(e)
		}
	}
}
