package sim

import (
	"fmt"
	"strings"
	"testing"
)

// splitmix64 gives the differential tests a seedable deterministic stream
// without importing math/rand's global state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4ecbd1b3e21f
	return z ^ (z >> 31)
}

// TestCalendarMatchesReferenceHeap drives the calendar queue and the
// reference pure-heap queue through an identical randomized workload —
// near/far scheduling, same-tick bursts with mixed priorities, reschedules,
// deschedules, and events scheduled from inside callbacks — and requires
// bit-identical dispatch logs.
func TestCalendarMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ref := runDifferentialWorkload(NewReferenceEventQueue(), seed)
		cal := runDifferentialWorkload(NewEventQueue(), seed)
		if len(ref) != len(cal) {
			t.Fatalf("seed %d: reference dispatched %d events, calendar %d", seed, len(ref), len(cal))
		}
		for i := range ref {
			if ref[i] != cal[i] {
				t.Fatalf("seed %d: dispatch %d diverged:\n  ref: %s\n  cal: %s", seed, i, ref[i], cal[i])
			}
		}
	}
}

func runDifferentialWorkload(q *EventQueue, seed uint64) []string {
	var log []string
	rng := seed
	record := func(tag string) func() {
		return func() {
			log = append(log, fmt.Sprintf("%s @%d", tag, q.Now()))
		}
	}

	// A mix of standing events that get rescheduled/descheduled mid-run.
	movable := NewEvent("movable", nil)
	movable.fn = record("movable")
	doomed := NewEvent("doomed", func() { panic("doomed event must never run") })

	// Ticker-style self-rescheduler that also spawns same-tick and far work.
	var ticks int
	ticker := NewEventPri("ticker", PriCPU, nil)
	ticker.fn = func() {
		ticks++
		log = append(log, fmt.Sprintf("ticker @%d", q.Now()))
		if ticks < 400 {
			q.Schedule(ticker, q.Now()+500)
		}
		// Same-tick work scheduled during dispatch must order behind
		// already-pending same-tick events of equal priority.
		q.ScheduleOneShot("same-tick", q.Now(), record(fmt.Sprintf("same-tick-%d", ticks)))
		if ticks%7 == 0 {
			// Far beyond the calendar window.
			q.ScheduleOneShot("far", q.Now()+2*calWindow+Tick(splitmix64(&rng)%1000),
				record(fmt.Sprintf("far-%d", ticks)))
		}
		if ticks%11 == 0 {
			q.Reschedule(movable, q.Now()+Tick(splitmix64(&rng)%3000))
		}
		if ticks == 50 {
			q.Schedule(doomed, q.Now()+40000)
		}
		if ticks == 60 {
			q.Deschedule(doomed)
		}
		// Random-priority scatter at random offsets, including the exact
		// window boundary where near and far storage meet.
		off := Tick(splitmix64(&rng) % uint64(2*calWindow))
		prio := int(splitmix64(&rng)%5) - 2
		e := NewEventPri("scatter", prio, nil)
		e.fn = record(fmt.Sprintf("scatter-p%d", prio))
		q.Schedule(e, q.Now()+off)
	}
	q.Schedule(ticker, 0)
	q.Schedule(movable, 100)
	q.Run()
	return log
}

// TestDoubleSchedulePanicNamesBothTicks pins the Schedule contract from
// ISSUE 5: re-scheduling a pending event must fail loudly, naming the event
// and both the pending and the requested tick.
func TestDoubleSchedulePanicNamesBothTicks(t *testing.T) {
	q := NewEventQueue()
	e := NewEvent("dup-check", func() {})
	q.Schedule(e, 1234)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double schedule did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{`"dup-check"`, "1234", "5678"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message %q missing %q", msg, want)
			}
		}
	}()
	q.Schedule(e, 5678)
}

// TestScheduleOneShotRecycles proves the one-shot freelist reaches steady
// state: after warm-up, scheduling and dispatching one-shots allocates
// nothing.
func TestScheduleOneShotRecycles(t *testing.T) {
	q := NewEventQueue()
	fired := 0
	fn := func() { fired++ }
	// Warm the freelist.
	q.ScheduleOneShot("warm", q.Now()+10, fn)
	q.Run()

	allocs := testing.AllocsPerRun(100, func() {
		q.ScheduleOneShot("steady", q.Now()+10, fn)
		q.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state ScheduleOneShot allocated %.1f objects per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("one-shot events never fired")
	}
}

// TestNextEventTick checks the introspection hook across near, far and empty
// states.
func TestNextEventTick(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.NextEventTick(); ok {
		t.Fatal("empty queue reported a next event")
	}
	q.ScheduleOneShot("far", 3*calWindow, func() {})
	if tk, ok := q.NextEventTick(); !ok || tk != 3*calWindow {
		t.Fatalf("far-only queue: got (%d, %v), want (%d, true)", tk, ok, 3*calWindow)
	}
	q.ScheduleOneShot("near", 42, func() {})
	if tk, ok := q.NextEventTick(); !ok || tk != 42 {
		t.Fatalf("near+far queue: got (%d, %v), want (42, true)", tk, ok)
	}
	q.Run()
	if _, ok := q.NextEventTick(); ok {
		t.Fatal("drained queue reported a next event")
	}
}

// TestPendingSummariesAcrossWindow checks watchdog introspection sees both
// ring and heap residents in dispatch order.
func TestPendingSummariesAcrossWindow(t *testing.T) {
	q := NewEventQueue()
	q.ScheduleFunc("near-b", 100, func() {})
	q.ScheduleFunc("far-a", 5*calWindow, func() {})
	q.ScheduleFunc("near-a", 50, func() {})
	got := q.PendingSummaries(0)
	want := []string{"near-a @50 prio=0", "near-b @100 prio=0", fmt.Sprintf("far-a @%d prio=0", 5*calWindow)}
	if len(got) != len(want) {
		t.Fatalf("got %d summaries %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("summary %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestUseReferenceQueueForTest checks the soc-facing toggle actually switches
// dispatcher implementations for queues built through NewEventQueue.
func TestUseReferenceQueueForTest(t *testing.T) {
	UseReferenceQueueForTest(true)
	defer UseReferenceQueueForTest(false)
	q := NewEventQueue()
	if !q.ref {
		t.Fatal("NewEventQueue ignored UseReferenceQueueForTest(true)")
	}
	// The reference queue must still honour the full API surface.
	var order []Tick
	q.ScheduleOneShot("a", 10, func() { order = append(order, q.Now()) })
	q.ScheduleOneShot("b", 5, func() { order = append(order, q.Now()) })
	q.Run()
	if len(order) != 2 || order[0] != 5 || order[1] != 10 {
		t.Fatalf("reference dispatch order %v, want [5 10]", order)
	}
}
