package sim

import "time"

// OwnerID identifies an attribution owner — a (component, kind) pair interned
// on an EventQueue — for the self-profiler. The zero OwnerID is reserved for
// unattributed work. Owner IDs are assigned in interning order, which follows
// the deterministic system Build order, so IDs (and therefore attribution
// reports) are reproducible run to run.
type OwnerID int32

// ownerKey is the interning key for an attribution owner.
type ownerKey struct {
	component string
	kind      string
}

// Owner interns a (component, kind) attribution owner on the queue and
// returns its stable ID. Interning is idempotent: the same pair always maps
// to the same ID on a given queue. Components call Owner once at construction
// time and tag the events they create with Event.SetOwner; tagging is always
// on and costs one int32 store, so no call-site gating is needed.
func (q *EventQueue) Owner(component, kind string) OwnerID {
	if q.ownerIDs == nil {
		q.ownerIDs = make(map[ownerKey]OwnerID)
		// ID 0 is the reserved unattributed owner.
		q.ownerKeys = append(q.ownerKeys, ownerKey{})
		q.ownerIDs[ownerKey{}] = 0
	}
	k := ownerKey{component, kind}
	if id, ok := q.ownerIDs[k]; ok {
		return id
	}
	id := OwnerID(len(q.ownerKeys))
	q.ownerIDs[k] = id
	q.ownerKeys = append(q.ownerKeys, k)
	if q.prof != nil {
		q.prof.grow(len(q.ownerKeys))
	}
	return id
}

// OwnerName returns the (component, kind) pair behind an interned OwnerID.
// The zero ID reports the reserved unattributed owner ("", "").
func (q *EventQueue) OwnerName(id OwnerID) (component, kind string) {
	if int(id) >= len(q.ownerKeys) {
		return "", ""
	}
	k := q.ownerKeys[id]
	return k.component, k.kind
}

// SetOwner tags the event with an attribution owner for the self-profiler.
// It returns the event so constructors can chain it. Untagged events charge
// to the reserved unattributed owner.
func (e *Event) SetOwner(id OwnerID) *Event {
	e.owner = id
	return e
}

// Owner returns the event's attribution owner.
func (e *Event) Owner() OwnerID { return e.owner }

// SetOwner tags the ticker's clock-edge event with an attribution owner.
func (t *Ticker) SetOwner(id OwnerID) { t.ev.owner = id }

// DefaultProfileEvery is the dispatch count between host-clock reads when a
// Profiler is attached without an explicit cadence. Sampling every 64
// dispatches keeps the on-path overhead of time.Now amortised well below the
// 5% budget while still giving sub-microsecond-of-host-time resolution per
// owner on realistic event rates.
const DefaultProfileEvery = 64

// Profiler attributes host wall-time and dispatch counts to event owners at
// the dispatch boundary. Event counts are exact and deterministic (they are
// incremented in the single-threaded dispatch loop and never depend on the
// host clock); host-nanosecond shares are sampled — the profiler reads the
// monotonic clock once every "every" dispatches and charges the whole window
// to the owner running at the sample point, so per-owner times converge to
// the true distribution while the hot path stays one counter decrement.
//
// A Profiler belongs to exactly one EventQueue and, like the queue, is
// single-threaded. When no profiler is attached the dispatch loop pays a
// single nil check and zero allocations.
type Profiler struct {
	q         *EventQueue
	counts    []uint64 // exact dispatch/phase counts, indexed by OwnerID
	nanos     []int64  // sampled host time, indexed by OwnerID
	current   OwnerID
	every     int32
	countdown int32
	last      time.Time
	attached  time.Time
}

// AttachProfiler attaches a self-profiler reading the host clock every
// "every" dispatches (<= 0 selects DefaultProfileEvery) and returns it.
// Attaching twice returns the existing profiler. Attribution counts restored
// from a checkpoint before the attach are folded into the new profiler so a
// save/restore run reports the same event-count attribution as the
// uninterrupted run.
func (q *EventQueue) AttachProfiler(every int) *Profiler {
	if q.prof != nil {
		return q.prof
	}
	if every <= 0 {
		every = DefaultProfileEvery
	}
	now := time.Now()
	p := &Profiler{
		q:         q,
		every:     int32(every),
		countdown: int32(every),
		last:      now,
		attached:  now,
	}
	p.grow(len(q.ownerKeys))
	q.prof = p
	if q.restoredAttr != nil {
		q.applyRestoredAttr()
	}
	return p
}

// SelfProfiler returns the attached profiler, or nil when profiling is off.
func (q *EventQueue) SelfProfiler() *Profiler { return q.prof }

// grow extends the per-owner slices to hold at least n owners.
func (p *Profiler) grow(n int) {
	for len(p.counts) < n {
		p.counts = append(p.counts, 0)
		p.nanos = append(p.nanos, 0)
	}
}

// hit records one dispatch for owner o and makes it the running owner. Called
// from the dispatch loop immediately before the event callback runs.
func (p *Profiler) hit(o OwnerID) {
	p.counts[o]++
	p.countdown--
	if p.countdown <= 0 {
		p.sample()
	}
	p.current = o
}

// sample reads the host clock and charges the elapsed window to the running
// owner, then re-arms the countdown.
func (p *Profiler) sample() {
	now := time.Now()
	p.nanos[p.current] += now.Sub(p.last).Nanoseconds()
	p.last = now
	p.countdown = p.every
}

// Enter switches attribution to owner o mid-event — the RTL engines use it to
// sub-attribute tick phases (comb settle, sequential update, memory ports) —
// and returns the previous owner for the matching Exit. Enter counts one
// phase execution for o, so phase counts stay exact and deterministic.
func (p *Profiler) Enter(o OwnerID) OwnerID {
	prev := p.current
	p.counts[o]++
	p.countdown--
	if p.countdown <= 0 {
		p.sample()
	}
	p.current = o
	return prev
}

// Exit restores the owner returned by the matching Enter without counting an
// event.
func (p *Profiler) Exit(prev OwnerID) {
	p.countdown--
	if p.countdown <= 0 {
		p.sample()
	}
	p.current = prev
}

// OwnerStat is one row of a profiler report: exact event/phase counts and
// sampled host nanoseconds for a (component, kind) owner.
type OwnerStat struct {
	Component string
	Kind      string
	Events    uint64
	HostNS    int64
}

// Stats flushes the open sampling window and returns one OwnerStat per owner
// with activity, in deterministic interning (Build) order. The unattributed
// owner reports as component "(unattributed)".
func (p *Profiler) Stats() []OwnerStat {
	p.sample() // close the open window so HostNS sums to elapsed time
	out := make([]OwnerStat, 0, len(p.counts))
	for id := range p.counts {
		if p.counts[id] == 0 && p.nanos[id] == 0 {
			continue
		}
		comp, kind := p.q.OwnerName(OwnerID(id))
		if comp == "" && kind == "" {
			comp, kind = "(unattributed)", "dispatch"
		}
		out = append(out, OwnerStat{
			Component: comp,
			Kind:      kind,
			Events:    p.counts[id],
			HostNS:    p.nanos[id],
		})
	}
	return out
}

// WallNS returns the host nanoseconds elapsed since the profiler was
// attached.
func (p *Profiler) WallNS() int64 { return time.Since(p.attached).Nanoseconds() }

// applyRestoredAttr folds attribution counts restored from a checkpoint into
// the attached profiler, so the save/restore run's event-count attribution
// continues from the prefix run's exactly.
func (q *EventQueue) applyRestoredAttr() {
	for k, n := range q.restoredAttr {
		id := q.Owner(k.component, k.kind)
		q.prof.grow(int(id) + 1)
		q.prof.counts[id] += n
	}
	q.restoredAttr = nil
}
