package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.ScheduleFunc("c", 30, func() { got = append(got, 3) })
	q.ScheduleFunc("a", 10, func() { got = append(got, 1) })
	q.ScheduleFunc("b", 20, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", q.Now())
	}
}

func TestSameTickPriorityAndFIFO(t *testing.T) {
	q := NewEventQueue()
	var got []string
	q.Schedule(NewEventPri("low", 10, func() { got = append(got, "low") }), 5)
	q.Schedule(NewEventPri("high", -10, func() { got = append(got, "high") }), 5)
	// Same-name events at the same (tick, priority) dispatch FIFO; events with
	// different names order by name rank, independent of insertion order.
	q.ScheduleOneShot("fifo", 5, func() { got = append(got, "f1") })
	q.ScheduleOneShot("fifo", 5, func() { got = append(got, "f2") })
	q.Run()
	want := []string{"high", "f1", "f2", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSameTickRankOrder pins the cross-name arbitration contract: same-tick,
// same-priority events of different names dispatch in name-rank order no
// matter which order they were scheduled in — the property that makes
// dispatch order independent of the queue layout (serial vs sharded).
func TestSameTickRankOrder(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	runIn := func(order []int) []string {
		q := NewEventQueue()
		var got []string
		for _, i := range order {
			name := names[i]
			q.Schedule(NewEvent(name, func() { got = append(got, name) }), 5)
		}
		q.Run()
		return got
	}
	a := runIn([]int{0, 1, 2, 3})
	b := runIn([]int{3, 2, 1, 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order depends on insertion order: %v vs %v", a, b)
		}
	}
	for i := 1; i < len(a); i++ {
		if nameRank(a[i-1]) >= nameRank(a[i]) {
			t.Fatalf("dispatch order %v does not follow name rank", a)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewEventQueue()
	q.ScheduleFunc("adv", 100, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	q.ScheduleFunc("late", 50, func() {})
}

func TestDoubleSchedulePanics(t *testing.T) {
	q := NewEventQueue()
	e := NewEvent("e", func() {})
	q.Schedule(e, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double schedule did not panic")
		}
	}()
	q.Schedule(e, 20)
}

func TestDescheduleAndReschedule(t *testing.T) {
	q := NewEventQueue()
	fired := 0
	e := NewEvent("e", func() { fired++ })
	q.Schedule(e, 10)
	q.Deschedule(e)
	if e.Scheduled() {
		t.Fatal("event still scheduled after Deschedule")
	}
	q.Reschedule(e, 40)
	q.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if q.Now() != 40 {
		t.Fatalf("Now() = %d, want 40", q.Now())
	}
}

func TestRunUntil(t *testing.T) {
	q := NewEventQueue()
	var got []Tick
	for _, tk := range []Tick{10, 20, 30, 40} {
		tk := tk
		q.ScheduleFunc("e", tk, func() { got = append(got, tk) })
	}
	q.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("RunUntil(25) ran %d events, want 2", len(got))
	}
	if q.Now() != 25 {
		t.Fatalf("Now() = %d, want 25", q.Now())
	}
	q.RunUntil(1000)
	if len(got) != 4 {
		t.Fatalf("total %d events, want 4", len(got))
	}
	if q.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000 after drain", q.Now())
	}
}

func TestExitSimLoop(t *testing.T) {
	q := NewEventQueue()
	ran := 0
	q.ScheduleFunc("one", 10, func() { ran++; q.ExitSimLoop("checkpoint") })
	q.ScheduleFunc("two", 20, func() { ran++ })
	reason := q.Run()
	if reason != "checkpoint" || ran != 1 {
		t.Fatalf("reason=%q ran=%d, want checkpoint/1", reason, ran)
	}
	q.ClearExit()
	if r := q.Run(); r != "" || ran != 2 {
		t.Fatalf("after ClearExit: reason=%q ran=%d", r, ran)
	}
}

func TestSelfRescheduling(t *testing.T) {
	q := NewEventQueue()
	n := 0
	var e *Event
	e = NewEvent("periodic", func() {
		n++
		if n < 5 {
			q.Schedule(e, q.Now()+100)
		}
	})
	q.Schedule(e, 0)
	q.Run()
	if n != 5 || q.Now() != 400 {
		t.Fatalf("n=%d now=%d, want 5/400", n, q.Now())
	}
}

// Property: events always dispatch in nondecreasing time order, regardless of
// insertion order.
func TestQuickOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewEventQueue()
		var got []Tick
		for _, tv := range times {
			tk := Tick(tv)
			q.ScheduleFunc("e", tk, func() { got = append(got, q.Now()) })
		}
		q.Run()
		if len(got) != len(times) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedule/deschedule operations never corrupts the
// heap; the set of dispatched events equals the set left scheduled.
func TestQuickScheduleDeschedule(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		q := NewEventQueue()
		live := map[*Event]bool{}
		fired := 0
		for i := 0; i < 50; i++ {
			e := NewEvent("e", func() { fired++ })
			q.Schedule(e, Tick(rng.Intn(1000)))
			live[e] = true
		}
		removed := 0
		for e := range live {
			if rng.Intn(2) == 0 {
				q.Deschedule(e)
				removed++
			}
		}
		q.Run()
		if fired != 50-removed {
			t.Fatalf("fired=%d want %d", fired, 50-removed)
		}
	}
}

func TestClockDomain(t *testing.T) {
	q := NewEventQueue()
	cd := NewClockDomain("cpu", q, 2_000_000_000) // 2 GHz
	if cd.Period() != 500 {
		t.Fatalf("period = %d, want 500", cd.Period())
	}
	if cd.Cycles(10) != 5000 {
		t.Fatalf("Cycles(10) = %d", cd.Cycles(10))
	}
	q.ScheduleFunc("adv", 750, func() {})
	q.Run()
	if cd.CurCycle() != 1 {
		t.Fatalf("CurCycle = %d, want 1", cd.CurCycle())
	}
	if e := cd.NextCycle(); e != 1000 {
		t.Fatalf("NextCycle = %d, want 1000", e)
	}
	if e := cd.ClockEdge(0); e != 1000 {
		t.Fatalf("ClockEdge(0) off-edge = %d, want 1000", e)
	}
	if e := cd.ClockEdge(2); e != 2000 {
		t.Fatalf("ClockEdge(2) = %d, want 2000", e)
	}
}

func TestClockEdgeOnEdge(t *testing.T) {
	q := NewEventQueue()
	cd := NewClockDomain("c", q, 1_000_000_000) // 1 GHz, 1000 ps
	q.ScheduleFunc("adv", 3000, func() {})
	q.Run()
	if e := cd.ClockEdge(0); e != 3000 {
		t.Fatalf("ClockEdge(0) on-edge = %d, want 3000", e)
	}
	if e := cd.ClockEdge(1); e != 4000 {
		t.Fatalf("ClockEdge(1) on-edge = %d, want 4000", e)
	}
}

func TestDerivedClock(t *testing.T) {
	q := NewEventQueue()
	cpu := NewClockDomain("cpu", q, 2_000_000_000)
	rtl := cpu.Derived("rtl", 2) // 1 GHz
	if rtl.Period() != 1000 || rtl.Frequency() != 1_000_000_000 {
		t.Fatalf("derived clock wrong: period=%d freq=%d", rtl.Period(), rtl.Frequency())
	}
}

func TestTicker(t *testing.T) {
	q := NewEventQueue()
	cd := NewClockDomain("c", q, 1_000_000_000)
	var cycles []uint64
	tk := NewTicker("t", cd, PriDefault, func(c uint64) bool {
		cycles = append(cycles, c)
		return c < 4
	})
	tk.Start()
	q.Run()
	if len(cycles) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(cycles))
	}
	for i, c := range cycles {
		if c != uint64(i) {
			t.Fatalf("cycle %d reported as %d", i, c)
		}
	}
	if q.Now() != 4000 {
		t.Fatalf("Now = %d, want 4000", q.Now())
	}
}

func TestTickerStopRestart(t *testing.T) {
	q := NewEventQueue()
	cd := NewClockDomain("c", q, 1_000_000_000)
	n := 0
	tk := NewTicker("t", cd, PriDefault, func(uint64) bool { n++; return true })
	tk.Start()
	q.RunUntil(2500) // ticks at 0, 1000, 2000
	tk.Stop()
	if tk.Running() {
		t.Fatal("ticker running after Stop")
	}
	q.RunUntil(10_000)
	if n != 3 {
		t.Fatalf("ticked %d times, want 3", n)
	}
	tk.Start()
	q.RunUntil(12_000) // 10000(if edge), 11000, 12000
	if n < 5 {
		t.Fatalf("restart did not resume ticking: n=%d", n)
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	q := NewEventQueue()
	var e *Event
	n := 0
	e = NewEvent("bench", func() {
		n++
		if n < b.N {
			q.Schedule(e, q.Now()+1)
		}
	})
	b.ResetTimer()
	q.Schedule(e, 1)
	q.Run()
}
