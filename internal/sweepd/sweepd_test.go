package sweepd

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// fakeTicks is the deterministic stand-in executor for unit tests: ideal
// points take 1000 ticks, technology points 2000, so every Perf is 0.5.
func fakeTicks(spec experiments.RunSpec) sim.Tick {
	if spec.IsIdeal() {
		return 1000
	}
	return 2000
}

// countingRun wraps fakeTicks with an execution counter.
func countingRun(n *atomic.Int64) func(context.Context, experiments.RunSpec) (sim.Tick, error) {
	return func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
		n.Add(1)
		return fakeTicks(spec), nil
	}
}

func testSpec(memory string, inflight int) experiments.RunSpec {
	return experiments.DSEParams{Scale: 32, Limit: 8 * sim.Second}.Spec("sanity3", 1, memory, inflight)
}

// waitDone blocks until the job finishes or the test times out.
func waitDone(t *testing.T, j *job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("HBM", 16)
	if err := st.Put(spec, 4242); err != nil {
		t.Fatal(err)
	}

	// A torn or hand-edited file must not survive the boot integrity gate.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("0", 64)+".json"),
		[]byte(`{"spec":`), 0o644); err != nil {
		t.Fatal(err)
	}
	wrongName := testSpec("GDDR5", 16)
	buf, _ := os.ReadFile(filepath.Join(dir, spec.Fingerprint()+".json"))
	if err := os.WriteFile(filepath.Join(dir, wrongName.Fingerprint()+".json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1 (corrupt files quarantined)", re.Len())
	}
	e, ok := re.Get(spec.Fingerprint())
	if !ok || e.Ticks != 4242 {
		t.Fatalf("reopened store lost the result: %+v ok=%v", e, ok)
	}
	// The corrupt files were moved to quarantine/, counted, and preserved.
	if re.Quarantined() != 2 {
		t.Errorf("quarantined %d files, want 2", re.Quarantined())
	}
	moved, err := os.ReadDir(filepath.Join(dir, StoreQuarantineDir))
	if err != nil || len(moved) != 2 {
		t.Errorf("quarantine dir has %d files (err=%v), want 2", len(moved), err)
	}
	if _, err := os.Stat(filepath.Join(dir, wrongName.Fingerprint()+".json")); !os.IsNotExist(err) {
		t.Error("mismatched file still sits in the store root")
	}
}

func TestSubmitSchedulesBaselinesAndDedupes(t *testing.T) {
	var runs atomic.Int64
	s, err := New(Config{Workers: 2, RunPoint: countingRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	// Two technology points with the same shape share one hidden ideal
	// baseline; a duplicated spec collapses into one point.
	specs := []experiments.RunSpec{testSpec("HBM", 16), testSpec("DDR4-1ch", 16), testSpec("HBM", 16)}
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.points) != 3 {
		t.Errorf("job has %d points, want 3 (two tech + one shared baseline)", len(j.points))
	}
	waitDone(t, j)
	if got := runs.Load(); got != 3 {
		t.Errorf("executed %d points, want 3", got)
	}

	results, done := s.sched.results(j)
	if !done {
		t.Fatal("results not ready after done")
	}
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 submitted specs", len(results))
	}
	for i, r := range results {
		if r.Err != "" || r.Ticks != 2000 || r.Perf != 0.5 {
			t.Errorf("result[%d] = %+v, want ticks=2000 perf=0.5", i, r)
		}
	}
}

func TestSecondSubmissionFullyCached(t *testing.T) {
	var runs atomic.Int64
	s, err := New(Config{Workers: 1, RunPoint: countingRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	specs := []experiments.RunSpec{testSpec("HBM", 16), testSpec("DDR4-1ch", 16)}
	j1, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	first := runs.Load()

	j2, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if j2.cached != len(j2.points) {
		t.Errorf("resubmission cached %d of %d points, want all", j2.cached, len(j2.points))
	}
	if runs.Load() != first {
		t.Errorf("resubmission re-simulated %d points", runs.Load()-first)
	}
	r1, _ := s.sched.results(j1)
	r2, _ := s.sched.results(j2)
	if string(EncodeResults(r1)) != string(EncodeResults(r2)) {
		t.Error("cached results are not byte-identical to the original")
	}
}

func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	s1, err := New(Config{Workers: 1, StoreDir: dir, RunPoint: countingRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	specs := []experiments.RunSpec{testSpec("HBM", 16)}
	j, err := s1.sched.submit(s1.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	s1.Close()

	s2, err := New(Config{Workers: 1, StoreDir: dir, RunPoint: countingRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Start()
	before := runs.Load()
	j2, err := s2.sched.submit(s2.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if j2.cached != len(j2.points) || runs.Load() != before {
		t.Errorf("restarted server re-simulated: cached=%d/%d runs=%d (was %d)",
			j2.cached, len(j2.points), runs.Load(), before)
	}
}

func TestQuotaBoundsFreshPoints(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	s, err := New(Config{Workers: 1, Quota: 3,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			<-block
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { once.Do(func() { close(block) }); s.Close() }()
	s.Start()

	// First batch: 2 tech + 1 baseline = 3 fresh points, exactly the quota.
	ok := SubmitRequest{Client: "alice", Specs: []experiments.RunSpec{testSpec("HBM", 16), testSpec("DDR4-1ch", 16)}}
	if _, err := s.sched.submit(s.store, ok, s.cfg.Quota); err != nil {
		t.Fatalf("within-quota submit rejected: %v", err)
	}
	// Second batch while the first is live: 2 more fresh points > quota.
	over := SubmitRequest{Client: "alice", Specs: []experiments.RunSpec{testSpec("GDDR5", 64)}}
	if _, err := s.sched.submit(s.store, over, s.cfg.Quota); err == nil {
		t.Fatal("over-quota submit accepted")
	} else if !strings.Contains(err.Error(), "quota") {
		t.Fatalf("quota error does not say so: %v", err)
	}
	// A different client has its own bucket.
	if _, err := s.sched.submit(s.store, SubmitRequest{Client: "bob",
		Specs: []experiments.RunSpec{testSpec("GDDR5", 64)}}, s.cfg.Quota); err != nil {
		t.Fatalf("other client's submit rejected: %v", err)
	}
	once.Do(func() { close(block) })
}

func TestCancelSkipsQueuedPoints(t *testing.T) {
	started := make(chan string, 16)
	block := make(chan struct{})
	var once sync.Once
	s, err := New(Config{Workers: 1,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			started <- spec.Memory
			<-block
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { once.Do(func() { close(block) }); s.Close() }()
	s.Start()

	specs := []experiments.RunSpec{testSpec("HBM", 16), testSpec("DDR4-1ch", 16)}
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started // first point is on the worker
	if _, ok := s.sched.cancel(j.id); !ok {
		t.Fatal("cancel did not find the job")
	}
	once.Do(func() { close(block) })
	waitDone(t, j)

	st := s.sched.status(j)
	if st.State != JobCancelled {
		t.Errorf("state %q, want cancelled", st.State)
	}
	results, done := s.sched.results(j)
	if !done {
		t.Fatal("cancelled job has no results")
	}
	skipped := 0
	for _, r := range results {
		if strings.Contains(r.Err, "cancelled") {
			skipped++
		}
	}
	if skipped == 0 {
		t.Errorf("no queued point was skipped: %+v", results)
	}
	select {
	case mem := <-started:
		t.Errorf("point %s simulated after cancel", mem)
	default:
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	order := make(chan int, 16)
	gate := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	first := true
	s, err := New(Config{Workers: 1,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			if first {
				first = false
				entered.Done()
				<-gate // hold the only worker while the queue builds up
			} else {
				order <- spec.Inflight
			}
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	// Occupy the worker with a throwaway job.
	warm, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{testSpec("ideal", 1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	entered.Wait()
	// Queue a low-priority then a high-priority job; the high one must run
	// first once the worker frees up.
	lo, err := s.sched.submit(s.store, SubmitRequest{Priority: 0,
		Specs: []experiments.RunSpec{testSpec("ideal", 2)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := s.sched.submit(s.store, SubmitRequest{Priority: 5,
		Specs: []experiments.RunSpec{testSpec("ideal", 3)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitDone(t, warm)
	waitDone(t, lo)
	waitDone(t, hi)
	if a, b := <-order, <-order; a != 3 || b != 2 {
		t.Errorf("execution order inflight=%d then %d, want the priority-5 job (inflight=3) first", a, b)
	}
}

func TestDrainStopsIntakeAndFinishesQueue(t *testing.T) {
	var runs atomic.Int64
	s, err := New(Config{Workers: 1, RunPoint: countingRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{testSpec("HBM", 16)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitDone(t, j)
	if runs.Load() != 2 {
		t.Errorf("drain finished %d points, want 2 (point + baseline)", runs.Load())
	}
	if _, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{testSpec("HBM", 64)}}, 0); err == nil {
		t.Error("submit accepted after drain")
	}
}
